#include "workload/trace_buffer.hh"

#include "util/logging.hh"
#include "workload/trace_file.hh"

namespace m3d {

namespace {

// Hard cap on buffer growth: kMaxChunks * kChunkOps ops (~134M ops,
// ~1.8 GB of columns).  Reserving the pointer vector up front keeps
// chunk addresses stable for lock-free readers; hitting the cap means
// a runaway instruction budget, not a legitimate workload.
constexpr std::size_t kMaxChunks = 4096;

// Domain tag for traceKey ("trace" in ASCII), disjoint from the
// engine's run-key domains so trace keys never collide with them.
constexpr std::uint64_t kDomainTrace = 0x7472616365;

} // namespace

Key128
traceKey(const WorkloadProfile &profile, std::uint64_t seed,
         int thread_id)
{
    KeyBuilder kb(kDomainTrace);
    hashProfile(kb, profile);
    kb.add(seed).add(thread_id);
    return kb.key();
}

TraceBuffer::TraceBuffer(const WorkloadProfile &profile,
                         std::uint64_t seed, int thread_id)
    : profile_(profile), seed_(seed), thread_id_(thread_id),
      gen_(profile, seed, thread_id)
{
    chunks_.reserve(kMaxChunks);
}

TraceBuffer::TraceBuffer(const std::string &path,
                         const WorkloadProfile &profile)
    : profile_(profile), extendable_(false), gen_(profile, 0, 0)
{
    chunks_.reserve(kMaxChunks);
    TraceReader reader(path);
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::uint64_t i = 0; i < reader.size(); ++i)
        appendResolved(reader.at(static_cast<std::size_t>(i)));
}

void
TraceBuffer::appendResolved(const MicroOp &op)
{
    const std::uint64_t off = size_ & kChunkMask;
    if (off == 0) {
        if (chunks_.size() >= kMaxChunks)
            M3D_FATAL("trace buffer for ", profile_.name,
                      " exceeds ", kMaxChunks * kChunkOps, " ops");
        chunks_.push_back(std::make_unique<Chunk>());
    }
    Chunk &c = *chunks_.back();
    const auto o = static_cast<std::size_t>(off);

    M3D_ASSERT(op.src1_dist <= 0xffff && op.src2_dist <= 0xffff,
               "dependency distance overflows the trace column");
    c.op[o] = static_cast<std::uint8_t>(op.op);
    c.src1[o] = static_cast<std::uint16_t>(op.src1_dist);
    c.src2[o] = static_cast<std::uint16_t>(op.src2_dist);
    c.address[o] = op.address;

    std::uint8_t flags = static_cast<std::uint8_t>(
        (op.taken ? kFlagTaken : 0) |
        (op.mispredicted ? kFlagStatMispredict : 0) |
        (op.complex_decode ? kFlagComplex : 0) |
        (op.serializing ? kFlagSerializing : 0) |
        (op.is_call ? kFlagCall : 0) |
        (op.is_return ? kFlagReturn : 0));

    // Pre-resolve the branch against the fixed Table-9 predictor -
    // the exact sequence CoreModel::run would perform, so the
    // annotated outcome replays bit-identically.
    if (op.op == OpClass::Branch) {
        bool mispredicted = false;
        if (op.is_call) {
            predictor_.pushCall(op.address);
        } else if (op.is_return) {
            mispredicted = !predictor_.popReturn(op.address);
        } else {
            mispredicted =
                predictor_.predictAndTrain(op.address, op.taken);
        }
        if (mispredicted) {
            flags |= kFlagMispredict;
            ++resolved_mispredicts_;
        }
    }
    c.flags[o] = flags;
    ++size_;
}

void
TraceBuffer::ensure(std::uint64_t n)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (size_ >= n)
        return;
    if (!extendable_)
        M3D_FATAL("file-backed trace has ", size_,
                  " ops but the run needs ", n);
    while (size_ < n)
        appendResolved(gen_.next());
}

std::uint64_t
TraceBuffer::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return size_;
}

TraceBuffer::ChunkRange
TraceBuffer::range(std::uint64_t pos, std::uint64_t n) const
{
    M3D_ASSERT(pos + n <= size(),
               "trace range past the resolved prefix");
    return ChunkRange(this, pos, pos + n);
}

MicroOp
TraceBuffer::at(std::uint64_t i) const
{
    const ChunkView v = *range(i, 1).begin();
    const Chunk &c = *v.chunk;
    const auto o = static_cast<std::size_t>(v.begin);
    MicroOp op;
    op.op = static_cast<OpClass>(c.op[o]);
    op.src1_dist = c.src1[o];
    op.src2_dist = c.src2[o];
    op.address = c.address[o];
    const std::uint8_t flags = c.flags[o];
    op.taken = (flags & kFlagTaken) != 0;
    op.mispredicted = (flags & kFlagStatMispredict) != 0;
    op.complex_decode = (flags & kFlagComplex) != 0;
    op.serializing = (flags & kFlagSerializing) != 0;
    op.is_call = (flags & kFlagCall) != 0;
    op.is_return = (flags & kFlagReturn) != 0;
    return op;
}

void
TraceBuffer::save(const std::string &path) const
{
    const std::uint64_t n = size();
    TraceWriter w(path);
    for (std::uint64_t i = 0; i < n; ++i)
        w.append(at(i));
    w.close();
}

std::uint64_t
TraceBuffer::resolvedMispredicts() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return resolved_mispredicts_;
}

std::uint64_t
TraceBuffer::memoryBytes() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return chunks_.size() * sizeof(Chunk);
}

TraceRegistry &
TraceRegistry::global()
{
    static TraceRegistry registry;
    return registry;
}

std::shared_ptr<const TraceBuffer>
TraceRegistry::acquire(const WorkloadProfile &profile,
                       std::uint64_t seed, int thread_id,
                       std::uint64_t min_ops)
{
    std::shared_ptr<TraceBuffer> buf;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto &slot = buffers_[traceKey(profile, seed, thread_id)];
        if (!slot) {
            slot = std::make_shared<TraceBuffer>(profile, seed,
                                                 thread_id);
        }
        buf = slot;
    }
    // Extend outside the registry lock: long captures of one stream
    // must not serialize acquisitions of other streams.
    buf->ensure(min_ops);
    return buf;
}

std::size_t
TraceRegistry::bufferCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return buffers_.size();
}

std::uint64_t
TraceRegistry::totalOps() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::uint64_t total = 0;
    for (const auto &kv : buffers_)
        total += kv.second->size();
    return total;
}

std::uint64_t
TraceRegistry::totalBytes() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::uint64_t total = 0;
    for (const auto &kv : buffers_)
        total += kv.second->memoryBytes();
    return total;
}

void
TraceRegistry::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    buffers_.clear();
}

} // namespace m3d
