#include "workload/profile_io.hh"

#include <fstream>
#include <functional>
#include <map>
#include <sstream>

#include "util/logging.hh"

namespace m3d {

namespace {

/** Field registry: name -> {getter, setter} over doubles. */
struct Field
{
    std::function<double(const WorkloadProfile &)> get;
    std::function<void(WorkloadProfile &, double)> set;
};

const std::map<std::string, Field> &
fields()
{
    static const std::map<std::string, Field> f = {
#define M3D_FIELD(name)                                               \
    {#name,                                                           \
     Field{[](const WorkloadProfile &p) { return p.name; },           \
           [](WorkloadProfile &p, double v) { p.name = v; }}}
        M3D_FIELD(load_frac),
        M3D_FIELD(store_frac),
        M3D_FIELD(branch_frac),
        M3D_FIELD(fp_frac),
        M3D_FIELD(mult_frac),
        M3D_FIELD(div_frac),
        M3D_FIELD(complex_decode_frac),
        M3D_FIELD(mean_dep_distance),
        M3D_FIELD(branch_mpki),
        M3D_FIELD(working_set_kb),
        M3D_FIELD(code_footprint_kb),
        M3D_FIELD(stride_frac),
        M3D_FIELD(spatial_locality),
        M3D_FIELD(temporal_locality),
        M3D_FIELD(parallel_frac),
        M3D_FIELD(shared_frac),
        M3D_FIELD(barrier_per_kinstr),
        M3D_FIELD(lock_per_kinstr),
#undef M3D_FIELD
    };
    return f;
}

std::string
trim(const std::string &s)
{
    const auto first = s.find_first_not_of(" \t\r");
    if (first == std::string::npos)
        return "";
    const auto last = s.find_last_not_of(" \t\r");
    return s.substr(first, last - first + 1);
}

} // namespace

WorkloadProfile
readProfile(std::istream &in, const std::string &origin)
{
    WorkloadProfile p;
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        line = trim(line);
        if (line.empty())
            continue;

        const auto eq = line.find('=');
        if (eq == std::string::npos) {
            M3D_FATAL(origin, ":", lineno,
                      ": expected 'key = value', got '", line, "'");
        }
        const std::string key = trim(line.substr(0, eq));
        const std::string value = trim(line.substr(eq + 1));

        if (key == "name") {
            p.name = value;
            continue;
        }
        if (key == "parallel") {
            if (value != "true" && value != "false") {
                M3D_FATAL(origin, ":", lineno,
                          ": parallel must be true/false");
            }
            p.parallel = value == "true";
            continue;
        }
        const auto it = fields().find(key);
        if (it == fields().end())
            M3D_FATAL(origin, ":", lineno, ": unknown key '", key, "'");
        try {
            std::size_t used = 0;
            const double v = std::stod(value, &used);
            if (used != value.size())
                throw std::invalid_argument(value);
            it->second.set(p, v);
        } catch (const std::exception &) {
            M3D_FATAL(origin, ":", lineno, ": bad number '", value,
                      "' for key '", key, "'");
        }
    }
    if (p.name.empty())
        M3D_FATAL(origin, ": profile has no 'name'");
    return p;
}

WorkloadProfile
loadProfile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        M3D_FATAL("cannot open profile: ", path);
    return readProfile(in, path);
}

void
writeProfile(std::ostream &out, const WorkloadProfile &profile)
{
    out << "# m3d workload profile\n";
    out << "name = " << profile.name << "\n";
    out << "parallel = " << (profile.parallel ? "true" : "false")
        << "\n";
    for (const auto &[key, field] : fields())
        out << key << " = " << field.get(profile) << "\n";
}

void
saveProfile(const std::string &path, const WorkloadProfile &profile)
{
    std::ofstream out(path, std::ios::trunc);
    if (!out)
        M3D_FATAL("cannot write profile: ", path);
    writeProfile(out, profile);
    if (!out)
        M3D_FATAL("failed writing profile: ", path);
}

} // namespace m3d
