#include "workload/trace_file.hh"

#include <cstdio>
#include <cstring>
#include <fstream>

#include "util/logging.hh"
#include "workload/generator.hh"

namespace m3d {

namespace {

constexpr std::uint32_t kMagic = 0x4d334454; // "M3DT"
// Version 2 added the call/return bits (4/5) so the return address
// stack replays exactly; version-1 files still load (their streams
// simply predate the RAS-aware generator).
constexpr std::uint32_t kVersion = 2;
constexpr std::uint32_t kMinVersion = 1;

/** On-disk record: 16 bytes per micro-op. */
struct PackedOp
{
    std::uint64_t address;
    std::uint16_t src1_dist;
    std::uint16_t src2_dist;
    std::uint8_t op;
    std::uint8_t flags; // bit0 taken, bit1 mispredicted,
                        // bit2 complex, bit3 serializing,
                        // bit4 call, bit5 return (v2)
    std::uint8_t pad[2];
};
static_assert(sizeof(PackedOp) == 16, "trace record must be packed");

PackedOp
pack(const MicroOp &op)
{
    PackedOp p{};
    p.address = op.address;
    p.src1_dist = static_cast<std::uint16_t>(op.src1_dist);
    p.src2_dist = static_cast<std::uint16_t>(op.src2_dist);
    p.op = static_cast<std::uint8_t>(op.op);
    p.flags = static_cast<std::uint8_t>(
        (op.taken ? 1 : 0) | (op.mispredicted ? 2 : 0) |
        (op.complex_decode ? 4 : 0) | (op.serializing ? 8 : 0) |
        (op.is_call ? 16 : 0) | (op.is_return ? 32 : 0));
    return p;
}

MicroOp
unpack(const PackedOp &p)
{
    MicroOp op;
    op.address = p.address;
    op.src1_dist = p.src1_dist;
    op.src2_dist = p.src2_dist;
    op.op = static_cast<OpClass>(p.op);
    op.taken = (p.flags & 1) != 0;
    op.mispredicted = (p.flags & 2) != 0;
    op.complex_decode = (p.flags & 4) != 0;
    op.serializing = (p.flags & 8) != 0;
    op.is_call = (p.flags & 16) != 0;
    op.is_return = (p.flags & 32) != 0;
    return op;
}

} // namespace

TraceWriter::TraceWriter(const std::string &path) : path_(path)
{
    buffer_.reserve(1 << 20);
}

TraceWriter::~TraceWriter()
{
    if (!closed_)
        close();
}

void
TraceWriter::append(const MicroOp &op)
{
    M3D_ASSERT(!closed_, "trace writer already closed");
    const PackedOp p = pack(op);
    const auto *bytes = reinterpret_cast<const std::uint8_t *>(&p);
    buffer_.insert(buffer_.end(), bytes, bytes + sizeof(PackedOp));
    ++count_;
}

void
TraceWriter::close()
{
    if (closed_)
        return;
    closed_ = true;
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    if (!out)
        M3D_FATAL("cannot open trace file for writing: ", path_);
    const std::uint32_t magic = kMagic;
    const std::uint32_t version = kVersion;
    out.write(reinterpret_cast<const char *>(&magic), sizeof(magic));
    out.write(reinterpret_cast<const char *>(&version),
              sizeof(version));
    out.write(reinterpret_cast<const char *>(&count_), sizeof(count_));
    out.write(reinterpret_cast<const char *>(buffer_.data()),
              static_cast<std::streamsize>(buffer_.size()));
    if (!out)
        M3D_FATAL("failed writing trace file: ", path_);
}

void
TraceWriter::record(const std::string &path, TraceGenerator &gen,
                    std::uint64_t n)
{
    TraceWriter w(path);
    for (std::uint64_t i = 0; i < n; ++i)
        w.append(gen.next());
    w.close();
}

TraceReader::TraceReader(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        M3D_FATAL("cannot open trace file: ", path);
    std::uint32_t magic = 0;
    std::uint32_t version = 0;
    std::uint64_t count = 0;
    in.read(reinterpret_cast<char *>(&magic), sizeof(magic));
    in.read(reinterpret_cast<char *>(&version), sizeof(version));
    in.read(reinterpret_cast<char *>(&count), sizeof(count));
    if (!in || magic != kMagic)
        M3D_FATAL("not an m3d trace file: ", path);
    if (version < kMinVersion || version > kVersion)
        M3D_FATAL("unsupported trace version ", version, ": ", path);

    ops_.reserve(static_cast<std::size_t>(count));
    PackedOp p{};
    for (std::uint64_t i = 0; i < count; ++i) {
        in.read(reinterpret_cast<char *>(&p), sizeof(p));
        if (!in)
            M3D_FATAL("truncated trace file: ", path);
        ops_.push_back(unpack(p));
    }
}

MicroOp
TraceReader::next()
{
    M3D_ASSERT(!ops_.empty(), "empty trace");
    const MicroOp &op = ops_[static_cast<std::size_t>(pos_)];
    pos_ = (pos_ + 1) % ops_.size();
    return op;
}

} // namespace m3d
