/**
 * @file
 * Deterministic synthetic instruction-stream generator.
 *
 * Draws a micro-op stream from a WorkloadProfile: instruction mix,
 * geometric dependency distances, strided + random memory streams
 * over the profile's working set, branch mispredictions at the
 * profile's MPKI, and (for parallel profiles) shared-data accesses
 * and lock/barrier markers.  Identical (profile, seed, thread) always
 * produces the identical stream.
 */

#ifndef M3D_WORKLOAD_GENERATOR_HH_
#define M3D_WORKLOAD_GENERATOR_HH_

#include <array>
#include <cstdint>
#include <vector>

#include "arch/instruction.hh"
#include "util/rng.hh"
#include "workload/profile.hh"

namespace m3d {

/** Generates the dynamic stream of one hardware thread. */
class TraceGenerator
{
  public:
    /**
     * @param profile The application model.
     * @param seed Experiment seed (same across designs so every
     *             design executes the same work).
     * @param thread_id Distinguishes threads of a parallel run.
     */
    TraceGenerator(const WorkloadProfile &profile, std::uint64_t seed,
                   int thread_id=0);

    /** Produce the next micro-op. */
    MicroOp next();

    const WorkloadProfile &profile() const { return profile_; }

  private:
    /** Behaviour classes of static branch sites. */
    enum class BranchClass { Loop, Biased, Random };

    /** One static branch site of the synthetic program. */
    struct BranchSite
    {
        std::uint64_t pc = 0;
        BranchClass cls = BranchClass::Biased;
        double taken_bias = 0.9; ///< Biased/Random: P(taken)
        int loop_period = 16;    ///< Loop: taken except every Nth
        int loop_count = 0;
    };

    std::uint64_t nextAddress(bool is_shared);
    void buildBranchSites();
    void emitBranch(MicroOp &op);

    WorkloadProfile profile_;
    Rng rng_;
    int thread_id_;
    std::uint64_t last_line_ = 0;
    std::array<std::uint64_t, 4> stream_ptr_{};
    std::array<std::uint64_t, 4> stream_stride_{};
    std::size_t stream_idx_ = 0;
    std::vector<BranchSite> branch_sites_;
    std::size_t current_branch_ = 0;
    int branch_run_left_ = 0;
    int call_depth_ = 0;
    std::vector<std::uint64_t> call_stack_;
};

} // namespace m3d

#endif // M3D_WORKLOAD_GENERATOR_HH_
