/**
 * @file
 * Statistical workload profiles.
 *
 * The paper runs 21 SPEC CPU2006 applications (single-core) and 12
 * SPLASH2 + 3 PARSEC applications (multicore) under Multi2Sim.  Those
 * binaries and inputs are not redistributable, so each application is
 * modeled as a statistical profile - instruction mix, dependency
 * locality, branch predictability, memory working sets and access
 * patterns, and (for parallel apps) parallel fraction and sharing -
 * from which a deterministic synthetic instruction stream is drawn.
 * The profiles are calibrated to the published characteristics of the
 * benchmarks (memory-bound vs compute-bound, branchy vs regular).
 */

#ifndef M3D_WORKLOAD_PROFILE_HH_
#define M3D_WORKLOAD_PROFILE_HH_

#include <string>
#include <vector>

#include "util/key128.hh"

namespace m3d {

/** Statistical description of one application. */
struct WorkloadProfile
{
    std::string name;

    // Instruction mix (fractions of the dynamic stream; remainder is
    // integer ALU work).
    double load_frac = 0.25;
    double store_frac = 0.10;
    double branch_frac = 0.15;
    double fp_frac = 0.0;
    double mult_frac = 0.02;
    double div_frac = 0.005;

    /** Fraction of instructions needing the complex decoder. */
    double complex_decode_frac = 0.02;

    /**
     * Dependency locality: mean distance (in instructions) to a
     * producer.  Small = serial chains (low ILP); large = independent.
     */
    double mean_dep_distance = 12.0;

    /** Branch mispredictions per kilo-instruction. */
    double branch_mpki = 4.0;

    // Memory behaviour.
    double working_set_kb = 256.0; ///< hot data footprint
    double code_footprint_kb = 24.0; ///< hot instruction footprint
    double stride_frac = 0.7;      ///< streaming vs random accesses
    double spatial_locality = 0.6; ///< P(next access in same line)
    /**
     * Temporal locality of the non-strided accesses: probability of
     * drawing from a small hot region instead of the whole working
     * set.  Pointer-chasing codes (mcf, omnetpp, canneal) are low.
     */
    double temporal_locality = 0.85;

    // Parallel behaviour (multicore apps only).
    bool parallel = false;
    double parallel_frac = 1.0;    ///< Amdahl parallel fraction
    double shared_frac = 0.0;      ///< loads hitting shared (remote) data
    double barrier_per_kinstr = 0.0; ///< barriers per kilo-instruction
    double lock_per_kinstr = 0.0;  ///< lock acquisitions per kilo-instr
};

/** The benchmark suites used in the paper's evaluation. */
class WorkloadLibrary
{
  public:
    /** 21 SPEC CPU2006 profiles (Figure 6/7/8 x-axis). */
    static std::vector<WorkloadProfile> spec2006();

    /** 12 SPLASH2 + 3 PARSEC profiles (Figure 9/10 x-axis). */
    static std::vector<WorkloadProfile> splash2parsec();

    /** Look up one profile by name in either suite. */
    static WorkloadProfile byName(const std::string &name);
};

/**
 * Append every field of `p` to a canonical hash stream, in
 * declaration order.  The evaluation engine's run keys and the trace
 * registry's buffer keys both build on this, so two profiles hash
 * equal exactly when they generate the same instruction stream.
 */
void hashProfile(KeyBuilder &kb, const WorkloadProfile &p);

} // namespace m3d

#endif // M3D_WORKLOAD_PROFILE_HH_
