#include "workload/generator.hh"

#include <algorithm>
#include <cmath>

namespace m3d {

namespace {

constexpr std::uint64_t kLineBytes = 64;
/** Shared data lives in a distinct region tagged by this bit. */
constexpr std::uint64_t kSharedBit = 1ull << 40;
/** Each thread's private data starts at its own 1 TB region. */
constexpr std::uint64_t kThreadRegion = 1ull << 41;

} // namespace

TraceGenerator::TraceGenerator(const WorkloadProfile &profile,
                               std::uint64_t seed, int thread_id)
    : profile_(profile),
      rng_(Rng(seed).fork(static_cast<std::uint64_t>(thread_id) + 17)),
      thread_id_(thread_id)
{
    const auto ws_bytes = static_cast<std::uint64_t>(
        std::max(profile_.working_set_kb, 4.0) * 1024.0);
    const std::uint64_t base =
        kThreadRegion * static_cast<std::uint64_t>(thread_id_ + 1);
    for (std::size_t i = 0; i < stream_ptr_.size(); ++i) {
        stream_ptr_[i] = base + rng_.below(ws_bytes);
        // Element-granularity strides: a stream dwells on a cache
        // line for several accesses before moving on.
        stream_stride_[i] = 8 * (1 + rng_.below(4));
    }
    last_line_ = base;
    buildBranchSites();
}

void
TraceGenerator::buildBranchSites()
{
    // The synthetic program has a fixed population of static branch
    // sites in its code footprint.  Their behaviour mix is chosen so
    // that a good predictor's emergent misprediction rate tracks the
    // profile's MPKI: loops and biased branches predict well (~2-6%
    // miss), 50/50 data-dependent branches predict at ~50%.
    const int sites = 256;
    const double miss_per_branch = profile_.branch_frac > 0.0
        ? (profile_.branch_mpki / 1000.0) / profile_.branch_frac
        : 0.0;
    // Difficulty knob: predictable codes have short (history-
    // capturable) loops and strongly biased branches; branchy codes
    // have long loops, weak biases, and data-dependent branches.
    const double hard = std::clamp(miss_per_branch * 6.0, 0.0, 1.0);
    // m ~= f_random * 0.5 + (1 - f_random) * floor(hard)
    // The effective slope of f_random on the emergent miss rate is
    // ~2 (random branches also pollute the shared histories), hence
    // the divisor.
    const double f_random = std::clamp(
        (miss_per_branch - 0.01 - 0.05 * hard) / 2.0, 0.0, 1.0);
    // Few distinct loop periods for predictable codes (their loop
    // exits train cleanly); a wide mix, including periods beyond the
    // local history depth, for branchy codes.
    const int loop_span = 1 + static_cast<int>(60.0 * hard * hard);
    const double bias_tail = 0.004 + 0.10 * hard;

    branch_sites_.reserve(sites);
    for (int i = 0; i < sites; ++i) {
        BranchSite b;
        b.pc = 0x400000 + static_cast<std::uint64_t>(i) * 36 + 4;
        const double u = rng_.uniform();
        if (u < f_random) {
            b.cls = BranchClass::Random;
            b.taken_bias = 0.5;
        } else if (u < f_random + 0.4) {
            b.cls = BranchClass::Loop;
            b.loop_period =
                4 + static_cast<int>(rng_.below(
                    static_cast<std::uint64_t>(loop_span)));
        } else {
            b.cls = BranchClass::Biased;
            const double tail = bias_tail * rng_.uniform();
            b.taken_bias = rng_.chance(0.7) ? 1.0 - tail : tail;
        }
        branch_sites_.push_back(b);
    }
}

void
TraceGenerator::emitBranch(MicroOp &op)
{
    // Real programs execute the same branch in runs (a loop branch
    // fires once per iteration); without runs the history-based
    // predictors would see white noise.
    if (branch_run_left_ <= 0) {
        current_branch_ = rng_.below(branch_sites_.size());
        const BranchSite &nb = branch_sites_[current_branch_];
        branch_run_left_ = nb.cls == BranchClass::Loop
            ? nb.loop_period
            : 1 + static_cast<int>(rng_.below(3));
    }
    --branch_run_left_;
    BranchSite &b = branch_sites_[current_branch_];
    op.address = b.pc;
    switch (b.cls) {
      case BranchClass::Loop:
        ++b.loop_count;
        if (b.loop_count >= b.loop_period) {
            b.loop_count = 0;
            op.taken = false; // loop exit
        } else {
            op.taken = true;
        }
        break;
      case BranchClass::Biased:
      case BranchClass::Random:
        op.taken = rng_.chance(b.taken_bias);
        break;
    }
}

std::uint64_t
TraceGenerator::nextAddress(bool is_shared)
{
    const auto ws_bytes = static_cast<std::uint64_t>(
        std::max(profile_.working_set_kb, 4.0) * 1024.0);
    const std::uint64_t base = is_shared
        ? kSharedBit
        : kThreadRegion * static_cast<std::uint64_t>(thread_id_ + 1);

    // Spatial locality: stay in the last touched line.
    if (rng_.chance(profile_.spatial_locality))
        return last_line_ + rng_.below(kLineBytes);

    std::uint64_t addr = 0;
    if (rng_.chance(profile_.stride_frac)) {
        // Advance one of the strided streams; wrap in the working set.
        stream_idx_ = (stream_idx_ + 1) % stream_ptr_.size();
        stream_ptr_[stream_idx_] += stream_stride_[stream_idx_];
        addr = base + (stream_ptr_[stream_idx_] % ws_bytes);
    } else if (rng_.chance(profile_.temporal_locality)) {
        // Temporal locality: most irregular accesses touch a small
        // hot region (top of the reuse-distance distribution).
        const std::uint64_t hot_bytes =
            std::min<std::uint64_t>(ws_bytes, 16 * 1024);
        addr = base + rng_.below(hot_bytes);
    } else {
        // Pointer-chase style random access over the working set.
        addr = base + rng_.below(ws_bytes);
    }
    last_line_ = addr & ~(kLineBytes - 1);
    return addr;
}

MicroOp
TraceGenerator::next()
{
    MicroOp op;

    // Dependency distances: geometric-ish around the profile's mean.
    auto draw_dist = [this]() -> std::uint32_t {
        const double mean = profile_.mean_dep_distance;
        const double u = std::max(rng_.uniform(), 1e-12);
        const double d = -mean * std::log(u) * 0.7 + 1.0;
        return static_cast<std::uint32_t>(std::min(d, 512.0));
    };
    op.src1_dist = draw_dist();
    op.src2_dist = rng_.chance(0.6) ? draw_dist() : 0;

    // Pick the op class from the profile's mix.
    double r = rng_.uniform();
    const WorkloadProfile &p = profile_;
    if ((r -= p.load_frac) < 0.0) {
        op.op = OpClass::Load;
        op.address = nextAddress(p.parallel &&
                                 rng_.chance(p.shared_frac));
    } else if ((r -= p.store_frac) < 0.0) {
        op.op = OpClass::Store;
        op.address = nextAddress(p.parallel &&
                                 rng_.chance(p.shared_frac));
    } else if ((r -= p.branch_frac) < 0.0) {
        op.op = OpClass::Branch;
        // ~8% of branches are calls/returns exercising the RAS; the
        // stream keeps them balanced and well nested.
        const double cr = rng_.uniform();
        if (cr < 0.04 && call_depth_ < 64) {
            op.is_call = true;
            op.address = 0x400000 + rng_.below(4096) * 36 + 8;
            op.taken = true;
            call_stack_.push_back(op.address + 4);
            ++call_depth_;
        } else if (cr < 0.08 && call_depth_ > 0) {
            op.is_return = true;
            op.address = call_stack_.back();
            call_stack_.pop_back();
            --call_depth_;
            op.taken = true;
        } else {
            emitBranch(op);
        }
        const double mispredict_per_branch =
            p.branch_frac > 0.0
                ? (p.branch_mpki / 1000.0) / p.branch_frac
                : 0.0;
        op.mispredicted = rng_.chance(mispredict_per_branch);
    } else if ((r -= p.fp_frac) < 0.0) {
        const double s = rng_.uniform();
        op.op = s < 0.55 ? OpClass::FpAdd
              : s < 0.90 ? OpClass::FpMult : OpClass::FpDiv;
    } else if ((r -= p.mult_frac) < 0.0) {
        op.op = OpClass::IntMult;
    } else if ((r -= p.div_frac) < 0.0) {
        op.op = OpClass::IntDiv;
    } else {
        op.op = OpClass::IntAlu;
    }

    op.complex_decode = rng_.chance(p.complex_decode_frac);
    if (p.parallel) {
        const double serializing_per_instr =
            (p.barrier_per_kinstr + p.lock_per_kinstr) / 1000.0;
        op.serializing = rng_.chance(serializing_per_instr);
    }
    return op;
}

} // namespace m3d
