/**
 * @file
 * Trace record/replay (TraceCPU-style).
 *
 * A recorded trace freezes a synthetic (or externally produced)
 * micro-op stream into a compact binary file, so experiments can be
 * pinned to an exact instruction sequence independent of the
 * generator's evolution, and users can bring their own traces.
 *
 * Format: a 16-byte header (magic, version, count) followed by one
 * packed record per micro-op.
 */

#ifndef M3D_WORKLOAD_TRACE_FILE_HH_
#define M3D_WORKLOAD_TRACE_FILE_HH_

#include <cstdint>
#include <string>
#include <vector>

#include "arch/instruction.hh"

namespace m3d {

class TraceGenerator;

/** Writes micro-ops to a trace file. */
class TraceWriter
{
  public:
    /** @param path Output file; truncated if present. */
    explicit TraceWriter(const std::string &path);
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    /** Append one micro-op. */
    void append(const MicroOp &op);

    /** Flush and finalize the header. Called by the destructor. */
    void close();

    std::uint64_t count() const { return count_; }

    /** Convenience: record `n` ops from a generator. */
    static void record(const std::string &path, TraceGenerator &gen,
                       std::uint64_t n);

  private:
    std::string path_;
    std::vector<std::uint8_t> buffer_;
    std::uint64_t count_ = 0;
    bool closed_ = false;
};

/** Replays a recorded trace as a micro-op source. */
class TraceReader
{
  public:
    /** Loads the whole trace; fatal on a malformed file. */
    explicit TraceReader(const std::string &path);

    std::uint64_t size() const
    {
        return static_cast<std::uint64_t>(ops_.size());
    }

    /** Next op; wraps around at the end of the trace. */
    MicroOp next();

    /** Restart from the beginning. */
    void rewind() { pos_ = 0; }

    const MicroOp &at(std::uint64_t i) const
    {
        return ops_[static_cast<std::size_t>(i)];
    }

  private:
    std::vector<MicroOp> ops_;
    std::uint64_t pos_ = 0;
};

} // namespace m3d

#endif // M3D_WORKLOAD_TRACE_FILE_HH_
