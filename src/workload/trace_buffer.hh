/**
 * @file
 * Shared-trace replay: capture a synthetic instruction stream once,
 * replay it for every design.
 *
 * Everything TraceGenerator does (RNG forks, branch-site mixing,
 * stream-pointer updates) and everything the fixed Table-9 tournament
 * predictor learns is *design-independent*: the same (profile, seed,
 * thread) stream - and the same prediction outcomes - feed every
 * design a search or figure sweep evaluates.  A TraceBuffer therefore
 * freezes the stream once into structure-of-arrays chunks and runs
 * the predictor (and return-address stack) over it once, annotating
 * every branch with its resolved outcome.  CoreModel::run's replay
 * overload then consumes the columns directly: no per-op RNG, no
 * per-design predictor training, and bit-identical SimResult/Activity
 * to the generator path.
 *
 * The process-wide TraceRegistry shares buffers read-only across all
 * evaluations, keyed by the canonical 128-bit digest of
 * (profile, seed, thread).  Buffers extend on demand - generation is
 * a prefix-stable stream, so asking for more ops later appends to the
 * same buffer - and chunk storage is address-stable, so concurrent
 * readers of already-ensured prefixes never race an extension.
 *
 * Buffers can be pinned to disk in the existing TraceWriter /
 * TraceReader record format (workload/trace_file.hh); the resolved
 * outcomes are recomputed on load (they are derived state).
 */

#ifndef M3D_WORKLOAD_TRACE_BUFFER_HH_
#define M3D_WORKLOAD_TRACE_BUFFER_HH_

#include <algorithm>
#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "workload/branch_predictor.hh"
#include "arch/instruction.hh"
#include "util/key128.hh"
#include "workload/generator.hh"
#include "workload/profile.hh"

namespace m3d {

/**
 * Which op source a simulation draws from.  Replay (the default) is
 * the fast path: shared pre-resolved buffers from the TraceRegistry.
 * Generate runs the TraceGenerator and tournament predictor live per
 * evaluation; results are bit-identical either way, so Generate
 * exists for parity tests, benchmarks, and memory-constrained runs.
 */
enum class TracePath { Replay, Generate };

/** Canonical registry key of one (profile, seed, thread) stream. */
Key128 traceKey(const WorkloadProfile &profile, std::uint64_t seed,
                int thread_id);

/** One frozen, pre-resolved micro-op stream (see file comment). */
class TraceBuffer
{
  public:
    /** Ops per chunk (power of two; ~448 KB of columns). */
    static constexpr std::uint64_t kChunkOps = 1ull << 15;
    static constexpr std::uint64_t kChunkMask = kChunkOps - 1;
    static constexpr int kChunkShift = 15;

    /** Per-op flag bits (bits 0-5 match the trace-file format). */
    enum Flag : std::uint8_t {
        kFlagTaken = 1,          ///< branches: actual direction
        kFlagStatMispredict = 2, ///< generator's statistical draw
        kFlagComplex = 4,        ///< needs the complex decoder
        kFlagSerializing = 8,    ///< parallel apps: lock/barrier op
        kFlagCall = 16,          ///< branches: call (pushes the RAS)
        kFlagReturn = 32,        ///< branches: return (pops the RAS)
        /** Pre-resolved Table-9 tournament/RAS outcome. */
        kFlagMispredict = 64,
    };

    /** Structure-of-arrays columns of kChunkOps micro-ops. */
    struct Chunk
    {
        std::array<std::uint8_t, kChunkOps> op;    ///< OpClass
        std::array<std::uint16_t, kChunkOps> src1; ///< dep distance
        std::array<std::uint16_t, kChunkOps> src2; ///< dep distance
        std::array<std::uint64_t, kChunkOps> address;
        std::array<std::uint8_t, kChunkOps> flags; ///< Flag bits
    };

    /** A generator-backed buffer; extends on demand via ensure(). */
    TraceBuffer(const WorkloadProfile &profile, std::uint64_t seed,
                int thread_id);

    /**
     * A file-backed buffer (fixed length): loads every record of a
     * recorded trace and pre-resolves its branches.  `profile` is
     * kept for the replay engine's code-footprint model; the trace
     * format itself stores only the op stream.
     */
    TraceBuffer(const std::string &path, const WorkloadProfile &profile);

    TraceBuffer(const TraceBuffer &) = delete;
    TraceBuffer &operator=(const TraceBuffer &) = delete;

    /**
     * Capture and pre-resolve the stream out to at least `n` ops.
     * Thread-safe; returns immediately when already long enough.
     * Fatal on a file-backed buffer shorter than `n`.
     */
    void ensure(std::uint64_t n);

    /** Ops captured and resolved so far. */
    std::uint64_t size() const;

    /**
     * Chunk `ci` of the columns.  Safe to call without locking for
     * any chunk fully below a count some ensure() call has returned
     * for on this thread (chunk storage is address-stable).
     */
    const Chunk &
    chunk(std::uint64_t ci) const
    {
        return *chunks_[static_cast<std::size_t>(ci)];
    }

    /**
     * One contiguous span of resolved ops inside a single chunk: the
     * column arrays plus the half-open offset window [begin, end)
     * valid in them.  `base` is the global op index of the op at
     * column offset `begin`, so the op at offset `o` has global index
     * `base + (o - begin)`.
     */
    struct ChunkView
    {
        const Chunk *chunk = nullptr;
        std::uint64_t base = 0;
        std::uint32_t begin = 0;
        std::uint32_t end = 0;

        std::uint32_t size() const { return end - begin; }
        /** Chunk index of the viewed columns (MemLevelTable rows and
         * other per-op side tables mirror this chunking). */
        std::uint64_t index() const
        {
            return (base - begin) >> kChunkShift;
        }
    };

    /**
     * Iterable sequence of ChunkViews covering [pos, pos + n): one
     * view per chunk the window touches, in stream order.  The one
     * chunk-walking interface shared by the sequential replay
     * streams, the batched replay kernel, and trace tooling.
     */
    class ChunkRange
    {
      public:
        class iterator
        {
          public:
            iterator(const TraceBuffer *buf, std::uint64_t pos,
                     std::uint64_t end)
                : buf_(buf), pos_(pos), end_(end)
            {
            }

            ChunkView operator*() const
            {
                const std::uint64_t ci = pos_ >> kChunkShift;
                const auto off =
                    static_cast<std::uint32_t>(pos_ & kChunkMask);
                const std::uint64_t stop =
                    std::min(end_, (ci + 1) << kChunkShift);
                return ChunkView{
                    &buf_->chunk(ci), pos_, off,
                    off + static_cast<std::uint32_t>(stop - pos_)};
            }

            iterator &operator++()
            {
                const std::uint64_t ci = pos_ >> kChunkShift;
                pos_ = std::min(end_, (ci + 1) << kChunkShift);
                return *this;
            }

            bool operator!=(const iterator &o) const
            {
                return pos_ != o.pos_;
            }

          private:
            const TraceBuffer *buf_;
            std::uint64_t pos_;
            std::uint64_t end_;
        };

        ChunkRange(const TraceBuffer *buf, std::uint64_t pos,
                   std::uint64_t end)
            : buf_(buf), pos_(pos), end_(end)
        {
        }

        iterator begin() const { return {buf_, pos_, end_}; }
        iterator end() const { return {buf_, end_, end_}; }

      private:
        const TraceBuffer *buf_;
        std::uint64_t pos_;
        std::uint64_t end_;
    };

    /**
     * The views covering ops [pos, pos + n); the window must already
     * be resolved (some ensure() call returned for pos + n).
     */
    ChunkRange range(std::uint64_t pos, std::uint64_t n) const;

    /** AoS view of op `i` (tests, tooling; not the replay hot path). */
    MicroOp at(std::uint64_t i) const;

    /** Pin the first size() ops to disk in the trace-file format. */
    void save(const std::string &path) const;

    const WorkloadProfile &profile() const { return profile_; }
    std::uint64_t seed() const { return seed_; }
    int threadId() const { return thread_id_; }

    /** Branches whose pre-resolved outcome is a mispredict. */
    std::uint64_t resolvedMispredicts() const;

    /** Approximate resident bytes of the captured columns. */
    std::uint64_t memoryBytes() const;

  private:
    void appendResolved(const MicroOp &op);

    WorkloadProfile profile_;
    std::uint64_t seed_ = 0;
    int thread_id_ = 0;
    bool extendable_ = true; ///< false for file-backed buffers

    mutable std::mutex mutex_;
    /**
     * Reserved to kMaxChunks at construction so append never moves
     * the pointer array under a concurrent reader's feet.
     */
    std::vector<std::unique_ptr<Chunk>> chunks_;
    std::uint64_t size_ = 0;
    std::uint64_t resolved_mispredicts_ = 0;

    /** Continuation state for prefix-stable extension. */
    TraceGenerator gen_;
    /** Pre-resolve state (default Table-9 geometry, like CoreModel). */
    TournamentPredictor predictor_;
};

/**
 * Read-only sequential position into a shared TraceBuffer.  One
 * cursor per (design evaluation, hardware thread); consecutive
 * CoreModel::run calls (warmup then measurement) continue the same
 * cursor, exactly like consecutive TraceGenerator::next() streams.
 */
class TraceCursor
{
  public:
    TraceCursor() = default;
    explicit TraceCursor(std::shared_ptr<const TraceBuffer> buf)
        : buf_(std::move(buf))
    {
    }

    const TraceBuffer &buffer() const { return *buf_; }
    /** The shared ownership handle (keeps side tables keyed by
     * buffer identity safe against address reuse). */
    std::shared_ptr<const TraceBuffer> share() const { return buf_; }
    bool valid() const { return buf_ != nullptr; }
    std::uint64_t position() const { return pos_; }

    /** Advance past `n` consumed ops (CoreModel::run does this). */
    void advance(std::uint64_t n) { pos_ += n; }

  private:
    std::shared_ptr<const TraceBuffer> buf_;
    std::uint64_t pos_ = 0;
};

/**
 * Process-wide cache of trace buffers, keyed by traceKey().  Every
 * evaluation of the same (profile, seed, thread) - across designs,
 * worker threads, and Evaluator instances - shares one buffer.
 */
class TraceRegistry
{
  public:
    /** The process-wide instance the simulation harness uses. */
    static TraceRegistry &global();

    /**
     * The shared buffer for (profile, seed, thread), captured out to
     * at least `min_ops` before returning.  Creates the buffer on
     * first use.
     */
    std::shared_ptr<const TraceBuffer>
    acquire(const WorkloadProfile &profile, std::uint64_t seed,
            int thread_id, std::uint64_t min_ops);

    /** Number of distinct streams captured. */
    std::size_t bufferCount() const;

    /** Total ops captured across all buffers. */
    std::uint64_t totalOps() const;

    /** Total resident bytes across all buffers. */
    std::uint64_t totalBytes() const;

    /** Drop every buffer (benchmarks that need a cold registry). */
    void clear();

  private:
    mutable std::mutex mutex_;
    std::unordered_map<Key128, std::shared_ptr<TraceBuffer>, Key128Hash>
        buffers_;
};

} // namespace m3d

#endif // M3D_WORKLOAD_TRACE_BUFFER_HH_
