/**
 * @file
 * Tournament branch predictor (Table 9): a 4K-entry selector indexed
 * by a hash of PC and global history chooses between a 4K-entry
 * local predictor and a 4K-entry global (gshare) predictor; a
 * 4K-entry 4-way BTB supplies targets and a 32-entry return address
 * stack handles calls/returns.
 *
 * All tables use 2-bit saturating counters.  The paper partitions
 * these structures with asymmetric bit/word partitioning (Section
 * 4.3.2); this functional model supplies the *misprediction stream*
 * that the timing model charges at the design's notification latency.
 *
 * The geometry is fixed across the whole design space (partitioning
 * changes a structure's latency/energy, never its contents), so the
 * prediction stream depends only on the workload's (pc, taken)
 * sequence.  That makes the predictor part of the workload layer: the
 * trace buffer pre-resolves it once per stream and every design
 * replays the annotated outcomes (workload/trace_buffer.hh).
 */

#ifndef M3D_WORKLOAD_BRANCH_PREDICTOR_HH_
#define M3D_WORKLOAD_BRANCH_PREDICTOR_HH_

#include <cstdint>
#include <vector>

namespace m3d {

/** Geometry of the tournament predictor. */
struct BranchPredictorConfig
{
    int selector_entries = 4096;
    int local_entries = 4096;
    int global_entries = 4096;
    int local_history_bits = 10;
    int btb_entries = 4096;
    int btb_ways = 4;
    int ras_entries = 32;
};

/** Outcome of one prediction. */
struct BranchPrediction
{
    bool predicted_taken = false;
    bool btb_hit = false;   ///< target known at fetch
    bool used_global = false;
};

/** The predictor state machine. */
class TournamentPredictor
{
  public:
    explicit TournamentPredictor(
        const BranchPredictorConfig &cfg=BranchPredictorConfig{});

    /** Predict a conditional branch at `pc`. */
    BranchPrediction predict(std::uint64_t pc) const;

    /**
     * Train with the actual outcome and report whether the earlier
     * prediction would have missed.
     *
     * @return true when the prediction was wrong (direction) or the
     *         BTB missed on a taken branch (target unknown).
     */
    bool predictAndTrain(std::uint64_t pc, bool taken);

    /** Push a return address (call instruction). */
    void pushCall(std::uint64_t return_pc);

    /**
     * Pop for a return instruction.
     * @return true when the stack had the address (no mispredict).
     */
    bool popReturn(std::uint64_t return_pc);

    std::uint64_t lookups() const { return lookups_; }
    std::uint64_t mispredicts() const { return mispredicts_; }
    double mispredictRate() const;

  private:
    int selectorIndex(std::uint64_t pc) const;
    int localIndex(std::uint64_t pc) const;
    int globalIndex(std::uint64_t pc) const;
    static bool counterTaken(std::uint8_t c) { return c >= 2; }
    static void train(std::uint8_t &c, bool taken);

    BranchPredictorConfig cfg_;
    std::vector<std::uint8_t> selector_; ///< 0..3: prefer local..global
    std::vector<std::uint8_t> local_;
    std::vector<std::uint8_t> global_;
    std::vector<std::uint16_t> local_history_;
    std::vector<std::uint64_t> btb_;     ///< tags; 0 = invalid
    std::vector<std::uint64_t> ras_;
    int ras_top_ = 0;
    int ras_depth_ = 0;
    std::uint64_t ghr_ = 0;
    std::uint64_t lookups_ = 0;
    std::uint64_t mispredicts_ = 0;
};

} // namespace m3d

#endif // M3D_WORKLOAD_BRANCH_PREDICTOR_HH_
