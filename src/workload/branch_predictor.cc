#include "workload/branch_predictor.hh"

#include "util/logging.hh"

namespace m3d {

TournamentPredictor::TournamentPredictor(
    const BranchPredictorConfig &cfg)
    : cfg_(cfg)
{
    auto pow2 = [](int v) { return v > 0 && (v & (v - 1)) == 0; };
    M3D_ASSERT(pow2(cfg_.selector_entries) &&
               pow2(cfg_.local_entries) && pow2(cfg_.global_entries) &&
               pow2(cfg_.btb_entries),
               "predictor tables must be powers of two");
    // Weakly-taken initial counters.
    selector_.assign(static_cast<std::size_t>(cfg_.selector_entries),
                     1);
    local_.assign(static_cast<std::size_t>(cfg_.local_entries), 1);
    global_.assign(static_cast<std::size_t>(cfg_.global_entries), 1);
    local_history_.assign(
        static_cast<std::size_t>(cfg_.local_entries), 0);
    btb_.assign(static_cast<std::size_t>(cfg_.btb_entries) *
                static_cast<std::size_t>(cfg_.btb_ways), 0);
    ras_.assign(static_cast<std::size_t>(cfg_.ras_entries), 0);
}

int
TournamentPredictor::selectorIndex(std::uint64_t pc) const
{
    return static_cast<int>((pc ^ ghr_) &
                            static_cast<std::uint64_t>(
                                cfg_.selector_entries - 1));
}

int
TournamentPredictor::localIndex(std::uint64_t pc) const
{
    // Alpha-style two-level local predictor: the per-branch history
    // register selects the PHT entry.  Indexing by history alone
    // lets branches with the same behaviour (all-taken, loop-with-
    // period-L) constructively share counters instead of aliasing
    // destructively.
    const auto slot =
        pc & static_cast<std::uint64_t>(cfg_.local_entries - 1);
    const std::uint16_t hist =
        local_history_[static_cast<std::size_t>(slot)];
    return static_cast<int>(hist &
                            static_cast<std::uint64_t>(
                                cfg_.local_entries - 1));
}

int
TournamentPredictor::globalIndex(std::uint64_t pc) const
{
    return static_cast<int>((pc ^ (ghr_ << 2)) &
                            static_cast<std::uint64_t>(
                                cfg_.global_entries - 1));
}

void
TournamentPredictor::train(std::uint8_t &c, bool taken)
{
    if (taken) {
        if (c < 3)
            ++c;
    } else {
        if (c > 0)
            --c;
    }
}

BranchPrediction
TournamentPredictor::predict(std::uint64_t pc) const
{
    BranchPrediction out;
    const bool local_taken = counterTaken(
        local_[static_cast<std::size_t>(localIndex(pc))]);
    const bool global_taken = counterTaken(
        global_[static_cast<std::size_t>(globalIndex(pc))]);
    out.used_global = counterTaken(
        selector_[static_cast<std::size_t>(selectorIndex(pc))]);
    out.predicted_taken = out.used_global ? global_taken : local_taken;

    // BTB probe: direct-mapped sets of `ways` tags.
    const auto set =
        (pc >> 2) & static_cast<std::uint64_t>(cfg_.btb_entries - 1);
    const std::uint64_t *base =
        &btb_[set * static_cast<std::size_t>(cfg_.btb_ways)];
    for (int w = 0; w < cfg_.btb_ways; ++w) {
        if (base[w] == pc) {
            out.btb_hit = true;
            break;
        }
    }
    return out;
}

bool
TournamentPredictor::predictAndTrain(std::uint64_t pc, bool taken)
{
    ++lookups_;
    const BranchPrediction p = predict(pc);

    // Train the component predictors and the selector.
    std::uint8_t &sel =
        selector_[static_cast<std::size_t>(selectorIndex(pc))];
    std::uint8_t &loc =
        local_[static_cast<std::size_t>(localIndex(pc))];
    std::uint8_t &glob =
        global_[static_cast<std::size_t>(globalIndex(pc))];
    const bool local_correct = counterTaken(loc) == taken;
    const bool global_correct = counterTaken(glob) == taken;
    if (local_correct != global_correct)
        train(sel, global_correct); // move towards the right expert
    train(loc, taken);
    train(glob, taken);

    // Histories.
    const auto slot =
        pc & static_cast<std::uint64_t>(cfg_.local_entries - 1);
    std::uint16_t &hist =
        local_history_[static_cast<std::size_t>(slot)];
    hist = static_cast<std::uint16_t>(
        ((hist << 1) | (taken ? 1 : 0)) &
        ((1u << cfg_.local_history_bits) - 1));
    ghr_ = (ghr_ << 1) | (taken ? 1 : 0);

    // BTB: allocate on taken branches (simple rotate replacement).
    bool btb_miss = false;
    if (taken) {
        const auto set = (pc >> 2) &
                         static_cast<std::uint64_t>(
                             cfg_.btb_entries - 1);
        std::uint64_t *base =
            &btb_[set * static_cast<std::size_t>(cfg_.btb_ways)];
        bool hit = false;
        for (int w = 0; w < cfg_.btb_ways; ++w)
            hit = hit || base[w] == pc;
        if (!hit) {
            btb_miss = true;
            for (int w = cfg_.btb_ways - 1; w > 0; --w)
                base[w] = base[w - 1];
            base[0] = pc;
        }
    }

    const bool wrong = p.predicted_taken != taken ||
                       (taken && btb_miss);
    if (wrong)
        ++mispredicts_;
    return wrong;
}

void
TournamentPredictor::pushCall(std::uint64_t return_pc)
{
    ras_[static_cast<std::size_t>(ras_top_)] = return_pc;
    ras_top_ = (ras_top_ + 1) % cfg_.ras_entries;
    if (ras_depth_ < cfg_.ras_entries)
        ++ras_depth_;
}

bool
TournamentPredictor::popReturn(std::uint64_t return_pc)
{
    if (ras_depth_ == 0)
        return false;
    ras_top_ = (ras_top_ + cfg_.ras_entries - 1) % cfg_.ras_entries;
    --ras_depth_;
    return ras_[static_cast<std::size_t>(ras_top_)] == return_pc;
}

double
TournamentPredictor::mispredictRate() const
{
    return lookups_ == 0
        ? 0.0
        : static_cast<double>(mispredicts_) /
          static_cast<double>(lookups_);
}

} // namespace m3d
