#include "workload/profile.hh"

#include "util/logging.hh"

namespace m3d {

namespace {

/** Compact builder for serial (SPEC) profiles. */
WorkloadProfile
spec(const std::string &name, double fp, double load, double store,
     double branch, double mpki, double ws_kb, double stride,
     double dep_dist, double temporal=0.85)
{
    WorkloadProfile p;
    p.name = name;
    p.fp_frac = fp;
    p.load_frac = load;
    p.store_frac = store;
    p.branch_frac = branch;
    p.branch_mpki = mpki;
    p.working_set_kb = ws_kb;
    p.stride_frac = stride;
    p.mean_dep_distance = dep_dist;
    p.temporal_locality = temporal;
    p.complex_decode_frac = fp > 0.2 ? 0.01 : 0.03;
    // Branchy integer codes have larger hot instruction footprints.
    p.code_footprint_kb = branch > 0.15 ? 48.0 : 20.0;
    return p;
}

/** Compact builder for parallel (SPLASH2/PARSEC) profiles. */
WorkloadProfile
par(const std::string &name, double fp, double load, double mpki,
    double ws_kb, double stride, double dep_dist, double pfrac,
    double shared, double barriers, double locks, double temporal=0.85)
{
    WorkloadProfile p;
    p.name = name;
    p.fp_frac = fp;
    p.load_frac = load;
    p.store_frac = 0.12;
    p.branch_frac = 0.12;
    p.branch_mpki = mpki;
    p.working_set_kb = ws_kb;
    p.stride_frac = stride;
    p.mean_dep_distance = dep_dist;
    p.temporal_locality = temporal;
    p.parallel = true;
    p.parallel_frac = pfrac;
    p.shared_frac = shared;
    p.barrier_per_kinstr = barriers;
    p.lock_per_kinstr = locks;
    return p;
}

} // namespace

std::vector<WorkloadProfile>
WorkloadLibrary::spec2006()
{
    // name              fp    load  store branch mpki  ws_kb  stride dep
    return {
        spec("Astar",     0.00, 0.28, 0.08, 0.18, 9.0,  2048,  0.35, 7),
        spec("Bzip2",     0.00, 0.26, 0.11, 0.15, 6.0,  1024,  0.55, 9),
        spec("Calculix",  0.30, 0.26, 0.09, 0.07, 1.2,  512,   0.75, 16),
        spec("Dealii",    0.28, 0.30, 0.10, 0.12, 2.2,  4096,  0.55, 12),
        spec("Gamess",    0.35, 0.24, 0.08, 0.06, 0.8,  128,   0.80, 18),
        spec("Gcc",       0.00, 0.27, 0.12, 0.18, 6.5,  2048,  0.40, 8),
        spec("Gems",      0.36, 0.32, 0.11, 0.05, 0.7,  16384, 0.85, 14),
        spec("Gobmk",     0.00, 0.26, 0.10, 0.19, 11.0, 512,   0.45, 7),
        spec("Gromacs",   0.32, 0.26, 0.09, 0.05, 1.0,  256,   0.80, 17),
        spec("H264Ref",   0.06, 0.32, 0.10, 0.10, 2.8,  512,   0.70, 14),
        spec("Hmmer",     0.00, 0.32, 0.12, 0.08, 1.4,  128,   0.75, 16),
        spec("Lbm",       0.38, 0.30, 0.16, 0.02, 0.5,  32768, 0.92, 15),
        spec("Libquantum",0.00, 0.26, 0.06, 0.14, 1.2,  16384, 0.95, 13),
        spec("Mcf",       0.00, 0.34, 0.10, 0.17, 8.0,  65536, 0.15, 5, 0.45),
        spec("Milc",      0.36, 0.32, 0.12, 0.03, 0.6,  16384, 0.85, 13),
        spec("Namd",      0.34, 0.26, 0.08, 0.05, 0.9,  256,   0.80, 18),
        spec("Omnetpp",   0.00, 0.31, 0.14, 0.15, 5.5,  8192,  0.20, 7, 0.60),
        spec("Povray",    0.30, 0.28, 0.09, 0.12, 4.0,  64,    0.65, 13),
        spec("Sjeng",     0.00, 0.24, 0.08, 0.19, 9.5,  256,   0.45, 7),
        spec("Soplex",    0.26, 0.32, 0.08, 0.10, 3.0,  8192,  0.60, 10),
        spec("Xalancbmk", 0.00, 0.31, 0.10, 0.17, 4.5,  4096,  0.35, 8),
    };
}

std::vector<WorkloadProfile>
WorkloadLibrary::splash2parsec()
{
    // name                fp    load  mpki  ws_kb  strd dep  pfrac shar  barr  lock
    return {
        par("Barnes",        0.30, 0.30, 2.5,  2048,  0.45, 11, 0.97, 0.05, 0.02, 0.05),
        par("Blackscholes",  0.40, 0.26, 0.6,  256,   0.80, 16, 0.99, 0.01, 0.01, 0.00),
        par("Canneal",       0.02, 0.33, 4.5,  32768, 0.15, 7,  0.96, 0.14, 0.01, 0.02, 0.55),
        par("Cholesky",      0.32, 0.30, 1.8,  4096,  0.60, 12, 0.93, 0.07, 0.03, 0.10),
        par("Fft",           0.34, 0.30, 0.8,  8192,  0.85, 14, 0.98, 0.04, 0.08, 0.00),
        par("Fluidanimate",  0.30, 0.28, 1.6,  4096,  0.55, 12, 0.96, 0.08, 0.04, 0.12),
        par("Fmm",           0.32, 0.29, 1.5,  2048,  0.55, 13, 0.97, 0.05, 0.03, 0.04),
        par("Lu",            0.34, 0.30, 0.7,  2048,  0.80, 15, 0.98, 0.03, 0.06, 0.00),
        par("Ocean",         0.33, 0.33, 1.0,  16384, 0.85, 13, 0.98, 0.06, 0.10, 0.00),
        par("Radiosity",     0.28, 0.28, 3.0,  1024,  0.40, 10, 0.95, 0.08, 0.01, 0.15),
        par("Radix",         0.02, 0.30, 0.5,  8192,  0.85, 14, 0.98, 0.03, 0.06, 0.00),
        par("Raytrace",      0.28, 0.30, 3.5,  4096,  0.35, 9,  0.95, 0.06, 0.01, 0.12),
        par("Streamcluster", 0.30, 0.32, 0.8,  8192,  0.85, 13, 0.97, 0.10, 0.09, 0.01),
        par("Water-Nsquared",0.33, 0.28, 1.2,  512,   0.70, 14, 0.97, 0.04, 0.03, 0.06),
        par("Water-Spatial", 0.33, 0.28, 1.1,  512,   0.70, 14, 0.98, 0.03, 0.03, 0.03),
    };
}

WorkloadProfile
WorkloadLibrary::byName(const std::string &name)
{
    for (const WorkloadProfile &p : spec2006()) {
        if (p.name == name)
            return p;
    }
    for (const WorkloadProfile &p : splash2parsec()) {
        if (p.name == name)
            return p;
    }
    M3D_FATAL("unknown workload: ", name);
}

void
hashProfile(KeyBuilder &kb, const WorkloadProfile &p)
{
    kb.add(p.name)
        .add(p.load_frac)
        .add(p.store_frac)
        .add(p.branch_frac)
        .add(p.fp_frac)
        .add(p.mult_frac)
        .add(p.div_frac)
        .add(p.complex_decode_frac)
        .add(p.mean_dep_distance)
        .add(p.branch_mpki)
        .add(p.working_set_kb)
        .add(p.code_footprint_kb)
        .add(p.stride_frac)
        .add(p.spatial_locality)
        .add(p.temporal_locality)
        .add(p.parallel)
        .add(p.parallel_frac)
        .add(p.shared_frac)
        .add(p.barrier_per_kinstr)
        .add(p.lock_per_kinstr);
}

} // namespace m3d
