/**
 * @file
 * Load and save workload profiles as plain "key = value" text files,
 * so users can define their own applications without recompiling.
 *
 * Format: one field per line, `#` starts a comment, unknown keys are
 * fatal (they are almost always typos).  `name` and booleans take
 * strings ("true"/"false"); everything else is a double.
 */

#ifndef M3D_WORKLOAD_PROFILE_IO_HH_
#define M3D_WORKLOAD_PROFILE_IO_HH_

#include <iosfwd>
#include <string>

#include "workload/profile.hh"

namespace m3d {

/** Parse a profile from a stream; fatal on malformed input. */
WorkloadProfile readProfile(std::istream &in,
                            const std::string &origin="<stream>");

/** Load a profile from a file; fatal if unreadable or malformed. */
WorkloadProfile loadProfile(const std::string &path);

/** Serialize a profile (round-trips through readProfile). */
void writeProfile(std::ostream &out, const WorkloadProfile &profile);

/** Save a profile to a file; fatal if the file cannot be written. */
void saveProfile(const std::string &path,
                 const WorkloadProfile &profile);

} // namespace m3d

#endif // M3D_WORKLOAD_PROFILE_IO_HH_
