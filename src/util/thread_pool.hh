/**
 * @file
 * Fixed-size thread pool for the evaluation engine.
 *
 * Deliberately simple - a single locked queue, no work stealing:
 * every task in this codebase is a coarse, CPU-bound design-point
 * evaluation (microseconds to milliseconds), so queue contention is
 * negligible and a deterministic structure is worth more than the
 * last few percent of throughput.
 *
 * ## The `threads == 1` contract
 *
 * With `threads <= 1` the pool spawns NO worker threads: submit()
 * runs each task inline on the calling thread, in submission order,
 * before returning.  A request for exactly one worker is therefore
 * deliberately identical to a serial run - one worker thread would
 * execute the same tasks in the same FIFO order, only with extra
 * queue/wakeup latency and a nondeterministic interleaving against
 * the submitting thread.  Every layer agrees on this meaning:
 * resolveThreads(1) returns 1, ThreadPool(1) is the inline pool, and
 * a user-facing `--jobs 1` always means "deterministic serial
 * order", never "one background worker".  threads() reports 0 for an
 * inline pool (the number of spawned workers, not the request).
 *
 * A serial run thus takes exactly the code path a parallel run takes
 * minus the threads - results must be identical by construction.
 */

#ifndef M3D_UTIL_THREAD_POOL_HH_
#define M3D_UTIL_THREAD_POOL_HH_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace m3d {

/** Fixed pool of worker threads executing queued tasks FIFO. */
class ThreadPool
{
  public:
    /**
     * @param threads Worker count; <= 1 means no workers are spawned
     *                and tasks run inline, in submission order, when
     *                submitted (see the file comment: a 1-thread
     *                request IS the serial inline pool).
     */
    explicit ThreadPool(int threads);

    /** Drains the queue, then joins all workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads (0 for an inline pool). */
    int threads() const { return static_cast<int>(workers_.size()); }

    /**
     * Queue one task.  The future rethrows any exception the task
     * threw.  Inline pools execute the task before returning.
     */
    std::future<void> submit(std::function<void()> task);

    /**
     * Run `body(0) .. body(n-1)` across the pool and block until all
     * complete.  Iterations must be independent; the index is the
     * caller's handle for ordered result merging.  The first
     * exception (lowest index) is rethrown.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &body);

    /**
     * Resolve a user-facing thread request (e.g. a `--jobs` flag):
     * values >= 1 pass through unchanged - in particular 1 stays 1,
     * which constructs the inline serial pool - and anything else
     * means "all hardware threads" (never less than 1).
     */
    static int resolveThreads(int requested);

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::deque<std::packaged_task<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stop_ = false;
};

} // namespace m3d

#endif // M3D_UTIL_THREAD_POOL_HH_
