/**
 * @file
 * Physical-unit helpers.
 *
 * All model code works in SI base units (metres, seconds, farads, ohms,
 * watts, joules, kelvin).  These constexpr helpers make literals in
 * configuration tables readable, e.g. `50.0 * units::nm`.
 */

#ifndef M3D_UTIL_UNITS_HH_
#define M3D_UTIL_UNITS_HH_

namespace m3d {
namespace units {

// Length.
constexpr double m = 1.0;
constexpr double cm = 1e-2;
constexpr double mm = 1e-3;
constexpr double um = 1e-6;
constexpr double nm = 1e-9;

// Time.
constexpr double s = 1.0;
constexpr double ms = 1e-3;
constexpr double us = 1e-6;
constexpr double ns = 1e-9;
constexpr double ps = 1e-12;

// Capacitance.
constexpr double F = 1.0;
constexpr double pF = 1e-12;
constexpr double fF = 1e-15;
constexpr double aF = 1e-18;

// Resistance.
constexpr double Ohm = 1.0;
constexpr double mOhm = 1e-3;
constexpr double kOhm = 1e3;

// Frequency.
constexpr double Hz = 1.0;
constexpr double MHz = 1e6;
constexpr double GHz = 1e9;

// Power / energy / voltage.
constexpr double W = 1.0;
constexpr double mW = 1e-3;
constexpr double uW = 1e-6;
constexpr double J = 1.0;
constexpr double nJ = 1e-9;
constexpr double pJ = 1e-12;
constexpr double fJ = 1e-15;
constexpr double V = 1.0;
constexpr double mV = 1e-3;

// Area (square metres).
constexpr double m2 = 1.0;
constexpr double mm2 = 1e-6;
constexpr double um2 = 1e-12;
constexpr double nm2 = 1e-18;

} // namespace units

/** Fractional change of `now` relative to `base`: positive = reduction. */
constexpr double
reductionVs(double base, double now)
{
    return (base - now) / base;
}

/** Express a 0..1 fraction as percent. */
constexpr double
asPercent(double fraction)
{
    return fraction * 100.0;
}

} // namespace m3d

#endif // M3D_UTIL_UNITS_HH_
