#include "util/simd.hh"

#include <cstdlib>
#include <cstring>

namespace m3d {
namespace simd {

bool
avx2Supported()
{
#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)
    static const bool supported = __builtin_cpu_supports("avx2");
    return supported;
#else
    return false;
#endif
}

bool
avx512Supported()
{
#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)
    static const bool supported = __builtin_cpu_supports("avx512f") &&
        __builtin_cpu_supports("avx512vl") &&
        __builtin_cpu_supports("avx512dq") &&
        __builtin_cpu_supports("avx512bw");
    return supported;
#else
    return false;
#endif
}

bool
fmaSupported()
{
#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)
    static const bool supported = __builtin_cpu_supports("fma");
    return supported;
#else
    return false;
#endif
}

bool
disabledByEnv()
{
    const char *v = std::getenv("M3D_NO_SIMD");
    return v != nullptr && *v != '\0' && std::strcmp(v, "0") != 0;
}

bool
useAvx2()
{
    static const bool use = avx2Supported() && !disabledByEnv();
    return use;
}

bool
useAvx512()
{
    static const bool use = avx512Supported() && !disabledByEnv();
    return use;
}

bool
useFma()
{
    static const bool use = fmaSupported() && !disabledByEnv();
    return use;
}

} // namespace simd
} // namespace m3d
