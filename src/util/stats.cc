#include "util/stats.hh"

#include <algorithm>

#include "util/logging.hh"

namespace m3d {

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0)
{
    M3D_ASSERT(buckets >= 1);
    M3D_ASSERT(hi > lo);
}

void
Histogram::sample(double v)
{
    const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
    auto idx = static_cast<std::int64_t>((v - lo_) / width);
    idx = std::clamp<std::int64_t>(
        idx, 0, static_cast<std::int64_t>(counts_.size()) - 1);
    ++counts_[static_cast<std::size_t>(idx)];
    ++count_;
    sum_ += v;
}

double
Histogram::mean() const
{
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double
Histogram::bucketLo(std::size_t i) const
{
    const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
    return lo_ + width * static_cast<double>(i);
}

void
StatGroup::addCounter(const std::string &stat_name, const Counter &c)
{
    counters_[stat_name] = &c;
}

void
StatGroup::addScalar(const std::string &stat_name, const Scalar &s)
{
    scalars_[stat_name] = &s;
}

void
StatGroup::dump(std::ostream &os) const
{
    for (const auto &[stat_name, c] : counters_)
        os << name_ << "." << stat_name << " " << c->value() << "\n";
    for (const auto &[stat_name, s] : scalars_)
        os << name_ << "." << stat_name << " " << s->value() << "\n";
}

} // namespace m3d
