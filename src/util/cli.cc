#include "util/cli.hh"

#include <cerrno>
#include <climits>
#include <cstdlib>
#include <iostream>
#include <sstream>

namespace m3d {
namespace cli {

Parser::Parser(std::string program, std::string summary)
    : program_(std::move(program)), summary_(std::move(summary))
{
}

Parser &
Parser::add(const std::string &name, Kind kind, void *target,
            const std::string &help, std::string defval)
{
    flags_.push_back({"--" + name, kind, target, help,
                      std::move(defval)});
    return *this;
}

Parser &
Parser::flag(const std::string &name, std::string *value,
             const std::string &help)
{
    return add(name, Kind::String, value, help,
               value->empty() ? "" : *value);
}

Parser &
Parser::flag(const std::string &name, int *value,
             const std::string &help)
{
    return add(name, Kind::Int, value, help, std::to_string(*value));
}

Parser &
Parser::flag(const std::string &name, std::uint64_t *value,
             const std::string &help)
{
    return add(name, Kind::Uint64, value, help, std::to_string(*value));
}

Parser &
Parser::flag(const std::string &name, double *value,
             const std::string &help)
{
    std::ostringstream os;
    os << *value;
    return add(name, Kind::Double, value, help, os.str());
}

Parser &
Parser::flag(const std::string &name, bool *value,
             const std::string &help)
{
    return add(name, Kind::Bool, value, help, "");
}

Parser &
Parser::positional(const std::string &name, const std::string &help,
                   bool required)
{
    pos_spec_.push_back({name, help, required});
    return *this;
}

const Parser::Flag *
Parser::find(const std::string &name) const
{
    for (const Flag &f : flags_) {
        if (f.name == name)
            return &f;
    }
    return nullptr;
}

bool
Parser::assign(const Flag &f, const std::string &text,
               std::string *err) const
{
    const char *s = text.c_str();
    char *end = nullptr;
    switch (f.kind) {
      case Kind::String:
        *static_cast<std::string *>(f.target) = text;
        return true;
      case Kind::Int: {
        // errno is the only way strtol reports overflow ("9e99"-style
        // garbage already fails the end-pointer check, but
        // "99999999999999999999" saturates silently without it).
        errno = 0;
        const long v = std::strtol(s, &end, 10);
        if (end == s || *end != '\0' || errno == ERANGE ||
            v < INT_MIN || v > INT_MAX) {
            *err = "expects an integer in int range";
            return false;
        }
        *static_cast<int *>(f.target) = static_cast<int>(v);
        return true;
      }
      case Kind::Uint64: {
        errno = 0;
        const unsigned long long v = std::strtoull(s, &end, 10);
        if (end == s || *end != '\0' || text[0] == '-' ||
            errno == ERANGE) {
            *err = "expects a non-negative 64-bit integer";
            return false;
        }
        *static_cast<std::uint64_t *>(f.target) = v;
        return true;
      }
      case Kind::Double: {
        errno = 0;
        const double v = std::strtod(s, &end);
        if (end == s || *end != '\0' || errno == ERANGE) {
            *err = "expects a finite number";
            return false;
        }
        *static_cast<double *>(f.target) = v;
        return true;
      }
      case Kind::Bool:
        *static_cast<bool *>(f.target) = true;
        return true;
    }
    return false;
}

ParseStatus
Parser::parse(const std::vector<std::string> &args)
{
    positionals_.clear();

    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        if (arg == "--help" || arg == "-h") {
            std::cout << usage();
            return ParseStatus::Help;
        }
        if (arg.rfind("--", 0) != 0) {
            positionals_.push_back(arg);
            continue;
        }

        std::string name = arg;
        std::string inline_value;
        bool has_inline = false;
        const std::size_t eq = arg.find('=');
        if (eq != std::string::npos) {
            name = arg.substr(0, eq);
            inline_value = arg.substr(eq + 1);
            has_inline = true;
        }

        const Flag *f = find(name);
        if (!f) {
            std::cerr << program_ << ": unknown flag '" << name
                      << "' (try --help)\n";
            return ParseStatus::Error;
        }

        std::string value;
        if (f->kind == Kind::Bool) {
            if (has_inline) {
                std::cerr << program_ << ": " << name
                          << " takes no value\n";
                return ParseStatus::Error;
            }
        } else if (has_inline) {
            value = inline_value;
        } else {
            if (i + 1 >= args.size()) {
                std::cerr << program_ << ": " << name
                          << " requires a value\n";
                return ParseStatus::Error;
            }
            value = args[++i];
        }

        std::string err;
        if (!assign(*f, value, &err)) {
            std::cerr << program_ << ": " << name << " " << err
                      << ", got '" << value << "'\n";
            return ParseStatus::Error;
        }
    }

    std::size_t required = 0;
    for (const Positional &p : pos_spec_) {
        if (p.required)
            ++required;
    }
    if (positionals_.size() < required) {
        std::cerr << program_ << ": missing "
                  << pos_spec_[positionals_.size()].name
                  << " argument (try --help)\n";
        return ParseStatus::Error;
    }
    if (positionals_.size() > pos_spec_.size()) {
        std::cerr << program_ << ": unexpected argument '"
                  << positionals_[pos_spec_.size()] << "'\n";
        return ParseStatus::Error;
    }
    return ParseStatus::Ok;
}

ParseStatus
Parser::parse(int argc, char **argv)
{
    return parse(std::vector<std::string>(argv + (argc > 0 ? 1 : 0),
                                          argv + argc));
}

std::string
Parser::usage() const
{
    std::ostringstream os;
    os << "usage: " << program_;
    for (const Positional &p : pos_spec_)
        os << (p.required ? " <" : " [") << p.name
           << (p.required ? ">" : "]");
    if (!flags_.empty())
        os << " [flags]";
    os << "\n";
    if (!summary_.empty())
        os << "  " << summary_ << "\n";
    if (!pos_spec_.empty()) {
        os << "\narguments:\n";
        for (const Positional &p : pos_spec_)
            os << "  " << p.name << "  " << p.help << "\n";
    }
    if (!flags_.empty()) {
        os << "\nflags:\n";
        for (const Flag &f : flags_) {
            os << "  " << f.name;
            if (f.kind != Kind::Bool)
                os << " <v>";
            os << "  " << f.help;
            if (!f.defval.empty())
                os << " (default: " << f.defval << ")";
            os << "\n";
        }
    }
    return os.str();
}

} // namespace cli
} // namespace m3d
