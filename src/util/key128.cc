#include "util/key128.hh"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace m3d {

namespace {

constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;
constexpr std::uint64_t kFnvBasisHi = 0xcbf29ce484222325ull;
// Second stream: same prime, different basis, so the two 64-bit
// halves are decorrelated.
constexpr std::uint64_t kFnvBasisLo = 0x84222325cbf29ce4ull;

// Bump whenever any hashed layout changes so stale on-disk caches are
// invalidated rather than misread.
constexpr std::uint64_t kSchemaVersion = 1;

} // namespace

std::string
Key128::str() const
{
    char buf[36];
    std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                  static_cast<unsigned long long>(hi),
                  static_cast<unsigned long long>(lo));
    return buf;
}

bool
Key128::parse(const std::string &text, Key128 *out)
{
    if (text.size() != 32)
        return false;
    for (char c : text) {
        if (!std::isxdigit(static_cast<unsigned char>(c)))
            return false;
    }
    out->hi = std::strtoull(text.substr(0, 16).c_str(), nullptr, 16);
    out->lo = std::strtoull(text.substr(16).c_str(), nullptr, 16);
    return true;
}

KeyBuilder::KeyBuilder(std::uint64_t domain_tag)
    : hi_(kFnvBasisHi), lo_(kFnvBasisLo)
{
    add(kSchemaVersion);
    add(domain_tag);
}

KeyBuilder &
KeyBuilder::byte(std::uint8_t b)
{
    hi_ = (hi_ ^ b) * kFnvPrime;
    lo_ = (lo_ ^ b) * kFnvPrime;
    return *this;
}

KeyBuilder &
KeyBuilder::add(std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        byte(static_cast<std::uint8_t>(v >> (8 * i)));
    return *this;
}

KeyBuilder &
KeyBuilder::add(std::int64_t v)
{
    return add(static_cast<std::uint64_t>(v));
}

KeyBuilder &
KeyBuilder::add(int v)
{
    return add(static_cast<std::uint64_t>(static_cast<std::int64_t>(v)));
}

KeyBuilder &
KeyBuilder::add(bool v)
{
    return byte(v ? 1 : 0);
}

KeyBuilder &
KeyBuilder::add(double v)
{
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    return add(bits);
}

KeyBuilder &
KeyBuilder::add(const std::string &s)
{
    add(static_cast<std::uint64_t>(s.size()));
    for (char c : s)
        byte(static_cast<std::uint8_t>(c));
    return *this;
}

} // namespace m3d
