/**
 * @file
 * Deterministic random number generation for reproducible simulation.
 *
 * Every simulated entity that needs randomness owns its own Rng seeded
 * from (experiment seed, entity id), so results are independent of the
 * order in which entities are evaluated.
 */

#ifndef M3D_UTIL_RNG_HH_
#define M3D_UTIL_RNG_HH_

#include <cstdint>
#include <random>

namespace m3d {

/** A small, fast, reproducible random source (xoshiro-style splitmix). */
class Rng
{
  public:
    /** Construct from a 64-bit seed. */
    explicit Rng(std::uint64_t seed=0x9e3779b97f4a7c15ull) : state_(seed)
    {
        // Warm the state so nearby seeds diverge immediately.
        next();
        next();
    }

    /** Derive an independent stream for a sub-entity. */
    Rng
    fork(std::uint64_t stream_id) const
    {
        return Rng(state_ ^ (0xbf58476d1ce4e5b9ull * (stream_id + 1)));
    }

    /** Next raw 64-bit value (splitmix64). */
    std::uint64_t
    next()
    {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform integer in [0, bound). @pre bound > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** Bernoulli draw with probability p of true. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

    /** Geometric-ish burst length >= 1 with mean approximately `mean`. */
    std::uint64_t
    burst(double mean)
    {
        if (mean <= 1.0)
            return 1;
        const double p = 1.0 / mean;
        std::uint64_t n = 1;
        while (!chance(p) && n < 64 * static_cast<std::uint64_t>(mean))
            ++n;
        return n;
    }

  private:
    std::uint64_t state_;
};

} // namespace m3d

#endif // M3D_UTIL_RNG_HH_
