/**
 * @file
 * Deterministic random number generation for reproducible simulation.
 *
 * Two flavors share one splitmix64 mixing core:
 *
 *  - Rng: a sequential stream.  Every simulated entity that needs
 *    randomness owns its own Rng seeded from (experiment seed, entity
 *    id), so results are independent of the order in which entities
 *    are evaluated.  All six search strategies draw from exactly one
 *    Rng(seed) in a fixed order (search/strategy.cc).
 *  - CounterRng: a stateless counter-based source.  A fixed
 *    (seed, coordinates..., draw index) tuple always yields the same
 *    sample with no stream to advance, so consumers that fan samples
 *    across threads (the variation model's per-die, per-tier,
 *    per-structure draws) are independent of evaluation order and
 *    thread count by construction.
 */

#ifndef M3D_UTIL_RNG_HH_
#define M3D_UTIL_RNG_HH_

#include <cstdint>

namespace m3d {

/** The splitmix64 sequence increment (the 64-bit golden ratio). */
constexpr std::uint64_t kSplitmixGamma = 0x9e3779b97f4a7c15ull;

/** The splitmix64 output mix: a bijective 64-bit finalizer. */
constexpr std::uint64_t
splitmix64(std::uint64_t z)
{
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/** Map a raw 64-bit value onto [0, 1) with 53 random bits. */
constexpr double
unitDouble(std::uint64_t raw)
{
    return static_cast<double>(raw >> 11) * 0x1.0p-53;
}

/** A small, fast, reproducible random source (xoshiro-style splitmix). */
class Rng
{
  public:
    /** Construct from a 64-bit seed. */
    explicit Rng(std::uint64_t seed=kSplitmixGamma) : state_(seed)
    {
        // Warm the state so nearby seeds diverge immediately.
        next();
        next();
    }

    /** Derive an independent stream for a sub-entity. */
    Rng
    fork(std::uint64_t stream_id) const
    {
        return Rng(state_ ^ (0xbf58476d1ce4e5b9ull * (stream_id + 1)));
    }

    /** Next raw 64-bit value (splitmix64). */
    std::uint64_t
    next()
    {
        return splitmix64(state_ += kSplitmixGamma);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return unitDouble(next());
    }

    /** Uniform integer in [0, bound). @pre bound > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** Bernoulli draw with probability p of true. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

    /** Geometric-ish burst length >= 1 with mean approximately `mean`. */
    std::uint64_t
    burst(double mean)
    {
        if (mean <= 1.0)
            return 1;
        const double p = 1.0 / mean;
        std::uint64_t n = 1;
        while (!chance(p) && n < 64 * static_cast<std::uint64_t>(mean))
            ++n;
        return n;
    }

  private:
    std::uint64_t state_;
};

/**
 * Hash a (seed, a, b, c) coordinate tuple into one well-mixed 64-bit
 * value.  Each coordinate is absorbed through a full splitmix64 round,
 * so tuples that differ in any position (including transposed values)
 * land in unrelated points of the output space.
 */
constexpr std::uint64_t
counterHash(std::uint64_t seed, std::uint64_t a=0, std::uint64_t b=0,
            std::uint64_t c=0)
{
    std::uint64_t h = splitmix64(seed + kSplitmixGamma);
    h = splitmix64(h + a * kSplitmixGamma);
    h = splitmix64(h + b * kSplitmixGamma);
    h = splitmix64(h + c * kSplitmixGamma);
    return h;
}

/**
 * Stateless counter-based random source: a pure function of
 * (seed, coordinates, draw index).  Unlike Rng there is no stream to
 * advance, so any subset of draws can be taken in any order - or on
 * any thread - and a fixed tuple always yields the same sample.
 *
 * gauss() is a 12-fold Irwin-Hall sum (sum of 12 uniforms minus 6):
 * a standard-normal approximation exact to +-6 sigma support that
 * uses only IEEE additions and multiplies - no libm calls - so the
 * samples are bit-identical across toolchains and platforms.
 */
class CounterRng
{
  public:
    explicit CounterRng(std::uint64_t seed, std::uint64_t a=0,
                        std::uint64_t b=0, std::uint64_t c=0)
        : base_(counterHash(seed, a, b, c))
    {
    }

    /** Raw 64-bit value of draw index `n`. */
    std::uint64_t
    raw(std::uint64_t n) const
    {
        return splitmix64(base_ + n * kSplitmixGamma);
    }

    /** Uniform double in [0, 1) of draw index `n`. */
    double
    uniform(std::uint64_t n) const
    {
        return unitDouble(raw(n));
    }

    /** Approximately standard-normal draw of index `n`. */
    double
    gauss(std::uint64_t n) const
    {
        double sum = 0.0;
        for (std::uint64_t k = 0; k < 12; ++k)
            sum += uniform(n * 12 + k);
        return sum - 6.0;
    }

  private:
    std::uint64_t base_;
};

} // namespace m3d

#endif // M3D_UTIL_RNG_HH_
