/**
 * @file
 * 128-bit canonical digests (the "EvalKey machinery").
 *
 * A Key128 is a digest over a canonical byte stream of model inputs:
 * two independent 64-bit FNV-1a streams with different offset bases,
 * fed identically.  The evaluation engine keys its memo caches on it
 * (engine/eval_key.hh) and the workload layer keys the process-wide
 * trace registry on it (workload/trace_buffer.hh), so the machinery
 * lives here, below both.
 *
 * Canonicalization rules (cache correctness depends on them):
 *  - doubles are hashed by their IEEE-754 bit pattern, never by a
 *    formatted representation, so distinct values never collide and
 *    equal values always match;
 *  - strings are hashed length-prefixed;
 *  - every struct field is hashed in declaration order, and each
 *    domain starts from its own tag so the same bytes in different
 *    domains produce different keys.
 *
 * Keys deliberately hash the *inputs*, not object identity: two
 * objects built independently with the same parameters share cache
 * entries, which is what makes on-disk caches useful across
 * processes.
 */

#ifndef M3D_UTIL_KEY128_HH_
#define M3D_UTIL_KEY128_HH_

#include <cstdint>
#include <string>

namespace m3d {

/** 128-bit digest used as a cache/registry key. */
struct Key128
{
    std::uint64_t hi = 0;
    std::uint64_t lo = 0;

    bool operator==(const Key128 &o) const
    {
        return hi == o.hi && lo == o.lo;
    }
    bool operator!=(const Key128 &o) const { return !(*this == o); }
    bool operator<(const Key128 &o) const
    {
        return hi != o.hi ? hi < o.hi : lo < o.lo;
    }

    /** Fixed-width hex rendering, e.g. for the on-disk cache. */
    std::string str() const;

    /** Parse str()'s format; returns false on malformed input. */
    static bool parse(const std::string &text, Key128 *out);
};

struct Key128Hash
{
    std::size_t operator()(const Key128 &k) const
    {
        return static_cast<std::size_t>(
            k.hi ^ (k.lo * 0x9e3779b97f4a7c15ull));
    }
};

/**
 * Incremental canonical hasher: two independent FNV-1a 64-bit streams
 * with different offset bases, fed identically.  Every stream starts
 * with a schema version (bumped whenever any hashed layout changes,
 * so stale on-disk caches are invalidated rather than misread) and
 * the caller's domain tag.
 */
class KeyBuilder
{
  public:
    explicit KeyBuilder(std::uint64_t domain_tag);

    KeyBuilder &add(std::uint64_t v);
    KeyBuilder &add(std::int64_t v);
    KeyBuilder &add(int v);
    KeyBuilder &add(bool v);
    KeyBuilder &add(double v); ///< IEEE-754 bit pattern
    KeyBuilder &add(const std::string &s); ///< length-prefixed

    Key128 key() const { return {hi_, lo_}; }

  private:
    KeyBuilder &byte(std::uint8_t b);

    std::uint64_t hi_;
    std::uint64_t lo_;
};

} // namespace m3d

#endif // M3D_UTIL_KEY128_HH_
