#include "util/table.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/logging.hh"

namespace m3d {

void
Table::header(std::vector<std::string> cells)
{
    header_ = std::move(cells);
}

void
Table::row(std::vector<std::string> cells)
{
    if (!header_.empty() && cells.size() != header_.size()) {
        M3D_PANIC("table '", title_, "': row width ", cells.size(),
                  " != header width ", header_.size());
    }
    M3D_ASSERT(!cells.empty(), "separator rows are added via separator()");
    rows_.push_back(std::move(cells));
}

void
Table::separator()
{
    rows_.emplace_back();
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths;
    auto widen = [&widths](const std::vector<std::string> &cells) {
        if (widths.size() < cells.size())
            widths.resize(cells.size(), 0);
        for (std::size_t i = 0; i < cells.size(); ++i)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    widen(header_);
    for (const auto &r : rows_)
        widen(r);

    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            os << std::left << std::setw(static_cast<int>(widths[i]) + 2)
               << cells[i];
        }
        os << "\n";
    };

    std::size_t total = 0;
    for (auto w : widths)
        total += w + 2;
    total = std::max<std::size_t>(total, title_.size());

    os << "\n== " << title_ << " ==\n";
    if (!header_.empty()) {
        emit(header_);
        os << std::string(total, '-') << "\n";
    }
    for (const auto &r : rows_) {
        if (r.empty())
            os << std::string(total, '-') << "\n";
        else
            emit(r);
    }
}

void
Table::printCsv(std::ostream &os) const
{
    auto emit = [&os](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            if (i)
                os << ",";
            os << cells[i];
        }
        os << "\n";
    };
    if (!header_.empty())
        emit(header_);
    for (const auto &r : rows_) {
        if (!r.empty())
            emit(r);
    }
}

void
Table::bindMetrics(MetricHook hook)
{
    hook_ = std::move(hook);
}

std::string
Table::cell(const std::string &metric, double v, int precision,
            const std::string &suffix)
{
    if (hook_)
        hook_(metric, v);
    return num(v, precision) + suffix;
}

std::string
Table::cellPct(const std::string &metric, double fraction,
               int precision)
{
    if (hook_)
        hook_(metric, fraction * 100.0);
    return pct(fraction, precision);
}

std::string
Table::num(double v, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << v;
    return oss.str();
}

std::string
Table::pct(double fraction, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << fraction * 100.0
        << "%";
    return oss.str();
}

} // namespace m3d
