/**
 * @file
 * A small statistics package: named counters, scalars, and histograms
 * grouped per simulated component, with a registry that can dump all
 * statistics at end of simulation.
 */

#ifndef M3D_UTIL_STATS_HH_
#define M3D_UTIL_STATS_HH_

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace m3d {

/** A monotonically increasing event counter. */
class Counter
{
  public:
    Counter() = default;

    void operator++() { ++value_; }
    void operator++(int) { ++value_; }
    void operator+=(std::uint64_t n) { value_ += n; }

    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/** A running scalar (e.g. accumulated energy in joules). */
class Scalar
{
  public:
    Scalar() = default;

    void operator+=(double v) { value_ += v; }
    void set(double v) { value_ = v; }

    double value() const { return value_; }
    void reset() { value_ = 0.0; }

  private:
    double value_ = 0.0;
};

/** A fixed-bucket histogram over [lo, hi). */
class Histogram
{
  public:
    /**
     * @param lo Lower edge of the first bucket.
     * @param hi Upper edge of the last bucket.
     * @param buckets Number of equal-width buckets (>= 1).
     */
    Histogram(double lo, double hi, std::size_t buckets);

    /** Record one sample; out-of-range samples clamp to edge buckets. */
    void sample(double v);

    std::uint64_t count() const { return count_; }
    double mean() const;
    double bucketLo(std::size_t i) const;
    std::uint64_t bucketCount(std::size_t i) const { return counts_[i]; }
    std::size_t buckets() const { return counts_.size(); }

  private:
    double lo_;
    double hi_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
};

/**
 * A per-component group of named statistics.  Components register their
 * counters/scalars by reference; StatGroup does not own them.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    void addCounter(const std::string &stat_name, const Counter &c);
    void addScalar(const std::string &stat_name, const Scalar &s);

    const std::string &name() const { return name_; }

    /** Write "group.stat value" lines. */
    void dump(std::ostream &os) const;

  private:
    std::string name_;
    std::map<std::string, const Counter *> counters_;
    std::map<std::string, const Scalar *> scalars_;
};

} // namespace m3d

#endif // M3D_UTIL_STATS_HH_
