/**
 * @file
 * Minimal typed command-line parser shared by m3dtool and the bench
 * binaries, replacing the ad-hoc flagValue/flagPresent scanning that
 * each tool used to carry.
 *
 * Flags bind directly to caller-owned variables (the bound value's
 * current content is the default), accept both `--flag value` and
 * `--flag=value`, and unknown flags or malformed values are hard
 * errors.  `--help` is always recognized and prints a generated
 * usage text.
 */

#ifndef M3D_UTIL_CLI_HH_
#define M3D_UTIL_CLI_HH_

#include <cstdint>
#include <string>
#include <vector>

namespace m3d {
namespace cli {

/** Outcome of a parse. */
enum class ParseStatus {
    Ok,       ///< flags consumed; positionals() is valid
    Help,     ///< --help was given; usage printed to stdout
    Error,    ///< bad input; message printed to stderr
};

/** One command (or subcommand) line. */
class Parser
{
  public:
    /**
     * @param program Name shown in the usage line, e.g.
     *                "m3dtool sweep".
     * @param summary One-line description for --help.
     */
    Parser(std::string program, std::string summary);

    // Typed flags.  The bound variable supplies the default and
    // receives the parsed value.
    Parser &flag(const std::string &name, std::string *value,
                 const std::string &help);
    Parser &flag(const std::string &name, int *value,
                 const std::string &help);
    Parser &flag(const std::string &name, std::uint64_t *value,
                 const std::string &help);
    Parser &flag(const std::string &name, double *value,
                 const std::string &help);
    /** Presence flag: no argument, sets the bool to true. */
    Parser &flag(const std::string &name, bool *value,
                 const std::string &help);

    /**
     * Declare a positional argument (documentation + arity check).
     * Required positionals must be present; at most one optional
     * trailing positional is supported.
     */
    Parser &positional(const std::string &name, const std::string &help,
                       bool required=true);

    /** Parse an argument vector (no argv[0]). */
    ParseStatus parse(const std::vector<std::string> &args);

    /** Parse main()-style arguments, skipping argv[0]. */
    ParseStatus parse(int argc, char **argv);

    /** Positional arguments collected by the last parse(). */
    const std::vector<std::string> &positionals() const
    {
        return positionals_;
    }

    /** Generated usage text (what --help prints). */
    std::string usage() const;

  private:
    enum class Kind { String, Int, Uint64, Double, Bool };

    struct Flag
    {
        std::string name; ///< including leading "--"
        Kind kind;
        void *target;
        std::string help;
        std::string defval; ///< rendered default for --help
    };

    Parser &add(const std::string &name, Kind kind, void *target,
                const std::string &help, std::string defval);
    const Flag *find(const std::string &name) const;
    bool assign(const Flag &f, const std::string &text,
                std::string *err) const;

    std::string program_;
    std::string summary_;
    std::vector<Flag> flags_;

    struct Positional
    {
        std::string name;
        std::string help;
        bool required;
    };
    std::vector<Positional> pos_spec_;
    std::vector<std::string> positionals_;
};

} // namespace cli
} // namespace m3d

#endif // M3D_UTIL_CLI_HH_
