/**
 * @file
 * Logging and error-reporting helpers in the gem5 tradition.
 *
 * panic()  - an internal invariant was violated (a bug in this library);
 *            aborts so a debugger or core dump can capture state.
 * fatal()  - the caller supplied an unusable configuration; exits cleanly
 *            with an error code.
 * warn()   - something is approximated or suspicious but simulation can
 *            continue.
 * inform() - status messages with no connotation of incorrectness.
 */

#ifndef M3D_UTIL_LOGGING_HH_
#define M3D_UTIL_LOGGING_HH_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>

namespace m3d {

/** Severity levels understood by the logger. */
enum class LogLevel { Inform, Warn, Fatal, Panic };

namespace detail {

/** Stream a pack of arguments into a single string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

/** Emit one formatted log record to stderr. */
void emitLog(LogLevel level, std::string_view file, int line,
             const std::string &message);

} // namespace detail

/** Minimum level that is actually printed (Inform prints everything). */
LogLevel logThreshold();

/** Adjust the global log threshold; returns the previous value. */
LogLevel setLogThreshold(LogLevel level);

/**
 * Report an internal library bug and abort.
 *
 * @param file Source file of the call site (use M3D_PANIC).
 * @param line Source line of the call site.
 * @param args Message fragments streamed together.
 */
template <typename... Args>
[[noreturn]] void
panicImpl(std::string_view file, int line, Args &&...args)
{
    detail::emitLog(LogLevel::Panic, file, line,
                    detail::concat(std::forward<Args>(args)...));
    std::abort();
}

/**
 * Report an unrecoverable user/configuration error and exit(1).
 */
template <typename... Args>
[[noreturn]] void
fatalImpl(std::string_view file, int line, Args &&...args)
{
    detail::emitLog(LogLevel::Fatal, file, line,
                    detail::concat(std::forward<Args>(args)...));
    std::exit(1);
}

/** Report a recoverable modeling concern. */
template <typename... Args>
void
warnImpl(std::string_view file, int line, Args &&...args)
{
    detail::emitLog(LogLevel::Warn, file, line,
                    detail::concat(std::forward<Args>(args)...));
}

/** Report simulation status. */
template <typename... Args>
void
informImpl(std::string_view file, int line, Args &&...args)
{
    detail::emitLog(LogLevel::Inform, file, line,
                    detail::concat(std::forward<Args>(args)...));
}

} // namespace m3d

#define M3D_PANIC(...) ::m3d::panicImpl(__FILE__, __LINE__, __VA_ARGS__)
#define M3D_FATAL(...) ::m3d::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)
#define M3D_WARN(...) ::m3d::warnImpl(__FILE__, __LINE__, __VA_ARGS__)
#define M3D_INFORM(...) ::m3d::informImpl(__FILE__, __LINE__, __VA_ARGS__)

/** Checked invariant: panics with the stringified condition on failure. */
#define M3D_ASSERT(cond, ...)                                               \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::m3d::panicImpl(__FILE__, __LINE__, "assertion failed: ",     \
                             #cond, " ", ##__VA_ARGS__);                    \
        }                                                                   \
    } while (0)

#endif // M3D_UTIL_LOGGING_HH_
