#include "util/thread_pool.hh"

#include <algorithm>
#include <exception>

namespace m3d {

ThreadPool::ThreadPool(int threads)
{
    // threads <= 1 spawns no workers: the inline pool (see the
    // header's "threads == 1 contract").
    const int n = std::max(0, threads <= 1 ? 0 : threads);
    workers_.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    cv_.notify_all();
    for (std::thread &w : workers_)
        w.join();
}

std::future<void>
ThreadPool::submit(std::function<void()> task)
{
    std::packaged_task<void()> packaged(std::move(task));
    std::future<void> future = packaged.get_future();

    if (workers_.empty()) {
        packaged(); // inline pool: run now, future is already ready
        return future;
    }

    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(std::move(packaged));
    }
    cv_.notify_one();
    return future;
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)> &body)
{
    if (workers_.empty() || n <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            body(i);
        return;
    }

    std::vector<std::future<void>> futures;
    futures.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        futures.push_back(submit([&body, i] { body(i); }));

    // Collect in index order so the first failing index wins.
    std::exception_ptr first_error;
    for (std::future<void> &f : futures) {
        try {
            f.get();
        } catch (...) {
            if (!first_error)
                first_error = std::current_exception();
        }
    }
    if (first_error)
        std::rethrow_exception(first_error);
}

int
ThreadPool::resolveThreads(int requested)
{
    if (requested >= 1)
        return requested;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::packaged_task<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stop_ set and nothing left to drain
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task(); // exceptions land in the task's future
    }
}

} // namespace m3d
