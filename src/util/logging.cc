#include "util/logging.hh"

#include <atomic>
#include <mutex>

namespace m3d {

namespace {

std::atomic<LogLevel> g_threshold{LogLevel::Warn};
std::mutex g_log_mutex;

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Inform: return "info";
      case LogLevel::Warn: return "warn";
      case LogLevel::Fatal: return "fatal";
      case LogLevel::Panic: return "panic";
    }
    return "?";
}

} // namespace

LogLevel
logThreshold()
{
    return g_threshold.load(std::memory_order_relaxed);
}

LogLevel
setLogThreshold(LogLevel level)
{
    return g_threshold.exchange(level, std::memory_order_relaxed);
}

namespace detail {

void
emitLog(LogLevel level, std::string_view file, int line,
        const std::string &message)
{
    if (static_cast<int>(level) < static_cast<int>(logThreshold()))
        return;
    std::lock_guard<std::mutex> guard(g_log_mutex);
    std::cerr << levelName(level) << ": " << message;
    if (level == LogLevel::Panic || level == LogLevel::Fatal)
        std::cerr << " @ " << file << ":" << line;
    std::cerr << std::endl;
}

} // namespace detail

} // namespace m3d
