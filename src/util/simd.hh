/**
 * @file
 * Runtime SIMD dispatch shared by every vectorized kernel.
 *
 * Vector paths in this codebase (the batched replay kernel, the
 * thermal red-black sweep) are required to be bit-identical to their
 * scalar fallbacks, so selecting between them is purely a performance
 * decision.  This helper centralizes that decision:
 *
 *  - the host must actually support AVX2 (checked once via cpuid);
 *  - the `M3D_NO_SIMD` environment variable, when set to anything but
 *    "0" or the empty string, forces the scalar fallback everywhere -
 *    the hook CI uses to cover the non-x86 code path on x86 runners.
 *
 * Kernels compile their AVX2 bodies with the GCC/Clang
 * `target("avx2")` function attribute, so the translation units stay
 * buildable (and the scalar paths runnable) with baseline codegen
 * flags on any x86-64, and build cleanly to scalar-only on other
 * architectures.
 */

#ifndef M3D_UTIL_SIMD_HH_
#define M3D_UTIL_SIMD_HH_

namespace m3d {
namespace simd {

/** True iff this CPU executes AVX2 (false off x86). */
bool avx2Supported();

/** True iff this CPU executes the AVX-512 subsets the kernels use
 * (F, VL, DQ, BW); false off x86. */
bool avx512Supported();

/** True iff this CPU executes FMA3 (false off x86). */
bool fmaSupported();

/** True iff the M3D_NO_SIMD environment variable disables SIMD. */
bool disabledByEnv();

/** The dispatch decision: supported and not disabled.  Cached after
 * the first call, so flipping the environment mid-process has no
 * effect (kernels would otherwise mix paths within one batch). */
bool useAvx2();

/** Like useAvx2(), for the 8-lane AVX-512 kernel paths. */
bool useAvx512();

/**
 * Like useAvx2(), for scalar kernels with an FMA-targeted twin.
 * std::fma is correctly rounded everywhere (hardware FMA or libm's
 * exact fallback), so this dispatch only ever changes speed - both
 * sides of it are bit-identical by IEEE semantics, not by luck.
 */
bool useFma();

} // namespace simd
} // namespace m3d

#endif // M3D_UTIL_SIMD_HH_
