/**
 * @file
 * ASCII table and CSV emitters used by the benchmark harnesses to print
 * paper tables and figure series.
 */

#ifndef M3D_UTIL_TABLE_HH_
#define M3D_UTIL_TABLE_HH_

#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace m3d {

/**
 * Accumulates rows of strings and prints them with aligned columns.
 * Numeric cells are produced with Table::num / Table::pct helpers so
 * precision is consistent across benches.
 */
class Table
{
  public:
    /** @param title Caption printed above the table. */
    explicit Table(std::string title) : title_(std::move(title)) {}

    /** Set the header row. */
    void header(std::vector<std::string> cells);

    /** Append a data row; must match the header width if one was set. */
    void row(std::vector<std::string> cells);

    /** Append a separator line between row groups. */
    void separator();

    /** Render with aligned columns. */
    void print(std::ostream &os) const;

    /** Render as CSV (no alignment, no separators). */
    void printCsv(std::ostream &os) const;

    /** Format a double with fixed precision. */
    static std::string num(double v, int precision=2);

    /** Format a 0..1 fraction as a percentage string, e.g. "41%". */
    static std::string pct(double fraction, int precision=0);

  private:
    std::string title_;
    std::vector<std::string> header_;
    // Empty vector encodes a separator row.
    std::vector<std::vector<std::string>> rows_;
};

} // namespace m3d

#endif // M3D_UTIL_TABLE_HH_
