/**
 * @file
 * ASCII table and CSV emitters used by the benchmark harnesses to print
 * paper tables and figure series.
 */

#ifndef M3D_UTIL_TABLE_HH_
#define M3D_UTIL_TABLE_HH_

#include <functional>
#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace m3d {

/**
 * Receives every metric-bearing table cell as (name, full-precision
 * value).  The report library (report/report.hh) supplies hooks that
 * register the metrics for golden-number comparison; the hook type
 * lives here so util stays free of a report dependency.
 */
using MetricHook = std::function<void(const std::string &name,
                                      double value)>;

/**
 * Accumulates rows of strings and prints them with aligned columns.
 * Numeric cells are produced with Table::num / Table::pct helpers so
 * precision is consistent across benches.
 *
 * A table can carry a MetricHook (bindMetrics); the cell / cellPct
 * helpers then both format a cell string *and* forward the named,
 * unrounded value to the hook, so the printed tables and the machine
 * emission can never drift apart.
 */
class Table
{
  public:
    /** @param title Caption printed above the table. */
    explicit Table(std::string title) : title_(std::move(title)) {}

    /** Set the header row. */
    void header(std::vector<std::string> cells);

    /** Append a data row; must match the header width if one was set. */
    void row(std::vector<std::string> cells);

    /** Append a separator line between row groups. */
    void separator();

    /** Render with aligned columns. */
    void print(std::ostream &os) const;

    /** Render as CSV (no alignment, no separators). */
    void printCsv(std::ostream &os) const;

    /** Attach a metric hook; cell()/cellPct() report through it. */
    void bindMetrics(MetricHook hook);

    /**
     * Format like num(v, precision) + suffix and, when a hook is
     * bound, report the unrounded value under `metric`.
     */
    std::string cell(const std::string &metric, double v,
                     int precision=2,
                     const std::string &suffix="");

    /**
     * Format like pct(fraction, precision) and, when a hook is
     * bound, report the unrounded *percentage* (fraction x 100)
     * under `metric` - golden metric names carry a _pct suffix, so
     * the stored value matches the printed unit.
     */
    std::string cellPct(const std::string &metric, double fraction,
                        int precision=0);

    /** Format a double with fixed precision. */
    static std::string num(double v, int precision=2);

    /** Format a 0..1 fraction as a percentage string, e.g. "41%". */
    static std::string pct(double fraction, int precision=0);

  private:
    std::string title_;
    std::vector<std::string> header_;
    MetricHook hook_;
    // Empty vector encodes a separator row.
    std::vector<std::vector<std::string>> rows_;
};

} // namespace m3d

#endif // M3D_UTIL_TABLE_HH_
