#include "power/sim_harness.hh"

namespace m3d {
namespace {

AppRun
executeSingle(const CoreDesign &design, const WorkloadProfile &profile,
              const SimBudget &budget, TracePath path)
{
    HierarchyTiming timing;
    timing.l1_rt = design.load_to_use;
    timing.frequency = design.frequency;
    CacheHierarchy hierarchy(timing);
    CoreModel core(design, hierarchy);

    // Warm caches and predictor structures; discard the timing.
    SimResult r;
    if (path == TracePath::Replay) {
        TraceCursor cursor(TraceRegistry::global().acquire(
            profile, budget.seed, /*thread_id=*/0,
            budget.warmup + budget.measured));
        core.run(cursor, budget.warmup);
        r = core.run(cursor, budget.measured);
    } else {
        TraceGenerator gen(profile, budget.seed);
        core.run(gen, budget.warmup);
        r = core.run(gen, budget.measured);
    }

    AppRun out;
    out.sim = r;
    out.seconds = r.seconds();
    PowerModel pm(design);
    out.energy = pm.evaluate(r.activity, out.seconds);
    return out;
}

MultiRun
executeMulti(const CoreDesign &design, const WorkloadProfile &profile,
             const SimBudget &budget, TracePath path)
{
    MulticoreModel mc(design);
    // Every design executes the same total work - the reference
    // 4-core machine's budget - so that an 8-core design shows up as
    // a speedup, not as more work.
    constexpr std::uint64_t kReferenceCores = 4;
    MulticoreResult r = mc.run(
        profile, budget.measured * kReferenceCores, budget.seed,
        /*warmup_per_core=*/50000, path);

    MultiRun out;
    out.result = r;
    PowerModel pm(design);
    out.energy = pm.evaluate(r.total, r.seconds);
    return out;
}

} // namespace

RunResult
execute(const RunRequest &req)
{
    RunResult out;
    out.kind = req.kind;
    if (req.kind == RunKind::Single)
        out.single = executeSingle(req.design, req.app, req.budget,
                                   req.path);
    else
        out.multi = executeMulti(req.design, req.app, req.budget,
                                 req.path);
    return out;
}

std::vector<AppRun>
runSingleCoreBatch(const std::vector<CoreDesign> &designs,
                   const WorkloadProfile &app, const SimBudget &budget,
                   const BatchReplayOptions &options)
{
    if (designs.empty())
        return {};

    BatchReplay batch(designs,
                      TraceRegistry::global().acquire(
                          app, budget.seed, /*thread_id=*/0,
                          budget.warmup + budget.measured),
                      options);
    // Warm caches and predictor structures; discard the timing.
    batch.run(budget.warmup);
    std::vector<SimResult> results = batch.run(budget.measured);

    std::vector<AppRun> out(designs.size());
    for (std::size_t i = 0; i < designs.size(); ++i) {
        out[i].sim = results[i];
        out[i].seconds = results[i].seconds();
        PowerModel pm(designs[i]);
        out[i].energy =
            pm.evaluate(results[i].activity, out[i].seconds);
    }
    return out;
}

AppRun
runSingleCore(const CoreDesign &design, const WorkloadProfile &profile,
              const SimBudget &budget, TracePath path)
{
    return executeSingle(design, profile, budget, path);
}

MultiRun
runMulticore(const CoreDesign &design, const WorkloadProfile &profile,
             const SimBudget &budget, TracePath path)
{
    return executeMulti(design, profile, budget, path);
}

namespace detail {

AppRun
runSingleCoreUncached(const CoreDesign &design,
                      const WorkloadProfile &profile,
                      const SimBudget &budget, TracePath path)
{
    return executeSingle(design, profile, budget, path);
}

MultiRun
runMulticoreUncached(const CoreDesign &design,
                     const WorkloadProfile &profile,
                     const SimBudget &budget, TracePath path)
{
    return executeMulti(design, profile, budget, path);
}

} // namespace detail
} // namespace m3d
