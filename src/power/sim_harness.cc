#include "power/sim_harness.hh"

namespace m3d {
namespace detail {

AppRun
runSingleCoreUncached(const CoreDesign &design,
                      const WorkloadProfile &profile,
                      const SimBudget &budget, TracePath path)
{
    HierarchyTiming timing;
    timing.l1_rt = design.load_to_use;
    timing.frequency = design.frequency;
    CacheHierarchy hierarchy(timing);
    CoreModel core(design, hierarchy);

    // Warm caches and predictor structures; discard the timing.
    SimResult r;
    if (path == TracePath::Replay) {
        TraceCursor cursor(TraceRegistry::global().acquire(
            profile, budget.seed, /*thread_id=*/0,
            budget.warmup + budget.measured));
        core.run(cursor, budget.warmup);
        r = core.run(cursor, budget.measured);
    } else {
        TraceGenerator gen(profile, budget.seed);
        core.run(gen, budget.warmup);
        r = core.run(gen, budget.measured);
    }

    AppRun out;
    out.sim = r;
    out.seconds = r.seconds();
    PowerModel pm(design);
    out.energy = pm.evaluate(r.activity, out.seconds);
    return out;
}

MultiRun
runMulticoreUncached(const CoreDesign &design,
                     const WorkloadProfile &profile,
                     const SimBudget &budget, TracePath path)
{
    MulticoreModel mc(design);
    // Every design executes the same total work - the reference
    // 4-core machine's budget - so that an 8-core design shows up as
    // a speedup, not as more work.
    constexpr std::uint64_t kReferenceCores = 4;
    MulticoreResult r = mc.run(
        profile, budget.measured * kReferenceCores, budget.seed,
        /*warmup_per_core=*/50000, path);

    MultiRun out;
    out.result = r;
    PowerModel pm(design);
    out.energy = pm.evaluate(r.total, r.seconds);
    return out;
}

} // namespace detail

AppRun
runSingleCore(const CoreDesign &design, const WorkloadProfile &profile,
              const SimBudget &budget, TracePath path)
{
    return detail::runSingleCoreUncached(design, profile, budget, path);
}

MultiRun
runMulticore(const CoreDesign &design, const WorkloadProfile &profile,
             const SimBudget &budget, TracePath path)
{
    return detail::runMulticoreUncached(design, profile, budget, path);
}

} // namespace m3d
