#include "power/sim_harness.hh"

namespace m3d {
namespace detail {

AppRun
runSingleCoreUncached(const CoreDesign &design,
                      const WorkloadProfile &profile,
                      const SimBudget &budget)
{
    HierarchyTiming timing;
    timing.l1_rt = design.load_to_use;
    timing.frequency = design.frequency;
    CacheHierarchy hierarchy(timing);
    CoreModel core(design, hierarchy);
    TraceGenerator gen(profile, budget.seed);

    // Warm caches and predictors structures; discard the timing.
    core.run(gen, budget.warmup);
    SimResult r = core.run(gen, budget.measured);

    AppRun out;
    out.sim = r;
    out.seconds = r.seconds();
    PowerModel pm(design);
    out.energy = pm.evaluate(r.activity, out.seconds);
    return out;
}

MultiRun
runMulticoreUncached(const CoreDesign &design,
                     const WorkloadProfile &profile,
                     const SimBudget &budget)
{
    MulticoreModel mc(design);
    // Every design executes the same total work - the reference
    // 4-core machine's budget - so that an 8-core design shows up as
    // a speedup, not as more work.
    constexpr std::uint64_t kReferenceCores = 4;
    MulticoreResult r = mc.run(
        profile, budget.measured * kReferenceCores, budget.seed);

    MultiRun out;
    out.result = r;
    PowerModel pm(design);
    out.energy = pm.evaluate(r.total, r.seconds);
    return out;
}

} // namespace detail

AppRun
runSingleCore(const CoreDesign &design, const WorkloadProfile &profile,
              const SimBudget &budget)
{
    return detail::runSingleCoreUncached(design, profile, budget);
}

MultiRun
runMulticore(const CoreDesign &design, const WorkloadProfile &profile,
             const SimBudget &budget)
{
    return detail::runMulticoreUncached(design, profile, budget);
}

} // namespace m3d
