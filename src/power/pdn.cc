#include "power/pdn.hh"

#include <cmath>

#include "util/logging.hh"
#include "util/units.hh"

namespace m3d {

using namespace units;

namespace {

/** PDN strap width (wide upper-metal power rails). */
constexpr double kStrapWidth = 2.0 * um;
/** Strap sheet resistance per length (thick upper metal). */
constexpr double kStrapResPerM = 0.035 / um; // ohm per metre of strap

/** MIV array density feeding the bottom layer: one per (pitch)^2. */
constexpr double kMivFeedPitch = 5.0 * um;

/** Flip-chip area-array power bumps every kBumpPitch. */
constexpr double kBumpPitch = 200.0 * um;

} // namespace

PdnModel::PdnModel(const Technology &tech, double width, double height,
                   double strap_pitch)
    : tech_(tech), width_(width), height_(height),
      strap_pitch_(strap_pitch)
{
    M3D_ASSERT(width > 0.0 && height > 0.0 && strap_pitch > 0.0);
}

PdnReport
PdnModel::evaluate(PdnStyle style, double power, double vdd) const
{
    M3D_ASSERT(power >= 0.0 && vdd > 0.0);
    PdnReport rep;

    const double current = power / vdd;
    const int straps_x =
        std::max(1, static_cast<int>(width_ / strap_pitch_));
    const int straps_y =
        std::max(1, static_cast<int>(height_ / strap_pitch_));

    // Flip-chip area-array feeds: each bump supplies its own tile of
    // the grid, so the worst drop is the local one, from a bump to
    // the farthest point of its tile through the parallel local
    // straps.
    const double area = width_ * height_;
    const double bumps =
        std::max(1.0, area / (kBumpPitch * kBumpPitch));
    auto grid_drop = [&](double load_current) {
        const double tile_current = load_current / bumps;
        const int local_straps = std::max(
            2, 2 * static_cast<int>(kBumpPitch / strap_pitch_));
        const double r_local =
            kStrapResPerM * (kBumpPitch / 2.0) / local_straps;
        return tile_current * r_local;
    };

    const double one_pdn_metal =
        (straps_x * height_ + straps_y * width_) * kStrapWidth;

    switch (style) {
      case PdnStyle::Planar:
        rep.worst_ir_drop = grid_drop(current);
        rep.metal_area = one_pdn_metal;
        break;
      case PdnStyle::PerLayer:
        // Each layer carries half the current on its own full grid.
        rep.worst_ir_drop = grid_drop(current / 2.0);
        rep.metal_area = 2.0 * one_pdn_metal;
        break;
      case PdnStyle::SingleTop: {
        // One grid carries everything; the bottom layer's half of the
        // current additionally crosses the MIV feed array.
        rep.worst_ir_drop = grid_drop(current);
        rep.metal_area = one_pdn_metal;
        rep.miv_count = static_cast<int>(
            (width_ / kMivFeedPitch) * (height_ / kMivFeedPitch));
        const double r_array =
            tech_.via.resistance / std::max(rep.miv_count, 1);
        rep.via_drop = (current / 2.0) * r_array;
        rep.worst_ir_drop += rep.via_drop;
        break;
      }
    }
    return rep;
}

} // namespace m3d
