/**
 * @file
 * Clock distribution model (Section 3.3).
 *
 * The clock tree is an H-tree recursively covering the core footprint
 * down to local sectors, plus the leaf load of the sequential
 * elements.  Its switching power is dominated by total metal
 * capacitance, which scales with the covered footprint - this is why
 * folding a core onto two M3D layers (half the footprint, one extra
 * MIV-fed trunk) cuts clock power, and where the paper's constant
 * "25% switching power reduction" [42] comes from.  This model
 * derives that factor instead of assuming it.
 */

#ifndef M3D_POWER_CLOCK_TREE_HH_
#define M3D_POWER_CLOCK_TREE_HH_

#include "tech/technology.hh"

namespace m3d {

/** H-tree clock network over one rectangular region. */
class ClockTreeModel
{
  public:
    /**
     * @param tech Technology (wire models, Vdd, via).
     * @param width Footprint width (m).
     * @param height Footprint height (m).
     * @param flops Clocked leaf elements in the region.
     * @param layers Device layers the region folds onto (1 or 2).
     */
    ClockTreeModel(const Technology &tech, double width, double height,
                   int flops=120000, int layers=1);

    /** Total H-tree metal length (m), all levels, all layers. */
    double wireLength() const;

    /** Total switched capacitance: wire + buffers + leaf loads (F). */
    double capacitance() const;

    /** Dynamic power at frequency `f` and supply `vdd` (W). */
    double power(double f, double vdd) const;

    /**
     * Switching-power factor of a two-layer fold of this region
     * versus its 2D layout (same flop count, half footprint per
     * layer): the paper's [42] reports ~0.75.
     */
    static double m3dSwitchFactor(const Technology &tech, double width,
                                  double height, int flops=120000);

  private:
    Technology tech_;
    double width_;
    double height_;
    int flops_;
    int layers_;
};

} // namespace m3d

#endif // M3D_POWER_CLOCK_TREE_HH_
