/**
 * @file
 * Power delivery network model (Section 3.3).
 *
 * Two M3D options exist: give each device layer its own PDN (more
 * metal, more routing complexity), or build a single PDN in the top
 * layer and feed the bottom layer through an MIV array.  Billoint et
 * al. [10] find the single-PDN option preferable; this model derives
 * the comparison: the MIV array's parallel resistance is tiny, so
 * the extra IR drop is negligible while a whole PDN's metal is saved.
 */

#ifndef M3D_POWER_PDN_HH_
#define M3D_POWER_PDN_HH_

#include "tech/technology.hh"

namespace m3d {

/** PDN organization options for an M3D stack. */
enum class PdnStyle {
    Planar,      ///< single-layer chip, one PDN
    PerLayer,    ///< each M3D layer has a full PDN
    SingleTop,   ///< one PDN on top, MIV array feeds the bottom layer
};

/** Results of a PDN evaluation. */
struct PdnReport
{
    double worst_ir_drop = 0.0;  ///< V, at the grid's center
    double metal_area = 0.0;     ///< m^2 of PDN metal (cost proxy)
    double via_drop = 0.0;       ///< V, across the MIV array (if any)
    int miv_count = 0;           ///< MIVs feeding the bottom layer
};

/** Analytical power-grid model. */
class PdnModel
{
  public:
    /**
     * @param tech Technology (global wire sheet R, via R).
     * @param width Footprint width (m).
     * @param height Footprint height (m).
     * @param strap_pitch Distance between power straps (m).
     */
    PdnModel(const Technology &tech, double width, double height,
             double strap_pitch=50e-6);

    /**
     * Evaluate an organization for a core drawing `power` watts at
     * `vdd`.
     */
    PdnReport evaluate(PdnStyle style, double power,
                       double vdd=0.8) const;

  private:
    Technology tech_;
    double width_;
    double height_;
    double strap_pitch_;
};

} // namespace m3d

#endif // M3D_POWER_PDN_HH_
