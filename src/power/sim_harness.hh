/**
 * @file
 * The unified run-request harness: one description of "run this
 * workload on this design" (RunRequest), one uncached primitive that
 * executes it (execute()), and one batched fast path that replays a
 * shared trace against many designs at once (runSingleCoreBatch, on
 * top of arch/batch_replay.hh).
 *
 * Everything above this layer - the memoizing engine
 * (engine/evaluator.hh), the search subsystem, the benchmark binaries
 * - funnels through these entry points.  The historical quartet
 * (runSingleCore / runMulticore and their detail::*Uncached twins)
 * remains as thin documented wrappers so existing call sites keep
 * compiling, but new code should build a RunRequest.
 */

#ifndef M3D_POWER_SIM_HARNESS_HH_
#define M3D_POWER_SIM_HARNESS_HH_

#include <cstdint>
#include <vector>

#include "arch/batch_replay.hh"
#include "arch/core_model.hh"
#include "arch/multicore.hh"
#include "power/power_model.hh"

namespace m3d {

/** One (application, design) evaluation. */
struct AppRun
{
    SimResult sim;
    EnergyReport energy;
    double seconds = 0.0;

    double energyJ() const { return energy.total(); }
};

/** Default instruction counts for the paper experiments. */
struct SimBudget
{
    std::uint64_t warmup = 100000;
    std::uint64_t measured = 300000;
    std::uint64_t seed = 42;
};

/** One (parallel application, multicore design) evaluation. */
struct MultiRun
{
    MulticoreResult result;
    EnergyReport energy;

    double seconds() const { return result.seconds; }
    double energyJ() const { return energy.total(); }
};

/** What a RunRequest simulates. */
enum class RunKind
{
    Single, ///< one serial app on one core (AppRun)
    Multi,  ///< one parallel app on the whole multicore (MultiRun)
};

/**
 * One complete evaluation request: everything execute() needs to
 * produce a result, with no implicit state.  Requests are plain
 * values, so batch layers can group, reorder, and fan them without
 * re-deriving context.
 *
 * `path` selects the op source (workload/trace_buffer.hh): Replay -
 * the default - shares one pre-resolved trace per (app, seed, thread)
 * across every design via the process-wide TraceRegistry; Generate
 * runs the generator live.  Results are bit-identical either way.
 */
struct RunRequest
{
    RunKind kind = RunKind::Single;
    CoreDesign design;
    WorkloadProfile app;
    SimBudget budget{};
    TracePath path = TracePath::Replay;
};

/**
 * The result of executing one RunRequest: `single` is populated for
 * RunKind::Single requests, `multi` for RunKind::Multi ones.
 */
struct RunResult
{
    RunKind kind = RunKind::Single;
    AppRun single;
    MultiRun multi;
};

/**
 * Execute one request with cache warmup and energy pricing.  This is
 * the uncached primitive; the engine (engine/evaluator.hh) memoizes
 * and batches around it.
 */
RunResult execute(const RunRequest &req);

/**
 * Batched single-core replay: run `app` on every design at once by
 * streaming the shared pre-resolved trace through
 * arch/batch_replay.hh (design-major blocking, SIMD lanes), then
 * price each design's energy.  Result `k` is bit-identical to
 * executing the equivalent RunKind::Single / TracePath::Replay
 * request for design `k` - batching is purely a throughput
 * optimization (one trace pass for N designs instead of N).
 */
std::vector<AppRun>
runSingleCoreBatch(const std::vector<CoreDesign> &designs,
                   const WorkloadProfile &app,
                   const SimBudget &budget = SimBudget{},
                   const BatchReplayOptions &options = {});

/**
 * Run a serial application on a single core of `design` with cache
 * warmup, and price its energy.
 *
 * Deprecated-style wrapper over execute(); kept for existing call
 * sites.  Batch or repeated evaluations should go through
 * engine/evaluator.hh, which adds memoization, batched replay, and a
 * thread pool on top of the same primitive.
 */
AppRun runSingleCore(const CoreDesign &design,
                     const WorkloadProfile &profile,
                     const SimBudget &budget=SimBudget{},
                     TracePath path=TracePath::Replay);

/**
 * Run a parallel application on the multicore `design` and price the
 * total energy of all cores.  Deprecated-style wrapper over
 * execute(); see runSingleCore().
 */
MultiRun runMulticore(const CoreDesign &design,
                      const WorkloadProfile &profile,
                      const SimBudget &budget=SimBudget{},
                      TracePath path=TracePath::Replay);

namespace detail {

/** Wrapper over execute() kept for existing call sites; the engine
 * memoizes around the same primitive. */
AppRun runSingleCoreUncached(const CoreDesign &design,
                             const WorkloadProfile &profile,
                             const SimBudget &budget,
                             TracePath path=TracePath::Replay);

/** Wrapper over execute(); see runSingleCoreUncached(). */
MultiRun runMulticoreUncached(const CoreDesign &design,
                              const WorkloadProfile &profile,
                              const SimBudget &budget,
                              TracePath path=TracePath::Replay);

} // namespace detail

} // namespace m3d

#endif // M3D_POWER_SIM_HARNESS_HH_
