/**
 * @file
 * Convenience harness shared by the benchmark binaries, the examples,
 * and the integration tests: run one application on one design with
 * proper cache warmup, and return timing plus energy.
 */

#ifndef M3D_POWER_SIM_HARNESS_HH_
#define M3D_POWER_SIM_HARNESS_HH_

#include <cstdint>

#include "arch/core_model.hh"
#include "arch/multicore.hh"
#include "power/power_model.hh"

namespace m3d {

/** One (application, design) evaluation. */
struct AppRun
{
    SimResult sim;
    EnergyReport energy;
    double seconds = 0.0;

    double energyJ() const { return energy.total(); }
};

/** Default instruction counts for the paper experiments. */
struct SimBudget
{
    std::uint64_t warmup = 100000;
    std::uint64_t measured = 300000;
    std::uint64_t seed = 42;
};

/**
 * Run a serial application on a single core of `design` with cache
 * warmup, and price its energy.
 *
 * Thin forwarding wrapper kept for existing call sites; batch or
 * repeated evaluations should go through engine/evaluator.hh, which
 * adds memoization and a thread pool on top of the same primitive.
 *
 * `path` selects the op source (workload/trace_buffer.hh): Replay
 * shares one pre-resolved trace across every design; Generate runs
 * the generator live.  Results are bit-identical either way.
 */
AppRun runSingleCore(const CoreDesign &design,
                     const WorkloadProfile &profile,
                     const SimBudget &budget=SimBudget{},
                     TracePath path=TracePath::Replay);

/** One (parallel application, multicore design) evaluation. */
struct MultiRun
{
    MulticoreResult result;
    EnergyReport energy;

    double seconds() const { return result.seconds; }
    double energyJ() const { return energy.total(); }
};

/**
 * Run a parallel application on the multicore `design` and price the
 * total energy of all cores.  Thin wrapper; see runSingleCore().
 */
MultiRun runMulticore(const CoreDesign &design,
                      const WorkloadProfile &profile,
                      const SimBudget &budget=SimBudget{},
                      TracePath path=TracePath::Replay);

namespace detail {

/** Uncached single-core evaluation; the engine memoizes around it. */
AppRun runSingleCoreUncached(const CoreDesign &design,
                             const WorkloadProfile &profile,
                             const SimBudget &budget,
                             TracePath path=TracePath::Replay);

/** Uncached multicore evaluation; the engine memoizes around it. */
MultiRun runMulticoreUncached(const CoreDesign &design,
                              const WorkloadProfile &profile,
                              const SimBudget &budget,
                              TracePath path=TracePath::Replay);

} // namespace detail

} // namespace m3d

#endif // M3D_POWER_SIM_HARNESS_HH_
