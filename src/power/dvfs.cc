#include "power/dvfs.hh"

#include <cmath>

#include "util/logging.hh"

namespace m3d {

DvfsModel::DvfsModel(double v_nominal, double vt, double alpha)
    : v_nominal_(v_nominal), vt_(vt), alpha_(alpha)
{
    M3D_ASSERT(v_nominal > vt && vt > 0.0 && alpha >= 1.0);
}

double
DvfsModel::delayFactor(double vdd) const
{
    M3D_ASSERT(vdd > vt_, "supply must stay above threshold");
    auto delay = [this](double v) {
        return v / std::pow(v - vt_, alpha_);
    };
    return delay(vdd) / delay(v_nominal_);
}

double
DvfsModel::maxFrequency(double vdd, double f_nominal) const
{
    return f_nominal / delayFactor(vdd);
}

double
DvfsModel::minVddForSlack(double slack_fraction) const
{
    M3D_ASSERT(slack_fraction >= 0.0 && slack_fraction < 1.0);
    const double budget = 1.0 / (1.0 - slack_fraction);
    // delayFactor is monotonically decreasing in vdd; bisect.
    double lo = vt_ + 1e-3;
    double hi = v_nominal_;
    if (delayFactor(lo) <= budget)
        return lo;
    for (int iter = 0; iter < 80; ++iter) {
        const double mid = 0.5 * (lo + hi);
        if (delayFactor(mid) > budget)
            lo = mid;
        else
            hi = mid;
    }
    return hi;
}

} // namespace m3d
