/**
 * @file
 * Voltage-frequency model (Section 6.1's iso-power design).
 *
 * M3D-Het-2X keeps the 2D clock and spends the partitioned
 * structures' timing slack on *undervolting* instead: the paper,
 * "following curves from the literature [18, 23]", lowers Vdd by
 * 50 mV to 0.75 V.  This model derives that trade with the standard
 * alpha-power-law delay model,
 *
 *   delay(V) ~ V / (V - Vt)^alpha ,
 *
 * answering: given a fractional cycle-time slack from 3D
 * partitioning, how low can the supply go at the original frequency?
 */

#ifndef M3D_POWER_DVFS_HH_
#define M3D_POWER_DVFS_HH_

namespace m3d {

/** Alpha-power-law voltage/delay model. */
class DvfsModel
{
  public:
    /**
     * @param v_nominal Nominal supply (0.8 V at 22nm, ITRS).
     * @param vt Threshold voltage.
     * @param alpha Velocity-saturation exponent (~1.3 for short
     *        channels).
     */
    explicit DvfsModel(double v_nominal=0.8, double vt=0.35,
                       double alpha=1.3);

    /** delay(vdd) / delay(v_nominal); > 1 below nominal. */
    double delayFactor(double vdd) const;

    /** Highest frequency sustainable at `vdd` given `f_nominal` at
     * the nominal supply. */
    double maxFrequency(double vdd, double f_nominal) const;

    /**
     * Lowest supply that still meets the nominal frequency when the
     * critical path shrank by `slack_fraction` (e.g. the 13% cycle
     * reduction of M3D-Het allows delayFactor up to 1/(1-0.13)).
     */
    double minVddForSlack(double slack_fraction) const;

    double nominalVdd() const { return v_nominal_; }

  private:
    double v_nominal_;
    double vt_;
    double alpha_;
};

} // namespace m3d

#endif // M3D_POWER_DVFS_HH_
