#include "power/power_model.hh"

#include <cmath>

#include "sram/array_model.hh"
#include "util/logging.hh"
#include "util/units.hh"

namespace m3d {

using namespace units;

namespace {

// Activity factor applied to array energies: precharge, clocking, and
// partially-activated redundant structures make effective per-access
// energy a few times the pure read energy (McPAT calibration knob).
constexpr double kArrayActivityScale = 9.0;

// Logic switching energy per instruction at 0.8 V (decode + rename +
// schedule control + execute datapath), calibrated so the Base core
// averages ~6.4 W (paper, Section 7.1.3).
constexpr double kLogicEnergyPerInstr = 340.0 * pJ;
// Execute-cluster share of the logic energy (the part the 3D layout
// shrinks by the measured ALU-cluster factor).
constexpr double kExecuteShare = 0.60;

// Clock-tree power at the base frequency and full 2D footprint.
constexpr double kClockPowerBase = 2.2; // W at 3.3 GHz
// Logic (non-array) leakage of the 2D core.
constexpr double kLogicLeakage = 0.55;  // W

// NoC energy per remote transfer (flit burst for a 64B line).
constexpr double kNocEnergyPerFlit = 1.2 * nJ;

constexpr double kNominalVdd = 0.8;

} // namespace

PowerModel::PowerModel(const CoreDesign &design) : design_(design)
{
    // Per-access energies of the 2D structures, scaled by the
    // design's partition outcome.
    ArrayModel planar(Technology::planar2D());
    for (const ArrayConfig &cfg : CoreStructures::all()) {
        ArrayMetrics m = planar.evaluate2D(cfg);
        access_energy_[cfg.name] =
            m.access_energy * kArrayActivityScale *
            design_.structureEnergyFactor(cfg.name);
        leak_power_[cfg.name] = m.leakage_power;
    }
}

double
PowerModel::accessEnergy(const std::string &structure) const
{
    auto it = access_energy_.find(structure);
    M3D_ASSERT(it != access_energy_.end(), "unknown structure: ",
               structure);
    return it->second;
}

EnergyReport
PowerModel::evaluate(const Activity &a, double seconds) const
{
    EnergyReport rep;
    const double v_scale2 =
        (design_.vdd / kNominalVdd) * (design_.vdd / kNominalVdd);
    const double v_scale3 = v_scale2 * (design_.vdd / kNominalVdd);

    auto count = [](std::uint64_t c) { return static_cast<double>(c); };

    // --- Arrays.
    double arrays = 0.0;
    arrays += count(a.rf_reads + a.rf_writes) * accessEnergy("RF");
    arrays += count(a.iq_writes + a.iq_wakeups) * accessEnergy("IQ");
    arrays += count(a.sq_searches + a.stores) * accessEnergy("SQ");
    arrays += count(a.lq_searches + a.loads) * accessEnergy("LQ");
    arrays += count(a.rat_reads + a.rat_writes) * accessEnergy("RAT");
    arrays += count(a.bpt_lookups) * accessEnergy("BPT");
    arrays += count(a.btb_lookups) * accessEnergy("BTB");
    arrays += count(a.loads + a.stores) * accessEnergy("DTLB");
    arrays += count(a.fetches) * accessEnergy("ITLB");
    arrays += count(a.l1i_accesses) * accessEnergy("IL1");
    arrays += count(a.l1d_accesses) * accessEnergy("DL1");
    arrays += count(a.l2_accesses) * accessEnergy("L2");
    rep.array_j = arrays * v_scale2;

    // --- Logic.
    const double exec_factor =
        1.0 - design_.execute_gains.energy_reduction;
    const double logic_factor =
        (1.0 - kExecuteShare) + kExecuteShare * exec_factor;
    rep.logic_j = count(a.instructions) * kLogicEnergyPerInstr *
                  logic_factor * v_scale2;

    // --- Clock tree: scales with frequency and the 3D switching
    // factor (0.75 for stacked designs).
    const double clock_power = kClockPowerBase *
        (design_.frequency / kBaseFrequency) *
        design_.clock_tree_switch_factor * v_scale2;
    rep.clock_j = clock_power * seconds;

    // --- Leakage: structures + logic, unchanged by partitioning
    // (Section 6), integrated over the runtime.
    double leak = kLogicLeakage;
    for (const auto &[name, watts] : leak_power_)
        leak += watts;
    rep.leakage_j = leak * v_scale3 * seconds;

    // --- NoC.
    rep.noc_j = count(a.noc_flits) * kNocEnergyPerFlit * v_scale2;
    return rep;
}

std::map<std::string, double>
PowerModel::blockPower(const Activity &a, double seconds) const
{
    M3D_ASSERT(seconds > 0.0);
    const EnergyReport rep = evaluate(a, seconds);
    auto count = [](std::uint64_t c) { return static_cast<double>(c); };
    const double v_scale2 =
        (design_.vdd / kNominalVdd) * (design_.vdd / kNominalVdd);

    auto arr = [&](const std::string &s, double accesses) {
        return (accesses * accessEnergy(s) * v_scale2) / seconds +
               leak_power_.at(s);
    };

    std::map<std::string, double> blocks;
    blocks["RF"] = arr("RF", count(a.rf_reads + a.rf_writes));
    blocks["IQ"] = arr("IQ", count(a.iq_writes + a.iq_wakeups));
    blocks["LSU"] = arr("SQ", count(a.sq_searches + a.stores)) +
                    arr("LQ", count(a.lq_searches + a.loads)) +
                    arr("DTLB", count(a.loads + a.stores));
    blocks["RAT"] = arr("RAT", count(a.rat_reads + a.rat_writes));
    blocks["Fetch"] = arr("BPT", count(a.bpt_lookups)) +
                      arr("BTB", count(a.btb_lookups)) +
                      arr("ITLB", count(a.fetches)) +
                      arr("IL1", count(a.l1i_accesses));
    blocks["DL1"] = arr("DL1", count(a.l1d_accesses));

    // Split logic power between decode and execute clusters.
    const double logic_power = rep.logic_j / seconds + kLogicLeakage;
    blocks["Decode"] = logic_power * 0.35;
    const double fpu_share =
        count(a.fp_ops) /
        std::max(count(a.alu_ops + a.fp_ops + a.mul_div_ops), 1.0);
    blocks["FPU"] = logic_power * 0.65 * fpu_share;
    blocks["ALU"] = logic_power * 0.65 * (1.0 - fpu_share);

    blocks["Clock"] = rep.clock_j / seconds;
    return blocks;
}

} // namespace m3d
