#include "power/clock_tree.hh"

#include <cmath>

#include "util/logging.hh"
#include "util/units.hh"

namespace m3d {

using namespace units;

namespace {

/** Stop recursing once sectors reach the local clock-grid size. */
constexpr double kSectorSize = 200.0 * um;
/** Buffer input capacitance per H-tree branch point. */
constexpr double kBufferCap = 12.0 * fF;
/** Clock input capacitance of one flop. */
constexpr double kFlopCap = 1.2 * fF;

/**
 * Total H-tree wirelength over a w x h region: each level adds one
 * horizontal and one vertical segment spanning the current tile and
 * splits it in four.
 */
double
htreeLength(double w, double h, double sector_scale=1.0)
{
    double total = 0.0;
    double tile_w = w;
    double tile_h = h;
    int tiles = 1;
    while (tile_w > kSectorSize || tile_h > kSectorSize) {
        total += tiles * (tile_w / 2.0 + tile_h / 2.0);
        tile_w /= 2.0;
        tile_h /= 2.0;
        tiles *= 4;
        if (tiles > (1 << 20))
            break; // degenerate inputs
    }
    // Local sector grid: a serpentine covering each sector once.
    // 3D place-and-route shortens these local nets (~25% [38, 44]);
    // callers pass sector_scale < 1 for folded layouts.
    total += tiles * (tile_w + tile_h) * sector_scale;
    return total;
}

} // namespace

ClockTreeModel::ClockTreeModel(const Technology &tech, double width,
                               double height, int flops, int layers)
    : tech_(tech), width_(width), height_(height), flops_(flops),
      layers_(layers)
{
    M3D_ASSERT(width > 0.0 && height > 0.0);
    M3D_ASSERT(layers == 1 || layers == 2,
               "clock model supports 1 or 2 device layers");
    M3D_ASSERT(layers == 1 || tech.layers() == 2,
               "two clock layers need a stacked technology");
}

double
ClockTreeModel::wireLength() const
{
    if (layers_ == 1)
        return htreeLength(width_, height_);
    // Two layers: each layer's tree covers the (already folded)
    // footprint; the second tree hangs off the first through a MIV
    // trunk, and the 3D router shortens the local grids by ~25%.
    return 2.0 * htreeLength(width_, height_, 0.75);
}

double
ClockTreeModel::capacitance() const
{
    const WireParams &gw = tech_.global_wire;
    const double wire_c = gw.capOf(wireLength());
    // One buffer per ~400um of tree keeps edges sharp.
    const double buffers =
        wireLength() / (400.0 * um) * kBufferCap;
    const double leaves = static_cast<double>(flops_) * kFlopCap;
    double via_c = 0.0;
    if (layers_ == 2) {
        // The top tree's trunk crosses on a small MIV array.
        via_c = 16.0 * tech_.via.capacitance;
    }
    return wire_c + buffers + leaves + via_c;
}

double
ClockTreeModel::power(double f, double vdd) const
{
    // The clock switches twice per cycle: alpha = 1.
    return capacitance() * vdd * vdd * f;
}

double
ClockTreeModel::m3dSwitchFactor(const Technology &tech, double width,
                                double height, int flops)
{
    ClockTreeModel planar(Technology::planar2D(), width, height, flops,
                          1);
    // Folded: half the footprint per layer (area/2 => dims /sqrt(2)),
    // flops split across the two layers.
    const double lin = std::sqrt(0.5);
    ClockTreeModel folded(tech, width * lin, height * lin, flops, 2);
    return folded.capacitance() / planar.capacitance();
}

} // namespace m3d
