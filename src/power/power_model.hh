/**
 * @file
 * McPAT-style core power/energy model (Section 6).
 *
 * Energy for a run decomposes into:
 *  - array dynamic energy: activity counts x per-access energy from
 *    the CACTI-style model, scaled by each structure's partition
 *    energy factor for 3D designs;
 *  - logic dynamic energy: per-instruction switching energy of the
 *    decode/rename/execute stages, scaled by the ALU-cluster
 *    switching-power reduction measured on the laid-out circuit;
 *  - clock tree: a frequency-proportional power, scaled by 0.75 for
 *    3D designs [42];
 *  - leakage: structure + logic static power, integrated over time.
 * Dynamic terms scale with Vdd^2 and leakage with Vdd^3 when a design
 * undervolts (M3D-Het-2X).
 */

#ifndef M3D_POWER_POWER_MODEL_HH_
#define M3D_POWER_POWER_MODEL_HH_

#include <map>
#include <string>

#include "arch/activity.hh"
#include "core/design.hh"

namespace m3d {

/** Energy of one simulated run. */
struct EnergyReport
{
    double array_j = 0.0;   ///< SRAM/CAM dynamic energy
    double logic_j = 0.0;   ///< pipeline logic dynamic energy
    double clock_j = 0.0;   ///< clock tree
    double leakage_j = 0.0; ///< static energy
    double noc_j = 0.0;     ///< interconnect (multicore)

    double total() const
    {
        return array_j + logic_j + clock_j + leakage_j + noc_j;
    }

    /** Average power over `seconds`. */
    double avgPower(double seconds) const
    {
        return seconds > 0.0 ? total() / seconds : 0.0;
    }
};

/** Power model bound to one core design. */
class PowerModel
{
  public:
    explicit PowerModel(const CoreDesign &design);

    /** Energy of a run described by activity counters + runtime. */
    EnergyReport evaluate(const Activity &activity,
                          double seconds) const;

    /**
     * Per-block average power (W) for the thermal floorplan, given a
     * run.  Keys match FloorplanLibrary block names.
     */
    std::map<std::string, double>
    blockPower(const Activity &activity, double seconds) const;

    /** Per-access energy (J) used for a structure in this design. */
    double accessEnergy(const std::string &structure) const;

    const CoreDesign &design() const { return design_; }

  private:
    CoreDesign design_;
    std::map<std::string, double> access_energy_;  ///< per structure
    std::map<std::string, double> leak_power_;     ///< per structure
};

} // namespace m3d

#endif // M3D_POWER_POWER_MODEL_HH_
