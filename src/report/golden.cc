#include "report/golden.hh"

#include <cmath>
#include <fstream>
#include <sstream>

#include "util/logging.hh"
#include "util/table.hh"

namespace m3d {
namespace report {

std::string
Tolerance::describe() const
{
    return (kind == Kind::Absolute ? "abs " : "rel ") +
           Json::formatNumber(value);
}

bool
withinTolerance(double actual, double expect, const Tolerance &tol)
{
    if (!std::isfinite(actual) || !std::isfinite(expect))
        return false;
    const double delta = std::fabs(actual - expect);
    const double allowed = tol.kind == Tolerance::Kind::Absolute
        ? tol.value
        : tol.value * std::fabs(expect);
    return delta <= allowed;
}

void
Golden::add(GoldenMetric metric)
{
    M3D_ASSERT(!metric.name.empty(),
               "golden metric name must not be empty");
    if (find(metric.name)) {
        M3D_PANIC("golden metric '", metric.name,
                  "' registered twice in '", experiment_, "'");
    }
    metrics_.push_back(std::move(metric));
}

const GoldenMetric *
Golden::find(const std::string &name) const
{
    for (const GoldenMetric &m : metrics_) {
        if (m.name == name)
            return &m;
    }
    return nullptr;
}

Json
Golden::toJson() const
{
    Json doc = Json::object();
    doc.set("kind", Json::string(kGoldenKind));
    doc.set("version", Json::number(kGoldenVersion));
    doc.set("experiment", Json::string(experiment_));
    if (!command_.empty())
        doc.set("command", Json::string(command_));
    Json metrics = Json::object();
    for (const GoldenMetric &m : metrics_) {
        Json entry = Json::object();
        entry.set("expect", Json::number(m.expect));
        entry.set(m.tol.kind == Tolerance::Kind::Absolute
                      ? "abs_tol" : "rel_tol",
                  Json::number(m.tol.value));
        if (m.paper)
            entry.set("paper", Json::number(*m.paper));
        metrics.set(m.name, std::move(entry));
    }
    doc.set("metrics", std::move(metrics));
    return doc;
}

bool
Golden::save(const std::string &path, std::string *error) const
{
    std::ofstream out(path, std::ios::trunc);
    if (out.is_open())
        write(out);
    if (!out) {
        if (error)
            *error = "cannot write golden file '" + path + "'";
        return false;
    }
    return true;
}

std::optional<Golden>
Golden::fromJson(const Json &doc, std::string *error)
{
    auto reject = [error](const std::string &what) {
        if (error)
            *error = what;
        return std::nullopt;
    };

    if (!doc.isObject())
        return reject("golden document is not a JSON object");
    const Json *kind = doc.find("kind");
    if (!kind || !kind->isString() ||
        kind->asString() != kGoldenKind) {
        return reject("not an m3d-golden document (bad \"kind\")");
    }
    const Json *version = doc.find("version");
    if (!version || !version->isNumber())
        return reject("golden has no numeric \"version\"");
    if (version->asNumber() != kGoldenVersion) {
        return reject("unsupported golden version " +
                      Json::formatNumber(version->asNumber()) +
                      " (expected " +
                      std::to_string(kGoldenVersion) + ")");
    }
    const Json *experiment = doc.find("experiment");
    if (!experiment || !experiment->isString())
        return reject("golden has no \"experiment\" string");
    const Json *metrics = doc.find("metrics");
    if (!metrics || !metrics->isObject())
        return reject("golden has no \"metrics\" object");

    Golden g(experiment->asString());
    if (const Json *command = doc.find("command")) {
        if (!command->isString())
            return reject("golden \"command\" is not a string");
        g.setCommand(command->asString());
    }

    for (const Json::Member &m : metrics->members()) {
        if (!m.second.isObject()) {
            return reject("golden metric \"" + m.first +
                          "\" is not an object");
        }
        GoldenMetric gm;
        gm.name = m.first;
        const Json *expect = m.second.find("expect");
        if (!expect || !expect->isNumber() ||
            !std::isfinite(expect->asNumber())) {
            return reject("golden metric \"" + m.first +
                          "\" has no finite \"expect\" number");
        }
        gm.expect = expect->asNumber();

        const Json *abs_tol = m.second.find("abs_tol");
        const Json *rel_tol = m.second.find("rel_tol");
        if ((abs_tol == nullptr) == (rel_tol == nullptr)) {
            return reject("golden metric \"" + m.first +
                          "\" needs exactly one of \"abs_tol\" / "
                          "\"rel_tol\"");
        }
        const Json *tol = abs_tol ? abs_tol : rel_tol;
        if (!tol->isNumber() || !std::isfinite(tol->asNumber()) ||
            tol->asNumber() < 0.0) {
            return reject("golden metric \"" + m.first +
                          "\" tolerance is not a finite number "
                          ">= 0");
        }
        gm.tol = abs_tol ? Tolerance::absolute(tol->asNumber())
                         : Tolerance::relative(tol->asNumber());

        if (const Json *paper = m.second.find("paper")) {
            if (!paper->isNumber()) {
                return reject("golden metric \"" + m.first +
                              "\" \"paper\" is not a number");
            }
            gm.paper = paper->asNumber();
        }
        g.add(std::move(gm));
    }
    return g;
}

std::optional<Golden>
Golden::parse(const std::string &text, std::string *error)
{
    Json doc;
    if (!Json::parse(text, &doc, error))
        return std::nullopt;
    return fromJson(doc, error);
}

std::optional<Golden>
Golden::load(const std::string &path, std::string *error)
{
    std::ifstream in(path);
    if (!in.is_open()) {
        if (error)
            *error = "cannot open golden file '" + path + "'";
        return std::nullopt;
    }
    std::ostringstream text;
    text << in.rdbuf();
    return parse(text.str(), error);
}

Golden
Golden::bless(const Report &report, const Golden *previous,
              double default_rel_tol)
{
    Golden g(report.experiment());
    if (previous)
        g.setCommand(previous->command());
    for (const Metric &m : report.metrics()) {
        GoldenMetric gm;
        gm.name = m.name;
        gm.expect = m.value;
        const GoldenMetric *old =
            previous ? previous->find(m.name) : nullptr;
        if (old) {
            gm.tol = old->tol;
            gm.paper = old->paper;
        } else if (m.value == 0.0) {
            // A relative band around zero is empty; allow noise at
            // the scale double rounding could plausibly introduce.
            gm.tol = Tolerance::absolute(1e-12);
        } else {
            gm.tol = Tolerance::relative(default_rel_tol);
        }
        g.add(std::move(gm));
    }
    return g;
}

std::size_t
CheckResult::failures() const
{
    std::size_t n = 0;
    for (const MetricCheck &c : checks) {
        if (c.status != CheckStatus::Pass)
            ++n;
    }
    return n;
}

CheckResult
check(const Report &report, const Golden &golden)
{
    CheckResult result;
    result.experiment_mismatch =
        report.experiment() != golden.experiment();

    for (const GoldenMetric &gm : golden.metrics()) {
        MetricCheck c;
        c.name = gm.name;
        c.expect = gm.expect;
        c.tol = gm.tol;
        c.paper = gm.paper;
        if (!report.has(gm.name)) {
            c.status = CheckStatus::Missing;
        } else {
            c.actual = report.value(gm.name);
            c.status = withinTolerance(c.actual, gm.expect, gm.tol)
                ? CheckStatus::Pass
                : CheckStatus::Mismatch;
        }
        result.checks.push_back(std::move(c));
    }
    for (const Metric &m : report.metrics()) {
        if (golden.find(m.name))
            continue;
        MetricCheck c;
        c.name = m.name;
        c.status = CheckStatus::Unexpected;
        c.actual = m.value;
        result.checks.push_back(std::move(c));
    }
    return result;
}

namespace {

const char *
statusWord(CheckStatus s)
{
    switch (s) {
      case CheckStatus::Pass: return "ok";
      case CheckStatus::Mismatch: return "MISMATCH";
      case CheckStatus::Missing: return "MISSING";
      case CheckStatus::Unexpected: return "UNEXPECTED";
    }
    return "?";
}

} // namespace

void
printCheckReport(std::ostream &os, const CheckResult &result,
                 const Report &report, const Golden &golden,
                 bool verbose)
{
    if (result.experiment_mismatch) {
        os << "experiment mismatch: emission is '"
           << report.experiment() << "', golden is '"
           << golden.experiment() << "'\n";
    }

    const std::size_t failed = result.failures();
    if (failed > 0 || verbose) {
        Table t("Golden check: " + golden.experiment());
        t.header({"Metric", "Status", "Expected", "Actual", "Delta",
                  "Tolerance", "Paper"});
        for (const MetricCheck &c : result.checks) {
            if (c.status == CheckStatus::Pass && !verbose)
                continue;
            const bool has_both = c.status == CheckStatus::Pass ||
                                  c.status == CheckStatus::Mismatch;
            t.row({c.name, statusWord(c.status),
                   c.status == CheckStatus::Unexpected
                       ? "-" : Json::formatNumber(c.expect),
                   c.status == CheckStatus::Missing
                       ? "-" : Json::formatNumber(c.actual),
                   has_both
                       ? Json::formatNumber(c.actual - c.expect)
                       : "-",
                   c.status == CheckStatus::Unexpected
                       ? "-" : c.tol.describe(),
                   c.paper ? Json::formatNumber(*c.paper) : "-"});
        }
        t.print(os);
        os << "\n";
    }

    os << golden.experiment() << ": "
       << (result.passed() ? "PASS" : "FAIL") << " ("
       << result.checks.size() - failed << "/"
       << result.checks.size() << " metrics within tolerance)\n";
}

} // namespace report
} // namespace m3d
