#include "report/json.hh"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <string_view>

#include "util/logging.hh"

namespace m3d {
namespace report {

Json
Json::boolean(bool v)
{
    Json j;
    j.type_ = Type::Bool;
    j.bool_ = v;
    return j;
}

Json
Json::number(double v)
{
    Json j;
    j.type_ = Type::Number;
    j.number_ = v;
    return j;
}

Json
Json::string(std::string v)
{
    Json j;
    j.type_ = Type::String;
    j.string_ = std::move(v);
    return j;
}

Json
Json::array()
{
    Json j;
    j.type_ = Type::Array;
    return j;
}

Json
Json::object()
{
    Json j;
    j.type_ = Type::Object;
    return j;
}

bool
Json::asBool() const
{
    M3D_ASSERT(type_ == Type::Bool, "JSON value is not a bool");
    return bool_;
}

double
Json::asNumber() const
{
    M3D_ASSERT(type_ == Type::Number, "JSON value is not a number");
    return number_;
}

const std::string &
Json::asString() const
{
    M3D_ASSERT(type_ == Type::String, "JSON value is not a string");
    return string_;
}

const std::vector<Json> &
Json::elements() const
{
    M3D_ASSERT(type_ == Type::Array, "JSON value is not an array");
    return elements_;
}

const std::vector<Json::Member> &
Json::members() const
{
    M3D_ASSERT(type_ == Type::Object, "JSON value is not an object");
    return members_;
}

const Json *
Json::find(const std::string &key) const
{
    if (type_ != Type::Object)
        return nullptr;
    for (const Member &m : members_) {
        if (m.first == key)
            return &m.second;
    }
    return nullptr;
}

void
Json::set(std::string key, Json value)
{
    M3D_ASSERT(type_ == Type::Object, "set() on a non-object");
    members_.emplace_back(std::move(key), std::move(value));
}

void
Json::push(Json value)
{
    M3D_ASSERT(type_ == Type::Array, "push() on a non-array");
    elements_.push_back(std::move(value));
}

std::string
Json::formatNumber(double v)
{
    M3D_ASSERT(std::isfinite(v),
               "JSON cannot represent a non-finite number");
    char buf[64];
    const auto res = std::to_chars(buf, buf + sizeof(buf), v);
    M3D_ASSERT(res.ec == std::errc(), "to_chars overflow");
    return std::string(buf, res.ptr);
}

namespace {

void
writeEscaped(std::ostream &os, const std::string &s)
{
    os << '"';
    for (const char c : s) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\r': os << "\\r"; break;
          case '\t': os << "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                os << buf;
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

void
indent(std::ostream &os, int depth)
{
    for (int i = 0; i < depth; ++i)
        os << "  ";
}

} // namespace

void
Json::writeIndented(std::ostream &os, int depth) const
{
    switch (type_) {
      case Type::Null:
        os << "null";
        break;
      case Type::Bool:
        os << (bool_ ? "true" : "false");
        break;
      case Type::Number:
        os << formatNumber(number_);
        break;
      case Type::String:
        writeEscaped(os, string_);
        break;
      case Type::Array:
        if (elements_.empty()) {
            os << "[]";
            break;
        }
        os << "[\n";
        for (std::size_t i = 0; i < elements_.size(); ++i) {
            indent(os, depth + 1);
            elements_[i].writeIndented(os, depth + 1);
            os << (i + 1 < elements_.size() ? ",\n" : "\n");
        }
        indent(os, depth);
        os << "]";
        break;
      case Type::Object:
        if (members_.empty()) {
            os << "{}";
            break;
        }
        os << "{\n";
        for (std::size_t i = 0; i < members_.size(); ++i) {
            indent(os, depth + 1);
            writeEscaped(os, members_[i].first);
            os << ": ";
            members_[i].second.writeIndented(os, depth + 1);
            os << (i + 1 < members_.size() ? ",\n" : "\n");
        }
        indent(os, depth);
        os << "}";
        break;
    }
}

void
Json::write(std::ostream &os) const
{
    writeIndented(os, 0);
    os << "\n";
}

std::string
Json::dump() const
{
    std::ostringstream oss;
    write(oss);
    return oss.str();
}

// ---------------------------------------------------------------------
// Parser: recursive descent over the full document.
// ---------------------------------------------------------------------

namespace {

class JsonParser
{
  public:
    JsonParser(const std::string &text, std::string *error)
        : text_(text), error_(error) {}

    bool parseDocument(Json *out)
    {
        skipWhitespace();
        if (!parseValue(out, 0))
            return false;
        skipWhitespace();
        if (pos_ != text_.size())
            return fail("trailing characters after JSON value");
        return true;
    }

  private:
    static constexpr int kMaxDepth = 64;

    bool fail(const std::string &what)
    {
        if (error_) {
            std::size_t line = 1, col = 1;
            for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
                if (text_[i] == '\n') {
                    ++line;
                    col = 1;
                } else {
                    ++col;
                }
            }
            *error_ = what + " at line " + std::to_string(line) +
                      ", column " + std::to_string(col);
        }
        return false;
    }

    void skipWhitespace()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    bool atEnd() const { return pos_ >= text_.size(); }
    char peek() const { return text_[pos_]; }

    bool literal(const char *word, Json value, Json *out)
    {
        const std::size_t n = std::string_view(word).size();
        if (text_.compare(pos_, n, word) != 0)
            return fail("invalid literal");
        pos_ += n;
        *out = std::move(value);
        return true;
    }

    bool parseValue(Json *out, int depth)
    {
        if (depth > kMaxDepth)
            return fail("nesting too deep");
        if (atEnd())
            return fail("unexpected end of input");
        switch (peek()) {
          case 'n': return literal("null", Json(), out);
          case 't': return literal("true", Json::boolean(true), out);
          case 'f': return literal("false", Json::boolean(false), out);
          case '"': return parseString(out);
          case '[': return parseArray(out, depth);
          case '{': return parseObject(out, depth);
          default: return parseNumber(out);
        }
    }

    bool parseNumber(Json *out)
    {
        const std::size_t start = pos_;
        if (!atEnd() && peek() == '-')
            ++pos_;
        while (!atEnd() &&
               (std::isdigit(static_cast<unsigned char>(peek())) ||
                peek() == '.' || peek() == 'e' || peek() == 'E' ||
                peek() == '+' || peek() == '-')) {
            ++pos_;
        }
        double v = 0.0;
        const char *first = text_.data() + start;
        const char *last = text_.data() + pos_;
        const auto res = std::from_chars(first, last, v);
        if (res.ec != std::errc() || res.ptr != last ||
            first == last) {
            pos_ = start;
            return fail("malformed number");
        }
        *out = Json::number(v);
        return true;
    }

    bool parseHex4(unsigned *out)
    {
        unsigned v = 0;
        for (int i = 0; i < 4; ++i) {
            if (atEnd())
                return fail("truncated \\u escape");
            const char c = peek();
            v <<= 4;
            if (c >= '0' && c <= '9')
                v |= static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f')
                v |= static_cast<unsigned>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                v |= static_cast<unsigned>(c - 'A' + 10);
            else
                return fail("bad hex digit in \\u escape");
            ++pos_;
        }
        *out = v;
        return true;
    }

    bool parseString(Json *out)
    {
        ++pos_; // opening quote
        std::string s;
        while (true) {
            if (atEnd())
                return fail("unterminated string");
            char c = peek();
            ++pos_;
            if (c == '"')
                break;
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("raw control character in string");
            if (c != '\\') {
                s += c;
                continue;
            }
            if (atEnd())
                return fail("truncated escape");
            const char e = peek();
            ++pos_;
            switch (e) {
              case '"': s += '"'; break;
              case '\\': s += '\\'; break;
              case '/': s += '/'; break;
              case 'b': s += '\b'; break;
              case 'f': s += '\f'; break;
              case 'n': s += '\n'; break;
              case 'r': s += '\r'; break;
              case 't': s += '\t'; break;
              case 'u': {
                unsigned cp = 0;
                if (!parseHex4(&cp))
                    return false;
                if (cp >= 0xD800 && cp <= 0xDFFF)
                    return fail("surrogate \\u escapes unsupported");
                // Encode the BMP code point as UTF-8.
                if (cp < 0x80) {
                    s += static_cast<char>(cp);
                } else if (cp < 0x800) {
                    s += static_cast<char>(0xC0 | (cp >> 6));
                    s += static_cast<char>(0x80 | (cp & 0x3F));
                } else {
                    s += static_cast<char>(0xE0 | (cp >> 12));
                    s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
                    s += static_cast<char>(0x80 | (cp & 0x3F));
                }
                break;
              }
              default:
                return fail("unknown escape sequence");
            }
        }
        *out = Json::string(std::move(s));
        return true;
    }

    bool parseArray(Json *out, int depth)
    {
        ++pos_; // '['
        Json arr = Json::array();
        skipWhitespace();
        if (!atEnd() && peek() == ']') {
            ++pos_;
            *out = std::move(arr);
            return true;
        }
        while (true) {
            skipWhitespace();
            Json elem;
            if (!parseValue(&elem, depth + 1))
                return false;
            arr.push(std::move(elem));
            skipWhitespace();
            if (atEnd())
                return fail("unterminated array");
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == ']') {
                ++pos_;
                break;
            }
            return fail("expected ',' or ']' in array");
        }
        *out = std::move(arr);
        return true;
    }

    bool parseObject(Json *out, int depth)
    {
        ++pos_; // '{'
        Json obj = Json::object();
        skipWhitespace();
        if (!atEnd() && peek() == '}') {
            ++pos_;
            *out = std::move(obj);
            return true;
        }
        while (true) {
            skipWhitespace();
            if (atEnd() || peek() != '"')
                return fail("expected string key in object");
            Json key;
            if (!parseString(&key))
                return false;
            if (obj.find(key.asString()) != nullptr)
                return fail("duplicate key \"" + key.asString() +
                            "\" in object");
            skipWhitespace();
            if (atEnd() || peek() != ':')
                return fail("expected ':' after object key");
            ++pos_;
            skipWhitespace();
            Json value;
            if (!parseValue(&value, depth + 1))
                return false;
            obj.set(key.asString(), std::move(value));
            skipWhitespace();
            if (atEnd())
                return fail("unterminated object");
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == '}') {
                ++pos_;
                break;
            }
            return fail("expected ',' or '}' in object");
        }
        *out = std::move(obj);
        return true;
    }

    const std::string &text_;
    std::string *error_;
    std::size_t pos_ = 0;
};

} // namespace

bool
Json::parse(const std::string &text, Json *out, std::string *error)
{
    return JsonParser(text, error).parseDocument(out);
}

} // namespace report
} // namespace m3d
