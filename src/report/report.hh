/**
 * @file
 * Structured metric emission for the benchmark binaries.
 *
 * Every bench registers its result cells as named metrics
 * ("table6/RF/latency_reduction_pct", "fig6/GeoMean/M3D-Het", ...)
 * and can dump them as a versioned JSON document next to its table
 * output (the benches' `--json <file>` flag).  The emission is the
 * machine-checkable half of the golden-number harness: check_golden
 * compares it against a checked-in golden file (report/golden.hh).
 *
 * Emissions are byte-deterministic: metric order is registration
 * order and numbers are written with shortest-round-trip formatting,
 * so two runs that compute identical doubles emit identical bytes -
 * the property the determinism regression test asserts across thread
 * counts and cache temperatures.
 */

#ifndef M3D_REPORT_REPORT_HH_
#define M3D_REPORT_REPORT_HH_

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "report/json.hh"
#include "util/table.hh"

namespace m3d {
namespace report {

/** Schema version stamped into every emission file. */
constexpr int kReportVersion = 1;

/** The "kind" tag of an emission document. */
constexpr const char *kReportKind = "m3d-report";

/** One named scalar result. */
struct Metric
{
    std::string name;
    double value = 0.0;
};

/** Ordered, named metric set of one experiment run. */
class Report
{
  public:
    explicit Report(std::string experiment)
        : experiment_(std::move(experiment)) {}

    const std::string &experiment() const { return experiment_; }

    /**
     * Register one metric.  Panics on a duplicate name or a
     * non-finite value: both mean the bench is broken, and a golden
     * comparison against garbage must not succeed quietly.
     */
    void add(const std::string &name, double value);

    bool has(const std::string &name) const;

    /** Value of a registered metric; panics if absent. */
    double value(const std::string &name) const;

    const std::vector<Metric> &metrics() const { return metrics_; }

    /**
     * Bridge to util/table.hh: a hook that registers
     * "<prefix>/<cell name>" (or just the cell name when prefix is
     * empty) for every metric-bearing cell of a bound Table.
     */
    MetricHook hook(std::string prefix = "");

    Json toJson() const;
    void write(std::ostream &os) const { toJson().write(os); }

    /** @return false with *error set if the file cannot be written. */
    bool save(const std::string &path, std::string *error) const;

    /** @return nullopt with *error set on parse/schema failure. */
    static std::optional<Report> fromJson(const Json &doc,
                                          std::string *error);
    static std::optional<Report> parse(const std::string &text,
                                       std::string *error);
    static std::optional<Report> load(const std::string &path,
                                      std::string *error);

  private:
    std::string experiment_;
    std::vector<Metric> metrics_;
    std::unordered_map<std::string, std::size_t> index_;
};

/**
 * The benches' `--json` exit path: no-op when `json_path` is empty,
 * otherwise save the emission there and exit fatally on I/O failure
 * (a golden run must never silently proceed without its emission).
 */
void emitIfRequested(const Report &report,
                     const std::string &json_path);

} // namespace report
} // namespace m3d

#endif // M3D_REPORT_REPORT_HH_
