/**
 * @file
 * Golden reference files and the tolerance comparison behind
 * `ctest -L golden`.
 *
 * A golden file (goldens/<bench>.json) holds, per metric, the value
 * this reproduction is expected to emit, a per-metric tolerance
 * (absolute or relative), and - for the headline numbers - the value
 * the paper publishes, kept for documentation and printed in diff
 * reports.  check(report, golden) compares an emission against a
 * golden strictly: a drifted value, a metric missing from the
 * emission, or a new metric absent from the golden all fail, so the
 * golden set is an exact contract over what every bench reports.
 */

#ifndef M3D_REPORT_GOLDEN_HH_
#define M3D_REPORT_GOLDEN_HH_

#include <optional>
#include <string>
#include <vector>

#include "report/report.hh"

namespace m3d {
namespace report {

/** Schema version stamped into every golden file. */
constexpr int kGoldenVersion = 1;

/** The "kind" tag of a golden document. */
constexpr const char *kGoldenKind = "m3d-golden";

/** Default relative tolerance used by `check_golden --bless`. */
constexpr double kDefaultRelTol = 1e-6;

/** Per-metric allowed deviation. */
struct Tolerance
{
    enum class Kind { Absolute, Relative };

    Kind kind = Kind::Relative;
    double value = kDefaultRelTol;

    static Tolerance absolute(double v) {
        return {Kind::Absolute, v};
    }
    static Tolerance relative(double v) {
        return {Kind::Relative, v};
    }

    /** "rel 1e-06" / "abs 0.5" for diff reports. */
    std::string describe() const;
};

/**
 * True iff |actual - expect| is within the tolerance.  Non-finite
 * inputs never pass (a NaN comparing false against everything must
 * not slip through as "no detected difference"); a relative
 * tolerance around an exactly-zero expectation only admits an
 * exactly-zero actual.
 */
bool withinTolerance(double actual, double expect,
                     const Tolerance &tol);

/** One expected metric. */
struct GoldenMetric
{
    std::string name;
    double expect = 0.0;
    Tolerance tol;
    /** The paper's published value, where one exists. */
    std::optional<double> paper;
};

/** Expected metric set of one experiment. */
class Golden
{
  public:
    explicit Golden(std::string experiment)
        : experiment_(std::move(experiment)) {}

    const std::string &experiment() const { return experiment_; }

    /** Free-form provenance note: how to regenerate the emission. */
    const std::string &command() const { return command_; }
    void setCommand(std::string command)
    {
        command_ = std::move(command);
    }

    void add(GoldenMetric metric);
    const std::vector<GoldenMetric> &metrics() const
    {
        return metrics_;
    }
    const GoldenMetric *find(const std::string &name) const;

    Json toJson() const;
    void write(std::ostream &os) const { toJson().write(os); }
    bool save(const std::string &path, std::string *error) const;

    static std::optional<Golden> fromJson(const Json &doc,
                                          std::string *error);
    static std::optional<Golden> parse(const std::string &text,
                                       std::string *error);
    static std::optional<Golden> load(const std::string &path,
                                      std::string *error);

    /**
     * Build a golden from an emission.  Metrics present in
     * `previous` keep their hand-tuned tolerance and paper
     * annotation; new metrics get a relative tolerance of
     * `default_rel_tol` (or a small absolute one when the emitted
     * value is exactly zero, where a relative band is empty).
     */
    static Golden bless(const Report &report, const Golden *previous,
                        double default_rel_tol = kDefaultRelTol);

  private:
    std::string experiment_;
    std::string command_;
    std::vector<GoldenMetric> metrics_;
};

// ---------------------------------------------------------------------
// Comparison.
// ---------------------------------------------------------------------

/** Outcome of one metric comparison. */
enum class CheckStatus {
    Pass,       ///< within tolerance
    Mismatch,   ///< outside tolerance
    Missing,    ///< in the golden, absent from the emission
    Unexpected, ///< in the emission, absent from the golden
};

/** One row of a diff report. */
struct MetricCheck
{
    std::string name;
    CheckStatus status = CheckStatus::Pass;
    double expect = 0.0;
    double actual = 0.0;
    Tolerance tol;
    std::optional<double> paper;
};

/** Full comparison outcome. */
struct CheckResult
{
    /** Golden metrics in file order, then unexpected emissions. */
    std::vector<MetricCheck> checks;
    /** Set when report.experiment() != golden.experiment(). */
    bool experiment_mismatch = false;

    std::size_t failures() const;
    bool passed() const
    {
        return !experiment_mismatch && failures() == 0;
    }
};

/** Compare an emission against a golden (see file comment). */
CheckResult check(const Report &report, const Golden &golden);

/**
 * Human-readable pass/fail diff: one row per non-passing metric (or
 * per metric with `verbose`), plus a summary line.
 */
void printCheckReport(std::ostream &os, const CheckResult &result,
                      const Report &report, const Golden &golden,
                      bool verbose = false);

} // namespace report
} // namespace m3d

#endif // M3D_REPORT_GOLDEN_HH_
