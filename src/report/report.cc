#include "report/report.hh"

#include <cmath>
#include <fstream>
#include <sstream>

#include "util/logging.hh"

namespace m3d {
namespace report {

void
Report::add(const std::string &name, double value)
{
    M3D_ASSERT(!name.empty(), "metric name must not be empty");
    if (!std::isfinite(value)) {
        M3D_PANIC("metric '", name, "' of experiment '", experiment_,
                  "' is not finite");
    }
    if (index_.count(name)) {
        M3D_PANIC("metric '", name, "' registered twice in '",
                  experiment_, "'");
    }
    index_.emplace(name, metrics_.size());
    metrics_.push_back({name, value});
}

bool
Report::has(const std::string &name) const
{
    return index_.count(name) != 0;
}

double
Report::value(const std::string &name) const
{
    auto it = index_.find(name);
    if (it == index_.end())
        M3D_PANIC("unknown metric '", name, "'");
    return metrics_[it->second].value;
}

MetricHook
Report::hook(std::string prefix)
{
    return [this, prefix = std::move(prefix)](const std::string &name,
                                              double value) {
        add(prefix.empty() ? name : prefix + "/" + name, value);
    };
}

Json
Report::toJson() const
{
    Json doc = Json::object();
    doc.set("kind", Json::string(kReportKind));
    doc.set("version", Json::number(kReportVersion));
    doc.set("experiment", Json::string(experiment_));
    Json metrics = Json::object();
    for (const Metric &m : metrics_)
        metrics.set(m.name, Json::number(m.value));
    doc.set("metrics", std::move(metrics));
    return doc;
}

bool
Report::save(const std::string &path, std::string *error) const
{
    std::ofstream out(path, std::ios::trunc);
    if (out.is_open())
        write(out);
    if (!out) {
        if (error)
            *error = "cannot write report file '" + path + "'";
        return false;
    }
    return true;
}

std::optional<Report>
Report::fromJson(const Json &doc, std::string *error)
{
    auto reject = [error](const std::string &what) {
        if (error)
            *error = what;
        return std::nullopt;
    };

    if (!doc.isObject())
        return reject("report document is not a JSON object");
    const Json *kind = doc.find("kind");
    if (!kind || !kind->isString() ||
        kind->asString() != kReportKind) {
        return reject("not an m3d-report document (bad \"kind\")");
    }
    const Json *version = doc.find("version");
    if (!version || !version->isNumber())
        return reject("report has no numeric \"version\"");
    if (version->asNumber() != kReportVersion) {
        return reject("unsupported report version " +
                      Json::formatNumber(version->asNumber()) +
                      " (expected " +
                      std::to_string(kReportVersion) + ")");
    }
    const Json *experiment = doc.find("experiment");
    if (!experiment || !experiment->isString())
        return reject("report has no \"experiment\" string");
    const Json *metrics = doc.find("metrics");
    if (!metrics || !metrics->isObject())
        return reject("report has no \"metrics\" object");

    Report r(experiment->asString());
    for (const Json::Member &m : metrics->members()) {
        if (!m.second.isNumber()) {
            return reject("metric \"" + m.first +
                          "\" is not a number");
        }
        r.add(m.first, m.second.asNumber());
    }
    return r;
}

std::optional<Report>
Report::parse(const std::string &text, std::string *error)
{
    Json doc;
    if (!Json::parse(text, &doc, error))
        return std::nullopt;
    return fromJson(doc, error);
}

void
emitIfRequested(const Report &report, const std::string &json_path)
{
    if (json_path.empty())
        return;
    std::string error;
    if (!report.save(json_path, &error))
        M3D_FATAL(error);
}

std::optional<Report>
Report::load(const std::string &path, std::string *error)
{
    std::ifstream in(path);
    if (!in.is_open()) {
        if (error)
            *error = "cannot open report file '" + path + "'";
        return std::nullopt;
    }
    std::ostringstream text;
    text << in.rdbuf();
    return parse(text.str(), error);
}

} // namespace report
} // namespace m3d
