/**
 * @file
 * Minimal JSON value, parser, and writer for the golden-number
 * harness (report/golden files).
 *
 * Scope is deliberately small: the standard JSON grammar with
 * UTF-8 pass-through strings, objects that preserve insertion order
 * (so emissions are byte-stable), and numbers stored as doubles and
 * rendered with shortest-round-trip formatting (std::to_chars), so a
 * value survives write -> parse -> write byte-identically.  Parsing
 * is non-throwing: failures return false with a position-annotated
 * error message, which check_golden surfaces verbatim.
 */

#ifndef M3D_REPORT_JSON_HH_
#define M3D_REPORT_JSON_HH_

#include <cstddef>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace m3d {
namespace report {

/** One JSON value; objects keep member order. */
class Json
{
  public:
    enum class Type { Null, Bool, Number, String, Array, Object };
    using Member = std::pair<std::string, Json>;

    Json() = default;

    static Json boolean(bool v);
    static Json number(double v);
    static Json string(std::string v);
    static Json array();
    static Json object();

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }
    bool isBool() const { return type_ == Type::Bool; }
    bool isNumber() const { return type_ == Type::Number; }
    bool isString() const { return type_ == Type::String; }
    bool isArray() const { return type_ == Type::Array; }
    bool isObject() const { return type_ == Type::Object; }

    // Accessors panic if the type does not match.
    bool asBool() const;
    double asNumber() const;
    const std::string &asString() const;
    const std::vector<Json> &elements() const;
    const std::vector<Member> &members() const;

    /** Object member by key; nullptr if absent or not an object. */
    const Json *find(const std::string &key) const;

    /** Append an object member (does not overwrite duplicates). */
    void set(std::string key, Json value);

    /** Append an array element. */
    void push(Json value);

    /**
     * Render with 2-space indentation and a trailing newline at the
     * top level, deterministically (member order is insertion order,
     * numbers use formatNumber).
     */
    void write(std::ostream &os) const;
    std::string dump() const;

    /**
     * Parse a complete JSON document (trailing garbage is an error).
     * @return false with *error set on malformed input.
     */
    static bool parse(const std::string &text, Json *out,
                      std::string *error);

    /**
     * Shortest decimal string that round-trips the double exactly.
     * Panics on NaN/inf: JSON cannot represent them, and no metric
     * emitted by a healthy model should produce one.
     */
    static std::string formatNumber(double v);

  private:
    void writeIndented(std::ostream &os, int depth) const;

    Type type_ = Type::Null;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    std::vector<Json> elements_;
    std::vector<Member> members_;
};

} // namespace report
} // namespace m3d

#endif // M3D_REPORT_JSON_HH_
