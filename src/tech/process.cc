#include "tech/process.hh"

#include "util/logging.hh"
#include "util/units.hh"

namespace m3d {

using namespace units;

ProcessCorner
ProcessCorner::degraded(double slowdown) const
{
    M3D_ASSERT(slowdown >= 0.0 && slowdown < 1.0,
               "slowdown must be a fraction in [0,1)");
    ProcessCorner out = *this;
    // A uniform R increase degrades every RC product - and hence the
    // FO4 delay - by the same fraction.
    out.r_on = r_on * (1.0 + slowdown);
    out.name = name + "+top" ;
    return out;
}

ProcessCorner
ProcessCorner::widened(double factor) const
{
    M3D_ASSERT(factor >= 1.0, "widening factor must be >= 1");
    ProcessCorner out = *this;
    out.r_on = r_on / factor;
    out.c_gate = c_gate * factor;
    out.c_drain = c_drain * factor;
    out.i_leak = i_leak * factor;
    return out;
}

ProcessCorner
ProcessLibrary::hp22()
{
    ProcessCorner p;
    p.name = "hp22";
    p.device = DeviceType::HpBulk;
    p.feature_size = 22.0 * nm;
    p.vdd = 0.8 * V;      // ITRS nominal at 22nm, per Section 6
    p.r_on = 14.0 * kOhm; // min inverter equivalent resistance
    p.c_gate = 0.09 * fF;
    p.c_drain = 0.06 * fF;
    p.i_leak = 30e-9;     // 30 nA per min inverter
    return p;
}

ProcessCorner
ProcessLibrary::lp22()
{
    ProcessCorner p = hp22();
    p.name = "lp22";
    p.device = DeviceType::LpBulk;
    p.r_on *= 1.35;
    p.i_leak /= 10.0;
    return p;
}

ProcessCorner
ProcessLibrary::fdsoi22()
{
    ProcessCorner p = hp22();
    p.name = "fdsoi22";
    p.device = DeviceType::Fdsoi;
    p.r_on *= 1.25;
    p.c_gate *= 0.9;   // thin-body devices have lower parasitics
    p.c_drain *= 0.8;
    p.i_leak /= 5.0;
    return p;
}

ProcessCorner
ProcessLibrary::forLayer(const ProcessCorner &base, Layer layer,
                         double top_slowdown)
{
    if (layer == Layer::Bottom)
        return base;
    return base.degraded(top_slowdown);
}

} // namespace m3d
