#include "tech/technology.hh"

namespace m3d {

namespace {

Technology
baseTech()
{
    Technology t;
    t.bottom_process = ProcessLibrary::hp22();
    t.top_process = t.bottom_process;
    t.local_wire = WireLibrary::local22();
    t.semi_global_wire = WireLibrary::semiGlobal22();
    t.global_wire = WireLibrary::global22();
    t.via = ViaLibrary::miv();
    return t;
}

} // namespace

Technology
Technology::planar2D()
{
    Technology t = baseTech();
    t.name = "2D";
    t.integration = Integration::Planar2D;
    return t;
}

Technology
Technology::m3dHetero(double slowdown)
{
    Technology t = baseTech();
    t.name = "M3D-hetero";
    t.integration = Integration::M3D;
    t.top_layer_slowdown = slowdown;
    t.top_process = t.bottom_process.degraded(slowdown);
    t.via = ViaLibrary::miv();
    return t;
}

Technology
Technology::m3dIso()
{
    Technology t = m3dHetero(0.0);
    t.name = "M3D-iso";
    return t;
}

Technology
Technology::m3dLpTop()
{
    Technology t = baseTech();
    t.name = "M3D-lp-top";
    t.integration = Integration::M3D;
    // The LP/FDSOI top layer is both the process choice and its own
    // slowdown; no extra low-temperature degradation is layered on,
    // because FDSOI is itself fabricated cold (Section 5).
    t.top_process = ProcessLibrary::fdsoi22();
    t.top_layer_slowdown =
        t.top_process.fo4Delay() / t.bottom_process.fo4Delay() - 1.0;
    t.via = ViaLibrary::miv();
    return t;
}

Technology
Technology::tsv3D()
{
    Technology t = baseTech();
    t.name = "TSV3D";
    t.integration = Integration::Tsv3D;
    // Pre-fabricated dies: both layers are full-performance.
    t.top_layer_slowdown = 0.0;
    t.via = ViaLibrary::tsv1300();
    return t;
}

Technology
Technology::tsv3DResearch()
{
    Technology t = tsv3D();
    t.name = "TSV3D-5um";
    t.via = ViaLibrary::tsv5000();
    return t;
}

} // namespace m3d
