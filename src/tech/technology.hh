/**
 * @file
 * Aggregate technology description handed to every model: which 3D
 * integration style is in use, its via technology, the process corners
 * of each layer, and wire models.
 */

#ifndef M3D_TECH_TECHNOLOGY_HH_
#define M3D_TECH_TECHNOLOGY_HH_

#include <string>

#include "tech/process.hh"
#include "tech/via.hh"
#include "tech/wire.hh"

namespace m3d {

/** Integration styles compared in the paper. */
enum class Integration {
    Planar2D, ///< conventional single-layer die (baseline)
    M3D,      ///< sequential monolithic 3D, two device layers
    Tsv3D,    ///< parallel die stacking with TSVs
};

/**
 * One self-consistent technology point.
 *
 * The defaults match the paper's conservative assumptions: 22nm HP
 * arrays and logic, a 17% top-layer inverter slowdown for M3D, 50nm
 * MIVs, and an aggressive 1.3um TSV for the TSV3D comparison.
 */
struct Technology
{
    std::string name;
    Integration integration = Integration::Planar2D;
    ProcessCorner bottom_process; ///< bottom (or only) device layer
    ProcessCorner top_process;    ///< top device layer (3D only)
    double top_layer_slowdown = 0.0; ///< inverter-delay degradation
    ViaParams via;                ///< inter-layer via (3D only)
    WireParams local_wire;
    WireParams semi_global_wire;
    WireParams global_wire;

    /** Number of device layers (1 or 2). */
    int layers() const { return integration == Integration::Planar2D ?
                         1 : 2; }

    /** Process corner of a given layer. */
    const ProcessCorner &
    process(Layer layer) const
    {
        return layer == Layer::Bottom ? bottom_process : top_process;
    }

    /** Conventional planar 2D at 22nm HP. */
    static Technology planar2D();

    /**
     * M3D with a degraded top layer (hetero-layer).
     * @param slowdown top-layer inverter degradation (0.17 default).
     */
    static Technology m3dHetero(double slowdown=0.17);

    /** Hypothetical M3D with iso-performance layers. */
    static Technology m3dIso();

    /** M3D with an FDSOI low-power top layer (Section 5 / 7.1.2). */
    static Technology m3dLpTop();

    /** TSV3D with the aggressive 1.3um TSV. */
    static Technology tsv3D();

    /** TSV3D with the 5um research TSV. */
    static Technology tsv3DResearch();
};

} // namespace m3d

#endif // M3D_TECH_TECHNOLOGY_HH_
