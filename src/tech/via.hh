/**
 * @file
 * Inter-layer via models: Monolithic Inter-layer Vias (MIVs) and
 * Through-Silicon Vias (TSVs), with the physical and electrical
 * parameters of the paper's Table 2 and the Keep-Out-Zone (KOZ)
 * area accounting behind Table 1.
 */

#ifndef M3D_TECH_VIA_HH_
#define M3D_TECH_VIA_HH_

#include <string>

namespace m3d {

/** The via technologies the paper compares. */
enum class ViaKind {
    Miv,        ///< monolithic inter-layer via, 50nm (CEA-LETI, 15nm node)
    TsvAggressive, ///< 1.3um TSV: half the ITRS-projected 2020 diameter
    TsvResearch,   ///< 5um TSV: most recent research TSV [20]
};

/** Physical + electrical description of one via technology. */
struct ViaParams
{
    std::string name;
    ViaKind kind;
    double diameter;   ///< side (MIV, square) or diameter (TSV) (m)
    double height;     ///< via height (m)
    double capacitance;///< total via capacitance (F)
    double resistance; ///< series resistance (ohm)
    double koz_width;  ///< keep-out-zone ring width around the via (m)

    /** Silicon area consumed, including the KOZ ring (m^2). */
    double areaWithKoz() const;

    /** Silicon area of the bare via (m^2). */
    double areaBare() const;

    /** True for MIVs (no KOZ, lithography-aligned). */
    bool isMiv() const { return kind == ViaKind::Miv; }
};

/** Factory with the paper's Table 2 values. */
class ViaLibrary
{
  public:
    static ViaParams miv();
    static ViaParams tsv1300();
    static ViaParams tsv5000();
    static ViaParams of(ViaKind kind);
};

/**
 * Reference-cell areas used in Table 1 / Figure 2, taken from Intel
 * publications at the 14/15nm node [24, 34].
 */
struct ReferenceCells
{
    /** 32-bit adder area: 77.7 um^2. */
    static double adder32Area();
    /** 32-bit SRAM word (32 6T cells): 2.3 um^2. */
    static double sramWord32Area();
    /** Single 6T SRAM bitcell (~0.072 um^2). */
    static double sramBitcellArea();
    /** FO1 inverter footprint; the Figure 2 unit square. */
    static double inverterFo1Area();
};

} // namespace m3d

#endif // M3D_TECH_VIA_HH_
