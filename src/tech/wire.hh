/**
 * @file
 * On-chip wire models: per-length resistance and capacitance for the
 * three wire classes the paper distinguishes (local, semi-global,
 * global), plus the tungsten bottom-layer interconnect option that M3D
 * manufacturing may force (Section 2.4.2).
 */

#ifndef M3D_TECH_WIRE_HH_
#define M3D_TECH_WIRE_HH_

#include <string>

namespace m3d {

/** Wire classes per Section 3.1. */
enum class WireClass {
    Local,      ///< intra-block, minimum-pitch metal
    SemiGlobal, ///< block-to-block within a stage (bypass, load-to-use)
    Global,     ///< spans a chip region (NoC links, clock spines)
};

/** Interconnect metal. */
enum class WireMetal {
    Copper,
    Tungsten, ///< ~3x the resistivity of copper (Section 2.4.2)
};

/** Distributed-RC description of one wire class. */
struct WireParams
{
    std::string name;
    WireClass wire_class;
    WireMetal metal;
    double r_per_m;  ///< resistance per metre (ohm/m)
    double c_per_m;  ///< capacitance per metre (F/m)
    double pitch;    ///< wire pitch (m); sets MIV diameter for local metal

    /** Elmore delay of an unrepeated wire of length `len` (s). */
    double
    unrepeatedDelay(double len) const
    {
        return 0.38 * r_per_m * c_per_m * len * len;
    }

    /** Total capacitance of a wire of length `len` (F). */
    double capOf(double len) const { return c_per_m * len; }

    /** Total resistance of a wire of length `len` (ohm). */
    double resOf(double len) const { return r_per_m * len; }

    /** Return the same geometry in a different metal. */
    WireParams inMetal(WireMetal m) const;
};

/** Factory for 22nm wire classes. */
class WireLibrary
{
  public:
    static WireParams local22();
    static WireParams semiGlobal22();
    static WireParams global22();
    static WireParams of(WireClass wc);
};

} // namespace m3d

#endif // M3D_TECH_WIRE_HH_
