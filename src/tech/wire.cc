#include "tech/wire.hh"

#include "util/logging.hh"
#include "util/units.hh"

namespace m3d {

using namespace units;

WireParams
WireParams::inMetal(WireMetal m) const
{
    WireParams out = *this;
    if (m == metal)
        return out;
    // Bulk resistivity ratio W:Cu is about 3:1 at these dimensions.
    const double tungsten_penalty = 3.0;
    if (m == WireMetal::Tungsten) {
        out.r_per_m = r_per_m * tungsten_penalty;
        out.name = name + "-W";
    } else {
        out.r_per_m = r_per_m / tungsten_penalty;
        out.name = name + "-Cu";
    }
    out.metal = m;
    return out;
}

WireParams
WireLibrary::local22()
{
    WireParams w;
    w.name = "local22";
    w.wire_class = WireClass::Local;
    w.metal = WireMetal::Copper;
    // Minimum-pitch M1/M2 at 22nm: narrow, thin, resistive.
    w.r_per_m = 25.0 * Ohm / um;
    w.c_per_m = 0.30 * fF / um;
    w.pitch = 80.0 * nm;
    return w;
}

WireParams
WireLibrary::semiGlobal22()
{
    WireParams w;
    w.name = "semiglobal22";
    w.wire_class = WireClass::SemiGlobal;
    w.metal = WireMetal::Copper;
    w.r_per_m = 3.0 * Ohm / um;
    w.c_per_m = 0.35 * fF / um;
    w.pitch = 160.0 * nm;
    return w;
}

WireParams
WireLibrary::global22()
{
    WireParams w;
    w.name = "global22";
    w.wire_class = WireClass::Global;
    w.metal = WireMetal::Copper;
    w.r_per_m = 0.25 * Ohm / um;
    w.c_per_m = 0.28 * fF / um;
    w.pitch = 400.0 * nm;
    return w;
}

WireParams
WireLibrary::of(WireClass wc)
{
    switch (wc) {
      case WireClass::Local: return local22();
      case WireClass::SemiGlobal: return semiGlobal22();
      case WireClass::Global: return global22();
    }
    M3D_PANIC("unknown wire class");
}

} // namespace m3d
