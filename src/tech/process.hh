/**
 * @file
 * Transistor/process models.
 *
 * The paper evaluates arrays with CACTI's 22nm high-performance (HP)
 * process and logic with McPAT's HP-CMOS process.  We model a process
 * corner as the small set of electrical parameters the delay/energy
 * models need: equivalent drive resistance of a minimum inverter, gate
 * and drain capacitance, leakage current, and nominal Vdd.
 *
 * M3D's defining constraint is captured by Layer::Top: the sequentially
 * fabricated top layer is processed at low temperature and its devices
 * are slower (Shi et al. [45] report a 17% slower inverter).
 */

#ifndef M3D_TECH_PROCESS_HH_
#define M3D_TECH_PROCESS_HH_

#include <string>

namespace m3d {

/** Which M3D layer a device lives in. */
enum class Layer { Bottom, Top };

/** Device families the paper discusses. */
enum class DeviceType {
    HpBulk,   ///< high-performance bulk CMOS (bottom layer default)
    LpBulk,   ///< low-power bulk CMOS
    Fdsoi,    ///< low-power FDSOI (candidate top-layer process, Section 5)
};

/** Electrical parameters of a minimum-sized inverter in a process. */
struct ProcessCorner
{
    std::string name;       ///< human-readable identifier
    DeviceType device;      ///< device family
    double feature_size;    ///< drawn feature size (m)
    double vdd;             ///< nominal supply (V)
    /**
     * Equivalent switching resistance of a minimum inverter (ohm).
     * Wider drivers scale this down linearly.
     */
    double r_on;
    double c_gate;          ///< input (gate) capacitance of min inverter (F)
    double c_drain;         ///< parasitic drain capacitance (F)
    double i_leak;          ///< leakage current of a min inverter (A)

    /** Intrinsic (parasitic-only) delay of a min inverter: 0.69*R*Cd. */
    double intrinsicDelay() const { return 0.69 * r_on * c_drain; }

    /** FO4 delay of this corner; the canonical logic speed metric. */
    double fo4Delay() const
    {
        return 0.69 * r_on * (4.0 * c_gate + c_drain);
    }

    /** Dynamic energy of one min-inverter output transition (J). */
    double switchEnergy() const
    {
        return 0.5 * (c_gate + c_drain) * vdd * vdd;
    }

    /**
     * Return this corner slowed down for the M3D top layer.
     *
     * @param slowdown Fractional inverter-delay degradation, e.g. 0.17
     *                 per Shi et al.; resistance is scaled so that the
     *                 FO4 delay degrades by exactly this fraction.
     */
    ProcessCorner degraded(double slowdown) const;

    /**
     * Return this corner with all transistor widths scaled by `factor`
     * (resistance down, capacitances and leakage up).  Used for the
     * hetero-layer technique of doubling top-layer access transistors.
     */
    ProcessCorner widened(double factor) const;
};

/** Factory for the process corners used throughout the paper. */
class ProcessLibrary
{
  public:
    /** CACTI-style 22nm HP bulk (arrays and logic baseline). */
    static ProcessCorner hp22();

    /** 22nm LP bulk: ~35% slower, ~10x lower leakage. */
    static ProcessCorner lp22();

    /** 22nm FDSOI: ~25% slower than HP, ~5x lower leakage. */
    static ProcessCorner fdsoi22();

    /** Corner for a layer: bottom = base; top = degraded(slowdown). */
    static ProcessCorner forLayer(const ProcessCorner &base, Layer layer,
                                  double top_slowdown);
};

} // namespace m3d

#endif // M3D_TECH_PROCESS_HH_
