#include "tech/via.hh"

#include "util/logging.hh"
#include "util/units.hh"

namespace m3d {

using namespace units;

double
ViaParams::areaBare() const
{
    if (kind == ViaKind::Miv) {
        // MIVs are drawn square at the M1 pitch (Section 2.1.1).
        return diameter * diameter;
    }
    // TSVs are circular.
    const double r = diameter / 2.0;
    return 3.141592653589793 * r * r;
}

double
ViaParams::areaWithKoz() const
{
    if (koz_width == 0.0)
        return areaBare();
    const double d = diameter + 2.0 * koz_width;
    const double r = d / 2.0;
    return 3.141592653589793 * r * r;
}

ViaParams
ViaLibrary::miv()
{
    ViaParams v;
    v.name = "MIV(50nm)";
    v.kind = ViaKind::Miv;
    v.diameter = 50.0 * nm;
    v.height = 310.0 * nm;
    v.capacitance = 0.1 * fF;
    v.resistance = 5.5 * Ohm;
    v.koz_width = 0.0; // no KOZ needed (Section 2.1.1)
    return v;
}

ViaParams
ViaLibrary::tsv1300()
{
    ViaParams v;
    v.name = "TSV(1.3um)";
    v.kind = ViaKind::TsvAggressive;
    v.diameter = 1.3 * um;
    v.height = 13.0 * um;
    v.capacitance = 2.5 * fF;
    v.resistance = 100.0 * mOhm;
    // KOZ chosen so via+KOZ is ~6.25 um^2 as quoted in Section 2.3.1
    // (8.0% of the 77.7 um^2 32-bit adder in Table 1).
    v.koz_width = 0.76 * um;
    return v;
}

ViaParams
ViaLibrary::tsv5000()
{
    ViaParams v;
    v.name = "TSV(5um)";
    v.kind = ViaKind::TsvResearch;
    v.diameter = 5.0 * um;
    v.height = 25.0 * um;
    v.capacitance = 37.0 * fF;
    v.resistance = 20.0 * mOhm;
    // Via+KOZ is ~100 um^2 (128.7% of the adder in Table 1).
    v.koz_width = 3.14 * um;
    return v;
}

ViaParams
ViaLibrary::of(ViaKind kind)
{
    switch (kind) {
      case ViaKind::Miv: return miv();
      case ViaKind::TsvAggressive: return tsv1300();
      case ViaKind::TsvResearch: return tsv5000();
    }
    M3D_PANIC("unknown via kind");
}

double
ReferenceCells::adder32Area()
{
    return 77.7 * um2;
}

double
ReferenceCells::sramWord32Area()
{
    return 2.3 * um2;
}

double
ReferenceCells::sramBitcellArea()
{
    return sramWord32Area() / 32.0;
}

double
ReferenceCells::inverterFo1Area()
{
    // Figure 2 normalizes to an FO1 inverter; an MIV is 0.07x of it and
    // a bitcell 2x, which pins the inverter at ~0.036 um^2.
    return 0.036 * um2;
}

} // namespace m3d
