#include "arch/batch_replay.hh"

#include <algorithm>

#include "arch/replay_mem.hh"
#include "util/logging.hh"
#include "util/simd.hh"

#if defined(__x86_64__) && defined(__GNUC__)
#define M3D_HAVE_AVX2_KERNEL 1
#define M3D_TARGET_AVX2 __attribute__((target("avx2")))
#define M3D_TARGET_AVX512 \
    __attribute__((target("avx512f,avx512vl,avx512dq,avx512bw")))
#include <immintrin.h>
#else
#define M3D_HAVE_AVX2_KERNEL 0
#endif

namespace m3d {

namespace {

/**
 * Stream-dependent facts of one op, decoded once per (op, block):
 * identical for every design lane, so all branches on them are
 * uniform - the batched loop's perfectly predicted shared work.
 */
struct SharedOp
{
    OpClass op;
    std::size_t op_index; ///< numeric OpClass, for latency tables
    std::uint32_t src1;
    std::uint32_t src2;
    unsigned data_level;  ///< MemLevelTable code of the data access
    unsigned fetch_level; ///< MemLevelTable code of the fetch access
    bool is_load;
    bool is_store;
    bool is_branch;
    bool complex_decode;
    bool mispredict;      ///< pre-resolved, only set for branches
    bool fetch_boundary;  ///< op starts a fetch block
    bool fetch_miss;      ///< fetch boundary served beyond the L1I
    bool dep1;            ///< src1 names a still-windowed producer
    bool dep2;
    std::size_t dep1_row; ///< history row (already scaled by width)
    std::size_t dep2_row;
    std::size_t hist_row; ///< this op's history row (scaled)
    int fu;               ///< FU class
    int fu_units;         ///< pool size of that class
    std::uint64_t occupancy;
    std::uint64_t base_latency; ///< Table 9 latency (non-load)
};

inline SharedOp
decodeShared(const TraceBuffer::Chunk &ch, const std::uint8_t *mem_col,
             std::uint32_t o, std::uint64_t i, int w)
{
    SharedOp s;
    s.op_index = static_cast<std::size_t>(ch.op[o]);
    s.op = static_cast<OpClass>(ch.op[o]);
    s.src1 = ch.src1[o];
    s.src2 = ch.src2[o];
    const std::uint8_t flags = ch.flags[o];
    const std::uint8_t mem = mem_col[o];
    s.data_level = mem & MemLevelTable::kLevelMask;
    s.fetch_level =
        (mem >> MemLevelTable::kFetchShift) & MemLevelTable::kLevelMask;
    s.is_load = s.op == OpClass::Load;
    s.is_store = s.op == OpClass::Store;
    s.is_branch = s.op == OpClass::Branch;
    s.complex_decode = (flags & TraceBuffer::kFlagComplex) != 0;
    s.mispredict = s.is_branch &&
        (flags & TraceBuffer::kFlagMispredict) != 0;
    s.fetch_boundary = i % CoreModel::kFetchBlock == 0;
    s.fetch_miss =
        s.fetch_boundary && s.fetch_level != MemLevelTable::kL1;
    s.dep1 = s.src1 != 0 && s.src1 <= i;
    s.dep2 = s.src2 != 0 && s.src2 <= i;
    const auto uw = static_cast<std::size_t>(w);
    s.dep1_row = s.dep1
        ? static_cast<std::size_t>((i - s.src1) & timing::kHistMask) * uw
        : 0;
    s.dep2_row = s.dep2
        ? static_cast<std::size_t>((i - s.src2) & timing::kHistMask) * uw
        : 0;
    s.hist_row = static_cast<std::size_t>(i & timing::kHistMask) * uw;
    s.fu = timing::fuIndex(s.op);
    s.fu_units = timing::kFuCount[s.fu];
    s.occupancy =
        s.op == OpClass::FpDiv ? timing::kFpDivLatency : 1;
    s.base_latency = timing::kBaseExecLatency[s.op_index];
    return s;
}

/** Uniform per-op event counters of one run window (identical for
 * every lane; folded into each lane's Activity at the end). */
struct WindowShared
{
    std::uint64_t fetch_blocks = 0;
    std::uint64_t stall_icache = 0;
    std::uint64_t complex_decodes = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t alu_ops = 0;
    std::uint64_t mul_div_ops = 0;
    std::uint64_t fp_ops = 0;
    std::uint64_t branches = 0;
    std::uint64_t mispredicts = 0;
    std::uint64_t l2_accesses = 0;
    std::uint64_t l3_accesses = 0;
    std::uint64_t dram_accesses = 0;
};

/** The uniform accounting of one op (mirrors runImpl's counter
 * increments exactly; order within an op is irrelevant - they sum). */
inline void
countShared(WindowShared &ws, const SharedOp &s)
{
    if (s.fetch_boundary) {
        ++ws.fetch_blocks;
        if (s.fetch_level != MemLevelTable::kL1) {
            ++ws.stall_icache;
            if (s.fetch_level == MemLevelTable::kDram)
                ++ws.dram_accesses;
        }
    }
    if (s.complex_decode)
        ++ws.complex_decodes;
    switch (s.op) {
      case OpClass::Load:
        ++ws.loads;
        if (s.data_level == MemLevelTable::kDram)
            ++ws.dram_accesses;
        if (s.data_level != MemLevelTable::kL1) {
            ++ws.l2_accesses;
            if (s.data_level >= MemLevelTable::kL3)
                ++ws.l3_accesses;
        }
        break;
      case OpClass::Store:
        ++ws.stores;
        if (s.data_level != MemLevelTable::kL1) {
            ++ws.l2_accesses;
            if (s.data_level == MemLevelTable::kDram)
                ++ws.dram_accesses;
        }
        break;
      case OpClass::IntAlu:
      case OpClass::Branch:
        ++ws.alu_ops;
        break;
      case OpClass::IntMult:
      case OpClass::IntDiv:
        ++ws.mul_div_ops;
        break;
      default:
        ++ws.fp_ops;
        break;
    }
    if (s.is_branch) {
        ++ws.branches;
        if (s.mispredict)
            ++ws.mispredicts;
    }
}

#if M3D_HAVE_AVX2_KERNEL

/** max over 64-bit lanes; all model quantities are < 2^63, so the
 * signed compare is exact. */
M3D_TARGET_AVX2 inline __m256i
max64(__m256i a, __m256i b)
{
    return _mm256_blendv_epi8(a, b, _mm256_cmpgt_epi64(b, a));
}

M3D_TARGET_AVX2 inline __m256i
loadVec(const std::uint64_t *p)
{
    return _mm256_loadu_si256(reinterpret_cast<const __m256i *>(p));
}

M3D_TARGET_AVX2 inline void
storeVec(std::uint64_t *p, __m256i v)
{
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(p), v);
}

// 512-bit forms of the same helpers for the 8-lane path.

M3D_TARGET_AVX512 inline __m512i
load512(const std::uint64_t *p)
{
    return _mm512_loadu_si512(p);
}

M3D_TARGET_AVX512 inline void
store512(std::uint64_t *p, __m512i v)
{
    _mm512_storeu_si512(p, v);
}

#endif // M3D_HAVE_AVX2_KERNEL

} // namespace

/**
 * One SIMD block: up to kLaneWidth design lanes over the shared
 * stream.  All per-lane state is interleaved with stride `width()`
 * (row-major [slot][lane]), so the vector path loads a row of lanes
 * with one 32-byte access and the scalar path walks the identical
 * storage - the two paths are different schedules of the same
 * integer recurrence, hence bit-identical.
 */
class BatchReplay::Block
{
  public:
    /** Lane execution path of one block. */
    enum class Kind { Scalar, Avx2, Avx512 };

    Block(const CoreDesign *designs, int w, Kind kind);

    int width() const { return w_; }
    bool vectorized() const { return kind_ != Kind::Scalar; }

    /**
     * Run ops [pos, pos + n) of the stream on every lane.  `ws` is
     * the window's uniform per-op accounting: it depends only on the
     * stream, never on a design, so consecutive blocks of one
     * BatchReplay replay share it - the first block over a window
     * counts (`count` true) and later blocks just fold the counts
     * the first one left in `ws`.
     */
    void run(const TraceBuffer &buf, const MemLevelTable &mem,
             std::uint64_t pos, std::uint64_t n, SimResult *out,
             WindowShared &ws, bool count);

  private:
    void runScalar(const TraceBuffer &buf, const MemLevelTable &mem,
                   std::uint64_t pos, std::uint64_t n,
                   WindowShared &ws, bool count);
#if M3D_HAVE_AVX2_KERNEL
    M3D_TARGET_AVX2
    void runAvx2(const TraceBuffer &buf, const MemLevelTable &mem,
                 std::uint64_t pos, std::uint64_t n, WindowShared &ws,
                 bool count);
    M3D_TARGET_AVX512
    void runAvx512(const TraceBuffer &buf, const MemLevelTable &mem,
                   std::uint64_t pos, std::uint64_t n,
                   WindowShared &ws, bool count);
#endif

    /** The issue-slot claim: identical to CoreModel::reserveIssue's
     * window walk (same packing, same eviction assert).  Slots live
     * in the shared interleaved [row][lane] array so the AVX-512
     * path can claim all lanes' common case with one gather/scatter
     * pair; this walk is the ragged/scalar path and the fallback for
     * lanes whose row is full (or about to trip the eviction
     * assert). */
    std::uint64_t
    claimSlot(int l, std::uint64_t issue, std::uint64_t min_live)
    {
        const auto uw = static_cast<std::size_t>(w_);
        std::uint64_t *const slots =
            slots_.data() + static_cast<std::size_t>(l);
        const std::uint64_t mask = slot_mask_[static_cast<std::size_t>(l)];
        const std::uint64_t iw = iw_[static_cast<std::size_t>(l)];
        while (true) {
            std::uint64_t &slot =
                slots[static_cast<std::size_t>(issue & mask) * uw];
            std::uint64_t word = slot;
            if ((word >> timing::kIssueCountBits) != issue) {
                M3D_ASSERT(word == timing::kFreeSlot ||
                               (word >> timing::kIssueCountBits) <
                                   min_live,
                           "issue window too small: evicting live "
                           "cycle");
                word = issue << timing::kIssueCountBits;
            }
            if ((word & ((1ull << timing::kIssueCountBits) - 1)) < iw) {
                slot = word + 1;
                return issue;
            }
            ++issue;
        }
    }

    int w_;
    Kind kind_;

    // Per-lane design parameters (index [lane], or [slot * w_ + lane]
    // for the per-level charge tables).
    std::vector<std::uint64_t> rob_, iq_, dispatch_, cw_, lq_, sq_, iw_;
    std::vector<std::uint64_t> complex_extra_, penalty_, load_lat_;
    std::vector<std::uint64_t> data_extra_, fetch_extra_; // [4][w]
    std::vector<double> frequency_;

    // Per-lane persistent state ([lane] scalars, [row][lane] rings).
    std::vector<std::uint64_t> frontier_, in_cycle_, last_commit_,
        dram_free_;
    std::vector<std::uint64_t> complete_hist_; // [kHistSize][w]
    /**
     * Future-row occupancy rings, the gather-free replacement for the
     * old per-lane-offset history reads.  Op i's ROB constraint is
     * the commit of op i - rob_l, an offset that differs per lane -
     * reading it from a shared [row][lane] history needed one masked
     * gather per queue per op.  Flipping the offset to the WRITE side
     * removes them: at op i, lane l stores its commit at ring row
     * (i + rob_l) & mask, so the value op i must read always sits at
     * the shared row i & mask - one contiguous vector load.  The
     * rows are zero-initialized and the constraint compare is strict
     * (t > d), so rows no lane has written yet read 0 = "no
     * constraint", exactly the old i >= rob_l guard.  The lq/sq
     * rings are keyed on the shared load/store sequence numbers the
     * same way, which also deletes the per-lane head counters.
     * Ring depth is nextPow2(max lag in the block), making the
     * most-recent write to row i & mask before op i precisely op
     * i - lag_l (a write at op i itself lands after the read).
     */
    std::vector<std::uint64_t> rob_ring_, iq_ring_, lq_ring_,
        sq_ring_;                          // [ring rows][w]
    std::uint64_t rob_ring_mask_ = 0, iq_ring_mask_ = 0,
        lq_ring_mask_ = 0, sq_ring_mask_ = 0;
    /**
     * Trailing run length of equal commit cycles per lane - the
     * gather-free commit-width constraint.  Commits are monotone
     * non-decreasing, so commit_hist[i - cw_l] equals the current
     * last_commit iff the trailing equal-commit run reaches back at
     * least cw_l entries; the old gathered compare
     * commit_hist[i-cw]+1 > commit reduces to
     * (commit == last_commit && streak >= cw).
     */
    std::vector<std::uint64_t> streak_;
    std::vector<std::uint64_t> fu_free_; // [kFuClasses*kMaxFu][w]
    /**
     * Issue-window slots, interleaved [row][lane] like every other
     * per-lane array.  Window sizes (and so the row masks) are
     * per-lane; a lane with a smaller window simply never touches
     * the rows above its mask.  Lane columns never alias, so the
     * vector fast path's masked scatter and the scalar walk are
     * claims on disjoint memory.
     */
    std::vector<std::uint64_t> slots_;
    std::vector<std::uint64_t> slot_mask_;
    std::uint64_t load_seq_ = 0;
    std::uint64_t store_seq_ = 0;

    std::vector<Activity> activity_;

    // Per-window lane-dependent counters (zeroed each run window).
    std::vector<std::uint64_t> win_stall_rob_, win_stall_iq_,
        win_stall_lsq_, win_bound_fu_, win_bound_deps_;
};

BatchReplay::Block::Block(const CoreDesign *designs, int w,
                          Kind kind)
    : w_(w), kind_(kind)
{
    const auto uw = static_cast<std::size_t>(w);
    rob_.resize(uw);
    iq_.resize(uw);
    dispatch_.resize(uw);
    cw_.resize(uw);
    lq_.resize(uw);
    sq_.resize(uw);
    iw_.resize(uw);
    complex_extra_.resize(uw);
    penalty_.resize(uw);
    load_lat_.resize(uw);
    data_extra_.assign(4 * uw, 0);
    fetch_extra_.assign(4 * uw, 0);
    frequency_.resize(uw);

    std::uint64_t max_rob = 0, max_iq = 0, max_lq = 0, max_sq = 0;
    for (int l = 0; l < w; ++l) {
        const CoreDesign &d = designs[l];
        const auto ul = static_cast<std::size_t>(l);
        M3D_ASSERT(d.issue_width < (1 << timing::kIssueCountBits),
                   "issue width overflows the packed slot count "
                   "field");
        // The solo CoreModel reads its queue history through
        // kHistSize rows; the rings reproduce its results only for
        // lags that fit the same reach.
        M3D_ASSERT(static_cast<std::uint64_t>(d.rob_entries) <=
                       timing::kHistSize &&
                   static_cast<std::uint64_t>(d.iq_entries) <=
                       timing::kHistSize,
                   "queue depth exceeds the history reach");
        rob_[ul] = static_cast<std::uint64_t>(d.rob_entries);
        iq_[ul] = static_cast<std::uint64_t>(d.iq_entries);
        dispatch_[ul] = static_cast<std::uint64_t>(d.dispatch_width);
        cw_[ul] = static_cast<std::uint64_t>(d.commit_width);
        lq_[ul] = static_cast<std::uint64_t>(d.lq_entries);
        sq_[ul] = static_cast<std::uint64_t>(d.sq_entries);
        iw_[ul] = static_cast<std::uint64_t>(d.issue_width);
        complex_extra_[ul] =
            static_cast<std::uint64_t>(d.complex_decode_extra);
        penalty_[ul] =
            static_cast<std::uint64_t>(d.mispredict_penalty);
        load_lat_[ul] = static_cast<std::uint64_t>(d.load_to_use);
        frequency_[ul] = d.frequency;
        max_rob = std::max(max_rob, rob_[ul]);
        max_iq = std::max(max_iq, iq_[ul]);
        max_lq = std::max(max_lq, lq_[ul]);
        max_sq = std::max(max_sq, sq_[ul]);

        // The same single-core replay hierarchy runSingleCore's
        // replay path derives: l1_rt is the design's load-to-use
        // path, DRAM cycles follow its frequency.  The charge-table
        // int arithmetic and the cast mirror runImpl exactly (the
        // u64 conversion wraps identically at the charge site).
        HierarchyTiming t;
        t.l1_rt = d.load_to_use;
        t.frequency = d.frequency;
        data_extra_[MemLevelTable::kL2 * uw + ul] =
            static_cast<std::uint64_t>(t.l2_rt - t.l1_rt);
        data_extra_[MemLevelTable::kL3 * uw + ul] =
            static_cast<std::uint64_t>(t.l3_rt - t.l1_rt);
        data_extra_[MemLevelTable::kDram * uw + ul] =
            static_cast<std::uint64_t>(t.l3_rt - t.l1_rt +
                                       t.dramCycles());
        fetch_extra_[MemLevelTable::kL2 * uw + ul] =
            static_cast<std::uint64_t>(t.l2_rt);
        fetch_extra_[MemLevelTable::kL3 * uw + ul] =
            static_cast<std::uint64_t>(t.l3_rt);
        fetch_extra_[MemLevelTable::kDram * uw + ul] =
            static_cast<std::uint64_t>(t.l3_rt + t.dramCycles());
    }

    frontier_.assign(uw, 0);
    in_cycle_.assign(uw, 0);
    last_commit_.assign(uw, 0);
    dram_free_.assign(uw, 0);
    complete_hist_.assign(timing::kHistSize * uw, 0);
    rob_ring_mask_ = timing::nextPow2(max_rob) - 1;
    iq_ring_mask_ = timing::nextPow2(max_iq) - 1;
    lq_ring_mask_ = timing::nextPow2(max_lq) - 1;
    sq_ring_mask_ = timing::nextPow2(max_sq) - 1;
    rob_ring_.assign((rob_ring_mask_ + 1) * uw, 0);
    iq_ring_.assign((iq_ring_mask_ + 1) * uw, 0);
    lq_ring_.assign((lq_ring_mask_ + 1) * uw, 0);
    sq_ring_.assign((sq_ring_mask_ + 1) * uw, 0);
    streak_.assign(uw, 0);

    fu_free_.assign(static_cast<std::size_t>(timing::kFuClasses) *
                        timing::kMaxFuPerClass * uw,
                    timing::kFreeSlot);
    for (int c = 0; c < timing::kFuClasses; ++c) {
        for (int u = 0; u < timing::kFuCount[c]; ++u) {
            for (int l = 0; l < w; ++l) {
                fu_free_[static_cast<std::size_t>(
                             c * timing::kMaxFuPerClass + u) * uw +
                         static_cast<std::size_t>(l)] = 0;
            }
        }
    }

    slot_mask_.resize(uw);
    std::uint64_t max_window = 0;
    for (std::size_t l = 0; l < uw; ++l) {
        const std::uint64_t window =
            timing::nextPow2(rob_[l] + timing::kIssueWindowSlack);
        slot_mask_[l] = window - 1;
        max_window = std::max(max_window, window);
    }
    slots_.assign(static_cast<std::size_t>(max_window) * uw,
                  timing::kFreeSlot);

    activity_.resize(uw);
    win_stall_rob_.resize(uw);
    win_stall_iq_.resize(uw);
    win_stall_lsq_.resize(uw);
    win_bound_fu_.resize(uw);
    win_bound_deps_.resize(uw);
}

void
BatchReplay::Block::runScalar(const TraceBuffer &buf,
                              const MemLevelTable &mem,
                              std::uint64_t pos, std::uint64_t n,
                              WindowShared &ws, bool count)
{
    const int w = w_;
    const auto uw = static_cast<std::size_t>(w);
    const std::uint64_t *const rob = rob_.data();
    const std::uint64_t *const iq = iq_.data();
    const std::uint64_t *const dispatch = dispatch_.data();
    const std::uint64_t *const cw = cw_.data();
    const std::uint64_t *const lq = lq_.data();
    const std::uint64_t *const sq = sq_.data();
    const std::uint64_t *const complex_extra = complex_extra_.data();
    const std::uint64_t *const penalty = penalty_.data();
    const std::uint64_t *const load_lat = load_lat_.data();
    const std::uint64_t *const data_extra = data_extra_.data();
    const std::uint64_t *const fetch_extra = fetch_extra_.data();
    std::uint64_t *const frontier = frontier_.data();
    std::uint64_t *const in_cycle = in_cycle_.data();
    std::uint64_t *const last_commit = last_commit_.data();
    std::uint64_t *const dram_free = dram_free_.data();
    std::uint64_t *const complete_hist = complete_hist_.data();
    std::uint64_t *const rob_ring = rob_ring_.data();
    std::uint64_t *const iq_ring = iq_ring_.data();
    std::uint64_t *const lq_ring = lq_ring_.data();
    std::uint64_t *const sq_ring = sq_ring_.data();
    const std::uint64_t rob_mask = rob_ring_mask_;
    const std::uint64_t iq_mask = iq_ring_mask_;
    const std::uint64_t lq_mask = lq_ring_mask_;
    const std::uint64_t sq_mask = sq_ring_mask_;
    std::uint64_t *const streak = streak_.data();
    std::uint64_t *const fu = fu_free_.data();
    std::uint64_t *const stall_rob = win_stall_rob_.data();
    std::uint64_t *const stall_iq = win_stall_iq_.data();
    std::uint64_t *const stall_lsq = win_stall_lsq_.data();
    std::uint64_t *const bound_fu = win_bound_fu_.data();
    std::uint64_t *const bound_deps = win_bound_deps_.data();
    std::uint64_t load_seq = load_seq_;
    std::uint64_t store_seq = store_seq_;

    std::uint64_t i = pos;
    for (const TraceBuffer::ChunkView v : buf.range(pos, n)) {
        const TraceBuffer::Chunk &ch = *v.chunk;
        const std::uint8_t *mem_col = mem.chunk(v.index());
        for (std::uint32_t o = v.begin; o < v.end; ++o, ++i) {
            const SharedOp s = decodeShared(ch, mem_col, o, i, w);
            std::uint64_t *const units =
                fu + static_cast<std::size_t>(
                         s.fu * timing::kMaxFuPerClass) * uw;

            for (int l = 0; l < w; ++l) {
                const auto ul = static_cast<std::size_t>(l);
                // --- Fetch/dispatch time under bandwidth +
                // occupancy limits; attribute the dominant
                // constraint (strict raises, like runImpl).  The
                // ring rows read 0 until the charging op exists, so
                // the old i >= depth / seq >= depth guards are
                // subsumed by the strict compare.
                std::uint64_t d = frontier[ul];
                int cause = 0;
                {
                    const std::uint64_t t =
                        rob_ring[(i & rob_mask) * uw + ul];
                    if (t > d) {
                        d = t;
                        cause = 1;
                    }
                }
                {
                    const std::uint64_t t =
                        iq_ring[(i & iq_mask) * uw + ul];
                    if (t > d) {
                        d = t;
                        cause = 2;
                    }
                }
                if (s.is_load) {
                    const std::uint64_t t =
                        lq_ring[(load_seq & lq_mask) * uw + ul];
                    if (t > d) {
                        d = t;
                        cause = 3;
                    }
                }
                if (s.is_store) {
                    const std::uint64_t t =
                        sq_ring[(store_seq & sq_mask) * uw + ul];
                    if (t > d) {
                        d = t;
                        cause = 3;
                    }
                }
                if (cause == 1)
                    ++stall_rob[ul];
                else if (cause == 2)
                    ++stall_iq[ul];
                else if (cause == 3)
                    ++stall_lsq[ul];

                if (s.fetch_miss)
                    d += fetch_extra[s.fetch_level * uw + ul];

                // --- Advance the fetch frontier.
                if (d > frontier[ul]) {
                    frontier[ul] = d;
                    in_cycle[ul] = 1;
                } else if (++in_cycle[ul] >= dispatch[ul]) {
                    ++frontier[ul];
                    in_cycle[ul] = 0;
                }

                if (s.complex_decode)
                    d += complex_extra[ul];

                // --- Operand readiness (shared history rows).
                std::uint64_t ready = d + timing::kDispatchDepth;
                if (s.dep1)
                    ready = std::max(ready,
                                     complete_hist[s.dep1_row + ul]);
                if (s.dep2)
                    ready = std::max(ready,
                                     complete_hist[s.dep2_row + ul]);

                // --- Issue: earliest free unit (first-min), then
                // the issue-slot claim.
                std::size_t pick = 0;
                std::uint64_t best = units[ul];
                for (int u = 1; u < s.fu_units; ++u) {
                    const std::uint64_t t =
                        units[static_cast<std::size_t>(u) * uw + ul];
                    if (t < best) {
                        best = t;
                        pick = static_cast<std::size_t>(u);
                    }
                }
                std::uint64_t issue = std::max(ready, best);
                issue = claimSlot(l, issue,
                                  frontier[ul] +
                                      timing::kDispatchDepth);
                units[pick * uw + ul] = issue + s.occupancy;
                if (issue > ready)
                    ++bound_fu[ul];
                else if (ready > d + timing::kDispatchDepth)
                    ++bound_deps[ul];

                // --- Execute: per-design load-to-use and the
                // pre-resolved level charges.
                std::uint64_t lat =
                    s.is_load ? load_lat[ul] : s.base_latency;
                if (s.is_load) {
                    if (s.data_level == MemLevelTable::kDram) {
                        const std::uint64_t start =
                            std::max(issue, dram_free[ul]);
                        lat += start - issue;
                        dram_free[ul] =
                            start + timing::kDramGapCycles;
                    }
                    if (s.data_level != MemLevelTable::kL1)
                        lat += data_extra[s.data_level * uw + ul];
                }
                const std::uint64_t complete = issue + lat;

                // --- Branch resolution (pre-resolved outcome).
                if (s.mispredict) {
                    const std::uint64_t redirect =
                        complete + penalty[ul];
                    if (redirect > frontier[ul]) {
                        frontier[ul] = redirect;
                        in_cycle[ul] = 0;
                    }
                }

                // --- In-order commit under the commit width: the
                // gathered commit_hist[i - cw] + 1 lower bound can
                // only bind when that entry equals the running
                // commit cycle, i.e. when the trailing equal-commit
                // streak spans the whole commit window (commits are
                // monotone, see streak_'s comment).
                std::uint64_t commit =
                    std::max(complete + 1, last_commit[ul]);
                if (commit == last_commit[ul] &&
                    streak[ul] >= cw[ul]) {
                    ++commit;
                }
                streak[ul] =
                    commit == last_commit[ul] ? streak[ul] + 1 : 1;
                last_commit[ul] = commit;

                // --- Bookkeeping: the dependency history row is
                // shared; the occupancy charges go to each lane's
                // future ring row (read back lag_l ops from now).
                complete_hist[s.hist_row + ul] = complete;
                rob_ring[((i + rob[ul]) & rob_mask) * uw + ul] =
                    commit;
                iq_ring[((i + iq[ul]) & iq_mask) * uw + ul] = issue;
                if (s.is_load) {
                    lq_ring[((load_seq + lq[ul]) & lq_mask) * uw +
                            ul] = commit;
                }
                if (s.is_store) {
                    sq_ring[((store_seq + sq[ul]) & sq_mask) * uw +
                            ul] = commit;
                }
            }

            if (count)
                countShared(ws, s);
            if (s.is_load)
                ++load_seq;
            if (s.is_store)
                ++store_seq;
        }
    }
    load_seq_ = load_seq;
    store_seq_ = store_seq;
}

#if M3D_HAVE_AVX2_KERNEL

M3D_TARGET_AVX2 void
BatchReplay::Block::runAvx2(const TraceBuffer &buf,
                            const MemLevelTable &mem,
                            std::uint64_t pos, std::uint64_t n,
                            WindowShared &ws, bool count)
{
    constexpr int w = BatchReplay::kLaneWidth;
    M3D_ASSERT(w_ == w, "vector path needs a full-width block");
    const auto uw = static_cast<std::size_t>(w);

    const __m256i zero = _mm256_setzero_si256();
    const __m256i one = _mm256_set1_epi64x(1);
    const __m256i depth = _mm256_set1_epi64x(
        static_cast<long long>(timing::kDispatchDepth));
    const __m256i dram_gap = _mm256_set1_epi64x(
        static_cast<long long>(timing::kDramGapCycles));
    const __m256i cause1 = _mm256_set1_epi64x(1);
    const __m256i cause2 = _mm256_set1_epi64x(2);
    const __m256i cause3 = _mm256_set1_epi64x(3);

    const __m256i cw_m1 = _mm256_sub_epi64(loadVec(cw_.data()), one);
    const __m256i width_m1 =
        _mm256_sub_epi64(loadVec(dispatch_.data()), one);
    const __m256i complex_v = loadVec(complex_extra_.data());
    const __m256i penalty_v = loadVec(penalty_.data());
    const __m256i load_lat_v = loadVec(load_lat_.data());
    __m256i data_extra_v[4], fetch_extra_v[4];
    for (int k = 0; k < 4; ++k) {
        data_extra_v[k] =
            loadVec(data_extra_.data() + static_cast<std::size_t>(k) * uw);
        fetch_extra_v[k] =
            loadVec(fetch_extra_.data() + static_cast<std::size_t>(k) * uw);
    }

    std::uint64_t *const complete_hist = complete_hist_.data();
    std::uint64_t *const rob_ring = rob_ring_.data();
    std::uint64_t *const iq_ring = iq_ring_.data();
    std::uint64_t *const lq_ring = lq_ring_.data();
    std::uint64_t *const sq_ring = sq_ring_.data();
    const std::uint64_t rob_mask = rob_ring_mask_;
    const std::uint64_t iq_mask = iq_ring_mask_;
    const std::uint64_t lq_mask = lq_ring_mask_;
    const std::uint64_t sq_mask = sq_ring_mask_;
    const std::uint64_t *const rob = rob_.data();
    const std::uint64_t *const iqd = iq_.data();
    const std::uint64_t *const lqd = lq_.data();
    const std::uint64_t *const sqd = sq_.data();
    std::uint64_t *const fu = fu_free_.data();

    __m256i frontier = loadVec(frontier_.data());
    __m256i in_cycle = loadVec(in_cycle_.data());
    __m256i last_commit = loadVec(last_commit_.data());
    __m256i dram_free = loadVec(dram_free_.data());
    __m256i streak = loadVec(streak_.data());
    __m256i st_rob = zero, st_iq = zero, st_lsq = zero;
    __m256i b_fu = zero, b_deps = zero;
    std::uint64_t load_seq = load_seq_;
    std::uint64_t store_seq = store_seq_;

    std::uint64_t i = pos;
    for (const TraceBuffer::ChunkView v : buf.range(pos, n)) {
        const TraceBuffer::Chunk &ch = *v.chunk;
        const std::uint8_t *mem_col = mem.chunk(v.index());
        for (std::uint32_t o = v.begin; o < v.end; ++o, ++i) {
            const SharedOp s = decodeShared(ch, mem_col, o, i, w);
            std::uint64_t *const units =
                fu + static_cast<std::size_t>(
                         s.fu * timing::kMaxFuPerClass) * uw;
            // --- Fetch/dispatch constraints (strict raises; ring
            // rows no charging op has written yet read 0, which
            // never raises - the scalar path's skip).  All four
            // occupancy reads are contiguous lane rows now: the
            // per-lane offsets moved to the write side.
            __m256i d = frontier;
            __m256i cause = zero;
            {
                const __m256i t =
                    loadVec(rob_ring + (i & rob_mask) * uw);
                const __m256i gt = _mm256_cmpgt_epi64(t, d);
                d = _mm256_blendv_epi8(d, t, gt);
                cause = _mm256_blendv_epi8(cause, cause1, gt);
            }
            {
                const __m256i t =
                    loadVec(iq_ring + (i & iq_mask) * uw);
                const __m256i gt = _mm256_cmpgt_epi64(t, d);
                d = _mm256_blendv_epi8(d, t, gt);
                cause = _mm256_blendv_epi8(cause, cause2, gt);
            }
            if (s.is_load) {
                const __m256i t =
                    loadVec(lq_ring + (load_seq & lq_mask) * uw);
                const __m256i gt = _mm256_cmpgt_epi64(t, d);
                d = _mm256_blendv_epi8(d, t, gt);
                cause = _mm256_blendv_epi8(cause, cause3, gt);
            }
            if (s.is_store) {
                const __m256i t =
                    loadVec(sq_ring + (store_seq & sq_mask) * uw);
                const __m256i gt = _mm256_cmpgt_epi64(t, d);
                d = _mm256_blendv_epi8(d, t, gt);
                cause = _mm256_blendv_epi8(cause, cause3, gt);
            }
            st_rob = _mm256_sub_epi64(
                st_rob, _mm256_cmpeq_epi64(cause, cause1));
            st_iq = _mm256_sub_epi64(
                st_iq, _mm256_cmpeq_epi64(cause, cause2));
            st_lsq = _mm256_sub_epi64(
                st_lsq, _mm256_cmpeq_epi64(cause, cause3));

            if (s.fetch_miss)
                d = _mm256_add_epi64(d, fetch_extra_v[s.fetch_level]);

            // --- Advance the fetch frontier (branchless form of the
            // scalar advance).
            {
                const __m256i adv = _mm256_cmpgt_epi64(d, frontier);
                const __m256i inc = _mm256_add_epi64(in_cycle, one);
                const __m256i wrap =
                    _mm256_cmpgt_epi64(inc, width_m1);
                const __m256i fr_else =
                    _mm256_sub_epi64(frontier, wrap);
                const __m256i ic_else =
                    _mm256_andnot_si256(wrap, inc);
                frontier = _mm256_blendv_epi8(fr_else, d, adv);
                in_cycle = _mm256_blendv_epi8(ic_else, one, adv);
            }

            if (s.complex_decode)
                d = _mm256_add_epi64(d, complex_v);

            // --- Operand readiness: dependency rows are shared, so
            // the history reads are contiguous lane rows.
            __m256i ready = _mm256_add_epi64(d, depth);
            if (s.dep1)
                ready = max64(ready,
                              loadVec(complete_hist + s.dep1_row));
            if (s.dep2)
                ready = max64(ready,
                              loadVec(complete_hist + s.dep2_row));

            // --- Issue: vertical first-min over the FU pool rows,
            // then the (scalar) per-lane issue-slot claims.
            __m256i best = loadVec(units);
            __m256i pick = zero;
            for (int u = 1; u < s.fu_units; ++u) {
                const __m256i t =
                    loadVec(units + static_cast<std::size_t>(u) * uw);
                const __m256i lt = _mm256_cmpgt_epi64(best, t);
                best = _mm256_blendv_epi8(best, t, lt);
                pick = _mm256_blendv_epi8(
                    pick, _mm256_set1_epi64x(u), lt);
            }
            __m256i issue = max64(ready, best);
            alignas(32) std::uint64_t iss[4], pk[4], fr[4];
            storeVec(iss, issue);
            storeVec(pk, pick);
            storeVec(fr, frontier);
            for (int l = 0; l < w; ++l) {
                const auto ul = static_cast<std::size_t>(l);
                iss[ul] = claimSlot(l, iss[ul],
                                    fr[ul] + timing::kDispatchDepth);
                units[(static_cast<std::size_t>(pk[ul])) * uw + ul] =
                    iss[ul] + s.occupancy;
            }
            issue = loadVec(iss);
            const __m256i bf = _mm256_cmpgt_epi64(issue, ready);
            b_fu = _mm256_sub_epi64(b_fu, bf);
            b_deps = _mm256_sub_epi64(
                b_deps,
                _mm256_andnot_si256(
                    bf, _mm256_cmpgt_epi64(
                            ready, _mm256_add_epi64(d, depth))));

            // --- Execute.
            __m256i lat = s.is_load
                ? load_lat_v
                : _mm256_set1_epi64x(
                      static_cast<long long>(s.base_latency));
            if (s.is_load) {
                if (s.data_level == MemLevelTable::kDram) {
                    const __m256i start = max64(issue, dram_free);
                    lat = _mm256_add_epi64(
                        lat, _mm256_sub_epi64(start, issue));
                    dram_free = _mm256_add_epi64(start, dram_gap);
                }
                if (s.data_level != MemLevelTable::kL1)
                    lat = _mm256_add_epi64(
                        lat, data_extra_v[s.data_level]);
            }
            const __m256i complete = _mm256_add_epi64(issue, lat);

            // --- Branch resolution (pre-resolved outcome).
            if (s.mispredict) {
                const __m256i redirect =
                    _mm256_add_epi64(complete, penalty_v);
                const __m256i gt =
                    _mm256_cmpgt_epi64(redirect, frontier);
                frontier = _mm256_blendv_epi8(frontier, redirect, gt);
                in_cycle = _mm256_andnot_si256(gt, in_cycle);
            }

            // --- In-order commit under the commit width: streak
            // form of the gathered lower bound (see streak_'s
            // comment).  A compare mask is -1, so subtracting the
            // bump mask adds 1 to the bumped lanes.
            __m256i commit =
                max64(_mm256_add_epi64(complete, one), last_commit);
            {
                const __m256i bump = _mm256_and_si256(
                    _mm256_cmpeq_epi64(commit, last_commit),
                    _mm256_cmpgt_epi64(streak, cw_m1));
                commit = _mm256_sub_epi64(commit, bump);
                streak = _mm256_add_epi64(
                    _mm256_and_si256(
                        streak,
                        _mm256_cmpeq_epi64(commit, last_commit)),
                    one);
            }
            last_commit = commit;

            // --- Bookkeeping (the dependency history row is shared:
            // contiguous lane stores; the occupancy charges go to
            // per-lane future ring rows).
            storeVec(complete_hist + s.hist_row, complete);
            alignas(32) std::uint64_t cm[4];
            storeVec(cm, commit);
            for (int l = 0; l < w; ++l) {
                const auto ul = static_cast<std::size_t>(l);
                rob_ring[((i + rob[ul]) & rob_mask) * uw + ul] =
                    cm[ul];
                iq_ring[((i + iqd[ul]) & iq_mask) * uw + ul] =
                    iss[ul];
            }
            if (s.is_load) {
                for (int l = 0; l < w; ++l) {
                    const auto ul = static_cast<std::size_t>(l);
                    lq_ring[((load_seq + lqd[ul]) & lq_mask) * uw +
                            ul] = cm[ul];
                }
                ++load_seq;
            }
            if (s.is_store) {
                for (int l = 0; l < w; ++l) {
                    const auto ul = static_cast<std::size_t>(l);
                    sq_ring[((store_seq + sqd[ul]) & sq_mask) * uw +
                            ul] = cm[ul];
                }
                ++store_seq;
            }

            if (count)
                countShared(ws, s);
        }
    }

    storeVec(frontier_.data(), frontier);
    storeVec(in_cycle_.data(), in_cycle);
    storeVec(last_commit_.data(), last_commit);
    storeVec(dram_free_.data(), dram_free);
    storeVec(streak_.data(), streak);
    storeVec(win_stall_rob_.data(), st_rob);
    storeVec(win_stall_iq_.data(), st_iq);
    storeVec(win_stall_lsq_.data(), st_lsq);
    storeVec(win_bound_fu_.data(), b_fu);
    storeVec(win_bound_deps_.data(), b_deps);
    load_seq_ = load_seq;
    store_seq_ = store_seq;
}

M3D_TARGET_AVX512 void
BatchReplay::Block::runAvx512(const TraceBuffer &buf,
                              const MemLevelTable &mem,
                              std::uint64_t pos, std::uint64_t n,
                              WindowShared &ws, bool count)
{
    // The 8-lane twin of runAvx2: same stage order, same state
    // layout at stride 8, with the AVX2 compare/blend pairs replaced
    // by k-mask compares/moves and the per-lane future-ring charges
    // by native scatters.  Ring rows no charging op has written yet
    // still read 0 ("no constraint").
    constexpr int w = BatchReplay::kLaneWidth512;
    M3D_ASSERT(w_ == w, "512-bit vector path needs a full block");
    const auto uw = static_cast<std::size_t>(w);
    constexpr __mmask8 kAll = 0xff;

    const __m512i zero = _mm512_setzero_si512();
    const __m512i one = _mm512_set1_epi64(1);
    const __m512i lane = _mm512_set_epi64(7, 6, 5, 4, 3, 2, 1, 0);
    const __m512i depth = _mm512_set1_epi64(
        static_cast<long long>(timing::kDispatchDepth));
    const __m512i dram_gap = _mm512_set1_epi64(
        static_cast<long long>(timing::kDramGapCycles));
    const __m512i cause1 = _mm512_set1_epi64(1);
    const __m512i cause2 = _mm512_set1_epi64(2);
    const __m512i cause3 = _mm512_set1_epi64(3);

    const __m512i rob_v = load512(rob_.data());
    const __m512i iq_v = load512(iq_.data());
    const __m512i lq_v = load512(lq_.data());
    const __m512i sq_v = load512(sq_.data());
    const __m512i cw_v = load512(cw_.data());
    const __m512i width_v = load512(dispatch_.data());
    const __m512i complex_v = load512(complex_extra_.data());
    const __m512i penalty_v = load512(penalty_.data());
    const __m512i load_lat_v = load512(load_lat_.data());
    __m512i data_extra_v[4], fetch_extra_v[4];
    for (int k = 0; k < 4; ++k) {
        data_extra_v[k] = load512(
            data_extra_.data() + static_cast<std::size_t>(k) * uw);
        fetch_extra_v[k] = load512(
            fetch_extra_.data() + static_cast<std::size_t>(k) * uw);
    }

    std::uint64_t *const complete_hist = complete_hist_.data();
    std::uint64_t *const rob_ring = rob_ring_.data();
    std::uint64_t *const iq_ring = iq_ring_.data();
    std::uint64_t *const lq_ring = lq_ring_.data();
    std::uint64_t *const sq_ring = sq_ring_.data();
    const std::uint64_t rob_mask = rob_ring_mask_;
    const std::uint64_t iq_mask = iq_ring_mask_;
    const std::uint64_t lq_mask = lq_ring_mask_;
    const std::uint64_t sq_mask = sq_ring_mask_;
    const __m512i robmask_v = _mm512_set1_epi64(
        static_cast<long long>(rob_mask));
    const __m512i iqmask_v = _mm512_set1_epi64(
        static_cast<long long>(iq_mask));
    const __m512i lqmask_v = _mm512_set1_epi64(
        static_cast<long long>(lq_mask));
    const __m512i sqmask_v = _mm512_set1_epi64(
        static_cast<long long>(sq_mask));
    std::uint64_t *const fu = fu_free_.data();
    std::uint64_t *const slots = slots_.data();
    const __m512i slotmask_v = load512(slot_mask_.data());
    const __m512i iw_v = load512(iw_.data());
    const __m512i kfree_v = _mm512_set1_epi64(
        static_cast<long long>(timing::kFreeSlot));
    const __m512i cntmask_v = _mm512_set1_epi64(
        static_cast<long long>((1ull << timing::kIssueCountBits) - 1));

    __m512i frontier = load512(frontier_.data());
    __m512i in_cycle = load512(in_cycle_.data());
    __m512i last_commit = load512(last_commit_.data());
    __m512i dram_free = load512(dram_free_.data());
    __m512i streak = load512(streak_.data());
    __m512i st_rob = zero, st_iq = zero, st_lsq = zero;
    __m512i b_fu = zero, b_deps = zero;
    std::uint64_t load_seq = load_seq_;
    std::uint64_t store_seq = store_seq_;

    std::uint64_t i = pos;
    for (const TraceBuffer::ChunkView v : buf.range(pos, n)) {
        const TraceBuffer::Chunk &ch = *v.chunk;
        const std::uint8_t *mem_col = mem.chunk(v.index());
        for (std::uint32_t o = v.begin; o < v.end; ++o, ++i) {
            const SharedOp s = decodeShared(ch, mem_col, o, i, w);
            std::uint64_t *const units =
                fu + static_cast<std::size_t>(
                         s.fu * timing::kMaxFuPerClass) * uw;
            const __m512i i_v =
                _mm512_set1_epi64(static_cast<long long>(i));

            // --- Fetch/dispatch constraints (strict raises; unfilled
            // ring rows read 0, which never raises).  The occupancy
            // reads are contiguous lane rows - the per-lane offsets
            // moved to the scatter side of the rings.
            __m512i d = frontier;
            __m512i cause = zero;
            {
                const __m512i t =
                    load512(rob_ring + (i & rob_mask) * uw);
                const __mmask8 gt = _mm512_cmp_epi64_mask(
                    t, d, _MM_CMPINT_NLE);
                d = _mm512_mask_mov_epi64(d, gt, t);
                cause = _mm512_mask_mov_epi64(cause, gt, cause1);
            }
            {
                const __m512i t =
                    load512(iq_ring + (i & iq_mask) * uw);
                const __mmask8 gt = _mm512_cmp_epi64_mask(
                    t, d, _MM_CMPINT_NLE);
                d = _mm512_mask_mov_epi64(d, gt, t);
                cause = _mm512_mask_mov_epi64(cause, gt, cause2);
            }
            if (s.is_load) {
                const __m512i t =
                    load512(lq_ring + (load_seq & lq_mask) * uw);
                const __mmask8 gt = _mm512_cmp_epi64_mask(
                    t, d, _MM_CMPINT_NLE);
                d = _mm512_mask_mov_epi64(d, gt, t);
                cause = _mm512_mask_mov_epi64(cause, gt, cause3);
            }
            if (s.is_store) {
                const __m512i t =
                    load512(sq_ring + (store_seq & sq_mask) * uw);
                const __mmask8 gt = _mm512_cmp_epi64_mask(
                    t, d, _MM_CMPINT_NLE);
                d = _mm512_mask_mov_epi64(d, gt, t);
                cause = _mm512_mask_mov_epi64(cause, gt, cause3);
            }
            st_rob = _mm512_mask_add_epi64(
                st_rob,
                _mm512_cmp_epi64_mask(cause, cause1, _MM_CMPINT_EQ),
                st_rob, one);
            st_iq = _mm512_mask_add_epi64(
                st_iq,
                _mm512_cmp_epi64_mask(cause, cause2, _MM_CMPINT_EQ),
                st_iq, one);
            st_lsq = _mm512_mask_add_epi64(
                st_lsq,
                _mm512_cmp_epi64_mask(cause, cause3, _MM_CMPINT_EQ),
                st_lsq, one);

            if (s.fetch_miss)
                d = _mm512_add_epi64(d, fetch_extra_v[s.fetch_level]);

            // --- Advance the fetch frontier.
            {
                const __mmask8 adv = _mm512_cmp_epi64_mask(
                    d, frontier, _MM_CMPINT_NLE);
                const __m512i inc = _mm512_add_epi64(in_cycle, one);
                const __mmask8 wrap = _mm512_cmp_epi64_mask(
                    inc, width_v, _MM_CMPINT_NLT);
                const __m512i fr_else = _mm512_mask_add_epi64(
                    frontier, wrap, frontier, one);
                const __m512i ic_else = _mm512_maskz_mov_epi64(
                    static_cast<__mmask8>(~wrap), inc);
                frontier = _mm512_mask_mov_epi64(fr_else, adv, d);
                in_cycle = _mm512_mask_mov_epi64(ic_else, adv, one);
            }

            if (s.complex_decode)
                d = _mm512_add_epi64(d, complex_v);

            // --- Operand readiness: contiguous shared-row loads.
            __m512i ready = _mm512_add_epi64(d, depth);
            if (s.dep1)
                ready = _mm512_max_epi64(
                    ready, load512(complete_hist + s.dep1_row));
            if (s.dep2)
                ready = _mm512_max_epi64(
                    ready, load512(complete_hist + s.dep2_row));

            // --- Issue: vertical first-min over the FU pool rows,
            // then the issue-slot claims.
            __m512i best = load512(units);
            __m512i pick = zero;
            for (int u = 1; u < s.fu_units; ++u) {
                const __m512i t =
                    load512(units + static_cast<std::size_t>(u) * uw);
                const __mmask8 lt = _mm512_cmp_epi64_mask(
                    t, best, _MM_CMPINT_LT);
                best = _mm512_mask_mov_epi64(best, lt, t);
                pick = _mm512_mask_mov_epi64(pick, lt,
                                             _mm512_set1_epi64(u));
            }
            __m512i issue = _mm512_max_epi64(ready, best);
            {
                // Vector claim of the common case: gather every
                // lane's window word, claim the lanes whose row has
                // capacity with one masked scatter, and fall back to
                // the scalar walk only for lanes whose row is full -
                // or whose word would trip the eviction assert.
                // Lane columns of slots_ never alias, so the two
                // paths claim disjoint memory and the result is the
                // scalar loop's, bit for bit.
                const __m512i row =
                    _mm512_and_si512(issue, slotmask_v);
                const __m512i sidx = _mm512_add_epi64(
                    _mm512_slli_epi64(row, 3), lane);
                const __m512i word =
                    _mm512_i64gather_epi64(sidx, slots, 8);
                const __m512i wi = _mm512_srli_epi64(
                    word, timing::kIssueCountBits);
                const __mmask8 stale = _mm512_cmp_epi64_mask(
                    wi, issue, _MM_CMPINT_NE);
                const __mmask8 isfree = _mm512_cmp_epi64_mask(
                    word, kfree_v, _MM_CMPINT_EQ);
                const __m512i min_live =
                    _mm512_add_epi64(frontier, depth);
                const __mmask8 viol = static_cast<__mmask8>(
                    stale & ~isfree &
                    _mm512_cmp_epi64_mask(wi, min_live,
                                          _MM_CMPINT_NLT));
                const __m512i word2 = _mm512_mask_mov_epi64(
                    word, stale,
                    _mm512_slli_epi64(issue,
                                      timing::kIssueCountBits));
                const __mmask8 ok = static_cast<__mmask8>(
                    _mm512_cmp_epi64_mask(
                        _mm512_and_si512(word2, cntmask_v), iw_v,
                        _MM_CMPINT_LT) &
                    ~viol);
                _mm512_mask_i64scatter_epi64(
                    slots, ok, sidx, _mm512_add_epi64(word2, one),
                    8);
                if (ok != kAll) {
                    alignas(64) std::uint64_t iss[8], fr[8];
                    store512(iss, issue);
                    store512(fr, frontier);
                    for (int l = 0; l < w; ++l) {
                        if (ok & (1u << l))
                            continue;
                        const auto ul = static_cast<std::size_t>(l);
                        iss[ul] = claimSlot(
                            l, iss[ul],
                            fr[ul] + timing::kDispatchDepth);
                    }
                    issue = load512(iss);
                }
            }
            // FU occupancy charge of the picked unit, one scatter
            // (pick rows are per-lane, lane columns disjoint).
            {
                const __m512i uidx = _mm512_add_epi64(
                    _mm512_slli_epi64(pick, 3), lane);
                _mm512_mask_i64scatter_epi64(
                    units, kAll, uidx,
                    _mm512_add_epi64(
                        issue,
                        _mm512_set1_epi64(static_cast<long long>(
                            s.occupancy))),
                    8);
            }
            const __mmask8 bf = _mm512_cmp_epi64_mask(
                issue, ready, _MM_CMPINT_NLE);
            b_fu = _mm512_mask_add_epi64(b_fu, bf, b_fu, one);
            const __mmask8 bd = _mm512_mask_cmp_epi64_mask(
                static_cast<__mmask8>(~bf), ready,
                _mm512_add_epi64(d, depth), _MM_CMPINT_NLE);
            b_deps = _mm512_mask_add_epi64(b_deps, bd, b_deps, one);

            // --- Execute.
            __m512i lat = s.is_load
                ? load_lat_v
                : _mm512_set1_epi64(
                      static_cast<long long>(s.base_latency));
            if (s.is_load) {
                if (s.data_level == MemLevelTable::kDram) {
                    const __m512i start =
                        _mm512_max_epi64(issue, dram_free);
                    lat = _mm512_add_epi64(
                        lat, _mm512_sub_epi64(start, issue));
                    dram_free = _mm512_add_epi64(start, dram_gap);
                }
                if (s.data_level != MemLevelTable::kL1)
                    lat = _mm512_add_epi64(
                        lat, data_extra_v[s.data_level]);
            }
            const __m512i complete = _mm512_add_epi64(issue, lat);

            // --- Branch resolution (pre-resolved outcome).
            if (s.mispredict) {
                const __m512i redirect =
                    _mm512_add_epi64(complete, penalty_v);
                const __mmask8 gt = _mm512_cmp_epi64_mask(
                    redirect, frontier, _MM_CMPINT_NLE);
                frontier = _mm512_mask_mov_epi64(frontier, gt,
                                                 redirect);
                in_cycle = _mm512_maskz_mov_epi64(
                    static_cast<__mmask8>(~gt), in_cycle);
            }

            // --- In-order commit under the commit width: streak
            // form of the gathered lower bound (see streak_'s
            // comment).
            __m512i commit = _mm512_max_epi64(
                _mm512_add_epi64(complete, one), last_commit);
            {
                const __mmask8 eq_last = _mm512_cmp_epi64_mask(
                    commit, last_commit, _MM_CMPINT_EQ);
                const __mmask8 ge_cw = _mm512_cmp_epi64_mask(
                    streak, cw_v, _MM_CMPINT_NLT);
                const __mmask8 bump =
                    static_cast<__mmask8>(eq_last & ge_cw);
                commit =
                    _mm512_mask_add_epi64(commit, bump, commit, one);
                const __mmask8 still_eq = _mm512_cmp_epi64_mask(
                    commit, last_commit, _MM_CMPINT_EQ);
                streak = _mm512_add_epi64(
                    _mm512_maskz_mov_epi64(still_eq, streak), one);
            }
            last_commit = commit;

            // --- Bookkeeping: the shared dependency row is one
            // contiguous store; the occupancy charges scatter to
            // per-lane future ring rows (lane columns never alias).
            store512(complete_hist + s.hist_row, complete);
            {
                const __m512i row = _mm512_and_si512(
                    _mm512_add_epi64(i_v, rob_v), robmask_v);
                const __m512i idx = _mm512_add_epi64(
                    _mm512_slli_epi64(row, 3), lane);
                _mm512_mask_i64scatter_epi64(rob_ring, kAll, idx,
                                             commit, 8);
            }
            {
                const __m512i row = _mm512_and_si512(
                    _mm512_add_epi64(i_v, iq_v), iqmask_v);
                const __m512i idx = _mm512_add_epi64(
                    _mm512_slli_epi64(row, 3), lane);
                _mm512_mask_i64scatter_epi64(iq_ring, kAll, idx,
                                             issue, 8);
            }
            if (s.is_load) {
                const __m512i row = _mm512_and_si512(
                    _mm512_add_epi64(
                        _mm512_set1_epi64(
                            static_cast<long long>(load_seq)),
                        lq_v),
                    lqmask_v);
                const __m512i idx = _mm512_add_epi64(
                    _mm512_slli_epi64(row, 3), lane);
                _mm512_mask_i64scatter_epi64(lq_ring, kAll, idx,
                                             commit, 8);
                ++load_seq;
            }
            if (s.is_store) {
                const __m512i row = _mm512_and_si512(
                    _mm512_add_epi64(
                        _mm512_set1_epi64(
                            static_cast<long long>(store_seq)),
                        sq_v),
                    sqmask_v);
                const __m512i idx = _mm512_add_epi64(
                    _mm512_slli_epi64(row, 3), lane);
                _mm512_mask_i64scatter_epi64(sq_ring, kAll, idx,
                                             commit, 8);
                ++store_seq;
            }

            if (count)
                countShared(ws, s);
        }
    }

    store512(frontier_.data(), frontier);
    store512(in_cycle_.data(), in_cycle);
    store512(last_commit_.data(), last_commit);
    store512(dram_free_.data(), dram_free);
    store512(streak_.data(), streak);
    store512(win_stall_rob_.data(), st_rob);
    store512(win_stall_iq_.data(), st_iq);
    store512(win_stall_lsq_.data(), st_lsq);
    store512(win_bound_fu_.data(), b_fu);
    store512(win_bound_deps_.data(), b_deps);
    load_seq_ = load_seq;
    store_seq_ = store_seq;
}

#endif // M3D_HAVE_AVX2_KERNEL

void
BatchReplay::Block::run(const TraceBuffer &buf,
                        const MemLevelTable &mem, std::uint64_t pos,
                        std::uint64_t n, SimResult *out,
                        WindowShared &ws, bool count)
{
    // Snapshot the window start, mirroring runImpl's locals.
    const std::vector<Activity> start_activity = activity_;
    const std::vector<std::uint64_t> start_cycle = last_commit_;
    std::fill(win_stall_rob_.begin(), win_stall_rob_.end(), 0);
    std::fill(win_stall_iq_.begin(), win_stall_iq_.end(), 0);
    std::fill(win_stall_lsq_.begin(), win_stall_lsq_.end(), 0);
    std::fill(win_bound_fu_.begin(), win_bound_fu_.end(), 0);
    std::fill(win_bound_deps_.begin(), win_bound_deps_.end(), 0);

#if M3D_HAVE_AVX2_KERNEL
    switch (kind_) {
      case Kind::Avx512:
        runAvx512(buf, mem, pos, n, ws, count);
        break;
      case Kind::Avx2:
        runAvx2(buf, mem, pos, n, ws, count);
        break;
      case Kind::Scalar:
        runScalar(buf, mem, pos, n, ws, count);
        break;
    }
#else
    runScalar(buf, mem, pos, n, ws, count);
#endif

    // Fold counters into each lane's Activity exactly like runImpl.
    for (int l = 0; l < w_; ++l) {
        const auto ul = static_cast<std::size_t>(l);
        Activity &a = activity_[ul];
        a.fetches += ws.fetch_blocks;
        a.l1i_accesses += ws.fetch_blocks;
        a.stall_icache += ws.stall_icache;
        a.stall_rob += win_stall_rob_[ul];
        a.stall_iq += win_stall_iq_[ul];
        a.stall_lsq += win_stall_lsq_[ul];
        a.complex_decodes += ws.complex_decodes;
        a.bound_fu += win_bound_fu_[ul];
        a.bound_deps += win_bound_deps_[ul];
        a.loads += ws.loads;
        a.stores += ws.stores;
        a.l1d_accesses += ws.loads + ws.stores;
        a.sq_searches += ws.loads;  // store-queue forwarding checks
        a.lq_searches += ws.stores; // load-queue ordering checks
        a.alu_ops += ws.alu_ops;
        a.mul_div_ops += ws.mul_div_ops;
        a.fp_ops += ws.fp_ops;
        a.bpt_lookups += ws.branches;
        a.btb_lookups += ws.branches;
        a.mispredicts += ws.mispredicts;
        a.l2_accesses += ws.l2_accesses;
        a.l3_accesses += ws.l3_accesses;
        a.dram_accesses += ws.dram_accesses;

        a.decodes += n;
        a.dispatches += n;
        a.rat_reads += 2 * n;
        a.rat_writes += n;
        a.iq_writes += n;
        a.iq_wakeups += n;
        a.issues += n;
        a.rf_reads += 2 * n;
        a.rf_writes += n;
        a.instructions += n;
        a.cycles = last_commit_[ul];

        SimResult r;
        r.instructions = n;
        r.cycles = last_commit_[ul] - start_cycle[ul];
        r.frequency = frequency_[ul];
        r.activity = Activity::windowed(a, start_activity[ul]);
        r.activity.cycles = r.cycles;
        out[l] = r;
    }
}

BatchReplay::BatchReplay(std::vector<CoreDesign> designs,
                         std::shared_ptr<const TraceBuffer> buf,
                         BatchReplayOptions options)
    : designs_(std::move(designs)), buf_(std::move(buf)),
      options_(options)
{
    M3D_ASSERT(buf_ != nullptr, "batched replay needs a trace");
    M3D_ASSERT(!designs_.empty(),
               "batched replay needs at least one design");
    const bool have_x86 = M3D_HAVE_AVX2_KERNEL != 0;
    const bool v512 = have_x86 && !options_.force_scalar &&
        simd::useAvx512();
    const bool v256 = have_x86 && !options_.force_scalar &&
        simd::useAvx2();
    const auto step =
        static_cast<std::size_t>(preferredWidth(options_));
    for (std::size_t base = 0; base < designs_.size();
         base += step) {
        const int w = static_cast<int>(
            std::min(step, designs_.size() - base));
        Block::Kind kind = Block::Kind::Scalar;
        if (v512 && w == kLaneWidth512)
            kind = Block::Kind::Avx512;
        else if (v256 && w == kLaneWidth)
            kind = Block::Kind::Avx2;
        blocks_.push_back(std::make_unique<Block>(
            designs_.data() + base, w, kind));
    }
}

int
BatchReplay::preferredWidth(const BatchReplayOptions &options)
{
    if (M3D_HAVE_AVX2_KERNEL != 0 && !options.force_scalar &&
        simd::useAvx512()) {
        return kLaneWidth512;
    }
    return kLaneWidth;
}

BatchReplay::~BatchReplay() = default;

bool
BatchReplay::vectorized() const
{
    for (const auto &b : blocks_) {
        if (b->vectorized())
            return true;
    }
    return false;
}

std::vector<SimResult>
BatchReplay::run(std::uint64_t n)
{
    M3D_ASSERT(buf_->size() >= pos_ + n,
               "trace buffer shorter than the requested replay");
    const MemLevelTable &mem =
        MemLevelRegistry::global().acquire(buf_, pos_ + n);
    std::vector<SimResult> out(designs_.size());
    std::size_t base = 0;
    // The window's uniform per-op accounting depends only on the
    // stream, so the first block counts it and the rest reuse it.
    WindowShared ws;
    bool counted = false;
    for (const auto &b : blocks_) {
        b->run(*buf_, mem, pos_, n, out.data() + base, ws, !counted);
        counted = true;
        base += static_cast<std::size_t>(b->width());
    }
    pos_ += n;
    return out;
}

} // namespace m3d
