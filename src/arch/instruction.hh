/**
 * @file
 * The dynamic instruction record exchanged between the workload
 * generators and the core timing model.
 */

#ifndef M3D_ARCH_INSTRUCTION_HH_
#define M3D_ARCH_INSTRUCTION_HH_

#include <cstdint>

namespace m3d {

/** Functional-unit classes (Table 9). */
enum class OpClass {
    IntAlu,    ///< 1 cycle, 4 units
    IntMult,   ///< 2 cycles, 2 units
    IntDiv,    ///< 4 cycles, shares the mult units
    Load,      ///< LSU + cache hierarchy
    Store,     ///< LSU
    FpAdd,     ///< 2 cycles, 2 FPUs, pipelined
    FpMult,    ///< 4 cycles, pipelined
    FpDiv,     ///< 8 cycles, issues every 8
    Branch,    ///< 1 cycle on an ALU
};

/** One dynamic micro-op. */
struct MicroOp
{
    OpClass op = OpClass::IntAlu;
    /**
     * Producer distances: this op depends on the results of the ops
     * `dist` instructions earlier in program order (0 = none).
     * Two source operands cover the common case.
     */
    std::uint32_t src1_dist = 0;
    std::uint32_t src2_dist = 0;
    /**
     * Memory ops: effective address.  Branches: the branch site's PC
     * (the timing model feeds it to the tournament predictor).
     */
    std::uint64_t address = 0;
    bool taken = false;          ///< branches: actual direction
    /**
     * Statistical mispredict draw at the profile's MPKI; retained for
     * analyses that run without the tournament predictor (the core
     * model itself predicts from `address`/`taken`).
     */
    bool mispredicted = false;
    bool complex_decode = false; ///< multi-uop x86 instruction
    bool serializing = false;    ///< parallel apps: lock/barrier op
    bool is_call = false;        ///< branches: call (pushes the RAS)
    bool is_return = false;      ///< branches: return (pops the RAS)
};

} // namespace m3d

#endif // M3D_ARCH_INSTRUCTION_HH_
