/**
 * @file
 * Activity counters collected during simulation and consumed by the
 * McPAT-style power model: per-structure access counts and runtime.
 */

#ifndef M3D_ARCH_ACTIVITY_HH_
#define M3D_ARCH_ACTIVITY_HH_

#include <cstdint>

namespace m3d {

/** Per-core activity over one simulation. */
struct Activity
{
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;

    // Frontend.
    std::uint64_t fetches = 0;        ///< I-cache accesses
    std::uint64_t decodes = 0;
    std::uint64_t complex_decodes = 0;
    std::uint64_t bpt_lookups = 0;    ///< branch predictor reads
    std::uint64_t btb_lookups = 0;
    std::uint64_t mispredicts = 0;

    // Rename/dispatch.
    std::uint64_t rat_reads = 0;
    std::uint64_t rat_writes = 0;
    std::uint64_t dispatches = 0;

    // Issue/execute.
    std::uint64_t iq_writes = 0;
    std::uint64_t iq_wakeups = 0;     ///< CAM searches
    std::uint64_t issues = 0;
    std::uint64_t rf_reads = 0;
    std::uint64_t rf_writes = 0;
    std::uint64_t alu_ops = 0;
    std::uint64_t fp_ops = 0;
    std::uint64_t mul_div_ops = 0;

    // Memory.
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t lq_searches = 0;
    std::uint64_t sq_searches = 0;
    std::uint64_t l1d_accesses = 0;
    std::uint64_t l1i_accesses = 0;
    std::uint64_t l2_accesses = 0;
    std::uint64_t l3_accesses = 0;
    std::uint64_t dram_accesses = 0;
    std::uint64_t noc_flits = 0;      ///< remote transfers

    // Bottleneck attribution: which constraint set each
    // instruction's dispatch/issue time.
    std::uint64_t stall_rob = 0;      ///< ROB full at dispatch
    std::uint64_t stall_iq = 0;       ///< IQ full at dispatch
    std::uint64_t stall_lsq = 0;      ///< LQ/SQ full at dispatch
    std::uint64_t stall_icache = 0;   ///< fetch waited on the I-cache
    std::uint64_t bound_deps = 0;     ///< issue waited on operands
    std::uint64_t bound_fu = 0;       ///< issue waited on FUs/width

    double ipc() const
    {
        return cycles == 0 ? 0.0
                           : static_cast<double>(instructions) /
                             static_cast<double>(cycles);
    }

    /** Counter-wise difference: the activity of a window. */
    static Activity
    windowed(const Activity &end, const Activity &start)
    {
        Activity d;
        d.cycles = end.cycles - start.cycles;
        d.instructions = end.instructions - start.instructions;
        d.fetches = end.fetches - start.fetches;
        d.decodes = end.decodes - start.decodes;
        d.complex_decodes = end.complex_decodes - start.complex_decodes;
        d.bpt_lookups = end.bpt_lookups - start.bpt_lookups;
        d.btb_lookups = end.btb_lookups - start.btb_lookups;
        d.mispredicts = end.mispredicts - start.mispredicts;
        d.rat_reads = end.rat_reads - start.rat_reads;
        d.rat_writes = end.rat_writes - start.rat_writes;
        d.dispatches = end.dispatches - start.dispatches;
        d.iq_writes = end.iq_writes - start.iq_writes;
        d.iq_wakeups = end.iq_wakeups - start.iq_wakeups;
        d.issues = end.issues - start.issues;
        d.rf_reads = end.rf_reads - start.rf_reads;
        d.rf_writes = end.rf_writes - start.rf_writes;
        d.alu_ops = end.alu_ops - start.alu_ops;
        d.fp_ops = end.fp_ops - start.fp_ops;
        d.mul_div_ops = end.mul_div_ops - start.mul_div_ops;
        d.loads = end.loads - start.loads;
        d.stores = end.stores - start.stores;
        d.lq_searches = end.lq_searches - start.lq_searches;
        d.sq_searches = end.sq_searches - start.sq_searches;
        d.l1d_accesses = end.l1d_accesses - start.l1d_accesses;
        d.l1i_accesses = end.l1i_accesses - start.l1i_accesses;
        d.l2_accesses = end.l2_accesses - start.l2_accesses;
        d.l3_accesses = end.l3_accesses - start.l3_accesses;
        d.dram_accesses = end.dram_accesses - start.dram_accesses;
        d.noc_flits = end.noc_flits - start.noc_flits;
        d.stall_rob = end.stall_rob - start.stall_rob;
        d.stall_iq = end.stall_iq - start.stall_iq;
        d.stall_lsq = end.stall_lsq - start.stall_lsq;
        d.stall_icache = end.stall_icache - start.stall_icache;
        d.bound_deps = end.bound_deps - start.bound_deps;
        d.bound_fu = end.bound_fu - start.bound_fu;
        return d;
    }

    /** Merge another core's counters (multicore totals). */
    void
    accumulate(const Activity &other)
    {
        cycles = cycles > other.cycles ? cycles : other.cycles;
        instructions += other.instructions;
        fetches += other.fetches;
        decodes += other.decodes;
        complex_decodes += other.complex_decodes;
        bpt_lookups += other.bpt_lookups;
        btb_lookups += other.btb_lookups;
        mispredicts += other.mispredicts;
        rat_reads += other.rat_reads;
        rat_writes += other.rat_writes;
        dispatches += other.dispatches;
        iq_writes += other.iq_writes;
        iq_wakeups += other.iq_wakeups;
        issues += other.issues;
        rf_reads += other.rf_reads;
        rf_writes += other.rf_writes;
        alu_ops += other.alu_ops;
        fp_ops += other.fp_ops;
        mul_div_ops += other.mul_div_ops;
        loads += other.loads;
        stores += other.stores;
        lq_searches += other.lq_searches;
        sq_searches += other.sq_searches;
        l1d_accesses += other.l1d_accesses;
        l1i_accesses += other.l1i_accesses;
        l2_accesses += other.l2_accesses;
        l3_accesses += other.l3_accesses;
        dram_accesses += other.dram_accesses;
        noc_flits += other.noc_flits;
        stall_rob += other.stall_rob;
        stall_iq += other.stall_iq;
        stall_lsq += other.stall_lsq;
        stall_icache += other.stall_icache;
        bound_deps += other.bound_deps;
        bound_fu += other.bound_fu;
    }
};

} // namespace m3d

#endif // M3D_ARCH_ACTIVITY_HH_
