#include "arch/cache.hh"

#include "arch/directory.hh"
#include "util/logging.hh"

namespace m3d {

Cache::Cache(const CacheConfig &cfg) : cfg_(cfg)
{
    M3D_ASSERT(cfg_.sets() >= 1, "cache smaller than one set: ",
               cfg_.name);
    M3D_ASSERT((cfg_.sets() & (cfg_.sets() - 1)) == 0,
               "set count must be a power of two: ", cfg_.name);
    M3D_ASSERT((cfg_.line_bytes & (cfg_.line_bytes - 1)) == 0,
               "line size must be a power of two: ", cfg_.name);
    while ((1 << line_shift_) < cfg_.line_bytes)
        ++line_shift_;
    set_mask_ = cfg_.sets() - 1;
    const std::size_t entries = static_cast<std::size_t>(
        cfg_.sets() * static_cast<std::uint64_t>(cfg_.associativity));
    tags_.assign(entries, 0);
    lru_.assign(entries, 0);
    meta_.assign(entries, 0);
}

void
Cache::missFill(std::size_t base, std::uint64_t line, bool is_write)
{
    // Fill into an invalid way if one exists, else evict true LRU
    // (earliest way wins ties, matching the original scan order).
    std::size_t victim = base;
    bool found = false;
    const std::size_t end = base +
        static_cast<std::size_t>(cfg_.associativity);
    for (std::size_t w = base; w < end && !found; ++w) {
        if ((meta_[w] & kValid) == 0) {
            victim = w;
            found = true;
        }
    }
    if (!found) {
        for (std::size_t w = base + 1; w < end; ++w) {
            if (lru_[w] < lru_[victim])
                victim = w;
        }
    }
    ++misses_;
    tags_[victim] = line;
    lru_[victim] = tick_;
    meta_[victim] = is_write ? (kValid | kDirty) : kValid;
}

void
Cache::fill(std::uint64_t addr)
{
    ++tick_;
    const std::uint64_t line = lineOf(addr);
    const std::size_t base = static_cast<std::size_t>(
        setOf(line) * static_cast<std::uint64_t>(cfg_.associativity));
    const std::size_t end = base +
        static_cast<std::size_t>(cfg_.associativity);
    std::size_t victim = base;
    bool found = false;
    for (std::size_t w = base; w < end; ++w) {
        if ((meta_[w] & kValid) != 0 && tags_[w] == line)
            return; // already present
        if (!found && (meta_[w] & kValid) == 0) {
            victim = w;
            found = true;
        }
    }
    if (!found) {
        for (std::size_t w = base + 1; w < end; ++w) {
            if (lru_[w] < lru_[victim])
                victim = w;
        }
    }
    tags_[victim] = line;
    lru_[victim] = tick_;
    meta_[victim] = kValid;
}

void
Cache::invalidate(std::uint64_t addr)
{
    const std::uint64_t line = lineOf(addr);
    const std::size_t base = static_cast<std::size_t>(
        setOf(line) * static_cast<std::uint64_t>(cfg_.associativity));
    for (int w = 0; w < cfg_.associativity; ++w) {
        if ((meta_[base + w] & kValid) != 0 &&
            tags_[base + w] == line) {
            meta_[base + w] &= ~kValid;
            return;
        }
    }
}

double
Cache::missRate() const
{
    const double total =
        static_cast<double>(hits_.value() + misses_.value());
    return total == 0.0 ? 0.0
                        : static_cast<double>(misses_.value()) / total;
}

namespace {

CacheConfig
l1iConfig()
{
    return CacheConfig{"IL1", 32 * 1024, 4, 32, 3};
}

CacheConfig
l1dConfig()
{
    return CacheConfig{"DL1", 32 * 1024, 8, 32, 4};
}

CacheConfig
l2Config()
{
    return CacheConfig{"L2", 256 * 1024, 8, 64, 10};
}

CacheConfig
l3Config()
{
    return CacheConfig{"L3", 2 * 1024 * 1024, 16, 64, 32};
}

constexpr std::uint64_t kSharedBit = 1ull << 40;

} // namespace

CacheHierarchy::CacheHierarchy(const HierarchyTiming &timing, int core_id)
    : timing_(timing), core_id_(core_id), l1i_(l1iConfig()),
      l1d_(l1dConfig()), l2_(l2Config()), l3_(l3Config()),
      rng_state_(0x2545F4914F6CDD1Dull ^
                 (static_cast<std::uint64_t>(core_id) << 32))
{
}

bool
CacheHierarchy::coin(double p)
{
    // xorshift64*; independent of the workload generator streams.
    rng_state_ ^= rng_state_ >> 12;
    rng_state_ ^= rng_state_ << 25;
    rng_state_ ^= rng_state_ >> 27;
    const double u = static_cast<double>(
        (rng_state_ * 0x2545F4914F6CDD1Dull) >> 11) * 0x1.0p-53;
    return u < p;
}

MemAccessResult
CacheHierarchy::accessMiss(std::uint64_t addr, bool is_write)
{
    MemAccessResult r;
    if (l2_.access(addr, is_write)) {
        r.level = MemLevel::L2;
        r.extra_cycles = timing_.l2_rt - timing_.l1_rt;
        return r;
    }
    // Shared-pair organization: the partner core's L2 is reachable
    // without touching the NoC (Figure 4).
    if (partner_ && partner_->l2_.contains(addr)) {
        r.level = MemLevel::PartnerL2;
        r.extra_cycles = timing_.partner_l2_cycles - timing_.l1_rt;
        return r;
    }
    const bool shared = (addr & kSharedBit) != 0;
    if (shared && directory_) {
        // Real MESI directory: it decides who forwards and performs
        // the write-invalidations on the victims' caches.
        const DirectoryOutcome d =
            directory_->access(core_id_, addr, is_write);
        if (d.forward) {
            r.level = MemLevel::RemoteL2;
            r.extra_cycles = timing_.noc_remote_cycles +
                             timing_.l2_rt - timing_.l1_rt +
                             2 * d.invalidations;
            return r;
        }
        // Fall through to the L3/DRAM path below (possibly after
        // having invalidated stale sharers on a write).
    } else if (shared && coin(remote_hit_rate_)) {
        r.level = MemLevel::RemoteL2;
        r.extra_cycles = timing_.noc_remote_cycles +
                         timing_.l2_rt - timing_.l1_rt;
        return r;
    }
    // A deep (L3/DRAM) demand miss trains the L2 stream prefetcher:
    // the next lines arrive in the L2 ahead of the stream.
    for (int k = 1; k <= prefetch_depth_; ++k)
        l2_.fill(addr + static_cast<std::uint64_t>(k) * 64);
    if (l3_.access(addr, is_write)) {
        r.level = MemLevel::L3;
        r.extra_cycles = timing_.l3_rt - timing_.l1_rt;
        return r;
    }
    ++dram_accesses_;
    r.level = MemLevel::Dram;
    r.extra_cycles =
        timing_.l3_rt - timing_.l1_rt + timing_.dramCycles();
    return r;
}

MemAccessResult
CacheHierarchy::fetchMiss(std::uint64_t addr)
{
    MemAccessResult r;
    if (l2_.access(addr, false)) {
        r.level = MemLevel::L2;
        r.extra_cycles = timing_.l2_rt;
        return r;
    }
    if (l3_.access(addr, false)) {
        r.level = MemLevel::L3;
        r.extra_cycles = timing_.l3_rt;
        return r;
    }
    ++dram_accesses_;
    r.level = MemLevel::Dram;
    r.extra_cycles = timing_.l3_rt + timing_.dramCycles();
    return r;
}

} // namespace m3d
