/**
 * @file
 * Shared microarchitectural timing constants of the core model.
 *
 * CoreModel::runImpl (the sequential constraint-propagation loop) and
 * BatchReplay (the op-major batched kernel) must charge identical
 * latencies from identical structures - the batched path's contract
 * is bit-identity with the sequential one.  Every constant both loops
 * consume therefore lives here, once: FU pool geometry (Table 9),
 * history-window sizes, frontend depth, DRAM bandwidth gap, and the
 * issue-window packing.
 */

#ifndef M3D_ARCH_CORE_TIMING_HH_
#define M3D_ARCH_CORE_TIMING_HH_

#include <cstddef>
#include <cstdint>

#include "arch/instruction.hh"

namespace m3d {
namespace timing {

/** History window for dependency lookups; must exceed the maximum
 * dependency distance the generator emits (512) and the ROB size. */
constexpr std::size_t kHistSize = 1024;
constexpr std::uint64_t kHistMask = kHistSize - 1;

/** FU classes and the fixed row width of the next-free table. */
constexpr int kFuClasses = 5;
constexpr int kMaxFuPerClass = 4;

/** FU pool sizes (Table 9): ALU x4, IntMult/Div x2, LSU x2, FPU x2,
 * and the complex unit x1. */
constexpr int kFuCount[kFuClasses] = {4, 2, 2, 2, 1};

/** Rename-to-issue depth of the frontend pipe (cycles). */
constexpr std::uint64_t kDispatchDepth = 2;

/** Minimum cycles between DRAM bursts on the core's channel share
 * (64B per burst at ~50 GB/s of per-core bandwidth at 3.3 GHz). */
constexpr std::uint64_t kDramGapCycles = 4;

/** Sentinel cycle of an issue-window entry that was never claimed. */
constexpr std::uint64_t kFreeSlot = ~0ull;

/** Extra issue-window entries beyond the ROB, covering the spread of
 * in-flight issue times past the fetch frontier (long dependence
 * chains through DRAM misses).  The claim loop's eviction assert
 * turns an undersized window into a loud failure, not a silent
 * over-issue; the margin is validated across the golden suite. */
constexpr std::uint64_t kIssueWindowSlack = 4096;

/** Low bits of an issue-window word holding the issued-op count. */
constexpr int kIssueCountBits = 6;

/** Table 9 execution latencies by OpClass.  Load (index 3) is the
 * design's load-to-use path, not a constant - callers substitute it. */
constexpr std::uint64_t kBaseExecLatency[9] = {1, 2, 4, 0, 1, 2, 4, 8, 1};

/** FpDiv blocks its unit for its full (design-independent) latency;
 * everything else is pipelined (occupancy one cycle). */
constexpr std::uint64_t kFpDivLatency =
    kBaseExecLatency[static_cast<std::size_t>(OpClass::FpDiv)];

/** ALU, IntMult/Div, LSU, FPU - indexed by OpClass order. */
constexpr int kFuIndexTable[9] = {0, 1, 1, 2, 2, 3, 3, 3, 0};

inline int
fuIndex(OpClass op)
{
    return kFuIndexTable[static_cast<std::size_t>(op)];
}

inline std::uint64_t
nextPow2(std::uint64_t v)
{
    std::uint64_t p = 1;
    while (p < v)
        p <<= 1;
    return p;
}

} // namespace timing
} // namespace m3d

#endif // M3D_ARCH_CORE_TIMING_HH_
