/**
 * @file
 * Out-of-order core timing model.
 *
 * A constraint-propagation (dataflow) simulator in the spirit of
 * trace-driven O(1)-per-instruction models: for every dynamic
 * micro-op it computes fetch, dispatch, issue, completion, and commit
 * times under the machine's structural constraints - fetch/dispatch/
 * issue/commit widths, ROB/IQ/LQ/SQ occupancy, functional-unit counts
 * and latencies (Table 9), the cache hierarchy, branch-misprediction
 * refill, and the design-dependent load-to-use and misprediction
 * notification paths that M3D shortens.
 */

#ifndef M3D_ARCH_CORE_MODEL_HH_
#define M3D_ARCH_CORE_MODEL_HH_

#include <array>
#include <cstdint>
#include <vector>

#include "arch/activity.hh"
#include "arch/branch_predictor.hh"
#include "arch/cache.hh"
#include "arch/instruction.hh"
#include "core/design.hh"
#include "workload/generator.hh"

namespace m3d {

/** Result of one core simulation. */
struct SimResult
{
    std::uint64_t instructions = 0;
    std::uint64_t cycles = 0;
    double frequency = 0.0;
    Activity activity;

    double ipc() const
    {
        return cycles == 0 ? 0.0
                           : static_cast<double>(instructions) /
                             static_cast<double>(cycles);
    }

    double seconds() const
    {
        return frequency == 0.0
            ? 0.0
            : static_cast<double>(cycles) / frequency;
    }
};

/** The timing model for one core of a given design. */
class CoreModel
{
  public:
    /**
     * @param design The core configuration (clock, widths, paths).
     * @param hierarchy The core's cache hierarchy (caller owns it).
     */
    CoreModel(const CoreDesign &design, CacheHierarchy &hierarchy);

    /**
     * Execute `n` micro-ops from `gen` and return timing/activity.
     * Can be called repeatedly; state (caches, clock) persists.
     */
    SimResult run(TraceGenerator &gen, std::uint64_t n);

    const Activity &activity() const { return activity_; }

  private:
    /** Execution latency for an op class (non-memory). */
    int execLatency(OpClass op) const;

    /** Index into the FU next-free table. */
    static int fuIndex(OpClass op);

    /**
     * Find the earliest cycle >= `ready` with both a free unit of the
     * op's FU class and a free issue slot (issue_width per cycle),
     * and reserve both.
     */
    std::uint64_t reserveIssue(OpClass op, std::uint64_t ready);

    const CoreDesign design_;
    CacheHierarchy &hierarchy_;
    TournamentPredictor predictor_;
    Activity activity_;

    // Rolling completion-time history for dependency resolution and
    // occupancy constraints (sized to the ROB).
    std::vector<std::uint64_t> complete_hist_;
    std::vector<std::uint64_t> issue_hist_;
    std::vector<std::uint64_t> commit_hist_;
    std::vector<std::uint64_t> load_commit_hist_;
    std::vector<std::uint64_t> store_commit_hist_;
    std::uint64_t seq_ = 0;       ///< dynamic instruction number
    std::uint64_t load_seq_ = 0;
    std::uint64_t store_seq_ = 0;
    std::uint64_t clock_ = 0;     ///< current fetch frontier (cycles)
    std::uint64_t fetch_group_ = 0;
    /**
     * Per-cycle issued-op counts in a sliding window: entry holds the
     * cycle it counts for and the ops issued that cycle.  The window
     * far exceeds the maximum spread of in-flight issue times.
     */
    std::vector<std::pair<std::uint64_t, int>> issue_slots_;
    std::uint64_t last_commit_ = 0;
    /** DRAM channel occupancy: enforces a minimum gap between
     * off-chip transfers (bandwidth wall). */
    std::uint64_t dram_free_ = 0;
    std::uint64_t fetch_pc_ = 0x400000;

    // Per-FU-class next-free times.
    static constexpr int kFuClasses = 5;
    std::array<std::vector<std::uint64_t>, kFuClasses> fu_free_;
};

} // namespace m3d

#endif // M3D_ARCH_CORE_MODEL_HH_
