/**
 * @file
 * Out-of-order core timing model.
 *
 * A constraint-propagation (dataflow) simulator in the spirit of
 * trace-driven O(1)-per-instruction models: for every dynamic
 * micro-op it computes fetch, dispatch, issue, completion, and commit
 * times under the machine's structural constraints - fetch/dispatch/
 * issue/commit widths, ROB/IQ/LQ/SQ occupancy, functional-unit counts
 * and latencies (Table 9), the cache hierarchy, branch-misprediction
 * refill, and the design-dependent load-to-use and misprediction
 * notification paths that M3D shortens.
 *
 * Two op sources feed the same timing math: a live TraceGenerator
 * (which also trains the tournament predictor per run), or a shared
 * pre-resolved TraceBuffer via a TraceCursor (the fast path of
 * design-space search - no generation or predictor work per design).
 * Both produce bit-identical results for the same stream.
 */

#ifndef M3D_ARCH_CORE_MODEL_HH_
#define M3D_ARCH_CORE_MODEL_HH_

#include <array>
#include <cstdint>
#include <vector>

#include "arch/activity.hh"
#include "arch/cache.hh"
#include "arch/core_timing.hh"
#include "arch/instruction.hh"
#include "core/design.hh"
#include "workload/branch_predictor.hh"
#include "workload/generator.hh"
#include "workload/trace_buffer.hh"

namespace m3d {

/** Result of one core simulation. */
struct SimResult
{
    std::uint64_t instructions = 0;
    std::uint64_t cycles = 0;
    double frequency = 0.0;
    Activity activity;

    double ipc() const
    {
        return cycles == 0 ? 0.0
                           : static_cast<double>(instructions) /
                             static_cast<double>(cycles);
    }

    double seconds() const
    {
        return frequency == 0.0
            ? 0.0
            : static_cast<double>(cycles) / frequency;
    }
};

/**
 * Type-erased op source for CoreModel::run: one request shape for
 * every way of feeding the timing loop.  Constructs implicitly from
 * either a live TraceGenerator (trains the predictor per run) or a
 * TraceCursor over a shared pre-resolved TraceBuffer (the replay fast
 * path); CoreModel picks the matching stream internally, including
 * the resolved-memory specialization for stream-determined
 * hierarchies.  Holds a reference - the source must outlive the call.
 */
class OpSource
{
  public:
    OpSource(TraceGenerator &gen) : gen_(&gen) {}
    OpSource(TraceCursor &cursor) : cursor_(&cursor) {}

    /** True when the source replays a shared buffer. */
    bool replay() const { return cursor_ != nullptr; }
    TraceGenerator *generator() const { return gen_; }
    TraceCursor *cursor() const { return cursor_; }

  private:
    TraceGenerator *gen_ = nullptr;
    TraceCursor *cursor_ = nullptr;
};

/** The timing model for one core of a given design. */
class CoreModel
{
  public:
    /**
     * @param design The core configuration (clock, widths, paths).
     * @param hierarchy The core's cache hierarchy (caller owns it).
     */
    CoreModel(const CoreDesign &design, CacheHierarchy &hierarchy);

    /** Instructions per fetch block (one I-cache access per block);
     * shared with the memory-level pre-resolver so both walk the
     * identical fetch sequence. */
    static constexpr std::uint64_t kFetchBlock = 8;

    /**
     * Execute `n` micro-ops from `source` and return timing/activity.
     * Can be called repeatedly; state (caches, clock) persists.
     *
     * Results are bit-identical for the generator and replay forms of
     * the same stream, provided a replay cursor started at op 0 of
     * the buffer on a freshly constructed core (the pre-resolved
     * predictor outcomes assume an untrained predictor at op 0, just
     * as a fresh core's predictor is).  A replay source must already
     * hold `position() + n` ops; the cursor advances past them.  Do
     * not mix sources on one core: after a replay run the live
     * predictor is untrained.
     */
    SimResult run(OpSource source, std::uint64_t n);

    /** Deprecated-documented wrapper: run(OpSource(gen), n). */
    SimResult
    run(TraceGenerator &gen, std::uint64_t n)
    {
        return run(OpSource(gen), n);
    }

    /** Deprecated-documented wrapper: run(OpSource(cursor), n). */
    SimResult
    run(TraceCursor &cursor, std::uint64_t n)
    {
        return run(OpSource(cursor), n);
    }

    const Activity &activity() const { return activity_; }

  private:
    /** Execution latency for an op class (non-memory). */
    int
    execLatency(OpClass op) const
    {
        return exec_latency_[static_cast<std::size_t>(op)];
    }

    /** Index into the FU next-free table. */
    static int fuIndex(OpClass op);

    /**
     * Find the earliest cycle >= `ready` with both a free unit of the
     * op's FU class and a free issue slot (issue_width per cycle),
     * and reserve both.  `min_live` is the smallest cycle any later
     * op can still issue at; the sliding window asserts it never
     * evicts a count at or above it.
     */
#if defined(__GNUC__)
    __attribute__((always_inline))
#endif
    inline std::uint64_t reserveIssue(OpClass op, std::uint64_t ready,
                                      std::uint64_t min_live);

    /** The timing loop, shared by both op sources (see run()). */
    template <typename Stream>
    SimResult runImpl(Stream &stream, std::uint64_t n);

    const CoreDesign design_;
    CacheHierarchy &hierarchy_;
    TournamentPredictor predictor_;
    Activity activity_;

    /** Per-class execution latencies, indexed by OpClass; built once
     * from the design so the hot loop avoids a switch per op. */
    std::array<int, 9> exec_latency_{};

    // Rolling completion-time history for dependency resolution and
    // occupancy constraints (sized to the ROB).
    std::vector<std::uint64_t> complete_hist_;
    std::vector<std::uint64_t> issue_hist_;
    std::vector<std::uint64_t> commit_hist_;
    std::vector<std::uint64_t> load_commit_hist_;
    std::vector<std::uint64_t> store_commit_hist_;
    std::uint64_t seq_ = 0;       ///< dynamic instruction number
    std::uint64_t load_seq_ = 0;
    std::uint64_t store_seq_ = 0;
    std::uint64_t clock_ = 0;     ///< current fetch frontier (cycles)
    std::uint64_t fetch_group_ = 0;
    /**
     * Per-cycle issued-op counts in a sliding window.  Each word
     * packs the cycle it counts for in the upper bits and the ops
     * issued that cycle in the low kIssueCountBits, so a claim is a
     * single 8-byte load/store.  Sized to a power of two covering
     * the ROB plus the worst in-flight issue spread; reserveIssue()
     * asserts the window is never too small.
     */
    static constexpr int kIssueCountBits = timing::kIssueCountBits;
    std::vector<std::uint64_t> issue_slots_;
    std::uint64_t last_commit_ = 0;
    /** DRAM channel occupancy: enforces a minimum gap between
     * off-chip transfers (bandwidth wall). */
    std::uint64_t dram_free_ = 0;
    std::uint64_t fetch_pc_ = 0x400000;

    // Per-FU-class next-free times, flattened to a fixed row of
    // kMaxFuPerClass entries per class.  Absent units sit at the
    // UINT64_MAX sentinel so the earliest-free scan can always run
    // the full constant-width row (branch-free) and never pick one.
    static constexpr int kFuClasses = timing::kFuClasses;
    static constexpr int kMaxFuPerClass = timing::kMaxFuPerClass;
    std::array<std::uint64_t, kFuClasses * kMaxFuPerClass> fu_free_;
};

} // namespace m3d

#endif // M3D_ARCH_CORE_MODEL_HH_
