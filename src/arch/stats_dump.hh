/**
 * @file
 * gem5-style statistics dump: flat "component.stat value" lines for
 * simulation results and cache hierarchies, for scripting and
 * regression diffing.
 */

#ifndef M3D_ARCH_STATS_DUMP_HH_
#define M3D_ARCH_STATS_DUMP_HH_

#include <ostream>
#include <string>

#include "arch/cache.hh"
#include "arch/core_model.hh"
#include "arch/multicore.hh"

namespace m3d {

/** Dump one core run's counters under `prefix` (e.g. "core0"). */
void dumpStats(std::ostream &os, const std::string &prefix,
               const SimResult &result);

/** Dump a cache hierarchy's hit/miss counters under `prefix`. */
void dumpStats(std::ostream &os, const std::string &prefix,
               const CacheHierarchy &hierarchy);

/** Dump a multicore run (per-core + totals) under `prefix`. */
void dumpStats(std::ostream &os, const std::string &prefix,
               const MulticoreResult &result);

} // namespace m3d

#endif // M3D_ARCH_STATS_DUMP_HH_
