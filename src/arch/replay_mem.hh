/**
 * @file
 * Pre-resolved cache-level annotations for shared-trace replay.
 *
 * For a single-core hierarchy with no partner L2, no MESI directory,
 * and no remote-hit coin (CacheHierarchy::streamDetermined()), the
 * level that serves every access is a pure function of the op stream:
 * the cache geometry is fixed (Table 9), the L2 prefetch depth is a
 * constant, and accesses hit the hierarchy in op order - one I-fetch
 * per fetch block followed by the op's own load or store.  Nothing
 * about the core design (widths, latencies, queue sizes) can change
 * which level answers.
 *
 * A MemLevelTable therefore walks a shared TraceBuffer once with a
 * default hierarchy and records one byte per op: bits 0-1 the level
 * serving its data access (loads and stores), bits 2-3 the level
 * serving the instruction fetch of ops that start a fetch block.
 * CoreModel's replay path then charges the *current* design's latency
 * for the recorded level from a four-entry table - bit-identical to
 * simulating the caches, with no tag arrays touched per design.
 *
 * The process-wide MemLevelRegistry shares tables across evaluations,
 * keyed by buffer identity, exactly like the TraceRegistry shares the
 * op columns themselves.  Multicore replay never uses annotations:
 * with a directory and partners attached, the serving level depends on
 * the design, and CoreModel falls back to live cache simulation.
 */

#ifndef M3D_ARCH_REPLAY_MEM_HH_
#define M3D_ARCH_REPLAY_MEM_HH_

#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "arch/cache.hh"
#include "workload/trace_buffer.hh"

namespace m3d {

/** Per-op cache-level annotations of one trace (see file comment). */
class MemLevelTable
{
  public:
    /** Level codes (2 bits); only private-hierarchy levels occur. */
    static constexpr unsigned kL1 = 0;
    static constexpr unsigned kL2 = 1;
    static constexpr unsigned kL3 = 2;
    static constexpr unsigned kDram = 3;
    static constexpr unsigned kLevelMask = 3;
    /** Bit position of the fetch-level code (data code is bits 0-1). */
    static constexpr unsigned kFetchShift = 2;

    /** One column chunk, mirroring TraceBuffer's chunking. */
    using LevelChunk = std::array<std::uint8_t, TraceBuffer::kChunkOps>;

    /** Annotations for `buf`; the table keeps the buffer alive. */
    explicit MemLevelTable(std::shared_ptr<const TraceBuffer> buf);

    MemLevelTable(const MemLevelTable &) = delete;
    MemLevelTable &operator=(const MemLevelTable &) = delete;

    /**
     * Resolve levels out to at least `n` ops (the buffer must already
     * hold them).  Thread-safe; returns immediately when already
     * resolved far enough.  Resolution always continues from where it
     * stopped - the resolver hierarchy's state carries across calls,
     * so a later extension sees exactly the cache contents a single
     * front-to-back walk would have.
     */
    void ensure(std::uint64_t n);

    /** Ops resolved so far. */
    std::uint64_t size() const;

    /**
     * Level bytes of chunk `ci`.  Like TraceBuffer::chunk(), safe
     * without locking for chunks fully below a count some ensure()
     * call has returned for on this thread (storage never moves).
     */
    const std::uint8_t *
    chunk(std::uint64_t ci) const
    {
        return chunks_[static_cast<std::size_t>(ci)]->data();
    }

  private:
    std::shared_ptr<const TraceBuffer> buf_;
    std::uint64_t code_bytes_;

    mutable std::mutex mutex_;
    /** Reserved to the buffer's chunk cap so append never moves the
     * pointer array under a concurrent reader. */
    std::vector<std::unique_ptr<LevelChunk>> chunks_;
    std::uint64_t resolved_ = 0;

    /** Resolver continuation state: a default single-core hierarchy
     * walked in op order, plus the fetch PC it has reached. */
    CacheHierarchy resolver_;
    std::uint64_t fetch_pc_ = 0x400000;
};

/**
 * Process-wide cache of level tables, one per live TraceBuffer.  Every
 * replay of the same shared buffer - across designs, worker threads,
 * and Evaluator instances - shares one table.
 */
class MemLevelRegistry
{
  public:
    /** The process-wide instance CoreModel's replay path uses. */
    static MemLevelRegistry &global();

    /**
     * The shared table for `buf`, resolved out to at least `min_ops`
     * before returning.  Creates the table on first use.
     */
    const MemLevelTable &
    acquire(std::shared_ptr<const TraceBuffer> buf,
            std::uint64_t min_ops);

    /** Number of distinct buffers annotated. */
    std::size_t tableCount() const;

    /** Drop every table (benchmarks that need a cold registry). */
    void clear();

  private:
    mutable std::mutex mutex_;
    std::unordered_map<const TraceBuffer *,
                       std::unique_ptr<MemLevelTable>>
        tables_;
};

} // namespace m3d

#endif // M3D_ARCH_REPLAY_MEM_HH_
