/**
 * @file
 * Multicore simulation: N cores with private hierarchies, a ring NoC
 * with a directory-style sharing model, fork/join parallel sections
 * (Amdahl), barrier imbalance, and lock contention.
 *
 * 3D designs pair cores to share their L2s and a router stop
 * (Figure 4), which shortens both partner-L2 hits and average NoC
 * distance.
 */

#ifndef M3D_ARCH_MULTICORE_HH_
#define M3D_ARCH_MULTICORE_HH_

#include <memory>
#include <vector>

#include "arch/core_model.hh"
#include "arch/noc.hh"

namespace m3d {

/** Result of one multicore run. */
struct MulticoreResult
{
    double seconds = 0.0;          ///< end-to-end runtime
    double serial_seconds = 0.0;   ///< Amdahl serial section
    double parallel_seconds = 0.0; ///< slowest core's parallel section
    double sync_seconds = 0.0;     ///< barrier + lock overhead
    double frequency = 0.0;
    int num_cores = 0;
    Activity total;                ///< summed activity of all cores
    std::vector<SimResult> per_core;
};

/** Simulates one parallel application on one multicore design. */
class MulticoreModel
{
  public:
    explicit MulticoreModel(const CoreDesign &design);

    /**
     * Run `total_instructions` of work from `profile`, split per
     * Amdahl across the design's cores.
     *
     * @param seed Workload seed (same across designs).
     * @param path Replay shared registry traces (fast path) or run
     *             the generator live; results are bit-identical.
     */
    MulticoreResult run(const WorkloadProfile &profile,
                        std::uint64_t total_instructions,
                        std::uint64_t seed,
                        std::uint64_t warmup_per_core=50000,
                        TracePath path=TracePath::Replay) const;

  private:
    HierarchyTiming timingFor(const RingNoc &noc) const;

    CoreDesign design_;
};

} // namespace m3d

#endif // M3D_ARCH_MULTICORE_HH_
