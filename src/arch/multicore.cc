#include "arch/multicore.hh"

#include <algorithm>
#include <cmath>

#include "arch/directory.hh"

#include "util/logging.hh"

namespace m3d {

namespace {

// Barrier cost model: a log-depth notification tree over the NoC plus
// a fixed imbalance share of the inter-barrier interval.
constexpr double kBarrierImbalance = 0.05;
// Lock cost model: probability a lock is contended, and the average
// critical-section occupancy charged while spinning.
constexpr double kLockContention = 0.20;
constexpr double kCriticalSectionCycles = 40.0;
// Probability that a shared line missing everywhere locally is held
// in some remote L2 (directory forwarding) rather than in the L3.
constexpr double kRemoteHitRate = 0.5;

} // namespace

MulticoreModel::MulticoreModel(const CoreDesign &design) : design_(design)
{
    M3D_ASSERT(design_.num_cores >= 1);
}

HierarchyTiming
MulticoreModel::timingFor(const RingNoc &noc) const
{
    HierarchyTiming t;
    t.l1_rt = design_.load_to_use;
    t.l2_rt = 10;
    t.l3_rt = 32;
    t.dram_ns = 50.0;
    t.frequency = design_.frequency;
    t.noc_remote_cycles = noc.remoteRoundTrip() + t.l2_rt;
    t.partner_l2_cycles = t.l2_rt + 2; // one MIV hop, no NoC
    return t;
}

MulticoreResult
MulticoreModel::run(const WorkloadProfile &profile,
                    std::uint64_t total_instructions,
                    std::uint64_t seed,
                    std::uint64_t warmup_per_core,
                    TracePath path) const
{
    const int cores = design_.num_cores;
    RingNoc noc(cores, design_.shared_l2_pairs);
    const HierarchyTiming timing = timingFor(noc);

    MulticoreResult out;
    out.num_cores = cores;
    out.frequency = design_.frequency;

    const double pfrac = profile.parallel ? profile.parallel_frac : 0.0;
    const auto serial_instr = static_cast<std::uint64_t>(
        (1.0 - pfrac) * static_cast<double>(total_instructions));
    const std::uint64_t parallel_instr =
        total_instructions - serial_instr;
    const std::uint64_t per_core_instr =
        parallel_instr / static_cast<std::uint64_t>(cores);

    // Build hierarchies, pair them up for shared-L2 designs, and
    // attach the MESI directory for the shared region.
    MesiDirectory directory(cores);
    std::vector<std::unique_ptr<CacheHierarchy>> hier;
    hier.reserve(static_cast<std::size_t>(cores));
    for (int c = 0; c < cores; ++c) {
        hier.push_back(
            std::make_unique<CacheHierarchy>(timing, c));
        hier.back()->setDirectory(&directory);
        directory.attach(c, hier.back().get());
    }
    if (design_.shared_l2_pairs) {
        for (int c = 0; c + 1 < cores; c += 2) {
            hier[static_cast<std::size_t>(c)]->setPartner(
                hier[static_cast<std::size_t>(c + 1)].get());
            hier[static_cast<std::size_t>(c + 1)]->setPartner(
                hier[static_cast<std::size_t>(c)].get());
        }
    }

    // One thread's work on one fresh core, from op 0 of the thread's
    // stream: shared registry trace or a live generator.
    auto run_thread = [&](CoreModel &core, int thread_id,
                          std::uint64_t measured) -> SimResult {
        if (path == TracePath::Replay) {
            TraceCursor cursor(TraceRegistry::global().acquire(
                profile, seed, thread_id,
                warmup_per_core + measured));
            core.run(cursor, warmup_per_core);
            return core.run(cursor, measured);
        }
        TraceGenerator gen(profile, seed, thread_id);
        core.run(gen, warmup_per_core);
        return core.run(gen, measured);
    };

    // Serial section on core 0.
    double serial_seconds = 0.0;
    if (serial_instr > 0) {
        CoreModel core0(design_, *hier[0]);
        SimResult r = run_thread(core0, /*thread_id=*/0, serial_instr);
        serial_seconds = r.seconds();
        out.total.accumulate(r.activity);
        out.per_core.push_back(r);
    }

    // Parallel section: every core executes its share.
    double slowest = 0.0;
    for (int c = 0; c < cores; ++c) {
        CoreModel core(design_, *hier[static_cast<std::size_t>(c)]);
        SimResult r = run_thread(core, /*thread_id=*/c + 1,
                                 per_core_instr);
        slowest = std::max(slowest, r.seconds());
        out.total.accumulate(r.activity);
        out.per_core.push_back(r);
    }
    // Synchronization overheads.
    const double per_core_d = static_cast<double>(per_core_instr);
    const double n_barriers =
        profile.barrier_per_kinstr * per_core_d / 1000.0;
    const double n_locks =
        profile.lock_per_kinstr * per_core_d / 1000.0;

    const double barrier_latency_cycles =
        noc.averageLatency() *
        std::max(1.0, std::log2(static_cast<double>(cores)));
    const double barrier_cycles =
        n_barriers * barrier_latency_cycles +
        kBarrierImbalance * slowest * design_.frequency;
    const double lock_cycles = n_locks * kLockContention *
        kCriticalSectionCycles *
        (static_cast<double>(cores - 1) / 2.0);

    const double sync_seconds =
        (barrier_cycles + lock_cycles) / design_.frequency;

    out.serial_seconds = serial_seconds;
    out.parallel_seconds = slowest;
    out.sync_seconds = sync_seconds;
    out.seconds = serial_seconds + slowest + sync_seconds;
    return out;
}

} // namespace m3d
