#include "arch/stats_dump.hh"

#include <iomanip>

namespace m3d {

namespace {

void
line(std::ostream &os, const std::string &prefix,
     const std::string &name, double v)
{
    os << prefix << "." << name << " " << std::setprecision(12) << v
       << "\n";
}

void
line(std::ostream &os, const std::string &prefix,
     const std::string &name, std::uint64_t v)
{
    os << prefix << "." << name << " " << v << "\n";
}

} // namespace

void
dumpStats(std::ostream &os, const std::string &prefix,
          const SimResult &r)
{
    const Activity &a = r.activity;
    line(os, prefix, "instructions", r.instructions);
    line(os, prefix, "cycles", r.cycles);
    line(os, prefix, "ipc", r.ipc());
    line(os, prefix, "seconds", r.seconds());
    line(os, prefix, "fetches", a.fetches);
    line(os, prefix, "decodes", a.decodes);
    line(os, prefix, "complex_decodes", a.complex_decodes);
    line(os, prefix, "dispatches", a.dispatches);
    line(os, prefix, "issues", a.issues);
    line(os, prefix, "rf_reads", a.rf_reads);
    line(os, prefix, "rf_writes", a.rf_writes);
    line(os, prefix, "rat_reads", a.rat_reads);
    line(os, prefix, "rat_writes", a.rat_writes);
    line(os, prefix, "iq_wakeups", a.iq_wakeups);
    line(os, prefix, "bpt_lookups", a.bpt_lookups);
    line(os, prefix, "btb_lookups", a.btb_lookups);
    line(os, prefix, "mispredicts", a.mispredicts);
    line(os, prefix, "mpki",
         a.instructions ? 1000.0 * static_cast<double>(a.mispredicts) /
                              static_cast<double>(a.instructions)
                        : 0.0);
    line(os, prefix, "loads", a.loads);
    line(os, prefix, "stores", a.stores);
    line(os, prefix, "l1d_accesses", a.l1d_accesses);
    line(os, prefix, "l1i_accesses", a.l1i_accesses);
    line(os, prefix, "l2_accesses", a.l2_accesses);
    line(os, prefix, "l3_accesses", a.l3_accesses);
    line(os, prefix, "dram_accesses", a.dram_accesses);
    line(os, prefix, "noc_flits", a.noc_flits);
    line(os, prefix, "stall_rob", a.stall_rob);
    line(os, prefix, "stall_iq", a.stall_iq);
    line(os, prefix, "stall_lsq", a.stall_lsq);
    line(os, prefix, "stall_icache", a.stall_icache);
    line(os, prefix, "bound_deps", a.bound_deps);
    line(os, prefix, "bound_fu", a.bound_fu);
    line(os, prefix, "alu_ops", a.alu_ops);
    line(os, prefix, "fp_ops", a.fp_ops);
    line(os, prefix, "mul_div_ops", a.mul_div_ops);
}

void
dumpStats(std::ostream &os, const std::string &prefix,
          const CacheHierarchy &h)
{
    auto cache = [&os, &prefix](const std::string &name,
                                const Cache &c) {
        line(os, prefix + "." + name, "hits", c.hits());
        line(os, prefix + "." + name, "misses", c.misses());
        line(os, prefix + "." + name, "miss_rate", c.missRate());
    };
    cache("l1i", h.l1i());
    cache("l1d", h.l1d());
    cache("l2", h.l2());
    cache("l3", h.l3());
    line(os, prefix, "dram_accesses", h.dramAccesses());
}

void
dumpStats(std::ostream &os, const std::string &prefix,
          const MulticoreResult &r)
{
    line(os, prefix, "seconds", r.seconds);
    line(os, prefix, "serial_seconds", r.serial_seconds);
    line(os, prefix, "parallel_seconds", r.parallel_seconds);
    line(os, prefix, "sync_seconds", r.sync_seconds);
    line(os, prefix, "num_cores",
         static_cast<std::uint64_t>(r.num_cores));
    line(os, prefix, "total_instructions", r.total.instructions);
    for (std::size_t c = 0; c < r.per_core.size(); ++c) {
        dumpStats(os, prefix + ".core" + std::to_string(c),
                  r.per_core[c]);
    }
}

} // namespace m3d
