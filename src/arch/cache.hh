/**
 * @file
 * Set-associative cache models and the private/shared hierarchy of
 * Table 9 (32KB L1s, 256KB private L2, 2MB-per-core shared L3,
 * 50ns DRAM).  Tags and LRU state are simulated exactly; the timing
 * model charges the round-trip latencies of the level that serves
 * each access.
 */

#ifndef M3D_ARCH_CACHE_HH_
#define M3D_ARCH_CACHE_HH_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/stats.hh"

namespace m3d {

class MesiDirectory;

/** Geometry + timing of one cache level. */
struct CacheConfig
{
    std::string name;
    std::uint64_t size_bytes = 32 * 1024;
    int associativity = 4;
    int line_bytes = 64;
    int round_trip_cycles = 3; ///< load-to-use round trip when hit here

    /** Number of sets implied by the geometry. */
    std::uint64_t sets() const
    {
        return size_bytes /
               (static_cast<std::uint64_t>(associativity) * line_bytes);
    }
};

/** One set-associative cache with true LRU replacement. */
class Cache
{
  public:
    explicit Cache(const CacheConfig &cfg);

    /**
     * Look up (and on miss, fill) a line.
     * @return true on hit.
     *
     * Defined inline: this is the innermost call of the timing model
     * and integer-only, so header inlining is free of numeric risk.
     */
    bool access(std::uint64_t addr, bool is_write)
    {
        ++tick_;
        const std::uint64_t line = lineOf(addr);
        const std::uint64_t set = setOf(line);
        const std::size_t base = static_cast<std::size_t>(
            set * static_cast<std::uint64_t>(cfg_.associativity));
        const int assoc = cfg_.associativity;
        for (int w = 0; w < assoc; ++w) {
            if (tags_[base + w] == line &&
                (meta_[base + w] & kValid) != 0) {
                lru_[base + w] = tick_;
                meta_[base + w] |=
                    is_write ? (kValid | kDirty) : kValid;
                ++hits_;
                return true;
            }
        }
        missFill(base, line, is_write);
        return false;
    }

    /** Probe without filling or updating LRU. */
    bool contains(std::uint64_t addr) const
    {
        const std::uint64_t line = lineOf(addr);
        const std::size_t base = static_cast<std::size_t>(
            setOf(line) * static_cast<std::uint64_t>(
                cfg_.associativity));
        for (int w = 0; w < cfg_.associativity; ++w) {
            if (tags_[base + w] == line &&
                (meta_[base + w] & kValid) != 0)
                return true;
        }
        return false;
    }

    /** Insert a line without touching the hit/miss statistics
     * (prefetch fill). */
    void fill(std::uint64_t addr);

    /** Invalidate a line if present (coherence). */
    void invalidate(std::uint64_t addr);

    const CacheConfig &config() const { return cfg_; }
    std::uint64_t hits() const { return hits_.value(); }
    std::uint64_t misses() const { return misses_.value(); }
    double missRate() const;

  private:
    static constexpr std::uint8_t kValid = 1;
    static constexpr std::uint8_t kDirty = 2;

    std::uint64_t lineOf(std::uint64_t addr) const
    {
        return addr >> line_shift_;
    }
    std::uint64_t setOf(std::uint64_t line) const
    {
        return line & set_mask_;
    }

    /** Miss path of access(): victim selection + fill. */
    void missFill(std::size_t base, std::uint64_t line, bool is_write);

    CacheConfig cfg_;
    // Geometry folded to shift/mask once (line size and set count
    // are asserted powers of two) - access() is the timing model's
    // innermost call, so it must not divide.
    int line_shift_ = 0;
    std::uint64_t set_mask_ = 0;
    // Way state as parallel arrays (sets x associativity, row-major):
    // the hit scan touches one cache line of tags per probe instead
    // of striding across 24-byte way structs.
    std::vector<std::uint64_t> tags_;
    std::vector<std::uint64_t> lru_;
    std::vector<std::uint8_t> meta_; ///< kValid | kDirty bits
    std::uint64_t tick_ = 0;
    Counter hits_;
    Counter misses_;
};

/** Which level served an access. */
enum class MemLevel { L1, L2, PartnerL2, RemoteL2, L3, Dram };

/** Result of a hierarchy access. */
struct MemAccessResult
{
    MemLevel level = MemLevel::L1;
    int extra_cycles = 0; ///< latency beyond the L1 round trip
};

/** Timing/latency parameters of the hierarchy for one design. */
struct HierarchyTiming
{
    int l1_rt = 4;          ///< D-L1 round trip (== load-to-use)
    int l2_rt = 10;
    int l3_rt = 32;
    double dram_ns = 50.0;  ///< DRAM round trip after L3 (wall-clock)
    double frequency = 3.3e9;
    int noc_remote_cycles = 24; ///< remote-L2 transfer over the NoC
    int partner_l2_cycles = 12; ///< partner core's L2 (shared pair)

    int dramCycles() const
    {
        return static_cast<int>(dram_ns * 1e-9 * frequency + 0.5);
    }
};

/**
 * The private L1/L2 plus shared L3 hierarchy of one core, with an
 * optional shared-L2 partner (Figure 4) and a coarse directory for
 * data tagged as shared by the workload generator.
 */
class CacheHierarchy
{
  public:
    CacheHierarchy(const HierarchyTiming &timing, int core_id=0);

    /**
     * Data access; returns serving level and extra latency.
     * The L1-hit fast path is inline so the core's timing loop pays
     * no call on the (overwhelmingly common) hit; everything deeper
     * funnels through the out-of-line miss path.
     */
    MemAccessResult access(std::uint64_t addr, bool is_write)
    {
        if (l1d_.access(addr, is_write))
            return MemAccessResult{MemLevel::L1, 0};
        return accessMiss(addr, is_write);
    }

    /** Instruction fetch access. */
    MemAccessResult fetchAccess(std::uint64_t addr)
    {
        if (l1i_.access(addr, false))
            return MemAccessResult{MemLevel::L1, 0};
        return fetchMiss(addr);
    }

    /** Wire up the partner core whose L2 is one MIV-hop away. */
    void setPartner(CacheHierarchy *partner) { partner_ = partner; }

    /**
     * Probability hook for remote-L2 hits of shared lines that are
     * not resident locally.  Used when no directory is attached
     * (single-core studies); the multicore model attaches a real
     * MESI directory instead.
     */
    void setRemoteHitRate(double p) { remote_hit_rate_ = p; }

    /** Attach the multicore's MESI directory (overrides the coin). */
    void setDirectory(MesiDirectory *dir) { directory_ = dir; }

    /** The timing parameters this hierarchy charges. */
    const HierarchyTiming &timing() const { return timing_; }

    /**
     * True when the level serving every access is a pure function of
     * the access stream: no partner L2, no directory, and no
     * remote-hit coin.  This is the validity condition for replaying
     * pre-resolved memory levels (arch/replay_mem.hh) instead of
     * simulating the caches.
     */
    bool streamDetermined() const
    {
        return partner_ == nullptr && directory_ == nullptr &&
               remote_hit_rate_ == 0.0;
    }

    Cache &l1d() { return l1d_; }
    Cache &l1i() { return l1i_; }
    Cache &l2() { return l2_; }
    Cache &l3() { return l3_; }
    const Cache &l1d() const { return l1d_; }
    const Cache &l1i() const { return l1i_; }
    const Cache &l2() const { return l2_; }
    const Cache &l3() const { return l3_; }

    std::uint64_t dramAccesses() const { return dram_accesses_.value(); }

  private:
    HierarchyTiming timing_;
    int core_id_;
    Cache l1i_;
    Cache l1d_;
    Cache l2_;
    Cache l3_; ///< this core's slice of the shared L3
    CacheHierarchy *partner_ = nullptr;
    MesiDirectory *directory_ = nullptr;
    double remote_hit_rate_ = 0.0;
    /** Next-line prefetch depth into the L2 on demand misses. */
    int prefetch_depth_ = 2;
    std::uint64_t rng_state_;
    Counter dram_accesses_;

    bool coin(double p);
    MemAccessResult accessMiss(std::uint64_t addr, bool is_write);
    MemAccessResult fetchMiss(std::uint64_t addr);
};

} // namespace m3d

#endif // M3D_ARCH_CACHE_HH_
