/**
 * @file
 * Ring network-on-chip model (Table 9: ring with a MESI directory).
 *
 * In the M3D multicore, two cores fold on top of each other and share
 * one router stop (Figure 4), halving the number of stops and the
 * inter-router distance, which cuts the average network latency for
 * the same core count.
 */

#ifndef M3D_ARCH_NOC_HH_
#define M3D_ARCH_NOC_HH_

namespace m3d {

/** Bidirectional ring interconnect. */
class RingNoc
{
  public:
    /**
     * @param cores Cores on the ring.
     * @param shared_stops True when core pairs share a router stop.
     * @param router_cycles Per-hop router pipeline latency.
     * @param link_cycles Per-hop link traversal latency.
     */
    RingNoc(int cores, bool shared_stops, int router_cycles=2,
            int link_cycles=1);

    /** Number of router stops. */
    int stops() const { return stops_; }

    /** Average hop count between two distinct stops (one way). */
    double averageHops() const;

    /** Average one-way latency in cycles. */
    double averageLatency() const;

    /** Average round-trip latency in cycles (request + reply). */
    int remoteRoundTrip() const;

    /**
     * Average one-way latency including M/M/1 queueing at the
     * injection rate `flits_per_cycle` (aggregate, all stops).
     * Saturates gracefully near the ring's bisection capacity.
     */
    double contendedLatency(double flits_per_cycle) const;

    /** Aggregate flit capacity of the ring (flits/cycle). */
    double capacity() const;

  private:
    int stops_;
    int router_cycles_;
    int link_cycles_;
    bool shared_stops_;
};

} // namespace m3d

#endif // M3D_ARCH_NOC_HH_
