#include "arch/replay_mem.hh"

#include <algorithm>

#include "arch/core_model.hh"
#include "util/logging.hh"

namespace m3d {

namespace {

// Mirrors TraceBuffer's growth cap; reserving up front keeps chunk
// addresses stable for lock-free readers of resolved prefixes.
constexpr std::size_t kMaxChunks = 4096;

unsigned
levelCode(MemLevel level)
{
    switch (level) {
      case MemLevel::L1:
        return MemLevelTable::kL1;
      case MemLevel::L2:
        return MemLevelTable::kL2;
      case MemLevel::L3:
        return MemLevelTable::kL3;
      case MemLevel::Dram:
        return MemLevelTable::kDram;
      default:
        // Partner/remote levels need a partner or directory, which
        // the resolver hierarchy never has.
        M3D_FATAL("non-private level from the resolver hierarchy");
    }
}

} // namespace

MemLevelTable::MemLevelTable(std::shared_ptr<const TraceBuffer> buf)
    : buf_(std::move(buf)),
      // Same hot-code footprint the timing loop derives per run.
      code_bytes_(std::max<std::uint64_t>(
          static_cast<std::uint64_t>(
              buf_->profile().code_footprint_kb * 1024.0),
          4096)),
      resolver_(HierarchyTiming{})
{
    chunks_.reserve(kMaxChunks);
}

std::uint64_t
MemLevelTable::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return resolved_;
}

void
MemLevelTable::ensure(std::uint64_t n)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (n <= resolved_)
        return;
    M3D_ASSERT(buf_->size() >= n,
               "level resolution past the captured trace: ", n,
               " > ", buf_->size());
    while (resolved_ < n) {
        const std::uint64_t ci = resolved_ >> TraceBuffer::kChunkShift;
        const std::uint64_t chunk_base = ci << TraceBuffer::kChunkShift;
        if (ci == chunks_.size())
            chunks_.push_back(std::make_unique<LevelChunk>());
        const TraceBuffer::Chunk &src = buf_->chunk(ci);
        LevelChunk &dst = *chunks_[static_cast<std::size_t>(ci)];
        const std::uint64_t end =
            std::min(n - chunk_base, TraceBuffer::kChunkOps);
        for (std::uint64_t o = resolved_ - chunk_base; o < end; ++o) {
            const std::uint64_t i = chunk_base + o;
            const auto idx = static_cast<std::size_t>(o);
            std::uint8_t m = 0;
            // The exact access order of CoreModel::runImpl: the
            // fetch-block I-cache access first, then the op's own
            // data access.
            if (i % CoreModel::kFetchBlock == 0) {
                std::uint64_t off = fetch_pc_ + 64 - 0x400000;
                if (off >= code_bytes_)
                    off = off < code_bytes_ + 64 ? off - code_bytes_
                                                 : off % code_bytes_;
                fetch_pc_ = 0x400000 + off;
                m = static_cast<std::uint8_t>(
                    levelCode(resolver_.fetchAccess(fetch_pc_).level)
                    << kFetchShift);
            }
            const auto op = static_cast<OpClass>(src.op[idx]);
            if (op == OpClass::Load) {
                m |= static_cast<std::uint8_t>(levelCode(
                    resolver_.access(src.address[idx], false).level));
            } else if (op == OpClass::Store) {
                m |= static_cast<std::uint8_t>(levelCode(
                    resolver_.access(src.address[idx], true).level));
            }
            dst[idx] = m;
        }
        resolved_ = chunk_base + end;
    }
}

MemLevelRegistry &
MemLevelRegistry::global()
{
    static MemLevelRegistry registry;
    return registry;
}

const MemLevelTable &
MemLevelRegistry::acquire(std::shared_ptr<const TraceBuffer> buf,
                          std::uint64_t min_ops)
{
    MemLevelTable *table;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        std::unique_ptr<MemLevelTable> &slot = tables_[buf.get()];
        if (!slot)
            slot = std::make_unique<MemLevelTable>(std::move(buf));
        table = slot.get();
    }
    // Resolution runs outside the registry lock: other buffers'
    // replays proceed while this stream annotates.
    table->ensure(min_ops);
    return *table;
}

std::size_t
MemLevelRegistry::tableCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return tables_.size();
}

void
MemLevelRegistry::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    tables_.clear();
}

} // namespace m3d
