#include "arch/noc.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace m3d {

RingNoc::RingNoc(int cores, bool shared_stops, int router_cycles,
                 int link_cycles)
    : stops_(shared_stops ? std::max(cores / 2, 1) : cores),
      router_cycles_(router_cycles), link_cycles_(link_cycles),
      shared_stops_(shared_stops)
{
    M3D_ASSERT(cores >= 1);
}

double
RingNoc::averageHops() const
{
    if (stops_ <= 1)
        return 0.0;
    // Mean shortest-path distance on a bidirectional ring of n stops
    // is ~n/4.
    return static_cast<double>(stops_) / 4.0;
}

double
RingNoc::averageLatency() const
{
    // Folding cores halves the physical link length too; the link
    // cycle count stays the same (it is pipelined), so the benefit is
    // in the hop count.
    return averageHops() *
           static_cast<double>(router_cycles_ + link_cycles_);
}

int
RingNoc::remoteRoundTrip() const
{
    return static_cast<int>(std::lround(2.0 * averageLatency()));
}

double
RingNoc::capacity() const
{
    // Bidirectional ring: 2 links per stop, each carrying one flit
    // per cycle; average flit occupies averageHops() links.
    const double links = 2.0 * static_cast<double>(stops_);
    const double hops = std::max(averageHops(), 0.5);
    return links / hops;
}

double
RingNoc::contendedLatency(double flits_per_cycle) const
{
    M3D_ASSERT(flits_per_cycle >= 0.0);
    const double base = averageLatency();
    const double rho =
        std::min(flits_per_cycle / capacity(), 0.95);
    // M/M/1 waiting time on top of the uncontended traversal.
    return base * (1.0 + rho / (1.0 - rho));
}

} // namespace m3d
