/**
 * @file
 * MESI directory (Table 9: "Ring with MESI directory-based
 * protocol").
 *
 * The directory tracks, per shared cache line, which cores hold it
 * and whether one of them owns it dirty.  On a local miss to a
 * shared line it decides where the data comes from (a remote L2
 * forward or the L3/memory) and which copies must be invalidated on
 * a write.  The multicore model registers every core's hierarchy so
 * invalidations actually remove lines from the victims' caches -
 * coherence misses then emerge in the victims' timing.
 */

#ifndef M3D_ARCH_DIRECTORY_HH_
#define M3D_ARCH_DIRECTORY_HH_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/stats.hh"

namespace m3d {

class CacheHierarchy;

/** The directory's per-access decision. */
struct DirectoryOutcome
{
    bool forward = false;   ///< data supplied by a remote L2
    int invalidations = 0;  ///< sharers invalidated (writes)
    int forwarder = -1;     ///< core id supplying the line
};

/** Full-map MESI directory over the shared address region. */
class MesiDirectory
{
  public:
    /** @param cores Number of cores tracked (sharer bitmask width). */
    explicit MesiDirectory(int cores);

    /** Register core `id`'s hierarchy for invalidation callbacks. */
    void attach(int id, CacheHierarchy *hierarchy);

    /**
     * Handle core `id`'s miss on `addr`.
     * @param is_write Write access: invalidates all other sharers.
     */
    DirectoryOutcome access(int id, std::uint64_t addr, bool is_write);

    std::uint64_t forwards() const { return forwards_.value(); }
    std::uint64_t invalidations() const
    {
        return invalidations_.value();
    }

    /** Number of distinct lines currently tracked. */
    std::size_t trackedLines() const { return entries_.size(); }

  private:
    struct Entry
    {
        std::uint32_t sharers = 0; ///< bitmask of cores with a copy
        int owner = -1;            ///< core holding it Modified (-1:
                                   ///< clean/shared)
    };

    int cores_;
    std::vector<CacheHierarchy *> hierarchies_;
    std::unordered_map<std::uint64_t, Entry> entries_;
    Counter forwards_;
    Counter invalidations_;
};

} // namespace m3d

#endif // M3D_ARCH_DIRECTORY_HH_
