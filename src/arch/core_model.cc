#include "arch/core_model.hh"

#include <algorithm>

#include "util/logging.hh"

namespace m3d {

namespace {

// History window for dependency lookups; must exceed the maximum
// dependency distance the generator emits (512) and the ROB size.
constexpr std::size_t kHistSize = 1024;

// Instructions per fetch block (one I-cache access covers a block).
constexpr std::uint64_t kFetchBlock = 8;

// FU pool sizes (Table 9): ALU x4, IntMult/Div x2, LSU x2, FPU x2.
constexpr int kFuCount[] = {4, 2, 2, 2, 1};

// Rename-to-issue depth of the frontend pipe (cycles).
constexpr std::uint64_t kDispatchDepth = 2;

// Minimum cycles between DRAM bursts on the core's channel share
// (64B per burst at ~50 GB/s of per-core bandwidth at 3.3 GHz).
constexpr std::uint64_t kDramGapCycles = 4;

} // namespace

CoreModel::CoreModel(const CoreDesign &design, CacheHierarchy &hierarchy)
    : design_(design), hierarchy_(hierarchy)
{
    complete_hist_.assign(kHistSize, 0);
    issue_hist_.assign(kHistSize, 0);
    commit_hist_.assign(kHistSize, 0);
    load_commit_hist_.assign(
        static_cast<std::size_t>(design_.lq_entries), 0);
    store_commit_hist_.assign(
        static_cast<std::size_t>(design_.sq_entries), 0);
    for (int c = 0; c < kFuClasses; ++c)
        fu_free_[c].assign(static_cast<std::size_t>(kFuCount[c]), 0);
    // Power-of-two window, far wider than any in-flight time spread.
    issue_slots_.assign(1u << 16, {~0ull, 0});
}

int
CoreModel::execLatency(OpClass op) const
{
    switch (op) {
      case OpClass::IntAlu: return 1;
      case OpClass::Branch: return 1;
      case OpClass::IntMult: return 2;
      case OpClass::IntDiv: return 4;
      case OpClass::FpAdd: return 2;
      case OpClass::FpMult: return 4;
      case OpClass::FpDiv: return 8;
      case OpClass::Load: return design_.load_to_use;
      case OpClass::Store: return 1;
    }
    return 1;
}

int
CoreModel::fuIndex(OpClass op)
{
    switch (op) {
      case OpClass::IntAlu:
      case OpClass::Branch: return 0;
      case OpClass::IntMult:
      case OpClass::IntDiv: return 1;
      case OpClass::Load:
      case OpClass::Store: return 2;
      case OpClass::FpAdd:
      case OpClass::FpMult:
      case OpClass::FpDiv: return 3;
    }
    return 4;
}

std::uint64_t
CoreModel::reserveIssue(OpClass op, std::uint64_t ready)
{
    auto &units = fu_free_[fuIndex(op)];
    // Earliest-free unit of the class.
    std::size_t pick = 0;
    for (std::size_t u = 1; u < units.size(); ++u) {
        if (units[u] < units[pick])
            pick = u;
    }
    std::uint64_t issue = std::max(ready, units[pick]);

    // Claim an issue slot: at most issue_width ops per cycle.
    const std::uint64_t mask = issue_slots_.size() - 1;
    while (true) {
        auto &slot = issue_slots_[issue & mask];
        if (slot.first != issue) {
            slot.first = issue;
            slot.second = 0;
        }
        if (slot.second < design_.issue_width) {
            ++slot.second;
            break;
        }
        ++issue;
    }

    // FP divide blocks its unit for its full latency; everything
    // else is pipelined (occupancy one cycle).
    const std::uint64_t occupancy = op == OpClass::FpDiv ? 8 : 1;
    units[pick] = issue + occupancy;
    return issue;
}

SimResult
CoreModel::run(TraceGenerator &gen, std::uint64_t n)
{
    const std::uint64_t start_cycle = last_commit_;
    const std::uint64_t start_instr = seq_;
    const Activity start_activity = activity_;

    const auto rob = static_cast<std::uint64_t>(design_.rob_entries);
    const auto iq = static_cast<std::uint64_t>(design_.iq_entries);
    const auto width = static_cast<std::uint64_t>(design_.dispatch_width);

    std::uint64_t frontier = clock_;
    std::uint64_t in_cycle = fetch_group_;

    for (std::uint64_t k = 0; k < n; ++k) {
        MicroOp op = gen.next();
        const std::uint64_t i = seq_;

        // --- Fetch/dispatch time under bandwidth + occupancy
        // limits; attribute whichever constraint dominates.
        std::uint64_t d = frontier;
        std::uint64_t *stall_cause = nullptr;
        auto raise = [&d, &stall_cause](std::uint64_t t,
                                        std::uint64_t &counter) {
            if (t > d) {
                d = t;
                stall_cause = &counter;
            }
        };
        if (i >= rob) {
            raise(commit_hist_[(i - rob) % kHistSize],
                  activity_.stall_rob);
        }
        if (i >= iq) {
            raise(issue_hist_[(i - iq) % kHistSize],
                  activity_.stall_iq);
        }
        if (op.op == OpClass::Load) {
            const auto lq = static_cast<std::uint64_t>(
                design_.lq_entries);
            if (load_seq_ >= lq) {
                raise(load_commit_hist_[(load_seq_ - lq) % lq],
                      activity_.stall_lsq);
            }
        }
        if (op.op == OpClass::Store) {
            const auto sq = static_cast<std::uint64_t>(
                design_.sq_entries);
            if (store_seq_ >= sq) {
                raise(store_commit_hist_[(store_seq_ - sq) % sq],
                      activity_.stall_lsq);
            }
        }
        if (stall_cause)
            ++*stall_cause;

        // One I-cache access per fetch block; the instruction
        // stream loops within the application's hot code footprint.
        if (i % kFetchBlock == 0) {
            const auto code_bytes = static_cast<std::uint64_t>(
                gen.profile().code_footprint_kb * 1024.0);
            fetch_pc_ = 0x400000 +
                (fetch_pc_ + 64 - 0x400000) % std::max<std::uint64_t>(
                    code_bytes, 4096);
            MemAccessResult f = hierarchy_.fetchAccess(fetch_pc_);
            ++activity_.fetches;
            ++activity_.l1i_accesses;
            if (f.level != MemLevel::L1) {
                d += static_cast<std::uint64_t>(f.extra_cycles);
                ++activity_.stall_icache;
                if (f.level == MemLevel::Dram)
                    ++activity_.dram_accesses;
            }
        }

        // Advance the fetch frontier.
        if (d > frontier) {
            frontier = d;
            in_cycle = 1;
        } else {
            ++in_cycle;
            if (in_cycle >= width) {
                ++frontier;
                in_cycle = 0;
            }
        }

        // Complex instructions spend extra time in decode when the
        // complex decoder lives in the slow top layer.
        if (op.complex_decode) {
            ++activity_.complex_decodes;
            d += static_cast<std::uint64_t>(
                design_.complex_decode_extra);
        }

        // --- Operand readiness.
        std::uint64_t ready = d + kDispatchDepth;
        auto dep_ready = [this, i](std::uint32_t dist) -> std::uint64_t {
            if (dist == 0 || dist > i)
                return 0;
            return complete_hist_[(i - dist) % kHistSize];
        };
        ready = std::max(ready, dep_ready(op.src1_dist));
        ready = std::max(ready, dep_ready(op.src2_dist));

        // --- Issue: earliest cycle with a free FU and issue slot.
        const std::uint64_t issue = reserveIssue(op.op, ready);
        if (issue > ready)
            ++activity_.bound_fu;
        else if (ready > d + kDispatchDepth)
            ++activity_.bound_deps;

        // --- Execute.
        std::uint64_t lat =
            static_cast<std::uint64_t>(execLatency(op.op));
        switch (op.op) {
          case OpClass::Load: {
            MemAccessResult m = hierarchy_.access(op.address, false);
            ++activity_.loads;
            ++activity_.l1d_accesses;
            ++activity_.sq_searches; // store-queue forwarding check
            if (m.level == MemLevel::Dram) {
                // Bandwidth wall: bursts serialize on the channel.
                const std::uint64_t start =
                    std::max(issue, dram_free_);
                lat += start - issue;
                dram_free_ = start + kDramGapCycles;
            }
            if (m.level != MemLevel::L1) {
                lat += static_cast<std::uint64_t>(m.extra_cycles);
                ++activity_.l2_accesses;
                if (m.level == MemLevel::L3 || m.level == MemLevel::Dram)
                    ++activity_.l3_accesses;
                if (m.level == MemLevel::Dram)
                    ++activity_.dram_accesses;
                if (m.level == MemLevel::RemoteL2 ||
                    m.level == MemLevel::PartnerL2) {
                    ++activity_.noc_flits;
                }
            }
            break;
          }
          case OpClass::Store: {
            MemAccessResult m = hierarchy_.access(op.address, true);
            ++activity_.stores;
            ++activity_.l1d_accesses;
            ++activity_.lq_searches; // load-queue ordering check
            if (m.level != MemLevel::L1) {
                ++activity_.l2_accesses;
                if (m.level == MemLevel::Dram)
                    ++activity_.dram_accesses;
            }
            break;
          }
          case OpClass::IntAlu:
          case OpClass::Branch:
            ++activity_.alu_ops;
            break;
          case OpClass::IntMult:
          case OpClass::IntDiv:
            ++activity_.mul_div_ops;
            break;
          default:
            ++activity_.fp_ops;
            break;
        }
        const std::uint64_t complete = issue + lat;

        // --- Branch resolution: consult the tournament predictor
        // (Table 9) and, on a miss, squash and refill the frontend.
        if (op.op == OpClass::Branch) {
            ++activity_.bpt_lookups;
            ++activity_.btb_lookups;
            bool mispredicted = false;
            if (op.is_call) {
                predictor_.pushCall(op.address);
            } else if (op.is_return) {
                // A RAS hit predicts the return target perfectly; a
                // miss (deep recursion overflow) redirects like any
                // other misprediction.
                mispredicted = !predictor_.popReturn(op.address);
            } else {
                mispredicted =
                    predictor_.predictAndTrain(op.address, op.taken);
            }
            if (mispredicted) {
                ++activity_.mispredicts;
                const std::uint64_t redirect = complete +
                    static_cast<std::uint64_t>(
                        design_.mispredict_penalty);
                if (redirect > frontier) {
                    frontier = redirect;
                    in_cycle = 0;
                }
            }
        }

        // --- In-order commit under the commit width.
        std::uint64_t commit = std::max(complete + 1, last_commit_);
        const auto cw = static_cast<std::uint64_t>(design_.commit_width);
        if (i >= cw) {
            commit = std::max(commit,
                              commit_hist_[(i - cw) % kHistSize] + 1);
        }
        last_commit_ = commit;

        // --- Bookkeeping.
        complete_hist_[i % kHistSize] = complete;
        issue_hist_[i % kHistSize] = issue;
        commit_hist_[i % kHistSize] = commit;
        if (op.op == OpClass::Load) {
            load_commit_hist_[load_seq_ %
                              static_cast<std::uint64_t>(
                                  design_.lq_entries)] = commit;
            ++load_seq_;
        }
        if (op.op == OpClass::Store) {
            store_commit_hist_[store_seq_ %
                               static_cast<std::uint64_t>(
                                   design_.sq_entries)] = commit;
            ++store_seq_;
        }

        ++activity_.decodes;
        ++activity_.dispatches;
        activity_.rat_reads += 2;
        ++activity_.rat_writes;
        ++activity_.iq_writes;
        ++activity_.iq_wakeups;
        ++activity_.issues;
        activity_.rf_reads += 2;
        ++activity_.rf_writes;
        ++activity_.instructions;
        ++seq_;
    }

    clock_ = frontier;
    fetch_group_ = in_cycle;
    activity_.cycles = last_commit_;

    SimResult res;
    res.instructions = seq_ - start_instr;
    res.cycles = last_commit_ - start_cycle;
    res.frequency = design_.frequency;
    // Report only this call's window so that warmup activity never
    // leaks into measured energy.
    res.activity = Activity::windowed(activity_, start_activity);
    res.activity.cycles = res.cycles;
    return res;
}

} // namespace m3d
