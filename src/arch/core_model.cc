#include "arch/core_model.hh"

#include <algorithm>

#include "arch/replay_mem.hh"
#include "util/logging.hh"

namespace m3d {

namespace {

// The microarchitectural constants live in arch/core_timing.hh,
// shared verbatim with the batched replay kernel (whose contract is
// bit-identity with this loop).
using timing::kDispatchDepth;
using timing::kDramGapCycles;
using timing::kFreeSlot;
using timing::kFuCount;
using timing::kHistSize;
using timing::kIssueWindowSlack;
using timing::nextPow2;

// Instructions per fetch block: CoreModel::kFetchBlock, shortened
// for the loop body below.
constexpr std::uint64_t kFetchBlock = CoreModel::kFetchBlock;

// Field bundle the shared timing loop consumes per op; the replay
// stream fills only what that path uses (no predictor inputs).
struct StreamOp
{
    OpClass op;
    std::uint32_t src1_dist;
    std::uint32_t src2_dist;
    std::uint64_t address;
    bool complex_decode;
    bool taken;
    bool is_call;
    bool is_return;
    bool resolved_mispredict;
    /** Pre-resolved level codes (MemLevelTable packing); only the
     * resolved-memory stream fills it. */
    std::uint8_t mem;
};

/** Op source that draws from the generator (trains the predictor). */
struct GeneratorStream
{
    static constexpr bool kReplay = false;
    static constexpr bool kResolvedMem = false;

    TraceGenerator &gen;

    const WorkloadProfile &profile() const { return gen.profile(); }

    StreamOp
    next()
    {
        const MicroOp m = gen.next();
        StreamOp op;
        op.op = m.op;
        op.src1_dist = m.src1_dist;
        op.src2_dist = m.src2_dist;
        op.address = m.address;
        op.complex_decode = m.complex_decode;
        op.taken = m.taken;
        op.is_call = m.is_call;
        op.is_return = m.is_return;
        op.resolved_mispredict = false;
        return op;
    }
};

/** Op source that walks a pre-resolved TraceBuffer view by view
 * (TraceBuffer::ChunkRange), simulating the caches live (multicore
 * replay, where the serving level depends on the design via directory
 * and partners). */
struct ReplayStream
{
    static constexpr bool kReplay = true;
    static constexpr bool kResolvedMem = false;

    const TraceBuffer &buf;
    TraceBuffer::ChunkRange::iterator it;
    TraceBuffer::ChunkView view{};
    std::uint32_t off = 0;

    ReplayStream(const TraceBuffer &b, std::uint64_t pos,
                 std::uint64_t n)
        : buf(b), it(b.range(pos, n).begin())
    {
    }

    const WorkloadProfile &profile() const { return buf.profile(); }

    StreamOp
    next()
    {
        if (view.chunk == nullptr || off >= view.end) {
            view = *it;
            ++it;
            off = view.begin;
        }
        const TraceBuffer::Chunk *chunk = view.chunk;
        const auto o = static_cast<std::size_t>(off);
        ++off;
        const std::uint8_t flags = chunk->flags[o];
        StreamOp op;
        op.op = static_cast<OpClass>(chunk->op[o]);
        op.src1_dist = chunk->src1[o];
        op.src2_dist = chunk->src2[o];
        op.address = chunk->address[o];
        op.complex_decode =
            (flags & TraceBuffer::kFlagComplex) != 0;
        op.taken = false;
        op.is_call = false;
        op.is_return = false;
        op.resolved_mispredict =
            (flags & TraceBuffer::kFlagMispredict) != 0;
        return op;
    }
};

/** The search fast path: trace columns plus pre-resolved memory
 * levels (arch/replay_mem.hh) - no cache is touched per design, and
 * the address column is never even read. */
struct ResolvedStream
{
    static constexpr bool kReplay = true;
    static constexpr bool kResolvedMem = true;

    const TraceBuffer &buf;
    const MemLevelTable &mem;
    TraceBuffer::ChunkRange::iterator it;
    TraceBuffer::ChunkView view{};
    const std::uint8_t *mem_chunk = nullptr;
    std::uint32_t off = 0;

    ResolvedStream(const TraceBuffer &b, const MemLevelTable &m,
                   std::uint64_t pos, std::uint64_t n)
        : buf(b), mem(m), it(b.range(pos, n).begin())
    {
    }

    const WorkloadProfile &profile() const { return buf.profile(); }

    StreamOp
    next()
    {
        if (view.chunk == nullptr || off >= view.end) {
            view = *it;
            ++it;
            mem_chunk = mem.chunk(view.index());
            off = view.begin;
        }
        const TraceBuffer::Chunk *chunk = view.chunk;
        const auto o = static_cast<std::size_t>(off);
        ++off;
        const std::uint8_t flags = chunk->flags[o];
        StreamOp op;
        op.op = static_cast<OpClass>(chunk->op[o]);
        op.src1_dist = chunk->src1[o];
        op.src2_dist = chunk->src2[o];
        op.address = 0; // memory levels are pre-resolved
        op.complex_decode =
            (flags & TraceBuffer::kFlagComplex) != 0;
        op.taken = false;
        op.is_call = false;
        op.is_return = false;
        op.resolved_mispredict =
            (flags & TraceBuffer::kFlagMispredict) != 0;
        op.mem = mem_chunk[o];
        return op;
    }
};

} // namespace

CoreModel::CoreModel(const CoreDesign &design, CacheHierarchy &hierarchy)
    : design_(design), hierarchy_(hierarchy)
{
    complete_hist_.assign(kHistSize, 0);
    issue_hist_.assign(kHistSize, 0);
    commit_hist_.assign(kHistSize, 0);
    load_commit_hist_.assign(
        static_cast<std::size_t>(design_.lq_entries), 0);
    store_commit_hist_.assign(
        static_cast<std::size_t>(design_.sq_entries), 0);
    fu_free_.fill(~0ull); // sentinel: absent units are never free
    for (int c = 0; c < kFuClasses; ++c) {
        for (int u = 0; u < kFuCount[c]; ++u)
            fu_free_[static_cast<std::size_t>(
                c * kMaxFuPerClass + u)] = 0;
    }

    // Table 9 latencies, with the design's load-to-use path.
    exec_latency_ = {
        1,                  // IntAlu
        2,                  // IntMult
        4,                  // IntDiv
        design_.load_to_use, // Load
        1,                  // Store
        2,                  // FpAdd
        4,                  // FpMult
        8,                  // FpDiv
        1,                  // Branch
    };

    M3D_ASSERT(design_.issue_width <
                   (1 << kIssueCountBits),
               "issue width overflows the packed slot count field");
    const std::uint64_t window = nextPow2(
        static_cast<std::uint64_t>(design_.rob_entries) +
        kIssueWindowSlack);
    issue_slots_.assign(static_cast<std::size_t>(window), kFreeSlot);
}

int
CoreModel::fuIndex(OpClass op)
{
    return timing::fuIndex(op);
}

inline std::uint64_t
CoreModel::reserveIssue(OpClass op, std::uint64_t ready,
                        std::uint64_t min_live)
{
    // Earliest-free unit of the class: a constant-width row scan
    // (absent units hold the never-free sentinel, see fu_free_).
    std::uint64_t *const units =
        fu_free_.data() + fuIndex(op) * kMaxFuPerClass;
    std::size_t pick = 0;
    for (std::size_t u = 1; u < kMaxFuPerClass; ++u) {
        if (units[u] < units[pick])
            pick = u;
    }
    std::uint64_t issue = std::max(ready, units[pick]);

    // Claim an issue slot: at most issue_width ops per cycle.  The
    // slot word packs (cycle << kIssueCountBits) | issued_count.
    const std::uint64_t mask = issue_slots_.size() - 1;
    const auto iw = static_cast<std::uint64_t>(design_.issue_width);
    while (true) {
        std::uint64_t &slot = issue_slots_[issue & mask];
        std::uint64_t word = slot;
        if ((word >> kIssueCountBits) != issue) {
            // Recycling an entry is safe only if its cycle can never
            // be issued at again (every later op issues at or after
            // min_live); a live eviction would silently break the
            // issue-width limit for that cycle.
            M3D_ASSERT(word == kFreeSlot ||
                           (word >> kIssueCountBits) < min_live,
                       "issue window too small: evicting live cycle");
            word = issue << kIssueCountBits;
        }
        if ((word & ((1ull << kIssueCountBits) - 1)) < iw) {
            slot = word + 1;
            break;
        }
        ++issue;
    }

    // FP divide blocks its unit for its full latency; everything
    // else is pipelined (occupancy one cycle).
    const std::uint64_t occupancy =
        op == OpClass::FpDiv
            ? static_cast<std::uint64_t>(execLatency(OpClass::FpDiv))
            : 1;
    units[pick] = issue + occupancy;
    return issue;
}

template <typename Stream>
SimResult
CoreModel::runImpl(Stream &stream, std::uint64_t n)
{
    const std::uint64_t start_cycle = last_commit_;
    const std::uint64_t start_instr = seq_;
    const Activity start_activity = activity_;

    const auto rob = static_cast<std::uint64_t>(design_.rob_entries);
    const auto iq = static_cast<std::uint64_t>(design_.iq_entries);
    const auto width = static_cast<std::uint64_t>(design_.dispatch_width);
    const auto lq = static_cast<std::uint64_t>(design_.lq_entries);
    const auto sq = static_cast<std::uint64_t>(design_.sq_entries);
    // The hot code footprint is a per-run constant of the profile.
    const std::uint64_t code_bytes = std::max<std::uint64_t>(
        static_cast<std::uint64_t>(
            stream.profile().code_footprint_kb * 1024.0),
        4096);

    // Per-level latency charges for pre-resolved memory levels,
    // indexed by MemLevelTable code.  The int arithmetic and the
    // cast at the charge site mirror the live hierarchy path exactly.
    int data_extra[4] = {0, 0, 0, 0};
    int fetch_extra[4] = {0, 0, 0, 0};
    if constexpr (Stream::kResolvedMem) {
        const HierarchyTiming &t = hierarchy_.timing();
        data_extra[MemLevelTable::kL2] = t.l2_rt - t.l1_rt;
        data_extra[MemLevelTable::kL3] = t.l3_rt - t.l1_rt;
        data_extra[MemLevelTable::kDram] =
            t.l3_rt - t.l1_rt + t.dramCycles();
        fetch_extra[MemLevelTable::kL2] = t.l2_rt;
        fetch_extra[MemLevelTable::kL3] = t.l3_rt;
        fetch_extra[MemLevelTable::kDram] = t.l3_rt + t.dramCycles();
    }

    // Per-op state lives in locals for the duration of the loop (the
    // hierarchy calls are opaque, so member accesses would reload).
    std::uint64_t frontier = clock_;
    std::uint64_t in_cycle = fetch_group_;
    std::uint64_t last_commit = last_commit_;
    std::uint64_t dram_free = dram_free_;
    std::uint64_t fetch_pc = fetch_pc_;
    std::uint64_t load_seq = load_seq_;
    std::uint64_t store_seq = store_seq_;
    // LQ/SQ ring heads: both the occupancy probe at dispatch
    // ((load_seq - lq) % lq) and the commit write (load_seq % lq)
    // address the same slot, advanced by one per load - so a single
    // incrementally wrapped index replaces the per-op divisions.
    std::uint64_t load_head = load_seq % lq;
    std::uint64_t store_head = store_seq % sq;
    std::uint64_t *const complete_hist = complete_hist_.data();
    std::uint64_t *const issue_hist = issue_hist_.data();
    std::uint64_t *const commit_hist = commit_hist_.data();
    std::uint64_t *const load_commit_hist = load_commit_hist_.data();
    std::uint64_t *const store_commit_hist =
        store_commit_hist_.data();

    // Event counters accumulate in locals and fold into activity_
    // once at the end: the hierarchy calls are opaque, so Counter
    // members would be re-loaded and re-stored on every event.
    std::uint64_t fetch_blocks = 0, stall_icache = 0;
    // Stall attributions, indexed none/rob/iq/lsq so the per-op
    // bookkeeping is an indexed add instead of an escaping pointer.
    std::uint64_t stall_counts[4] = {0, 0, 0, 0};
    std::uint64_t complex_decodes = 0, bound_fu = 0, bound_deps = 0;
    std::uint64_t loads = 0, stores = 0, alu_ops = 0;
    std::uint64_t mul_div_ops = 0, fp_ops = 0;
    std::uint64_t branches = 0, mispredicts = 0;
    std::uint64_t l2_accesses = 0, l3_accesses = 0;
    std::uint64_t dram_accesses = 0, noc_flits = 0;

    for (std::uint64_t k = 0; k < n; ++k) {
        const StreamOp op = stream.next();
        const std::uint64_t i = start_instr + k;

        // --- Fetch/dispatch time under bandwidth + occupancy
        // limits; attribute whichever constraint dominates.
        std::uint64_t d = frontier;
        int stall_cause = 0;
        auto raise = [&d, &stall_cause](std::uint64_t t, int cause) {
            if (t > d) {
                d = t;
                stall_cause = cause;
            }
        };
        if (i >= rob) {
            raise(commit_hist[(i - rob) % kHistSize], 1);
        }
        if (i >= iq) {
            raise(issue_hist[(i - iq) % kHistSize], 2);
        }
        if (op.op == OpClass::Load) {
            if (load_seq >= lq) {
                raise(load_commit_hist[load_head], 3);
            }
        }
        if (op.op == OpClass::Store) {
            if (store_seq >= sq) {
                raise(store_commit_hist[store_head], 3);
            }
        }
        if (stall_cause)
            ++stall_counts[stall_cause];

        // One I-cache access per fetch block; the instruction
        // stream loops within the application's hot code footprint.
        if (i % kFetchBlock == 0) {
            ++fetch_blocks;
            if constexpr (Stream::kResolvedMem) {
                const unsigned f = (op.mem >> MemLevelTable::kFetchShift)
                    & MemLevelTable::kLevelMask;
                if (f != MemLevelTable::kL1) {
                    d += static_cast<std::uint64_t>(fetch_extra[f]);
                    ++stall_icache;
                    if (f == MemLevelTable::kDram)
                        ++dram_accesses;
                }
            } else {
                // The PC advances by one line per block, so the wrap
                // is a compare in the common case (the modulo only
                // fires when a caller left fetch_pc outside the
                // footprint, e.g. after a profile change between
                // runs).
                std::uint64_t off = fetch_pc + 64 - 0x400000;
                if (off >= code_bytes)
                    off = off < code_bytes + 64 ? off - code_bytes
                                                : off % code_bytes;
                fetch_pc = 0x400000 + off;
                MemAccessResult f = hierarchy_.fetchAccess(fetch_pc);
                if (f.level != MemLevel::L1) {
                    d += static_cast<std::uint64_t>(f.extra_cycles);
                    ++stall_icache;
                    if (f.level == MemLevel::Dram)
                        ++dram_accesses;
                }
            }
        }

        // Advance the fetch frontier.
        if (d > frontier) {
            frontier = d;
            in_cycle = 1;
        } else {
            ++in_cycle;
            if (in_cycle >= width) {
                ++frontier;
                in_cycle = 0;
            }
        }

        // Complex instructions spend extra time in decode when the
        // complex decoder lives in the slow top layer.
        if (op.complex_decode) {
            ++complex_decodes;
            d += static_cast<std::uint64_t>(
                design_.complex_decode_extra);
        }

        // --- Operand readiness.
        std::uint64_t ready = d + kDispatchDepth;
        auto dep_ready = [complete_hist,
                          i](std::uint32_t dist) -> std::uint64_t {
            if (dist == 0 || dist > i)
                return 0;
            return complete_hist[(i - dist) % kHistSize];
        };
        ready = std::max(ready, dep_ready(op.src1_dist));
        ready = std::max(ready, dep_ready(op.src2_dist));

        // --- Issue: earliest cycle with a free FU and issue slot.
        const std::uint64_t issue =
            reserveIssue(op.op, ready, frontier + kDispatchDepth);
        if (issue > ready)
            ++bound_fu;
        else if (ready > d + kDispatchDepth)
            ++bound_deps;

        // --- Execute.
        std::uint64_t lat =
            static_cast<std::uint64_t>(execLatency(op.op));
        switch (op.op) {
          case OpClass::Load: {
            ++loads;
            if constexpr (Stream::kResolvedMem) {
                const unsigned c = op.mem & MemLevelTable::kLevelMask;
                if (c == MemLevelTable::kDram) {
                    // Bandwidth wall: bursts serialize on the channel.
                    const std::uint64_t start =
                        std::max(issue, dram_free);
                    lat += start - issue;
                    dram_free = start + kDramGapCycles;
                    ++dram_accesses;
                }
                if (c != MemLevelTable::kL1) {
                    lat += static_cast<std::uint64_t>(data_extra[c]);
                    ++l2_accesses;
                    if (c >= MemLevelTable::kL3)
                        ++l3_accesses;
                    // Partner/remote levels cannot occur on a
                    // stream-determined hierarchy, so noc_flits
                    // stays untouched - as it would live.
                }
            } else {
                MemAccessResult m =
                    hierarchy_.access(op.address, false);
                if (m.level == MemLevel::Dram) {
                    // Bandwidth wall: bursts serialize on the channel.
                    const std::uint64_t start =
                        std::max(issue, dram_free);
                    lat += start - issue;
                    dram_free = start + kDramGapCycles;
                }
                if (m.level != MemLevel::L1) {
                    lat += static_cast<std::uint64_t>(m.extra_cycles);
                    ++l2_accesses;
                    if (m.level == MemLevel::L3 ||
                        m.level == MemLevel::Dram)
                        ++l3_accesses;
                    if (m.level == MemLevel::Dram)
                        ++dram_accesses;
                    if (m.level == MemLevel::RemoteL2 ||
                        m.level == MemLevel::PartnerL2) {
                        ++noc_flits;
                    }
                }
            }
            break;
          }
          case OpClass::Store: {
            ++stores;
            if constexpr (Stream::kResolvedMem) {
                const unsigned c = op.mem & MemLevelTable::kLevelMask;
                if (c != MemLevelTable::kL1) {
                    ++l2_accesses;
                    if (c == MemLevelTable::kDram)
                        ++dram_accesses;
                }
            } else {
                MemAccessResult m =
                    hierarchy_.access(op.address, true);
                if (m.level != MemLevel::L1) {
                    ++l2_accesses;
                    if (m.level == MemLevel::Dram)
                        ++dram_accesses;
                }
            }
            break;
          }
          case OpClass::IntAlu:
          case OpClass::Branch:
            ++alu_ops;
            break;
          case OpClass::IntMult:
          case OpClass::IntDiv:
            ++mul_div_ops;
            break;
          default:
            ++fp_ops;
            break;
        }
        const std::uint64_t complete = issue + lat;

        // --- Branch resolution: the tournament predictor's verdict
        // (Table 9) - live, or pre-resolved in the trace buffer -
        // and, on a miss, squash and refill the frontend.
        if (op.op == OpClass::Branch) {
            ++branches;
            bool mispredicted = false;
            if constexpr (Stream::kReplay) {
                mispredicted = op.resolved_mispredict;
            } else {
                if (op.is_call) {
                    predictor_.pushCall(op.address);
                } else if (op.is_return) {
                    // A RAS hit predicts the return target perfectly;
                    // a miss (deep recursion overflow) redirects like
                    // any other misprediction.
                    mispredicted = !predictor_.popReturn(op.address);
                } else {
                    mispredicted = predictor_.predictAndTrain(
                        op.address, op.taken);
                }
            }
            if (mispredicted) {
                ++mispredicts;
                const std::uint64_t redirect = complete +
                    static_cast<std::uint64_t>(
                        design_.mispredict_penalty);
                if (redirect > frontier) {
                    frontier = redirect;
                    in_cycle = 0;
                }
            }
        }

        // --- In-order commit under the commit width.
        std::uint64_t commit = std::max(complete + 1, last_commit);
        const auto cw = static_cast<std::uint64_t>(design_.commit_width);
        if (i >= cw) {
            commit = std::max(commit,
                              commit_hist[(i - cw) % kHistSize] + 1);
        }
        last_commit = commit;

        // --- Bookkeeping.
        complete_hist[i % kHistSize] = complete;
        issue_hist[i % kHistSize] = issue;
        commit_hist[i % kHistSize] = commit;
        if (op.op == OpClass::Load) {
            load_commit_hist[load_head] = commit;
            ++load_seq;
            if (++load_head == lq)
                load_head = 0;
        }
        if (op.op == OpClass::Store) {
            store_commit_hist[store_head] = commit;
            ++store_seq;
            if (++store_head == sq)
                store_head = 0;
        }
    }

    // Fold the local event counters back into the shared record.
    activity_.fetches += fetch_blocks;
    activity_.l1i_accesses += fetch_blocks;
    activity_.stall_icache += stall_icache;
    activity_.stall_rob += stall_counts[1];
    activity_.stall_iq += stall_counts[2];
    activity_.stall_lsq += stall_counts[3];
    activity_.complex_decodes += complex_decodes;
    activity_.bound_fu += bound_fu;
    activity_.bound_deps += bound_deps;
    activity_.loads += loads;
    activity_.stores += stores;
    activity_.l1d_accesses += loads + stores;
    activity_.sq_searches += loads;  // store-queue forwarding checks
    activity_.lq_searches += stores; // load-queue ordering checks
    activity_.alu_ops += alu_ops;
    activity_.mul_div_ops += mul_div_ops;
    activity_.fp_ops += fp_ops;
    activity_.bpt_lookups += branches;
    activity_.btb_lookups += branches;
    activity_.mispredicts += mispredicts;
    activity_.l2_accesses += l2_accesses;
    activity_.l3_accesses += l3_accesses;
    activity_.dram_accesses += dram_accesses;
    activity_.noc_flits += noc_flits;

    // Per-op constants of the pipeline front/backend accumulate once
    // per run instead of once per op.
    activity_.decodes += n;
    activity_.dispatches += n;
    activity_.rat_reads += 2 * n;
    activity_.rat_writes += n;
    activity_.iq_writes += n;
    activity_.iq_wakeups += n;
    activity_.issues += n;
    activity_.rf_reads += 2 * n;
    activity_.rf_writes += n;
    activity_.instructions += n;

    seq_ = start_instr + n;
    load_seq_ = load_seq;
    store_seq_ = store_seq;
    last_commit_ = last_commit;
    dram_free_ = dram_free;
    fetch_pc_ = fetch_pc;
    clock_ = frontier;
    fetch_group_ = in_cycle;
    activity_.cycles = last_commit;

    SimResult res;
    res.instructions = seq_ - start_instr;
    res.cycles = last_commit_ - start_cycle;
    res.frequency = design_.frequency;
    // Report only this call's window so that warmup activity never
    // leaks into measured energy.
    res.activity = Activity::windowed(activity_, start_activity);
    res.activity.cycles = res.cycles;
    return res;
}

SimResult
CoreModel::run(OpSource source, std::uint64_t n)
{
    if (!source.replay()) {
        GeneratorStream stream{*source.generator()};
        return runImpl(stream, n);
    }

    TraceCursor &cursor = *source.cursor();
    M3D_ASSERT(cursor.valid(), "replay needs a bound cursor");
    M3D_ASSERT(cursor.position() + n <= cursor.buffer().size(),
               "trace buffer shorter than the requested replay");
    SimResult res;
    if (hierarchy_.streamDetermined()) {
        // Single-core fast path: the serving level of every access
        // is a pure function of the stream, so replay charges
        // pre-resolved levels instead of simulating the caches.
        const MemLevelTable &mem = MemLevelRegistry::global().acquire(
            cursor.share(), cursor.position() + n);
        ResolvedStream stream(cursor.buffer(), mem,
                              cursor.position(), n);
        res = runImpl(stream, n);
    } else {
        // Multicore: directory and partner traffic make the level
        // design-dependent - simulate the hierarchy live.
        ReplayStream stream(cursor.buffer(), cursor.position(), n);
        res = runImpl(stream, n);
    }
    cursor.advance(n);
    return res;
}

} // namespace m3d
