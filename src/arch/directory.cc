#include "arch/directory.hh"

#include "arch/cache.hh"
#include "util/logging.hh"

namespace m3d {

namespace {

constexpr std::uint64_t kLineBytes = 64;

} // namespace

MesiDirectory::MesiDirectory(int cores)
    : cores_(cores),
      hierarchies_(static_cast<std::size_t>(cores), nullptr)
{
    M3D_ASSERT(cores >= 1 && cores <= 32,
               "sharer bitmask supports up to 32 cores");
}

void
MesiDirectory::attach(int id, CacheHierarchy *hierarchy)
{
    M3D_ASSERT(id >= 0 && id < cores_);
    hierarchies_[static_cast<std::size_t>(id)] = hierarchy;
}

DirectoryOutcome
MesiDirectory::access(int id, std::uint64_t addr, bool is_write)
{
    M3D_ASSERT(id >= 0 && id < cores_);
    const std::uint64_t line = addr / kLineBytes;
    Entry &e = entries_[line];
    DirectoryOutcome out;

    const std::uint32_t me = 1u << id;
    const std::uint32_t others = e.sharers & ~me;

    if (others != 0) {
        // Some other core has the line: the nearest sharer (or the
        // dirty owner) forwards it.
        out.forward = true;
        out.forwarder = e.owner >= 0 && e.owner != id
            ? e.owner
            : static_cast<int>(
                  // lowest set bit that is not us
                  __builtin_ctz(others));
        ++forwards_;
    }

    if (is_write) {
        // Invalidate every other copy (MESI: write needs exclusivity).
        for (int c = 0; c < cores_; ++c) {
            if (c == id || ((others >> c) & 1u) == 0)
                continue;
            CacheHierarchy *h =
                hierarchies_[static_cast<std::size_t>(c)];
            if (h) {
                h->l1d().invalidate(addr);
                h->l2().invalidate(addr);
            }
            ++out.invalidations;
            ++invalidations_;
        }
        e.sharers = me;
        e.owner = id;
    } else {
        e.sharers |= me;
        if (e.owner >= 0 && e.owner != id) {
            // Previous owner's copy is demoted to Shared (it keeps
            // the data; the line is now clean everywhere).
            e.owner = -1;
        }
    }
    return out;
}

} // namespace m3d
