/**
 * @file
 * Batched multi-design replay: the op-major inversion of the replay
 * loop.
 *
 * CoreModel::run walks the whole trace once per design.  For the
 * stream-determined single-core replay path (shared TraceBuffer plus
 * pre-resolved MemLevelTable, see arch/replay_mem.hh) nothing a
 * design evaluation computes feeds back into the stream: the op
 * columns and memory levels are read-only, and every per-op quantity
 * either depends only on the stream (op class, flags, serving level,
 * dependency rows) or only on one design's private state.  The loop
 * order is therefore free - and BatchReplay inverts it, streaming
 * each trace chunk ONCE against N designs at a time (design-major
 * blocking, kLaneWidth designs per block) so the op columns stay hot
 * in L1/L2 and all stream-dependent branches become perfectly
 * predicted shared work.
 *
 * Per-op latency charging is vectorized across the design lanes with
 * AVX-512 (8 x 64-bit cycle arithmetic, masked gathers/scatters) or
 * AVX2 (4 x 64-bit; the 4-entry per-level charge tables and the
 * flags column decode into uniform per-op work, and the
 * lane-dependent occupancy/readiness maxima become branchless
 * compare/blend chains).  A scalar lane path covers non-x86 hosts,
 * ragged blocks, and the `M3D_NO_SIMD` escape hatch - and is
 * **bit-identical** to the vector path by construction: both evaluate
 * the same integer recurrences from arch/core_timing.hh in the same
 * per-lane order, and SimResult/Activity are bit-identical to
 * CoreModel::run on the same stream window.
 *
 * Consumers: power/sim_harness.hh wraps one (designs, app, budget)
 * group into AppRuns; engine::Evaluator::submit groups and fans
 * blocks across its pool.
 */

#ifndef M3D_ARCH_BATCH_REPLAY_HH_
#define M3D_ARCH_BATCH_REPLAY_HH_

#include <cstdint>
#include <memory>
#include <vector>

#include "arch/core_model.hh"
#include "core/design.hh"
#include "workload/trace_buffer.hh"

namespace m3d {

/** Knobs of one batched replay. */
struct BatchReplayOptions
{
    /**
     * Force the scalar lane path even where AVX2 is available.  The
     * vector path is bit-identical, so this is a test/benchmark knob,
     * never a correctness one.  The `M3D_NO_SIMD` environment
     * variable (util/simd.hh) forces the same thing process-wide.
     */
    bool force_scalar = false;
};

/**
 * Replays one shared pre-resolved trace against N designs at once.
 *
 * Each design runs the standard single-core replay hierarchy derived
 * from it (l1_rt = load_to_use at the design's frequency), exactly
 * like runSingleCore's replay path; results telescope across run()
 * calls exactly like consecutive CoreModel::run calls on one cursor
 * that started at op 0.
 */
class BatchReplay
{
  public:
    /** Designs per AVX2 SIMD block: the 256-bit lane count of 64-bit
     * cycle arithmetic.  Wider batches run as consecutive blocks of
     * the preferred width plus one ragged tail block. */
    static constexpr int kLaneWidth = 4;

    /** Designs per AVX-512 SIMD block.  The per-op computation is a
     * latency chain (each op's dispatch time feeds the next), so
     * wider blocks amortize the chain over more designs - the 8-lane
     * path is the fastest where the host supports it. */
    static constexpr int kLaneWidth512 = 8;

    /** The block width construction uses on this host under
     * `options`: kLaneWidth512 with AVX-512, else kLaneWidth (both
     * the AVX2 and scalar paths; scalar blocks share the layout). */
    static int preferredWidth(const BatchReplayOptions &options = {});

    /**
     * @param designs The lanes, in result order.
     * @param buf The shared trace (must outlive the batch; must be
     *   ensure()d out to every op a run() call will consume).
     */
    BatchReplay(std::vector<CoreDesign> designs,
                std::shared_ptr<const TraceBuffer> buf,
                BatchReplayOptions options = {});
    ~BatchReplay();

    BatchReplay(const BatchReplay &) = delete;
    BatchReplay &operator=(const BatchReplay &) = delete;

    /**
     * Replay the next `n` ops on every design; result `k` is
     * bit-identical to the corresponding CoreModel::run window of
     * design `k`.
     */
    std::vector<SimResult> run(std::uint64_t n);

    /** Ops consumed so far (the shared cursor position). */
    std::uint64_t position() const { return pos_; }

    /** Number of design lanes. */
    int width() const { return static_cast<int>(designs_.size()); }

    /** True when this batch executes the AVX2 lane path for its
     * full-width blocks. */
    bool vectorized() const;

  private:
    class Block;

    std::vector<CoreDesign> designs_;
    std::shared_ptr<const TraceBuffer> buf_;
    BatchReplayOptions options_;
    std::vector<std::unique_ptr<Block>> blocks_;
    std::uint64_t pos_ = 0;
};

} // namespace m3d

#endif // M3D_ARCH_BATCH_REPLAY_HH_
