#include "sram/array3d.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"
#include "util/units.hh"

namespace m3d {

using namespace units;

std::string
toString(PartitionKind kind)
{
    switch (kind) {
      case PartitionKind::None: return "2D";
      case PartitionKind::Bit: return "BP";
      case PartitionKind::Word: return "WP";
      case PartitionKind::Port: return "PP";
    }
    return "?";
}

PartitionSpec
PartitionSpec::none()
{
    return PartitionSpec{};
}

PartitionSpec
PartitionSpec::bit(double bottom_share, double top_access_scale,
                   double top_cell_scale)
{
    PartitionSpec s;
    s.kind = PartitionKind::Bit;
    s.bottom_share = bottom_share;
    s.top_access_scale = top_access_scale;
    s.top_cell_scale = top_cell_scale;
    return s;
}

PartitionSpec
PartitionSpec::word(double bottom_share, double top_access_scale,
                    double top_cell_scale)
{
    PartitionSpec s = bit(bottom_share, top_access_scale, top_cell_scale);
    s.kind = PartitionKind::Word;
    return s;
}

PartitionSpec
PartitionSpec::port(int bottom_ports, double top_access_scale)
{
    PartitionSpec s;
    s.kind = PartitionKind::Port;
    s.bottom_ports = bottom_ports;
    s.top_access_scale = top_access_scale;
    return s;
}

double
Array3D::viaFootprint(double count) const
{
    const ViaParams &via = model_.tech().via;
    double area = count * via.areaWithKoz();
    // Section 6: for TSVs "we also perform further layout
    // optimizations by considering different via placement schemes to
    // minimize the overhead" - clustering shares KOZ between
    // neighbouring vias and roughly halves the effective footprint.
    if (!via.isMiv())
        area *= 0.5;
    return area;
}

ArrayMetrics
Array3D::evaluate(const ArrayConfig &cfg, const PartitionSpec &spec) const
{
    switch (spec.kind) {
      case PartitionKind::None:
        return model_.evaluate2D(cfg);
      case PartitionKind::Bit:
      case PartitionKind::Word:
        return evaluateBitWord(cfg, spec);
      case PartitionKind::Port:
        return evaluatePort(cfg, spec);
    }
    M3D_PANIC("unknown partition kind");
}

ArrayMetrics
Array3D::evaluateBitWord(const ArrayConfig &cfg,
                         const PartitionSpec &spec) const
{
    const Technology &tech = model_.tech();
    M3D_ASSERT(tech.layers() == 2,
               "3D partitioning needs a two-layer technology");
    M3D_ASSERT(spec.bottom_share > 0.0 && spec.bottom_share < 1.0);
    const bool by_bits = spec.kind == PartitionKind::Bit;
    const int cols_total = cfg.bits + cfg.cam_tag_bits;

    // Split the partitioned axis.
    const int axis_total = by_bits ? cols_total : cfg.words;
    int axis_bottom = std::clamp(
        static_cast<int>(std::lround(axis_total * spec.bottom_share)),
        1, axis_total - 1);
    const int axis_top = axis_total - axis_bottom;

    // Bottom slice: native process, normal cells, hosts the decoder.
    SliceSpec bottom;
    bottom.rows = by_bits ? cfg.words : axis_bottom;
    bottom.cols = by_bits ? axis_bottom : cols_total;
    bottom.wordline_ports = cfg.ports();
    bottom.cell = CellGeometry::sram(cfg.ports());
    bottom.pitch_w = bottom.cell.width;
    bottom.pitch_h = bottom.cell.height;
    bottom.cam = cfg.cam;
    bottom.driver_process = &tech.bottom_process;
    bottom.cell_process = &tech.bottom_process;

    // Top slice: slower process, optionally upsized cells, and the
    // inter-layer via in its wordline (BP) or bitline (WP) path.
    SliceSpec top = bottom;
    top.rows = by_bits ? cfg.words : axis_top;
    top.cols = by_bits ? axis_top : cols_total;
    top.cell = CellGeometry::sram(cfg.ports(), spec.top_access_scale,
                                  spec.top_cell_scale);
    top.pitch_w = top.cell.width;
    top.pitch_h = top.cell.height;
    top.cell_process = &tech.top_process;
    top.driver_process = &tech.bottom_process; // decode stays below
    const ViaParams &via = tech.via;
    if (by_bits) {
        // Wordline select crosses up once per word.
        top.via_r = via.resistance;
        top.via_c = via.capacitance;
    } else {
        // Bitlines cross down to the bottom-layer sense amps.
        top.bitline_extra_r = via.resistance;
        top.via_r = via.resistance;
        top.via_c = via.capacitance;
    }

    SubarrayPlan plan_b = model_.bestPlan(bottom);
    SubarrayPlan plan_t = model_.bestPlan(top);
    SliceMetrics mb = model_.evaluateSlice(bottom, plan_b);
    SliceMetrics mt = model_.evaluateSlice(top, plan_t);

    // Via count: one per word and port for BP; one per bit(line) and
    // port for WP (Section 3.2), plus the returned data bits.
    const double nvias = by_bits
        ? static_cast<double>(cfg.words) * cfg.ports() + axis_top
        : static_cast<double>(cols_total) * cfg.ports();
    const double via_area = viaFootprint(nvias);

    // Footprint: the layers stack; the larger slice defines it.
    const double slice_area = std::max(mb.area, mt.area) + via_area;
    const double foot_w = std::max(mb.array_w, mt.array_w);
    const double foot_h = std::max(mb.array_h, mt.array_h);

    ArrayMetrics out;
    const SliceMetrics &worst =
        mb.accessDelay() >= mt.accessDelay() ? mb : mt;
    out.decode_delay = worst.decode_delay;
    out.wordline_delay = worst.wordline_delay;
    out.bitline_delay = worst.bitline_delay;
    out.sense_delay = worst.sense_delay;

    double out_delay = 0.0;
    double out_energy = 0.0;
    model_.dataReturn(foot_w, foot_h, cfg.bits, tech.bottom_process,
                      out_delay, out_energy);
    out.output_delay = out_delay;

    double route_delay = 0.0;
    double route_energy = 0.0;
    model_.bankRouting(cfg, slice_area, route_delay, route_energy);
    out.routing_delay = route_delay;

    const double read_path = route_delay +
        std::max(mb.accessDelay(), mt.accessDelay()) + out_delay;

    // Active via switching energy: ports crossing plus data return.
    const double via_energy =
        (cfg.ports() + cfg.bits / 2.0) * via.capacitance *
        tech.bottom_process.vdd * tech.bottom_process.vdd;

    double cam_delay = 0.0;
    double cam_energy = 0.0;
    if (cfg.cam) {
        double cd_b = 0.0, ce_b = 0.0, cd_t = 0.0, ce_t = 0.0;
        model_.camSearch(bottom, plan_b, cfg.cam_tag_bits, cd_b, ce_b);
        model_.camSearch(top, plan_t, cfg.cam_tag_bits, cd_t, ce_t);
        cam_delay = std::max(cd_b, cd_t);
        cam_energy = ce_b + ce_t;
    }
    out.cam_search_delay =
        cam_delay > 0.0 ? route_delay + cam_delay : 0.0;

    out.access_latency = std::max(read_path, out.cam_search_delay);
    // Both slices take part in every access (each holds part of every
    // word for BP; for WP only one slice's bitlines swing, so halve
    // the inactive slice's array energy).
    const double array_energy = by_bits
        ? mb.read_energy + mt.read_energy
        : std::max(mb.read_energy, mt.read_energy) +
          0.15 * std::min(mb.read_energy, mt.read_energy);
    out.access_energy = route_energy + array_energy + out_energy +
                        via_energy + cam_energy;
    out.write_energy = out.access_energy;
    out.area = cfg.banks * slice_area;
    out.leakage_power = cfg.banks * (mb.leakage + mt.leakage);
    return out;
}

ArrayMetrics
Array3D::evaluateMultiLayerBit(const ArrayConfig &cfg,
                               int layers) const
{
    const Technology &tech = model_.tech();
    M3D_ASSERT(layers >= 2 && layers <= 8,
               "multi-layer evaluation supports 2..8 layers");
    M3D_ASSERT(tech.layers() == 2,
               "needs a stacked technology (its top-layer process "
               "models every non-bottom layer)");
    const int cols_total = cfg.bits + cfg.cam_tag_bits;
    M3D_ASSERT(cols_total >= layers, "fewer bits than layers");
    const ViaParams &via = tech.via;

    // Equal slices of the word per layer; layer 0 keeps the decoder
    // and the fast process, every other layer runs on the top-layer
    // process and sees `k` via crossings in its wordline path.
    double worst_access = 0.0;
    double read_energy = 0.0;
    double max_area = 0.0;
    double foot_w = 0.0;
    double foot_h = 0.0;
    double leakage = 0.0;
    SliceMetrics worst_metrics;
    for (int k = 0; k < layers; ++k) {
        const int cols =
            cols_total / layers + (k < cols_total % layers ? 1 : 0);
        SliceSpec s;
        s.rows = cfg.words;
        s.cols = std::max(cols, 1);
        s.wordline_ports = cfg.ports();
        s.cell = CellGeometry::sram(cfg.ports());
        s.pitch_w = s.cell.width;
        s.pitch_h = s.cell.height;
        s.cam = cfg.cam;
        s.driver_process = &tech.bottom_process;
        s.cell_process =
            k == 0 ? &tech.bottom_process : &tech.top_process;
        s.via_r = k * via.resistance;
        s.via_c = k * via.capacitance;
        const SubarrayPlan plan = model_.bestPlan(s);
        const SliceMetrics m = model_.evaluateSlice(s, plan);
        if (m.accessDelay() > worst_access) {
            worst_access = m.accessDelay();
            worst_metrics = m;
        }
        read_energy += m.read_energy;
        max_area = std::max(max_area, m.area);
        foot_w = std::max(foot_w, m.array_w);
        foot_h = std::max(foot_h, m.array_h);
        leakage += m.leakage;
    }

    // One via column per word and port per crossed boundary.
    const double nvias = static_cast<double>(cfg.words) *
                         cfg.ports() * (layers - 1);
    const double slice_area = max_area + viaFootprint(nvias);

    ArrayMetrics out;
    out.decode_delay = worst_metrics.decode_delay;
    out.wordline_delay = worst_metrics.wordline_delay;
    out.bitline_delay = worst_metrics.bitline_delay;
    out.sense_delay = worst_metrics.sense_delay;

    double out_delay = 0.0;
    double out_energy = 0.0;
    model_.dataReturn(foot_w, foot_h, cfg.bits, tech.bottom_process,
                      out_delay, out_energy);
    out.output_delay = out_delay;

    double route_delay = 0.0;
    double route_energy = 0.0;
    model_.bankRouting(cfg, slice_area, route_delay, route_energy);
    out.routing_delay = route_delay;

    const double via_energy = (layers - 1) *
        (cfg.ports() + cfg.bits / 2.0) * via.capacitance *
        tech.bottom_process.vdd * tech.bottom_process.vdd;

    out.access_latency = route_delay + worst_access + out_delay;
    out.access_energy =
        route_energy + read_energy + out_energy + via_energy;
    out.write_energy = out.access_energy;
    out.area = cfg.banks * slice_area;
    out.leakage_power = cfg.banks * leakage;
    return out;
}

ArrayMetrics
Array3D::evaluatePort(const ArrayConfig &cfg,
                      const PartitionSpec &spec) const
{
    const Technology &tech = model_.tech();
    M3D_ASSERT(tech.layers() == 2,
               "3D partitioning needs a two-layer technology");
    const int p_total = cfg.ports();
    M3D_ASSERT(p_total >= 2, "port partitioning needs >= 2 ports: ",
               cfg.name);
    int p_bottom = spec.bottom_ports;
    if (p_bottom <= 0)
        p_bottom = p_total / 2;
    M3D_ASSERT(p_bottom >= 1 && p_bottom < p_total,
               "invalid port split for ", cfg.name);
    const int p_top = p_total - p_bottom;
    const int cols_total = cfg.bits + cfg.cam_tag_bits;
    const ViaParams &via = tech.via;

    // Cell slices: inverters stay below (Figure 3(c)).
    CellGeometry cell_b = CellGeometry::sram(p_bottom);
    CellGeometry cell_t =
        CellGeometry::portsOnly(p_top, spec.top_access_scale);

    // Layers align vertically: shared pitch is the max per dimension,
    // plus the footprint of the two per-cell vias.  A via and its
    // keep-out zone pack as a square that must fit inside the cell
    // pitch: TSVs stretch the cell in both dimensions (Section 3.2.3),
    // which is what makes TSV-based PP catastrophic.
    const double via_side = std::sqrt(via.areaWithKoz());
    double pitch_h = std::max({cell_b.height, cell_t.height, via_side});
    double pitch_w = std::max(cell_b.width, cell_t.width) +
                     2.0 * via_side * via_side / pitch_h;

    SliceSpec bottom;
    bottom.rows = cfg.words;
    bottom.cols = cols_total;
    bottom.wordline_ports = p_bottom;
    bottom.cell = cell_b;
    bottom.pitch_w = pitch_w;
    bottom.pitch_h = pitch_h;
    bottom.cam = cfg.cam;
    bottom.driver_process = &tech.bottom_process;
    bottom.cell_process = &tech.bottom_process;

    SliceSpec top = bottom;
    top.wordline_ports = p_top;
    top.cell = cell_t;
    top.cell_process = &tech.top_process;
    // Top-port wordline select crosses a via; the discharge path runs
    // through the bottom-layer cell core plus the via.
    top.via_r = via.resistance;
    top.via_c = via.capacitance;
    top.bitline_extra_r =
        tech.bottom_process.r_on / std::max(cell_b.core_width, 0.5) +
        via.resistance;

    SubarrayPlan plan_b = model_.bestPlan(bottom);
    SubarrayPlan plan_t = model_.bestPlan(top);
    SliceMetrics mb = model_.evaluateSlice(bottom, plan_b);
    SliceMetrics mt = model_.evaluateSlice(top, plan_t);

    const double slice_area = std::max(mb.area, mt.area);
    const double foot_w = std::max(mb.array_w, mt.array_w);
    const double foot_h = std::max(mb.array_h, mt.array_h);

    ArrayMetrics out;
    const SliceMetrics &worst =
        mb.accessDelay() >= mt.accessDelay() ? mb : mt;
    out.decode_delay = worst.decode_delay;
    out.wordline_delay = worst.wordline_delay;
    out.bitline_delay = worst.bitline_delay;
    out.sense_delay = worst.sense_delay;

    double out_delay = 0.0;
    double out_energy = 0.0;
    model_.dataReturn(foot_w, foot_h, cfg.bits, tech.bottom_process,
                      out_delay, out_energy);
    out.output_delay = out_delay;

    double route_delay = 0.0;
    double route_energy = 0.0;
    model_.bankRouting(cfg, slice_area, route_delay, route_energy);
    out.routing_delay = route_delay;

    const double read_path = route_delay +
        std::max(mb.accessDelay(), mt.accessDelay()) + out_delay;

    double cam_delay = 0.0;
    double cam_energy = 0.0;
    if (cfg.cam) {
        double cd_b = 0.0, ce_b = 0.0, cd_t = 0.0, ce_t = 0.0;
        model_.camSearch(bottom, plan_b, cfg.cam_tag_bits, cd_b, ce_b);
        model_.camSearch(top, plan_t, cfg.cam_tag_bits, cd_t, ce_t);
        cam_delay = std::max(cd_b, cd_t);
        cam_energy = std::max(ce_b, ce_t);
    }
    out.cam_search_delay =
        cam_delay > 0.0 ? route_delay + cam_delay : 0.0;

    out.access_latency = std::max(read_path, out.cam_search_delay);

    // An access exercises one port; weight the two layers' costs by
    // how many ports each hosts.
    const double wb = static_cast<double>(p_bottom) / p_total;
    const double wt = static_cast<double>(p_top) / p_total;
    const double via_energy = 2.0 * via.capacitance *
        tech.bottom_process.vdd * tech.bottom_process.vdd;
    out.access_energy = route_energy +
        wb * mb.read_energy + wt * (mt.read_energy + via_energy) +
        out_energy + cam_energy;
    out.write_energy = out.access_energy;
    out.area = cfg.banks * slice_area;
    // The storage cells leak once (bottom); the top layer adds only
    // its access transistors.
    out.leakage_power = cfg.banks * (mb.leakage + mt.leakage);
    return out;
}

} // namespace m3d
