/**
 * @file
 * Design-space exploration over partition strategies.
 *
 * For each structure the explorer prices every strategy (BP, WP, PP
 * where legal) across a grid of layout knobs and reports the best
 * design, preferring access-latency reduction (the paper's stated
 * objective), with energy as the tie-break.
 */

#ifndef M3D_SRAM_EXPLORER_HH_
#define M3D_SRAM_EXPLORER_HH_

#include <vector>

#include "sram/array3d.hh"

namespace m3d {

/** Outcome of pricing one (structure, partition) design point. */
struct PartitionResult
{
    ArrayConfig cfg;
    PartitionSpec spec;
    ArrayMetrics planar;  ///< 2D baseline
    ArrayMetrics stacked; ///< partitioned design

    /** Positive = improvement over 2D. */
    double latencyReduction() const;
    double energyReduction() const;
    double areaReduction() const;
};

/** Explorer bound to one 3D technology (M3D iso/hetero or TSV3D). */
class PartitionExplorer
{
  public:
    /**
     * @param tech3d Two-layer technology for the stacked design.
     * @param tech2d Planar technology for the baseline.
     */
    PartitionExplorer(const Technology &tech3d, const Technology &tech2d);

    /** Convenience: baseline defaults to planar 22nm HP. */
    explicit PartitionExplorer(const Technology &tech3d);

    /** Price one strategy with the default symmetric knobs. */
    PartitionResult evaluate(const ArrayConfig &cfg,
                             const PartitionSpec &spec) const;

    /** Best knobs for a given strategy (grid search). */
    PartitionResult best(const ArrayConfig &cfg,
                         PartitionKind kind) const;

    /** Best strategy overall for a structure. */
    PartitionResult bestOverall(const ArrayConfig &cfg) const;

    /** Best strategy for every structure in Table 6 order. */
    std::vector<PartitionResult>
    bestForAll(const std::vector<ArrayConfig> &cfgs) const;

    /**
     * The grid of candidate design points for one strategy - the
     * exact set best() searches.  Public so the batch engine can
     * price (and memoize) each point individually.
     */
    std::vector<PartitionSpec> candidates(const ArrayConfig &cfg,
                                          PartitionKind kind) const;

    /** Strategies legal for a structure (PP needs >= 2 ports). */
    static std::vector<PartitionKind>
    legalKinds(const ArrayConfig &cfg);

    /**
     * Selection policy over one strategy's grid: minimize access
     * latency, with access energy breaking ties within 2%.
     */
    static PartitionResult
    selectBest(const std::vector<PartitionResult> &results);

    /**
     * Cross-strategy policy of bestOverall(): does `r` displace the
     * `incumbent` best result?
     */
    static bool betterOverall(const PartitionResult &r,
                              const PartitionResult &incumbent);

    const Technology &tech3d() const { return tech3d_; }

  private:
    Technology tech3d_;
    Technology tech2d_;
    ArrayModel model3d_;
    ArrayModel model2d_;
    Array3D stacked_;
};

} // namespace m3d

#endif // M3D_SRAM_EXPLORER_HH_
