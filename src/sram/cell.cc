#include "sram/cell.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"
#include "util/units.hh"

namespace m3d {

using namespace units;

namespace {

// 22nm-calibrated layout constants.  A 1-port 6T cell comes out at
// 0.35um x 0.26um (~0.092 um^2, the Intel 22nm HD cell ballpark).
constexpr double kCoreWidth = 0.17 * um;   // cross-coupled inverters
constexpr double kPortWidth = 0.25 * um;   // bitline tracks per port
constexpr double kBaseHeight = 0.16 * um;  // diffusion + well spacing
constexpr double kPortHeight = 0.14 * um;  // wordline track per port

// Wire pitch dominates port width; transistor widening is sublinear.
constexpr double kWidthVsScale = 0.45;

double
scaledPortWidth(double access_scale)
{
    return kPortWidth * (1.0 + kWidthVsScale * (access_scale - 1.0));
}

} // namespace

double
CellGeometry::portPitch(int ports, double access_scale)
{
    return ports * scaledPortWidth(access_scale);
}

CellGeometry
CellGeometry::sram(int ports, double access_scale, double cell_scale)
{
    M3D_ASSERT(ports >= 1);
    M3D_ASSERT(access_scale >= 1.0 && cell_scale >= 1.0);
    CellGeometry c;
    c.ports = ports;
    c.has_core = true;
    c.access_width = access_scale * cell_scale;
    c.core_width = cell_scale;
    c.width = kCoreWidth * cell_scale + portPitch(ports, access_scale);
    c.height = (kBaseHeight + ports * kPortHeight) *
               (1.0 + 0.25 * (cell_scale - 1.0));
    return c;
}

CellGeometry
CellGeometry::portsOnly(int ports, double access_scale)
{
    M3D_ASSERT(ports >= 1);
    CellGeometry c;
    c.ports = ports;
    c.has_core = false;
    c.access_width = access_scale;
    c.core_width = 0.0;
    c.width = portPitch(ports, access_scale);
    c.height = kBaseHeight + ports * kPortHeight;
    return c;
}

} // namespace m3d
