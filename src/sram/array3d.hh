/**
 * @file
 * Two-layer 3D SRAM/CAM arrays: bit partitioning (BP), word
 * partitioning (WP), and port partitioning (PP), in both their
 * symmetric (iso-layer, Section 3.2) and asymmetric hetero-layer
 * (Section 4.2) forms.
 *
 * The via technology, the top-layer process, and the layout knobs
 * (bottom share, top access-transistor scale, top cell scale, port
 * split) fully describe a 3D design point; evaluate() prices it with
 * the same component physics as the 2D model.
 */

#ifndef M3D_SRAM_ARRAY3D_HH_
#define M3D_SRAM_ARRAY3D_HH_

#include <string>

#include "sram/array_model.hh"

namespace m3d {

/** The three partitioning strategies of Figure 3, plus "none". */
enum class PartitionKind { None, Bit, Word, Port };

/** Short label used in tables ("BP", "WP", "PP", "2D"). */
std::string toString(PartitionKind kind);

/** A fully specified partition design point. */
struct PartitionSpec
{
    PartitionKind kind = PartitionKind::None;

    /**
     * BP/WP: fraction of the bits (BP) or words (WP) placed in the
     * bottom layer.  0.5 is the symmetric split; hetero-layer designs
     * favour ~2/3 (Section 4.2.2).
     */
    double bottom_share = 0.5;

    /** PP: number of ports kept in the bottom layer (with the core). */
    int bottom_ports = 0;

    /**
     * Width multiplier for top-layer access transistors (PP) or for
     * the whole top-layer cell (BP/WP).  The hetero-layer technique
     * doubles them to recover the slower top layer's drive.
     */
    double top_access_scale = 1.0;

    /** Uniform top-layer bitcell upsizing for BP/WP (area headroom). */
    double top_cell_scale = 1.0;

    static PartitionSpec none();
    static PartitionSpec bit(double bottom_share=0.5,
                             double top_access_scale=1.0,
                             double top_cell_scale=1.0);
    static PartitionSpec word(double bottom_share=0.5,
                              double top_access_scale=1.0,
                              double top_cell_scale=1.0);
    static PartitionSpec port(int bottom_ports,
                              double top_access_scale=1.0);
};

/**
 * Evaluator for two-layer arrays.  Owns nothing; borrows the 2D model
 * (and through it the technology, including the via parameters and
 * the top-layer process corner).
 */
class Array3D
{
  public:
    explicit Array3D(const ArrayModel &model) : model_(model) {}

    /**
     * Price a partitioned design.
     *
     * @param cfg The logical structure.
     * @param spec The partition design point; spec.kind == None
     *             falls back to the 2D evaluation.
     */
    ArrayMetrics evaluate(const ArrayConfig &cfg,
                          const PartitionSpec &spec) const;

    /**
     * Generalized bit partitioning across `layers` device layers
     * (the paper's techniques "partition ... into two or more
     * layers"; M3D prototypes stack further).  Layer 0 is the fast
     * bottom layer with the decoder; every higher layer is reached
     * through one more via and, on hetero technology, runs slow.
     *
     * @param cfg The logical structure.
     * @param layers Device layers (2..8).
     */
    ArrayMetrics evaluateMultiLayerBit(const ArrayConfig &cfg,
                                       int layers) const;

    const ArrayModel &model() const { return model_; }

  private:
    ArrayMetrics evaluateBitWord(const ArrayConfig &cfg,
                                 const PartitionSpec &spec) const;
    ArrayMetrics evaluatePort(const ArrayConfig &cfg,
                              const PartitionSpec &spec) const;

    /** Effective via area including TSV layout optimization. */
    double viaFootprint(double count) const;

    const ArrayModel &model_;
};

} // namespace m3d

#endif // M3D_SRAM_ARRAY3D_HH_
