#include "sram/explorer.hh"

#include <algorithm>

#include "util/logging.hh"
#include "util/units.hh"

namespace m3d {

double
PartitionResult::latencyReduction() const
{
    return reductionVs(planar.access_latency, stacked.access_latency);
}

double
PartitionResult::energyReduction() const
{
    return reductionVs(planar.access_energy, stacked.access_energy);
}

double
PartitionResult::areaReduction() const
{
    return reductionVs(planar.area, stacked.area);
}

PartitionExplorer::PartitionExplorer(const Technology &tech3d,
                                     const Technology &tech2d)
    : tech3d_(tech3d), tech2d_(tech2d), model3d_(tech3d_),
      model2d_(tech2d_), stacked_(model3d_)
{
    M3D_ASSERT(tech3d_.layers() == 2,
               "explorer needs a stacked technology");
}

PartitionExplorer::PartitionExplorer(const Technology &tech3d)
    : PartitionExplorer(tech3d, Technology::planar2D())
{
}

PartitionResult
PartitionExplorer::evaluate(const ArrayConfig &cfg,
                            const PartitionSpec &spec) const
{
    PartitionResult r;
    r.cfg = cfg;
    r.spec = spec;
    r.planar = model2d_.evaluate2D(cfg);
    r.stacked = stacked_.evaluate(cfg, spec);
    return r;
}

std::vector<PartitionSpec>
PartitionExplorer::candidates(const ArrayConfig &cfg,
                              PartitionKind kind) const
{
    std::vector<PartitionSpec> out;
    const bool hetero = tech3d_.top_layer_slowdown > 1e-9;
    const std::vector<double> shares = hetero
        ? std::vector<double>{0.5, 0.55, 0.6, 2.0 / 3.0, 0.7, 0.75}
        : std::vector<double>{0.5};
    const std::vector<double> scales = hetero
        ? std::vector<double>{1.0, 1.5, 2.0}
        : std::vector<double>{1.0};

    switch (kind) {
      case PartitionKind::None:
        out.push_back(PartitionSpec::none());
        break;
      case PartitionKind::Bit:
      case PartitionKind::Word:
        for (double share : shares) {
            for (double scale : scales) {
                // Hetero BP/WP upsizes the whole top-layer bitcell
                // (Section 4.2.2); access width follows the cell.
                PartitionSpec s = kind == PartitionKind::Bit
                    ? PartitionSpec::bit(share, 1.0, scale)
                    : PartitionSpec::word(share, 1.0, scale);
                out.push_back(s);
            }
        }
        break;
      case PartitionKind::Port:
        if (cfg.ports() >= 2) {
            for (int pb = 1; pb < cfg.ports(); ++pb) {
                for (double scale : scales)
                    out.push_back(PartitionSpec::port(pb, scale));
            }
        }
        break;
    }
    return out;
}

std::vector<PartitionKind>
PartitionExplorer::legalKinds(const ArrayConfig &cfg)
{
    std::vector<PartitionKind> kinds = {PartitionKind::Bit,
                                        PartitionKind::Word};
    if (cfg.ports() >= 2)
        kinds.push_back(PartitionKind::Port);
    return kinds;
}

PartitionResult
PartitionExplorer::selectBest(const std::vector<PartitionResult> &results)
{
    M3D_ASSERT(!results.empty(), "no design points to select from");

    double best_lat = results.front().stacked.access_latency;
    for (const PartitionResult &r : results)
        best_lat = std::min(best_lat, r.stacked.access_latency);

    const PartitionResult *winner = nullptr;
    for (const PartitionResult &r : results) {
        if (r.stacked.access_latency > 1.02 * best_lat)
            continue;
        if (!winner ||
            r.stacked.access_energy < winner->stacked.access_energy) {
            winner = &r;
        }
    }
    return *winner;
}

bool
PartitionExplorer::betterOverall(const PartitionResult &r,
                                 const PartitionResult &incumbent)
{
    return r.stacked.access_latency <
               incumbent.stacked.access_latency ||
           (r.stacked.access_latency <
                1.02 * incumbent.stacked.access_latency &&
            r.stacked.access_energy < incumbent.stacked.access_energy);
}

PartitionResult
PartitionExplorer::best(const ArrayConfig &cfg, PartitionKind kind) const
{
    std::vector<PartitionSpec> specs = candidates(cfg, kind);
    M3D_ASSERT(!specs.empty(), "no legal design point for ", cfg.name,
               " with strategy ", toString(kind));

    std::vector<PartitionResult> results;
    results.reserve(specs.size());
    for (const PartitionSpec &s : specs)
        results.push_back(evaluate(cfg, s));

    return selectBest(results);
}

PartitionResult
PartitionExplorer::bestOverall(const ArrayConfig &cfg) const
{
    bool have = false;
    PartitionResult best_r;
    for (PartitionKind k : legalKinds(cfg)) {
        PartitionResult r = best(cfg, k);
        if (!have || betterOverall(r, best_r)) {
            best_r = r;
            have = true;
        }
    }
    M3D_ASSERT(have);
    return best_r;
}

std::vector<PartitionResult>
PartitionExplorer::bestForAll(const std::vector<ArrayConfig> &cfgs) const
{
    std::vector<PartitionResult> out;
    out.reserve(cfgs.size());
    for (const ArrayConfig &cfg : cfgs)
        out.push_back(bestOverall(cfg));
    return out;
}

} // namespace m3d
