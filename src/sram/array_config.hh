/**
 * @file
 * Logical descriptions of the core's storage structures.
 *
 * The paper partitions twelve SRAM/CAM structures (Table 6).  An
 * ArrayConfig captures the logical organization CACTI needs: words,
 * bits per word, ports, banks, and whether the structure has a CAM
 * search path (IQ/LQ/SQ and cache tags).
 */

#ifndef M3D_SRAM_ARRAY_CONFIG_HH_
#define M3D_SRAM_ARRAY_CONFIG_HH_

#include <string>
#include <vector>

namespace m3d {

/** Logical array organization. */
struct ArrayConfig
{
    std::string name;   ///< e.g. "RF"
    int words = 0;      ///< array height (entries)
    int bits = 0;       ///< array width (bits per entry)
    int read_ports = 1;
    int write_ports = 0;
    int banks = 1;      ///< identical banks; one is active per access
    bool cam = false;   ///< true if the structure is searched (CAM)
    int cam_tag_bits = 0; ///< searched tag width for CAM structures

    /** Total ports into the bitcell. */
    int ports() const { return read_ports + write_ports; }

    /** Total capacity in bits across banks. */
    long long totalBits() const
    {
        return static_cast<long long>(words) * bits * banks;
    }
};

/**
 * Factory for the structures of the modeled core (Tables 6, 8, 9).
 * Sizes follow Table 9: 160-entry RF, 84-entry IQ, 72/56-entry LQ/SQ,
 * 4K-entry BPT and BTB, 32KB L1s, 256KB L2.
 */
class CoreStructures
{
  public:
    static ArrayConfig registerFile();      ///< RF [160; 64], 12R 6W
    static ArrayConfig issueQueue();        ///< IQ [84; 16], CAM, 6 ports
    static ArrayConfig storeQueue();        ///< SQ [56; 48], CAM, 2 ports
    static ArrayConfig loadQueue();         ///< LQ [72; 48], CAM, 2 ports
    static ArrayConfig registerAliasTable();///< RAT [32; 8], 12R 4W
    static ArrayConfig branchPredictor();   ///< BPT [4096; 8], 1 port
    static ArrayConfig branchTargetBuffer();///< BTB [4096; 32], 1 port
    static ArrayConfig dataTlb();           ///< DTLB [192; 64] x8
    static ArrayConfig instructionTlb();    ///< ITLB [192; 64] x4
    static ArrayConfig instructionL1();     ///< IL1 [256; 256] x4
    static ArrayConfig dataL1();            ///< DL1 [128; 256] x8
    static ArrayConfig l2Cache();           ///< L2 [512; 512] x8

    /**
     * Microcode ROM (Section 4.1.2): read by the complex decoder for
     * multi-uop instructions; multi-cycle already, so it lives whole
     * in the top layer.  Not part of Table 6's twelve structures.
     */
    static ArrayConfig ucodeRom();

    /** All twelve structures in Table 6 order. */
    static std::vector<ArrayConfig> all();
};

} // namespace m3d

#endif // M3D_SRAM_ARRAY_CONFIG_HH_
