#include "sram/array_config.hh"

namespace m3d {

ArrayConfig
CoreStructures::registerFile()
{
    ArrayConfig c;
    c.name = "RF";
    c.words = 160;
    c.bits = 64;
    c.read_ports = 12;
    c.write_ports = 6;
    return c;
}

ArrayConfig
CoreStructures::issueQueue()
{
    ArrayConfig c;
    c.name = "IQ";
    c.words = 84;
    c.bits = 16;
    // As many ports as the issue width (Section 4.4).
    c.read_ports = 4;
    c.write_ports = 2;
    c.cam = true;
    c.cam_tag_bits = 8; // physical register tag per operand
    return c;
}

ArrayConfig
CoreStructures::storeQueue()
{
    ArrayConfig c;
    c.name = "SQ";
    c.words = 56;
    c.bits = 48;
    c.read_ports = 1;
    c.write_ports = 1;
    c.cam = true;
    c.cam_tag_bits = 40; // searched address bits
    return c;
}

ArrayConfig
CoreStructures::loadQueue()
{
    ArrayConfig c;
    c.name = "LQ";
    c.words = 72;
    c.bits = 48;
    c.read_ports = 1;
    c.write_ports = 1;
    c.cam = true;
    c.cam_tag_bits = 40;
    return c;
}

ArrayConfig
CoreStructures::registerAliasTable()
{
    ArrayConfig c;
    c.name = "RAT";
    c.words = 32;
    c.bits = 8;
    c.read_ports = 12;
    c.write_ports = 4;
    return c;
}

ArrayConfig
CoreStructures::branchPredictor()
{
    ArrayConfig c;
    c.name = "BPT";
    c.words = 4096;
    c.bits = 8;
    c.read_ports = 1;
    c.write_ports = 0;
    return c;
}

ArrayConfig
CoreStructures::branchTargetBuffer()
{
    ArrayConfig c;
    c.name = "BTB";
    c.words = 4096;
    c.bits = 32;
    c.read_ports = 1;
    c.write_ports = 0;
    return c;
}

ArrayConfig
CoreStructures::dataTlb()
{
    ArrayConfig c;
    c.name = "DTLB";
    c.words = 192;
    c.bits = 64;
    c.banks = 8;
    c.read_ports = 1;
    c.write_ports = 0;
    return c;
}

ArrayConfig
CoreStructures::instructionTlb()
{
    ArrayConfig c;
    c.name = "ITLB";
    c.words = 192;
    c.bits = 64;
    c.banks = 4;
    c.read_ports = 1;
    c.write_ports = 0;
    return c;
}

ArrayConfig
CoreStructures::instructionL1()
{
    ArrayConfig c;
    c.name = "IL1";
    c.words = 256;
    c.bits = 256;
    c.banks = 4;
    c.read_ports = 1;
    c.write_ports = 0;
    return c;
}

ArrayConfig
CoreStructures::dataL1()
{
    ArrayConfig c;
    c.name = "DL1";
    c.words = 128;
    c.bits = 256;
    c.banks = 8;
    c.read_ports = 1;
    c.write_ports = 1;
    return c;
}

ArrayConfig
CoreStructures::l2Cache()
{
    ArrayConfig c;
    c.name = "L2";
    c.words = 512;
    c.bits = 512;
    c.banks = 8;
    c.read_ports = 1;
    c.write_ports = 0;
    return c;
}

ArrayConfig
CoreStructures::ucodeRom()
{
    ArrayConfig c;
    c.name = "uROM";
    c.words = 4096;
    c.bits = 72; // one wide uop per entry
    c.read_ports = 1;
    c.write_ports = 0;
    return c;
}

std::vector<ArrayConfig>
CoreStructures::all()
{
    return {
        registerFile(), issueQueue(), storeQueue(), loadQueue(),
        registerAliasTable(), branchPredictor(), branchTargetBuffer(),
        dataTlb(), instructionTlb(), instructionL1(), dataL1(), l2Cache(),
    };
}

} // namespace m3d
