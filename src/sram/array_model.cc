#include "sram/array_model.hh"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "circuit/delay.hh"
#include "circuit/senseamp.hh"
#include "util/logging.hh"
#include "util/units.hh"

namespace m3d {

using namespace units;

namespace {

// Peripheral layout constants (22nm).
constexpr double kDecoderStripBase = 2.0 * um;   // row decoder strip width
constexpr double kDecoderStripPerPort = 0.10 * um;
constexpr double kSenseStripHeight = 2.0 * um;   // sense/column strip
constexpr double kAreaOverhead = 1.10;           // misc (precharge, ECC)
constexpr double kBitlineSwing = 0.10;           // fraction of Vdd sensed
constexpr int kMaxDivisions = 16;                // subarray split search

/** Gate capacitance presented to a wordline by one bit of one port. */
double
wordlineLoadPerBit(const ProcessCorner &p, double access_width)
{
    // Two access transistors (differential bitline pair) per port;
    // array access devices are drawn ~1.25x minimum width.
    return 2.5 * p.c_gate * access_width;
}

} // namespace

ArrayModel::ArrayModel(const Technology &tech) : tech_(tech)
{
}

SliceSpec
ArrayModel::fullSlice(const ArrayConfig &cfg) const
{
    SliceSpec s;
    s.rows = cfg.words;
    s.cols = cfg.bits + cfg.cam_tag_bits;
    s.wordline_ports = cfg.ports();
    s.cell = CellGeometry::sram(cfg.ports());
    s.pitch_w = s.cell.width;
    s.pitch_h = s.cell.height;
    s.cam = cfg.cam;
    s.driver_process = &tech_.bottom_process;
    s.cell_process = &tech_.bottom_process;
    return s;
}

SubarrayPlan
ArrayModel::bestPlan(const SliceSpec &spec) const
{
    // Pass 1: find the minimum access delay over all organizations.
    // Pass 2: among plans within 5% of it, minimize energy x area.
    std::vector<std::pair<SubarrayPlan, SliceMetrics>> cands;
    const int max_fold = spec.cam ? 1 : 32;
    for (int fold = 1; fold <= max_fold; fold *= 2) {
        if (fold > 1 && spec.rows / fold < 16)
            break;
        for (int ndwl = 1; ndwl <= kMaxDivisions; ndwl *= 2) {
            if (ndwl > 1 && (spec.cols * fold) / ndwl < 8)
                break;
            for (int ndbl = 1; ndbl <= kMaxDivisions; ndbl *= 2) {
                if (ndbl > 1 && spec.rows / (fold * ndbl) < 16)
                    break;
                SubarrayPlan plan{ndwl, ndbl, fold};
                cands.emplace_back(plan, evaluateSlice(spec, plan));
            }
        }
    }
    M3D_ASSERT(!cands.empty());
    double best_delay = cands.front().second.accessDelay();
    for (const auto &[plan, m] : cands)
        best_delay = std::min(best_delay, m.accessDelay());

    const SubarrayPlan *best = nullptr;
    double best_cost = 0.0;
    for (const auto &[plan, m] : cands) {
        if (m.accessDelay() > 1.05 * best_delay)
            continue;
        const double cost = m.read_energy * m.area;
        if (!best || cost < best_cost) {
            best = &plan;
            best_cost = cost;
        }
    }
    return *best;
}

SliceMetrics
ArrayModel::evaluateSlice(const SliceSpec &spec,
                          const SubarrayPlan &plan) const
{
    M3D_ASSERT(spec.rows > 0 && spec.cols > 0);
    M3D_ASSERT(spec.driver_process && spec.cell_process);
    const ProcessCorner &drv = *spec.driver_process;
    const ProcessCorner &cp = *spec.cell_process;
    const WireParams &lw = tech_.local_wire;

    const double pitch_w = spec.pitch_w > 0.0 ? spec.pitch_w
                                              : spec.cell.width;
    const double pitch_h = spec.pitch_h > 0.0 ? spec.pitch_h
                                              : spec.cell.height;
    M3D_ASSERT(!spec.cam || plan.fold == 1,
               "CAM slices cannot use column muxing");
    const int phys_rows = (spec.rows + plan.fold - 1) / plan.fold;
    const int phys_cols = spec.cols * plan.fold;
    const int rows_sub = (phys_rows + plan.ndbl - 1) / plan.ndbl;
    const int cols_sub = (phys_cols + plan.ndwl - 1) / plan.ndwl;

    SliceMetrics out;
    out.array_w = phys_cols * pitch_w;
    out.array_h = phys_rows * pitch_h;

    // --- Row decode: predecode gates plus the select H-tree.  The
    // tree must reach the farthest subarray, so its span is set by the
    // full matrix footprint, not by the subarray size; subdividing
    // adds select levels instead.  This is what makes SRAM access
    // wire-dominated, and what 3D footprint reduction attacks.
    const double fo4 = drv.fo4Delay();
    const double levels = std::log2(std::max(phys_rows, 2));
    const double divisions =
        std::log2(static_cast<double>(plan.ndwl * plan.ndbl));
    const double gate_delay =
        (0.5 + 0.25 * levels + 0.35 * divisions) * fo4;
    // Square-equivalent H-tree span: layout folds the select tree,
    // so its reach scales with sqrt(footprint area).
    const double pre_len =
        0.5 * std::sqrt(out.array_w * out.array_h);
    DrivenWire pre = driveWire(drv, lw.resOf(pre_len), lw.capOf(pre_len),
                               20.0 * drv.c_gate);
    out.decode_delay = gate_delay + pre.delay;
    double decode_energy =
        pre.energy * 4.0 + 8.0 * levels * drv.switchEnergy();

    // --- Wordline: one driver per subarray, in the cell layer.
    const double wl_len = cols_sub * pitch_w;
    const double wl_load =
        cols_sub * wordlineLoadPerBit(cp, spec.cell.access_width);
    // Wordline drivers are peripheral circuits: they stay in the
    // bottom layer and reach a top-layer wordline through a via, so
    // they always run at full speed (only the gate caps they drive
    // belong to the slice's cells).
    DrivenWire wl = driveWire(drv, lw.resOf(wl_len) + spec.via_r,
                              lw.capOf(wl_len) + spec.via_c, wl_load);
    out.wordline_delay = wl.delay;
    const double wordline_energy = wl.energy * plan.ndwl;

    // --- Bitline: current-mode discharge until the sense swing.
    const double c_bl_per_row =
        cp.c_drain * spec.cell.access_width * 1.0 + lw.capOf(pitch_h);
    const double c_bl = rows_sub * c_bl_per_row + 2.0 * fF;
    double r_discharge =
        cp.r_on / std::max(spec.cell.access_width, 0.1) +
        spec.bitline_extra_r;
    if (spec.cell.has_core)
        r_discharge += cp.r_on / std::max(spec.cell.core_width, 0.1);
    const double i_cell = cp.vdd / r_discharge;
    out.bitline_delay = c_bl * (kBitlineSwing * cp.vdd) / i_cell;
    // Every physical bitline on the active row discharges, including
    // the fold-1 columns that are muxed away (the classic column-mux
    // energy cost).
    const double bitline_energy =
        phys_cols * c_bl * cp.vdd * (kBitlineSwing * cp.vdd);

    // --- Column mux (if folded) + sense amplifiers on logical bits.
    // Sense amps are peripheral too: they sit at the bottom-layer
    // subarray edge (top-layer bitlines cross down through vias).
    const double mux_delay = plan.fold > 1 ? 0.5 * drv.fo4Delay() : 0.0;
    out.sense_delay = SenseAmp::delay(drv) + mux_delay;
    const double sense_energy = spec.cols * SenseAmp::energy(drv);

    out.read_energy =
        decode_energy + wordline_energy + bitline_energy + sense_energy;

    // --- Leakage: six transistors per full cell, ports only for
    // port-slices; peripherals add ~15%.
    const double cell_tx = spec.cell.has_core
        ? 6.0 + 2.0 * (spec.cell.ports - 1)
        : 2.0 * spec.cell.ports;
    out.leakage = 1.15 * spec.rows * spec.cols * (cell_tx / 6.0) *
                  cp.i_leak * cp.vdd;

    // --- Area: matrix plus decoder strips and sense strips.
    const double dec_w = plan.ndwl *
        (kDecoderStripBase + kDecoderStripPerPort * spec.wordline_ports);
    const double sa_h = plan.ndbl * kSenseStripHeight;
    out.area = kAreaOverhead * (out.array_w + dec_w) *
               (out.array_h + sa_h);
    return out;
}

void
ArrayModel::bankRouting(const ArrayConfig &cfg, double bank_area,
                        double &delay, double &energy) const
{
    delay = 0.0;
    energy = 0.0;
    if (cfg.banks <= 1)
        return;
    const ProcessCorner &p = tech_.bottom_process;
    const WireParams &sg = tech_.semi_global_wire;
    const double total_area = cfg.banks * bank_area;
    const double route_len = 0.7 * std::sqrt(total_area);
    DrivenWire w = driveWire(p, sg.resOf(route_len), sg.capOf(route_len),
                             10.0 * fF);
    delay = w.delay;
    // Address plus one data word distributed on the bank bus.
    energy = w.energy * (16.0 + cfg.bits / 4.0);
}

void
ArrayModel::camSearch(const SliceSpec &spec, const SubarrayPlan &plan,
                      int tag_bits, double &delay, double &energy) const
{
    delay = 0.0;
    energy = 0.0;
    if (tag_bits <= 0)
        return;
    const ProcessCorner &cp = *spec.cell_process;
    const WireParams &lw = tech_.local_wire;
    const double pitch_w = spec.pitch_w > 0.0 ? spec.pitch_w
                                              : spec.cell.width;
    const double pitch_h = spec.pitch_h > 0.0 ? spec.pitch_h
                                              : spec.cell.height;
    const int rows_sub = (spec.rows + plan.ndbl - 1) / plan.ndbl;

    // Tag broadcast down the (sub)array height.
    const double tag_len = rows_sub * pitch_h;
    const double tag_load =
        rows_sub * 2.0 * cp.c_gate * spec.cell.access_width;
    // Tag drivers are peripheral (bottom layer), like wordline
    // drivers.
    DrivenWire tag = driveWire(*spec.driver_process,
                               lw.resOf(tag_len) + spec.via_r,
                               lw.capOf(tag_len) + spec.via_c, tag_load);

    // Match line across the searched bits.  The compare transistors
    // read the stored bit through their gates, so the pulldown path
    // lives entirely in this slice's layer - no inter-layer series
    // resistance is involved (unlike the bitline read path).
    const double ml_len = tag_bits * pitch_w;
    const double c_ml = tag_bits *
        (cp.c_drain * spec.cell.access_width * 0.5 + lw.capOf(pitch_w));
    const double r_match =
        cp.r_on / (1.5 * std::max(spec.cell.access_width, 0.5));
    const double t_ml = 0.69 * r_match * c_ml +
                        0.69 * lw.resOf(ml_len) * c_ml * 0.5 +
                        MatchLine::evalDelay(cp);

    // Priority encode / hit OR over the words.
    const double prio = 0.35 * std::log2(std::max(spec.rows, 2)) *
                        spec.driver_process->fo4Delay();

    delay = tag.delay + t_ml + prio;
    // All rows evaluate their match lines; tags broadcast everywhere.
    energy = tag.energy * tag_bits * plan.ndbl +
             spec.rows * MatchLine::energy(cp, c_ml);
}

void
ArrayModel::dataReturn(double w, double h, int bits,
                       const ProcessCorner &p, double &delay,
                       double &energy) const
{
    const WireParams &sg = tech_.semi_global_wire;
    // Square-equivalent route: a folded footprint shortens the data
    // return in both dimensions.
    const double len = std::sqrt(w * h);
    DrivenWire d = driveWire(p, sg.resOf(len), sg.capOf(len),
                             4.0 * p.c_gate);
    delay = d.delay;
    energy = d.energy * bits;
}

ArrayMetrics
ArrayModel::evaluate2D(const ArrayConfig &cfg) const
{
    SliceSpec slice = fullSlice(cfg);
    SubarrayPlan plan = bestPlan(slice);
    SliceMetrics sm = evaluateSlice(slice, plan);

    ArrayMetrics out;
    out.decode_delay = sm.decode_delay;
    out.wordline_delay = sm.wordline_delay;
    out.bitline_delay = sm.bitline_delay;
    out.sense_delay = sm.sense_delay;

    double out_delay = 0.0;
    double out_energy = 0.0;
    dataReturn(sm.array_w, sm.array_h, cfg.bits, tech_.bottom_process,
               out_delay, out_energy);
    out.output_delay = out_delay;

    double route_delay = 0.0;
    double route_energy = 0.0;
    bankRouting(cfg, sm.area, route_delay, route_energy);
    out.routing_delay = route_delay;

    const double read_path = route_delay + sm.accessDelay() + out_delay;

    double cam_delay = 0.0;
    double cam_energy = 0.0;
    if (cfg.cam)
        camSearch(slice, plan, cfg.cam_tag_bits, cam_delay, cam_energy);
    out.cam_search_delay = cam_delay > 0.0
        ? route_delay + cam_delay : 0.0;

    out.access_latency = std::max(read_path, out.cam_search_delay);
    out.access_energy =
        route_energy + sm.read_energy + out_energy + cam_energy;
    out.write_energy = route_energy + sm.read_energy;
    out.area = cfg.banks * sm.area;
    out.leakage_power = cfg.banks * sm.leakage;
    return out;
}

} // namespace m3d
