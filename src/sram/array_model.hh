/**
 * @file
 * CACTI-style analytical SRAM/CAM array model.
 *
 * An array access is decomposed into: bank routing, row decode,
 * wordline drive, bitline develop, sense, and data return.  Each bank
 * is internally organized as a grid of subarrays; the organization
 * (number of wordline/bitline divisions) is chosen by exhaustive
 * search to minimize access delay, exactly as CACTI does.
 *
 * The same component functions evaluate both the 2D baseline and the
 * per-layer slices of the 3D partitioned arrays (array3d.hh), so 2D
 * and 3D numbers come from one set of physics.
 */

#ifndef M3D_SRAM_ARRAY_MODEL_HH_
#define M3D_SRAM_ARRAY_MODEL_HH_

#include <optional>

#include "sram/array_config.hh"
#include "sram/cell.hh"
#include "tech/technology.hh"

namespace m3d {

/** Results of evaluating one array design point. */
struct ArrayMetrics
{
    double access_latency = 0.0; ///< read access time (s)
    double access_energy = 0.0;  ///< dynamic energy per read (J)
    double write_energy = 0.0;   ///< dynamic energy per write (J)
    double area = 0.0;           ///< silicon footprint (m^2)
    double leakage_power = 0.0;  ///< static power (W)

    // Delay breakdown (s); the paper's analysis leans on which
    // component dominates (wordline vs bitline vs fixed).
    double routing_delay = 0.0;
    double decode_delay = 0.0;
    double wordline_delay = 0.0;
    double bitline_delay = 0.0;
    double sense_delay = 0.0;
    double output_delay = 0.0;
    double cam_search_delay = 0.0; ///< CAM structures: tag+match path
};

/** One subarray organization candidate. */
struct SubarrayPlan
{
    int ndwl = 1; ///< wordline divisions (columns split)
    int ndbl = 1; ///< bitline divisions (rows split)
    /**
     * Column-mux folding: `fold` logical words share one physical row
     * (CACTI's degree of column muxing).  Tall, narrow arrays such as
     * the 4096x8 branch predictor fold heavily.
     */
    int fold = 1;
};

/**
 * Inputs for evaluating one physical slice (a full 2D array, or the
 * piece of an array mapped to one M3D layer).
 */
struct SliceSpec
{
    int rows = 0;           ///< words in this slice
    int cols = 0;           ///< bits in this slice
    int wordline_ports = 1; ///< ports loading each wordline/bitline
    CellGeometry cell;      ///< geometry of this slice's cells
    /** Cell pitch actually used (3D slices share the max pitch). */
    double pitch_w = 0.0;
    double pitch_h = 0.0;
    /** Extra series R / parallel C in the wordline path (layer via). */
    double via_r = 0.0;
    double via_c = 0.0;
    /** Extra series resistance in the bitline discharge path. */
    double bitline_extra_r = 0.0;
    /** CAM slices cannot fold (all words must match concurrently). */
    bool cam = false;
    /** Process of the wordline driver / decoder feeding this slice. */
    const ProcessCorner *driver_process = nullptr;
    /** Process of the cells (access transistors) in this slice. */
    const ProcessCorner *cell_process = nullptr;
};

/** Per-slice evaluation results. */
struct SliceMetrics
{
    double decode_delay = 0.0;
    double wordline_delay = 0.0;
    double bitline_delay = 0.0;
    double sense_delay = 0.0;
    double read_energy = 0.0;    ///< decode+wordline+bitline+sense
    double leakage = 0.0;
    double array_w = 0.0;        ///< cell matrix width (m)
    double array_h = 0.0;        ///< cell matrix height (m)
    double area = 0.0;           ///< matrix + peripherals (m^2)

    double accessDelay() const
    {
        return decode_delay + wordline_delay + bitline_delay +
               sense_delay;
    }
};

/**
 * The analytical model.  Construct once per technology; evaluation is
 * stateless and cheap (microseconds), so design-space exploration can
 * call it millions of times.
 */
class ArrayModel
{
  public:
    explicit ArrayModel(const Technology &tech);

    /** Evaluate the conventional planar layout of `cfg`. */
    ArrayMetrics evaluate2D(const ArrayConfig &cfg) const;

    /**
     * Evaluate one slice with a fixed subarray plan.  Used directly by
     * the 3D model, and internally by evaluate2D.
     */
    SliceMetrics evaluateSlice(const SliceSpec &spec,
                               const SubarrayPlan &plan) const;

    /** Pick the delay-minimizing plan for a slice. */
    SubarrayPlan bestPlan(const SliceSpec &spec) const;

    /** Build the slice describing the full 2D array of `cfg`. */
    SliceSpec fullSlice(const ArrayConfig &cfg) const;

    /** Bank-level routing delay/energy for a structure of area `a`. */
    void bankRouting(const ArrayConfig &cfg, double bank_area,
                     double &delay, double &energy) const;

    /**
     * CAM search path for a slice: tag broadcast + match-line
     * evaluation + priority logic.
     */
    void camSearch(const SliceSpec &spec, const SubarrayPlan &plan,
                   int tag_bits, double &delay, double &energy) const;

    /** Output data return across a footprint of (w, h). */
    void dataReturn(double w, double h, int bits,
                    const ProcessCorner &p, double &delay,
                    double &energy) const;

    const Technology &tech() const { return tech_; }

  private:
    Technology tech_;
};

} // namespace m3d

#endif // M3D_SRAM_ARRAY_MODEL_HH_
