/**
 * @file
 * Bitcell geometry model.
 *
 * A multi-ported bitcell grows in both dimensions with the port count
 * (each port adds bitline tracks to the width and a wordline track to
 * the height), which is why "the area is proportional to the square of
 * the number of ports" (Section 3.2).  Port partitioning exploits
 * exactly this: halving the ports per layer shrinks both dimensions.
 *
 * For hetero-layer M3D, access transistors can be widened; wire pitch
 * dominates cell pitch, so a 2x transistor only costs ~1.45x port
 * width (the paper's 10+8-port register file split balances only under
 * such sublinear growth).
 */

#ifndef M3D_SRAM_CELL_HH_
#define M3D_SRAM_CELL_HH_

namespace m3d {

/** Physical geometry of one bitcell slice on one layer. */
struct CellGeometry
{
    double width = 0.0;   ///< cell width (m), along the wordline
    double height = 0.0;  ///< cell height (m), along the bitline
    double access_width = 1.0;  ///< access transistor width (x min)
    double core_width = 1.0;    ///< storage inverter width (x min)
    bool has_core = true; ///< contains the cross-coupled inverters
    int ports = 1;        ///< ports realized in this slice

    double area() const { return width * height; }

    /**
     * A complete SRAM/CAM cell with `ports` ports.
     *
     * @param ports Total ports (>= 1).
     * @param access_scale Access transistor width multiplier.
     * @param cell_scale Uniform upsizing of the whole cell (hetero
     *        BP/WP gives the top layer larger cells); scales drive
     *        strength and dimensions.
     */
    static CellGeometry sram(int ports, double access_scale=1.0,
                             double cell_scale=1.0);

    /**
     * A port-only slice (port partitioning's second layer): access
     * transistors and wiring but no storage inverters.
     */
    static CellGeometry portsOnly(int ports, double access_scale=1.0);

    /** Width contribution of `ports` ports at a given access scale. */
    static double portPitch(int ports, double access_scale);
};

} // namespace m3d

#endif // M3D_SRAM_CELL_HH_
