/**
 * @file
 * Inter-tier process variation model (ROADMAP item 2).
 *
 * The paper treats the top-tier transistor slowdown as one uniform
 * constant (~17%); the M3D-NoC literature (Musavvir et al.) shows the
 * production constraint is really a *distribution*: a systematic
 * per-tier shift plus random per-structure noise, with sequentially
 * integrated (monolithic) top tiers varying measurably more than the
 * bottom tier they are grown over, while TSV-stacked dies - processed
 * independently and bonded - keep planar-grade spread on both tiers.
 *
 * The model draws one delay multiplier per (virtual die, tier,
 * structure):
 *
 *   factor = (1 + sigma_sys[tier]  * G(die, tier))
 *          * (1 + sigma_rand[tier] * G(die, tier, structure))
 *
 * where G are approximately standard-normal draws from a *counter
 * based* RNG (util/rng.hh CounterRng): a fixed (seed, die, tier,
 * structure) tuple always yields the same sample, independent of the
 * order dies are evaluated in or the number of worker threads, and
 * without any libm call - so populations are bit-identical across
 * jobs, cache temperature, daemon-vs-in-process, and toolchains.
 *
 * A structure partitioned across both tiers blends the two tier
 * factors by its bottom share; a planar (2D) design sees only tier 0.
 */

#ifndef M3D_VARIATION_MODEL_HH_
#define M3D_VARIATION_MODEL_HH_

#include <cstdint>
#include <string>
#include <vector>

#include "core/design.hh"

namespace m3d {
namespace variation {

/** Knobs of one variation experiment. */
struct VariationConfig
{
    /** Experiment seed (fixed seed = fixed population). */
    std::uint64_t seed = 7;

    /** Virtual dies to draw. */
    int dies = 256;

    /** Frequency histogram bins between the span edges. */
    int bins = 8;

    /** Systematic per-(die, tier) delay sigma on the bottom tier. */
    double sigma_sys = 0.016;

    /** Random per-structure delay sigma on the bottom tier. */
    double sigma_rand = 0.008;

    /**
     * Top-tier sigma multiplier for sequentially integrated
     * (monolithic) stacks; TSV stacks keep 1.0 - both dies are
     * processed as ordinary planar wafers before bonding.
     */
    double m3d_top_scale = 2.0;

    /**
     * Histogram span around the nominal clock: bin edges run from
     * nominal * (1 - span_lo) to nominal * (1 + span_hi).  Dies below
     * the lowest edge are scrap; dies above the highest edge clamp
     * into the top bin.
     */
    double span_lo = 0.12;
    double span_hi = 0.04;
};

/** Stable nonzero id of a structure name (FNV-1a, forced odd). */
std::uint64_t structureId(const std::string &name);

/** Sigma multiplier of `tier` (0 = bottom) for a design's stack. */
double tierSigmaScale(const VariationConfig &cfg,
                      Integration integration, int tier);

/**
 * The delay multiplier of one (die, tier, structure) sample; always
 * positive (clamped at 0.5).  Pure function of its arguments.
 */
double delayFactor(const VariationConfig &cfg,
                   Integration integration, int die, int tier,
                   const std::string &structure);

/**
 * Frequency policy a design's nominal clock was derived under,
 * recovered from its partition results: Aggressive iff the aggressive
 * derivation reproduces `design.frequency` exactly and the
 * conservative one does not; Conservative otherwise (including every
 * planar design and clocks fixed by fiat, e.g. the naive hetero
 * design's scaled clock).
 */
FrequencyPolicy inferFrequencyPolicy(const CoreDesign &design);

/**
 * The derived clock of virtual die `die` for `design`, in Hz.
 *
 * Stacked designs re-run the core frequency derivation
 * (core/frequency.hh deriveFrequencyDerated) with each structure's
 * stacked latency scaled by its blended tier factors, then scale the
 * design's nominal clock by the derated-to-nominal ratio - so clocks
 * fixed outside the derivation (naive hetero, width variants) spread
 * around their own nominal value.  Planar designs divide the nominal
 * clock by the worst tier-0 structure factor.  A config with all
 * sigmas zero returns design.frequency exactly for every die.
 */
double dieFrequency(const CoreDesign &design,
                    const VariationConfig &cfg, int die);

/** All dies' clocks in die order; see dieFrequency. */
std::vector<double> dieFrequencies(const CoreDesign &design,
                                   const VariationConfig &cfg);

/**
 * Fraction of dies in [0, 1] whose clock meets `frequency_hz` - the
 * yield@f axis.  Pure math over dieFrequencies; no engine work.
 */
double yieldAtFrequency(const CoreDesign &design,
                        const VariationConfig &cfg,
                        double frequency_hz);

} // namespace variation
} // namespace m3d

#endif // M3D_VARIATION_MODEL_HH_
