#include "variation/model.hh"

#include <algorithm>

#include "sram/array_config.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace m3d {
namespace variation {

std::uint64_t
structureId(const std::string &name)
{
    // FNV-1a, forced odd so the id never collides with the reserved
    // systematic stream (coordinate 0).
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const char c : name) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull;
    }
    return h | 1;
}

double
tierSigmaScale(const VariationConfig &cfg, Integration integration,
               int tier)
{
    if (tier == 0)
        return 1.0;
    return integration == Integration::M3D ? cfg.m3d_top_scale : 1.0;
}

double
delayFactor(const VariationConfig &cfg, Integration integration,
            int die, int tier, const std::string &structure)
{
    const double scale = tierSigmaScale(cfg, integration, tier);
    const std::uint64_t d = static_cast<std::uint64_t>(die) + 1;
    const std::uint64_t t = static_cast<std::uint64_t>(tier) + 1;
    const CounterRng sys(cfg.seed, d, t, 0);
    const CounterRng rnd(cfg.seed, d, t, structureId(structure));
    const double factor =
        (1.0 + cfg.sigma_sys * scale * sys.gauss(0)) *
        (1.0 + cfg.sigma_rand * scale * rnd.gauss(0));
    return std::max(factor, 0.5);
}

FrequencyPolicy
inferFrequencyPolicy(const CoreDesign &design)
{
    if (design.partitions.empty())
        return FrequencyPolicy::Conservative;
    std::vector<PartitionResult> results;
    results.reserve(design.partitions.size());
    for (const auto &[name, r] : design.partitions)
        results.push_back(r);
    const FrequencyDerivation cons =
        deriveFrequency(results, FrequencyPolicy::Conservative);
    if (cons.frequency == design.frequency)
        return FrequencyPolicy::Conservative;
    const FrequencyDerivation agg =
        deriveFrequency(results, FrequencyPolicy::Aggressive);
    if (agg.frequency == design.frequency)
        return FrequencyPolicy::Aggressive;
    return FrequencyPolicy::Conservative;
}

double
dieFrequency(const CoreDesign &design, const VariationConfig &cfg,
             int die)
{
    M3D_ASSERT(die >= 0 && die < cfg.dies, "die out of range");
    const Integration integration = design.tech.integration;

    if (design.partitions.empty()) {
        // Planar die: every structure sits on tier 0; the cycle
        // follows the worst-hit timing-critical array.
        double crit = 0.0;
        for (const ArrayConfig &c : CoreStructures::all()) {
            crit = std::max(crit, delayFactor(cfg, integration, die,
                                              0, c.name));
        }
        return design.frequency / crit;
    }

    std::vector<PartitionResult> results;
    results.reserve(design.partitions.size());
    for (const auto &[name, r] : design.partitions)
        results.push_back(r);
    const FrequencyPolicy policy = inferFrequencyPolicy(design);
    const FrequencyDerivation nominal =
        deriveFrequency(results, policy);
    const FrequencyDerivation derated = deriveFrequencyDerated(
        results, policy,
        [&](const PartitionResult &r) {
            const double w = std::clamp(r.spec.bottom_share, 0.0, 1.0);
            const double m0 =
                delayFactor(cfg, integration, die, 0, r.cfg.name);
            const double m1 =
                delayFactor(cfg, integration, die, 1, r.cfg.name);
            return w * m0 + (1.0 - w) * m1;
        });
    // Scale the design's own nominal clock by the derated-to-nominal
    // ratio so clocks fixed outside the derivation (naive hetero,
    // width variants) spread around their actual value.  An all-unity
    // derate makes the ratio exactly 1.0.
    return design.frequency * (derated.frequency / nominal.frequency);
}

std::vector<double>
dieFrequencies(const CoreDesign &design, const VariationConfig &cfg)
{
    M3D_ASSERT(cfg.dies > 0, "need at least one die");
    std::vector<double> out;
    out.reserve(static_cast<std::size_t>(cfg.dies));
    for (int d = 0; d < cfg.dies; ++d)
        out.push_back(dieFrequency(design, cfg, d));
    return out;
}

double
yieldAtFrequency(const CoreDesign &design, const VariationConfig &cfg,
                 double frequency_hz)
{
    const std::vector<double> dies = dieFrequencies(design, cfg);
    std::size_t good = 0;
    for (const double f : dies) {
        if (f >= frequency_hz)
            ++good;
    }
    return static_cast<double>(good) /
           static_cast<double>(dies.size());
}

} // namespace variation
} // namespace m3d
