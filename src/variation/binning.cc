#include "variation/binning.hh"

#include <cmath>

#include "util/logging.hh"

namespace m3d {
namespace variation {

double
yieldAt(const VariationOutcome &outcome, double frequency_hz)
{
    if (outcome.die_hz.empty())
        return 0.0;
    std::size_t good = 0;
    for (const double f : outcome.die_hz) {
        if (f >= frequency_hz)
            ++good;
    }
    return static_cast<double>(good) /
           static_cast<double>(outcome.die_hz.size());
}

VariationOutcome
binPopulation(engine::Evaluator &ev, const CoreDesign &design,
              const VariationConfig &cfg,
              const std::vector<WorkloadProfile> &apps)
{
    M3D_ASSERT(cfg.dies > 0 && cfg.bins > 0,
               "need at least one die and one bin");
    M3D_ASSERT(!apps.empty(), "need at least one application");

    VariationOutcome out;
    out.nominal_hz = design.frequency;
    out.dies = cfg.dies;
    out.die_hz = dieFrequencies(design, cfg);

    double sum = 0.0;
    for (const double f : out.die_hz)
        sum += f;
    out.mean_hz = sum / static_cast<double>(cfg.dies);
    double var = 0.0;
    for (const double f : out.die_hz)
        var += (f - out.mean_hz) * (f - out.mean_hz);
    out.sigma_hz = std::sqrt(var / static_cast<double>(cfg.dies));

    // Fixed edges around the nominal clock: deterministic for a
    // given (design, config), independent of the drawn population.
    const double lo = out.nominal_hz * (1.0 - cfg.span_lo);
    const double hi = out.nominal_hz * (1.0 + cfg.span_hi);
    const double step =
        (hi - lo) / static_cast<double>(cfg.bins);
    out.bins.resize(static_cast<std::size_t>(cfg.bins));
    for (int b = 0; b < cfg.bins; ++b) {
        out.bins[static_cast<std::size_t>(b)].lo_hz =
            lo + step * static_cast<double>(b);
        out.bins[static_cast<std::size_t>(b)].hi_hz =
            lo + step * static_cast<double>(b + 1);
    }
    for (const double f : out.die_hz) {
        if (f < lo) {
            ++out.scrap; // below the lowest guaranteed clock
            continue;
        }
        int b = static_cast<int>((f - lo) / step);
        b = std::min(b, cfg.bins - 1); // clamp fast dies into the top
        ++out.bins[static_cast<std::size_t>(b)].count;
    }
    for (FrequencyBin &bin : out.bins)
        bin.yield = yieldAt(out, bin.lo_hz);

    // Price every non-empty bin at its shipped (lower-edge) clock in
    // one design-major batch: submit() regroups the runs app-major,
    // so the batched replay kernel streams each trace once against
    // all binned clocks.
    std::vector<std::size_t> priced;
    engine::BatchRunRequest breq;
    for (std::size_t b = 0; b < out.bins.size(); ++b) {
        if (out.bins[b].count == 0)
            continue;
        priced.push_back(b);
        CoreDesign binned = design;
        binned.frequency = out.bins[b].lo_hz;
        for (const WorkloadProfile &app : apps) {
            RunRequest rr;
            rr.kind = RunKind::Single;
            rr.design = binned;
            rr.app = app;
            rr.budget = ev.options().budget;
            rr.path = ev.options().trace_path;
            breq.runs.push_back(std::move(rr));
        }
    }
    if (!priced.empty()) {
        const engine::BatchRunResult bres = ev.submit(breq);
        for (std::size_t m = 0; m < priced.size(); ++m) {
            FrequencyBin &bin = out.bins[priced[m]];
            double instructions = 0.0, seconds = 0.0, energy = 0.0;
            for (std::size_t a = 0; a < apps.size(); ++a) {
                const AppRun &r =
                    bres.runs[m * apps.size() + a].single;
                instructions +=
                    static_cast<double>(r.sim.instructions);
                seconds += r.seconds;
                energy += r.energyJ();
            }
            bin.bips = instructions / seconds / 1e9;
            bin.epi_j = energy / instructions;
        }
    }

    for (const FrequencyBin &bin : out.bins) {
        out.expected_bips += bin.bips *
                             static_cast<double>(bin.count) /
                             static_cast<double>(cfg.dies);
    }
    return out;
}

} // namespace variation
} // namespace m3d
