/**
 * @file
 * Monte-Carlo frequency binning: one design into a priced population.
 *
 * binPopulation() draws N virtual dies from the variation model,
 * derives each die's clock through the core frequency derivation,
 * reduces the population to a deterministic frequency-bin histogram
 * (fixed edges around the nominal clock, shipped clock = each bin's
 * lower edge, like real speed binning), and prices every non-empty
 * bin's performance through ONE design-major Evaluator::submit()
 * batch - the SIMD replay kernel streams each application trace once
 * against all binned clocks, so the population costs barely more than
 * a single design.
 *
 * Everything upstream of the pricing is pure arithmetic over
 * counter-based samples, so the histogram, yield curve, and bin
 * pricing are byte-identical at any --jobs, cache temperature, and
 * daemon-vs-in-process.
 */

#ifndef M3D_VARIATION_BINNING_HH_
#define M3D_VARIATION_BINNING_HH_

#include <vector>

#include "engine/evaluator.hh"
#include "variation/model.hh"

namespace m3d {
namespace variation {

/** One frequency bin [lo_hz, hi_hz) of the population histogram. */
struct FrequencyBin
{
    double lo_hz = 0.0;      ///< lower edge = the shipped clock
    double hi_hz = 0.0;      ///< upper edge (top bin clamps above)
    int count = 0;           ///< dies binned here
    double yield = 0.0;      ///< fraction of dies at >= lo_hz
    double bips = 0.0;       ///< priced throughput at the shipped clock
    double epi_j = 0.0;      ///< energy per instruction (J) at it
};

/** A binned, priced population of one design. */
struct VariationOutcome
{
    double nominal_hz = 0.0;      ///< the design's nominal clock
    int dies = 0;                 ///< population size
    int scrap = 0;                ///< dies below the lowest edge
    double mean_hz = 0.0;         ///< population mean clock
    double sigma_hz = 0.0;        ///< population standard deviation
    std::vector<double> die_hz;   ///< per-die clocks, die order
    std::vector<FrequencyBin> bins; ///< ascending lower edge

    /** Yield-weighted shipped throughput (scrap contributes zero). */
    double expected_bips = 0.0;
};

/** Fraction of the population at or above `frequency_hz`. */
double yieldAt(const VariationOutcome &outcome, double frequency_hz);

/**
 * Draw, bin, and price one design's population; see the file
 * comment.  `apps` must be non-empty; each bin's throughput and
 * energy-per-instruction aggregate over all of them.
 */
VariationOutcome
binPopulation(engine::Evaluator &ev, const CoreDesign &design,
              const VariationConfig &cfg,
              const std::vector<WorkloadProfile> &apps);

} // namespace variation
} // namespace m3d

#endif // M3D_VARIATION_BINNING_HH_
