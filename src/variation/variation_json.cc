#include "variation/variation_json.hh"

namespace m3d {
namespace variation {

report::Json
binJson(const VariationOutcome &outcome, const FrequencyBin &bin)
{
    report::Json o = report::Json::object();
    o.set("lo_ghz", report::Json::number(bin.lo_hz / 1e9));
    o.set("hi_ghz", report::Json::number(bin.hi_hz / 1e9));
    o.set("shipped_ghz", report::Json::number(bin.lo_hz / 1e9));
    o.set("count",
          report::Json::number(static_cast<double>(bin.count)));
    o.set("share",
          report::Json::number(static_cast<double>(bin.count) /
                               static_cast<double>(outcome.dies)));
    o.set("yield", report::Json::number(bin.yield));
    o.set("bips", report::Json::number(bin.bips));
    o.set("epi_nj", report::Json::number(bin.epi_j * 1e9));
    return o;
}

report::Json
variationResultJson(const std::string &design,
                    const VariationConfig &cfg,
                    const std::vector<std::string> &apps,
                    const VariationOutcome &outcome)
{
    report::Json doc = report::Json::object();
    doc.set("kind", report::Json::string("m3d-variation"));
    doc.set("version", report::Json::number(1));
    doc.set("design", report::Json::string(design));
    doc.set("seed",
            report::Json::number(static_cast<double>(cfg.seed)));
    doc.set("dies",
            report::Json::number(static_cast<double>(cfg.dies)));
    doc.set("bins",
            report::Json::number(static_cast<double>(cfg.bins)));
    doc.set("sigma_sys", report::Json::number(cfg.sigma_sys));
    doc.set("sigma_rand", report::Json::number(cfg.sigma_rand));
    doc.set("m3d_top_scale",
            report::Json::number(cfg.m3d_top_scale));
    report::Json japps = report::Json::array();
    for (const std::string &a : apps)
        japps.push(report::Json::string(a));
    doc.set("apps", std::move(japps));
    doc.set("nominal_ghz",
            report::Json::number(outcome.nominal_hz / 1e9));
    doc.set("mean_ghz",
            report::Json::number(outcome.mean_hz / 1e9));
    doc.set("sigma_mhz",
            report::Json::number(outcome.sigma_hz / 1e6));
    doc.set("scrap",
            report::Json::number(static_cast<double>(outcome.scrap)));
    doc.set("scrap_share",
            report::Json::number(
                static_cast<double>(outcome.scrap) /
                static_cast<double>(outcome.dies)));
    doc.set("expected_bips",
            report::Json::number(outcome.expected_bips));
    report::Json bins = report::Json::array();
    for (const FrequencyBin &bin : outcome.bins)
        bins.push(binJson(outcome, bin));
    doc.set("histogram", std::move(bins));
    return doc;
}

} // namespace variation
} // namespace m3d
