/**
 * @file
 * The canonical "m3d-variation" JSON emission of a VariationOutcome.
 *
 * Exactly one piece of code builds this document, and both front ends
 * use it: `m3dtool variation --json` (in-process) and the m3dd
 * daemon's variation responses (src/service).  As with m3d-search,
 * that single origin makes the daemon-vs-in-process byte-identity
 * contract testable at the document level.
 *
 * The document deliberately excludes thread counts and wall-clock
 * times: the emission must be byte-identical at any --jobs, cache
 * temperature, and daemon-vs-in-process for a fixed (design, config).
 */

#ifndef M3D_VARIATION_VARIATION_JSON_HH_
#define M3D_VARIATION_VARIATION_JSON_HH_

#include <string>
#include <vector>

#include "report/json.hh"
#include "variation/binning.hh"

namespace m3d {
namespace variation {

/** One frequency bin as a JSON object. */
report::Json binJson(const VariationOutcome &outcome,
                     const FrequencyBin &bin);

/**
 * The complete versioned m3d-variation document for one binned,
 * priced population: the design and experiment knobs, the population
 * moments, the scrap count, and the bins in ascending-edge order with
 * their shipped clock, yield, and priced throughput/energy.
 */
report::Json variationResultJson(const std::string &design,
                                 const VariationConfig &cfg,
                                 const std::vector<std::string> &apps,
                                 const VariationOutcome &outcome);

} // namespace variation
} // namespace m3d

#endif // M3D_VARIATION_VARIATION_JSON_HH_
