/**
 * @file
 * The m3dd client: one blocking request/response connection to a
 * daemon's Unix-domain socket, speaking the framed JSON protocol
 * (service/protocol.hh).
 *
 * The client is deliberately thin: call() sends one request object
 * and returns the parsed response; the typed helpers on top of it
 * (ping/stats/save/shutdown) wrap the fixed request shapes.  Result
 * reconstruction - turning a response's JSON back into AppRun /
 * PartitionResult structs - lives in protocol.hh's parsers, shared
 * with the tests.
 *
 * available() is the probe behind `--daemon auto`: a cheap
 * connect+ping that tells a front end whether to route through the
 * daemon or transparently fall back to in-process evaluation.
 */

#ifndef M3D_SERVICE_CLIENT_HH_
#define M3D_SERVICE_CLIENT_HH_

#include <cstdint>
#include <string>

#include "report/json.hh"
#include "service/protocol.hh"

namespace m3d {
namespace service {

/** One connection to a running m3dd; see file comment. */
class Client
{
  public:
    Client() = default;
    ~Client();

    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;

    /** Connect to a daemon's socket; false + *error if none listens. */
    bool connect(const std::string &socket_path, std::string *error);

    bool connected() const { return fd_ >= 0; }
    void close();

    /**
     * One request/response round trip.  False + *error on transport
     * or parse failure; a daemon-side {"ok":false} response still
     * returns true (the caller inspects the response).
     */
    bool call(const report::Json &request, report::Json *response,
              std::string *error);

    /**
     * Like call(), but also fails on {"ok":false} responses, with
     * *error carrying the daemon's error message.
     */
    bool callChecked(const report::Json &request,
                     report::Json *response, std::string *error);

    /**
     * True iff a live daemon answers a ping on `socket_path` - the
     * `--daemon auto` probe.  Never raises; any failure is "no".
     */
    static bool available(const std::string &socket_path);

  private:
    int fd_ = -1;
    std::uint32_t max_frame_bytes_ = kDefaultMaxFrameBytes;
};

} // namespace service
} // namespace m3d

#endif // M3D_SERVICE_CLIENT_HH_
