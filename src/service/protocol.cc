#include "service/protocol.hh"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace m3d {
namespace service {

const char kFrameMagic[4] = {'M', '3', 'D', '1'};

namespace {

/** Full read: false on EOF/error before `n` bytes arrive. */
bool
readAll(int fd, void *buf, std::size_t n, bool *clean_eof)
{
    auto *p = static_cast<char *>(buf);
    std::size_t got = 0;
    while (got < n) {
        const ssize_t r = ::read(fd, p + got, n - got);
        if (r == 0) {
            if (clean_eof)
                *clean_eof = (got == 0);
            return false;
        }
        if (r < 0) {
            if (errno == EINTR)
                continue;
            if (clean_eof)
                *clean_eof = false;
            return false;
        }
        got += static_cast<std::size_t>(r);
    }
    return true;
}

bool
writeAll(int fd, const void *buf, std::size_t n)
{
    const auto *p = static_cast<const char *>(buf);
    std::size_t sent = 0;
    while (sent < n) {
        // MSG_NOSIGNAL: a peer that vanished mid-response must fail
        // the write, not SIGPIPE the daemon.
        const ssize_t r =
            ::send(fd, p + sent, n - sent, MSG_NOSIGNAL);
        if (r < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        sent += static_cast<std::size_t>(r);
    }
    return true;
}

report::Json
jnum(double v)
{
    return report::Json::number(v);
}

report::Json
jcount(std::uint64_t v)
{
    return report::Json::number(static_cast<double>(v));
}

bool
getNumber(const report::Json &obj, const char *key, double *out)
{
    const report::Json *m = obj.find(key);
    if (!m || !m->isNumber())
        return false;
    *out = m->asNumber();
    return true;
}

bool
getCount(const report::Json &obj, const char *key, std::uint64_t *out)
{
    double v = 0.0;
    if (!getNumber(obj, key, &v) || v < 0.0)
        return false;
    *out = static_cast<std::uint64_t>(v);
    return true;
}

bool
getInt(const report::Json &obj, const char *key, int *out)
{
    double v = 0.0;
    if (!getNumber(obj, key, &v))
        return false;
    *out = static_cast<int>(v);
    return true;
}

/** Field table driving Activity's (de)serialization. */
struct ActField
{
    const char *name;
    std::uint64_t Activity::*member;
};

const ActField kActFields[] = {
    {"cycles", &Activity::cycles},
    {"instructions", &Activity::instructions},
    {"fetches", &Activity::fetches},
    {"decodes", &Activity::decodes},
    {"complex_decodes", &Activity::complex_decodes},
    {"bpt_lookups", &Activity::bpt_lookups},
    {"btb_lookups", &Activity::btb_lookups},
    {"mispredicts", &Activity::mispredicts},
    {"rat_reads", &Activity::rat_reads},
    {"rat_writes", &Activity::rat_writes},
    {"dispatches", &Activity::dispatches},
    {"iq_writes", &Activity::iq_writes},
    {"iq_wakeups", &Activity::iq_wakeups},
    {"issues", &Activity::issues},
    {"rf_reads", &Activity::rf_reads},
    {"rf_writes", &Activity::rf_writes},
    {"alu_ops", &Activity::alu_ops},
    {"fp_ops", &Activity::fp_ops},
    {"mul_div_ops", &Activity::mul_div_ops},
    {"loads", &Activity::loads},
    {"stores", &Activity::stores},
    {"lq_searches", &Activity::lq_searches},
    {"sq_searches", &Activity::sq_searches},
    {"l1d_accesses", &Activity::l1d_accesses},
    {"l1i_accesses", &Activity::l1i_accesses},
    {"l2_accesses", &Activity::l2_accesses},
    {"l3_accesses", &Activity::l3_accesses},
    {"dram_accesses", &Activity::dram_accesses},
    {"noc_flits", &Activity::noc_flits},
    {"stall_rob", &Activity::stall_rob},
    {"stall_iq", &Activity::stall_iq},
    {"stall_lsq", &Activity::stall_lsq},
    {"stall_icache", &Activity::stall_icache},
    {"bound_deps", &Activity::bound_deps},
    {"bound_fu", &Activity::bound_fu},
};

/** Field table driving ArrayMetrics' (de)serialization. */
struct MetField
{
    const char *name;
    double ArrayMetrics::*member;
};

const MetField kMetFields[] = {
    {"access_latency", &ArrayMetrics::access_latency},
    {"access_energy", &ArrayMetrics::access_energy},
    {"write_energy", &ArrayMetrics::write_energy},
    {"area", &ArrayMetrics::area},
    {"leakage_power", &ArrayMetrics::leakage_power},
    {"routing_delay", &ArrayMetrics::routing_delay},
    {"decode_delay", &ArrayMetrics::decode_delay},
    {"wordline_delay", &ArrayMetrics::wordline_delay},
    {"bitline_delay", &ArrayMetrics::bitline_delay},
    {"sense_delay", &ArrayMetrics::sense_delay},
    {"output_delay", &ArrayMetrics::output_delay},
    {"cam_search_delay", &ArrayMetrics::cam_search_delay},
};

report::Json
metricsJson(const ArrayMetrics &m)
{
    report::Json o = report::Json::object();
    for (const MetField &f : kMetFields)
        o.set(f.name, jnum(m.*(f.member)));
    return o;
}

bool
parseMetrics(const report::Json &j, ArrayMetrics *out)
{
    if (!j.isObject())
        return false;
    for (const MetField &f : kMetFields) {
        if (!getNumber(j, f.name, &(out->*(f.member))))
            return false;
    }
    return true;
}

report::Json
energyJson(const EnergyReport &e)
{
    report::Json o = report::Json::object();
    o.set("array_j", jnum(e.array_j));
    o.set("logic_j", jnum(e.logic_j));
    o.set("clock_j", jnum(e.clock_j));
    o.set("leakage_j", jnum(e.leakage_j));
    o.set("noc_j", jnum(e.noc_j));
    return o;
}

bool
parseEnergy(const report::Json &j, EnergyReport *out)
{
    return j.isObject() &&
           getNumber(j, "array_j", &out->array_j) &&
           getNumber(j, "logic_j", &out->logic_j) &&
           getNumber(j, "clock_j", &out->clock_j) &&
           getNumber(j, "leakage_j", &out->leakage_j) &&
           getNumber(j, "noc_j", &out->noc_j);
}

} // namespace

FrameStatus
readFrame(int fd, std::string *payload, std::uint32_t max_bytes,
          std::string *error)
{
    payload->clear();
    char header[8];
    bool clean_eof = false;
    if (!readAll(fd, header, sizeof(header), &clean_eof)) {
        if (clean_eof)
            return FrameStatus::Eof;
        if (error)
            *error = "truncated frame header";
        return FrameStatus::Error;
    }
    if (std::memcmp(header, kFrameMagic, sizeof(kFrameMagic)) != 0) {
        if (error)
            *error = "bad frame magic (not the m3dd protocol?)";
        return FrameStatus::BadMagic;
    }
    std::uint32_t len = 0;
    for (int i = 3; i >= 0; --i)
        len = (len << 8) |
              static_cast<unsigned char>(header[4 + i]);
    if (len > max_bytes) {
        if (error)
            *error = "frame payload of " + std::to_string(len) +
                     " bytes exceeds the " +
                     std::to_string(max_bytes) + "-byte limit";
        return FrameStatus::TooLarge;
    }
    payload->resize(len);
    if (len > 0 && !readAll(fd, payload->data(), len, nullptr)) {
        if (error)
            *error = "truncated frame payload (expected " +
                     std::to_string(len) + " bytes)";
        payload->clear();
        return FrameStatus::Error;
    }
    return FrameStatus::Ok;
}

bool
writeFrame(int fd, const std::string &payload, std::string *error)
{
    if (payload.size() > UINT32_MAX) {
        if (error)
            *error = "payload too large to frame";
        return false;
    }
    const auto len = static_cast<std::uint32_t>(payload.size());
    char header[8];
    std::memcpy(header, kFrameMagic, sizeof(kFrameMagic));
    for (int i = 0; i < 4; ++i)
        header[4 + i] = static_cast<char>((len >> (8 * i)) & 0xff);
    if (!writeAll(fd, header, sizeof(header)) ||
        !writeAll(fd, payload.data(), payload.size())) {
        if (error)
            *error = std::string("frame write failed: ") +
                     std::strerror(errno);
        return false;
    }
    return true;
}

report::Json
okResponse(const std::string &type)
{
    report::Json o = report::Json::object();
    o.set("ok", report::Json::boolean(true));
    o.set("type", report::Json::string(type));
    return o;
}

report::Json
errorResponse(const std::string &code, const std::string &message)
{
    report::Json o = report::Json::object();
    o.set("ok", report::Json::boolean(false));
    report::Json e = report::Json::object();
    e.set("code", report::Json::string(code));
    e.set("message", report::Json::string(message));
    o.set("error", std::move(e));
    return o;
}

report::Json
activityJson(const Activity &a)
{
    report::Json o = report::Json::object();
    for (const ActField &f : kActFields)
        o.set(f.name, jcount(a.*(f.member)));
    return o;
}

bool
parseActivity(const report::Json &j, Activity *out)
{
    if (!j.isObject())
        return false;
    for (const ActField &f : kActFields) {
        if (!getCount(j, f.name, &(out->*(f.member))))
            return false;
    }
    return true;
}

report::Json
simResultJson(const SimResult &r)
{
    report::Json o = report::Json::object();
    o.set("instructions", jcount(r.instructions));
    o.set("cycles", jcount(r.cycles));
    o.set("frequency", jnum(r.frequency));
    o.set("activity", activityJson(r.activity));
    return o;
}

bool
parseSimResult(const report::Json &j, SimResult *out)
{
    if (!j.isObject())
        return false;
    const report::Json *act = j.find("activity");
    return getCount(j, "instructions", &out->instructions) &&
           getCount(j, "cycles", &out->cycles) &&
           getNumber(j, "frequency", &out->frequency) &&
           act && parseActivity(*act, &out->activity);
}

report::Json
appRunJson(const AppRun &r)
{
    report::Json o = report::Json::object();
    o.set("sim", simResultJson(r.sim));
    o.set("energy", energyJson(r.energy));
    o.set("seconds", jnum(r.seconds));
    return o;
}

bool
parseAppRun(const report::Json &j, AppRun *out)
{
    if (!j.isObject())
        return false;
    const report::Json *sim = j.find("sim");
    const report::Json *energy = j.find("energy");
    return sim && parseSimResult(*sim, &out->sim) &&
           energy && parseEnergy(*energy, &out->energy) &&
           getNumber(j, "seconds", &out->seconds);
}

report::Json
multiRunJson(const MultiRun &r)
{
    report::Json o = report::Json::object();
    report::Json res = report::Json::object();
    res.set("seconds", jnum(r.result.seconds));
    res.set("serial_seconds", jnum(r.result.serial_seconds));
    res.set("parallel_seconds", jnum(r.result.parallel_seconds));
    res.set("sync_seconds", jnum(r.result.sync_seconds));
    res.set("frequency", jnum(r.result.frequency));
    res.set("num_cores", jnum(r.result.num_cores));
    res.set("total", activityJson(r.result.total));
    report::Json cores = report::Json::array();
    for (const SimResult &c : r.result.per_core)
        cores.push(simResultJson(c));
    res.set("per_core", std::move(cores));
    o.set("result", std::move(res));
    o.set("energy", energyJson(r.energy));
    return o;
}

bool
parseMultiRun(const report::Json &j, MultiRun *out)
{
    if (!j.isObject())
        return false;
    const report::Json *res = j.find("result");
    const report::Json *energy = j.find("energy");
    if (!res || !res->isObject() || !energy ||
        !parseEnergy(*energy, &out->energy))
        return false;
    const report::Json *total = res->find("total");
    const report::Json *cores = res->find("per_core");
    if (!getNumber(*res, "seconds", &out->result.seconds) ||
        !getNumber(*res, "serial_seconds",
                   &out->result.serial_seconds) ||
        !getNumber(*res, "parallel_seconds",
                   &out->result.parallel_seconds) ||
        !getNumber(*res, "sync_seconds", &out->result.sync_seconds) ||
        !getNumber(*res, "frequency", &out->result.frequency) ||
        !getInt(*res, "num_cores", &out->result.num_cores) ||
        !total || !parseActivity(*total, &out->result.total) ||
        !cores || !cores->isArray())
        return false;
    out->result.per_core.clear();
    for (const report::Json &c : cores->elements()) {
        SimResult sr;
        if (!parseSimResult(c, &sr))
            return false;
        out->result.per_core.push_back(sr);
    }
    return true;
}

report::Json
runResultJson(const RunResult &r)
{
    report::Json o = report::Json::object();
    if (r.kind == RunKind::Single) {
        o.set("kind", report::Json::string("single"));
        o.set("run", appRunJson(r.single));
    } else {
        o.set("kind", report::Json::string("multi"));
        o.set("run", multiRunJson(r.multi));
    }
    return o;
}

bool
parseRunResult(const report::Json &j, RunResult *out)
{
    if (!j.isObject())
        return false;
    const report::Json *kind = j.find("kind");
    const report::Json *run = j.find("run");
    if (!kind || !kind->isString() || !run)
        return false;
    if (kind->asString() == "single") {
        out->kind = RunKind::Single;
        return parseAppRun(*run, &out->single);
    }
    if (kind->asString() == "multi") {
        out->kind = RunKind::Multi;
        return parseMultiRun(*run, &out->multi);
    }
    return false;
}

report::Json
partitionResultJson(const PartitionResult &r)
{
    report::Json o = report::Json::object();
    report::Json cfg = report::Json::object();
    cfg.set("name", report::Json::string(r.cfg.name));
    cfg.set("words", jnum(r.cfg.words));
    cfg.set("bits", jnum(r.cfg.bits));
    cfg.set("read_ports", jnum(r.cfg.read_ports));
    cfg.set("write_ports", jnum(r.cfg.write_ports));
    cfg.set("banks", jnum(r.cfg.banks));
    cfg.set("cam", report::Json::boolean(r.cfg.cam));
    cfg.set("cam_tag_bits", jnum(r.cfg.cam_tag_bits));
    o.set("cfg", std::move(cfg));
    report::Json spec = report::Json::object();
    spec.set("kind", jnum(static_cast<int>(r.spec.kind)));
    spec.set("bottom_share", jnum(r.spec.bottom_share));
    spec.set("bottom_ports", jnum(r.spec.bottom_ports));
    spec.set("top_access_scale", jnum(r.spec.top_access_scale));
    spec.set("top_cell_scale", jnum(r.spec.top_cell_scale));
    o.set("spec", std::move(spec));
    o.set("planar", metricsJson(r.planar));
    o.set("stacked", metricsJson(r.stacked));
    return o;
}

bool
parsePartitionResult(const report::Json &j, PartitionResult *out)
{
    if (!j.isObject())
        return false;
    const report::Json *cfg = j.find("cfg");
    const report::Json *spec = j.find("spec");
    const report::Json *planar = j.find("planar");
    const report::Json *stacked = j.find("stacked");
    if (!cfg || !cfg->isObject() || !spec || !spec->isObject() ||
        !planar || !stacked)
        return false;
    const report::Json *name = cfg->find("name");
    const report::Json *cam = cfg->find("cam");
    if (!name || !name->isString() || !cam || !cam->isBool())
        return false;
    out->cfg.name = name->asString();
    out->cfg.cam = cam->asBool();
    int kind = 0;
    if (!getInt(*cfg, "words", &out->cfg.words) ||
        !getInt(*cfg, "bits", &out->cfg.bits) ||
        !getInt(*cfg, "read_ports", &out->cfg.read_ports) ||
        !getInt(*cfg, "write_ports", &out->cfg.write_ports) ||
        !getInt(*cfg, "banks", &out->cfg.banks) ||
        !getInt(*cfg, "cam_tag_bits", &out->cfg.cam_tag_bits) ||
        !getInt(*spec, "kind", &kind) ||
        !getNumber(*spec, "bottom_share", &out->spec.bottom_share) ||
        !getInt(*spec, "bottom_ports", &out->spec.bottom_ports) ||
        !getNumber(*spec, "top_access_scale",
                   &out->spec.top_access_scale) ||
        !getNumber(*spec, "top_cell_scale",
                   &out->spec.top_cell_scale))
        return false;
    out->spec.kind = static_cast<PartitionKind>(kind);
    return parseMetrics(*planar, &out->planar) &&
           parseMetrics(*stacked, &out->stacked);
}

} // namespace service
} // namespace m3d
