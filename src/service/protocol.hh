/**
 * @file
 * The m3dd wire protocol: length-framed JSON over a local stream
 * socket, built on src/report's writer/parser.
 *
 * Framing.  Every message is one frame:
 *
 *     bytes 0-3   magic "M3D1" (protocol generation; bumped on any
 *                 incompatible change)
 *     bytes 4-7   payload length, unsigned 32-bit little-endian
 *     bytes 8-    payload: one complete JSON document (UTF-8)
 *
 * A reader that sees a bad magic or a length above its limit cannot
 * resynchronize the stream (the remainder is unframed bytes), so
 * those conditions answer with a structured error and close the
 * connection; the daemon itself stays up and keeps serving other
 * connections.  In-frame problems - malformed JSON, unknown request
 * types, unresolvable names - answer with a structured error on the
 * same connection, which remains usable.
 *
 * Payloads.  Requests are objects with a "type" member ("ping",
 * "eval", "sweep", "search", "stats", "save", "shutdown"); responses
 * are objects with a boolean "ok" - `true` plus type-specific
 * members, or `false` plus {"error":{"code","message"}}.
 *
 * Results cross the wire losslessly: every double is rendered with
 * report::Json's shortest-round-trip formatting (bit-exact through
 * write -> parse), and counters are exact in a double up to 2^53 -
 * far above any simulation budget this model runs.  That is the
 * foundation of the daemon-vs-in-process byte-identity contract
 * (tests/test_service.cc): a client that re-renders daemon results
 * produces the same bytes as the in-process path.
 */

#ifndef M3D_SERVICE_PROTOCOL_HH_
#define M3D_SERVICE_PROTOCOL_HH_

#include <cstdint>
#include <string>

#include "power/sim_harness.hh"
#include "report/json.hh"
#include "sram/explorer.hh"

namespace m3d {
namespace service {

/** Protocol magic; the generation digit is part of compatibility. */
extern const char kFrameMagic[4];

/** Default cap on one frame's payload (requests and responses). */
constexpr std::uint32_t kDefaultMaxFrameBytes = 8u << 20;

/** Outcome of reading one frame. */
enum class FrameStatus
{
    Ok,       ///< *payload holds one complete JSON document
    Eof,      ///< peer closed cleanly before any frame byte
    BadMagic, ///< stream is not speaking this protocol; close it
    TooLarge, ///< declared length above the cap; close the stream
    Error,    ///< short read / I/O error mid-frame; close the stream
};

/**
 * Read one frame from `fd` (blocking).  On Ok, `*payload` holds the
 * payload bytes.  On any other status `*error` describes the
 * condition; only Eof is a clean shutdown.
 */
FrameStatus readFrame(int fd, std::string *payload,
                      std::uint32_t max_bytes, std::string *error);

/** Write one frame to `fd` (blocking); false + *error on failure. */
bool writeFrame(int fd, const std::string &payload,
                std::string *error);

// ---------------------------------------------------------------------
// Response envelopes.
// ---------------------------------------------------------------------

/** `{"ok":true,"type":<type>}` - callers append members. */
report::Json okResponse(const std::string &type);

/** `{"ok":false,"error":{"code":...,"message":...}}`. */
report::Json errorResponse(const std::string &code,
                           const std::string &message);

// ---------------------------------------------------------------------
// Result serialization (bit-exact through the JSON writer/parser).
// Parsers return false on missing/mistyped members and leave *out in
// an unspecified state.
// ---------------------------------------------------------------------

report::Json activityJson(const Activity &a);
bool parseActivity(const report::Json &j, Activity *out);

report::Json simResultJson(const SimResult &r);
bool parseSimResult(const report::Json &j, SimResult *out);

report::Json appRunJson(const AppRun &r);
bool parseAppRun(const report::Json &j, AppRun *out);

report::Json multiRunJson(const MultiRun &r);
bool parseMultiRun(const report::Json &j, MultiRun *out);

/** Tagged union: {"kind":"single"|"multi", ...}. */
report::Json runResultJson(const RunResult &r);
bool parseRunResult(const report::Json &j, RunResult *out);

report::Json partitionResultJson(const PartitionResult &r);
bool parsePartitionResult(const report::Json &j,
                          PartitionResult *out);

} // namespace service
} // namespace m3d

#endif // M3D_SERVICE_PROTOCOL_HH_
