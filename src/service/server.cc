#include "service/server.hh"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <sstream>

#include "search/objectives.hh"
#include "search/search_json.hh"
#include "search/search_space.hh"
#include "search/strategy.hh"
#include "sram/array_config.hh"
#include "util/logging.hh"
#include "variation/variation_json.hh"

namespace m3d {
namespace service {

namespace {

/** Domain tag of the daemon's partition-coalescing keys. */
constexpr std::uint64_t kServicePartitionDomain = 0x6d336464'70617274ULL;

/** Sanity cap on runs in one eval request (not a protocol limit). */
constexpr std::size_t kMaxRunsPerRequest = 1024;

const std::string *
getString(const report::Json &j, const char *key)
{
    const report::Json *v = j.find(key);
    if (v == nullptr || !v->isString())
        return nullptr;
    return &v->asString();
}

bool
getUint(const report::Json &j, const char *key, std::uint64_t *out)
{
    const report::Json *v = j.find(key);
    if (v == nullptr)
        return false; // absent: caller keeps its default
    if (v->isNumber() && v->asNumber() >= 0.0)
        *out = static_cast<std::uint64_t>(v->asNumber());
    return true;
}

void
getNumber(const report::Json &j, const char *key, double *out)
{
    const report::Json *v = j.find(key);
    if (v != nullptr && v->isNumber())
        *out = v->asNumber(); // absent: caller keeps its default
}

report::Json
statsJson(const engine::CacheStats &s, std::size_t entries)
{
    report::Json o = report::Json::object();
    o.set("hits",
          report::Json::number(static_cast<double>(s.hits)));
    o.set("misses",
          report::Json::number(static_cast<double>(s.misses)));
    o.set("entries",
          report::Json::number(static_cast<double>(entries)));
    return o;
}

bool
techByNameNoFatal(const std::string &name, Technology *out)
{
    if (name == "m3d-het") {
        *out = Technology::m3dHetero();
        return true;
    }
    if (name == "m3d-iso") {
        *out = Technology::m3dIso();
        return true;
    }
    if (name == "tsv3d") {
        *out = Technology::tsv3D();
        return true;
    }
    return false;
}

/** The m3dtool name forms: lowercased, and lowercased-hyphenated. */
void
addNameForms(std::unordered_map<std::string, CoreDesign> *map,
             const CoreDesign &d)
{
    std::string lower = d.name;
    for (char &c : lower)
        c = static_cast<char>(std::tolower(c));
    map->emplace(lower, d);
    std::string key = lower;
    for (char &c : key) {
        if (c == ' ')
            c = '-';
    }
    map->emplace(key, d);
}

} // namespace

/** One pending evaluation's rendezvous: producer fulfills, waiters
 * block.  fulfill/fail are first-write-wins so a drain-side failure
 * after a hook already fired cannot clobber a result. */
template <typename T> struct Server::Slot
{
    std::mutex m;
    std::condition_variable cv;
    bool done = false;
    T value{};
    std::string error;

    void fulfill(const T &v)
    {
        {
            std::lock_guard<std::mutex> lock(m);
            if (done)
                return;
            value = v;
            done = true;
        }
        cv.notify_all();
    }

    void fail(const std::string &e)
    {
        {
            std::lock_guard<std::mutex> lock(m);
            if (done)
                return;
            error = e;
            done = true;
        }
        cv.notify_all();
    }

    /** Block until done; true iff the slot holds a value. */
    bool wait()
    {
        std::unique_lock<std::mutex> lock(m);
        cv.wait(lock, [this] { return done; });
        return error.empty();
    }
};

Server::Server(ServerOptions options) : options_(std::move(options))
{
    engine::EvalOptions eopts;
    eopts.threads = options_.threads;
    ev_ = std::make_unique<engine::Evaluator>(eopts);
}

Server::~Server() { stop(); }

bool
Server::start(std::string *error)
{
    if (running_.load()) {
        if (error)
            *error = "server is already running";
        return false;
    }
    if (options_.socket_path.empty()) {
        if (error)
            *error = "no socket path configured";
        return false;
    }

    // Persistence first: refuse to serve at all if another daemon
    // owns the cache dir (satellite contract: fail fast, not
    // corrupt slowly).
    if (!options_.cache_dir.empty()) {
        if (!lock_.acquire(options_.cache_dir, error))
            return false;
        const std::size_t loaded =
            ev_->cache().loadShards(options_.cache_dir);
        if (loaded != 0)
            std::cerr << "m3dd: loaded " << loaded
                      << " cached partition entries from '"
                      << options_.cache_dir << "'\n";
    }

    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options_.socket_path.size() >= sizeof(addr.sun_path)) {
        if (error)
            *error = "socket path '" + options_.socket_path +
                     "' exceeds the AF_UNIX limit of " +
                     std::to_string(sizeof(addr.sun_path) - 1) +
                     " bytes";
        lock_.release();
        return false;
    }
    std::memcpy(addr.sun_path, options_.socket_path.c_str(),
                options_.socket_path.size() + 1);

    // A leftover socket file is either a live daemon (connectable:
    // refuse) or the debris of a dead one (unlink and take over).
    if (std::filesystem::exists(options_.socket_path)) {
        const int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (probe >= 0) {
            const bool live =
                ::connect(probe,
                          reinterpret_cast<const sockaddr *>(&addr),
                          sizeof(addr)) == 0;
            ::close(probe);
            if (live) {
                if (error)
                    *error = "socket '" + options_.socket_path +
                             "' is already served by a live m3dd; "
                             "stop it or pick a different --socket";
                lock_.release();
                return false;
            }
        }
        ::unlink(options_.socket_path.c_str());
    }

    const std::filesystem::path parent =
        std::filesystem::path(options_.socket_path).parent_path();
    if (!parent.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(parent, ec);
    }

    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
        if (error)
            *error = std::string("socket(): ") + std::strerror(errno);
        lock_.release();
        return false;
    }
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listen_fd_, 64) != 0) {
        if (error)
            *error = "cannot listen on '" + options_.socket_path +
                     "': " + std::strerror(errno);
        ::close(listen_fd_);
        listen_fd_ = -1;
        lock_.release();
        return false;
    }

    stopping_.store(false);
    stop_requested_.store(false);
    running_.store(true);
    accept_thread_ = std::thread(&Server::acceptLoop, this);
    drain_thread_ = std::thread(&Server::drainLoop, this);
    if (options_.snapshot_every_s > 0.0 &&
        !options_.cache_dir.empty())
        snapshot_thread_ = std::thread(&Server::snapshotLoop, this);
    return true;
}

void
Server::wait(const volatile std::sig_atomic_t *external_stop)
{
    if (!running_.load())
        return;
    std::unique_lock<std::mutex> lock(stop_mutex_);
    while (!stop_requested_.load() && !stopping_.load() &&
           (external_stop == nullptr || *external_stop == 0)) {
        stop_cv_.wait_for(lock, std::chrono::milliseconds(200));
    }
}

void
Server::requestStop()
{
    stop_requested_.store(true);
    {
        std::lock_guard<std::mutex> lock(stop_mutex_);
    }
    stop_cv_.notify_all();
}

void
Server::stop()
{
    if (!running_.exchange(false)) {
        // Never started (or a second stop); nothing to tear down.
        return;
    }
    stopping_.store(true);
    {
        std::lock_guard<std::mutex> lock(queue_mutex_);
    }
    queue_cv_.notify_all();
    requestStop();

    if (listen_fd_ >= 0)
        ::shutdown(listen_fd_, SHUT_RDWR);
    {
        // Unblock every connection handler stuck in readFrame().
        std::lock_guard<std::mutex> lock(conn_mutex_);
        for (const int fd : conn_fds_)
            ::shutdown(fd, SHUT_RDWR);
    }

    if (accept_thread_.joinable())
        accept_thread_.join();
    if (drain_thread_.joinable())
        drain_thread_.join();
    if (snapshot_thread_.joinable())
        snapshot_thread_.join();
    // Join the handlers WITHOUT holding conn_mutex_: a handler's
    // epilogue takes that mutex to record its exit, so joining under
    // it deadlocks against any connection that is winding down.
    std::vector<std::thread> conns;
    {
        std::lock_guard<std::mutex> lock(conn_mutex_);
        conns.swap(conn_threads_);
        finished_conn_threads_.clear();
    }
    for (std::thread &t : conns) {
        if (t.joinable())
            t.join();
    }

    if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
    }
    ::unlink(options_.socket_path.c_str());

    if (!options_.cache_dir.empty() && lock_.held()) {
        ev_->cache().saveShards(options_.cache_dir);
        snapshots_.fetch_add(1);
        lock_.release();
    }
}

ServerStats
Server::stats() const
{
    ServerStats s;
    s.connections = connections_.load();
    s.requests = requests_.load();
    s.errors = errors_.load();
    s.runs_requested = runs_requested_.load();
    s.runs_coalesced = runs_coalesced_.load();
    s.runs_submitted = runs_submitted_.load();
    s.run_hook_fires = run_hook_fires_.load();
    s.partitions_requested = partitions_requested_.load();
    s.partitions_coalesced = partitions_coalesced_.load();
    s.partitions_submitted = partitions_submitted_.load();
    s.drains = drains_.load();
    s.searches = searches_.load();
    s.variations = variations_.load();
    s.snapshots = snapshots_.load();
    return s;
}

std::size_t
Server::snapshot()
{
    if (options_.cache_dir.empty())
        return 0;
    const std::size_t n = ev_->cache().saveShards(options_.cache_dir);
    snapshots_.fetch_add(1);
    return n;
}

void
Server::holdDrain(bool hold)
{
    {
        std::lock_guard<std::mutex> lock(queue_mutex_);
        drain_hold_ = hold;
    }
    queue_cv_.notify_all();
}

// ---------------------------------------------------------------------
// Threads.
// ---------------------------------------------------------------------

void
Server::acceptLoop()
{
    while (!stopping_.load()) {
        pollfd pfd{};
        pfd.fd = listen_fd_;
        pfd.events = POLLIN;
        const int r = ::poll(&pfd, 1, 200);
        if (stopping_.load())
            break;
        if (r <= 0)
            continue;
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0)
            continue;
        connections_.fetch_add(1);
        std::lock_guard<std::mutex> lock(conn_mutex_);
        // Reap handlers that already finished so a long-lived daemon
        // does not accumulate one dead thread per past connection.
        for (const std::thread::id id : finished_conn_threads_) {
            const auto it = std::find_if(
                conn_threads_.begin(), conn_threads_.end(),
                [&](const std::thread &t) {
                    return t.get_id() == id;
                });
            if (it != conn_threads_.end()) {
                it->join();
                conn_threads_.erase(it);
            }
        }
        finished_conn_threads_.clear();
        conn_fds_.insert(fd);
        conn_threads_.emplace_back(&Server::serveConnection, this,
                                   fd);
    }
}

void
Server::drainLoop()
{
    for (;;) {
        std::vector<std::pair<Key128, std::shared_ptr<RunSlot>>>
            runs;
        std::vector<std::pair<Key128, std::shared_ptr<PartSlot>>>
            parts;
        engine::BatchRunRequest batch;
        {
            std::unique_lock<std::mutex> lock(queue_mutex_);
            queue_cv_.wait(lock, [this] {
                return stopping_ ||
                       (!drain_hold_ && (!pending_runs_.empty() ||
                                         !pending_parts_.empty()));
            });
            if (stopping_) {
                // Fail everything still queued so no client hangs.
                for (auto &[key, slot] : pending_runs_)
                    slot->fail("daemon is shutting down");
                for (auto &[key, slot] : pending_parts_)
                    slot->fail("daemon is shutting down");
                pending_runs_.clear();
                pending_parts_.clear();
                run_reqs_.clear();
                part_reqs_.clear();
                inflight_runs_.clear();
                inflight_parts_.clear();
                return;
            }
            runs.swap(pending_runs_);
            parts.swap(pending_parts_);
            batch.runs.reserve(runs.size());
            for (const auto &[key, slot] : runs) {
                batch.runs.push_back(run_reqs_.at(key));
                run_reqs_.erase(key);
            }
            batch.partitions.reserve(parts.size());
            for (const auto &[key, slot] : parts) {
                batch.partitions.push_back(part_reqs_.at(key));
                part_reqs_.erase(key);
            }
        }

        drains_.fetch_add(1);
        runs_submitted_.fetch_add(runs.size());
        partitions_submitted_.fetch_add(parts.size());
        try {
            ev_->submit(
                batch,
                [&](std::size_t i, const RunResult &r) {
                    run_hook_fires_.fetch_add(1);
                    runs[i].second->fulfill(r);
                },
                [&](std::size_t i, const PartitionResult &p) {
                    parts[i].second->fulfill(p);
                });
        } catch (const std::exception &e) {
            const std::string what = e.what();
            for (auto &[key, slot] : runs)
                slot->fail("evaluation failed: " + what);
            for (auto &[key, slot] : parts)
                slot->fail("evaluation failed: " + what);
        }

        {
            // Only now do repeats of these keys re-enqueue; anything
            // that attached meanwhile was fulfilled above.
            std::lock_guard<std::mutex> lock(queue_mutex_);
            for (const auto &[key, slot] : runs)
                inflight_runs_.erase(key);
            for (const auto &[key, slot] : parts)
                inflight_parts_.erase(key);
        }
    }
}

void
Server::snapshotLoop()
{
    std::unique_lock<std::mutex> lock(stop_mutex_);
    const auto period = std::chrono::duration<double>(
        options_.snapshot_every_s);
    while (!stopping_.load()) {
        stop_cv_.wait_for(lock, period);
        if (stopping_.load())
            break;
        lock.unlock();
        snapshot();
        lock.lock();
    }
}

// ---------------------------------------------------------------------
// Connection handling.
// ---------------------------------------------------------------------

void
Server::serveConnection(int fd)
{
    for (;;) {
        std::string payload;
        std::string err;
        const FrameStatus st = readFrame(
            fd, &payload, options_.max_frame_bytes, &err);
        if (st == FrameStatus::Eof || st == FrameStatus::Error ||
            stopping_.load()) {
            // Clean close, torn frame, or shutdown: nothing useful
            // to answer.
            break;
        }
        if (st == FrameStatus::BadMagic ||
            st == FrameStatus::TooLarge) {
            // The stream cannot be resynchronized after these, so
            // answer once and close this connection; the daemon
            // keeps serving everyone else.
            errors_.fetch_add(1);
            std::string werr;
            writeFrame(fd,
                       errorResponse(st == FrameStatus::BadMagic
                                         ? "bad-magic"
                                         : "too-large",
                                     err)
                           .dump(),
                       &werr);
            break;
        }

        requests_.fetch_add(1);
        report::Json req;
        report::Json resp;
        bool shutdown = false;
        std::string perr;
        if (!report::Json::parse(payload, &req, &perr)) {
            errors_.fetch_add(1);
            resp = errorResponse("bad-json", perr);
        } else {
            resp = handleRequest(req, &shutdown);
            const report::Json *ok = resp.find("ok");
            if (ok != nullptr && ok->isBool() && !ok->asBool())
                errors_.fetch_add(1);
        }

        std::string werr;
        if (!writeFrame(fd, resp.dump(), &werr))
            break;
        if (shutdown) {
            requestStop();
            break;
        }
    }

    {
        std::lock_guard<std::mutex> lock(conn_mutex_);
        conn_fds_.erase(fd);
        finished_conn_threads_.push_back(
            std::this_thread::get_id());
    }
    ::close(fd);
}

report::Json
Server::handleRequest(const report::Json &req, bool *shutdown)
{
    if (!req.isObject())
        return errorResponse("bad-request",
                             "request must be a JSON object");
    const std::string *type = getString(req, "type");
    if (type == nullptr)
        return errorResponse("bad-request",
                             "request needs a string 'type'");

    if (*type == "ping") {
        report::Json resp = okResponse("pong");
        resp.set("pid", report::Json::number(
                            static_cast<double>(::getpid())));
        resp.set("protocol", report::Json::number(1));
        return resp;
    }
    if (*type == "eval")
        return handleEval(req);
    if (*type == "sweep")
        return handleSweep(req);
    if (*type == "search")
        return handleSearch(req);
    if (*type == "variation")
        return handleVariation(req);
    if (*type == "stats")
        return handleStats();
    if (*type == "save")
        return handleSave();
    if (*type == "shutdown") {
        *shutdown = true;
        return okResponse("shutdown");
    }
    return errorResponse("unknown-type",
                         "unknown request type '" + *type +
                             "' (try ping, eval, sweep, search, "
                             "variation, stats, save, shutdown)");
}

// ---------------------------------------------------------------------
// Warm design state.
// ---------------------------------------------------------------------

void
Server::ensureFactory()
{
    std::call_once(factory_once_, [this] {
        factory_ = std::make_unique<DesignFactory>(
            engine::designFactory(*ev_));
        for (const CoreDesign &d : factory_->singleCoreDesigns())
            addNameForms(&designs_by_name_, d);
        for (const CoreDesign &d : factory_->multicoreDesigns())
            addNameForms(&designs_by_name_, d);
        addNameForms(&designs_by_name_, factory_->m3dHetNaive());
        addNameForms(&designs_by_name_, factory_->m3dHetAgg());
        addNameForms(&designs_by_name_, factory_->m3dHetW());
        addNameForms(&designs_by_name_, factory_->m3dHet2x());
        designs_by_name_.emplace("m3d-het-naive",
                                 factory_->m3dHetNaive());
        designs_by_name_.emplace("m3d-hetnaive",
                                 factory_->m3dHetNaive());
        designs_by_name_.emplace("m3d-het-agg",
                                 factory_->m3dHetAgg());
        designs_by_name_.emplace("m3d-hetagg",
                                 factory_->m3dHetAgg());
    });
}

bool
Server::resolveDesign(const std::string &name, CoreDesign *out)
{
    ensureFactory();
    const auto it = designs_by_name_.find(name);
    if (it == designs_by_name_.end())
        return false;
    *out = it->second;
    return true;
}

bool
Server::resolveApp(const std::string &name, WorkloadProfile *out)
{
    // Only the bundled suites resolve over the wire: a daemon must
    // never trust a client-supplied filesystem path, and the fatal
    // path of loadProfile() would take the whole service down.
    for (const WorkloadProfile &p : WorkloadLibrary::spec2006()) {
        if (p.name == name) {
            *out = p;
            return true;
        }
    }
    for (const WorkloadProfile &p :
         WorkloadLibrary::splash2parsec()) {
        if (p.name == name) {
            *out = p;
            return true;
        }
    }
    return false;
}

// ---------------------------------------------------------------------
// Coalescing queue.
// ---------------------------------------------------------------------

std::shared_ptr<Server::RunSlot>
Server::enqueueRun(const RunRequest &req)
{
    const Key128 key =
        req.kind == RunKind::Single
            ? engine::singleRunKey(req.design, req.app, req.budget)
            : engine::multiRunKey(req.design, req.app, req.budget);
    std::shared_ptr<RunSlot> slot;
    {
        std::lock_guard<std::mutex> lock(queue_mutex_);
        runs_requested_.fetch_add(1);
        const auto it = inflight_runs_.find(key);
        if (it != inflight_runs_.end()) {
            runs_coalesced_.fetch_add(1);
            return it->second;
        }
        slot = std::make_shared<RunSlot>();
        inflight_runs_.emplace(key, slot);
        run_reqs_.emplace(key, req);
        pending_runs_.emplace_back(key, slot);
    }
    queue_cv_.notify_all();
    return slot;
}

std::shared_ptr<Server::PartSlot>
Server::enqueuePartition(const engine::PartitionJob &job)
{
    engine::KeyBuilder kb(kServicePartitionDomain);
    engine::hashTechnology(kb, job.tech3d);
    engine::hashArrayConfig(kb, job.cfg);
    kb.add(static_cast<std::uint64_t>(job.kind));
    const Key128 key = kb.key();

    std::shared_ptr<PartSlot> slot;
    {
        std::lock_guard<std::mutex> lock(queue_mutex_);
        partitions_requested_.fetch_add(1);
        const auto it = inflight_parts_.find(key);
        if (it != inflight_parts_.end()) {
            partitions_coalesced_.fetch_add(1);
            return it->second;
        }
        slot = std::make_shared<PartSlot>();
        inflight_parts_.emplace(key, slot);
        part_reqs_.emplace(key, job);
        pending_parts_.emplace_back(key, slot);
    }
    queue_cv_.notify_all();
    return slot;
}

// ---------------------------------------------------------------------
// Request handlers.
// ---------------------------------------------------------------------

report::Json
Server::handleEval(const report::Json &req)
{
    const report::Json *runs = req.find("runs");
    if (runs == nullptr || !runs->isArray() ||
        runs->elements().empty())
        return errorResponse("bad-request",
                             "eval needs a non-empty 'runs' array");
    if (runs->elements().size() > kMaxRunsPerRequest)
        return errorResponse(
            "bad-request",
            "eval is limited to " +
                std::to_string(kMaxRunsPerRequest) +
                " runs per request");

    std::vector<RunRequest> requests;
    requests.reserve(runs->elements().size());
    for (const report::Json &r : runs->elements()) {
        if (!r.isObject())
            return errorResponse("bad-request",
                                 "each run must be an object");
        RunRequest rr;
        const std::string *kind = getString(r, "kind");
        if (kind != nullptr) {
            if (*kind == "single")
                rr.kind = RunKind::Single;
            else if (*kind == "multi")
                rr.kind = RunKind::Multi;
            else
                return errorResponse("bad-request",
                                     "run kind must be 'single' or "
                                     "'multi'");
        }
        const std::string *design = getString(r, "design");
        const std::string *app = getString(r, "app");
        if (design == nullptr || app == nullptr)
            return errorResponse(
                "bad-request",
                "each run needs string 'design' and 'app'");
        if (!resolveDesign(*design, &rr.design))
            return errorResponse(
                "unknown-design",
                "unknown design '" + *design +
                    "' (try base, tsv3d, m3d-iso, m3d-het-naive, "
                    "m3d-het, m3d-het-agg)");
        if (!resolveApp(*app, &rr.app))
            return errorResponse(
                "unknown-app",
                "unknown app '" + *app +
                    "' (bundled SPEC2006/SPLASH2/PARSEC names only; "
                    "profile files do not resolve over the wire)");
        getUint(r, "warmup", &rr.budget.warmup);
        getUint(r, "measured", &rr.budget.measured);
        getUint(r, "seed", &rr.budget.seed);
        rr.path = ev_->options().trace_path;
        requests.push_back(std::move(rr));
    }

    std::vector<std::shared_ptr<RunSlot>> slots;
    slots.reserve(requests.size());
    for (const RunRequest &rr : requests)
        slots.push_back(enqueueRun(rr));

    report::Json results = report::Json::array();
    for (const std::shared_ptr<RunSlot> &slot : slots) {
        if (!slot->wait())
            return errorResponse("eval-failed", slot->error);
        results.push(runResultJson(slot->value));
    }
    report::Json resp = okResponse("eval");
    resp.set("results", std::move(results));
    return resp;
}

report::Json
Server::handleSweep(const report::Json &req)
{
    const std::string *tech_name = getString(req, "tech");
    if (tech_name == nullptr)
        return errorResponse("bad-request",
                             "sweep needs a string 'tech'");
    engine::PartitionJob proto;
    if (!techByNameNoFatal(*tech_name, &proto.tech3d))
        return errorResponse("unknown-tech",
                             "unknown technology '" + *tech_name +
                                 "' (try m3d-het, m3d-iso, tsv3d)");

    std::vector<ArrayConfig> cfgs;
    const report::Json *structures = req.find("structures");
    if (structures == nullptr) {
        cfgs = CoreStructures::all();
    } else {
        if (!structures->isArray())
            return errorResponse("bad-request",
                                 "'structures' must be an array of "
                                 "names");
        for (const report::Json &s : structures->elements()) {
            if (!s.isString())
                return errorResponse("bad-request",
                                     "'structures' must be an array "
                                     "of names");
            bool found = false;
            for (const ArrayConfig &c : CoreStructures::all()) {
                if (c.name == s.asString()) {
                    cfgs.push_back(c);
                    found = true;
                    break;
                }
            }
            if (!found)
                return errorResponse("unknown-structure",
                                     "unknown structure '" +
                                         s.asString() + "'");
        }
        if (cfgs.empty())
            return errorResponse("bad-request",
                                 "'structures' must not be empty");
    }

    std::vector<std::shared_ptr<PartSlot>> slots;
    slots.reserve(cfgs.size());
    for (const ArrayConfig &cfg : cfgs) {
        engine::PartitionJob job = proto;
        job.cfg = cfg;
        job.kind = PartitionKind::None; // best overall
        slots.push_back(enqueuePartition(job));
    }

    report::Json results = report::Json::array();
    for (const std::shared_ptr<PartSlot> &slot : slots) {
        if (!slot->wait())
            return errorResponse("sweep-failed", slot->error);
        results.push(partitionResultJson(slot->value));
    }
    report::Json resp = okResponse("sweep");
    resp.set("tech", report::Json::string(*tech_name));
    resp.set("results", std::move(results));
    return resp;
}

report::Json
Server::handleSearch(const report::Json &req)
{
    const std::string *strategy = getString(req, "strategy");
    if (strategy == nullptr)
        return errorResponse("bad-request",
                             "search needs a string 'strategy'");
    const std::vector<std::string> &names = search::strategyNames();
    if (std::find(names.begin(), names.end(), *strategy) ==
        names.end()) {
        std::string known;
        for (const std::string &n : names)
            known += (known.empty() ? "" : ", ") + n;
        return errorResponse("bad-strategy",
                             "unknown strategy '" + *strategy +
                                 "' (try " + known + ")");
    }

    std::uint64_t seed = 7;
    std::uint64_t budget = 16;
    std::uint64_t instructions = 60000;
    std::uint64_t thermal_grid = 32;
    std::uint64_t population = 16;
    std::uint64_t surrogate_pool = 256;
    double surrogate_fraction = 0.125;
    double surrogate_ridge = 1e-3;
    getUint(req, "seed", &seed);
    getUint(req, "budget", &budget);
    getUint(req, "instructions", &instructions);
    getUint(req, "thermal_grid", &thermal_grid);
    getUint(req, "population", &population);
    getUint(req, "surrogate_pool", &surrogate_pool);
    std::uint64_t yield_dies = 0;
    double yield_f_ghz = 0.0;
    std::uint64_t yield_seed = 7;
    getNumber(req, "surrogate_fraction", &surrogate_fraction);
    getNumber(req, "surrogate_ridge", &surrogate_ridge);
    getUint(req, "yield_dies", &yield_dies);
    getNumber(req, "yield_f_ghz", &yield_f_ghz);
    getUint(req, "yield_seed", &yield_seed);
    if (instructions == 0 || thermal_grid == 0 ||
        thermal_grid > 4096)
        return errorResponse("bad-request",
                             "instructions and thermal_grid must be "
                             "positive (thermal_grid <= 4096)");
    if (!(surrogate_fraction > 0.0 && surrogate_fraction <= 1.0) ||
        !(surrogate_ridge >= 0.0))
        return errorResponse("bad-request",
                             "surrogate_fraction must be in (0, 1] "
                             "and surrogate_ridge >= 0");
    if (yield_dies > 65536 ||
        !(yield_f_ghz >= 0.0 && yield_f_ghz <= 100.0))
        return errorResponse("bad-request",
                             "yield_dies must be <= 65536 and "
                             "yield_f_ghz in [0, 100]");

    // The search prices runs under the *request's* instruction
    // budget, which ObjectiveEvaluator reads from its evaluator's
    // options - so each search runs on a private evaluator seeded
    // with the shared partition cache (budget-independent) and the
    // process-wide warm trace registry.  New partition entries merge
    // back afterwards, so later sweeps and searches reuse them.
    engine::EvalOptions eopts;
    eopts.threads = options_.threads;
    eopts.budget.measured = instructions;
    engine::Evaluator local(eopts);
    {
        std::stringstream warm;
        ev_->cache().savePartitions(warm);
        local.cache().loadPartitions(warm);
    }

    const search::SearchSpace space = search::coreSpace();
    search::ObjectiveConfig ocfg;
    ocfg.thermal_grid = static_cast<int>(thermal_grid);
    ocfg.yield_dies = static_cast<int>(yield_dies);
    ocfg.yield_frequency = yield_f_ghz * 1e9;
    ocfg.yield_seed = yield_seed;
    search::ObjectiveEvaluator objectives(local, ocfg);

    search::StrategyOptions sopts;
    sopts.seed = seed;
    sopts.budget = budget;
    sopts.population = population;
    sopts.surrogate_pool = surrogate_pool;
    sopts.surrogate_fraction = surrogate_fraction;
    sopts.surrogate_ridge = surrogate_ridge;
    search::SearchResult result;
    try {
        result = search::runSearch(
            space, *strategy, sopts,
            search::enginePricer(space, objectives),
            search::coreBaselinePoint(space));
    } catch (const std::exception &e) {
        return errorResponse("search-failed", e.what());
    }
    searches_.fetch_add(1);

    {
        std::stringstream merge;
        local.cache().savePartitions(merge);
        ev_->cache().loadPartitions(merge);
    }

    report::Json resp = okResponse("search");
    resp.set("result", search::searchResultJson(space, *strategy,
                                                sopts, result,
                                                ocfg));
    return resp;
}

report::Json
Server::handleVariation(const report::Json &req)
{
    const std::string *design_name = getString(req, "design");
    if (design_name == nullptr)
        return errorResponse("bad-request",
                             "variation needs a string 'design'");
    CoreDesign design;
    if (!resolveDesign(*design_name, &design))
        return errorResponse("bad-design",
                             "unknown design '" + *design_name + "'");

    std::uint64_t seed = 7;
    std::uint64_t dies = 256;
    std::uint64_t bins = 8;
    std::uint64_t instructions = 60000;
    getUint(req, "seed", &seed);
    getUint(req, "dies", &dies);
    getUint(req, "bins", &bins);
    getUint(req, "instructions", &instructions);
    if (dies == 0 || dies > 65536 || bins == 0 || bins > 1024 ||
        instructions == 0)
        return errorResponse("bad-request",
                             "dies must be in [1, 65536], bins in "
                             "[1, 1024], and instructions positive");

    // Like handleSearch: the bins price under the *request's*
    // instruction budget, so the run goes through a private evaluator
    // warm-seeded with the shared partition cache and merged back
    // afterwards.
    engine::EvalOptions eopts;
    eopts.threads = options_.threads;
    eopts.budget.measured = instructions;
    engine::Evaluator local(eopts);
    {
        std::stringstream warm;
        ev_->cache().savePartitions(warm);
        local.cache().loadPartitions(warm);
    }

    variation::VariationConfig vcfg;
    vcfg.seed = seed;
    vcfg.dies = static_cast<int>(dies);
    vcfg.bins = static_cast<int>(bins);
    const std::vector<WorkloadProfile> apps = {
        WorkloadLibrary::byName("Gcc"), WorkloadLibrary::byName("Mcf"),
        WorkloadLibrary::byName("Gamess")};
    variation::VariationOutcome outcome;
    try {
        outcome = variation::binPopulation(local, design, vcfg, apps);
    } catch (const std::exception &e) {
        return errorResponse("variation-failed", e.what());
    }
    variations_.fetch_add(1);

    {
        std::stringstream merge;
        local.cache().savePartitions(merge);
        ev_->cache().loadPartitions(merge);
    }

    std::vector<std::string> app_names;
    for (const WorkloadProfile &a : apps)
        app_names.push_back(a.name);
    report::Json resp = okResponse("variation");
    resp.set("result",
             variation::variationResultJson(*design_name, vcfg,
                                            app_names, outcome));
    return resp;
}

report::Json
Server::handleStats()
{
    const ServerStats s = stats();
    report::Json server = report::Json::object();
    const auto num = [](std::uint64_t v) {
        return report::Json::number(static_cast<double>(v));
    };
    server.set("connections", num(s.connections));
    server.set("requests", num(s.requests));
    server.set("errors", num(s.errors));
    server.set("runs_requested", num(s.runs_requested));
    server.set("runs_coalesced", num(s.runs_coalesced));
    server.set("runs_submitted", num(s.runs_submitted));
    server.set("run_hook_fires", num(s.run_hook_fires));
    server.set("partitions_requested", num(s.partitions_requested));
    server.set("partitions_coalesced", num(s.partitions_coalesced));
    server.set("partitions_submitted", num(s.partitions_submitted));
    server.set("drains", num(s.drains));
    server.set("searches", num(s.searches));
    server.set("variations", num(s.variations));
    server.set("snapshots", num(s.snapshots));

    report::Json cache = report::Json::object();
    cache.set("partition",
              statsJson(ev_->cache().partitionStats(),
                        ev_->cache().partitionEntries()));
    cache.set("run", statsJson(ev_->cache().runStats(),
                               ev_->cache().runEntries()));
    cache.set("multi", statsJson(ev_->cache().multiStats(),
                                 ev_->cache().multiEntries()));

    report::Json resp = okResponse("stats");
    resp.set("pid", report::Json::number(
                        static_cast<double>(::getpid())));
    resp.set("threads", report::Json::number(
                            static_cast<double>(ev_->threads())));
    resp.set("server", std::move(server));
    resp.set("cache", std::move(cache));
    return resp;
}

report::Json
Server::handleSave()
{
    if (options_.cache_dir.empty())
        return errorResponse("no-cache-dir",
                             "this daemon was started without "
                             "--cache-dir; nothing to save");
    const std::size_t n = snapshot();
    report::Json resp = okResponse("save");
    resp.set("entries",
             report::Json::number(static_cast<double>(n)));
    resp.set("dir", report::Json::string(options_.cache_dir));
    return resp;
}

} // namespace service
} // namespace m3d
