#include "service/client.hh"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace m3d {
namespace service {

Client::~Client() { close(); }

bool
Client::connect(const std::string &socket_path, std::string *error)
{
    close();

    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socket_path.size() >= sizeof(addr.sun_path)) {
        if (error)
            *error = "socket path '" + socket_path +
                     "' exceeds the AF_UNIX limit";
        return false;
    }
    std::memcpy(addr.sun_path, socket_path.c_str(),
                socket_path.size() + 1);

    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        if (error)
            *error = std::string("socket(): ") + std::strerror(errno);
        return false;
    }
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        if (error)
            *error = "cannot connect to '" + socket_path +
                     "': " + std::strerror(errno);
        ::close(fd);
        return false;
    }
    fd_ = fd;
    return true;
}

void
Client::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

bool
Client::call(const report::Json &request, report::Json *response,
             std::string *error)
{
    if (fd_ < 0) {
        if (error)
            *error = "not connected";
        return false;
    }
    if (!writeFrame(fd_, request.dump(), error))
        return false;
    std::string payload;
    const FrameStatus st =
        readFrame(fd_, &payload, max_frame_bytes_, error);
    if (st != FrameStatus::Ok) {
        if (st == FrameStatus::Eof && error)
            *error = "daemon closed the connection";
        return false;
    }
    std::string perr;
    if (!report::Json::parse(payload, response, &perr)) {
        if (error)
            *error = "malformed response: " + perr;
        return false;
    }
    return true;
}

bool
Client::callChecked(const report::Json &request,
                    report::Json *response, std::string *error)
{
    if (!call(request, response, error))
        return false;
    const report::Json *ok = response->find("ok");
    if (ok == nullptr || !ok->isBool()) {
        if (error)
            *error = "response without an 'ok' member";
        return false;
    }
    if (!ok->asBool()) {
        std::string message = "daemon error";
        if (const report::Json *e = response->find("error")) {
            const report::Json *m = e->find("message");
            if (m != nullptr && m->isString())
                message = m->asString();
        }
        if (error)
            *error = message;
        return false;
    }
    return true;
}

bool
Client::available(const std::string &socket_path)
{
    Client c;
    std::string err;
    if (!c.connect(socket_path, &err))
        return false;
    report::Json ping = report::Json::object();
    ping.set("type", report::Json::string("ping"));
    report::Json resp;
    if (!c.callChecked(ping, &resp, &err))
        return false;
    const report::Json *type = resp.find("type");
    return type != nullptr && type->isString() &&
           type->asString() == "pong";
}

} // namespace service
} // namespace m3d
