/**
 * @file
 * Single-daemon-per-cache-dir enforcement.
 *
 * EvalCache's sharded snapshot machinery assumes one writer per
 * directory (engine/eval_cache.hh): concurrent savers would publish a
 * mix of shard generations, and the stale-tmp sweep at load would
 * race a live writer's temp files.  CacheLock makes the contract
 * enforceable: the daemon takes an exclusive flock(2) on
 * `<dir>/m3dd.lock` for its entire lifetime, so a second daemon
 * pointed at the same cache dir fails fast with a message naming the
 * owner instead of silently corrupting the snapshot cadence.
 *
 * flock is the right primitive here because the kernel drops it when
 * the holder dies - including kill -9 mid-snapshot - so crash
 * recovery needs no stale-pidfile heuristics: a restart simply
 * acquires the lock.  The pid written into the file is advisory,
 * purely for the error message and operator inspection.
 */

#ifndef M3D_SERVICE_CACHE_LOCK_HH_
#define M3D_SERVICE_CACHE_LOCK_HH_

#include <string>

namespace m3d {
namespace service {

/** RAII exclusive lock on a cache directory; see file comment. */
class CacheLock
{
  public:
    CacheLock() = default;
    ~CacheLock() { release(); }

    CacheLock(const CacheLock &) = delete;
    CacheLock &operator=(const CacheLock &) = delete;

    /**
     * Take the exclusive lock on `dir` (created if missing).
     * Non-blocking: if another live process holds it, returns false
     * with *error naming the owner's pid.
     */
    bool acquire(const std::string &dir, std::string *error);

    /** Drop the lock (also done by the destructor). */
    void release();

    bool held() const { return fd_ >= 0; }

    /** The lock file inside `dir`. */
    static std::string lockPath(const std::string &dir);

  private:
    int fd_ = -1;
};

} // namespace service
} // namespace m3d

#endif // M3D_SERVICE_CACHE_LOCK_HH_
