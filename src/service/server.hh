/**
 * @file
 * The m3dd evaluation daemon (server side).
 *
 * A Server is the long-lived half of the "millions of users" story:
 * it holds the expensive warm state - the process-wide TraceRegistry,
 * the DesignFactory's partition sweeps, and the sharded EvalCache -
 * in memory once, and serves eval/sweep/search requests from many
 * concurrent clients over a local Unix-domain socket speaking the
 * length-framed JSON protocol (service/protocol.hh).
 *
 * Request flow.  Each accepted connection gets a handler thread that
 * reads frames and dispatches requests.  Simulation runs and
 * partition grid searches do not execute on the connection thread:
 * they are keyed (engine/eval_key.hh) and enqueued, and a dedicated
 * drain thread periodically swaps out everything pending and submits
 * it as ONE BatchRunRequest through Evaluator::submit() - so requests
 * from N different clients land in the same design-major batched
 * replay blocks the search subsystem uses.  Two layers of dedup
 * stack:
 *
 *  - the coalescing map: while a key is in flight, later requests for
 *    the same key attach to the first one's slot and wait - N clients
 *    asking for the same design pay ONE backend evaluation (the
 *    hooks-fire-once contract of submit() makes this observable:
 *    ServerStats::run_hook_fires counts exactly the deduped work);
 *  - the memo cache: once a key completes, repeats are cache hits.
 *
 * Search requests run synchronously on their connection thread
 * against the shared evaluator (every strategy is a sequential loop
 * over batch prices, so its result is byte-identical to an
 * in-process run by construction); the response embeds the canonical
 * m3d-search document (search/search_json.hh).
 *
 * Persistence.  With a cache_dir configured, the server takes the
 * single-writer CacheLock for its lifetime, loads the sharded
 * snapshot at start (corrupt shards are skipped with a warning), and
 * saves shards atomically on snapshot()/stop and optionally on a
 * timer.  Killing the daemon at any point - including mid-snapshot -
 * leaves only complete shard files plus possibly a stale tmp file
 * that the next start sweeps away.
 *
 * Results are bit-identical to in-process evaluation at any thread
 * count, drain timing, and batch width (the engine's contract);
 * tests/test_service.cc pins daemon-vs-in-process byte-identity end
 * to end.
 */

#ifndef M3D_SERVICE_SERVER_HH_
#define M3D_SERVICE_SERVER_HH_

#include <atomic>
#include <condition_variable>
#include <csignal>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/design.hh"
#include "engine/evaluator.hh"
#include "service/cache_lock.hh"
#include "service/protocol.hh"

namespace m3d {
namespace service {

/** Knobs of one daemon instance. */
struct ServerOptions
{
    /** Unix-domain socket path to listen on (required). */
    std::string socket_path;

    /**
     * Sharded snapshot directory; empty disables persistence (and
     * the single-writer lock).  A non-empty dir is locked for the
     * server's lifetime - a second daemon on the same dir fails
     * fast at start().
     */
    std::string cache_dir;

    /** Evaluator worker threads; <= 0 means all hardware threads. */
    int threads = 0;

    /** Per-frame payload cap for requests on this server. */
    std::uint32_t max_frame_bytes = kDefaultMaxFrameBytes;

    /** Snapshot cadence in seconds; 0 = only on save/stop. */
    double snapshot_every_s = 0.0;
};

/** Monotonic counters exposed by "stats" requests; see file comment. */
struct ServerStats
{
    std::uint64_t connections = 0;
    std::uint64_t requests = 0;
    std::uint64_t errors = 0;

    std::uint64_t runs_requested = 0; ///< runs asked for by clients
    std::uint64_t runs_coalesced = 0; ///< attached to an in-flight key
    std::uint64_t runs_submitted = 0; ///< reached Evaluator::submit()
    std::uint64_t run_hook_fires = 0; ///< submit() completions seen

    std::uint64_t partitions_requested = 0;
    std::uint64_t partitions_coalesced = 0;
    std::uint64_t partitions_submitted = 0;

    std::uint64_t drains = 0;     ///< drain cycles that submitted work
    std::uint64_t searches = 0;   ///< search requests served
    std::uint64_t variations = 0; ///< variation requests served
    std::uint64_t snapshots = 0;  ///< sharded saves completed
};

/** The m3dd daemon; see file comment. */
class Server
{
  public:
    explicit Server(ServerOptions options);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Acquire the cache lock, load the sharded snapshot, bind the
     * socket, and spawn the accept/drain/snapshot threads.  False
     * with *error on any failure (socket already live, lock held by
     * another daemon, ...); the server is then inert.
     */
    bool start(std::string *error);

    /**
     * Block until a shutdown request arrives or `*external_stop`
     * becomes nonzero (polled; pass the signal handler's flag).
     * Returns immediately if the server never started.
     */
    void wait(const volatile std::sig_atomic_t *external_stop =
                  nullptr);

    /**
     * Stop serving: close the listener and every connection, fail
     * pending work, join all threads, take a final snapshot, release
     * the lock.  Idempotent.
     */
    void stop();

    bool running() const { return running_.load(); }
    const ServerOptions &options() const { return options_; }
    ServerStats stats() const;
    engine::Evaluator &evaluator() { return *ev_; }

    /** Snapshot the cache shards now; entries written (0 if no dir). */
    std::size_t snapshot();

    /**
     * Test knob: freeze (true) / thaw (false) the drain thread so a
     * test can pile up concurrent duplicate requests and observe one
     * coalesced submission.  Never used in production flows.
     */
    void holdDrain(bool hold);

  private:
    template <typename T> struct Slot;
    using RunSlot = Slot<RunResult>;
    using PartSlot = Slot<PartitionResult>;

    // Threads.
    void acceptLoop();
    void drainLoop();
    void snapshotLoop();
    void serveConnection(int fd);

    // Request dispatch (returns the response; may flag shutdown).
    report::Json handleRequest(const report::Json &req,
                               bool *shutdown);
    report::Json handleEval(const report::Json &req);
    report::Json handleSweep(const report::Json &req);
    report::Json handleSearch(const report::Json &req);
    report::Json handleVariation(const report::Json &req);
    report::Json handleStats();
    report::Json handleSave();

    // Warm design state (built once, on first use).
    void ensureFactory();
    bool resolveDesign(const std::string &name, CoreDesign *out);
    static bool resolveApp(const std::string &name,
                           WorkloadProfile *out);

    // Coalescing queue.
    std::shared_ptr<RunSlot> enqueueRun(const RunRequest &req);
    std::shared_ptr<PartSlot>
    enqueuePartition(const engine::PartitionJob &job);
    void requestStop();

    ServerOptions options_;
    std::unique_ptr<engine::Evaluator> ev_;
    CacheLock lock_;
    int listen_fd_ = -1;

    std::atomic<bool> running_{false};
    std::atomic<bool> stopping_{false};
    std::atomic<bool> stop_requested_{false};

    // Warm factory (lazy: robustness-only tests never pay for it).
    std::once_flag factory_once_;
    std::unique_ptr<DesignFactory> factory_;
    std::unordered_map<std::string, CoreDesign> designs_by_name_;

    // Coalescing queue state (guarded by queue_mutex_).
    std::mutex queue_mutex_;
    std::condition_variable queue_cv_;
    bool drain_hold_ = false;
    std::unordered_map<Key128, std::shared_ptr<RunSlot>, Key128Hash>
        inflight_runs_;
    std::vector<std::pair<Key128, std::shared_ptr<RunSlot>>>
        pending_runs_;
    std::unordered_map<Key128, std::shared_ptr<PartSlot>, Key128Hash>
        inflight_parts_;
    std::vector<std::pair<Key128, std::shared_ptr<PartSlot>>>
        pending_parts_;
    std::unordered_map<Key128, RunRequest, Key128Hash> run_reqs_;
    std::unordered_map<Key128, engine::PartitionJob, Key128Hash>
        part_reqs_;

    // Connection bookkeeping (guarded by conn_mutex_).
    std::mutex conn_mutex_;
    std::unordered_set<int> conn_fds_;
    std::vector<std::thread> conn_threads_;
    std::vector<std::thread::id> finished_conn_threads_;

    // Stop/wait coordination.
    std::mutex stop_mutex_;
    std::condition_variable stop_cv_;

    // Counters (atomic: bumped from connection + drain threads).
    std::atomic<std::uint64_t> connections_{0};
    std::atomic<std::uint64_t> requests_{0};
    std::atomic<std::uint64_t> errors_{0};
    std::atomic<std::uint64_t> runs_requested_{0};
    std::atomic<std::uint64_t> runs_coalesced_{0};
    std::atomic<std::uint64_t> runs_submitted_{0};
    std::atomic<std::uint64_t> run_hook_fires_{0};
    std::atomic<std::uint64_t> partitions_requested_{0};
    std::atomic<std::uint64_t> partitions_coalesced_{0};
    std::atomic<std::uint64_t> partitions_submitted_{0};
    std::atomic<std::uint64_t> drains_{0};
    std::atomic<std::uint64_t> searches_{0};
    std::atomic<std::uint64_t> variations_{0};
    std::atomic<std::uint64_t> snapshots_{0};

    std::thread accept_thread_;
    std::thread drain_thread_;
    std::thread snapshot_thread_;
};

} // namespace service
} // namespace m3d

#endif // M3D_SERVICE_SERVER_HH_
