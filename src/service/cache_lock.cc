#include "service/cache_lock.hh"

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <system_error>

namespace m3d {
namespace service {

std::string
CacheLock::lockPath(const std::string &dir)
{
    return (std::filesystem::path(dir) / "m3dd.lock").string();
}

bool
CacheLock::acquire(const std::string &dir, std::string *error)
{
    release();

    std::error_code ec;
    std::filesystem::create_directories(dir, ec);

    const std::string path = lockPath(dir);
    const int fd = ::open(path.c_str(), O_CREAT | O_RDWR, 0644);
    if (fd < 0) {
        if (error)
            *error = "cannot open lock file '" + path +
                     "': " + std::strerror(errno);
        return false;
    }
    if (::flock(fd, LOCK_EX | LOCK_NB) != 0) {
        std::string owner = "unknown pid";
        {
            std::ifstream in(path);
            std::string pid;
            if (in >> pid && !pid.empty())
                owner = "pid " + pid;
        }
        if (error)
            *error = "cache dir '" + dir +
                     "' is already served by another m3dd (" + owner +
                     "); only one daemon may own a cache dir - pick "
                     "a different --cache-dir or stop the other "
                     "daemon";
        ::close(fd);
        return false;
    }
    // Advisory owner pid for error messages and operators; the flock
    // itself is the contract (auto-released if we die).
    const std::string pid =
        std::to_string(static_cast<long>(::getpid())) + "\n";
    if (::ftruncate(fd, 0) == 0) {
        ssize_t ignored =
            ::write(fd, pid.data(), pid.size());
        (void)ignored;
    }
    fd_ = fd;
    return true;
}

void
CacheLock::release()
{
    if (fd_ >= 0) {
        ::close(fd_); // drops the flock
        fd_ = -1;
    }
}

} // namespace service
} // namespace m3d
