#include "thermal/thermal_model.hh"

#include <algorithm>

#include "util/logging.hh"

namespace m3d {

ThermalModel::ThermalModel(const CoreDesign &design, int grid,
                           const SolverConfig &config)
    : design_(design), stack_(LayerStack::of(design.tech.integration)),
      grid_(grid), config_(config)
{
    Floorplan fp = Floorplan::ryzenLikeCore();
    if (design_.stacked()) {
        // Conservative 50% footprint fold for peak temperature
        // (Section 7.1.3) - conservative because it concentrates the
        // power into the smallest plausible area.
        fp = fp.scaled(0.5);
    }
    floorplan_ = fp;
}

std::vector<std::vector<double>>
ThermalModel::rasterize(
    const std::map<std::string, double> &block_power) const
{
    const int n = grid_;
    const std::vector<std::size_t> sources = stack_.sourceLayers();
    const std::size_t n_sources = sources.size();

    // Rasterize block power onto the grid; clock power spreads
    // uniformly; stacked designs split every block across layers
    // (intra-block partitioning puts half of each block per layer).
    std::vector<std::vector<double>> maps(
        n_sources,
        std::vector<double>(static_cast<std::size_t>(n) * n, 0.0));

    const double clock_w = [&block_power] {
        auto it = block_power.find("Clock");
        return it == block_power.end() ? 0.0 : it->second;
    }();
    const double clock_per_cell =
        clock_w / (static_cast<double>(n) * n * n_sources);
    for (auto &m : maps) {
        for (double &p : m)
            p += clock_per_cell;
    }

    for (const FloorplanBlock &b : floorplan_.blocks) {
        auto it = block_power.find(b.name);
        if (it == block_power.end())
            continue;
        const double per_layer = it->second / static_cast<double>(
            n_sources);

        const int x0 = std::clamp(
            static_cast<int>(b.x / floorplan_.width * n), 0, n - 1);
        const int y0 = std::clamp(
            static_cast<int>(b.y / floorplan_.height * n), 0, n - 1);
        const int x1 = std::clamp(
            static_cast<int>((b.x + b.w) / floorplan_.width * n) - 1,
            x0, n - 1);
        const int y1 = std::clamp(
            static_cast<int>((b.y + b.h) / floorplan_.height * n) - 1,
            y0, n - 1);
        const int cells = (x1 - x0 + 1) * (y1 - y0 + 1);
        const double per_cell = per_layer / cells;
        for (std::size_t s = 0; s < n_sources; ++s) {
            for (int y = y0; y <= y1; ++y) {
                for (int x = x0; x <= x1; ++x) {
                    maps[s][static_cast<std::size_t>(y) * n + x] +=
                        per_cell;
                }
            }
        }
    }
    return maps;
}

ThermalResult
ThermalModel::summarize(const ThermalField &field) const
{
    const std::vector<std::size_t> sources = stack_.sourceLayers();
    ThermalResult out;
    out.peak_c = field.peak();
    for (const FloorplanBlock &b : floorplan_.blocks) {
        double peak = 0.0;
        for (std::size_t s = 0; s < sources.size(); ++s) {
            peak = std::max(
                peak,
                field.peakIn(static_cast<int>(sources[s]),
                             b.x / floorplan_.width,
                             b.y / floorplan_.height,
                             (b.x + b.w) / floorplan_.width,
                             (b.y + b.h) / floorplan_.height));
        }
        out.block_peak_c[b.name] = peak;
        if (out.hottest_block.empty() ||
            peak > out.block_peak_c[out.hottest_block]) {
            out.hottest_block = b.name;
        }
    }
    return out;
}

ThermalResult
ThermalModel::solve(
    const std::map<std::string, double> &block_power) const
{
    GridSolver solver(stack_, floorplan_.width, floorplan_.height,
                      grid_, config_);
    SolveStats stats;
    const ThermalField field =
        solver.solve(rasterize(block_power), &stats);
    ThermalResult out = summarize(field);
    out.solver = stats;
    return out;
}

std::vector<ThermalResult>
ThermalModel::solveMany(
    const std::vector<std::map<std::string, double>> &block_powers)
    const
{
    GridSolver solver(stack_, floorplan_.width, floorplan_.height,
                      grid_, config_);
    std::vector<std::vector<std::vector<double>>> maps;
    maps.reserve(block_powers.size());
    for (const auto &bp : block_powers)
        maps.push_back(rasterize(bp));

    std::vector<SolveStats> stats;
    const std::vector<ThermalField> fields =
        solver.solveMany(maps, &stats);

    std::vector<ThermalResult> out;
    out.reserve(fields.size());
    for (std::size_t i = 0; i < fields.size(); ++i) {
        out.push_back(summarize(fields[i]));
        out.back().solver = stats[i];
    }
    return out;
}

} // namespace m3d
