/**
 * @file
 * Vertical layer stacks for thermal modeling (Table 10).
 *
 * Heat flows from the active layers through the bulk silicon, TIM,
 * and integrated heat spreader to the heat sink.  The M3D stack's
 * inter-layer dielectric is only 100nm thick, so its two device
 * layers are tightly thermally coupled; TSV3D interposes ~20um of
 * low-conductivity material between the dies, which is the root of
 * its thermal troubles.
 */

#ifndef M3D_THERMAL_STACK_HH_
#define M3D_THERMAL_STACK_HH_

#include <string>
#include <vector>

#include "tech/technology.hh"

namespace m3d {

/** One slab of material in the vertical stack. */
struct ThermalLayer
{
    std::string name;
    double thickness = 0.0;    ///< m
    double conductivity = 0.0; ///< W/(m.K)
    /** Volumetric heat capacity (J/(m^3.K)); silicon ~1.6e6. */
    double heat_capacity = 1.6e6;
    bool heat_source = false;  ///< an active device layer
};

/**
 * A vertical stack, ordered from the face far from the heat sink
 * (index 0) towards the sink.  The sink itself is lumped into a
 * per-area sink resistance.
 */
struct LayerStack
{
    std::vector<ThermalLayer> layers;

    /**
     * Heat sink + spreader boundary: total thermal resistance from
     * the IHS surface to ambient (K/W), for the whole chip area.
     */
    double sink_resistance = 0.25;

    /** Ambient temperature (deg C). */
    double ambient_c = 45.0;

    /** Indices of the heat-source layers. */
    std::vector<std::size_t> sourceLayers() const;

    /** Conventional single-die stack (Table 10 dimensions). */
    static LayerStack planar2D();

    /** M3D: two active layers <1um apart. */
    static LayerStack m3d();

    /**
     * TSV3D with an aggressively thinned 20um top die (the paper's
     * optimistic assumption for TSV3D).
     */
    static LayerStack tsv3d();

    /** Pick by integration style. */
    static LayerStack of(Integration integration);
};

} // namespace m3d

#endif // M3D_THERMAL_STACK_HH_
