#include "thermal/solver.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <sstream>

#include "util/logging.hh"
#include "util/simd.hh"
#include "util/thread_pool.hh"

#if defined(__x86_64__) && defined(__GNUC__)
#define M3D_HAVE_AVX512_SWEEP 1
#include <immintrin.h>
#endif

namespace m3d {

namespace {

double
elapsedSeconds(std::chrono::steady_clock::time_point since)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - since)
        .count();
}

/** Power-independent per-row stencil inputs of the scalar sweeps. */
struct ScalarStencil
{
    int n = 0;                     ///< cells per side
    int nl = 0;                    ///< layers
    const double *g_lat = nullptr; ///< per-layer lateral conductance
    const double *g_up = nullptr;  ///< per-layer vertical conductance
    double sink_flow = 0.0;        ///< g_sink * ambient
};

/**
 * Scalar half sweep of `color` over grid rows [row_begin, row_end);
 * returns the max temperature delta.  `gs` is the per-cell stencil
 * factor (GridSolver::stencilFactor): with kRecip it is the
 * reciprocal total conductance and every flow term is one
 * correctly-rounded std::fma, so the result is bit-identical to the
 * explicitly-fused vector kernels; without it, `gs` is the
 * conductance itself and the separate multiply/add plus division
 * roundings of the legacy sweep are reproduced exactly.  Either way
 * the identity relies on this file being compiled with
 * -ffp-contract=off (see CMakeLists.txt): the only fused ops are the
 * ones written as std::fma / _mm512_fmadd_pd, on every path.
 *
 * always_inline so the target("fma") wrapper below absorbs the body:
 * there std::fma becomes a single vfmadd instruction instead of a
 * libm call, which is the whole point of the reformulation.
 */
template <bool kRecip>
__attribute__((always_inline)) inline double
sweepRowsScalarBody(const ScalarStencil &s, double *tp,
                    const double *fb, const double *gs, double omega,
                    int color, int row_begin, int row_end)
{
    const int n = s.n;
    const std::size_t plane = static_cast<std::size_t>(n) * n;
    double local_max = 0.0;
    for (int r = row_begin; r < row_end; ++r) {
        const int l = r / n;
        const int y = r % n;
        const double gl = s.g_lat[static_cast<std::size_t>(l)];
        const std::size_t row_base =
            static_cast<std::size_t>(l) * plane +
            static_cast<std::size_t>(y) * n;
        // Row-invariant stencil legs: which vertical neighbors exist
        // and whether the row touches the y boundaries.
        const bool has_up = l + 1 < s.nl;
        const double g_up =
            has_up ? s.g_up[static_cast<std::size_t>(l)] : 0.0;
        const bool has_dn = l > 0;
        const double g_dn =
            has_dn ? s.g_up[static_cast<std::size_t>(l - 1)] : 0.0;
        const bool has_n = y > 0;
        const bool has_s = y + 1 < n;
        for (int x = (color + l + y) & 1; x < n; x += 2) {
            const std::size_t i = row_base + x;
            // Flow accumulates in the historical couple() order
            // (left, right, north, south, up/sink, down).
            double flow = fb[i];
            double t_new;
            if constexpr (kRecip) {
                if (x > 0)
                    flow = std::fma(gl, tp[i - 1], flow);
                if (x + 1 < n)
                    flow = std::fma(gl, tp[i + 1], flow);
                if (has_n)
                    flow = std::fma(gl, tp[i - n], flow);
                if (has_s)
                    flow = std::fma(gl, tp[i + n], flow);
                flow = has_up ? std::fma(g_up, tp[i + plane], flow)
                              : flow + s.sink_flow;
                if (has_dn)
                    flow = std::fma(g_dn, tp[i - plane], flow);
                t_new = flow * gs[i];
            } else {
                if (x > 0)
                    flow += gl * tp[i - 1];
                if (x + 1 < n)
                    flow += gl * tp[i + 1];
                if (has_n)
                    flow += gl * tp[i - n];
                if (has_s)
                    flow += gl * tp[i + n];
                flow += has_up ? g_up * tp[i + plane] : s.sink_flow;
                if (has_dn)
                    flow += g_dn * tp[i - plane];
                t_new = flow / gs[i];
            }
            const double t_old = tp[i];
            // The reciprocal formulation fuses the relaxation update
            // too: one correctly-rounded fma on every path (libm,
            // vfmadd, packed) instead of leaving the contraction of
            // mul+add to compiler flags.  The legacy branch keeps
            // the historical two-rounding update.
            double t_next;
            if constexpr (kRecip)
                t_next = std::fma(omega, t_new - t_old, t_old);
            else
                t_next = t_old + omega * (t_new - t_old);
            local_max = std::max(local_max, std::abs(t_next - t_old));
            tp[i] = t_next;
        }
    }
    return local_max;
}

/** Baseline-codegen instantiations of the scalar sweep body. */
template <bool kRecip>
double
sweepRowsScalar(const ScalarStencil &s, double *tp, const double *fb,
                const double *gs, double omega, int color,
                int row_begin, int row_end)
{
    return sweepRowsScalarBody<kRecip>(s, tp, fb, gs, omega, color,
                                       row_begin, row_end);
}

#if defined(__x86_64__) && defined(__GNUC__)
/**
 * FMA-targeted twin of sweepRowsScalar<true>, dispatched by
 * simd::useFma(): identical arithmetic (std::fma is correctly
 * rounded either way), but here the compiler inlines it to vfmadd
 * instead of emitting a libm call per flow term.
 */
__attribute__((target("fma")))
double
sweepRowsScalarFma(const ScalarStencil &s, double *tp,
                   const double *fb, const double *gs, double omega,
                   int color, int row_begin, int row_end)
{
    return sweepRowsScalarBody<true>(s, tp, fb, gs, omega, color,
                                     row_begin, row_end);
}
#endif

#if defined(M3D_HAVE_AVX512_SWEEP)

/**
 * Shared geometry of the color-packed field used by the AVX-512
 * steady-state fast path.
 *
 * The red-black coloring partitions the field into two planes; the
 * packed copy stores each color's cells of a grid row (an l,y pair)
 * contiguously, h = n/2 per row.  That layout makes every stencil
 * read of a half sweep a CONTIGUOUS load: for a center cell at packed
 * index j of its row, the left/right neighbors sit at packed index
 * j - (1 - x0) / j + x0 of the SAME row of the other color's plane,
 * and the north/south/up/down neighbors sit at packed index j of the
 * adjacent rows - so eight cells update from nine unaligned vector
 * loads with no gathers or shuffles, and the per-cell stencil apply
 * runs eight lanes wide.
 *
 * One guard element before and after each plane absorbs the two
 * single-element overhangs (the left read of the global first cell
 * and the right read of the global last one); both lanes are masked
 * out of the flow sum, exactly like the scalar boundary branches.
 */
struct PackedField
{
    int n = 0;       ///< cells per side (even)
    int nl = 0;      ///< layers
    int h = 0;       ///< packed cells per row: n / 2
    const double *g_lat = nullptr; ///< per-layer lateral conductance
    const double *g_up = nullptr;  ///< per-layer vertical conductance
    double sink_flow = 0.0;        ///< g_sink * ambient
    double *t[2] = {nullptr, nullptr};        ///< packed field
    const double *fb[2] = {nullptr, nullptr}; ///< packed base flow
    /** Packed stencil factor: reciprocal conductance (multiplied) by
     * default, the conductance itself under division_sweep. */
    const double *gt[2] = {nullptr, nullptr};
};

/** Packed index of (row r, lane j): planes are [row][j] + 1 guard. */
inline std::size_t
packedIndex(int h, int r, int j)
{
    return static_cast<std::size_t>(r) * h + static_cast<std::size_t>(j);
}

/** Copy one color's cells of `src` into packed layout (plus guards). */
void
packColor(const PackedField &p, int color, const double *src,
          double *dst)
{
    for (int r = 0; r < p.nl * p.n; ++r) {
        const int l = r / p.n;
        const int y = r % p.n;
        const int x0 = (color + l + y) & 1;
        const double *row = src + static_cast<std::size_t>(r) * p.n;
        double *out = dst + packedIndex(p.h, r, 0);
        for (int j = 0; j < p.h; ++j)
            out[j] = row[x0 + 2 * j];
    }
}

/** Inverse of packColor for the temperature planes. */
void
unpackColor(const PackedField &p, int color, const double *src,
            double *dst)
{
    for (int r = 0; r < p.nl * p.n; ++r) {
        const int l = r / p.n;
        const int y = r % p.n;
        const int x0 = (color + l + y) & 1;
        const double *in = src + packedIndex(p.h, r, 0);
        double *row = dst + static_cast<std::size_t>(r) * p.n;
        for (int j = 0; j < p.h; ++j)
            row[x0 + 2 * j] = in[j];
    }
}

/**
 * AVX-512 half sweep of `color` over packed rows [row_begin,
 * row_end); returns the max temperature delta.  Bit-identical to the
 * scalar loop in GridSolver::sweepColor: each lane evaluates the
 * exact scalar expression in the historical couple() order (left,
 * right, north, south, up/sink, down), and the max reduction is
 * order-independent over non-NaN values.
 *
 * kRecip selects the formulation.  true (default config): each flow
 * term is one fused multiply-add and the quotient is a multiply by
 * the packed reciprocal conductance - bit-identical to the scalar
 * kernel's std::fma/multiply sequence because FMA is correctly
 * rounded by definition, not because the instruction selection
 * matches.  false (legacy): explicit mul/add intrinsics and a
 * division, preserved exactly for A/B drift measurement.  The
 * mul/add pairs here stay two separate roundings only because this
 * file is compiled with -ffp-contract=off (see CMakeLists.txt);
 * under GCC's default -ffp-contract=fast they would silently fuse
 * into vfmadd and drift a ulp off the baseline scalar sweep.
 */
template <bool kRecip>
__attribute__((target("avx512f,avx512vl,avx512dq")))
double
sweepPackedRows(const PackedField &p, double omega, int color,
                int row_begin, int row_end)
{
    const __m512d omega_v = _mm512_set1_pd(omega);
    const __m512d sink_v = _mm512_set1_pd(p.sink_flow);
    __m512d vmax = _mm512_setzero_pd();

    const int n = p.n;
    const int h = p.h;
    double *const tc = p.t[color];
    const double *const to = p.t[1 - color];
    const double *const fbp = p.fb[color];
    const double *const gtp = p.gt[color];
    const std::ptrdiff_t plane_h =
        static_cast<std::ptrdiff_t>(n) * h;

    // Track (layer, y) incrementally - at one vector chunk per row,
    // a per-row integer division would be real overhead - and hoist
    // the per-layer constants across each layer's n rows.
    int l = row_begin / n;
    int y = row_begin % n;
    __m512d gl_v = _mm512_set1_pd(p.g_lat[l]);
    __m512d gup_v =
        _mm512_set1_pd(l + 1 < p.nl ? p.g_up[l] : 0.0);
    __m512d gdn_v = _mm512_set1_pd(l > 0 ? p.g_up[l - 1] : 0.0);
    for (int r = row_begin; r < row_end; ++r, ++y) {
        if (y == n) {
            y = 0;
            ++l;
            gl_v = _mm512_set1_pd(p.g_lat[l]);
            gup_v =
                _mm512_set1_pd(l + 1 < p.nl ? p.g_up[l] : 0.0);
            gdn_v = _mm512_set1_pd(l > 0 ? p.g_up[l - 1] : 0.0);
        }
        const int x0 = (color + l + y) & 1;
        const bool has_up = l + 1 < p.nl;
        const bool has_dn = l > 0;
        const bool has_n = y > 0;
        const bool has_s = y + 1 < n;

        double *const cen = tc + packedIndex(h, r, 0);
        // Other-color neighbors of packed lane j: left at j-(1-x0),
        // right at j+x0, north/south/up/down at j of adjacent rows.
        const double *const oth = to + packedIndex(h, r, 0);
        const double *const leftp = oth - (1 - x0);
        const double *const rightp = oth + x0;
        const double *const fbr = fbp + packedIndex(h, r, 0);
        const double *const gtr = gtp + packedIndex(h, r, 0);

        for (int j0 = 0; j0 < h; j0 += 8) {
            const int m = std::min(8, h - j0);
            const __mmask8 km =
                static_cast<__mmask8>((1u << m) - 1u);
            // The global first cell has no left neighbor and the
            // global last none to the right; their lanes read a
            // guard element and are masked out of the sum.
            __mmask8 k_left = km;
            if (x0 == 0 && j0 == 0)
                k_left = static_cast<__mmask8>(k_left & 0xFEu);
            __mmask8 k_right = km;
            if (x0 == 1 && j0 + m == h)
                k_right = static_cast<__mmask8>(
                    k_right & ~(1u << (m - 1)));

            const __m512d t_old = _mm512_maskz_loadu_pd(km, cen + j0);
            // Flow accumulates in the historical couple() order
            // (left, right, north, south, up/sink, down).
            __m512d flow = _mm512_maskz_loadu_pd(km, fbr + j0);
            __m512d t_new;
            if constexpr (kRecip) {
                flow = _mm512_mask3_fmadd_pd(
                    gl_v, _mm512_maskz_loadu_pd(km, leftp + j0), flow,
                    k_left);
                flow = _mm512_mask3_fmadd_pd(
                    gl_v, _mm512_maskz_loadu_pd(km, rightp + j0), flow,
                    k_right);
                if (has_n)
                    flow = _mm512_fmadd_pd(
                        gl_v, _mm512_maskz_loadu_pd(km, oth - h + j0),
                        flow);
                if (has_s)
                    flow = _mm512_fmadd_pd(
                        gl_v, _mm512_maskz_loadu_pd(km, oth + h + j0),
                        flow);
                flow = has_up
                    ? _mm512_fmadd_pd(
                          gup_v,
                          _mm512_maskz_loadu_pd(km, oth + plane_h + j0),
                          flow)
                    : _mm512_add_pd(flow, sink_v);
                if (has_dn)
                    flow = _mm512_fmadd_pd(
                        gdn_v,
                        _mm512_maskz_loadu_pd(km, oth - plane_h + j0),
                        flow);
                t_new = _mm512_maskz_mul_pd(
                    km, flow, _mm512_maskz_loadu_pd(km, gtr + j0));
            } else {
                flow = _mm512_mask_add_pd(
                    flow, k_left, flow,
                    _mm512_mul_pd(
                        gl_v, _mm512_maskz_loadu_pd(km, leftp + j0)));
                flow = _mm512_mask_add_pd(
                    flow, k_right, flow,
                    _mm512_mul_pd(
                        gl_v, _mm512_maskz_loadu_pd(km, rightp + j0)));
                if (has_n)
                    flow = _mm512_add_pd(
                        flow,
                        _mm512_mul_pd(
                            gl_v,
                            _mm512_maskz_loadu_pd(km, oth - h + j0)));
                if (has_s)
                    flow = _mm512_add_pd(
                        flow,
                        _mm512_mul_pd(
                            gl_v,
                            _mm512_maskz_loadu_pd(km, oth + h + j0)));
                flow = has_up
                    ? _mm512_add_pd(
                          flow,
                          _mm512_mul_pd(
                              gup_v,
                              _mm512_maskz_loadu_pd(km,
                                                    oth + plane_h + j0)))
                    : _mm512_add_pd(flow, sink_v);
                if (has_dn)
                    flow = _mm512_add_pd(
                        flow,
                        _mm512_mul_pd(
                            gdn_v,
                            _mm512_maskz_loadu_pd(km,
                                                  oth - plane_h + j0)));
                t_new = _mm512_maskz_div_pd(
                    km, flow, _mm512_maskz_loadu_pd(km, gtr + j0));
            }
            const __m512d delta = _mm512_sub_pd(t_new, t_old);
            // Fused relaxation update under kRecip, mirroring the
            // scalar kernel's explicit std::fma.
            __m512d t_next;
            if constexpr (kRecip)
                t_next = _mm512_fmadd_pd(omega_v, delta, t_old);
            else
                t_next =
                    _mm512_add_pd(t_old, _mm512_mul_pd(omega_v, delta));
            const __m512d diff =
                _mm512_abs_pd(_mm512_sub_pd(t_next, t_old));
            vmax = _mm512_mask_max_pd(vmax, km, vmax, diff);
            _mm512_mask_storeu_pd(cen + j0, km, t_next);
        }
    }
    return _mm512_reduce_max_pd(vmax);
}

/** One field's packed planes inside a multi-field solve. */
struct PackedStreams
{
    double *t[2] = {nullptr, nullptr};
    const double *fb[2] = {nullptr, nullptr};
};

/** Fields one multi-solve can interleave (apps per design is 3). */
constexpr int kMaxPackedFields = 8;

/**
 * Multi-field AVX-512 half sweep: the sweepPackedRows update applied
 * to `nf` independent fields per row, sharing the geometry, masks,
 * and stencil-diagonal load.  Per field the arithmetic sequence is
 * exactly sweepPackedRows' (fields never mix), so each field's result
 * is bit-identical to sweeping it alone; running them together keeps
 * nf independent flow-accumulation chains in flight where one field's
 * serial chain would stall the core.  Writes field f's max delta to
 * max_out[f].  kRecip selects the formulation exactly as in
 * sweepPackedRows.
 */
template <bool kRecip>
__attribute__((target("avx512f,avx512vl,avx512dq")))
void
sweepPackedRowsMulti(const PackedField &p, const PackedStreams *fs,
                     int nf, double omega, int color, int row_begin,
                     int row_end, double *max_out)
{
    const __m512d omega_v = _mm512_set1_pd(omega);
    const __m512d sink_v = _mm512_set1_pd(p.sink_flow);
    __m512d vmax[kMaxPackedFields];
    for (int f = 0; f < nf; ++f)
        vmax[f] = _mm512_setzero_pd();

    const int n = p.n;
    const int h = p.h;
    const double *const gtp = p.gt[color];
    const std::ptrdiff_t plane_h =
        static_cast<std::ptrdiff_t>(n) * h;

    int l = row_begin / n;
    int y = row_begin % n;
    __m512d gl_v = _mm512_set1_pd(p.g_lat[l]);
    __m512d gup_v =
        _mm512_set1_pd(l + 1 < p.nl ? p.g_up[l] : 0.0);
    __m512d gdn_v = _mm512_set1_pd(l > 0 ? p.g_up[l - 1] : 0.0);
    for (int r = row_begin; r < row_end; ++r, ++y) {
        if (y == n) {
            y = 0;
            ++l;
            gl_v = _mm512_set1_pd(p.g_lat[l]);
            gup_v =
                _mm512_set1_pd(l + 1 < p.nl ? p.g_up[l] : 0.0);
            gdn_v = _mm512_set1_pd(l > 0 ? p.g_up[l - 1] : 0.0);
        }
        const int x0 = (color + l + y) & 1;
        const bool has_up = l + 1 < p.nl;
        const bool has_dn = l > 0;
        const bool has_n = y > 0;
        const bool has_s = y + 1 < n;
        const std::size_t ro = packedIndex(h, r, 0);
        const double *const gtr = gtp + ro;

        for (int j0 = 0; j0 < h; j0 += 8) {
            const int m = std::min(8, h - j0);
            const __mmask8 km =
                static_cast<__mmask8>((1u << m) - 1u);
            __mmask8 k_left = km;
            if (x0 == 0 && j0 == 0)
                k_left = static_cast<__mmask8>(k_left & 0xFEu);
            __mmask8 k_right = km;
            if (x0 == 1 && j0 + m == h)
                k_right = static_cast<__mmask8>(
                    k_right & ~(1u << (m - 1)));

            const __m512d gt_v =
                _mm512_maskz_loadu_pd(km, gtr + j0);
            for (int f = 0; f < nf; ++f) {
                double *const cen = fs[f].t[color] + ro;
                const double *const oth = fs[f].t[1 - color] + ro;
                const double *const leftp = oth - (1 - x0);
                const double *const rightp = oth + x0;
                const double *const fbr = fs[f].fb[color] + ro;

                const __m512d t_old =
                    _mm512_maskz_loadu_pd(km, cen + j0);
                __m512d flow = _mm512_maskz_loadu_pd(km, fbr + j0);
                __m512d t_new;
                if constexpr (kRecip) {
                    flow = _mm512_mask3_fmadd_pd(
                        gl_v, _mm512_maskz_loadu_pd(km, leftp + j0),
                        flow, k_left);
                    flow = _mm512_mask3_fmadd_pd(
                        gl_v, _mm512_maskz_loadu_pd(km, rightp + j0),
                        flow, k_right);
                    if (has_n)
                        flow = _mm512_fmadd_pd(
                            gl_v,
                            _mm512_maskz_loadu_pd(km, oth - h + j0),
                            flow);
                    if (has_s)
                        flow = _mm512_fmadd_pd(
                            gl_v,
                            _mm512_maskz_loadu_pd(km, oth + h + j0),
                            flow);
                    flow = has_up
                        ? _mm512_fmadd_pd(
                              gup_v,
                              _mm512_maskz_loadu_pd(
                                  km, oth + plane_h + j0),
                              flow)
                        : _mm512_add_pd(flow, sink_v);
                    if (has_dn)
                        flow = _mm512_fmadd_pd(
                            gdn_v,
                            _mm512_maskz_loadu_pd(
                                km, oth - plane_h + j0),
                            flow);
                    t_new = _mm512_maskz_mul_pd(km, flow, gt_v);
                } else {
                    flow = _mm512_mask_add_pd(
                        flow, k_left, flow,
                        _mm512_mul_pd(
                            gl_v,
                            _mm512_maskz_loadu_pd(km, leftp + j0)));
                    flow = _mm512_mask_add_pd(
                        flow, k_right, flow,
                        _mm512_mul_pd(
                            gl_v,
                            _mm512_maskz_loadu_pd(km, rightp + j0)));
                    if (has_n)
                        flow = _mm512_add_pd(
                            flow,
                            _mm512_mul_pd(
                                gl_v,
                                _mm512_maskz_loadu_pd(km,
                                                      oth - h + j0)));
                    if (has_s)
                        flow = _mm512_add_pd(
                            flow,
                            _mm512_mul_pd(
                                gl_v,
                                _mm512_maskz_loadu_pd(km,
                                                      oth + h + j0)));
                    flow = has_up
                        ? _mm512_add_pd(
                              flow,
                              _mm512_mul_pd(
                                  gup_v,
                                  _mm512_maskz_loadu_pd(
                                      km, oth + plane_h + j0)))
                        : _mm512_add_pd(flow, sink_v);
                    if (has_dn)
                        flow = _mm512_add_pd(
                            flow,
                            _mm512_mul_pd(
                                gdn_v,
                                _mm512_maskz_loadu_pd(
                                    km, oth - plane_h + j0)));
                    t_new = _mm512_maskz_div_pd(km, flow, gt_v);
                }
                const __m512d delta = _mm512_sub_pd(t_new, t_old);
                // Fused relaxation update under kRecip, mirroring
                // the scalar kernel's explicit std::fma.
                __m512d t_next;
                if constexpr (kRecip)
                    t_next = _mm512_fmadd_pd(omega_v, delta, t_old);
                else
                    t_next = _mm512_add_pd(
                        t_old, _mm512_mul_pd(omega_v, delta));
                const __m512d diff =
                    _mm512_abs_pd(_mm512_sub_pd(t_next, t_old));
                vmax[f] =
                    _mm512_mask_max_pd(vmax[f], km, vmax[f], diff);
                _mm512_mask_storeu_pd(cen + j0, km, t_next);
            }
        }
    }
    for (int f = 0; f < nf; ++f)
        max_out[f] = _mm512_reduce_max_pd(vmax[f]);
}

#endif // M3D_HAVE_AVX512_SWEEP

} // namespace

double
ThermalField::at(int layer, int y, int x) const
{
    return t_c[(static_cast<std::size_t>(layer) * grid + y) * grid + x];
}

double
ThermalField::peak() const
{
    double p = t_c.empty() ? 0.0 : t_c.front();
    for (double v : t_c)
        p = std::max(p, v);
    return p;
}

double
ThermalField::peakIn(int layer, double x0, double y0, double x1,
                     double y1) const
{
    const int ix0 = std::clamp(static_cast<int>(x0 * grid), 0, grid - 1);
    const int iy0 = std::clamp(static_cast<int>(y0 * grid), 0, grid - 1);
    const int ix1 =
        std::clamp(static_cast<int>(std::ceil(x1 * grid)) - 1, 0,
                   grid - 1);
    const int iy1 =
        std::clamp(static_cast<int>(std::ceil(y1 * grid)) - 1, 0,
                   grid - 1);
    double p = at(layer, iy0, ix0);
    for (int y = iy0; y <= iy1; ++y) {
        for (int x = ix0; x <= ix1; ++x)
            p = std::max(p, at(layer, y, x));
    }
    return p;
}

/** Per-solve conductances, capacitances, and power injection. */
struct GridSolver::Coefficients
{
    int n = 0;
    int nl = 0;
    std::vector<double> g_up;  ///< vertical conductance l -> l+1
    std::vector<double> g_lat; ///< lateral conductance inside layer l
    std::vector<double> cap;   ///< per-cell heat capacity of layer l
    std::vector<double> power; ///< W injected per node
    double g_sink = 0.0;       ///< per-cell conductance to ambient
    double sink_cap_per_cell = 0.0;
};

GridSolver::Coefficients
GridSolver::assemble(
    const std::vector<std::vector<double>> &power_per_source) const
{
    const int n = grid_;
    const int nl = static_cast<int>(stack_.layers.size());
    const std::vector<std::size_t> sources = stack_.sourceLayers();
    M3D_ASSERT(power_per_source.size() == sources.size(),
               "one power map per source layer required");
    for (const auto &m : power_per_source) {
        M3D_ASSERT(m.size() ==
                   static_cast<std::size_t>(n) * static_cast<std::size_t>(n));
    }

    const double a_cell = cell_w_ * cell_h_;
    Coefficients c;
    c.n = n;
    c.nl = nl;

    // Vertical conductance between layer l and l+1 (per cell).
    c.g_up.assign(static_cast<std::size_t>(nl), 0.0);
    for (int l = 0; l + 1 < nl; ++l) {
        const ThermalLayer &a = stack_.layers[static_cast<std::size_t>(l)];
        const ThermalLayer &b =
            stack_.layers[static_cast<std::size_t>(l + 1)];
        const double r = a.thickness / (2.0 * a.conductivity * a_cell) +
                         b.thickness / (2.0 * b.conductivity * a_cell);
        c.g_up[static_cast<std::size_t>(l)] = 1.0 / r;
    }

    // Lateral conductance inside a layer (square cells: k * t) and
    // per-cell heat capacity (transient only).
    c.g_lat.assign(static_cast<std::size_t>(nl), 0.0);
    c.cap.assign(static_cast<std::size_t>(nl), 0.0);
    for (int l = 0; l < nl; ++l) {
        const ThermalLayer &s = stack_.layers[static_cast<std::size_t>(l)];
        c.g_lat[static_cast<std::size_t>(l)] =
            s.conductivity * s.thickness * (cell_h_ / cell_w_);
        c.cap[static_cast<std::size_t>(l)] =
            s.heat_capacity * s.thickness * a_cell;
    }

    // Sink conductance per cell behind the last layer; the sink's own
    // thermal mass buffers the last layer in transient solves.
    c.g_sink = 1.0 / (stack_.sink_resistance * static_cast<double>(n) *
                      static_cast<double>(n));
    c.sink_cap_per_cell =
        50.0 /* J/K total */ / (static_cast<double>(n) * n);

    // Power injection per node.
    c.power.assign(static_cast<std::size_t>(nl) * n * n, 0.0);
    for (std::size_t s = 0; s < sources.size(); ++s) {
        const std::size_t l = sources[s];
        for (int i = 0; i < n * n; ++i) {
            c.power[l * static_cast<std::size_t>(n) * n +
                    static_cast<std::size_t>(i)] =
                power_per_source[s][static_cast<std::size_t>(i)];
        }
    }
    return c;
}

std::vector<double>
GridSolver::totalConductance(const Coefficients &c,
                             const std::vector<double> &diag) const
{
    const int n = c.n;
    const int nl = c.nl;
    const std::size_t plane = static_cast<std::size_t>(n) * n;
    std::vector<double> g_total(static_cast<std::size_t>(nl) * plane);
    for (int l = 0; l < nl; ++l) {
        const double gl = c.g_lat[static_cast<std::size_t>(l)];
        const double g_diag =
            diag.empty() ? 0.0 : diag[static_cast<std::size_t>(l)];
        for (int y = 0; y < n; ++y) {
            const std::size_t row_base =
                static_cast<std::size_t>(l) * plane +
                static_cast<std::size_t>(y) * n;
            for (int x = 0; x < n; ++x) {
                // Accumulation order matches the historical per-cell
                // couple() sequence exactly: left, right, north,
                // south, up/sink, down.
                double g = g_diag;
                if (x > 0)
                    g += gl;
                if (x + 1 < n)
                    g += gl;
                if (y > 0)
                    g += gl;
                if (y + 1 < n)
                    g += gl;
                g += l + 1 < nl
                    ? c.g_up[static_cast<std::size_t>(l)]
                    : c.g_sink;
                if (l > 0)
                    g += c.g_up[static_cast<std::size_t>(l - 1)];
                g_total[row_base + x] = g;
            }
        }
    }
    return g_total;
}

std::vector<double>
GridSolver::stencilFactor(const Coefficients &c,
                          const std::vector<double> &diag) const
{
    std::vector<double> g = totalConductance(c, diag);
    if (!config_.division_sweep) {
        // One division per cell per SOLVE instead of one per cell
        // per sweep; the inner loops multiply.
        for (double &v : g)
            v = 1.0 / v;
    }
    return g;
}

double
GridSolver::sweepColor(const Coefficients &c, std::vector<double> &t,
                       const std::vector<double> &flow_base,
                       const std::vector<double> &g_stencil,
                       double omega, int color) const
{
    const int n = c.n;
    const int nl = c.nl;

    ScalarStencil s;
    s.n = n;
    s.nl = nl;
    s.g_lat = c.g_lat.data();
    s.g_up = c.g_up.data();
    s.sink_flow = c.g_sink * stack_.ambient_c;
    double *const tp = t.data();
    const double *const fb = flow_base.data();
    const double *const gs = g_stencil.data();

    // Pick the row-sweep kernel once per call: reciprocal (std::fma
    // accumulation, preferring the FMA-targeted twin) or the legacy
    // division formulation.  Both are pure functions of their row
    // range, so the parallel path below stays bit-identical at any
    // thread count for either choice.
    using SweepFn = double (*)(const ScalarStencil &, double *,
                               const double *, const double *, double,
                               int, int, int);
    SweepFn sweep_fn = config_.division_sweep
        ? &sweepRowsScalar<false>
        : &sweepRowsScalar<true>;
#if defined(__x86_64__) && defined(__GNUC__)
    if (!config_.division_sweep && simd::useFma())
        sweep_fn = &sweepRowsScalarFma;
#endif

    // Each grid row (one l,y pair) holds cells of alternating color;
    // a cell's 6 neighbors all have the opposite parity of
    // (l + y + x), so updating one color only reads the other - rows
    // can be processed concurrently with bit-identical results.
    auto sweepRows = [&](int row_begin, int row_end) {
        return sweep_fn(s, tp, fb, gs, omega, color, row_begin,
                        row_end);
    };

    const int rows = nl * n;
    if (!pool_)
        return sweepRows(0, rows);

    const int workers = std::max(1, pool_->threads());
    const int chunk = config_.rows_per_task > 0
        ? config_.rows_per_task
        : std::max(1, (rows + workers - 1) / workers);
    const int tasks = (rows + chunk - 1) / chunk;
    std::vector<double> task_max(static_cast<std::size_t>(tasks), 0.0);
    pool_->parallelFor(static_cast<std::size_t>(tasks),
                       [&](std::size_t ti) {
                           const int begin = static_cast<int>(ti) * chunk;
                           const int end =
                               std::min(rows, begin + chunk);
                           task_max[ti] = sweepRows(begin, end);
                       });
    double max_delta = 0.0;
    for (double v : task_max)
        max_delta = std::max(max_delta, v);
    return max_delta;
}

#if defined(M3D_HAVE_AVX512_SWEEP)

void
GridSolver::solvePackedSteady(const Coefficients &c,
                              const std::vector<double> &g_stencil,
                              std::vector<double> &t,
                              SolveStats &st) const
{
    const int n = c.n;
    const int nl = c.nl;
    const int h = n / 2;
    const int rows = nl * n;
    const std::size_t cells = static_cast<std::size_t>(rows) * h;

    // Pack the field, base flow, and stencil diagonal per color; the
    // packing is a pure copy, done once per ~thousand sweeps.  One
    // guard element on each side absorbs the two boundary overhangs.
    PackedField p;
    p.n = n;
    p.nl = nl;
    p.h = h;
    p.g_lat = c.g_lat.data();
    p.g_up = c.g_up.data();
    p.sink_flow = c.g_sink * stack_.ambient_c;
    std::vector<double> tp[2], fbp[2], gtp[2];
    for (int color = 0; color < 2; ++color) {
        tp[color].assign(cells + 2, 0.0);
        fbp[color].assign(cells + 2, 0.0);
        gtp[color].assign(cells + 2, 1.0);
        packColor(p, color, t.data(), tp[color].data() + 1);
        packColor(p, color, c.power.data(), fbp[color].data() + 1);
        packColor(p, color, g_stencil.data(), gtp[color].data() + 1);
        p.t[color] = tp[color].data() + 1;
        p.fb[color] = fbp[color].data() + 1;
        p.gt[color] = gtp[color].data() + 1;
    }

    // Formulation dispatch mirrors sweepColor's.
    using PackedFn =
        double (*)(const PackedField &, double, int, int, int);
    const PackedFn sweep_rows = config_.division_sweep
        ? &sweepPackedRows<false>
        : &sweepPackedRows<true>;

    auto sweep = [&](int color) {
        if (!pool_)
            return sweep_rows(p, config_.omega, color, 0, rows);
        const int workers = std::max(1, pool_->threads());
        const int chunk = config_.rows_per_task > 0
            ? config_.rows_per_task
            : std::max(1, (rows + workers - 1) / workers);
        const int tasks = (rows + chunk - 1) / chunk;
        std::vector<double> task_max(static_cast<std::size_t>(tasks),
                                     0.0);
        pool_->parallelFor(
            static_cast<std::size_t>(tasks), [&](std::size_t ti) {
                const int begin = static_cast<int>(ti) * chunk;
                const int end = std::min(rows, begin + chunk);
                task_max[ti] = sweep_rows(p, config_.omega, color,
                                          begin, end);
            });
        double max_delta = 0.0;
        for (double v : task_max)
            max_delta = std::max(max_delta, v);
        return max_delta;
    };

    double max_delta = 0.0;
    for (int iter = 1; iter <= config_.max_steady_iterations; ++iter) {
        st.iterations = iter;
        // Color 1 sweeps before color 0: the historical call spelled
        // std::max(sweep(0), sweep(1)), whose unspecified argument
        // order this compiler evaluates right to left, and the golden
        // thermal metrics were blessed under that de-facto order.
        const double d1 = sweep(1);
        const double d0 = sweep(0);
        max_delta = std::max(d0, d1);
        if (max_delta < config_.tolerance) {
            st.converged = true;
            break;
        }
    }
    st.residual = max_delta;

    for (int color = 0; color < 2; ++color)
        unpackColor(p, color, p.t[color], t.data());
}

void
GridSolver::solveManyPackedSteady(
    const std::vector<Coefficients> &cs,
    const std::vector<double> &g_stencil,
    const std::vector<std::vector<double> *> &ts,
    std::vector<SolveStats> &sts) const
{
    const std::size_t k = cs.size();
    M3D_ASSERT(k >= 1 && k <= kMaxPackedFields,
               "multi-solve supports up to ", kMaxPackedFields,
               " fields");
    const int n = cs[0].n;
    const int nl = cs[0].nl;
    const int h = n / 2;
    const int rows = nl * n;
    const std::size_t cells = static_cast<std::size_t>(rows) * h;

    // Geometry and stencil diagonal are shared by every field (the
    // conductances never depend on power); only the base flow and the
    // evolving temperature planes are per-field.
    PackedField p;
    p.n = n;
    p.nl = nl;
    p.h = h;
    p.g_lat = cs[0].g_lat.data();
    p.g_up = cs[0].g_up.data();
    p.sink_flow = cs[0].g_sink * stack_.ambient_c;
    std::vector<double> gtp[2];
    for (int color = 0; color < 2; ++color) {
        gtp[color].assign(cells + 2, 1.0);
        packColor(p, color, g_stencil.data(), gtp[color].data() + 1);
        p.gt[color] = gtp[color].data() + 1;
    }
    std::vector<std::vector<double>> tp(2 * k), fbp(2 * k);
    std::vector<PackedStreams> streams(k);
    for (std::size_t f = 0; f < k; ++f) {
        for (int color = 0; color < 2; ++color) {
            std::vector<double> &tf = tp[2 * f + color];
            std::vector<double> &ff = fbp[2 * f + color];
            tf.assign(cells + 2, 0.0);
            ff.assign(cells + 2, 0.0);
            packColor(p, color, ts[f]->data(), tf.data() + 1);
            packColor(p, color, cs[f].power.data(), ff.data() + 1);
            streams[f].t[color] = tf.data() + 1;
            streams[f].fb[color] = ff.data() + 1;
        }
    }

    // Sweep one color over the still-active fields; alive[a] maps the
    // compact stream slot a back to its field index.
    std::vector<std::size_t> alive(k);
    for (std::size_t f = 0; f < k; ++f)
        alive[f] = f;
    std::vector<PackedStreams> active(k);
    // Formulation dispatch mirrors sweepColor's.
    using PackedMultiFn =
        void (*)(const PackedField &, const PackedStreams *, int,
                 double, int, int, int, double *);
    const PackedMultiFn sweep_rows_multi = config_.division_sweep
        ? &sweepPackedRowsMulti<false>
        : &sweepPackedRowsMulti<true>;
    const auto sweep = [&](int color, double *max_out) {
        const int nf = static_cast<int>(alive.size());
        if (!pool_) {
            sweep_rows_multi(p, active.data(), nf, config_.omega,
                             color, 0, rows, max_out);
            return;
        }
        const int workers = std::max(1, pool_->threads());
        const int chunk = config_.rows_per_task > 0
            ? config_.rows_per_task
            : std::max(1, (rows + workers - 1) / workers);
        const int tasks = (rows + chunk - 1) / chunk;
        std::vector<double> task_max(
            static_cast<std::size_t>(tasks) * alive.size(), 0.0);
        pool_->parallelFor(
            static_cast<std::size_t>(tasks), [&](std::size_t ti) {
                const int begin = static_cast<int>(ti) * chunk;
                const int end = std::min(rows, begin + chunk);
                sweep_rows_multi(
                    p, active.data(), nf, config_.omega, color, begin,
                    end, task_max.data() + ti * alive.size());
            });
        for (std::size_t f = 0; f < alive.size(); ++f) {
            double m = 0.0;
            for (int ti = 0; ti < tasks; ++ti)
                m = std::max(
                    m, task_max[static_cast<std::size_t>(ti) *
                                    alive.size() +
                                f]);
            max_out[f] = m;
        }
    };

    double max0[kMaxPackedFields];
    double max1[kMaxPackedFields];
    for (int iter = 1;
         iter <= config_.max_steady_iterations && !alive.empty();
         ++iter) {
        for (std::size_t a = 0; a < alive.size(); ++a)
            active[a] = streams[alive[a]];
        active.resize(alive.size());
        // Same color-1-first order as every other sweep loop (see
        // solvePackedSteady) - swapping it flips which parity class
        // reads freshly updated neighbors and changes every result.
        sweep(1, max1);
        sweep(0, max0);
        // Freeze converged fields: their planes are never touched
        // again, so they hold exactly the state a solo solve of the
        // same field would have stopped at.
        for (std::size_t a = alive.size(); a-- > 0;) {
            const std::size_t f = alive[a];
            const double max_delta = std::max(max0[a], max1[a]);
            sts[f].iterations = iter;
            sts[f].residual = max_delta;
            if (max_delta < config_.tolerance) {
                sts[f].converged = true;
                alive.erase(alive.begin() +
                            static_cast<std::ptrdiff_t>(a));
            }
        }
    }

    for (std::size_t f = 0; f < k; ++f) {
        for (int color = 0; color < 2; ++color)
            unpackColor(p, color, streams[f].t[color],
                        ts[f]->data());
    }
}

#endif // M3D_HAVE_AVX512_SWEEP

void
GridSolver::finishSolve(SolveStats &st, SolveStats *stats_out,
                        const char *what) const
{
    if (!st.converged) {
        std::ostringstream oss;
        oss << what << " thermal solve did not converge: residual "
            << st.residual << " C after " << st.iterations
            << " sweeps (tolerance " << config_.tolerance << " C)";
        if (config_.on_non_convergence ==
            SolverConfig::OnNonConvergence::Error) {
            if (stats_out)
                *stats_out = st;
            throw NonConvergenceError(oss.str(), st);
        }
        M3D_WARN(oss.str(), "; returning the partial field");
    }
    if (stats_out)
        *stats_out = st;
}

GridSolver::GridSolver(const LayerStack &stack, double chip_w,
                       double chip_h, int grid,
                       const SolverConfig &config)
    : stack_(stack), chip_w_(chip_w), chip_h_(chip_h),
      cell_w_(chip_w / grid), cell_h_(chip_h / grid), grid_(grid),
      config_(config)
{
    M3D_ASSERT(grid >= 4, "grid too coarse");
    M3D_ASSERT(!stack_.layers.empty());
    M3D_ASSERT(!stack_.sourceLayers().empty(),
               "stack has no heat-source layer");
    M3D_ASSERT(config_.tolerance > 0.0, "tolerance must be positive");
    M3D_ASSERT(config_.max_steady_iterations >= 1);
    M3D_ASSERT(config_.max_transient_sweeps >= 1);
    const int threads = ThreadPool::resolveThreads(config_.threads);
    if (threads > 1)
        pool_ = std::make_unique<ThreadPool>(threads);
}

GridSolver::~GridSolver() = default;

ThermalField
GridSolver::solve(
    const std::vector<std::vector<double>> &power_per_source,
    SolveStats *stats) const
{
    const auto t0 = std::chrono::steady_clock::now();
    const Coefficients c = assemble(power_per_source);

    ThermalField field;
    field.grid = c.n;
    field.layers = c.nl;
    field.t_c.assign(static_cast<std::size_t>(c.nl) * c.n * c.n,
                     stack_.ambient_c);
    std::vector<double> &t = field.t_c;

    // Steady state has no capacitive diagonal term; the sweep's base
    // flow is just the injected power.
    const std::vector<double> g_stencil =
        stencilFactor(c, std::vector<double>());

    SolveStats st;
#if defined(M3D_HAVE_AVX512_SWEEP)
    if (simd::useAvx512() && !config_.force_scalar && c.n % 2 == 0) {
        solvePackedSteady(c, g_stencil, t, st);
        st.seconds = elapsedSeconds(t0);
        finishSolve(st, stats, "steady-state");
        return field;
    }
#endif
    double max_delta = 0.0;
    for (int iter = 1; iter <= config_.max_steady_iterations; ++iter) {
        st.iterations = iter;
        // Explicit color-1-first order (the historical std::max call
        // left it to unspecified argument evaluation; this compiler
        // ran right to left and the goldens bless that order).
        const double d1 =
            sweepColor(c, t, c.power, g_stencil, config_.omega, 1);
        const double d0 =
            sweepColor(c, t, c.power, g_stencil, config_.omega, 0);
        max_delta = std::max(d0, d1);
        if (max_delta < config_.tolerance) {
            st.converged = true;
            break;
        }
    }
    st.residual = max_delta;
    st.seconds = elapsedSeconds(t0);
    finishSolve(st, stats, "steady-state");
    return field;
}

std::vector<ThermalField>
GridSolver::solveMany(
    const std::vector<std::vector<std::vector<double>>> &power_maps,
    std::vector<SolveStats> *stats) const
{
    const std::size_t k = power_maps.size();
    if (stats)
        stats->assign(k, SolveStats{});

#if defined(M3D_HAVE_AVX512_SWEEP)
    if (k > 1 && k <= kMaxPackedFields && simd::useAvx512() &&
        !config_.force_scalar && grid_ % 2 == 0) {
        const auto t0 = std::chrono::steady_clock::now();
        std::vector<Coefficients> cs;
        cs.reserve(k);
        for (const auto &maps : power_maps)
            cs.push_back(assemble(maps));
        // The stencil factor ignores power, so one field's serves all.
        const std::vector<double> g_stencil =
            stencilFactor(cs[0], std::vector<double>());

        std::vector<ThermalField> out(k);
        std::vector<std::vector<double> *> ts(k);
        for (std::size_t f = 0; f < k; ++f) {
            out[f].grid = cs[f].n;
            out[f].layers = cs[f].nl;
            out[f].t_c.assign(static_cast<std::size_t>(cs[f].nl) *
                                  cs[f].n * cs[f].n,
                              stack_.ambient_c);
            ts[f] = &out[f].t_c;
        }

        std::vector<SolveStats> sts(k);
        solveManyPackedSteady(cs, g_stencil, ts, sts);
        const double seconds = elapsedSeconds(t0);
        for (std::size_t f = 0; f < k; ++f) {
            sts[f].seconds = seconds;
            finishSolve(sts[f], stats ? &(*stats)[f] : nullptr,
                        "steady-state");
        }
        return out;
    }
#endif

    std::vector<ThermalField> out;
    out.reserve(k);
    for (std::size_t f = 0; f < k; ++f)
        out.push_back(
            solve(power_maps[f], stats ? &(*stats)[f] : nullptr));
    return out;
}

std::vector<GridSolver::TransientSample>
GridSolver::solveTransient(
    const std::vector<std::vector<double>> &power_per_source,
    double dt, int steps, SolveStats *stats) const
{
    M3D_ASSERT(dt > 0.0 && steps >= 1);
    const auto t0 = std::chrono::steady_clock::now();
    const Coefficients c = assemble(power_per_source);
    const int n = c.n;
    const int nl = c.nl;
    const std::size_t cells =
        static_cast<std::size_t>(nl) * n * n;

    // Backward Euler adds c_node/dt to each node's diagonal and
    // (c_node/dt) * T_prev to its flow.
    std::vector<double> diag(static_cast<std::size_t>(nl), 0.0);
    for (int l = 0; l < nl; ++l) {
        const double c_node = c.cap[static_cast<std::size_t>(l)] +
            (l + 1 == nl ? c.sink_cap_per_cell : 0.0);
        diag[static_cast<std::size_t>(l)] = c_node / dt;
    }
    // The capacitive diagonal is fixed across steps, so the stencil
    // factor is too.
    const std::vector<double> g_stencil = stencilFactor(c, diag);

    std::vector<double> t(cells, stack_.ambient_c);
    // Per-step constant part of each node's flow: the capacitive
    // pull towards the previous state plus the injected power.
    // Hoisting it here (instead of copying the field and recomputing
    // it inside every sweep) does the work once per step, not once
    // per sweep.
    std::vector<double> flow_base(cells, 0.0);

    std::vector<TransientSample> out;
    out.reserve(static_cast<std::size_t>(steps));

    SolveStats st;
    int failed_steps = 0;
    for (int step = 1; step <= steps; ++step) {
        st.steps = step;
        for (int l = 0; l < nl; ++l) {
            const double d = diag[static_cast<std::size_t>(l)];
            const std::size_t base =
                static_cast<std::size_t>(l) * n * n;
            for (std::size_t i = 0;
                 i < static_cast<std::size_t>(n) * n; ++i) {
                flow_base[base + i] =
                    d * t[base + i] + c.power[base + i];
            }
        }
        bool step_converged = false;
        double max_delta = 0.0;
        for (int sweep = 0; sweep < config_.max_transient_sweeps;
             ++sweep) {
            ++st.iterations;
            // Same explicit color-1-first order as the steady loop.
            const double d1 =
                sweepColor(c, t, flow_base, g_stencil, 1.0, 1);
            const double d0 =
                sweepColor(c, t, flow_base, g_stencil, 1.0, 0);
            max_delta = std::max(d0, d1);
            if (max_delta < config_.tolerance) {
                step_converged = true;
                break;
            }
        }
        st.residual = std::max(st.residual, max_delta);
        if (!step_converged) {
            ++failed_steps;
            if (config_.on_non_convergence ==
                SolverConfig::OnNonConvergence::Error) {
                st.seconds = elapsedSeconds(t0);
                finishSolve(st, stats, "transient");
            }
        }
        double peak = t.front();
        for (double v : t)
            peak = std::max(peak, v);
        out.push_back({static_cast<double>(step) * dt, peak});
    }
    st.converged = failed_steps == 0;
    st.seconds = elapsedSeconds(t0);
    finishSolve(st, stats, "transient");
    return out;
}

} // namespace m3d
