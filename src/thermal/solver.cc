#include "thermal/solver.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace m3d {

double
ThermalField::at(int layer, int y, int x) const
{
    return t_c[(static_cast<std::size_t>(layer) * grid + y) * grid + x];
}

double
ThermalField::peak() const
{
    double p = t_c.empty() ? 0.0 : t_c.front();
    for (double v : t_c)
        p = std::max(p, v);
    return p;
}

double
ThermalField::peakIn(int layer, double x0, double y0, double x1,
                     double y1) const
{
    const int ix0 = std::clamp(static_cast<int>(x0 * grid), 0, grid - 1);
    const int iy0 = std::clamp(static_cast<int>(y0 * grid), 0, grid - 1);
    const int ix1 =
        std::clamp(static_cast<int>(std::ceil(x1 * grid)) - 1, 0,
                   grid - 1);
    const int iy1 =
        std::clamp(static_cast<int>(std::ceil(y1 * grid)) - 1, 0,
                   grid - 1);
    double p = at(layer, iy0, ix0);
    for (int y = iy0; y <= iy1; ++y) {
        for (int x = ix0; x <= ix1; ++x)
            p = std::max(p, at(layer, y, x));
    }
    return p;
}

std::vector<GridSolver::TransientSample>
GridSolver::solveTransient(
    const std::vector<std::vector<double>> &power_per_source,
    double dt, int steps) const
{
    M3D_ASSERT(dt > 0.0 && steps >= 1);
    const int n = grid_;
    const int nl = static_cast<int>(stack_.layers.size());
    const std::vector<std::size_t> sources = stack_.sourceLayers();
    M3D_ASSERT(power_per_source.size() == sources.size(),
               "one power map per source layer required");

    const double a_cell = cell_w_ * cell_h_;

    std::vector<double> g_up(static_cast<std::size_t>(nl), 0.0);
    for (int l = 0; l + 1 < nl; ++l) {
        const ThermalLayer &a = stack_.layers[static_cast<std::size_t>(l)];
        const ThermalLayer &b =
            stack_.layers[static_cast<std::size_t>(l + 1)];
        const double r = a.thickness / (2.0 * a.conductivity * a_cell) +
                         b.thickness / (2.0 * b.conductivity * a_cell);
        g_up[static_cast<std::size_t>(l)] = 1.0 / r;
    }
    std::vector<double> g_lat(static_cast<std::size_t>(nl), 0.0);
    std::vector<double> cap(static_cast<std::size_t>(nl), 0.0);
    for (int l = 0; l < nl; ++l) {
        const ThermalLayer &s = stack_.layers[static_cast<std::size_t>(l)];
        g_lat[static_cast<std::size_t>(l)] =
            s.conductivity * s.thickness * (cell_h_ / cell_w_);
        cap[static_cast<std::size_t>(l)] =
            s.heat_capacity * s.thickness * a_cell;
    }
    const double g_sink =
        1.0 / (stack_.sink_resistance * static_cast<double>(n) *
               static_cast<double>(n));
    // The heat sink's own thermal mass buffers the last layer.
    const double sink_cap_per_cell = 50.0 /* J/K total */ /
        (static_cast<double>(n) * n);

    std::vector<double> power(
        static_cast<std::size_t>(nl) * n * n, 0.0);
    for (std::size_t s = 0; s < sources.size(); ++s) {
        const std::size_t l = sources[s];
        for (int i = 0; i < n * n; ++i) {
            power[l * static_cast<std::size_t>(n) * n +
                  static_cast<std::size_t>(i)] =
                power_per_source[s][static_cast<std::size_t>(i)];
        }
    }

    std::vector<double> t(static_cast<std::size_t>(nl) * n * n,
                          stack_.ambient_c);
    auto idx = [n](int l, int y, int x) {
        return (static_cast<std::size_t>(l) * n + y) * n + x;
    };

    std::vector<TransientSample> out;
    out.reserve(static_cast<std::size_t>(steps));
    std::vector<double> t_prev = t;

    for (int step = 1; step <= steps; ++step) {
        t_prev = t;
        // Backward Euler: a few Gauss-Seidel sweeps per step suffice
        // because dt couples each node mostly to itself.
        for (int sweep = 0; sweep < 60; ++sweep) {
            double max_delta = 0.0;
            for (int l = 0; l < nl; ++l) {
                const double gl = g_lat[static_cast<std::size_t>(l)];
                const double c_node =
                    cap[static_cast<std::size_t>(l)] +
                    (l + 1 == nl ? sink_cap_per_cell : 0.0);
                for (int y = 0; y < n; ++y) {
                    for (int x = 0; x < n; ++x) {
                        double g_total = c_node / dt;
                        double flow =
                            (c_node / dt) * t_prev[idx(l, y, x)];
                        auto couple = [&](double g, double tn) {
                            g_total += g;
                            flow += g * tn;
                        };
                        if (x > 0)
                            couple(gl, t[idx(l, y, x - 1)]);
                        if (x + 1 < n)
                            couple(gl, t[idx(l, y, x + 1)]);
                        if (y > 0)
                            couple(gl, t[idx(l, y - 1, x)]);
                        if (y + 1 < n)
                            couple(gl, t[idx(l, y + 1, x)]);
                        if (l + 1 < nl) {
                            couple(g_up[static_cast<std::size_t>(l)],
                                   t[idx(l + 1, y, x)]);
                        } else {
                            couple(g_sink, stack_.ambient_c);
                        }
                        if (l > 0) {
                            couple(
                                g_up[static_cast<std::size_t>(l - 1)],
                                t[idx(l - 1, y, x)]);
                        }
                        const double p = power[idx(l, y, x)];
                        const double t_new = (flow + p) / g_total;
                        max_delta = std::max(
                            max_delta,
                            std::abs(t_new - t[idx(l, y, x)]));
                        t[idx(l, y, x)] = t_new;
                    }
                }
            }
            if (max_delta < 1e-6)
                break;
        }
        double peak = t.front();
        for (double v : t)
            peak = std::max(peak, v);
        out.push_back({static_cast<double>(step) * dt, peak});
    }
    return out;
}

GridSolver::GridSolver(const LayerStack &stack, double chip_w,
                       double chip_h, int grid)
    : stack_(stack), chip_w_(chip_w), chip_h_(chip_h),
      cell_w_(chip_w / grid), cell_h_(chip_h / grid), grid_(grid)
{
    M3D_ASSERT(grid >= 4, "grid too coarse");
    M3D_ASSERT(!stack_.layers.empty());
    M3D_ASSERT(!stack_.sourceLayers().empty(),
               "stack has no heat-source layer");
}

ThermalField
GridSolver::solve(
    const std::vector<std::vector<double>> &power_per_source) const
{
    const int n = grid_;
    const int nl = static_cast<int>(stack_.layers.size());
    const std::vector<std::size_t> sources = stack_.sourceLayers();
    M3D_ASSERT(power_per_source.size() == sources.size(),
               "one power map per source layer required");
    for (const auto &m : power_per_source) {
        M3D_ASSERT(m.size() ==
                   static_cast<std::size_t>(n) * static_cast<std::size_t>(n));
    }

    const double a_cell = cell_w_ * cell_h_;

    // Vertical conductance between layer l and l+1 (per cell).
    std::vector<double> g_up(static_cast<std::size_t>(nl), 0.0);
    for (int l = 0; l + 1 < nl; ++l) {
        const ThermalLayer &a = stack_.layers[static_cast<std::size_t>(l)];
        const ThermalLayer &b =
            stack_.layers[static_cast<std::size_t>(l + 1)];
        const double r = a.thickness / (2.0 * a.conductivity * a_cell) +
                         b.thickness / (2.0 * b.conductivity * a_cell);
        g_up[static_cast<std::size_t>(l)] = 1.0 / r;
    }

    // Lateral conductance inside a layer (square cells: k * t).
    std::vector<double> g_lat(static_cast<std::size_t>(nl), 0.0);
    for (int l = 0; l < nl; ++l) {
        const ThermalLayer &s = stack_.layers[static_cast<std::size_t>(l)];
        g_lat[static_cast<std::size_t>(l)] =
            s.conductivity * s.thickness * (cell_h_ / cell_w_);
    }

    // Sink conductance per cell behind the last layer.
    const double g_sink =
        1.0 / (stack_.sink_resistance * static_cast<double>(n) *
               static_cast<double>(n));

    // Power injection per node.
    std::vector<double> power(
        static_cast<std::size_t>(nl) * n * n, 0.0);
    for (std::size_t s = 0; s < sources.size(); ++s) {
        const std::size_t l = sources[s];
        for (int i = 0; i < n * n; ++i) {
            power[l * static_cast<std::size_t>(n) * n +
                  static_cast<std::size_t>(i)] =
                power_per_source[s][static_cast<std::size_t>(i)];
        }
    }

    // SOR solve.
    ThermalField field;
    field.grid = n;
    field.layers = nl;
    field.t_c.assign(static_cast<std::size_t>(nl) * n * n,
                     stack_.ambient_c);
    std::vector<double> &t = field.t_c;

    auto idx = [n](int l, int y, int x) {
        return (static_cast<std::size_t>(l) * n + y) * n + x;
    };

    const double omega = 1.8;
    const int max_iters = 20000;
    for (int iter = 0; iter < max_iters; ++iter) {
        double max_delta = 0.0;
        for (int l = 0; l < nl; ++l) {
            const double gl = g_lat[static_cast<std::size_t>(l)];
            for (int y = 0; y < n; ++y) {
                for (int x = 0; x < n; ++x) {
                    double g_total = 0.0;
                    double flow = 0.0;
                    auto couple = [&](double g, double tn) {
                        g_total += g;
                        flow += g * tn;
                    };
                    if (x > 0)
                        couple(gl, t[idx(l, y, x - 1)]);
                    if (x + 1 < n)
                        couple(gl, t[idx(l, y, x + 1)]);
                    if (y > 0)
                        couple(gl, t[idx(l, y - 1, x)]);
                    if (y + 1 < n)
                        couple(gl, t[idx(l, y + 1, x)]);
                    if (l + 1 < nl) {
                        couple(g_up[static_cast<std::size_t>(l)],
                               t[idx(l + 1, y, x)]);
                    } else {
                        couple(g_sink, stack_.ambient_c);
                    }
                    if (l > 0) {
                        couple(g_up[static_cast<std::size_t>(l - 1)],
                               t[idx(l - 1, y, x)]);
                    }
                    const double p = power[idx(l, y, x)];
                    const double t_new = (flow + p) / g_total;
                    const double t_old = t[idx(l, y, x)];
                    const double t_sor =
                        t_old + omega * (t_new - t_old);
                    max_delta =
                        std::max(max_delta, std::abs(t_sor - t_old));
                    t[idx(l, y, x)] = t_sor;
                }
            }
        }
        if (max_delta < 1e-5)
            break;
    }
    return field;
}

} // namespace m3d
