#include "thermal/solver.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <sstream>

#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace m3d {

namespace {

double
elapsedSeconds(std::chrono::steady_clock::time_point since)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - since)
        .count();
}

} // namespace

double
ThermalField::at(int layer, int y, int x) const
{
    return t_c[(static_cast<std::size_t>(layer) * grid + y) * grid + x];
}

double
ThermalField::peak() const
{
    double p = t_c.empty() ? 0.0 : t_c.front();
    for (double v : t_c)
        p = std::max(p, v);
    return p;
}

double
ThermalField::peakIn(int layer, double x0, double y0, double x1,
                     double y1) const
{
    const int ix0 = std::clamp(static_cast<int>(x0 * grid), 0, grid - 1);
    const int iy0 = std::clamp(static_cast<int>(y0 * grid), 0, grid - 1);
    const int ix1 =
        std::clamp(static_cast<int>(std::ceil(x1 * grid)) - 1, 0,
                   grid - 1);
    const int iy1 =
        std::clamp(static_cast<int>(std::ceil(y1 * grid)) - 1, 0,
                   grid - 1);
    double p = at(layer, iy0, ix0);
    for (int y = iy0; y <= iy1; ++y) {
        for (int x = ix0; x <= ix1; ++x)
            p = std::max(p, at(layer, y, x));
    }
    return p;
}

/** Per-solve conductances, capacitances, and power injection. */
struct GridSolver::Coefficients
{
    int n = 0;
    int nl = 0;
    std::vector<double> g_up;  ///< vertical conductance l -> l+1
    std::vector<double> g_lat; ///< lateral conductance inside layer l
    std::vector<double> cap;   ///< per-cell heat capacity of layer l
    std::vector<double> power; ///< W injected per node
    double g_sink = 0.0;       ///< per-cell conductance to ambient
    double sink_cap_per_cell = 0.0;
};

GridSolver::Coefficients
GridSolver::assemble(
    const std::vector<std::vector<double>> &power_per_source) const
{
    const int n = grid_;
    const int nl = static_cast<int>(stack_.layers.size());
    const std::vector<std::size_t> sources = stack_.sourceLayers();
    M3D_ASSERT(power_per_source.size() == sources.size(),
               "one power map per source layer required");
    for (const auto &m : power_per_source) {
        M3D_ASSERT(m.size() ==
                   static_cast<std::size_t>(n) * static_cast<std::size_t>(n));
    }

    const double a_cell = cell_w_ * cell_h_;
    Coefficients c;
    c.n = n;
    c.nl = nl;

    // Vertical conductance between layer l and l+1 (per cell).
    c.g_up.assign(static_cast<std::size_t>(nl), 0.0);
    for (int l = 0; l + 1 < nl; ++l) {
        const ThermalLayer &a = stack_.layers[static_cast<std::size_t>(l)];
        const ThermalLayer &b =
            stack_.layers[static_cast<std::size_t>(l + 1)];
        const double r = a.thickness / (2.0 * a.conductivity * a_cell) +
                         b.thickness / (2.0 * b.conductivity * a_cell);
        c.g_up[static_cast<std::size_t>(l)] = 1.0 / r;
    }

    // Lateral conductance inside a layer (square cells: k * t) and
    // per-cell heat capacity (transient only).
    c.g_lat.assign(static_cast<std::size_t>(nl), 0.0);
    c.cap.assign(static_cast<std::size_t>(nl), 0.0);
    for (int l = 0; l < nl; ++l) {
        const ThermalLayer &s = stack_.layers[static_cast<std::size_t>(l)];
        c.g_lat[static_cast<std::size_t>(l)] =
            s.conductivity * s.thickness * (cell_h_ / cell_w_);
        c.cap[static_cast<std::size_t>(l)] =
            s.heat_capacity * s.thickness * a_cell;
    }

    // Sink conductance per cell behind the last layer; the sink's own
    // thermal mass buffers the last layer in transient solves.
    c.g_sink = 1.0 / (stack_.sink_resistance * static_cast<double>(n) *
                      static_cast<double>(n));
    c.sink_cap_per_cell =
        50.0 /* J/K total */ / (static_cast<double>(n) * n);

    // Power injection per node.
    c.power.assign(static_cast<std::size_t>(nl) * n * n, 0.0);
    for (std::size_t s = 0; s < sources.size(); ++s) {
        const std::size_t l = sources[s];
        for (int i = 0; i < n * n; ++i) {
            c.power[l * static_cast<std::size_t>(n) * n +
                    static_cast<std::size_t>(i)] =
                power_per_source[s][static_cast<std::size_t>(i)];
        }
    }
    return c;
}

std::vector<double>
GridSolver::totalConductance(const Coefficients &c,
                             const std::vector<double> &diag) const
{
    const int n = c.n;
    const int nl = c.nl;
    const std::size_t plane = static_cast<std::size_t>(n) * n;
    std::vector<double> g_total(static_cast<std::size_t>(nl) * plane);
    for (int l = 0; l < nl; ++l) {
        const double gl = c.g_lat[static_cast<std::size_t>(l)];
        const double g_diag =
            diag.empty() ? 0.0 : diag[static_cast<std::size_t>(l)];
        for (int y = 0; y < n; ++y) {
            const std::size_t row_base =
                static_cast<std::size_t>(l) * plane +
                static_cast<std::size_t>(y) * n;
            for (int x = 0; x < n; ++x) {
                // Accumulation order matches the historical per-cell
                // couple() sequence exactly: left, right, north,
                // south, up/sink, down.
                double g = g_diag;
                if (x > 0)
                    g += gl;
                if (x + 1 < n)
                    g += gl;
                if (y > 0)
                    g += gl;
                if (y + 1 < n)
                    g += gl;
                g += l + 1 < nl
                    ? c.g_up[static_cast<std::size_t>(l)]
                    : c.g_sink;
                if (l > 0)
                    g += c.g_up[static_cast<std::size_t>(l - 1)];
                g_total[row_base + x] = g;
            }
        }
    }
    return g_total;
}

double
GridSolver::sweepColor(const Coefficients &c, std::vector<double> &t,
                       const std::vector<double> &flow_base,
                       const std::vector<double> &g_total, double omega,
                       int color) const
{
    const int n = c.n;
    const int nl = c.nl;
    const std::size_t plane = static_cast<std::size_t>(n) * n;

    // Each grid row (one l,y pair) holds cells of alternating color;
    // a cell's 6 neighbors all have the opposite parity of
    // (l + y + x), so updating one color only reads the other - rows
    // can be processed concurrently with bit-identical results.
    auto sweepRows = [&](int row_begin, int row_end) {
        double local_max = 0.0;
        double *const tp = t.data();
        const double *const fb = flow_base.data();
        const double *const gt = g_total.data();
        const double sink_flow = c.g_sink * stack_.ambient_c;
        for (int r = row_begin; r < row_end; ++r) {
            const int l = r / n;
            const int y = r % n;
            const double gl = c.g_lat[static_cast<std::size_t>(l)];
            const std::size_t row_base =
                static_cast<std::size_t>(l) * plane +
                static_cast<std::size_t>(y) * n;
            // Row-invariant stencil legs: which vertical neighbors
            // exist and whether the row touches the y boundaries.
            const bool has_up = l + 1 < nl;
            const double g_up =
                has_up ? c.g_up[static_cast<std::size_t>(l)] : 0.0;
            const bool has_dn = l > 0;
            const double g_dn =
                has_dn ? c.g_up[static_cast<std::size_t>(l - 1)] : 0.0;
            const bool has_n = y > 0;
            const bool has_s = y + 1 < n;
            for (int x = (color + l + y) & 1; x < n; x += 2) {
                const std::size_t i = row_base + x;
                // Flow accumulates in the historical couple() order
                // (left, right, north, south, up/sink, down) so each
                // quotient is bit-identical to the original sweep.
                double flow = fb[i];
                if (x > 0)
                    flow += gl * tp[i - 1];
                if (x + 1 < n)
                    flow += gl * tp[i + 1];
                if (has_n)
                    flow += gl * tp[i - n];
                if (has_s)
                    flow += gl * tp[i + n];
                flow += has_up ? g_up * tp[i + plane] : sink_flow;
                if (has_dn)
                    flow += g_dn * tp[i - plane];
                const double t_new = flow / gt[i];
                const double t_old = tp[i];
                const double t_next =
                    t_old + omega * (t_new - t_old);
                local_max = std::max(local_max,
                                     std::abs(t_next - t_old));
                tp[i] = t_next;
            }
        }
        return local_max;
    };

    const int rows = nl * n;
    if (!pool_)
        return sweepRows(0, rows);

    const int workers = std::max(1, pool_->threads());
    const int chunk = config_.rows_per_task > 0
        ? config_.rows_per_task
        : std::max(1, (rows + workers - 1) / workers);
    const int tasks = (rows + chunk - 1) / chunk;
    std::vector<double> task_max(static_cast<std::size_t>(tasks), 0.0);
    pool_->parallelFor(static_cast<std::size_t>(tasks),
                       [&](std::size_t ti) {
                           const int begin = static_cast<int>(ti) * chunk;
                           const int end =
                               std::min(rows, begin + chunk);
                           task_max[ti] = sweepRows(begin, end);
                       });
    double max_delta = 0.0;
    for (double v : task_max)
        max_delta = std::max(max_delta, v);
    return max_delta;
}

void
GridSolver::finishSolve(SolveStats &st, SolveStats *stats_out,
                        const char *what) const
{
    if (!st.converged) {
        std::ostringstream oss;
        oss << what << " thermal solve did not converge: residual "
            << st.residual << " C after " << st.iterations
            << " sweeps (tolerance " << config_.tolerance << " C)";
        if (config_.on_non_convergence ==
            SolverConfig::OnNonConvergence::Error) {
            if (stats_out)
                *stats_out = st;
            throw NonConvergenceError(oss.str(), st);
        }
        M3D_WARN(oss.str(), "; returning the partial field");
    }
    if (stats_out)
        *stats_out = st;
}

GridSolver::GridSolver(const LayerStack &stack, double chip_w,
                       double chip_h, int grid,
                       const SolverConfig &config)
    : stack_(stack), chip_w_(chip_w), chip_h_(chip_h),
      cell_w_(chip_w / grid), cell_h_(chip_h / grid), grid_(grid),
      config_(config)
{
    M3D_ASSERT(grid >= 4, "grid too coarse");
    M3D_ASSERT(!stack_.layers.empty());
    M3D_ASSERT(!stack_.sourceLayers().empty(),
               "stack has no heat-source layer");
    M3D_ASSERT(config_.tolerance > 0.0, "tolerance must be positive");
    M3D_ASSERT(config_.max_steady_iterations >= 1);
    M3D_ASSERT(config_.max_transient_sweeps >= 1);
    const int threads = ThreadPool::resolveThreads(config_.threads);
    if (threads > 1)
        pool_ = std::make_unique<ThreadPool>(threads);
}

GridSolver::~GridSolver() = default;

ThermalField
GridSolver::solve(
    const std::vector<std::vector<double>> &power_per_source,
    SolveStats *stats) const
{
    const auto t0 = std::chrono::steady_clock::now();
    const Coefficients c = assemble(power_per_source);

    ThermalField field;
    field.grid = c.n;
    field.layers = c.nl;
    field.t_c.assign(static_cast<std::size_t>(c.nl) * c.n * c.n,
                     stack_.ambient_c);
    std::vector<double> &t = field.t_c;

    // Steady state has no capacitive diagonal term; the sweep's base
    // flow is just the injected power.
    const std::vector<double> g_total =
        totalConductance(c, std::vector<double>());

    SolveStats st;
    double max_delta = 0.0;
    for (int iter = 1; iter <= config_.max_steady_iterations; ++iter) {
        st.iterations = iter;
        max_delta = std::max(
            sweepColor(c, t, c.power, g_total, config_.omega, 0),
            sweepColor(c, t, c.power, g_total, config_.omega, 1));
        if (max_delta < config_.tolerance) {
            st.converged = true;
            break;
        }
    }
    st.residual = max_delta;
    st.seconds = elapsedSeconds(t0);
    finishSolve(st, stats, "steady-state");
    return field;
}

std::vector<GridSolver::TransientSample>
GridSolver::solveTransient(
    const std::vector<std::vector<double>> &power_per_source,
    double dt, int steps, SolveStats *stats) const
{
    M3D_ASSERT(dt > 0.0 && steps >= 1);
    const auto t0 = std::chrono::steady_clock::now();
    const Coefficients c = assemble(power_per_source);
    const int n = c.n;
    const int nl = c.nl;
    const std::size_t cells =
        static_cast<std::size_t>(nl) * n * n;

    // Backward Euler adds c_node/dt to each node's diagonal and
    // (c_node/dt) * T_prev to its flow.
    std::vector<double> diag(static_cast<std::size_t>(nl), 0.0);
    for (int l = 0; l < nl; ++l) {
        const double c_node = c.cap[static_cast<std::size_t>(l)] +
            (l + 1 == nl ? c.sink_cap_per_cell : 0.0);
        diag[static_cast<std::size_t>(l)] = c_node / dt;
    }
    // The capacitive diagonal is fixed across steps, so the stencil
    // conductance total is too.
    const std::vector<double> g_total = totalConductance(c, diag);

    std::vector<double> t(cells, stack_.ambient_c);
    // Per-step constant part of each node's flow: the capacitive
    // pull towards the previous state plus the injected power.
    // Hoisting it here (instead of copying the field and recomputing
    // it inside every sweep) does the work once per step, not once
    // per sweep.
    std::vector<double> flow_base(cells, 0.0);

    std::vector<TransientSample> out;
    out.reserve(static_cast<std::size_t>(steps));

    SolveStats st;
    int failed_steps = 0;
    for (int step = 1; step <= steps; ++step) {
        st.steps = step;
        for (int l = 0; l < nl; ++l) {
            const double d = diag[static_cast<std::size_t>(l)];
            const std::size_t base =
                static_cast<std::size_t>(l) * n * n;
            for (std::size_t i = 0;
                 i < static_cast<std::size_t>(n) * n; ++i) {
                flow_base[base + i] =
                    d * t[base + i] + c.power[base + i];
            }
        }
        bool step_converged = false;
        double max_delta = 0.0;
        for (int sweep = 0; sweep < config_.max_transient_sweeps;
             ++sweep) {
            ++st.iterations;
            max_delta =
                std::max(sweepColor(c, t, flow_base, g_total, 1.0, 0),
                         sweepColor(c, t, flow_base, g_total, 1.0, 1));
            if (max_delta < config_.tolerance) {
                step_converged = true;
                break;
            }
        }
        st.residual = std::max(st.residual, max_delta);
        if (!step_converged) {
            ++failed_steps;
            if (config_.on_non_convergence ==
                SolverConfig::OnNonConvergence::Error) {
                st.seconds = elapsedSeconds(t0);
                finishSolve(st, stats, "transient");
            }
        }
        double peak = t.front();
        for (double v : t)
            peak = std::max(peak, v);
        out.push_back({static_cast<double>(step) * dt, peak});
    }
    st.converged = failed_steps == 0;
    st.seconds = elapsedSeconds(t0);
    finishSolve(st, stats, "transient");
    return out;
}

} // namespace m3d
