/**
 * @file
 * Core floorplans for thermal analysis.  The paper bases its chip
 * floorplan on AMD Ryzen and conservatively assumes the 3D core folds
 * into 50% of the 2D footprint.
 */

#ifndef M3D_THERMAL_FLOORPLAN_HH_
#define M3D_THERMAL_FLOORPLAN_HH_

#include <string>
#include <vector>

namespace m3d {

/** One rectangular block of the floorplan (metres). */
struct FloorplanBlock
{
    std::string name;
    double x = 0.0;
    double y = 0.0;
    double w = 0.0;
    double h = 0.0;

    double area() const { return w * h; }
};

/** A core floorplan. */
struct Floorplan
{
    std::vector<FloorplanBlock> blocks;
    double width = 0.0;  ///< bounding box (m)
    double height = 0.0;

    /** Uniformly shrink to `area_factor` of the original area. */
    Floorplan scaled(double area_factor) const;

    /** Total block area. */
    double area() const;

    /**
     * Ryzen-like out-of-order core floorplan (~10.6 mm^2 at 22nm)
     * with blocks named to match PowerModel::blockPower: Fetch,
     * Decode, RAT, IQ, RF, ALU, FPU, LSU, DL1.
     */
    static Floorplan ryzenLikeCore();
};

} // namespace m3d

#endif // M3D_THERMAL_FLOORPLAN_HH_
