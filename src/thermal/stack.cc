#include "thermal/stack.hh"

#include "util/logging.hh"
#include "util/units.hh"

namespace m3d {

using namespace units;

std::vector<std::size_t>
LayerStack::sourceLayers() const
{
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < layers.size(); ++i) {
        if (layers[i].heat_source)
            out.push_back(i);
    }
    return out;
}

LayerStack
LayerStack::planar2D()
{
    // Order: away from sink -> towards sink (Table 10; the heat sink
    // attaches behind the bulk silicon through TIM and IHS).
    LayerStack s;
    s.layers = {
        {"metal", 12.0 * um, 12.0, 3.4e6, false},
        {"active-si", 2.0 * um, 120.0, 1.6e6, true},
        {"bulk-si", 100.0 * um, 120.0, 1.6e6, false},
        {"tim", 50.0 * um, 5.0, 2.0e6, false},
        {"ihs", 1000.0 * um, 400.0, 3.4e6, false},
    };
    return s;
}

LayerStack
LayerStack::m3d()
{
    LayerStack s;
    s.layers = {
        {"top-metal", 12.0 * um, 12.0, 3.4e6, false},
        {"top-si", 0.1 * um, 120.0, 1.6e6, true},
        {"ild", 0.1 * um, 1.5, 1.5e6, false},
        {"bottom-metal", 1.0 * um, 12.0, 3.4e6, false},
        {"bottom-si", 2.0 * um, 120.0, 1.6e6, true},
        {"bulk-si", 100.0 * um, 120.0, 1.6e6, false},
        {"tim", 50.0 * um, 5.0, 2.0e6, false},
        {"ihs", 1000.0 * um, 400.0, 3.4e6, false},
    };
    return s;
}

LayerStack
LayerStack::tsv3d()
{
    LayerStack s;
    s.layers = {
        {"top-metal", 12.0 * um, 12.0, 3.4e6, false},
        {"top-si", 20.0 * um, 120.0, 1.6e6, true},
        {"d2d-ild", 20.0 * um, 1.5, 1.5e6, false},
        {"bottom-metal", 12.0 * um, 12.0, 3.4e6, false},
        {"bottom-si", 2.0 * um, 120.0, 1.6e6, true},
        {"bulk-si", 100.0 * um, 120.0, 1.6e6, false},
        {"tim", 50.0 * um, 5.0, 2.0e6, false},
        {"ihs", 1000.0 * um, 400.0, 3.4e6, false},
    };
    return s;
}

LayerStack
LayerStack::of(Integration integration)
{
    switch (integration) {
      case Integration::Planar2D: return planar2D();
      case Integration::M3D: return m3d();
      case Integration::Tsv3D: return tsv3d();
    }
    M3D_PANIC("unknown integration style");
}

} // namespace m3d
