#include "thermal/floorplan.hh"

#include <cmath>

#include "util/logging.hh"
#include "util/units.hh"

namespace m3d {

using namespace units;

Floorplan
Floorplan::scaled(double area_factor) const
{
    M3D_ASSERT(area_factor > 0.0);
    const double lin = std::sqrt(area_factor);
    Floorplan out = *this;
    out.width *= lin;
    out.height *= lin;
    for (FloorplanBlock &b : out.blocks) {
        b.x *= lin;
        b.y *= lin;
        b.w *= lin;
        b.h *= lin;
    }
    return out;
}

double
Floorplan::area() const
{
    double a = 0.0;
    for (const FloorplanBlock &b : blocks)
        a += b.area();
    return a;
}

Floorplan
Floorplan::ryzenLikeCore()
{
    // 3.26 x 3.26 mm core, blocks laid out in three rows:
    //   frontend (fetch/decode/rename), execution, memory.
    Floorplan fp;
    fp.width = 3.26 * mm;
    fp.height = 3.26 * mm;

    const double w = fp.width;
    const double row1 = 1.10 * mm; // frontend height
    const double row2 = 1.16 * mm; // execution height
    const double row3 = 1.00 * mm; // memory height

    // Row 1 (y = 0): Fetch | Decode | RAT.
    fp.blocks.push_back({"Fetch", 0.0, 0.0, 0.52 * w, row1});
    fp.blocks.push_back({"Decode", 0.52 * w, 0.0, 0.33 * w, row1});
    fp.blocks.push_back({"RAT", 0.85 * w, 0.0, 0.15 * w, row1});

    // Row 2: IQ | RF | ALU | FPU.
    fp.blocks.push_back({"IQ", 0.0, row1, 0.16 * w, row2});
    fp.blocks.push_back({"RF", 0.16 * w, row1, 0.18 * w, row2});
    fp.blocks.push_back({"ALU", 0.34 * w, row1, 0.26 * w, row2});
    fp.blocks.push_back({"FPU", 0.60 * w, row1, 0.40 * w, row2});

    // Row 3: LSU | DL1.
    fp.blocks.push_back({"LSU", 0.0, row1 + row2, 0.45 * w, row3});
    fp.blocks.push_back({"DL1", 0.45 * w, row1 + row2, 0.55 * w, row3});
    return fp;
}

} // namespace m3d
