/**
 * @file
 * Power-thermal coupling: leakage grows exponentially with
 * temperature (roughly doubling every ~22 C), and the extra leakage
 * heats the die further.  This solver iterates the power and thermal
 * models to their fixed point, which compounds TSV3D's thermal
 * disadvantage - hot dies leak more, which makes them hotter.
 */

#ifndef M3D_THERMAL_COUPLING_HH_
#define M3D_THERMAL_COUPLING_HH_

#include <map>
#include <string>

#include "core/design.hh"
#include "thermal/thermal_model.hh"

namespace m3d {

/** Result of the coupled fixed-point solve. */
struct CoupledResult
{
    double peak_c = 0.0;            ///< converged peak temperature
    double peak_c_uncoupled = 0.0;  ///< peak with 45 C leakage
    double leakage_factor = 1.0;    ///< leakage vs the 45 C reference
    int iterations = 0;
    bool converged = false;
    /**
     * Grid-solver telemetry aggregated over every thermal solve of
     * the fixed-point loop (iterations and seconds summed, residual
     * the worst seen, converged iff every solve converged).
     */
    SolveStats solver;
};

/** Leakage multiplier at temperature `t_c` vs the 45 C reference. */
double leakageTemperatureFactor(double t_c);

/**
 * Iterate power -> temperature -> leakage -> power to a fixed point.
 *
 * @param design The core design (selects the layer stack/floorplan).
 * @param block_power Block powers at the 45 C reference (from
 *        PowerModel::blockPower).
 * @param leakage_fraction Fraction of each block's power that is
 *        leakage (and thus temperature-dependent).
 * @param grid Thermal grid resolution.
 * @param config Grid-solver policy for the inner thermal solves.
 */
CoupledResult
solveCoupled(const CoreDesign &design,
             const std::map<std::string, double> &block_power,
             double leakage_fraction=0.20, int grid=16,
             const SolverConfig &config=SolverConfig());

} // namespace m3d

#endif // M3D_THERMAL_COUPLING_HH_
