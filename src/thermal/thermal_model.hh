/**
 * @file
 * End-to-end thermal evaluation of a core design: maps the power
 * model's block powers onto the (possibly folded) floorplan, builds
 * the design's layer stack, and solves for the peak temperature -
 * the Figure 8 experiment.
 */

#ifndef M3D_THERMAL_THERMAL_MODEL_HH_
#define M3D_THERMAL_THERMAL_MODEL_HH_

#include <map>
#include <string>

#include "core/design.hh"
#include "thermal/floorplan.hh"
#include "thermal/solver.hh"

namespace m3d {

/** Peak temperatures of one design under one workload. */
struct ThermalResult
{
    double peak_c = 0.0;          ///< hottest point anywhere
    std::string hottest_block;    ///< which block holds it
    std::map<std::string, double> block_peak_c;
    /** Telemetry of the underlying grid solve. */
    SolveStats solver;
};

/** Thermal evaluation harness. */
class ThermalModel
{
  public:
    /**
     * @param design The core design (integration style, footprint).
     * @param grid Solver resolution per side.
     * @param config Solver convergence/execution policy (threads,
     *        tolerance, non-convergence handling).
     */
    explicit ThermalModel(const CoreDesign &design, int grid=32,
                          const SolverConfig &config=SolverConfig());

    /**
     * Solve for a block power map (from PowerModel::blockPower).
     * "Clock" power is spread uniformly over the whole core.
     */
    ThermalResult solve(const std::map<std::string, double> &
                            block_power) const;

    /**
     * Solve several block power maps of this design in one pass.
     * Result `k` is bit-identical to `solve(block_powers[k])`; the
     * maps ride GridSolver::solveMany, which interleaves the
     * independent per-map iterations through one sweep loop instead
     * of solving them back to back.  The design-space search uses
     * this for its per-design (one map per application) solves.
     */
    std::vector<ThermalResult>
    solveMany(const std::vector<std::map<std::string, double>> &
                  block_powers) const;

    const Floorplan &floorplan() const { return floorplan_; }
    const SolverConfig &config() const { return config_; }

  private:
    /** Block powers onto per-source-layer grid power maps. */
    std::vector<std::vector<double>>
    rasterize(const std::map<std::string, double> &block_power) const;
    /** Per-block peak extraction of one solved field. */
    ThermalResult summarize(const ThermalField &field) const;

    CoreDesign design_;
    Floorplan floorplan_;
    LayerStack stack_;
    int grid_;
    SolverConfig config_;
};

} // namespace m3d

#endif // M3D_THERMAL_THERMAL_MODEL_HH_
