/**
 * @file
 * Steady-state and transient 3D thermal grid solver (HotSpot-style
 * grid model).
 *
 * The chip footprint is discretized into an NxN grid; every material
 * layer of the stack contributes one slab of nodes.  Vertical and
 * lateral conductances follow from layer thickness and conductivity;
 * the heat sink is a lumped per-cell conductance to ambient behind
 * the IHS.  Power is injected at the active layers.
 *
 * The steady-state system is solved with red-black successive
 * over-relaxation; transient stepping is backward Euler with
 * red-black Gauss-Seidel sweeps per step.  Red-black ordering makes
 * every cell of one color depend only on cells of the other color
 * (the 6-neighbor stencil always flips parity), so the per-color
 * sweeps run in parallel across row chunks with results that are
 * bit-identical at any thread count.
 *
 * Every solve reports a SolveStats and, by default, refuses to
 * return a field that did not converge: a silent best-effort answer
 * poisons every downstream thermal metric (the Figure 8 claims rest
 * on this solver).  Callers that genuinely want a partial field can
 * opt into SolverConfig::OnNonConvergence::Warn.
 */

#ifndef M3D_THERMAL_SOLVER_HH_
#define M3D_THERMAL_SOLVER_HH_

#include <memory>
#include <stdexcept>
#include <vector>

#include "thermal/stack.hh"

namespace m3d {

class ThreadPool;

/**
 * Convergence and execution policy of a GridSolver.  One config
 * drives both the steady and the transient path: the tolerance is
 * the maximum temperature change (deg C) any node may make in one
 * full sweep for the sweep loop to be declared converged.
 *
 * The 1e-5 deg C default is ~2e-7 relative on a 50-100 C field -
 * orders of magnitude below the model's physical fidelity - and is
 * the criterion the golden thermal metrics were blessed under.
 * Tighten it (e.g. 1e-9) when validating against analytic solutions.
 */
struct SolverConfig
{
    /** Max per-node temperature change per sweep (deg C). */
    double tolerance = 1e-5;

    /** Sweep cap for one steady-state solve. */
    int max_steady_iterations = 20000;

    /**
     * Sweep cap per transient step.  The M3D stack's sub-um layers
     * have almost no thermal mass, so its backward-Euler systems are
     * nearly as stiff as the steady one and need hundreds of sweeps
     * (the old hard cap of 60 silently truncated exactly those
     * solves).
     */
    int max_transient_sweeps = 2000;

    /**
     * Over-relaxation factor of the steady SOR sweeps.  The stencil
     * matrix is symmetric positive definite, so red-black SOR
     * converges for any omega in (0, 2) (Ostrowski-Reich) - the knob
     * only trades iteration count.  The deep M3D stacks dominate the
     * search's thermal cost and their extreme vertical/lateral
     * conductance contrast puts the Jacobi spectral radius near 1:
     * measured on the factory stacks, 1.95 converges them in ~4x
     * fewer sweeps than the old 1.8 default (~220 vs ~900 per field
     * at grids 16-32), while the shallow 2D/TSV stacks - near-optimal
     * at 1.8 - give back at most ~170 extra sweeps on solves that
     * finish in a couple of ms.  Every omega lands within `tolerance`
     * of the same fixed point; the golden thermal metrics are blessed
     * at 1.95.
     */
    double omega = 1.95;

    /**
     * Worker threads for the per-color sweeps.  1 (default) runs
     * inline and serial; 0 or negative means all hardware threads
     * (ThreadPool::resolveThreads).  Results are bit-identical at
     * any thread count.
     */
    int threads = 1;

    /**
     * Grid rows per parallel task; 0 chunks the rows evenly across
     * the pool (the work per row is uniform).  Purely a scheduling
     * knob - it never affects results.
     */
    int rows_per_task = 0;

    /**
     * Sweep formulation.  The default (false) multiplies each cell's
     * flow by a per-cell *reciprocal* total conductance precomputed
     * once per solve, with the flow terms accumulated through fused
     * multiply-adds - the per-cell division (the sweep's former
     * throughput bound) disappears from the inner loop.  `true`
     * selects the legacy formulation: divide by the conductance,
     * accumulate with separate multiply/add roundings.  Both forms
     * are bit-identical across thread counts and SIMD widths *within*
     * themselves, but differ from each other in the last ulps; the
     * golden thermal metrics are blessed under the reciprocal form.
     * The division form is kept for A/B drift and speed measurement
     * (bench/perf_thermal) - see EXPERIMENTS.md "Golden metrics".
     */
    bool division_sweep = false;

    /**
     * Force the scalar sweep kernels even where the AVX-512 packed
     * path is available - a bit-identity probe for tests and
     * benches, like BatchReplayOptions::force_scalar.
     */
    bool force_scalar = false;

    /** What a non-converged solve does. */
    enum class OnNonConvergence {
        Error, ///< throw NonConvergenceError (default)
        Warn,  ///< M3D_WARN and return the partial field
    };
    OnNonConvergence on_non_convergence = OnNonConvergence::Error;
};

/** Telemetry of one solve (steady or transient). */
struct SolveStats
{
    /** Full red-black sweeps executed (summed over steps). */
    int iterations = 0;
    /** Transient steps taken (0 for a steady solve). */
    int steps = 0;
    /**
     * Final residual: the worst per-sweep max temperature delta at
     * loop exit (for transient solves, the worst final delta of any
     * step).  Converged solves have residual < tolerance.
     */
    double residual = 0.0;
    bool converged = false;
    /** Wall time of the solve (seconds). */
    double seconds = 0.0;
};

/** Thrown when a solve exhausts its sweep budget (Error policy). */
class NonConvergenceError : public std::runtime_error
{
  public:
    NonConvergenceError(const std::string &what, SolveStats stats)
        : std::runtime_error(what), stats_(stats) {}

    /** Telemetry of the failed solve. */
    const SolveStats &stats() const { return stats_; }

  private:
    SolveStats stats_;
};

/** Temperature field of one solve. */
struct ThermalField
{
    int grid = 0;            ///< N (cells per side)
    int layers = 0;
    std::vector<double> t_c; ///< layer-major [layer][y][x], deg C

    double at(int layer, int y, int x) const;
    double peak() const;
    /** Peak over a rectangle (fractions of the chip side) of a layer. */
    double peakIn(int layer, double x0, double y0, double x1,
                  double y1) const;
};

/** The grid solver. */
class GridSolver
{
  public:
    /**
     * @param stack Vertical material stack.
     * @param chip_w Chip width (m).
     * @param chip_h Chip height (m).
     * @param grid Cells per side (default 32).
     * @param config Convergence/execution policy.
     */
    GridSolver(const LayerStack &stack, double chip_w, double chip_h,
               int grid=32, const SolverConfig &config=SolverConfig());

    ~GridSolver();
    GridSolver(const GridSolver &) = delete;
    GridSolver &operator=(const GridSolver &) = delete;

    /**
     * Solve for a power map.
     *
     * @param power_per_source One NxN power map (W per cell) for each
     *        heat-source layer of the stack, in stack order.
     * @param stats Optional telemetry out-param.
     * @return Temperature field for all layers.
     * @throws NonConvergenceError under the default policy when the
     *         sweep budget is exhausted.
     */
    ThermalField
    solve(const std::vector<std::vector<double>> &power_per_source,
          SolveStats *stats=nullptr) const;

    /**
     * Solve several power maps over the same stack in one pass.
     * Element `k` of the result (and of `*stats`, when given) is
     * bit-identical to `solve(power_maps[k])` - the fields share
     * nothing but the (power-independent) conductance stencil, and
     * each one stops sweeping at exactly the iteration its solo solve
     * would.  Batching exists because the per-cell update is a serial
     * dependence chain (six ordered flow additions feeding one
     * division): interleaving K independent fields through one sweep
     * loop keeps K chains in flight and amortizes every stencil
     * constant, which one field alone cannot.
     *
     * Under the default policy the first non-converged field (in
     * `power_maps` order) throws, like the equivalent solve()
     * sequence.
     */
    std::vector<ThermalField>
    solveMany(const std::vector<std::vector<std::vector<double>>> &
                  power_maps,
              std::vector<SolveStats> *stats=nullptr) const;

    /** One transient sample. */
    struct TransientSample
    {
        double t_seconds = 0.0;
        double peak_c = 0.0;
    };

    /**
     * Transient solve with implicit (backward-Euler) time stepping
     * from a uniform ambient start: apply the power step at t = 0 and
     * record the peak temperature at each step.  Useful for thermal
     * time constants and turbo-style transient questions.
     *
     * @param power_per_source As for solve().
     * @param dt Time step (s); implicit stepping is unconditionally
     *        stable, so ~1e-4 s steps resolve package-level
     *        transients.
     * @param steps Number of steps to take.
     * @param stats Optional telemetry out-param (aggregated over all
     *        steps).
     * @throws NonConvergenceError under the default policy when any
     *         step exhausts its sweep budget.
     */
    std::vector<TransientSample>
    solveTransient(const std::vector<std::vector<double>> &
                       power_per_source,
                   double dt, int steps,
                   SolveStats *stats=nullptr) const;

    int grid() const { return grid_; }
    double cellArea() const { return cell_w_ * cell_h_; }
    const SolverConfig &config() const { return config_; }

  private:
    struct Coefficients;

    Coefficients assemble(
        const std::vector<std::vector<double>> &power_per_source)
        const;
    /**
     * Per-cell total conductance (stencil diagonal).  It never
     * depends on temperature, so each solve computes it once - with
     * the exact accumulation order the sweep historically used -
     * instead of re-summing it for every cell of every sweep.
     */
    std::vector<double> totalConductance(
        const Coefficients &c, const std::vector<double> &diag) const;
    /**
     * The per-cell stencil factor the sweeps consume: the reciprocal
     * of totalConductance() by default (the sweep multiplies), or
     * the conductance itself under SolverConfig::division_sweep (the
     * sweep divides).
     */
    std::vector<double> stencilFactor(
        const Coefficients &c, const std::vector<double> &diag) const;
    /**
     * One red-black half sweep over every cell of `color`; returns
     * the max temperature delta.  Runs on the pool when one exists.
     * `g_stencil` is stencilFactor()'s output.
     */
    double sweepColor(const Coefficients &c, std::vector<double> &t,
                      const std::vector<double> &flow_base,
                      const std::vector<double> &g_stencil,
                      double omega, int color) const;
    /**
     * Steady-state iteration loop on an AVX-512 color-packed copy of
     * the field; bit-identical to the sweepColor loop (same per-cell
     * arithmetic, same iteration count, same residual).  Defined for
     * x86-64 builds and called only when the runtime dispatch
     * (util/simd.hh) selects the vector path and the grid side is
     * even.  Fills `t` (standard layout) and the convergence fields
     * of `st`.
     */
    void solvePackedSteady(const Coefficients &c,
                           const std::vector<double> &g_stencil,
                           std::vector<double> &t,
                           SolveStats &st) const;
    /**
     * Multi-field companion of solvePackedSteady: runs every field's
     * steady iteration concurrently through one packed sweep loop,
     * freezing each field at its own convergence iteration.  Same
     * availability rules as solvePackedSteady.
     */
    void solveManyPackedSteady(const std::vector<Coefficients> &cs,
                               const std::vector<double> &g_stencil,
                               const std::vector<std::vector<double> *>
                                   &ts,
                               std::vector<SolveStats> &sts) const;
    void finishSolve(SolveStats &st, SolveStats *stats_out,
                     const char *what) const;

    LayerStack stack_;
    double chip_w_;
    double chip_h_;
    double cell_w_;
    double cell_h_;
    int grid_;
    SolverConfig config_;
    /** Workers for the per-color sweeps; null when running serial. */
    std::unique_ptr<ThreadPool> pool_;
};

} // namespace m3d

#endif // M3D_THERMAL_SOLVER_HH_
