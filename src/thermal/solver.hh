/**
 * @file
 * Steady-state 3D thermal grid solver (HotSpot-style grid model).
 *
 * The chip footprint is discretized into an NxN grid; every material
 * layer of the stack contributes one slab of nodes.  Vertical and
 * lateral conductances follow from layer thickness and conductivity;
 * the heat sink is a lumped per-cell conductance to ambient behind
 * the IHS.  Power is injected at the active layers.  The linear
 * system is solved with successive over-relaxation.
 */

#ifndef M3D_THERMAL_SOLVER_HH_
#define M3D_THERMAL_SOLVER_HH_

#include <vector>

#include "thermal/stack.hh"

namespace m3d {

/** Temperature field of one solve. */
struct ThermalField
{
    int grid = 0;            ///< N (cells per side)
    int layers = 0;
    std::vector<double> t_c; ///< layer-major [layer][y][x], deg C

    double at(int layer, int y, int x) const;
    double peak() const;
    /** Peak over a rectangle (fractions of the chip side) of a layer. */
    double peakIn(int layer, double x0, double y0, double x1,
                  double y1) const;
};

/** The grid solver. */
class GridSolver
{
  public:
    /**
     * @param stack Vertical material stack.
     * @param chip_w Chip width (m).
     * @param chip_h Chip height (m).
     * @param grid Cells per side (default 32).
     */
    GridSolver(const LayerStack &stack, double chip_w, double chip_h,
               int grid=32);

    /**
     * Solve for a power map.
     *
     * @param power_per_source One NxN power map (W per cell) for each
     *        heat-source layer of the stack, in stack order.
     * @return Temperature field for all layers.
     */
    ThermalField
    solve(const std::vector<std::vector<double>> &power_per_source)
        const;

    /** One transient sample. */
    struct TransientSample
    {
        double t_seconds = 0.0;
        double peak_c = 0.0;
    };

    /**
     * Transient solve with implicit (backward-Euler) time stepping
     * from a uniform ambient start: apply the power step at t = 0 and
     * record the peak temperature at each step.  Useful for thermal
     * time constants and turbo-style transient questions.
     *
     * @param power_per_source As for solve().
     * @param dt Time step (s); implicit stepping is unconditionally
     *        stable, so ~1e-4 s steps resolve package-level
     *        transients.
     * @param steps Number of steps to take.
     */
    std::vector<TransientSample>
    solveTransient(const std::vector<std::vector<double>> &
                       power_per_source,
                   double dt, int steps) const;

    int grid() const { return grid_; }
    double cellArea() const { return cell_w_ * cell_h_; }

  private:
    LayerStack stack_;
    double chip_w_;
    double chip_h_;
    double cell_w_;
    double cell_h_;
    int grid_;
};

} // namespace m3d

#endif // M3D_THERMAL_SOLVER_HH_
