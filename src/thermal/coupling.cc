#include "thermal/coupling.hh"

#include <cmath>

#include "util/logging.hh"

namespace m3d {

namespace {

constexpr double kReferenceC = 45.0;
/** Leakage doubles roughly every this many degrees. */
constexpr double kDoublingC = 22.0;
constexpr int kMaxIterations = 120;

} // namespace

double
leakageTemperatureFactor(double t_c)
{
    return std::exp2((t_c - kReferenceC) / kDoublingC);
}

CoupledResult
solveCoupled(const CoreDesign &design,
             const std::map<std::string, double> &block_power,
             double leakage_fraction, int grid)
{
    M3D_ASSERT(leakage_fraction >= 0.0 && leakage_fraction < 1.0);
    ThermalModel tm(design, grid);

    CoupledResult out;
    out.peak_c_uncoupled = tm.solve(block_power).peak_c;

    // Seed the loop from the uncoupled solution's temperature.
    double factor = leakageTemperatureFactor(out.peak_c_uncoupled);
    double peak = out.peak_c_uncoupled;
    for (int iter = 1; iter <= kMaxIterations; ++iter) {
        out.iterations = iter;
        // Scale each block's leakage share by the temperature factor.
        std::map<std::string, double> scaled;
        for (const auto &[name, watts] : block_power) {
            scaled[name] = watts * ((1.0 - leakage_fraction) +
                                    leakage_fraction * factor);
        }
        const double new_peak = tm.solve(scaled).peak_c;
        // Damped update: near thermal runaway the undamped fixed-
        // point iteration oscillates or crawls.
        const double new_factor =
            0.5 * factor +
            0.5 * leakageTemperatureFactor(new_peak);
        const bool settled = std::abs(new_peak - peak) < 0.02;
        peak = new_peak;
        factor = new_factor;
        if (settled) {
            out.converged = true;
            break;
        }
        if (factor > 32.0) {
            // Genuine runaway: leakage has grown past any plausible
            // operating point; report the last state unconverged.
            break;
        }
    }
    out.peak_c = peak;
    out.leakage_factor = factor;
    return out;
}

} // namespace m3d
