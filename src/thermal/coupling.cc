#include "thermal/coupling.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace m3d {

namespace {

constexpr double kReferenceC = 45.0;
/** Leakage doubles roughly every this many degrees. */
constexpr double kDoublingC = 22.0;
constexpr int kMaxIterations = 120;

} // namespace

double
leakageTemperatureFactor(double t_c)
{
    return std::exp2((t_c - kReferenceC) / kDoublingC);
}

namespace {

/** Fold one solve's telemetry into the loop-wide aggregate. */
void
accumulate(SolveStats *total, const SolveStats &one, bool first)
{
    total->iterations += one.iterations;
    total->steps += one.steps;
    total->residual = std::max(total->residual, one.residual);
    total->converged = (first || total->converged) && one.converged;
    total->seconds += one.seconds;
}

} // namespace

CoupledResult
solveCoupled(const CoreDesign &design,
             const std::map<std::string, double> &block_power,
             double leakage_fraction, int grid,
             const SolverConfig &config)
{
    M3D_ASSERT(leakage_fraction >= 0.0 && leakage_fraction < 1.0);
    ThermalModel tm(design, grid, config);

    CoupledResult out;
    const ThermalResult uncoupled = tm.solve(block_power);
    out.peak_c_uncoupled = uncoupled.peak_c;
    accumulate(&out.solver, uncoupled.solver, /*first=*/true);

    // Seed the loop from the uncoupled solution's temperature.
    double factor = leakageTemperatureFactor(out.peak_c_uncoupled);
    double peak = out.peak_c_uncoupled;
    for (int iter = 1; iter <= kMaxIterations; ++iter) {
        out.iterations = iter;
        // Scale each block's leakage share by the temperature factor.
        std::map<std::string, double> scaled;
        for (const auto &[name, watts] : block_power) {
            scaled[name] = watts * ((1.0 - leakage_fraction) +
                                    leakage_fraction * factor);
        }
        const ThermalResult coupled = tm.solve(scaled);
        accumulate(&out.solver, coupled.solver, /*first=*/false);
        const double new_peak = coupled.peak_c;
        // Damped update: near thermal runaway the undamped fixed-
        // point iteration oscillates or crawls.
        const double new_factor =
            0.5 * factor +
            0.5 * leakageTemperatureFactor(new_peak);
        const bool settled = std::abs(new_peak - peak) < 0.02;
        peak = new_peak;
        factor = new_factor;
        if (settled) {
            out.converged = true;
            break;
        }
        if (factor > 32.0) {
            // Genuine runaway: leakage has grown past any plausible
            // operating point; report the last state unconverged.
            break;
        }
    }
    out.peak_c = peak;
    out.leakage_factor = factor;
    return out;
}

} // namespace m3d
