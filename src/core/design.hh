/**
 * @file
 * Full core/multicore design configurations (Table 11).
 *
 * A CoreDesign bundles everything the performance, power, and thermal
 * models need: the technology, the derived clock, microarchitectural
 * widths, the per-structure partition results, and the 3D-specific
 * IPC effects (shorter load-to-use and branch-misprediction paths,
 * shared L2s and router stops).
 */

#ifndef M3D_CORE_DESIGN_HH_
#define M3D_CORE_DESIGN_HH_

#include <map>
#include <string>
#include <vector>

#include "core/frequency.hh"
#include "logic3d/stage.hh"
#include "sram/explorer.hh"
#include "tech/technology.hh"

namespace m3d {

/** One evaluated processor design point. */
struct CoreDesign
{
    std::string name;
    Technology tech;
    double frequency = kBaseFrequency; ///< core clock (Hz)
    double vdd = 0.8;                  ///< supply voltage (V)

    // Microarchitecture (Table 9 defaults).
    int dispatch_width = 4;
    int issue_width = 6;
    int commit_width = 4;
    int rob_entries = 192;
    int iq_entries = 84;
    int lq_entries = 72;
    int sq_entries = 56;

    // Multicore organization.
    int num_cores = 4;
    bool shared_l2_pairs = false; ///< Figure 4: core pairs share L2s

    // Pipeline path latencies (cycles).  3D designs shave 1 cycle off
    // load-to-use and 2 cycles off misprediction (Section 6).
    int load_to_use = 4;
    int mispredict_penalty = 14;

    // Extra decode latency for uncommon complex instructions when the
    // complex decoder lives in the slow top layer (Section 4.1.2).
    int complex_decode_extra = 0;

    /** Per-structure partition outcome, keyed by structure name. */
    std::map<std::string, PartitionResult> partitions;

    /** Logic-stage gains for the execute cluster (4 ALUs). */
    LogicStageGains execute_gains;

    /** Clock-tree switching-power factor vs 2D (0.75 for 3D). */
    double clock_tree_switch_factor = 1.0;

    /** Core footprint vs the 2D core (0.5-0.6 for 3D). */
    double footprint_factor = 1.0;

    /** True for any stacked (M3D or TSV3D) design. */
    bool stacked() const
    {
        return tech.integration != Integration::Planar2D;
    }

    /** Access-energy factor vs 2D for a structure (1.0 if unknown). */
    double structureEnergyFactor(const std::string &structure) const;

    /** Access-latency factor vs 2D for a structure (1.0 if unknown). */
    double structureLatencyFactor(const std::string &structure) const;
};

/** Builds the configurations evaluated in the paper (Table 11). */
class DesignFactory
{
  public:
    /** Runs the three partition sweeps (iso/het/TSV) on the spot. */
    DesignFactory();

    /**
     * Construct from precomputed partition sweeps, each in
     * CoreStructures::all() order - the hook the evaluation engine
     * uses to route the sweeps through its memo/persistent cache
     * (engine::designFactory) instead of recomputing them here.
     */
    DesignFactory(std::vector<PartitionResult> iso_results,
                  std::vector<PartitionResult> het_results,
                  std::vector<PartitionResult> tsv_results);

    // Single-core designs.
    CoreDesign base() const;         ///< 2D, 3.3 GHz
    CoreDesign tsv3d() const;        ///< TSV3D, 3.3 GHz
    CoreDesign m3dIso() const;       ///< iso-layer M3D, conservative f
    CoreDesign m3dHetNaive() const;  ///< hetero, no mitigation: iso x0.91
    CoreDesign m3dHet() const;       ///< hetero + our partitioning
    CoreDesign m3dHetAgg() const;    ///< hetero, aggressive f policy

    // Multicore designs (4 cores unless stated).
    CoreDesign baseMulti() const;
    CoreDesign tsv3dMulti() const;
    CoreDesign m3dHetMulti() const;  ///< shared L2 pairs
    CoreDesign m3dHetW() const;      ///< issue width 8 @ 3.3 GHz
    CoreDesign m3dHet2x() const;     ///< 8 cores @ 3.3 GHz, 0.75 V

    /** All single-core designs in Figure 6 order. */
    std::vector<CoreDesign> singleCoreDesigns() const;

    /** All multicore designs in Figure 9 order. */
    std::vector<CoreDesign> multicoreDesigns() const;

    /** Partition results backing a design's frequency derivation. */
    const std::vector<PartitionResult> &isoResults() const
    {
        return iso_results_;
    }
    const std::vector<PartitionResult> &hetResults() const
    {
        return het_results_;
    }
    const std::vector<PartitionResult> &tsvResults() const
    {
        return tsv_results_;
    }

  private:
    CoreDesign stackedCommon(const Technology &tech,
                             const std::vector<PartitionResult> &results,
                             FrequencyPolicy policy,
                             const std::string &name) const;

    std::vector<PartitionResult> iso_results_;
    std::vector<PartitionResult> het_results_;
    std::vector<PartitionResult> tsv_results_;
    LogicStageGains iso_exec_gains_;
    LogicStageGains het_exec_gains_;
};

} // namespace m3d

#endif // M3D_CORE_DESIGN_HH_
