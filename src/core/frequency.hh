/**
 * @file
 * Core frequency derivation (Section 6.1).
 *
 * The 2D baseline's cycle time is set by the register-file access
 * (measured with CACTI; 3.3 GHz in the paper).  A 3D design's
 * frequency follows from the least-improved timing-critical array:
 *   f = f_base / (1 - min latency reduction).
 *
 * Two policies:
 *  - Conservative: every array in Table 6/8 is assumed cycle-critical
 *    (this is what M3D-Iso and M3D-Het use).
 *  - Aggressive: only the classically frequency-critical structures
 *    (issue queue, register file, ALU+bypass) limit the clock
 *    (M3D-IsoAgg / M3D-HetAgg).
 */

#ifndef M3D_CORE_FREQUENCY_HH_
#define M3D_CORE_FREQUENCY_HH_

#include <functional>
#include <string>
#include <vector>

#include "sram/explorer.hh"

namespace m3d {

/** Which structures are allowed to limit the clock. */
enum class FrequencyPolicy {
    Conservative, ///< all arrays are single-cycle critical
    Aggressive,   ///< only IQ / RF / bypass limit the cycle
};

/** Outcome of a frequency derivation. */
struct FrequencyDerivation
{
    double base_frequency = 0.0;     ///< 2D reference clock (Hz)
    double frequency = 0.0;          ///< derived clock (Hz)
    double min_reduction = 0.0;      ///< limiting latency reduction
    std::string limiting_structure;  ///< name of the limiting array
};

/** The paper's 2D baseline clock. */
constexpr double kBaseFrequency = 3.3e9;

/**
 * Derive the 3D core frequency from per-structure partition results.
 *
 * @param results Best-partition results for the core's arrays.
 * @param policy Which structures may limit the clock.
 * @param base_frequency 2D reference clock (Hz).
 */
FrequencyDerivation
deriveFrequency(const std::vector<PartitionResult> &results,
                FrequencyPolicy policy,
                double base_frequency=kBaseFrequency);

/**
 * Per-structure multiplier on the *stacked* access latency - the hook
 * the variation layer uses to model per-die process spread.  Must
 * return a positive factor; 1.0 leaves the structure at its nominal
 * delay.
 */
using DelayDerate = std::function<double(const PartitionResult &)>;

/**
 * deriveFrequency with each structure's stacked access latency scaled
 * by `derate(r)` before the minimum-reduction scan.  A derate that
 * returns exactly 1.0 for a structure reproduces deriveFrequency's
 * arithmetic for it bit-for-bit (the nominal reduction is reused
 * rather than recomputed), so an all-unity derate yields the same
 * FrequencyDerivation as the underived path.
 */
FrequencyDerivation
deriveFrequencyDerated(const std::vector<PartitionResult> &results,
                       FrequencyPolicy policy,
                       const DelayDerate &derate,
                       double base_frequency=kBaseFrequency);

} // namespace m3d

#endif // M3D_CORE_FREQUENCY_HH_
