#include "core/frequency.hh"

#include <algorithm>

#include "util/logging.hh"

namespace m3d {

namespace {

/** Shared minimum-reduction scan; `reduction` prices one structure. */
FrequencyDerivation
scanFrequency(const std::vector<PartitionResult> &results,
              FrequencyPolicy policy, double base_frequency,
              const std::function<double(const PartitionResult &)>
                  &reduction)
{
    M3D_ASSERT(!results.empty());
    const std::vector<std::string> aggressive_set = {"IQ", "RF"};

    FrequencyDerivation out;
    out.base_frequency = base_frequency;

    bool found = false;
    for (const PartitionResult &r : results) {
        if (policy == FrequencyPolicy::Aggressive) {
            const bool critical =
                std::find(aggressive_set.begin(), aggressive_set.end(),
                          r.cfg.name) != aggressive_set.end();
            if (!critical)
                continue;
        }
        const double red = reduction(r);
        if (!found || red < out.min_reduction) {
            out.min_reduction = red;
            out.limiting_structure = r.cfg.name;
            found = true;
        }
    }
    M3D_ASSERT(found, "no structure eligible to set the frequency");

    // A negative "reduction" (TSV3D can slow some arrays down) must
    // not be turned into an overclock; the designer would simply keep
    // the 2D floorplan for that structure and the 2D frequency.
    const double effective = std::max(out.min_reduction, 0.0);
    out.frequency = base_frequency / (1.0 - effective);
    return out;
}

} // namespace

FrequencyDerivation
deriveFrequency(const std::vector<PartitionResult> &results,
                FrequencyPolicy policy, double base_frequency)
{
    return scanFrequency(results, policy, base_frequency,
                         [](const PartitionResult &r) {
                             return r.latencyReduction();
                         });
}

FrequencyDerivation
deriveFrequencyDerated(const std::vector<PartitionResult> &results,
                       FrequencyPolicy policy,
                       const DelayDerate &derate,
                       double base_frequency)
{
    M3D_ASSERT(static_cast<bool>(derate),
               "deriveFrequencyDerated needs a derate callback");
    return scanFrequency(
        results, policy, base_frequency,
        [&derate](const PartitionResult &r) {
            const double factor = derate(r);
            M3D_ASSERT(factor > 0.0,
                       "delay derate must be positive");
            // factor == 1.0 must reproduce the nominal arithmetic
            // exactly: (planar - stacked) / planar and
            // 1 - stacked/planar can differ in the last ulp.
            if (factor == 1.0)
                return r.latencyReduction();
            return 1.0 - (r.stacked.access_latency * factor) /
                             r.planar.access_latency;
        });
}

} // namespace m3d
