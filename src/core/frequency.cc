#include "core/frequency.hh"

#include <algorithm>

#include "util/logging.hh"

namespace m3d {

FrequencyDerivation
deriveFrequency(const std::vector<PartitionResult> &results,
                FrequencyPolicy policy, double base_frequency)
{
    M3D_ASSERT(!results.empty());
    const std::vector<std::string> aggressive_set = {"IQ", "RF"};

    FrequencyDerivation out;
    out.base_frequency = base_frequency;

    bool found = false;
    for (const PartitionResult &r : results) {
        if (policy == FrequencyPolicy::Aggressive) {
            const bool critical =
                std::find(aggressive_set.begin(), aggressive_set.end(),
                          r.cfg.name) != aggressive_set.end();
            if (!critical)
                continue;
        }
        const double red = r.latencyReduction();
        if (!found || red < out.min_reduction) {
            out.min_reduction = red;
            out.limiting_structure = r.cfg.name;
            found = true;
        }
    }
    M3D_ASSERT(found, "no structure eligible to set the frequency");

    // A negative "reduction" (TSV3D can slow some arrays down) must
    // not be turned into an overclock; the designer would simply keep
    // the 2D floorplan for that structure and the 2D frequency.
    const double effective = std::max(out.min_reduction, 0.0);
    out.frequency = base_frequency / (1.0 - effective);
    return out;
}

} // namespace m3d
