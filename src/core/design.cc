#include "core/design.hh"

#include "util/logging.hh"

namespace m3d {

namespace {

// Shi et al. [45] measured a 9% frequency loss when an AES block was
// naively partitioned onto a slow top layer; M3D-HetNaive inherits it.
constexpr double kNaiveSlowdown = 0.09;

// Maximum extra undervolting at constant frequency enabled by the
// shorter 3D critical paths (Section 6.1: 50 mV, to 0.75 V).
constexpr double kIsoPowerVdd = 0.75;

std::map<std::string, PartitionResult>
toMap(const std::vector<PartitionResult> &results)
{
    std::map<std::string, PartitionResult> m;
    for (const PartitionResult &r : results)
        m.emplace(r.cfg.name, r);
    return m;
}

double
averageAreaReduction(const std::vector<PartitionResult> &results)
{
    double total_2d = 0.0;
    double total_3d = 0.0;
    for (const PartitionResult &r : results) {
        total_2d += r.planar.area;
        total_3d += r.stacked.area;
    }
    return 1.0 - total_3d / total_2d;
}

} // namespace

double
CoreDesign::structureEnergyFactor(const std::string &structure) const
{
    auto it = partitions.find(structure);
    if (it == partitions.end())
        return 1.0;
    return 1.0 - it->second.energyReduction();
}

double
CoreDesign::structureLatencyFactor(const std::string &structure) const
{
    auto it = partitions.find(structure);
    if (it == partitions.end())
        return 1.0;
    return 1.0 - it->second.latencyReduction();
}

DesignFactory::DesignFactory()
{
    const std::vector<ArrayConfig> structures = CoreStructures::all();

    PartitionExplorer iso_ex(Technology::m3dIso());
    iso_results_ = iso_ex.bestForAll(structures);

    PartitionExplorer het_ex(Technology::m3dHetero());
    het_results_ = het_ex.bestForAll(structures);

    PartitionExplorer tsv_ex(Technology::tsv3D());
    tsv_results_ = tsv_ex.bestForAll(structures);

    iso_exec_gains_ =
        LogicStageModel(Technology::m3dIso()).aluBypass(4);
    het_exec_gains_ =
        LogicStageModel(Technology::m3dHetero()).aluBypassHetero(4);
}

DesignFactory::DesignFactory(std::vector<PartitionResult> iso_results,
                             std::vector<PartitionResult> het_results,
                             std::vector<PartitionResult> tsv_results)
    : iso_results_(std::move(iso_results)),
      het_results_(std::move(het_results)),
      tsv_results_(std::move(tsv_results))
{
    const std::size_t n = CoreStructures::all().size();
    M3D_ASSERT(iso_results_.size() == n &&
               het_results_.size() == n &&
               tsv_results_.size() == n,
               "partition sweeps must cover every core structure");
    iso_exec_gains_ =
        LogicStageModel(Technology::m3dIso()).aluBypass(4);
    het_exec_gains_ =
        LogicStageModel(Technology::m3dHetero()).aluBypassHetero(4);
}

CoreDesign
DesignFactory::stackedCommon(const Technology &tech,
                             const std::vector<PartitionResult> &results,
                             FrequencyPolicy policy,
                             const std::string &name) const
{
    CoreDesign d;
    d.name = name;
    d.tech = tech;
    d.partitions = toMap(results);
    d.frequency = deriveFrequency(results, policy).frequency;
    // All 3D designs shorten the semi-global critical paths
    // (Section 6): load-to-use 4->3 cycles, mispredict 14->12.
    d.load_to_use = 3;
    d.mispredict_penalty = 12;
    d.clock_tree_switch_factor = 0.75; // [42], Section 6
    // Core footprint: the area-weighted array reduction is a good
    // proxy for the whole core (logic stages fold by ~41% too).
    d.footprint_factor = 1.0 - averageAreaReduction(results);
    return d;
}

CoreDesign
DesignFactory::base() const
{
    CoreDesign d;
    d.name = "Base";
    d.tech = Technology::planar2D();
    d.frequency = kBaseFrequency;
    d.execute_gains = LogicStageGains{}; // all-zero: no 3D gains
    return d;
}

CoreDesign
DesignFactory::tsv3d() const
{
    // TSVs are too coarse for profitable intra-block partitioning, so
    // the TSV3D core keeps the 2D clock; it still enjoys the shorter
    // load-to-use / misprediction paths (Section 6.1).
    CoreDesign d = stackedCommon(Technology::tsv3D(), tsv_results_,
                                 FrequencyPolicy::Conservative, "TSV3D");
    d.frequency = kBaseFrequency;
    return d;
}

CoreDesign
DesignFactory::m3dIso() const
{
    CoreDesign d = stackedCommon(Technology::m3dIso(), iso_results_,
                                 FrequencyPolicy::Conservative,
                                 "M3D-Iso");
    d.execute_gains = iso_exec_gains_;
    return d;
}

CoreDesign
DesignFactory::m3dHetNaive() const
{
    // Take the iso design and slow the whole clock by the measured
    // naive-partitioning loss; no critical-path-aware placement.
    CoreDesign d = m3dIso();
    d.name = "M3D-HetNaive";
    d.tech = Technology::m3dHetero();
    d.frequency *= 1.0 - kNaiveSlowdown;
    return d;
}

CoreDesign
DesignFactory::m3dHet() const
{
    CoreDesign d = stackedCommon(Technology::m3dHetero(), het_results_,
                                 FrequencyPolicy::Conservative,
                                 "M3D-Het");
    d.execute_gains = het_exec_gains_;
    // Complex (multi-uop) decode moved to the top layer costs one
    // extra cycle on the rare complex-instruction path.
    d.complex_decode_extra = 1;
    return d;
}

CoreDesign
DesignFactory::m3dHetAgg() const
{
    CoreDesign d = stackedCommon(Technology::m3dHetero(), het_results_,
                                 FrequencyPolicy::Aggressive,
                                 "M3D-HetAgg");
    d.execute_gains = het_exec_gains_;
    d.complex_decode_extra = 1;
    return d;
}

CoreDesign
DesignFactory::baseMulti()
    const
{
    CoreDesign d = base();
    d.num_cores = 4;
    return d;
}

CoreDesign
DesignFactory::tsv3dMulti() const
{
    CoreDesign d = tsv3d();
    d.num_cores = 4;
    d.shared_l2_pairs = true;
    return d;
}

CoreDesign
DesignFactory::m3dHetMulti() const
{
    CoreDesign d = m3dHet();
    d.num_cores = 4;
    d.shared_l2_pairs = true;
    return d;
}

CoreDesign
DesignFactory::m3dHetW() const
{
    CoreDesign d = m3dHetMulti();
    d.name = "M3D-Het-W";
    d.frequency = kBaseFrequency;
    d.issue_width = 8;
    d.dispatch_width = 5;
    d.commit_width = 5;
    return d;
}

CoreDesign
DesignFactory::m3dHet2x() const
{
    CoreDesign d = m3dHetMulti();
    d.name = "M3D-Het-2X";
    d.frequency = kBaseFrequency;
    d.vdd = kIsoPowerVdd;
    d.num_cores = 8;
    return d;
}

std::vector<CoreDesign>
DesignFactory::singleCoreDesigns() const
{
    return {base(), tsv3d(), m3dIso(), m3dHetNaive(), m3dHet(),
            m3dHetAgg()};
}

std::vector<CoreDesign>
DesignFactory::multicoreDesigns() const
{
    return {baseMulti(), tsv3dMulti(), m3dHetMulti(), m3dHetW(),
            m3dHet2x()};
}

} // namespace m3d
