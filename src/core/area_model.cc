#include "core/area_model.hh"

#include "sram/array_model.hh"
#include "util/logging.hh"
#include "util/units.hh"

namespace m3d {

using namespace units;

namespace {

// Pipeline logic (decode, rename control, schedulers' logic, ALUs,
// FPUs, LSU control) plus clock/PDN overhead of the 2D core,
// excluding the storage arrays priced by the array model.  Sized so
// the whole core lands near the Ryzen-like ~10.6 mm^2 floorplan.
constexpr double kPlanarLogicArea = 6.0 * mm2;

} // namespace

CoreAreaModel::CoreAreaModel() : planar_logic_area_(kPlanarLogicArea)
{
    ArrayModel planar(Technology::planar2D());
    for (const ArrayConfig &cfg : CoreStructures::all())
        planar_areas_[cfg.name] = planar.evaluate2D(cfg).area;
}

CoreAreaReport
CoreAreaModel::evaluate(const CoreDesign &design) const
{
    CoreAreaReport rep;
    for (const auto &[name, area_2d] : planar_areas_) {
        double area = area_2d;
        auto it = design.partitions.find(name);
        if (it != design.partitions.end())
            area = it->second.stacked.area;
        rep.structures[name] = area;
        rep.array_area += area;
    }

    rep.logic_area = planar_logic_area_;
    if (design.stacked()) {
        // Folded logic keeps its transistors but splits across two
        // layers; the plan-view footprint shrinks by the measured
        // ~41% (Section 3.1).
        rep.logic_area = planar_logic_area_ *
            (1.0 - design.execute_gains.footprint_reduction);
        if (design.execute_gains.footprint_reduction == 0.0)
            rep.logic_area = planar_logic_area_ * 0.59;
    }

    rep.total_area = rep.array_area + rep.logic_area;
    // Arrays' `area` is already the stacked footprint for 3D designs
    // (the larger layer), so the core footprint is the sum.
    rep.footprint = rep.total_area;
    return rep;
}

double
CoreAreaModel::footprintFactor(const CoreDesign &design) const
{
    CoreDesign planar = design;
    planar.partitions.clear();
    planar.tech = Technology::planar2D();
    planar.execute_gains = LogicStageGains{};
    const CoreAreaReport base = evaluate(planar);
    const CoreAreaReport mine = evaluate(design);
    M3D_ASSERT(base.footprint > 0.0);
    return mine.footprint / base.footprint;
}

} // namespace m3d
