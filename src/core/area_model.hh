/**
 * @file
 * Core area accounting: per-structure silicon area for a design and
 * the footprint of the whole core after folding, the quantity behind
 * Figure 4 (two folded cores sharing a router stop) and the thermal
 * model's 50% footprint assumption.
 */

#ifndef M3D_CORE_AREA_MODEL_HH_
#define M3D_CORE_AREA_MODEL_HH_

#include <map>
#include <string>

#include "core/design.hh"

namespace m3d {

/** Area breakdown of one core design. */
struct CoreAreaReport
{
    /** Silicon area per storage structure (m^2). */
    std::map<std::string, double> structures;
    double array_area = 0.0;     ///< sum of the above
    double logic_area = 0.0;     ///< pipeline logic + clocking
    double total_area = 0.0;     ///< arrays + logic
    /**
     * Footprint: the chip-plan area.  Equal to total_area in 2D; a
     * two-layer design stacks, so its footprint is roughly half.
     */
    double footprint = 0.0;
};

/** Computes area reports for core designs. */
class CoreAreaModel
{
  public:
    CoreAreaModel();

    /** Area report for a design (2D baseline or any 3D design). */
    CoreAreaReport evaluate(const CoreDesign &design) const;

    /** Footprint of `design` relative to the 2D baseline. */
    double footprintFactor(const CoreDesign &design) const;

  private:
    std::map<std::string, double> planar_areas_;
    double planar_logic_area_;
};

} // namespace m3d

#endif // M3D_CORE_AREA_MODEL_HH_
