#include "engine/eval_key.hh"

namespace m3d {
namespace engine {

namespace {

// Domain tags; the schema version prefixed by KeyBuilder itself
// (util/key128.cc) invalidates stale on-disk caches when any hashed
// layout changes.
constexpr std::uint64_t kDomainPartition = 0x7061727469ull; // "parti"
constexpr std::uint64_t kDomainSingleRun = 0x73696e676cull; // "singl"
constexpr std::uint64_t kDomainMultiRun = 0x6d756c7469ull;  // "multi"

void
hashProcessCorner(KeyBuilder &kb, const ProcessCorner &p)
{
    kb.add(p.name)
        .add(static_cast<int>(p.device))
        .add(p.feature_size)
        .add(p.vdd)
        .add(p.r_on)
        .add(p.c_gate)
        .add(p.c_drain)
        .add(p.i_leak);
}

void
hashViaParams(KeyBuilder &kb, const ViaParams &v)
{
    kb.add(v.name)
        .add(static_cast<int>(v.kind))
        .add(v.diameter)
        .add(v.height)
        .add(v.capacitance)
        .add(v.resistance)
        .add(v.koz_width);
}

void
hashWireParams(KeyBuilder &kb, const WireParams &w)
{
    kb.add(w.name)
        .add(static_cast<int>(w.wire_class))
        .add(static_cast<int>(w.metal))
        .add(w.r_per_m)
        .add(w.c_per_m)
        .add(w.pitch);
}

void
hashArrayMetrics(KeyBuilder &kb, const ArrayMetrics &m)
{
    kb.add(m.access_latency)
        .add(m.access_energy)
        .add(m.write_energy)
        .add(m.area)
        .add(m.leakage_power)
        .add(m.routing_delay)
        .add(m.decode_delay)
        .add(m.wordline_delay)
        .add(m.bitline_delay)
        .add(m.sense_delay)
        .add(m.output_delay)
        .add(m.cam_search_delay);
}

void
hashLogicStageGains(KeyBuilder &kb, const LogicStageGains &g)
{
    kb.add(g.freq_gain)
        .add(g.energy_reduction)
        .add(g.footprint_reduction)
        .add(g.delay_2d)
        .add(g.delay_3d)
        .add(g.hetero_penalty);
}

} // namespace

void
hashTechnology(KeyBuilder &kb, const Technology &tech)
{
    kb.add(tech.name).add(static_cast<int>(tech.integration));
    hashProcessCorner(kb, tech.bottom_process);
    hashProcessCorner(kb, tech.top_process);
    kb.add(tech.top_layer_slowdown);
    hashViaParams(kb, tech.via);
    hashWireParams(kb, tech.local_wire);
    hashWireParams(kb, tech.semi_global_wire);
    hashWireParams(kb, tech.global_wire);
}

void
hashArrayConfig(KeyBuilder &kb, const ArrayConfig &cfg)
{
    kb.add(cfg.name)
        .add(cfg.words)
        .add(cfg.bits)
        .add(cfg.read_ports)
        .add(cfg.write_ports)
        .add(cfg.banks)
        .add(cfg.cam)
        .add(cfg.cam_tag_bits);
}

void
hashPartitionSpec(KeyBuilder &kb, const PartitionSpec &spec)
{
    kb.add(static_cast<int>(spec.kind))
        .add(spec.bottom_share)
        .add(spec.bottom_ports)
        .add(spec.top_access_scale)
        .add(spec.top_cell_scale);
}

void
hashCoreDesign(KeyBuilder &kb, const CoreDesign &design)
{
    kb.add(design.name);
    hashTechnology(kb, design.tech);
    kb.add(design.frequency)
        .add(design.vdd)
        .add(design.dispatch_width)
        .add(design.issue_width)
        .add(design.commit_width)
        .add(design.rob_entries)
        .add(design.iq_entries)
        .add(design.lq_entries)
        .add(design.sq_entries)
        .add(design.num_cores)
        .add(design.shared_l2_pairs)
        .add(design.load_to_use)
        .add(design.mispredict_penalty)
        .add(design.complex_decode_extra);
    kb.add(static_cast<std::uint64_t>(design.partitions.size()));
    for (const auto &[name, r] : design.partitions) {
        kb.add(name);
        hashArrayConfig(kb, r.cfg);
        hashPartitionSpec(kb, r.spec);
        hashArrayMetrics(kb, r.planar);
        hashArrayMetrics(kb, r.stacked);
    }
    hashLogicStageGains(kb, design.execute_gains);
    kb.add(design.clock_tree_switch_factor)
        .add(design.footprint_factor);
}

void
hashSimBudget(KeyBuilder &kb, const SimBudget &b)
{
    kb.add(b.warmup).add(b.measured).add(b.seed);
}

EvalKey
partitionKey(const Technology &tech2d, const Technology &tech3d,
             const ArrayConfig &cfg, const PartitionSpec &spec)
{
    KeyBuilder kb(kDomainPartition);
    hashTechnology(kb, tech2d);
    hashTechnology(kb, tech3d);
    hashArrayConfig(kb, cfg);
    hashPartitionSpec(kb, spec);
    return kb.key();
}

EvalKey
singleRunKey(const CoreDesign &design, const WorkloadProfile &profile,
             const SimBudget &budget)
{
    KeyBuilder kb(kDomainSingleRun);
    hashCoreDesign(kb, design);
    hashWorkloadProfile(kb, profile);
    hashSimBudget(kb, budget);
    return kb.key();
}

EvalKey
multiRunKey(const CoreDesign &design, const WorkloadProfile &profile,
            const SimBudget &budget)
{
    KeyBuilder kb(kDomainMultiRun);
    hashCoreDesign(kb, design);
    hashWorkloadProfile(kb, profile);
    hashSimBudget(kb, budget);
    return kb.key();
}

} // namespace engine
} // namespace m3d
