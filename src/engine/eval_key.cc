#include "engine/eval_key.hh"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace m3d {
namespace engine {

namespace {

constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;
constexpr std::uint64_t kFnvBasisHi = 0xcbf29ce484222325ull;
// Second stream: same prime, different basis, so the two 64-bit
// halves are decorrelated.
constexpr std::uint64_t kFnvBasisLo = 0x84222325cbf29ce4ull;

// Domain tags; changing any hashed layout must bump kSchemaVersion so
// stale on-disk caches are invalidated rather than misread.
constexpr std::uint64_t kSchemaVersion = 1;
constexpr std::uint64_t kDomainPartition = 0x7061727469ull; // "parti"
constexpr std::uint64_t kDomainSingleRun = 0x73696e676cull; // "singl"
constexpr std::uint64_t kDomainMultiRun = 0x6d756c7469ull;  // "multi"

void
hashProcessCorner(KeyBuilder &kb, const ProcessCorner &p)
{
    kb.add(p.name)
        .add(static_cast<int>(p.device))
        .add(p.feature_size)
        .add(p.vdd)
        .add(p.r_on)
        .add(p.c_gate)
        .add(p.c_drain)
        .add(p.i_leak);
}

void
hashViaParams(KeyBuilder &kb, const ViaParams &v)
{
    kb.add(v.name)
        .add(static_cast<int>(v.kind))
        .add(v.diameter)
        .add(v.height)
        .add(v.capacitance)
        .add(v.resistance)
        .add(v.koz_width);
}

void
hashWireParams(KeyBuilder &kb, const WireParams &w)
{
    kb.add(w.name)
        .add(static_cast<int>(w.wire_class))
        .add(static_cast<int>(w.metal))
        .add(w.r_per_m)
        .add(w.c_per_m)
        .add(w.pitch);
}

void
hashArrayMetrics(KeyBuilder &kb, const ArrayMetrics &m)
{
    kb.add(m.access_latency)
        .add(m.access_energy)
        .add(m.write_energy)
        .add(m.area)
        .add(m.leakage_power)
        .add(m.routing_delay)
        .add(m.decode_delay)
        .add(m.wordline_delay)
        .add(m.bitline_delay)
        .add(m.sense_delay)
        .add(m.output_delay)
        .add(m.cam_search_delay);
}

void
hashLogicStageGains(KeyBuilder &kb, const LogicStageGains &g)
{
    kb.add(g.freq_gain)
        .add(g.energy_reduction)
        .add(g.footprint_reduction)
        .add(g.delay_2d)
        .add(g.delay_3d)
        .add(g.hetero_penalty);
}

} // namespace

std::string
EvalKey::str() const
{
    char buf[36];
    std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                  static_cast<unsigned long long>(hi),
                  static_cast<unsigned long long>(lo));
    return buf;
}

bool
EvalKey::parse(const std::string &text, EvalKey *out)
{
    if (text.size() != 32)
        return false;
    for (char c : text) {
        if (!std::isxdigit(static_cast<unsigned char>(c)))
            return false;
    }
    out->hi = std::strtoull(text.substr(0, 16).c_str(), nullptr, 16);
    out->lo = std::strtoull(text.substr(16).c_str(), nullptr, 16);
    return true;
}

KeyBuilder::KeyBuilder(std::uint64_t domain_tag)
    : hi_(kFnvBasisHi), lo_(kFnvBasisLo)
{
    add(kSchemaVersion);
    add(domain_tag);
}

KeyBuilder &
KeyBuilder::byte(std::uint8_t b)
{
    hi_ = (hi_ ^ b) * kFnvPrime;
    lo_ = (lo_ ^ b) * kFnvPrime;
    return *this;
}

KeyBuilder &
KeyBuilder::add(std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        byte(static_cast<std::uint8_t>(v >> (8 * i)));
    return *this;
}

KeyBuilder &
KeyBuilder::add(std::int64_t v)
{
    return add(static_cast<std::uint64_t>(v));
}

KeyBuilder &
KeyBuilder::add(int v)
{
    return add(static_cast<std::uint64_t>(static_cast<std::int64_t>(v)));
}

KeyBuilder &
KeyBuilder::add(bool v)
{
    return byte(v ? 1 : 0);
}

KeyBuilder &
KeyBuilder::add(double v)
{
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    return add(bits);
}

KeyBuilder &
KeyBuilder::add(const std::string &s)
{
    add(static_cast<std::uint64_t>(s.size()));
    for (char c : s)
        byte(static_cast<std::uint8_t>(c));
    return *this;
}

void
hashTechnology(KeyBuilder &kb, const Technology &tech)
{
    kb.add(tech.name).add(static_cast<int>(tech.integration));
    hashProcessCorner(kb, tech.bottom_process);
    hashProcessCorner(kb, tech.top_process);
    kb.add(tech.top_layer_slowdown);
    hashViaParams(kb, tech.via);
    hashWireParams(kb, tech.local_wire);
    hashWireParams(kb, tech.semi_global_wire);
    hashWireParams(kb, tech.global_wire);
}

void
hashArrayConfig(KeyBuilder &kb, const ArrayConfig &cfg)
{
    kb.add(cfg.name)
        .add(cfg.words)
        .add(cfg.bits)
        .add(cfg.read_ports)
        .add(cfg.write_ports)
        .add(cfg.banks)
        .add(cfg.cam)
        .add(cfg.cam_tag_bits);
}

void
hashPartitionSpec(KeyBuilder &kb, const PartitionSpec &spec)
{
    kb.add(static_cast<int>(spec.kind))
        .add(spec.bottom_share)
        .add(spec.bottom_ports)
        .add(spec.top_access_scale)
        .add(spec.top_cell_scale);
}

void
hashCoreDesign(KeyBuilder &kb, const CoreDesign &design)
{
    kb.add(design.name);
    hashTechnology(kb, design.tech);
    kb.add(design.frequency)
        .add(design.vdd)
        .add(design.dispatch_width)
        .add(design.issue_width)
        .add(design.commit_width)
        .add(design.rob_entries)
        .add(design.iq_entries)
        .add(design.lq_entries)
        .add(design.sq_entries)
        .add(design.num_cores)
        .add(design.shared_l2_pairs)
        .add(design.load_to_use)
        .add(design.mispredict_penalty)
        .add(design.complex_decode_extra);
    kb.add(static_cast<std::uint64_t>(design.partitions.size()));
    for (const auto &[name, r] : design.partitions) {
        kb.add(name);
        hashArrayConfig(kb, r.cfg);
        hashPartitionSpec(kb, r.spec);
        hashArrayMetrics(kb, r.planar);
        hashArrayMetrics(kb, r.stacked);
    }
    hashLogicStageGains(kb, design.execute_gains);
    kb.add(design.clock_tree_switch_factor)
        .add(design.footprint_factor);
}

void
hashWorkloadProfile(KeyBuilder &kb, const WorkloadProfile &p)
{
    kb.add(p.name)
        .add(p.load_frac)
        .add(p.store_frac)
        .add(p.branch_frac)
        .add(p.fp_frac)
        .add(p.mult_frac)
        .add(p.div_frac)
        .add(p.complex_decode_frac)
        .add(p.mean_dep_distance)
        .add(p.branch_mpki)
        .add(p.working_set_kb)
        .add(p.code_footprint_kb)
        .add(p.stride_frac)
        .add(p.spatial_locality)
        .add(p.temporal_locality)
        .add(p.parallel)
        .add(p.parallel_frac)
        .add(p.shared_frac)
        .add(p.barrier_per_kinstr)
        .add(p.lock_per_kinstr);
}

void
hashSimBudget(KeyBuilder &kb, const SimBudget &b)
{
    kb.add(b.warmup).add(b.measured).add(b.seed);
}

EvalKey
partitionKey(const Technology &tech2d, const Technology &tech3d,
             const ArrayConfig &cfg, const PartitionSpec &spec)
{
    KeyBuilder kb(kDomainPartition);
    hashTechnology(kb, tech2d);
    hashTechnology(kb, tech3d);
    hashArrayConfig(kb, cfg);
    hashPartitionSpec(kb, spec);
    return kb.key();
}

EvalKey
singleRunKey(const CoreDesign &design, const WorkloadProfile &profile,
             const SimBudget &budget)
{
    KeyBuilder kb(kDomainSingleRun);
    hashCoreDesign(kb, design);
    hashWorkloadProfile(kb, profile);
    hashSimBudget(kb, budget);
    return kb.key();
}

EvalKey
multiRunKey(const CoreDesign &design, const WorkloadProfile &profile,
            const SimBudget &budget)
{
    KeyBuilder kb(kDomainMultiRun);
    hashCoreDesign(kb, design);
    hashWorkloadProfile(kb, profile);
    hashSimBudget(kb, budget);
    return kb.key();
}

} // namespace engine
} // namespace m3d
