#include "engine/evaluator.hh"

#include <algorithm>
#include <map>

#include "core/design.hh"
#include "util/logging.hh"

namespace m3d {
namespace engine {

Evaluator::Evaluator(EvalOptions options)
    : options_(std::move(options)),
      pool_(std::make_unique<ThreadPool>(
          ThreadPool::resolveThreads(options_.threads)))
{
    if (options_.cache && !options_.cache_file.empty())
        cache_.loadPartitions(options_.cache_file);
}

Evaluator::~Evaluator() = default;

/**
 * Captures the cache counters at construction and publishes the delta
 * as lastBatchStats() at destruction, so every batch entry point
 * reports exactly the traffic it generated.
 */
class Evaluator::BatchScope
{
  public:
    explicit BatchScope(Evaluator &ev)
        : ev_(ev), partition_(ev.cache_.partitionStats()),
          run_(ev.cache_.runStats()), multi_(ev.cache_.multiStats())
    {
    }

    ~BatchScope()
    {
        BatchStats delta;
        delta.partition = ev_.cache_.partitionStats() - partition_;
        delta.run = ev_.cache_.runStats() - run_;
        delta.multi = ev_.cache_.multiStats() - multi_;
        std::lock_guard<std::mutex> lock(ev_.batch_stats_mutex_);
        ev_.last_batch_stats_ = delta;
    }

  private:
    Evaluator &ev_;
    CacheStats partition_;
    CacheStats run_;
    CacheStats multi_;
};

const PartitionExplorer &
Evaluator::explorerFor(const Technology &tech3d)
{
    KeyBuilder kb(0);
    hashTechnology(kb, tech3d);
    const std::string id = kb.key().str();

    std::lock_guard<std::mutex> lock(explorers_mutex_);
    auto it = explorers_.find(id);
    if (it == explorers_.end()) {
        it = explorers_
                 .emplace(id,
                          std::make_unique<PartitionExplorer>(tech3d))
                 .first;
    }
    return *it->second;
}

PartitionResult
Evaluator::evaluate(const Technology &tech3d, const ArrayConfig &cfg,
                    const PartitionSpec &spec)
{
    const PartitionExplorer &ex = explorerFor(tech3d);
    if (!options_.cache)
        return ex.evaluate(cfg, spec);

    const EvalKey key =
        partitionKey(Technology::planar2D(), tech3d, cfg, spec);
    PartitionResult r;
    if (cache_.lookupPartition(key, &r))
        return r;
    r = ex.evaluate(cfg, spec);
    cache_.storePartition(key, r);
    return r;
}

PartitionResult
Evaluator::best(const Technology &tech3d, const ArrayConfig &cfg,
                PartitionKind kind)
{
    const PartitionExplorer &ex = explorerFor(tech3d);
    const std::vector<PartitionSpec> specs = ex.candidates(cfg, kind);
    M3D_ASSERT(!specs.empty(), "no legal design point for ", cfg.name,
               " with strategy ", toString(kind));

    std::vector<PartitionResult> results;
    results.reserve(specs.size());
    for (const PartitionSpec &s : specs)
        results.push_back(evaluate(tech3d, cfg, s));
    return PartitionExplorer::selectBest(results);
}

PartitionResult
Evaluator::bestOverall(const Technology &tech3d, const ArrayConfig &cfg)
{
    bool have = false;
    PartitionResult best_r;
    for (PartitionKind k : PartitionExplorer::legalKinds(cfg)) {
        PartitionResult r = best(tech3d, cfg, k);
        if (!have || PartitionExplorer::betterOverall(r, best_r)) {
            best_r = r;
            have = true;
        }
    }
    M3D_ASSERT(have);
    return best_r;
}

std::vector<PartitionResult>
Evaluator::bestForAll(const Technology &tech3d,
                      const std::vector<ArrayConfig> &cfgs)
{
    BatchRunRequest req;
    req.partitions.reserve(cfgs.size());
    for (const ArrayConfig &cfg : cfgs)
        req.partitions.push_back(
            PartitionJob{tech3d, cfg, PartitionKind::None});
    return submit(req).partitions;
}

std::vector<PartitionResult>
Evaluator::bestBatch(const std::vector<PartitionJob> &jobs)
{
    return bestBatch(jobs, PartitionHook());
}

std::vector<PartitionResult>
Evaluator::bestBatch(const std::vector<PartitionJob> &jobs,
                     const PartitionHook &hook)
{
    BatchRunRequest req;
    req.partitions = jobs;
    return submit(req, ResultHook(), hook).partitions;
}

BatchRunResult
Evaluator::submit(const BatchRunRequest &req, const ResultHook &run_hook,
                  const PartitionHook &partition_hook)
{
    // Materialize every explorer before fanning out; explorerFor()
    // would also be safe to race, but this keeps construction serial.
    for (const PartitionJob &j : req.partitions)
        explorerFor(j.tech3d);

    BatchScope scope(*this);
    BatchRunResult out;
    out.partitions.resize(req.partitions.size());
    out.runs.resize(req.runs.size());

    pool_->parallelFor(req.partitions.size(), [&](std::size_t i) {
        const PartitionJob &j = req.partitions[i];
        out.partitions[i] = j.kind == PartitionKind::None
            ? bestOverall(j.tech3d, j.cfg)
            : best(j.tech3d, j.cfg, j.kind);
        if (partition_hook)
            partition_hook(i, out.partitions[i]);
    });

    if (req.runs.empty())
        return out;

    BatchReplayOptions replay_opts;
    replay_opts.force_scalar = req.force_scalar;
    int width = req.batch_width != 0 ? req.batch_width
                                     : options_.batch_width;
    if (width <= 0)
        width = BatchReplay::preferredWidth(replay_opts);

    // Resolve memo hits up front, then split the misses: single-core
    // Replay runs group by (app, budget) onto the batched replay
    // kernel, everything else executes one run at a time.
    struct Group
    {
        std::size_t exemplar = 0;         ///< index into req.runs
        std::vector<std::size_t> members; ///< indices into req.runs
    };
    std::map<std::string, Group> groups;
    std::vector<std::size_t> loners;
    std::vector<EvalKey> keys(req.runs.size());
    for (std::size_t i = 0; i < req.runs.size(); ++i) {
        const RunRequest &r = req.runs[i];
        const bool single = r.kind == RunKind::Single;
        keys[i] = single ? singleRunKey(r.design, r.app, r.budget)
                         : multiRunKey(r.design, r.app, r.budget);
        if (options_.cache) {
            bool hit = false;
            if (single)
                hit = cache_.lookupRun(keys[i], &out.runs[i].single);
            else
                hit = cache_.lookupMulti(keys[i], &out.runs[i].multi);
            if (hit) {
                out.runs[i].kind = r.kind;
                if (run_hook)
                    run_hook(i, out.runs[i]);
                continue;
            }
        }
        if (single && r.path == TracePath::Replay && width > 1) {
            KeyBuilder kb(0);
            hashWorkloadProfile(kb, r.app);
            hashSimBudget(kb, r.budget);
            Group &g = groups[kb.key().str()];
            if (g.members.empty())
                g.exemplar = i;
            g.members.push_back(i);
        } else {
            loners.push_back(i);
        }
    }

    // Flatten the groups into width-aligned chunks, splitting each
    // group across the pool; the chunking never affects results (the
    // batched kernel is bit-identical at every width).
    struct Chunk
    {
        const Group *group;
        std::size_t begin;
        std::size_t end;
    };
    std::vector<Chunk> chunks;
    const std::size_t w = static_cast<std::size_t>(width);
    const std::size_t workers =
        static_cast<std::size_t>(std::max(1, threads()));
    for (const auto &kv : groups) {
        const Group &g = kv.second;
        const std::size_t blocks = (g.members.size() + w - 1) / w;
        const std::size_t per_task =
            std::max<std::size_t>(1, (blocks + workers - 1) / workers);
        const std::size_t chunk = per_task * w;
        for (std::size_t b = 0; b < g.members.size(); b += chunk)
            chunks.push_back(Chunk{
                &g, b, std::min(g.members.size(), b + chunk)});
    }

    pool_->parallelFor(chunks.size(), [&](std::size_t ci) {
        const Chunk &c = chunks[ci];
        const RunRequest &ex = req.runs[c.group->exemplar];
        std::vector<CoreDesign> designs;
        designs.reserve(c.end - c.begin);
        for (std::size_t j = c.begin; j < c.end; ++j)
            designs.push_back(
                req.runs[c.group->members[j]].design);
        const std::vector<AppRun> runs = runSingleCoreBatch(
            designs, ex.app, ex.budget, replay_opts);
        for (std::size_t j = c.begin; j < c.end; ++j) {
            const std::size_t idx = c.group->members[j];
            out.runs[idx].kind = RunKind::Single;
            out.runs[idx].single = runs[j - c.begin];
            if (options_.cache)
                cache_.storeRun(keys[idx], out.runs[idx].single);
            if (run_hook)
                run_hook(idx, out.runs[idx]);
        }
    });

    pool_->parallelFor(loners.size(), [&](std::size_t li) {
        const std::size_t idx = loners[li];
        out.runs[idx] = execute(req.runs[idx]);
        if (options_.cache) {
            if (out.runs[idx].kind == RunKind::Single)
                cache_.storeRun(keys[idx], out.runs[idx].single);
            else
                cache_.storeMulti(keys[idx], out.runs[idx].multi);
        }
        if (run_hook)
            run_hook(idx, out.runs[idx]);
    });

    return out;
}

RunRequest
Evaluator::makeRequest(RunKind kind, const CoreDesign &design,
                       const WorkloadProfile &app) const
{
    RunRequest r;
    r.kind = kind;
    r.design = design;
    r.app = app;
    r.budget = options_.budget;
    r.path = options_.trace_path;
    return r;
}

AppRun
Evaluator::run(const CoreDesign &design, const WorkloadProfile &app)
{
    const RunRequest req = makeRequest(RunKind::Single, design, app);
    if (!options_.cache)
        return execute(req).single;

    const EvalKey key = singleRunKey(design, app, options_.budget);
    AppRun r;
    if (cache_.lookupRun(key, &r))
        return r;
    r = execute(req).single;
    cache_.storeRun(key, r);
    return r;
}

MultiRun
Evaluator::runMulti(const CoreDesign &design,
                    const WorkloadProfile &app)
{
    const RunRequest req = makeRequest(RunKind::Multi, design, app);
    if (!options_.cache)
        return execute(req).multi;

    const EvalKey key = multiRunKey(design, app, options_.budget);
    MultiRun r;
    if (cache_.lookupMulti(key, &r))
        return r;
    r = execute(req).multi;
    cache_.storeMulti(key, r);
    return r;
}

std::vector<AppRun>
Evaluator::runBatch(const std::vector<SingleJob> &jobs)
{
    return runBatch(jobs, RunHook());
}

std::vector<AppRun>
Evaluator::runBatch(const std::vector<SingleJob> &jobs,
                    const RunHook &hook)
{
    BatchRunRequest req;
    req.runs.reserve(jobs.size());
    for (const SingleJob &j : jobs)
        req.runs.push_back(
            makeRequest(RunKind::Single, j.design, j.app));

    ResultHook rh;
    if (hook)
        rh = [&hook](std::size_t i, const RunResult &r) {
            hook(i, r.single);
        };
    BatchRunResult res = submit(req, rh);

    std::vector<AppRun> out;
    out.reserve(res.runs.size());
    for (RunResult &r : res.runs)
        out.push_back(std::move(r.single));
    return out;
}

std::vector<MultiRun>
Evaluator::runMultiBatch(const std::vector<MultiJob> &jobs)
{
    BatchRunRequest req;
    req.runs.reserve(jobs.size());
    for (const MultiJob &j : jobs)
        req.runs.push_back(
            makeRequest(RunKind::Multi, j.design, j.app));

    BatchRunResult res = submit(req);

    std::vector<MultiRun> out;
    out.reserve(res.runs.size());
    for (RunResult &r : res.runs)
        out.push_back(std::move(r.multi));
    return out;
}

void
Evaluator::parallelFor(std::size_t n,
                       const std::function<void(std::size_t)> &body)
{
    pool_->parallelFor(n, body);
}

BatchStats
Evaluator::lastBatchStats() const
{
    std::lock_guard<std::mutex> lock(batch_stats_mutex_);
    return last_batch_stats_;
}

std::size_t
Evaluator::savePartitionCache()
{
    if (options_.cache_file.empty())
        return 0;
    return cache_.savePartitions(options_.cache_file);
}

DesignFactory
designFactory(Evaluator &ev)
{
    const std::vector<ArrayConfig> structures =
        CoreStructures::all();
    return DesignFactory(
        ev.bestForAll(Technology::m3dIso(), structures),
        ev.bestForAll(Technology::m3dHetero(), structures),
        ev.bestForAll(Technology::tsv3D(), structures));
}

} // namespace engine
} // namespace m3d
