#include "engine/evaluator.hh"

#include "core/design.hh"
#include "util/logging.hh"

namespace m3d {
namespace engine {

Evaluator::Evaluator(EvalOptions options)
    : options_(std::move(options)),
      pool_(std::make_unique<ThreadPool>(
          ThreadPool::resolveThreads(options_.threads)))
{
    if (options_.cache && !options_.cache_file.empty())
        cache_.loadPartitions(options_.cache_file);
}

Evaluator::~Evaluator() = default;

/**
 * Captures the cache counters at construction and publishes the delta
 * as lastBatchStats() at destruction, so every batch entry point
 * reports exactly the traffic it generated.
 */
class Evaluator::BatchScope
{
  public:
    explicit BatchScope(Evaluator &ev)
        : ev_(ev), partition_(ev.cache_.partitionStats()),
          run_(ev.cache_.runStats()), multi_(ev.cache_.multiStats())
    {
    }

    ~BatchScope()
    {
        BatchStats delta;
        delta.partition = ev_.cache_.partitionStats() - partition_;
        delta.run = ev_.cache_.runStats() - run_;
        delta.multi = ev_.cache_.multiStats() - multi_;
        std::lock_guard<std::mutex> lock(ev_.batch_stats_mutex_);
        ev_.last_batch_stats_ = delta;
    }

  private:
    Evaluator &ev_;
    CacheStats partition_;
    CacheStats run_;
    CacheStats multi_;
};

const PartitionExplorer &
Evaluator::explorerFor(const Technology &tech3d)
{
    KeyBuilder kb(0);
    hashTechnology(kb, tech3d);
    const std::string id = kb.key().str();

    std::lock_guard<std::mutex> lock(explorers_mutex_);
    auto it = explorers_.find(id);
    if (it == explorers_.end()) {
        it = explorers_
                 .emplace(id,
                          std::make_unique<PartitionExplorer>(tech3d))
                 .first;
    }
    return *it->second;
}

PartitionResult
Evaluator::evaluate(const Technology &tech3d, const ArrayConfig &cfg,
                    const PartitionSpec &spec)
{
    const PartitionExplorer &ex = explorerFor(tech3d);
    if (!options_.cache)
        return ex.evaluate(cfg, spec);

    const EvalKey key =
        partitionKey(Technology::planar2D(), tech3d, cfg, spec);
    PartitionResult r;
    if (cache_.lookupPartition(key, &r))
        return r;
    r = ex.evaluate(cfg, spec);
    cache_.storePartition(key, r);
    return r;
}

PartitionResult
Evaluator::best(const Technology &tech3d, const ArrayConfig &cfg,
                PartitionKind kind)
{
    const PartitionExplorer &ex = explorerFor(tech3d);
    const std::vector<PartitionSpec> specs = ex.candidates(cfg, kind);
    M3D_ASSERT(!specs.empty(), "no legal design point for ", cfg.name,
               " with strategy ", toString(kind));

    std::vector<PartitionResult> results;
    results.reserve(specs.size());
    for (const PartitionSpec &s : specs)
        results.push_back(evaluate(tech3d, cfg, s));
    return PartitionExplorer::selectBest(results);
}

PartitionResult
Evaluator::bestOverall(const Technology &tech3d, const ArrayConfig &cfg)
{
    bool have = false;
    PartitionResult best_r;
    for (PartitionKind k : PartitionExplorer::legalKinds(cfg)) {
        PartitionResult r = best(tech3d, cfg, k);
        if (!have || PartitionExplorer::betterOverall(r, best_r)) {
            best_r = r;
            have = true;
        }
    }
    M3D_ASSERT(have);
    return best_r;
}

std::vector<PartitionResult>
Evaluator::bestForAll(const Technology &tech3d,
                      const std::vector<ArrayConfig> &cfgs)
{
    // Build the shared explorer up front so tasks only read it.
    explorerFor(tech3d);

    BatchScope scope(*this);
    std::vector<PartitionResult> out(cfgs.size());
    pool_->parallelFor(cfgs.size(), [&](std::size_t i) {
        out[i] = bestOverall(tech3d, cfgs[i]);
    });
    return out;
}

std::vector<PartitionResult>
Evaluator::bestBatch(const std::vector<PartitionJob> &jobs)
{
    return bestBatch(jobs, PartitionHook());
}

std::vector<PartitionResult>
Evaluator::bestBatch(const std::vector<PartitionJob> &jobs,
                     const PartitionHook &hook)
{
    // Materialize every explorer before fanning out; explorerFor()
    // would also be safe to race, but this keeps construction serial.
    for (const PartitionJob &j : jobs)
        explorerFor(j.tech3d);

    BatchScope scope(*this);
    std::vector<PartitionResult> out(jobs.size());
    pool_->parallelFor(jobs.size(), [&](std::size_t i) {
        const PartitionJob &j = jobs[i];
        out[i] = j.kind == PartitionKind::None
            ? bestOverall(j.tech3d, j.cfg)
            : best(j.tech3d, j.cfg, j.kind);
        if (hook)
            hook(i, out[i]);
    });
    return out;
}

AppRun
Evaluator::run(const CoreDesign &design, const WorkloadProfile &app)
{
    if (!options_.cache)
        return detail::runSingleCoreUncached(design, app,
                                             options_.budget,
                                             options_.trace_path);

    const EvalKey key = singleRunKey(design, app, options_.budget);
    AppRun r;
    if (cache_.lookupRun(key, &r))
        return r;
    r = detail::runSingleCoreUncached(design, app, options_.budget,
                                      options_.trace_path);
    cache_.storeRun(key, r);
    return r;
}

MultiRun
Evaluator::runMulti(const CoreDesign &design,
                    const WorkloadProfile &app)
{
    if (!options_.cache)
        return detail::runMulticoreUncached(design, app,
                                            options_.budget,
                                            options_.trace_path);

    const EvalKey key = multiRunKey(design, app, options_.budget);
    MultiRun r;
    if (cache_.lookupMulti(key, &r))
        return r;
    r = detail::runMulticoreUncached(design, app, options_.budget,
                                     options_.trace_path);
    cache_.storeMulti(key, r);
    return r;
}

std::vector<AppRun>
Evaluator::runBatch(const std::vector<SingleJob> &jobs)
{
    return runBatch(jobs, RunHook());
}

std::vector<AppRun>
Evaluator::runBatch(const std::vector<SingleJob> &jobs,
                    const RunHook &hook)
{
    BatchScope scope(*this);
    std::vector<AppRun> out(jobs.size());
    pool_->parallelFor(jobs.size(), [&](std::size_t i) {
        out[i] = run(jobs[i].design, jobs[i].app);
        if (hook)
            hook(i, out[i]);
    });
    return out;
}

std::vector<MultiRun>
Evaluator::runMultiBatch(const std::vector<MultiJob> &jobs)
{
    BatchScope scope(*this);
    std::vector<MultiRun> out(jobs.size());
    pool_->parallelFor(jobs.size(), [&](std::size_t i) {
        out[i] = runMulti(jobs[i].design, jobs[i].app);
    });
    return out;
}

void
Evaluator::parallelFor(std::size_t n,
                       const std::function<void(std::size_t)> &body)
{
    pool_->parallelFor(n, body);
}

BatchStats
Evaluator::lastBatchStats() const
{
    std::lock_guard<std::mutex> lock(batch_stats_mutex_);
    return last_batch_stats_;
}

std::size_t
Evaluator::savePartitionCache()
{
    if (options_.cache_file.empty())
        return 0;
    return cache_.savePartitions(options_.cache_file);
}

DesignFactory
designFactory(Evaluator &ev)
{
    const std::vector<ArrayConfig> structures =
        CoreStructures::all();
    return DesignFactory(
        ev.bestForAll(Technology::m3dIso(), structures),
        ev.bestForAll(Technology::m3dHetero(), structures),
        ev.bestForAll(Technology::tsv3D(), structures));
}

} // namespace engine
} // namespace m3d
