/**
 * @file
 * The unified evaluation engine (Evaluator facade).
 *
 * Every figure/table reproduction boils down to two primitives priced
 * thousands of times: a partition design point
 * (PartitionExplorer::evaluate) and an application run
 * (runSingleCore / runMulticore).  The Evaluator owns both behind one
 * API and adds, orthogonally:
 *
 *  - memoization: results are cached under canonical input hashes
 *    (engine/eval_key.hh), so repeated sweeps - and overlapping grid
 *    searches within one sweep - evaluate each point once;
 *  - parallelism: batch entry points fan independent points across a
 *    fixed thread pool and merge results **in submission order**, so
 *    output is bit-identical to a serial run regardless of thread
 *    count (each run seeds its own TraceGenerator from
 *    SimBudget::seed; no evaluation shares mutable state);
 *  - batched replay: single-core Replay misses of one submit() that
 *    share a workload and budget are regrouped and streamed through
 *    arch/batch_replay.hh - one trace pass against N designs, SIMD
 *    lanes - instead of N separate passes.  Batching is bit-identical
 *    to sequential execution, so it composes silently with the memo
 *    cache;
 *  - persistence: the partition cache can be loaded/saved from a
 *    file, carrying grid-search work across processes.
 *
 * submit() is the one batch entry point: a BatchRunRequest carries
 * any mix of RunRequests (power/sim_harness.hh) and partition grid
 * searches, and comes back as one BatchRunResult in submission order.
 * The historical batch sextet (runBatch x2, bestBatch x2,
 * runMultiBatch, bestForAll) remains as thin documented wrappers that
 * build the equivalent BatchRunRequest, so existing call sites keep
 * compiling; new code should build the request directly.
 *
 * The legacy free functions and PartitionExplorer methods remain as
 * thin wrappers over the same primitives for existing call sites.
 */

#ifndef M3D_ENGINE_EVALUATOR_HH_
#define M3D_ENGINE_EVALUATOR_HH_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "engine/eval_cache.hh"
#include "engine/eval_key.hh"
#include "power/sim_harness.hh"
#include "sram/explorer.hh"
#include "util/thread_pool.hh"

namespace m3d {

class DesignFactory;

namespace engine {

/** Knobs of one Evaluator instance. */
struct EvalOptions
{
    /** Worker threads; <= 0 means all hardware threads. */
    int threads = 1;

    /** Instruction budget for simulation runs. */
    SimBudget budget{};

    /** Memoize results (disable to force re-evaluation). */
    bool cache = true;

    /**
     * Op source for simulation runs (workload/trace_buffer.hh).
     * Replay - the default - shares one pre-resolved trace per
     * (app, seed, thread) across every design via the process-wide
     * TraceRegistry.  Generate runs the generator live.  Results are
     * bit-identical either way, so the choice is deliberately NOT
     * part of the memo keys.
     */
    TracePath trace_path = TracePath::Replay;

    /**
     * Default design-batch width of submit()'s batched replay path
     * when the request itself does not pin one
     * (BatchRunRequest::batch_width).  0 picks the host's preferred
     * SIMD width (BatchReplay::preferredWidth); 1 disables batching
     * (every run executes sequentially); N >= 2 streams designs in
     * chunks of N.  Results are bit-identical at every width, so this
     * is a throughput/test knob, never a correctness one.
     */
    int batch_width = 0;

    /**
     * Optional partition-cache file: loaded at construction, saved by
     * savePartitionCache() (callers decide when to persist).
     */
    std::string cache_file;
};

/** One single-core batch request. */
struct SingleJob
{
    CoreDesign design;
    WorkloadProfile app;
};

/** One multicore batch request. */
struct MultiJob
{
    CoreDesign design;
    WorkloadProfile app;
};

/** One partition grid-search batch request. */
struct PartitionJob
{
    Technology tech3d;
    ArrayConfig cfg;
    PartitionKind kind = PartitionKind::None; ///< None = best overall
};

/**
 * One unified batch: any mix of simulation runs and partition grid
 * searches, evaluated together by Evaluator::submit().
 *
 * Single-core runs with TracePath::Replay that share a workload and
 * budget are regrouped design-major and streamed through the batched
 * replay kernel (arch/batch_replay.hh); everything else - multicore
 * runs, Generate-path runs - fans across the pool one run at a time.
 * Both partitions of the batch are memoized per-element, so a request
 * whose runs are all cache hits costs nothing.
 */
struct BatchRunRequest
{
    /** Simulation runs, in result order. */
    std::vector<RunRequest> runs;

    /** Partition grid searches, in result order. */
    std::vector<PartitionJob> partitions;

    /**
     * Design-batch width of the batched replay path for this request:
     * 0 defers to EvalOptions::batch_width (and from there to the
     * host's preferred SIMD width), 1 forces sequential per-run
     * execution, N >= 2 streams designs in chunks of N.
     * Bit-identical at every width.
     */
    int batch_width = 0;

    /** Force the scalar lane path of the batched kernel (see
     * BatchReplayOptions::force_scalar).  Bit-identical; a test and
     * benchmark knob. */
    bool force_scalar = false;
};

/** Results of one submit(), in BatchRunRequest order. */
struct BatchRunResult
{
    std::vector<RunResult> runs;           ///< one per request run
    std::vector<PartitionResult> partitions; ///< one per request job
};

/**
 * Per-batch cache traffic: the counter deltas one batch entry point
 * (runBatch, bestBatch, runMultiBatch, bestForAll) produced, by key
 * family.  Lets a caller report the hit rate of *its* batch instead
 * of the process-lifetime totals EvalCache accumulates.
 */
struct BatchStats
{
    CacheStats partition;
    CacheStats run;
    CacheStats multi;

    CacheStats total() const { return partition + run + multi; }
};

/** Batch evaluation facade; see file comment. */
class Evaluator
{
  public:
    explicit Evaluator(EvalOptions options=EvalOptions{});
    ~Evaluator();

    Evaluator(const Evaluator &) = delete;
    Evaluator &operator=(const Evaluator &) = delete;

    // ------------------------------------------------------------------
    // Partition exploration (mirrors PartitionExplorer, memoized).
    // The 2D baseline defaults to planar 22nm HP, like the explorer.
    // ------------------------------------------------------------------

    /** Price one design point. */
    PartitionResult evaluate(const Technology &tech3d,
                             const ArrayConfig &cfg,
                             const PartitionSpec &spec);

    /** Best knobs for one strategy (memoized grid search). */
    PartitionResult best(const Technology &tech3d,
                         const ArrayConfig &cfg, PartitionKind kind);

    /** Best strategy overall for one structure. */
    PartitionResult bestOverall(const Technology &tech3d,
                                const ArrayConfig &cfg);

    /**
     * Best strategy for every structure; fans structures across the
     * pool, returns results in `cfgs` order.  Deprecated-style
     * wrapper: builds the equivalent BatchRunRequest (one
     * PartitionKind::None job per structure) and submit()s it.
     */
    std::vector<PartitionResult>
    bestForAll(const Technology &tech3d,
               const std::vector<ArrayConfig> &cfgs);

    /**
     * Arbitrary batch of grid searches (mixed technologies and
     * strategies); results in `jobs` order.  A job with
     * kind == PartitionKind::None resolves to bestOverall().
     * Deprecated-style wrapper over submit().
     *
     * The hooked overload calls `hook(i, result)` once per job as it
     * completes - possibly from a worker thread, so the hook must be
     * thread-safe (e.g. a search::ParetoArchive insert).
     */
    std::vector<PartitionResult>
    bestBatch(const std::vector<PartitionJob> &jobs);

    using PartitionHook =
        std::function<void(std::size_t, const PartitionResult &)>;
    std::vector<PartitionResult>
    bestBatch(const std::vector<PartitionJob> &jobs,
              const PartitionHook &hook);

    // ------------------------------------------------------------------
    // Application runs (mirror runSingleCore / runMulticore).
    // ------------------------------------------------------------------

    /** Run one serial app on one design (memoized). */
    AppRun run(const CoreDesign &design, const WorkloadProfile &app);

    /** Run one parallel app on one multicore design (memoized). */
    MultiRun runMulti(const CoreDesign &design,
                      const WorkloadProfile &app);

    /**
     * Batch runs, results in submission order.  Deprecated-style
     * wrappers over submit(): jobs sharing an app ride the batched
     * replay kernel.  The hooked overload calls `hook(i, result)`
     * once per job as it completes - possibly from a worker thread,
     * so the hook must be thread-safe.
     */
    std::vector<AppRun> runBatch(const std::vector<SingleJob> &jobs);

    using RunHook = std::function<void(std::size_t, const AppRun &)>;
    std::vector<AppRun> runBatch(const std::vector<SingleJob> &jobs,
                                 const RunHook &hook);

    std::vector<MultiRun>
    runMultiBatch(const std::vector<MultiJob> &jobs);

    // ------------------------------------------------------------------
    // Unified batch submission.
    // ------------------------------------------------------------------

    /** Per-run completion hook of submit(); like RunHook, it may fire
     * from a worker thread and must be thread-safe.  Cache hits fire
     * it too. */
    using ResultHook =
        std::function<void(std::size_t, const RunResult &)>;

    /**
     * Evaluate one unified batch: every run and partition job of
     * `req`, memoized, fanned across the pool, with the single-core
     * Replay misses regrouped through the batched replay kernel (see
     * BatchRunRequest).  Results come back in submission order and
     * are bit-identical to executing each element alone, at any
     * thread count and any batch width.
     *
     * All other batch entry points (runBatch, runMultiBatch,
     * bestBatch, bestForAll) are wrappers over this method, so
     * lastBatchStats() reports one submit()'s traffic regardless of
     * the spelling used.
     */
    BatchRunResult submit(const BatchRunRequest &req,
                          const ResultHook &run_hook = ResultHook(),
                          const PartitionHook &partition_hook =
                              PartitionHook());

    /**
     * Run independent tasks `body(0) .. body(n-1)` across this
     * evaluator's pool (serial inline when --jobs 1, per the
     * ThreadPool contract).  For derived work that should share the
     * engine's parallelism - e.g. the search subsystem's per-design
     * thermal solves - without a second pool.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &body);

    // ------------------------------------------------------------------
    // Introspection / cache control.
    // ------------------------------------------------------------------

    const EvalOptions &options() const { return options_; }
    int threads() const { return pool_->threads() == 0 ? 1
                                                       : pool_->threads(); }
    EvalCache &cache() { return cache_; }

    /**
     * Cache traffic of the most recent batch entry point (runBatch,
     * bestBatch, runMultiBatch, or bestForAll) on this evaluator.
     * Meaningful between batches, not while one is in flight; batches
     * themselves are expected to be issued from one thread.
     */
    BatchStats lastBatchStats() const;

    /** Persist the partition cache to options().cache_file (if set). */
    std::size_t savePartitionCache();

  private:
    /** Shared per-technology explorer (stateless once built). */
    const PartitionExplorer &explorerFor(const Technology &tech3d);

    /** A RunRequest carrying this evaluator's budget and trace path. */
    RunRequest makeRequest(RunKind kind, const CoreDesign &design,
                           const WorkloadProfile &app) const;

    /** RAII cache-counter snapshot feeding lastBatchStats(). */
    class BatchScope;

    EvalOptions options_;
    EvalCache cache_;
    std::unique_ptr<ThreadPool> pool_;

    mutable std::mutex batch_stats_mutex_;
    BatchStats last_batch_stats_;

    std::mutex explorers_mutex_;
    std::map<std::string, std::unique_ptr<PartitionExplorer>>
        explorers_; ///< keyed by technology hash
};

/**
 * Build the Table 11 DesignFactory through an Evaluator: the three
 * partition sweeps (iso-layer M3D, hetero M3D, TSV3D) behind the
 * frequency derivations run as evaluator grid searches, so they hit
 * the memo cache - and, when options().cache_file is set, a warm
 * `.m3d_cache` skips them entirely.  Results are identical to
 * DesignFactory's own constructor (same primitives, same order).
 */
DesignFactory designFactory(Evaluator &ev);

} // namespace engine
} // namespace m3d

#endif // M3D_ENGINE_EVALUATOR_HH_
