/**
 * @file
 * Thread-safe memoization cache for the evaluation engine.
 *
 * Three key families share one cache object: partition design points
 * (PartitionResult), single-core runs (AppRun), and multicore runs
 * (MultiRun).  Each family keeps its own hit/miss counters so a sweep
 * can report exactly where its reuse came from.
 *
 * The partition family can be persisted to a small text file (one
 * entry per line; doubles stored as IEEE-754 bit patterns in hex, so
 * a round trip is bit-exact).  Run results hold large per-core
 * vectors and stay in-memory only.
 */

#ifndef M3D_ENGINE_EVAL_CACHE_HH_
#define M3D_ENGINE_EVAL_CACHE_HH_

#include <cstdint>
#include <iosfwd>
#include <shared_mutex>
#include <string>
#include <unordered_map>

#include "engine/eval_key.hh"
#include "power/sim_harness.hh"
#include "sram/explorer.hh"

namespace m3d {
namespace engine {

/** Hit/miss counters of one key family (or the sum of all). */
struct CacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;

    std::uint64_t lookups() const { return hits + misses; }
    double hitRate() const
    {
        return lookups() == 0
            ? 0.0
            : static_cast<double>(hits) /
              static_cast<double>(lookups());
    }
    CacheStats operator+(const CacheStats &o) const
    {
        return {hits + o.hits, misses + o.misses};
    }
    /** Counter delta since an earlier snapshot `o` of this family. */
    CacheStats operator-(const CacheStats &o) const
    {
        return {hits - o.hits, misses - o.misses};
    }
};

/** Shared, thread-safe result store. */
class EvalCache
{
  public:
    EvalCache() = default;
    EvalCache(const EvalCache &) = delete;
    EvalCache &operator=(const EvalCache &) = delete;

    // Partition design points.
    bool lookupPartition(const EvalKey &key, PartitionResult *out);
    void storePartition(const EvalKey &key, const PartitionResult &r);

    // Single-core runs.
    bool lookupRun(const EvalKey &key, AppRun *out);
    void storeRun(const EvalKey &key, const AppRun &r);

    // Multicore runs.
    bool lookupMulti(const EvalKey &key, MultiRun *out);
    void storeMulti(const EvalKey &key, const MultiRun &r);

    CacheStats partitionStats() const;
    CacheStats runStats() const;
    CacheStats multiStats() const;
    /** All families summed. */
    CacheStats stats() const;

    std::size_t partitionEntries() const;

    /** Drop every entry and reset the counters. */
    void clear();

    /**
     * Load persisted partition entries (counters untouched).  A
     * missing file is a silent cold start; an existing file whose
     * header does not parse (truncated, torn, or from a different
     * schema version) is skipped with a warning - a corrupt cache
     * must never abort a sweep, only forfeit its reuse.
     * @return entries loaded; 0 in both cases above.
     */
    std::size_t loadPartitions(const std::string &path);

    /**
     * Persist the partition family atomically: the entries are
     * written to `<path>.tmp.<pid>` and renamed over `path`, so a
     * crash mid-write or two runs sharing one cache file can never
     * leave a truncated/torn cache behind - readers see either the
     * old complete file or the new complete file.
     * @return entries written; 0 (with a warning) on I/O failure.
     */
    std::size_t savePartitions(const std::string &path) const;

    // Stream versions (used by the tests; path versions wrap these).
    // `header_ok`, when given, reports whether the stream began with
    // a recognized cache header (distinguishes "empty cache" from
    // "corrupt file" for the path loader's warning).
    std::size_t loadPartitions(std::istream &in,
                               bool *header_ok=nullptr);
    std::size_t savePartitions(std::ostream &out) const;

  private:
    mutable std::shared_mutex mutex_;
    std::unordered_map<EvalKey, PartitionResult, EvalKeyHash>
        partitions_;
    std::unordered_map<EvalKey, AppRun, EvalKeyHash> runs_;
    std::unordered_map<EvalKey, MultiRun, EvalKeyHash> multis_;

    // Guarded by mutex_ (writers take the exclusive lock anyway, and
    // lookups mutate counters, so lookups lock exclusively too; the
    // critical sections are tiny next to an evaluation).
    CacheStats partition_stats_;
    CacheStats run_stats_;
    CacheStats multi_stats_;
};

} // namespace engine
} // namespace m3d

#endif // M3D_ENGINE_EVAL_CACHE_HH_
