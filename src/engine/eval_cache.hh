/**
 * @file
 * Thread-safe memoization cache for the evaluation engine.
 *
 * Four key families share one cache object: partition design points
 * (PartitionResult), single-core runs (AppRun), multicore runs
 * (MultiRun), and priced objective vectors (ObjectiveRecord - the
 * search layer's (frequency, epi, peak_c) triple keyed by design
 * digest).  Each family keeps its own hit/miss counters so a sweep
 * can report exactly where its reuse came from.
 *
 * Internally the store is split into kNumShards shards selected by
 * the top bits of the 128-bit key (the keys are FNV digests, so the
 * prefix is uniformly distributed).  Each shard carries its own lock
 * and its own counters: concurrent clients of a long-lived evaluator
 * (the m3dd daemon's drain cycles, its stats requests, its snapshot
 * writer) contend per shard instead of on one global mutex.
 *
 * The partition and objective families can be persisted in two
 * shapes:
 *
 *  - one text file (loadPartitions/savePartitions) - the historical
 *    single-file cache every sweep uses; doubles are stored as
 *    IEEE-754 bit patterns in hex, so a round trip is bit-exact;
 *  - one file per shard in a directory (loadShards/saveShards) - the
 *    m3dd daemon's snapshot shape.  Each shard file is written with
 *    the same tmp+rename machinery as the single file, so a crash
 *    mid-snapshot can tear at most nothing: every published shard is
 *    complete, and a corrupt or torn shard is skipped with a warning
 *    at load (forfeiting only that shard's reuse) and repaired by the
 *    next save.
 *
 * Persistence assumes a SINGLE WRITER per path/directory: concurrent
 * savers would interleave last-rename-wins per shard and could
 * publish a mix of generations (each file still complete).  The
 * daemon enforces one-writer-per-cache-dir with a lock file
 * (service/cache_lock.hh); ad-hoc sweeps sharing a single-file cache
 * tolerate the race because every generation is a superset of the
 * deterministic grid.  Run results hold large per-core vectors and
 * stay in-memory only.
 */

#ifndef M3D_ENGINE_EVAL_CACHE_HH_
#define M3D_ENGINE_EVAL_CACHE_HH_

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <shared_mutex>
#include <string>
#include <unordered_map>

#include "engine/eval_key.hh"
#include "power/sim_harness.hh"
#include "sram/explorer.hh"

namespace m3d {
namespace engine {

/** Hit/miss counters of one key family (or the sum of all). */
struct CacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;

    std::uint64_t lookups() const { return hits + misses; }
    double hitRate() const
    {
        return lookups() == 0
            ? 0.0
            : static_cast<double>(hits) /
              static_cast<double>(lookups());
    }
    CacheStats operator+(const CacheStats &o) const
    {
        return {hits + o.hits, misses + o.misses};
    }
    /** Counter delta since an earlier snapshot `o` of this family. */
    CacheStats operator-(const CacheStats &o) const
    {
        return {hits - o.hits, misses - o.misses};
    }
};

/**
 * A persisted objective vector: the search layer's priced axes,
 * keyed by the design digest.  Lives here (not in src/search) so the
 * cache can persist it without an upward dependency; the search
 * layer converts to/from its Objectives struct.  `yield` (yield@f,
 * in [0, 1]) was appended after the first three axes; legacy
 * three-field cache lines load with the neutral 1.0, and old readers
 * ignore the extra trailing token, so the families interoperate in
 * both directions.
 */
struct ObjectiveRecord
{
    double frequency = 0.0;
    double epi = 0.0;
    double peak_c = 0.0;
    double yield = 1.0;
};

/** Shared, thread-safe result store. */
class EvalCache
{
  public:
    /** Shard fan-out; also the file count of a sharded snapshot. */
    static constexpr int kNumShards = 16;

    EvalCache() = default;
    EvalCache(const EvalCache &) = delete;
    EvalCache &operator=(const EvalCache &) = delete;

    // Partition design points.
    bool lookupPartition(const EvalKey &key, PartitionResult *out);
    void storePartition(const EvalKey &key, const PartitionResult &r);

    // Single-core runs.
    bool lookupRun(const EvalKey &key, AppRun *out);
    void storeRun(const EvalKey &key, const AppRun &r);

    // Multicore runs.
    bool lookupMulti(const EvalKey &key, MultiRun *out);
    void storeMulti(const EvalKey &key, const MultiRun &r);

    // Priced objective vectors (persisted alongside partitions).
    bool lookupObjective(const EvalKey &key, ObjectiveRecord *out);
    void storeObjective(const EvalKey &key, const ObjectiveRecord &r);

    /**
     * Visit every cached objective vector (shard by shard, under the
     * shard's shared lock - the callback must not reenter the cache).
     * The surrogate strategy's warm start: seed the in-memory memo
     * from a persisted snapshot before the first batch.
     */
    void forEachObjective(
        const std::function<void(const EvalKey &,
                                 const ObjectiveRecord &)> &fn) const;

    CacheStats partitionStats() const;
    CacheStats runStats() const;
    CacheStats multiStats() const;
    CacheStats objectiveStats() const;
    /** All families summed. */
    CacheStats stats() const;

    std::size_t partitionEntries() const;
    std::size_t runEntries() const;
    std::size_t multiEntries() const;
    std::size_t objectiveEntries() const;

    /** Drop every entry and reset the counters. */
    void clear();

    /**
     * Load persisted partition + objective entries (counters
     * untouched).  A missing file is a silent cold start; an
     * existing file whose header does not parse (truncated, torn, or
     * from a different schema version) is skipped with a warning - a
     * corrupt cache must never abort a sweep, only forfeit its
     * reuse.  A key that appears more than once (hand-merged files,
     * a pre-shard snapshot replayed over a live cache) is
     * deduplicated last-writer-wins with a warning, not counted
     * twice.
     * @return distinct NEW entries loaded; 0 in both cases above.
     */
    std::size_t loadPartitions(const std::string &path);

    /**
     * Persist the partition + objective families atomically: the
     * entries are
     * written to `<path>.tmp.<pid>` and renamed over `path`, so a
     * crash mid-write or two runs sharing one cache file can never
     * leave a truncated/torn cache behind - readers see either the
     * old complete file or the new complete file.
     * @return entries written; 0 (with a warning) on I/O failure.
     */
    std::size_t savePartitions(const std::string &path) const;

    /**
     * Sharded snapshot: persist the partition family as
     * `<dir>/partition-NN.cache`, one file per shard, each written
     * atomically (tmp+rename).  Creates `dir` if needed.  The caller
     * must be the directory's single writer (see the file comment);
     * the m3dd daemon holds a service::CacheLock on `dir` for its
     * whole lifetime to enforce this.
     * @return entries written across all shards; a shard that fails
     *         to persist warns and contributes 0.
     */
    std::size_t saveShards(const std::string &dir) const;

    /**
     * Load a sharded snapshot: every `<dir>/partition-NN.cache` that
     * exists and parses.  A missing shard is a cold shard; a corrupt
     * shard is skipped with a warning and repaired (rewritten whole)
     * by the next saveShards().  Stale `*.tmp.*` files - the debris
     * of a writer killed mid-snapshot - are removed; the single-
     * writer lock makes that safe.  Entries land in the shard their
     * key selects regardless of which file carried them, and a key
     * duplicated across shard files (hand-merged snapshot dirs) is
     * deduplicated last-writer-wins with a warning instead of being
     * double-counted.
     * @return distinct new entries loaded.
     */
    std::size_t loadShards(const std::string &dir);

    /** Snapshot file of one shard index, e.g. "partition-03.cache". */
    static std::string shardFileName(int shard);

    // Stream versions (used by the tests and the daemon's in-memory
    // cache transfer; path versions wrap these).  `header_ok`, when
    // given, reports whether the stream began with a recognized
    // cache header (distinguishes "empty cache" from "corrupt file"
    // for the path loader's warning).  `replaced`, when given,
    // receives the number of already-present keys overwritten
    // last-writer-wins; the path wrappers warn when it is non-zero,
    // while the daemon's merge paths (which legitimately reload
    // mostly-duplicate entries) pass nullptr and stay silent.
    std::size_t loadPartitions(std::istream &in,
                               bool *header_ok=nullptr,
                               std::size_t *replaced=nullptr);
    std::size_t savePartitions(std::ostream &out) const;

  private:
    /** Shard selector: top bits of the uniformly-distributed digest. */
    static int shardOf(const EvalKey &key)
    {
        return static_cast<int>(key.hi >> 60) & (kNumShards - 1);
    }

    /** One lock's worth of store: all three families plus counters. */
    struct Shard
    {
        mutable std::shared_mutex mutex;
        std::unordered_map<EvalKey, PartitionResult, EvalKeyHash>
            partitions;
        std::unordered_map<EvalKey, AppRun, EvalKeyHash> runs;
        std::unordered_map<EvalKey, MultiRun, EvalKeyHash> multis;
        std::unordered_map<EvalKey, ObjectiveRecord, EvalKeyHash>
            objectives;

        // Guarded by mutex (lookups mutate counters, so they lock
        // exclusively; the critical sections are tiny next to an
        // evaluation).
        CacheStats partition_stats;
        CacheStats run_stats;
        CacheStats multi_stats;
        CacheStats objective_stats;
    };

    /** Serialize one shard's persisted entries (no header). */
    std::size_t saveShardEntries(std::ostream &out, int shard) const;

    Shard shards_[kNumShards];
};

} // namespace engine
} // namespace m3d

#endif // M3D_ENGINE_EVAL_CACHE_HH_
