#include "engine/eval_cache.hh"

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <system_error>
#include <vector>

#include "util/logging.hh"

namespace m3d {
namespace engine {

namespace {

// Bump when the serialized layout changes; old files are ignored.
const char *const kFileHeader = "m3d-eval-cache v1";

std::string
doubleHex(double v)
{
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    char buf[20];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(bits));
    return buf;
}

bool
hexDouble(const std::string &s, double *out)
{
    if (s.size() != 16)
        return false;
    char *end = nullptr;
    const std::uint64_t bits = std::strtoull(s.c_str(), &end, 16);
    if (end != s.c_str() + 16)
        return false;
    std::memcpy(out, &bits, sizeof(*out));
    return true;
}

/** Space-safe field encoding for free-form names. */
std::string
encodeName(const std::string &name)
{
    std::string out;
    for (char c : name) {
        if (c == ' ')
            out += "%20";
        else if (c == '%')
            out += "%25";
        else
            out += c;
    }
    return out.empty() ? "%00" : out;
}

std::string
decodeName(const std::string &field)
{
    if (field == "%00")
        return "";
    std::string out;
    for (std::size_t i = 0; i < field.size(); ++i) {
        if (field[i] == '%' && i + 2 < field.size()) {
            if (field.compare(i, 3, "%20") == 0) {
                out += ' ';
                i += 2;
                continue;
            }
            if (field.compare(i, 3, "%25") == 0) {
                out += '%';
                i += 2;
                continue;
            }
        }
        out += field[i];
    }
    return out;
}

void
writeMetrics(std::ostream &out, const ArrayMetrics &m)
{
    out << ' ' << doubleHex(m.access_latency)
        << ' ' << doubleHex(m.access_energy)
        << ' ' << doubleHex(m.write_energy)
        << ' ' << doubleHex(m.area)
        << ' ' << doubleHex(m.leakage_power)
        << ' ' << doubleHex(m.routing_delay)
        << ' ' << doubleHex(m.decode_delay)
        << ' ' << doubleHex(m.wordline_delay)
        << ' ' << doubleHex(m.bitline_delay)
        << ' ' << doubleHex(m.sense_delay)
        << ' ' << doubleHex(m.output_delay)
        << ' ' << doubleHex(m.cam_search_delay);
}

bool
readMetrics(std::istringstream &in, ArrayMetrics *m)
{
    std::string f[12];
    for (std::string &s : f) {
        if (!(in >> s))
            return false;
    }
    return hexDouble(f[0], &m->access_latency) &&
           hexDouble(f[1], &m->access_energy) &&
           hexDouble(f[2], &m->write_energy) &&
           hexDouble(f[3], &m->area) &&
           hexDouble(f[4], &m->leakage_power) &&
           hexDouble(f[5], &m->routing_delay) &&
           hexDouble(f[6], &m->decode_delay) &&
           hexDouble(f[7], &m->wordline_delay) &&
           hexDouble(f[8], &m->bitline_delay) &&
           hexDouble(f[9], &m->sense_delay) &&
           hexDouble(f[10], &m->output_delay) &&
           hexDouble(f[11], &m->cam_search_delay);
}

void
writeEntry(std::ostream &out, const EvalKey &key,
           const PartitionResult &r)
{
    out << key.str() << ' ' << encodeName(r.cfg.name) << ' '
        << r.cfg.words << ' ' << r.cfg.bits << ' '
        << r.cfg.read_ports << ' ' << r.cfg.write_ports << ' '
        << r.cfg.banks << ' ' << (r.cfg.cam ? 1 : 0) << ' '
        << r.cfg.cam_tag_bits << ' '
        << static_cast<int>(r.spec.kind) << ' '
        << doubleHex(r.spec.bottom_share) << ' '
        << r.spec.bottom_ports << ' '
        << doubleHex(r.spec.top_access_scale) << ' '
        << doubleHex(r.spec.top_cell_scale);
    writeMetrics(out, r.planar);
    writeMetrics(out, r.stacked);
    out << '\n';
}

// Objective lines share the partition files, prefixed "obj " so the
// partition parser (whose first token is the key) rejects them and
// pre-objective readers of the same "m3d-eval-cache v1" format skip
// them as unparseable lines instead of misloading them.
const char *const kObjectiveTag = "obj";

void
writeObjectiveEntry(std::ostream &out, const EvalKey &key,
                    const ObjectiveRecord &r)
{
    out << kObjectiveTag << ' ' << key.str() << ' '
        << doubleHex(r.frequency) << ' ' << doubleHex(r.epi) << ' '
        << doubleHex(r.peak_c) << ' ' << doubleHex(r.yield) << '\n';
}

bool
parseObjectiveEntry(const std::string &line, EvalKey *key,
                    ObjectiveRecord *r)
{
    std::istringstream ls(line);
    std::string tag, key_text, f, epi, peak;
    if (!(ls >> tag >> key_text >> f >> epi >> peak) ||
        tag != kObjectiveTag)
        return false;
    if (!EvalKey::parse(key_text, key) ||
        !hexDouble(f, &r->frequency) || !hexDouble(epi, &r->epi) ||
        !hexDouble(peak, &r->peak_c))
        return false;
    // The yield axis was appended later; a legacy three-field line
    // loads with the neutral yield of 1.0.
    std::string yield;
    r->yield = 1.0;
    if (ls >> yield && !hexDouble(yield, &r->yield))
        return false;
    return true;
}

bool
parseEntry(const std::string &line, EvalKey *key, PartitionResult *r)
{
    std::istringstream ls(line);
    std::string key_text, name;
    int kind = 0, cam = 0;
    std::string share, access_scale, cell_scale;
    if (!(ls >> key_text >> name >> r->cfg.words >> r->cfg.bits >>
          r->cfg.read_ports >> r->cfg.write_ports >> r->cfg.banks >>
          cam >> r->cfg.cam_tag_bits >> kind >> share >>
          r->spec.bottom_ports >> access_scale >> cell_scale))
        return false;
    if (!EvalKey::parse(key_text, key) ||
        !hexDouble(share, &r->spec.bottom_share) ||
        !hexDouble(access_scale, &r->spec.top_access_scale) ||
        !hexDouble(cell_scale, &r->spec.top_cell_scale))
        return false;
    r->cfg.name = decodeName(name);
    r->cfg.cam = cam != 0;
    r->spec.kind = static_cast<PartitionKind>(kind);
    return readMetrics(ls, &r->planar) && readMetrics(ls, &r->stacked);
}

} // namespace

bool
EvalCache::lookupPartition(const EvalKey &key, PartitionResult *out)
{
    Shard &s = shards_[shardOf(key)];
    std::unique_lock lock(s.mutex);
    auto it = s.partitions.find(key);
    if (it == s.partitions.end()) {
        ++s.partition_stats.misses;
        return false;
    }
    ++s.partition_stats.hits;
    *out = it->second;
    return true;
}

void
EvalCache::storePartition(const EvalKey &key, const PartitionResult &r)
{
    Shard &s = shards_[shardOf(key)];
    std::unique_lock lock(s.mutex);
    s.partitions.emplace(key, r);
}

bool
EvalCache::lookupRun(const EvalKey &key, AppRun *out)
{
    Shard &s = shards_[shardOf(key)];
    std::unique_lock lock(s.mutex);
    auto it = s.runs.find(key);
    if (it == s.runs.end()) {
        ++s.run_stats.misses;
        return false;
    }
    ++s.run_stats.hits;
    *out = it->second;
    return true;
}

void
EvalCache::storeRun(const EvalKey &key, const AppRun &r)
{
    Shard &s = shards_[shardOf(key)];
    std::unique_lock lock(s.mutex);
    s.runs.emplace(key, r);
}

bool
EvalCache::lookupMulti(const EvalKey &key, MultiRun *out)
{
    Shard &s = shards_[shardOf(key)];
    std::unique_lock lock(s.mutex);
    auto it = s.multis.find(key);
    if (it == s.multis.end()) {
        ++s.multi_stats.misses;
        return false;
    }
    ++s.multi_stats.hits;
    *out = it->second;
    return true;
}

void
EvalCache::storeMulti(const EvalKey &key, const MultiRun &r)
{
    Shard &s = shards_[shardOf(key)];
    std::unique_lock lock(s.mutex);
    s.multis.emplace(key, r);
}

bool
EvalCache::lookupObjective(const EvalKey &key, ObjectiveRecord *out)
{
    Shard &s = shards_[shardOf(key)];
    std::unique_lock lock(s.mutex);
    auto it = s.objectives.find(key);
    if (it == s.objectives.end()) {
        ++s.objective_stats.misses;
        return false;
    }
    ++s.objective_stats.hits;
    *out = it->second;
    return true;
}

void
EvalCache::storeObjective(const EvalKey &key, const ObjectiveRecord &r)
{
    Shard &s = shards_[shardOf(key)];
    std::unique_lock lock(s.mutex);
    s.objectives.emplace(key, r);
}

void
EvalCache::forEachObjective(
    const std::function<void(const EvalKey &,
                             const ObjectiveRecord &)> &fn) const
{
    for (const Shard &s : shards_) {
        std::shared_lock lock(s.mutex);
        for (const auto &[key, r] : s.objectives)
            fn(key, r);
    }
}

CacheStats
EvalCache::partitionStats() const
{
    CacheStats total;
    for (const Shard &s : shards_) {
        std::shared_lock lock(s.mutex);
        total = total + s.partition_stats;
    }
    return total;
}

CacheStats
EvalCache::runStats() const
{
    CacheStats total;
    for (const Shard &s : shards_) {
        std::shared_lock lock(s.mutex);
        total = total + s.run_stats;
    }
    return total;
}

CacheStats
EvalCache::multiStats() const
{
    CacheStats total;
    for (const Shard &s : shards_) {
        std::shared_lock lock(s.mutex);
        total = total + s.multi_stats;
    }
    return total;
}

CacheStats
EvalCache::objectiveStats() const
{
    CacheStats total;
    for (const Shard &s : shards_) {
        std::shared_lock lock(s.mutex);
        total = total + s.objective_stats;
    }
    return total;
}

CacheStats
EvalCache::stats() const
{
    return partitionStats() + runStats() + multiStats() +
           objectiveStats();
}

std::size_t
EvalCache::partitionEntries() const
{
    std::size_t n = 0;
    for (const Shard &s : shards_) {
        std::shared_lock lock(s.mutex);
        n += s.partitions.size();
    }
    return n;
}

std::size_t
EvalCache::runEntries() const
{
    std::size_t n = 0;
    for (const Shard &s : shards_) {
        std::shared_lock lock(s.mutex);
        n += s.runs.size();
    }
    return n;
}

std::size_t
EvalCache::multiEntries() const
{
    std::size_t n = 0;
    for (const Shard &s : shards_) {
        std::shared_lock lock(s.mutex);
        n += s.multis.size();
    }
    return n;
}

std::size_t
EvalCache::objectiveEntries() const
{
    std::size_t n = 0;
    for (const Shard &s : shards_) {
        std::shared_lock lock(s.mutex);
        n += s.objectives.size();
    }
    return n;
}

void
EvalCache::clear()
{
    for (Shard &s : shards_) {
        std::unique_lock lock(s.mutex);
        s.partitions.clear();
        s.runs.clear();
        s.multis.clear();
        s.objectives.clear();
        s.partition_stats = {};
        s.run_stats = {};
        s.multi_stats = {};
        s.objective_stats = {};
    }
}

std::size_t
EvalCache::loadPartitions(const std::string &path)
{
    std::ifstream in(path);
    if (!in.is_open())
        return 0; // cold start: no cache yet
    bool header_ok = false;
    std::size_t replaced = 0;
    const std::size_t loaded = loadPartitions(in, &header_ok,
                                              &replaced);
    if (!header_ok) {
        M3D_WARN("partition cache '", path,
                 "' is corrupt or from an incompatible version; "
                 "skipping it and continuing cold");
    }
    if (replaced > 0) {
        M3D_WARN("partition cache '", path, "' carried ", replaced,
                 " duplicate key(s); kept the last occurrence of "
                 "each");
    }
    return loaded;
}

std::size_t
EvalCache::savePartitions(const std::string &path) const
{
    // Write-to-temp + atomic rename: a crash mid-write, or another
    // process saving the same path concurrently, must never publish
    // a truncated cache.  The pid suffix keeps concurrent writers
    // off each other's temp file; last rename wins with a complete
    // file either way.
    const std::string tmp =
        path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
    std::size_t written = 0;
    {
        std::ofstream out(tmp, std::ios::trunc);
        if (!out.is_open())
            return 0;
        written = savePartitions(out);
        out.flush();
        if (!out) {
            std::error_code ec;
            std::filesystem::remove(tmp, ec);
            M3D_WARN("failed writing partition cache temp file '",
                     tmp, "'; cache not persisted");
            return 0;
        }
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        std::filesystem::remove(tmp, ec);
        M3D_WARN("failed renaming partition cache into place at '",
                 path, "'; cache not persisted");
        return 0;
    }
    return written;
}

std::string
EvalCache::shardFileName(int shard)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "partition-%02d.cache", shard);
    return buf;
}

std::size_t
EvalCache::saveShards(const std::string &dir) const
{
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);

    std::size_t written = 0;
    for (int i = 0; i < kNumShards; ++i) {
        const std::string path =
            (std::filesystem::path(dir) / shardFileName(i)).string();
        const std::string tmp =
            path + ".tmp." +
            std::to_string(static_cast<long>(::getpid()));
        std::size_t shard_written = 0;
        {
            std::ofstream out(tmp, std::ios::trunc);
            if (!out.is_open()) {
                M3D_WARN("cannot open cache shard temp file '", tmp,
                         "'; shard ", i, " not persisted");
                continue;
            }
            out << kFileHeader << '\n';
            shard_written = saveShardEntries(out, i);
            out.flush();
            if (!out) {
                std::filesystem::remove(tmp, ec);
                M3D_WARN("failed writing cache shard temp file '",
                         tmp, "'; shard ", i, " not persisted");
                continue;
            }
        }
        std::filesystem::rename(tmp, path, ec);
        if (ec) {
            std::filesystem::remove(tmp, ec);
            M3D_WARN("failed renaming cache shard into place at '",
                     path, "'; shard ", i, " not persisted");
            ec.clear();
            continue;
        }
        written += shard_written;
    }
    return written;
}

std::size_t
EvalCache::loadShards(const std::string &dir)
{
    std::error_code ec;
    if (!std::filesystem::is_directory(dir, ec))
        return 0; // cold start: no snapshot yet

    // Sweep the debris of a writer killed mid-snapshot.  The shard
    // files themselves are always complete (tmp+rename), but the tmp
    // file the dead writer was filling can linger; under the single-
    // writer contract nobody else can be mid-save here, so removal
    // is safe.
    for (const auto &entry :
         std::filesystem::directory_iterator(dir, ec)) {
        const std::string name = entry.path().filename().string();
        if (name.find(".cache.tmp.") != std::string::npos) {
            M3D_WARN("removing stale cache snapshot temp file '",
                     entry.path().string(),
                     "' left by an interrupted save");
            std::filesystem::remove(entry.path(), ec);
        }
    }

    std::size_t loaded = 0;
    for (int i = 0; i < kNumShards; ++i) {
        const std::string path =
            (std::filesystem::path(dir) / shardFileName(i)).string();
        std::ifstream in(path);
        if (!in.is_open())
            continue; // cold shard
        bool header_ok = false;
        std::size_t replaced = 0;
        const std::size_t n = loadPartitions(in, &header_ok,
                                             &replaced);
        if (!header_ok) {
            M3D_WARN("cache shard '", path,
                     "' is corrupt or from an incompatible version; "
                     "skipping it (the next snapshot repairs it)");
            continue;
        }
        if (replaced > 0) {
            // A hand-merged or pre-shard snapshot dir can carry one
            // key in several files; keep the last and say so instead
            // of double-counting it in the entry totals.
            M3D_WARN("cache shard '", path, "' carried ", replaced,
                     " key(s) already loaded from this snapshot; "
                     "kept the last occurrence of each");
        }
        loaded += n;
    }
    return loaded;
}

std::size_t
EvalCache::loadPartitions(std::istream &in, bool *header_ok,
                          std::size_t *replaced)
{
    std::string line;
    const bool have_line = static_cast<bool>(std::getline(in, line));
    // A completely empty stream is a cold start (m3dtool's
    // writability probe creates 0-byte cache files), not corruption.
    const bool good_header =
        (have_line && line == kFileHeader) ||
        (!have_line && line.empty());
    if (header_ok)
        *header_ok = good_header;
    if (replaced)
        *replaced = 0;
    if (!have_line || line != kFileHeader)
        return 0;

    std::size_t loaded = 0;
    std::size_t overwritten = 0;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        EvalKey key;
        // Route by the key, not by the file the entry came from: a
        // renamed/merged snapshot still lands every entry in the
        // shard its key selects.  A key already present (duplicate
        // lines, a pre-shard snapshot replayed over a live cache) is
        // overwritten last-writer-wins and counted separately - it
        // is not a new entry.
        ObjectiveRecord obj;
        if (parseObjectiveEntry(line, &key, &obj)) {
            Shard &s = shards_[shardOf(key)];
            std::unique_lock lock(s.mutex);
            if (s.objectives.insert_or_assign(key, obj).second)
                ++loaded;
            else
                ++overwritten;
            continue;
        }
        PartitionResult r;
        if (!parseEntry(line, &key, &r))
            continue;
        Shard &s = shards_[shardOf(key)];
        std::unique_lock lock(s.mutex);
        if (s.partitions.insert_or_assign(key, std::move(r)).second)
            ++loaded;
        else
            ++overwritten;
    }
    if (replaced)
        *replaced = overwritten;
    return loaded;
}

std::size_t
EvalCache::saveShardEntries(std::ostream &out, int shard) const
{
    const Shard &s = shards_[shard];
    std::shared_lock lock(s.mutex);
    for (const auto &[key, r] : s.partitions)
        writeEntry(out, key, r);
    for (const auto &[key, r] : s.objectives)
        writeObjectiveEntry(out, key, r);
    return s.partitions.size() + s.objectives.size();
}

std::size_t
EvalCache::savePartitions(std::ostream &out) const
{
    out << kFileHeader << '\n';
    std::size_t written = 0;
    for (int i = 0; i < kNumShards; ++i)
        written += saveShardEntries(out, i);
    return written;
}

} // namespace engine
} // namespace m3d
