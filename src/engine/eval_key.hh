/**
 * @file
 * Canonical cache keys for the evaluation engine.
 *
 * A key is a 128-bit FNV-1a digest over a canonical byte stream of
 * every model input that can change the result:
 *
 *  - partition evaluations hash (Technology, ArrayConfig,
 *    PartitionSpec);
 *  - single-core runs hash (CoreDesign, WorkloadProfile, SimBudget);
 *  - multicore runs hash the same triple under a distinct domain tag.
 *
 * Canonicalization rules (documented here because cache correctness
 * depends on them):
 *  - doubles are hashed by their IEEE-754 bit pattern, never by a
 *    formatted representation, so distinct values never collide and
 *    equal values always match;
 *  - strings are hashed length-prefixed;
 *  - every struct field is hashed in declaration order, and each
 *    domain (partition / single run / multi run) starts from its own
 *    tag so the same bytes in different domains produce different
 *    keys;
 *  - std::map members (CoreDesign::partitions) iterate in key order,
 *    which is already canonical.
 *
 * Keys deliberately hash the *inputs*, not object identity: two
 * Technology objects built independently with the same parameters
 * share cache entries, which is what makes the on-disk cache useful
 * across processes.
 */

#ifndef M3D_ENGINE_EVAL_KEY_HH_
#define M3D_ENGINE_EVAL_KEY_HH_

#include <cstdint>
#include <functional>
#include <string>

#include "core/design.hh"
#include "power/sim_harness.hh"
#include "sram/array3d.hh"
#include "tech/technology.hh"
#include "workload/profile.hh"

namespace m3d {
namespace engine {

/** 128-bit digest used as a cache key. */
struct EvalKey
{
    std::uint64_t hi = 0;
    std::uint64_t lo = 0;

    bool operator==(const EvalKey &o) const
    {
        return hi == o.hi && lo == o.lo;
    }
    bool operator!=(const EvalKey &o) const { return !(*this == o); }

    /** Fixed-width hex rendering, e.g. for the on-disk cache. */
    std::string str() const;

    /** Parse str()'s format; returns false on malformed input. */
    static bool parse(const std::string &text, EvalKey *out);
};

struct EvalKeyHash
{
    std::size_t operator()(const EvalKey &k) const
    {
        return static_cast<std::size_t>(k.hi ^ (k.lo * 0x9e3779b97f4a7c15ull));
    }
};

/**
 * Incremental canonical hasher: two independent FNV-1a 64-bit streams
 * with different offset bases, fed identically.
 */
class KeyBuilder
{
  public:
    explicit KeyBuilder(std::uint64_t domain_tag);

    KeyBuilder &add(std::uint64_t v);
    KeyBuilder &add(std::int64_t v);
    KeyBuilder &add(int v);
    KeyBuilder &add(bool v);
    KeyBuilder &add(double v); ///< IEEE-754 bit pattern
    KeyBuilder &add(const std::string &s); ///< length-prefixed

    EvalKey key() const { return {hi_, lo_}; }

  private:
    KeyBuilder &byte(std::uint8_t b);

    std::uint64_t hi_;
    std::uint64_t lo_;
};

// Component hashers (append the component to an existing stream).
void hashTechnology(KeyBuilder &kb, const Technology &tech);
void hashArrayConfig(KeyBuilder &kb, const ArrayConfig &cfg);
void hashPartitionSpec(KeyBuilder &kb, const PartitionSpec &spec);
void hashCoreDesign(KeyBuilder &kb, const CoreDesign &design);
void hashWorkloadProfile(KeyBuilder &kb, const WorkloadProfile &p);
void hashSimBudget(KeyBuilder &kb, const SimBudget &b);

/** Key of one (technology, structure, partition point) evaluation. */
EvalKey partitionKey(const Technology &tech2d, const Technology &tech3d,
                     const ArrayConfig &cfg, const PartitionSpec &spec);

/** Key of one single-core (design, app, budget) run. */
EvalKey singleRunKey(const CoreDesign &design,
                     const WorkloadProfile &profile,
                     const SimBudget &budget);

/** Key of one multicore (design, app, budget) run. */
EvalKey multiRunKey(const CoreDesign &design,
                    const WorkloadProfile &profile,
                    const SimBudget &budget);

} // namespace engine
} // namespace m3d

#endif // M3D_ENGINE_EVAL_KEY_HH_
