/**
 * @file
 * Canonical cache keys for the evaluation engine.
 *
 * The 128-bit digest machinery itself (Key128/KeyBuilder) lives in
 * util/key128.hh so that layers below the engine - notably the
 * workload trace registry - can key on the same canonical hashes;
 * this header aliases it into the engine namespace and supplies the
 * engine's domain keys:
 *
 *  - partition evaluations hash (Technology, ArrayConfig,
 *    PartitionSpec);
 *  - single-core runs hash (CoreDesign, WorkloadProfile, SimBudget);
 *  - multicore runs hash the same triple under a distinct domain tag.
 *
 * See util/key128.hh for the canonicalization rules.
 */

#ifndef M3D_ENGINE_EVAL_KEY_HH_
#define M3D_ENGINE_EVAL_KEY_HH_

#include <cstdint>
#include <functional>
#include <string>

#include "core/design.hh"
#include "power/sim_harness.hh"
#include "sram/array3d.hh"
#include "tech/technology.hh"
#include "util/key128.hh"
#include "workload/profile.hh"

namespace m3d {
namespace engine {

/** 128-bit digest used as a cache key. */
using EvalKey = ::m3d::Key128;
using EvalKeyHash = ::m3d::Key128Hash;

/** Incremental canonical hasher (see util/key128.hh). */
using KeyBuilder = ::m3d::KeyBuilder;

// Component hashers (append the component to an existing stream).
void hashTechnology(KeyBuilder &kb, const Technology &tech);
void hashArrayConfig(KeyBuilder &kb, const ArrayConfig &cfg);
void hashPartitionSpec(KeyBuilder &kb, const PartitionSpec &spec);
void hashCoreDesign(KeyBuilder &kb, const CoreDesign &design);
void hashSimBudget(KeyBuilder &kb, const SimBudget &b);

/** Forwarder to the workload layer's canonical profile hasher. */
inline void
hashWorkloadProfile(KeyBuilder &kb, const WorkloadProfile &p)
{
    ::m3d::hashProfile(kb, p);
}

/** Key of one (technology, structure, partition point) evaluation. */
EvalKey partitionKey(const Technology &tech2d, const Technology &tech3d,
                     const ArrayConfig &cfg, const PartitionSpec &spec);

/** Key of one single-core (design, app, budget) run. */
EvalKey singleRunKey(const CoreDesign &design,
                     const WorkloadProfile &profile,
                     const SimBudget &budget);

/** Key of one multicore (design, app, budget) run. */
EvalKey multiRunKey(const CoreDesign &design,
                    const WorkloadProfile &profile,
                    const SimBudget &budget);

} // namespace engine
} // namespace m3d

#endif // M3D_ENGINE_EVAL_KEY_HH_
