/**
 * @file
 * Circuit-level delay and energy primitives shared by the SRAM and
 * logic models: Elmore RC stage delay, Horowitz's slope-aware gate
 * delay, and logical-effort buffer chains (the CACTI toolbox).
 */

#ifndef M3D_CIRCUIT_DELAY_HH_
#define M3D_CIRCUIT_DELAY_HH_

#include "tech/process.hh"

namespace m3d {

/**
 * Delay of a driver with output resistance `r_drv` driving a
 * distributed RC wire (total `r_wire`, `c_wire`) terminated by a
 * lumped `c_load`:
 *
 *   0.69 * r_drv * (c_wire + c_load) + 0.38 * r_wire * c_wire
 *   + 0.69 * r_wire * c_load
 *
 * @return Delay in seconds.
 */
double rcStageDelay(double r_drv, double r_wire, double c_wire,
                    double c_load);

/**
 * Horowitz approximation for the delay of a gate with input rise time
 * `t_rise`, output time constant `tf`, and switching threshold
 * fraction `v_th` (of Vdd).
 */
double horowitz(double t_rise, double tf, double v_th=0.5);

/**
 * Delay and input capacitance of a logical-effort-sized buffer chain
 * that lets a minimum inverter drive `c_load`.
 */
struct BufferChain
{
    int stages;        ///< number of inverters in the chain
    double delay;      ///< total chain delay (s)
    double energy;     ///< switching energy of one output transition (J)
    double c_in;       ///< input capacitance presented to the source (F)
};

/**
 * Size a buffer chain in process `p` to drive `c_load`, using a stage
 * effort of ~4 (the classic optimum).
 *
 * @param p Process corner providing min-inverter R and C.
 * @param c_load Final load capacitance (F).
 */
BufferChain sizeBufferChain(const ProcessCorner &p, double c_load);

/**
 * Complete driver-plus-wire stage: buffer chain sized for the total
 * load, then the wire RC.  This is the workhorse for wordlines,
 * bitlines, predecode wires, and bypass paths.
 */
struct DrivenWire
{
    double delay;   ///< total stage delay (s)
    double energy;  ///< dynamic energy of one transition (J)
};

/**
 * @param p Driving process corner.
 * @param r_wire Total wire resistance (ohm).
 * @param c_wire Total wire capacitance (F).
 * @param c_load Lumped far-end load (F).
 */
DrivenWire driveWire(const ProcessCorner &p, double r_wire, double c_wire,
                     double c_load);

} // namespace m3d

#endif // M3D_CIRCUIT_DELAY_HH_
