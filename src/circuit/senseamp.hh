/**
 * @file
 * Sense amplifier and comparator (CAM match) circuit constants.
 *
 * Sense amps resolve a small bitline swing; their delay is dominated
 * by the amplifier itself plus the time for the bitline to develop
 * the required differential, which the array model accounts for in
 * the bitline RC.  Here we keep the fixed components.
 */

#ifndef M3D_CIRCUIT_SENSEAMP_HH_
#define M3D_CIRCUIT_SENSEAMP_HH_

#include "tech/process.hh"

namespace m3d {

/** Latch-type sense amplifier. */
struct SenseAmp
{
    /** Resolution delay once the input differential is developed (s). */
    static double delay(const ProcessCorner &p);

    /** Energy per sense operation (J). */
    static double energy(const ProcessCorner &p);

    /** Required bitline swing as a fraction of Vdd before sensing. */
    static constexpr double required_swing = 0.10;
};

/** CAM match-line dynamic comparator. */
struct MatchLine
{
    /** Evaluation delay of the match pulldown chain (s). */
    static double evalDelay(const ProcessCorner &p);

    /** Energy to precharge + evaluate one match line of cap `c` (J). */
    static double energy(const ProcessCorner &p, double c_line);
};

} // namespace m3d

#endif // M3D_CIRCUIT_SENSEAMP_HH_
