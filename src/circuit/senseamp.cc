#include "circuit/senseamp.hh"

namespace m3d {

double
SenseAmp::delay(const ProcessCorner &p)
{
    // A latch-type amp resolves in roughly 1.5 FO4 of its process.
    return 1.5 * p.fo4Delay();
}

double
SenseAmp::energy(const ProcessCorner &p)
{
    // Cross-coupled pair plus precharge devices, ~6 min transistors.
    return 6.0 * p.switchEnergy();
}

double
MatchLine::evalDelay(const ProcessCorner &p)
{
    // Serial pulldown through two stacked transistors.
    return 1.0 * p.fo4Delay();
}

double
MatchLine::energy(const ProcessCorner &p, double c_line)
{
    return 0.5 * c_line * p.vdd * p.vdd + 2.0 * p.switchEnergy();
}

} // namespace m3d
