#include "circuit/delay.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace m3d {

double
rcStageDelay(double r_drv, double r_wire, double c_wire, double c_load)
{
    return 0.69 * r_drv * (c_wire + c_load) + 0.38 * r_wire * c_wire +
           0.69 * r_wire * c_load;
}

double
horowitz(double t_rise, double tf, double v_th)
{
    M3D_ASSERT(v_th > 0.0 && v_th < 1.0);
    if (t_rise <= 0.0)
        return tf * std::sqrt(std::log(1.0 / v_th) * std::log(1.0 / v_th));
    const double a = t_rise / tf;
    const double log_vth = std::log(v_th);
    return tf * std::sqrt(log_vth * log_vth + 2.0 * a * 0.5 * (1.0 - v_th));
}

BufferChain
sizeBufferChain(const ProcessCorner &p, double c_load)
{
    BufferChain chain;
    const double fanout = 4.0;
    const double ratio = std::max(c_load / p.c_gate, 1.0);
    // Optimal number of stages for stage effort ~4.
    int n = std::max(1, static_cast<int>(std::lround(
        std::log(ratio) / std::log(fanout))));
    const double stage_effort = std::pow(ratio, 1.0 / n);

    double delay = 0.0;
    double energy = 0.0;
    double width = 1.0;
    for (int i = 0; i < n; ++i) {
        const double next_c = (i == n - 1) ? c_load
                                           : p.c_gate * width * stage_effort;
        const double r_drv = p.r_on / width;
        delay += 0.69 * r_drv * (next_c + p.c_drain * width);
        energy += 0.5 * (next_c + p.c_drain * width) * p.vdd * p.vdd;
        width *= stage_effort;
    }

    chain.stages = n;
    chain.delay = delay;
    chain.energy = energy;
    chain.c_in = p.c_gate;
    return chain;
}

DrivenWire
driveWire(const ProcessCorner &p, double r_wire, double c_wire,
          double c_load)
{
    DrivenWire out{0.0, 0.0};
    const double total_c = c_wire + c_load;
    const double fanout = 4.0;
    const double ratio = std::max(total_c / p.c_gate, 1.0);
    const int n = std::max(1, static_cast<int>(std::lround(
        std::log(ratio) / std::log(fanout))));
    const double stage_effort = std::pow(ratio, 1.0 / n);

    // Stages 0..n-2 drive the next inverter's gate; stage n-1 drives
    // the wire itself.
    double width = 1.0;
    for (int i = 0; i + 1 < n; ++i) {
        const double next_c = p.c_gate * width * stage_effort;
        const double r_drv = p.r_on / width;
        out.delay += 0.69 * r_drv * (next_c + p.c_drain * width);
        out.energy += 0.5 * (next_c + p.c_drain * width) * p.vdd * p.vdd;
        width *= stage_effort;
    }
    const double r_final = p.r_on / width;
    out.delay += rcStageDelay(r_final, r_wire, c_wire,
                              c_load + p.c_drain * width);
    out.energy += 0.5 * (total_c + p.c_drain * width) * p.vdd * p.vdd;
    return out;
}

} // namespace m3d
