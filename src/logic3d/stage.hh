/**
 * @file
 * Logic pipeline-stage model (Section 3.1 / 4.1).
 *
 * The paper synthesized a 64-bit adder plus bypass path with the
 * Lim et al. M3D place-and-route flow and found: a two-layer layout
 * of one ALU runs 15% faster with a 41% smaller footprint; a cluster
 * of four ALUs with their (quadratically growing) bypass network runs
 * 28% faster with 10% lower energy.  We reproduce those results with
 * a gate-plus-wire stage model calibrated to the same two anchor
 * points, and use the adder netlist to verify that hetero-layer
 * placement (critical paths below) costs no stage delay.
 */

#ifndef M3D_LOGIC3D_STAGE_HH_
#define M3D_LOGIC3D_STAGE_HH_

#include "logic3d/netlist.hh"
#include "tech/technology.hh"

namespace m3d {

/** Gains of a two-layer logic stage vs its 2D layout. */
struct LogicStageGains
{
    double freq_gain = 0.0;        ///< fractional frequency increase
    double energy_reduction = 0.0; ///< fractional switching-energy cut
    double footprint_reduction = 0.0;
    double delay_2d = 0.0;         ///< stage delay, 2D (s)
    double delay_3d = 0.0;         ///< stage delay, two layers (s)
    double hetero_penalty = 0.0;   ///< extra delay fraction from the
                                   ///< slow top layer after placement
};

/** Analytical stage model bound to a technology. */
class LogicStageModel
{
  public:
    explicit LogicStageModel(const Technology &tech);

    /**
     * ALU-plus-bypass cluster gains for iso-performance layers.
     *
     * @param n_alus Number of ALUs sharing the bypass network.
     */
    LogicStageGains aluBypass(int n_alus) const;

    /**
     * Same cluster on hetero layers: runs the criticality-driven
     * layer assignment on the adder netlist and charges whatever
     * residual penalty the placement could not hide.
     */
    LogicStageGains aluBypassHetero(int n_alus) const;

    /** Stage delay of the 2D cluster (s). */
    double stageDelay2D(int n_alus) const;

    /** Wire fraction of the 2D stage delay (diagnostic). */
    double wireFraction(int n_alus) const;

  private:
    /** Bypass wire delay as a fraction of gate delay. */
    static double wireOverGate(int n_alus);

    Technology tech_;
};

} // namespace m3d

#endif // M3D_LOGIC3D_STAGE_HH_
