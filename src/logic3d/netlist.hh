/**
 * @file
 * A light-weight gate netlist with static timing analysis and
 * criticality-driven two-layer assignment (Section 4.1).
 *
 * The hetero-layer logic technique is: place gates whose slack
 * exceeds the top layer's slowdown in the top layer (up to ~50% of
 * the area), leaving the critical paths in the fast bottom layer, so
 * the stage delay does not degrade at all.
 */

#ifndef M3D_LOGIC3D_NETLIST_HH_
#define M3D_LOGIC3D_NETLIST_HH_

#include <string>
#include <vector>

#include "tech/process.hh"

namespace m3d {

/** One combinational gate (delays in units of FO4). */
struct Gate
{
    std::string name;
    double delay_fo4 = 1.0;      ///< intrinsic delay in FO4 units
    double area_units = 1.0;     ///< relative area
    std::vector<int> fanin;      ///< driving gate ids (empty = input)
    Layer layer = Layer::Bottom; ///< current assignment
};

/** Results of static timing analysis. */
struct TimingReport
{
    double critical_delay_fo4 = 0.0; ///< longest path (FO4)
    std::vector<double> arrival;     ///< per-gate arrival times
    std::vector<double> slack;       ///< per-gate slack
    std::vector<int> critical_path;  ///< gate ids along one critical path
};

/** Outcome of a two-layer assignment. */
struct LayerAssignment
{
    double top_fraction = 0.0;      ///< fraction of area placed on top
    double delay_fo4 = 0.0;         ///< stage delay after assignment
    double delay_penalty = 0.0;     ///< fractional slowdown vs 2D
    int gates_top = 0;
    int gates_bottom = 0;
};

/**
 * A DAG of gates.  Gates must be added in topological order (fanins
 * refer to already-added gates).
 */
class Netlist
{
  public:
    /** Add a gate; returns its id. @pre fanins already added. */
    int addGate(std::string name, double delay_fo4, double area_units,
                std::vector<int> fanin);

    std::size_t size() const { return gates_.size(); }
    const Gate &gate(int id) const { return gates_[id]; }

    /** Longest-path timing with per-gate slack. */
    TimingReport analyze() const;

    /**
     * Timing when top-layer gates are slowed by `top_slowdown`
     * (e.g. 0.17).
     */
    TimingReport analyzeHetero(double top_slowdown) const;

    /** Fraction of gates with slack below `threshold_fo4`. */
    double criticalFraction(double threshold_fo4) const;

    /**
     * Greedy hetero-layer assignment: move the highest-slack gates to
     * the top layer until `target_top_fraction` of the area is there
     * or no gate can move without hurting the critical path by more
     * than `tolerance`.
     *
     * @param top_slowdown Fractional top-layer gate slowdown.
     * @param target_top_fraction Desired area share on top (~0.5).
     * @param tolerance Allowed fractional delay increase (default 0).
     */
    LayerAssignment assignLayers(double top_slowdown,
                                 double target_top_fraction,
                                 double tolerance=1e-9);

    /** Total area units. */
    double totalArea() const;

  private:
    std::vector<Gate> gates_;
};

} // namespace m3d

#endif // M3D_LOGIC3D_NETLIST_HH_
