/**
 * @file
 * Select-logic arbitration tree (Section 4.4.1).
 *
 * Instruction select is a multi-level arbiter: a Request phase
 * propagates ready signals up the tree, and a Grant phase descends.
 * At each level the grant splits into *local grant generation*
 * (compare the children's priorities - computed in parallel with the
 * request propagation, so it has slack) and *arbiter grant
 * generation* (AND the local winner with the incoming grant - on the
 * critical path).  The paper therefore places the local grant logic
 * in the slow top layer and keeps the request phase plus the grant
 * AND chain in the bottom layer, preserving the iso-layer latency.
 */

#ifndef M3D_LOGIC3D_SELECT_TREE_HH_
#define M3D_LOGIC3D_SELECT_TREE_HH_

#include "logic3d/netlist.hh"

namespace m3d {

/** Arbitration-tree generator. */
class SelectTree
{
  public:
    /**
     * Build the netlist of one select port.
     *
     * @param entries Issue-queue entries arbitrated over (84 in
     *        Table 9).
     * @param radix Children per arbiter node.
     */
    static Netlist build(int entries=84, int radix=4);
};

} // namespace m3d

#endif // M3D_LOGIC3D_SELECT_TREE_HH_
