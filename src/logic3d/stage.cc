#include "logic3d/stage.hh"

#include <cmath>

#include "logic3d/adder.hh"
#include "util/logging.hh"

namespace m3d {

namespace {

// Calibration anchors from the paper's Section 3.1 experiments with
// the Lim et al. M3D flow [39, 44]:
//   n=1 ALU:  +15% frequency, 41% footprint reduction
//   n=4 ALUs: +28% frequency, 10% energy reduction, 41% footprint
// Solving the gate+wire model against the two frequency anchors gives
// a single-ALU wire/gate ratio of 0.353 growing as n^0.568 (the total
// bypass length grows quadratically, the critical span sub-linearly).
constexpr double kWireOverGate1 = 0.353;
constexpr double kWireGrowthExp = 0.568;
// Folding onto two layers roughly halves the critical bypass span.
constexpr double kWireReduction3D = 0.5;
// Switching energy: wire share at n=1 and its 3D reduction, anchored
// to the 10% cluster-level saving at n=4.
constexpr double kWireEnergy1 = 0.114;
constexpr double kFootprintReduction = 0.41;

} // namespace

LogicStageModel::LogicStageModel(const Technology &tech) : tech_(tech)
{
}

double
LogicStageModel::wireOverGate(int n_alus)
{
    M3D_ASSERT(n_alus >= 1);
    return kWireOverGate1 *
           std::pow(static_cast<double>(n_alus), kWireGrowthExp);
}

double
LogicStageModel::stageDelay2D(int n_alus) const
{
    Netlist adder = CarrySkipAdder::build();
    const double gate_fo4 = adder.analyze().critical_delay_fo4;
    const double gate_delay =
        gate_fo4 * tech_.bottom_process.fo4Delay();
    return gate_delay * (1.0 + wireOverGate(n_alus));
}

double
LogicStageModel::wireFraction(int n_alus) const
{
    const double w = wireOverGate(n_alus);
    return w / (1.0 + w);
}

LogicStageGains
LogicStageModel::aluBypass(int n_alus) const
{
    LogicStageGains out;
    const double w = wireOverGate(n_alus);
    const double d2 = stageDelay2D(n_alus);
    const double gate_delay = d2 / (1.0 + w);
    const double d3 = gate_delay * (1.0 + kWireReduction3D * w);

    out.delay_2d = d2;
    out.delay_3d = d3;
    out.freq_gain = d2 / d3 - 1.0;
    out.footprint_reduction = kFootprintReduction;

    const double e_wire = kWireEnergy1 *
        std::pow(static_cast<double>(n_alus), kWireGrowthExp);
    out.energy_reduction =
        (1.0 - kWireReduction3D) * e_wire / (1.0 + e_wire);
    return out;
}

LogicStageGains
LogicStageModel::aluBypassHetero(int n_alus) const
{
    LogicStageGains out = aluBypass(n_alus);
    if (tech_.top_layer_slowdown <= 0.0)
        return out;

    // Verify on the adder netlist that moving ~50% of the gates to
    // the slow top layer leaves the critical path intact.
    Netlist adder = CarrySkipAdder::build();
    LayerAssignment asg =
        adder.assignLayers(tech_.top_layer_slowdown, 0.5);
    out.hetero_penalty = asg.delay_penalty;
    out.delay_3d *= 1.0 + asg.delay_penalty;
    out.freq_gain = out.delay_2d / out.delay_3d - 1.0;
    return out;
}

} // namespace m3d
