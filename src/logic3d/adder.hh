/**
 * @file
 * Generator for the 64-bit carry-skip adder of Figure 5, the paper's
 * running example of a mostly-logic execution stage.  The critical
 * path rips through the LSB block, then the skip-mux chain, then the
 * MSB sum; propagate/sum blocks far from the LSB have large slack and
 * are the natural top-layer residents.
 */

#ifndef M3D_LOGIC3D_ADDER_HH_
#define M3D_LOGIC3D_ADDER_HH_

#include "logic3d/netlist.hh"

namespace m3d {

/** Carry-skip adder generator. */
class CarrySkipAdder
{
  public:
    /**
     * Build the netlist.
     *
     * @param bits Total width (64 in the paper).
     * @param block_bits Bits per skip block (4 in the paper).
     */
    static Netlist build(int bits=64, int block_bits=4);
};

} // namespace m3d

#endif // M3D_LOGIC3D_ADDER_HH_
