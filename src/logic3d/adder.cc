#include "logic3d/adder.hh"

#include <string>

#include "util/logging.hh"

namespace m3d {

Netlist
CarrySkipAdder::build(int bits, int block_bits)
{
    M3D_ASSERT(bits > 0 && block_bits > 0 && bits % block_bits == 0,
               "width must be a multiple of the block size");
    const int blocks = bits / block_bits;
    Netlist nl;

    int carry_in = nl.addGate("cin", 0.0, 0.1, {});
    for (int b = 0; b < blocks; ++b) {
        const std::string tag = "b" + std::to_string(b);

        // Per-bit propagate/generate from the primary inputs.
        std::vector<int> p(block_bits), g(block_bits);
        for (int i = 0; i < block_bits; ++i) {
            p[i] = nl.addGate(tag + ".p" + std::to_string(i), 1.0, 1.0,
                              {});
            g[i] = nl.addGate(tag + ".g" + std::to_string(i), 1.0, 1.0,
                              {});
        }

        // Ripple carry inside the block.  The carry-skip trick makes
        // the path from the incoming carry through the internal
        // ripple a FALSE path: if the block propagates, the skip mux
        // takes the incoming carry directly; if it does not, the
        // internal carry is generated locally without needing the
        // incoming carry.  Only block 0 ripples from the true carry
        // input (Figure 5's shaded path).
        std::vector<int> carry(block_bits + 1);
        carry[0] = b == 0
            ? carry_in
            : nl.addGate(tag + ".kill", 0.0, 0.1, {});
        for (int i = 0; i < block_bits; ++i) {
            carry[i + 1] =
                nl.addGate(tag + ".c" + std::to_string(i + 1), 1.0, 1.2,
                           {g[i], p[i], carry[i]});
        }

        // Block propagate (AND tree over the p bits).
        int block_p = nl.addGate(tag + ".P", 1.0, 1.0, p);

        // Skip mux: block carry-out picks between the incoming carry
        // (skip) and the locally generated ripple carry-out.
        int mux = nl.addGate(tag + ".skip", 1.0, 1.2,
                             {block_p, carry_in, carry[block_bits]});

        // Per-bit sums; they consume the selected carry, so the sums
        // of the last block sit at the end of the mux chain.
        for (int i = 0; i < block_bits; ++i) {
            nl.addGate(tag + ".s" + std::to_string(i), 1.0, 1.0,
                       {p[i], carry[i], carry_in});
        }

        carry_in = mux;
    }

    // Final carry-out consumer (e.g. the flags logic).
    nl.addGate("cout", 1.0, 1.0, {carry_in});
    return nl;
}

} // namespace m3d
