#include "logic3d/netlist.hh"

#include <algorithm>
#include <numeric>

#include "util/logging.hh"

namespace m3d {

int
Netlist::addGate(std::string name, double delay_fo4, double area_units,
                 std::vector<int> fanin)
{
    const int id = static_cast<int>(gates_.size());
    for (int f : fanin) {
        M3D_ASSERT(f >= 0 && f < id,
                   "fanin must reference earlier gates (topological "
                   "insertion order)");
    }
    Gate g;
    g.name = std::move(name);
    g.delay_fo4 = delay_fo4;
    g.area_units = area_units;
    g.fanin = std::move(fanin);
    gates_.push_back(std::move(g));
    return id;
}

namespace {

/** Longest-path analysis with a per-gate delay functor. */
template <typename DelayFn>
TimingReport
analyzeWith(const std::vector<Gate> &gates, DelayFn &&delay_of)
{
    TimingReport rep;
    const std::size_t n = gates.size();
    rep.arrival.assign(n, 0.0);
    rep.slack.assign(n, 0.0);

    for (std::size_t i = 0; i < n; ++i) {
        double in = 0.0;
        for (int f : gates[i].fanin)
            in = std::max(in, rep.arrival[static_cast<std::size_t>(f)]);
        rep.arrival[i] = in + delay_of(gates[i]);
        rep.critical_delay_fo4 =
            std::max(rep.critical_delay_fo4, rep.arrival[i]);
    }

    // Required times: walk backwards.
    std::vector<double> required(n, rep.critical_delay_fo4);
    for (std::size_t i = n; i-- > 0;) {
        const double my_required = required[i];
        for (int f : gates[i].fanin) {
            auto fi = static_cast<std::size_t>(f);
            required[fi] = std::min(required[fi],
                                    my_required - delay_of(gates[i]));
        }
    }
    for (std::size_t i = 0; i < n; ++i)
        rep.slack[i] = required[i] - rep.arrival[i];

    // Trace one critical path from the latest-arriving gate.
    std::size_t cur = 0;
    for (std::size_t i = 0; i < n; ++i) {
        if (rep.arrival[i] > rep.arrival[cur])
            cur = i;
    }
    while (true) {
        rep.critical_path.push_back(static_cast<int>(cur));
        const Gate &g = gates[cur];
        if (g.fanin.empty())
            break;
        std::size_t next = static_cast<std::size_t>(g.fanin.front());
        for (int f : g.fanin) {
            auto fi = static_cast<std::size_t>(f);
            if (rep.arrival[fi] > rep.arrival[next])
                next = fi;
        }
        cur = next;
    }
    std::reverse(rep.critical_path.begin(), rep.critical_path.end());
    return rep;
}

} // namespace

TimingReport
Netlist::analyze() const
{
    return analyzeWith(gates_, [](const Gate &g) { return g.delay_fo4; });
}

TimingReport
Netlist::analyzeHetero(double top_slowdown) const
{
    return analyzeWith(gates_, [top_slowdown](const Gate &g) {
        return g.layer == Layer::Top ? g.delay_fo4 * (1.0 + top_slowdown)
                                     : g.delay_fo4;
    });
}

double
Netlist::criticalFraction(double threshold_fo4) const
{
    if (gates_.empty())
        return 0.0;
    TimingReport rep = analyze();
    std::size_t critical = 0;
    for (double s : rep.slack) {
        if (s < threshold_fo4)
            ++critical;
    }
    return static_cast<double>(critical) /
           static_cast<double>(gates_.size());
}

double
Netlist::totalArea() const
{
    return std::accumulate(gates_.begin(), gates_.end(), 0.0,
                           [](double acc, const Gate &g) {
                               return acc + g.area_units;
                           });
}

LayerAssignment
Netlist::assignLayers(double top_slowdown, double target_top_fraction,
                      double tolerance)
{
    M3D_ASSERT(target_top_fraction >= 0.0 && target_top_fraction <= 1.0);
    for (Gate &g : gates_)
        g.layer = Layer::Bottom;

    const TimingReport base = analyze();
    const double budget = base.critical_delay_fo4 * (1.0 + tolerance);
    const double area_total = totalArea();
    const double area_target = area_total * target_top_fraction;

    // Candidates in descending slack order; a gate fits in the top
    // layer outright when its own slowdown is covered by its slack.
    std::vector<std::size_t> order(gates_.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&base](std::size_t a, std::size_t b) {
                  return base.slack[a] > base.slack[b];
              });

    double area_top = 0.0;
    int moved = 0;
    for (std::size_t id : order) {
        if (area_top >= area_target)
            break;
        Gate &g = gates_[id];
        // Quick per-gate check; the path check below is authoritative.
        if (base.slack[id] < g.delay_fo4 * top_slowdown)
            continue;
        g.layer = Layer::Top;
        if (analyzeHetero(top_slowdown).critical_delay_fo4 > budget) {
            g.layer = Layer::Bottom;
            continue;
        }
        area_top += g.area_units;
        ++moved;
    }

    LayerAssignment out;
    out.top_fraction = area_total > 0.0 ? area_top / area_total : 0.0;
    out.delay_fo4 = analyzeHetero(top_slowdown).critical_delay_fo4;
    out.delay_penalty =
        out.delay_fo4 / base.critical_delay_fo4 - 1.0;
    out.gates_top = moved;
    out.gates_bottom = static_cast<int>(gates_.size()) - moved;
    return out;
}

} // namespace m3d
