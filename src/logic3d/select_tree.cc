#include "logic3d/select_tree.hh"

#include <string>
#include <vector>

#include "util/logging.hh"

namespace m3d {

Netlist
SelectTree::build(int entries, int radix)
{
    M3D_ASSERT(entries >= 2 && radix >= 2);
    Netlist nl;

    // Leaf ready signals (inputs from the wakeup stage).
    std::vector<int> reqs;
    reqs.reserve(static_cast<std::size_t>(entries));
    for (int i = 0; i < entries; ++i) {
        reqs.push_back(nl.addGate("req" + std::to_string(i), 0.5, 0.5,
                                  {}));
    }

    // --- Request phase: OR-reduce the ready signals up the tree,
    // recording each node's children for the grant phase.
    struct Node
    {
        int any_req;            ///< OR of the subtree's requests
        int local_grant;        ///< priority winner among children
        std::vector<int> child_nodes; ///< indices into `nodes`
    };
    std::vector<Node> nodes;          // one per internal arbiter
    std::vector<int> level_nodes;     // node ids of the current level

    // Level 0: group the leaves.
    int level = 0;
    {
        for (std::size_t base = 0; base < reqs.size();
             base += static_cast<std::size_t>(radix)) {
            std::vector<int> kids;
            for (std::size_t k = base;
                 k < std::min(base + radix, reqs.size()); ++k)
                kids.push_back(reqs[k]);
            Node n;
            const std::string tag =
                "a" + std::to_string(level) + "." +
                std::to_string(nodes.size());
            n.any_req = nl.addGate(tag + ".anyreq", 1.0, 1.0, kids);
            // Local grant: priority compare among the children; two
            // gate levels, computed off the request signals.
            const int cmp = nl.addGate(tag + ".cmp", 1.0, 1.5, kids);
            n.local_grant =
                nl.addGate(tag + ".lgrant", 1.0, 1.0, {cmp});
            level_nodes.push_back(static_cast<int>(nodes.size()));
            nodes.push_back(n);
        }
    }

    // Higher levels until one root remains.
    while (level_nodes.size() > 1) {
        ++level;
        std::vector<int> next;
        for (std::size_t base = 0; base < level_nodes.size();
             base += static_cast<std::size_t>(radix)) {
            std::vector<int> kid_nodes;
            std::vector<int> kid_reqs;
            for (std::size_t k = base;
                 k < std::min(base + radix, level_nodes.size()); ++k) {
                kid_nodes.push_back(level_nodes[k]);
                kid_reqs.push_back(
                    nodes[static_cast<std::size_t>(level_nodes[k])]
                        .any_req);
            }
            Node n;
            n.child_nodes = kid_nodes;
            const std::string tag =
                "a" + std::to_string(level) + "." +
                std::to_string(nodes.size());
            n.any_req =
                nl.addGate(tag + ".anyreq", 1.0, 1.0, kid_reqs);
            const int cmp =
                nl.addGate(tag + ".cmp", 1.0, 1.5, kid_reqs);
            n.local_grant =
                nl.addGate(tag + ".lgrant", 1.0, 1.0, {cmp});
            next.push_back(static_cast<int>(nodes.size()));
            nodes.push_back(n);
        }
        level_nodes = next;
    }

    // --- Grant phase: the root grant fires once the root request is
    // up; the AND chain descends through the arbiter-grant gates.
    const int root = level_nodes.front();
    const int root_grant = nl.addGate(
        "root.grant", 1.0, 1.0,
        {nodes[static_cast<std::size_t>(root)].any_req});

    // Breadth-first descent: each node ANDs the incoming grant with
    // its local grant to produce per-child grants.
    std::vector<std::pair<int, int>> frontier = {{root, root_grant}};
    int leaf_grant = -1;
    while (!frontier.empty()) {
        std::vector<std::pair<int, int>> next;
        for (const auto &[node_id, grant_in] : frontier) {
            const Node &n = nodes[static_cast<std::size_t>(node_id)];
            const int agrant = nl.addGate(
                "g" + std::to_string(node_id), 1.0, 1.0,
                {grant_in, n.local_grant});
            if (n.child_nodes.empty()) {
                leaf_grant = agrant;
            } else {
                for (int child : n.child_nodes)
                    next.emplace_back(child, agrant);
            }
        }
        frontier = next;
    }
    M3D_ASSERT(leaf_grant >= 0);

    // The granted entry's payload read enable.
    nl.addGate("grant.out", 1.0, 1.0, {leaf_grant});
    return nl;
}

} // namespace m3d
