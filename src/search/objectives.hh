/**
 * @file
 * The multi-objective vector of the design-space search and its
 * dominance relations.
 *
 * Every design point is priced on the paper's three headline axes:
 *
 *  - core frequency (Hz, maximize) - Section 6.1's derived clock;
 *  - energy per instruction (J, minimize) - total workload energy
 *    over total measured instructions (Figure 7's currency);
 *  - peak steady-state temperature (deg C, minimize) - the Figure 8
 *    thermal solve on the design's folded floorplan.
 *
 * A fourth, optional axis prices manufacturability: yield@f, the
 * fraction of a Monte-Carlo die population (src/variation) meeting a
 * target clock.  It is off by default (every point carries the
 * neutral 1.0, leaving all dominance relations and cache keys
 * untouched) and switched on per run via ObjectiveConfig::yield_dies.
 *
 * Dominance is the standard weak Pareto relation.  The golden bench
 * additionally needs a *margin* dominance ("is the paper's M3D-Het
 * beaten by more than tolerance on every axis?") so that a frontier
 * claim survives small cross-toolchain float drift - that is
 * dominatesBeyond().
 *
 * ObjectiveEvaluator prices CoreDesigns exclusively through
 * engine::Evaluator (memoized, submission-order merged), fans the
 * per-design thermal solves across the engine's pool, and memoizes
 * the finished objective vectors, so repeated visits (annealing
 * walks, overlapping strategies) cost one lookup.  The memo is
 * warm-seeded at construction from the engine EvalCache's persisted
 * objective family and every freshly computed vector is stored back,
 * so a `--cache-file` (or the daemon's shared cache) carries priced
 * points across runs - the hex round trip is bit-exact, so a warm
 * start changes cost, never results.
 */

#ifndef M3D_SEARCH_OBJECTIVES_HH_
#define M3D_SEARCH_OBJECTIVES_HH_

#include <functional>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "engine/evaluator.hh"

namespace m3d {
namespace search {

/** One priced design point (see the file comment for units). */
struct Objectives
{
    double frequency = 0.0; ///< Hz; higher is better
    double epi = 0.0;       ///< J per instruction; lower is better
    double peak_c = 0.0;    ///< deg C; lower is better

    /**
     * Yield@f (fraction of manufactured dies meeting the target
     * clock, higher is better), from the src/variation Monte-Carlo
     * model.  Defaults to the neutral 1.0 so yield-off searches and
     * every pre-yield golden keep their exact dominance structure.
     */
    double yield = 1.0;

    bool operator==(const Objectives &o) const
    {
        return frequency == o.frequency && epi == o.epi &&
               peak_c == o.peak_c && yield == o.yield;
    }
    bool operator!=(const Objectives &o) const
    {
        return !(*this == o);
    }
};

/** Weak Pareto dominance: a is no worse everywhere, better somewhere. */
bool dominates(const Objectives &a, const Objectives &b);

/** Per-axis margins for tolerance-aware dominance. */
struct Margins
{
    double frequency_rel = 0.01; ///< relative, on frequency
    double epi_rel = 0.01;       ///< relative, on energy/instruction
    double peak_abs_c = 0.5;     ///< absolute deg C, on temperature
    double yield_abs = 0.02;     ///< absolute, on yield@f
};

/**
 * True iff `a` beats `b` by more than the margin on *every* axis -
 * the refutation test behind "the paper's design is non-dominated
 * within tolerance".
 */
bool dominatesBeyond(const Objectives &a, const Objectives &b,
                     const Margins &m);

/** Knobs of one ObjectiveEvaluator. */
struct ObjectiveConfig
{
    /**
     * Applications the point is priced on (empty selects the default
     * mix: Gcc, Mcf, Gamess - branchy, memory-bound, and hot).  EPI
     * aggregates energy and instructions across all of them; peak
     * temperature is the max over them.
     */
    std::vector<WorkloadProfile> apps;

    /** Thermal grid resolution per side (Figure 8 uses 32). */
    int thermal_grid = 32;

    /**
     * Monte-Carlo dies behind the yield@f axis; 0 (the default)
     * turns the axis off - every point prices at the neutral yield
     * of 1.0 and the memo keys are exactly the pre-yield keys, so a
     * yield-off run reuses (and refreshes) existing caches verbatim.
     */
    int yield_dies = 0;

    /**
     * Target clock of the yield axis, in Hz; 0 selects the planar
     * baseline clock (core/frequency.hh kBaseFrequency) - "what
     * fraction of dies is at least as fast as the 2D part?".
     */
    double yield_frequency = 0.0;

    /** Seed of the yield axis's variation population. */
    std::uint64_t yield_seed = 7;
};

/**
 * Reuse telemetry of one ObjectiveEvaluator: how many designs were
 * answered from the in-memory memo vs. computed, and how many memo
 * entries arrived pre-warmed from the engine's persisted EvalCache
 * at construction.  This is where a warm cache shows up - the search
 * JSON documents deliberately exclude it so cold and warm runs stay
 * byte-identical (the cache accelerates, never steers).
 */
struct ObjectiveStats
{
    std::uint64_t memo_hits = 0;
    std::uint64_t memo_misses = 0;
    std::uint64_t warm_entries = 0;
};

/** Prices CoreDesigns into Objectives; see the file comment. */
class ObjectiveEvaluator
{
  public:
    /** Called per priced design; may run on engine worker threads. */
    using Hook =
        std::function<void(std::size_t, const Objectives &)>;

    explicit ObjectiveEvaluator(engine::Evaluator &ev,
                                ObjectiveConfig config =
                                    ObjectiveConfig());

    const ObjectiveConfig &config() const { return config_; }
    engine::Evaluator &evaluator() { return ev_; }

    /** Price one design (memoized). */
    Objectives evaluate(const CoreDesign &design);

    /**
     * Price a batch: application runs fan through the engine
     * (memoized, submission-order merged), then the per-design
     * thermal solves fan across the same pool.  Results are in
     * `designs` order and bit-identical at any thread count; `hook`
     * fires once per design as it completes, possibly concurrently.
     */
    std::vector<Objectives>
    evaluateBatch(const std::vector<CoreDesign> &designs,
                  const Hook &hook = Hook());

    /** Memo reuse counters; see ObjectiveStats. */
    ObjectiveStats stats() const;

  private:
    engine::EvalKey designKey(const CoreDesign &design) const;
    Objectives compute(const CoreDesign &design,
                       const std::vector<AppRun> &runs) const;

    engine::Evaluator &ev_;
    ObjectiveConfig config_;

    mutable std::mutex memo_mutex_;
    std::unordered_map<engine::EvalKey, Objectives,
                       engine::EvalKeyHash>
        memo_;
    ObjectiveStats stats_;
};

} // namespace search
} // namespace m3d

#endif // M3D_SEARCH_OBJECTIVES_HH_
