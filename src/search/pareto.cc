#include "search/pareto.hh"

#include <algorithm>
#include <cmath>

namespace m3d {
namespace search {

bool
pointLess(const Point &a, const Point &b)
{
    return std::lexicographical_compare(a.begin(), a.end(), b.begin(),
                                        b.end());
}

bool
ParetoArchive::insert(const Point &p, const Objectives &obj)
{
    // NaN compares false against everything, so a NaN objective (a
    // thermal solve that bailed under the Warn non-convergence
    // policy) would look "non-dominated" and poison the frontier.
    // Reject non-finite vectors outright.
    if (!std::isfinite(obj.frequency) || !std::isfinite(obj.epi) ||
        !std::isfinite(obj.peak_c) || !std::isfinite(obj.yield))
        return false;
    std::lock_guard<std::mutex> lock(mutex_);
    for (const ParetoEntry &e : entries_) {
        if (e.obj == obj) {
            // Objective tie: the lexicographically smaller point is
            // the canonical representative.
            if (!pointLess(p, e.point))
                return false;
            break;
        }
        if (dominates(e.obj, obj))
            return false;
    }
    entries_.erase(
        std::remove_if(entries_.begin(), entries_.end(),
                       [&](const ParetoEntry &e) {
                           return e.obj == obj ||
                                  dominates(obj, e.obj);
                       }),
        entries_.end());
    entries_.push_back({p, obj});
    return true;
}

std::size_t
ParetoArchive::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

std::vector<ParetoEntry>
ParetoArchive::frontier() const
{
    std::vector<ParetoEntry> out;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        out = entries_;
    }
    std::sort(out.begin(), out.end(),
              [](const ParetoEntry &a, const ParetoEntry &b) {
                  if (a.obj.frequency != b.obj.frequency)
                      return a.obj.frequency > b.obj.frequency;
                  if (a.obj.epi != b.obj.epi)
                      return a.obj.epi < b.obj.epi;
                  if (a.obj.peak_c != b.obj.peak_c)
                      return a.obj.peak_c < b.obj.peak_c;
                  if (a.obj.yield != b.obj.yield)
                      return a.obj.yield > b.obj.yield;
                  return pointLess(a.point, b.point);
              });
    return out;
}

bool
ParetoArchive::nonDominated(const Objectives &obj) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const ParetoEntry &e : entries_) {
        if (dominates(e.obj, obj))
            return false;
    }
    return true;
}

} // namespace search
} // namespace m3d
