/**
 * @file
 * The canonical design spaces of this repository and their decoders.
 *
 * coreSpace() is the processor space the search subsystem explores:
 * technology (planar 2D, TSV3D, iso- and hetero-layer M3D), the
 * frequency-derivation policy, layer asymmetry (paper-tuned partition
 * knobs vs forced-symmetric splits), per-structure partition strategy
 * for all twelve Table 6 arrays, and the core width/depth
 * microarchitecture knobs.  The all-zeros point decodes to the
 * paper's M3D-Het configuration, so the published design is *in* the
 * searched space rather than a separate special case.  The planar-2D
 * baseline only exists in canonical form (conservative policy,
 * tuned/no partitions) - the validator rejects the redundant
 * combinations so enumeration never prices duplicates.
 *
 * decodeCore() turns a point into a CoreDesign exclusively through
 * engine::Evaluator (partition grid searches hit the memo and the
 * on-disk cache), mirroring DesignFactory's construction rules so a
 * decoded paper point is model-identical to the factory design.
 *
 * partitionSpace() is the small (technology x structure x strategy)
 * grid that examples/design_space_explorer.cc enumerates; it shares
 * the same declarative machinery instead of a hand-rolled loop nest.
 */

#ifndef M3D_SEARCH_DESIGN_POINT_HH_
#define M3D_SEARCH_DESIGN_POINT_HH_

#include "engine/evaluator.hh"
#include "search/search_space.hh"

namespace m3d {
namespace search {

/** The processor design space; see the file comment. */
SearchSpace coreSpace();

/**
 * The canonical 2D reference point of `space` (all knobs at their
 * paper-default index, technology = planar 2D) - the scalarization
 * baseline of the climb/anneal strategies.
 */
Point coreBaselinePoint(const SearchSpace &space);

/**
 * Decode one valid coreSpace() point into a CoreDesign.  All
 * partition pricing routes through `ev` (memoized), so decoding the
 * same point twice - or two points sharing a (technology, structure,
 * strategy) sub-decision - costs one evaluation.  The design name is
 * "dse-<flat index>", which is deterministic and unique per point.
 */
CoreDesign decodeCore(const SearchSpace &space, const Point &p,
                      engine::Evaluator &ev);

/**
 * The (technology x structure x strategy) partition grid of
 * examples/design_space_explorer.cc.  Enumeration order matches the
 * example's historical loop nest (technology outermost, strategies in
 * legalKinds order).
 */
SearchSpace partitionSpace();

/** Decode one valid partitionSpace() point into an engine batch job. */
engine::PartitionJob decodePartitionJob(const SearchSpace &space,
                                        const Point &p);

} // namespace search
} // namespace m3d

#endif // M3D_SEARCH_DESIGN_POINT_HH_
