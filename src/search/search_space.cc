#include "search/search_space.hh"

#include <unordered_set>

#include "util/logging.hh"

namespace m3d {
namespace search {

SearchSpace &
SearchSpace::knob(std::string knob_name,
                  std::vector<std::string> values)
{
    M3D_ASSERT(!values.empty(), "knob '", knob_name,
               "' needs a non-empty domain");
    knobs_.push_back({std::move(knob_name), std::move(values)});
    return *this;
}

std::size_t
SearchSpace::knobIndex(const std::string &knob_name) const
{
    for (std::size_t i = 0; i < knobs_.size(); ++i) {
        if (knobs_[i].name == knob_name)
            return i;
    }
    M3D_FATAL("space '", name_, "' has no knob '", knob_name, "'");
}

std::uint64_t
SearchSpace::cardinality() const
{
    std::uint64_t card = 1;
    for (const Knob &k : knobs_)
        card *= static_cast<std::uint64_t>(k.values.size());
    return card;
}

bool
SearchSpace::wellFormed(const Point &p) const
{
    if (p.size() != knobs_.size())
        return false;
    for (std::size_t i = 0; i < knobs_.size(); ++i) {
        if (p[i] < 0 ||
            p[i] >= static_cast<int>(knobs_[i].values.size()))
            return false;
    }
    return true;
}

bool
SearchSpace::valid(const Point &p) const
{
    if (!wellFormed(p))
        return false;
    return !validator_ || validator_(*this, p);
}

const std::string &
SearchSpace::value(const Point &p,
                   const std::string &knob_name) const
{
    const std::size_t i = knobIndex(knob_name);
    M3D_ASSERT(wellFormed(p), "malformed point in space '", name_,
               "'");
    return knobs_[i].values[static_cast<std::size_t>(p[i])];
}

Point
SearchSpace::pointAt(std::uint64_t index) const
{
    M3D_ASSERT(index < cardinality(), "flat index out of range");
    Point p(knobs_.size(), 0);
    for (std::size_t i = knobs_.size(); i-- > 0;) {
        const std::uint64_t radix = knobs_[i].values.size();
        p[i] = static_cast<int>(index % radix);
        index /= radix;
    }
    return p;
}

std::uint64_t
SearchSpace::indexOf(const Point &p) const
{
    M3D_ASSERT(wellFormed(p), "malformed point in space '", name_,
               "'");
    std::uint64_t index = 0;
    for (std::size_t i = 0; i < knobs_.size(); ++i) {
        index = index * knobs_[i].values.size() +
                static_cast<std::uint64_t>(p[i]);
    }
    return index;
}

std::vector<Point>
SearchSpace::enumerate(std::uint64_t limit) const
{
    const std::uint64_t card = cardinality();
    M3D_ASSERT(card <= limit, "space '", name_, "' is too large to ",
               "materialize (", card, " points); use grid()");
    std::vector<Point> out;
    for (std::uint64_t i = 0; i < card; ++i) {
        Point p = pointAt(i);
        if (valid(p))
            out.push_back(std::move(p));
    }
    return out;
}

std::vector<Point>
SearchSpace::grid(std::size_t budget) const
{
    std::vector<Point> out;
    if (budget == 0)
        return out;
    const std::uint64_t card = cardinality();
    std::unordered_set<std::uint64_t> used;
    for (std::size_t i = 0; i < budget; ++i) {
        // Evenly strided probe, advanced past invalid/used indices.
        std::uint64_t idx = static_cast<std::uint64_t>(
            static_cast<unsigned __int128>(i) * card / budget);
        std::uint64_t scanned = 0;
        while (scanned < card &&
               (used.count(idx) != 0 || !valid(pointAt(idx)))) {
            idx = (idx + 1) % card;
            ++scanned;
        }
        if (scanned >= card)
            break; // every valid point is already taken
        used.insert(idx);
        out.push_back(pointAt(idx));
    }
    return out;
}

Point
SearchSpace::randomPoint(Rng &rng) const
{
    constexpr int kAttempts = 100000;
    for (int attempt = 0; attempt < kAttempts; ++attempt) {
        Point p(knobs_.size(), 0);
        for (std::size_t i = 0; i < knobs_.size(); ++i) {
            p[i] = static_cast<int>(
                rng.below(knobs_[i].values.size()));
        }
        if (valid(p))
            return p;
    }
    M3D_FATAL("space '", name_, "' rejected ", kAttempts,
              " random draws; validator too strict?");
}

std::vector<Point>
SearchSpace::neighbors(const Point &p) const
{
    M3D_ASSERT(valid(p), "neighbors() of an invalid point");
    std::vector<Point> out;
    for (std::size_t i = 0; i < knobs_.size(); ++i) {
        for (int v = 0;
             v < static_cast<int>(knobs_[i].values.size()); ++v) {
            if (v == p[i])
                continue;
            Point q = p;
            q[i] = v;
            if (valid(q))
                out.push_back(std::move(q));
        }
    }
    return out;
}

Point
SearchSpace::mutate(const Point &p, Rng &rng) const
{
    constexpr int kAttempts = 100000;
    for (int attempt = 0; attempt < kAttempts; ++attempt) {
        const std::size_t i = rng.below(knobs_.size());
        const std::uint64_t domain = knobs_[i].values.size();
        if (domain < 2)
            continue;
        // Draw from the domain minus the current value.
        int v = static_cast<int>(rng.below(domain - 1));
        if (v >= p[i])
            ++v;
        Point q = p;
        q[i] = v;
        if (valid(q))
            return q;
    }
    M3D_FATAL("space '", name_, "': no valid mutation found");
}

std::string
SearchSpace::describe(const Point &p) const
{
    M3D_ASSERT(wellFormed(p), "malformed point in space '", name_,
               "'");
    std::string out;
    for (std::size_t i = 0; i < knobs_.size(); ++i) {
        if (!out.empty())
            out += " ";
        out += knobs_[i].name + "=" +
               knobs_[i].values[static_cast<std::size_t>(p[i])];
    }
    return out;
}

} // namespace search
} // namespace m3d
