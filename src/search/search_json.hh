/**
 * @file
 * The canonical "m3d-search" JSON emission of a SearchResult.
 *
 * Exactly one piece of code builds this document, and both front
 * ends use it: `m3dtool search --json` (in-process) and the m3dd
 * daemon's search responses (src/service).  That single origin is
 * what makes the daemon-vs-in-process byte-identity contract testable
 * at the document level - a client that writes the daemon's response
 * verbatim produces the same bytes the in-process path would have.
 *
 * The document deliberately excludes thread counts and wall-clock
 * times: the emission must be byte-identical at any --jobs and on
 * any machine for a fixed (strategy, seed, budget, space).
 */

#ifndef M3D_SEARCH_SEARCH_JSON_HH_
#define M3D_SEARCH_SEARCH_JSON_HH_

#include <cstdint>
#include <string>

#include "report/json.hh"
#include "search/strategy.hh"

namespace m3d {
namespace search {

/** One frontier/best entry as a JSON object. */
report::Json searchEntryJson(const SearchSpace &space,
                             const ParetoEntry &e);

/**
 * The complete versioned m3d-search document for one finished run:
 * the strategy and its full option set, the space's shape, the
 * evaluated/generated/model-fit telemetry, the reference objectives,
 * the best scalarized point with its score, and the frontier in
 * canonical order.  Version 2 added the population/surrogate options
 * and the generated/model_fits counters; version 3 added the yield@f
 * axis (a "yield" field on every entry and the reference, plus the
 * yield_dies/yield_f_ghz/yield_seed knobs from `objectives`).
 */
report::Json searchResultJson(const SearchSpace &space,
                              const std::string &strategy,
                              const StrategyOptions &opts,
                              const SearchResult &result,
                              const ObjectiveConfig &objectives =
                                  ObjectiveConfig());

} // namespace search
} // namespace m3d

#endif // M3D_SEARCH_SEARCH_JSON_HH_
