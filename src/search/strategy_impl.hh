/**
 * @file
 * Internal plumbing shared by the strategy implementation files
 * (strategy.cc, strategy_evolve.cc, surrogate.cc): the run context
 * every strategy drives, the registry rows runSearch() dispatches
 * over, and the distinct-sample helper the population strategies
 * share.  Not public API - include only from src/search.
 */

#ifndef M3D_SEARCH_STRATEGY_IMPL_HH_
#define M3D_SEARCH_STRATEGY_IMPL_HH_

#include <unordered_set>

#include "search/strategy.hh"
#include "util/logging.hh"

namespace m3d {
namespace search {

/**
 * Shared strategy plumbing: budget accounting, archiving every priced
 * point, best-scalarized tracking, and the generated/model-fit
 * telemetry counters.  Archiving happens inside the pricer's hook
 * (possibly concurrently - the archive is order independent); best
 * tracking happens serially in batch order, so the reported champion
 * is deterministic.
 */
class StrategyContext
{
  public:
    StrategyContext(const SearchSpace &space,
                    const StrategyOptions &opts,
                    const BatchPricer &pricer)
        : space_(space), opts_(opts), pricer_(pricer)
    {
    }

    void priceReference(const Point &ref)
    {
        const std::vector<Objectives> objs = run({ref});
        M3D_ASSERT(objs.size() == 1, "pricer dropped the reference");
        ref_obj_ = objs[0];
        have_ref_ = true;
        ++evaluated_;
        best_ = {ref, ref_obj_};
        best_score_ = score(ref_obj_);
    }

    /**
     * Price up to remaining-budget points from the front of `pts`;
     * returns the objectives of the points actually priced.
     */
    std::vector<Objectives> price(std::vector<Point> pts)
    {
        if (pts.size() > remaining())
            pts.resize(remaining());
        if (pts.empty())
            return {};
        const std::vector<Objectives> objs = run(pts);
        M3D_ASSERT(objs.size() == pts.size(),
                   "pricer returned a short batch");
        evaluated_ += pts.size();
        for (std::size_t i = 0; i < pts.size(); ++i) {
            const double s = score(objs[i]);
            if (s > best_score_ ||
                (s == best_score_ && pointLess(pts[i], best_.point))) {
                best_ = {pts[i], objs[i]};
                best_score_ = s;
            }
        }
        return objs;
    }

    std::size_t remaining() const
    {
        return opts_.budget - budget_spent();
    }
    bool exhausted() const { return remaining() == 0; }

    double score(const Objectives &o) const
    {
        M3D_ASSERT(have_ref_, "score() before priceReference()");
        return scalarScore(o, ref_obj_);
    }

    const Objectives &referenceObjectives() const
    {
        M3D_ASSERT(have_ref_, "reference not priced yet");
        return ref_obj_;
    }

    /** Record `n` candidate points proposed by the strategy. */
    void noteGenerated(std::size_t n) { generated_ += n; }

    /** Record one surrogate model refit. */
    void noteModelFit() { ++model_fits_; }

    SearchResult result(const std::string &strategy) const
    {
        SearchResult r;
        r.strategy = strategy;
        r.evaluated = evaluated_;
        r.generated = generated_;
        r.model_fits = model_fits_;
        r.frontier = archive_.frontier();
        r.best = best_;
        r.best_score = best_score_;
        r.reference = ref_obj_;
        return r;
    }

    const SearchSpace &space() const { return space_; }
    const StrategyOptions &options() const { return opts_; }

  private:
    std::size_t budget_spent() const
    {
        // The reference is free; everything else spends budget.
        return evaluated_ - (have_ref_ ? 1 : 0);
    }

    std::vector<Objectives> run(const std::vector<Point> &pts)
    {
        ParetoArchive *archive = &archive_;
        const std::vector<Point> *points = &pts;
        return pricer_(
            pts, [archive, points](std::size_t i,
                                   const Objectives &obj) {
                archive->insert((*points)[i], obj);
            });
    }

    const SearchSpace &space_;
    const StrategyOptions &opts_;
    const BatchPricer &pricer_;
    ParetoArchive archive_;

    bool have_ref_ = false;
    Objectives ref_obj_;
    std::size_t evaluated_ = 0;
    std::size_t generated_ = 0;
    std::size_t model_fits_ = 0;
    ParetoEntry best_;
    double best_score_ = 0.0;
};

/**
 * Draw up to `want` distinct random valid points whose flat indices
 * are not yet in `used` (newly drawn indices are added).  Gives up
 * after a generous attempt cap, so tiny or mostly-seen spaces return
 * short instead of spinning.
 */
std::vector<Point>
sampleDistinct(const SearchSpace &space, Rng &rng, std::size_t want,
               std::unordered_set<std::uint64_t> *used);

/** One registry row: a strategy name bound to its run function. */
struct StrategyDef
{
    const char *name;
    void (*run)(StrategyContext &, Rng &);
};

/** The registry behind strategyNames()/runSearch(), in name order. */
const std::vector<StrategyDef> &strategyRegistry();

// Strategy run functions (one per registry row).
void runGridStrategy(StrategyContext &ctx, Rng &rng);
void runRandomStrategy(StrategyContext &ctx, Rng &rng);
void runClimbStrategy(StrategyContext &ctx, Rng &rng);
void runAnnealStrategy(StrategyContext &ctx, Rng &rng);
void runEvolveStrategy(StrategyContext &ctx, Rng &rng);    // strategy_evolve.cc
void runSurrogateStrategy(StrategyContext &ctx, Rng &rng); // surrogate.cc

} // namespace search
} // namespace m3d

#endif // M3D_SEARCH_STRATEGY_IMPL_HH_
