/**
 * @file
 * Pluggable search strategies over a SearchSpace.
 *
 * Six strategies - exhaustive/strided grid, seeded random sampling,
 * greedy hill-climb with random restarts, simulated annealing, an
 * NSGA-II-style evolutionary search (strategy_evolve.cc), and a
 * surrogate-guided search (surrogate.cc) - all drive the same loop:
 * pick points, price them through a BatchPricer, feed every result
 * into a ParetoArchive, and track the best scalarized point.  The
 * strategies register in one table (strategyNames() /
 * runSearch()), so the CLI, the daemon's request validation, and the
 * determinism suites pick new strategies up automatically.
 * Determinism rules:
 *
 *  - every strategy is a *sequential* algorithm over batch prices;
 *    parallelism lives entirely inside the pricer (the engine's
 *    submission-order merge), so results are bit-identical at any
 *    `--jobs`;
 *  - all randomness comes from one util::Rng seeded by
 *    StrategyOptions::seed, drawn in a fixed order (annealing draws
 *    its acceptance uniform unconditionally, even when the move is
 *    an improvement, so the stream never depends on float compares
 *    that accepted moves would skip);
 *  - ties break on the lexicographic point order.
 *
 * The scalarization for climb/anneal compares a point against the
 * reference design (the canonical 2D baseline in the core space):
 *   score = f/f_ref - epi/epi_ref - 0.5 * peak/peak_ref
 * i.e. "buy frequency, pay energy, and pay temperature at half
 * weight" - the paper's qualitative trade (Sections 6-7).  The
 * reference is priced first by every strategy (and archived), so
 * `evaluated` counts budget + 1 points.
 */

#ifndef M3D_SEARCH_STRATEGY_HH_
#define M3D_SEARCH_STRATEGY_HH_

#include <functional>
#include <string>
#include <vector>

#include "search/design_point.hh"
#include "search/pareto.hh"

namespace m3d {
namespace search {

/**
 * Prices a batch of points into objective vectors, in batch order.
 * The optional hook fires once per priced point (possibly from a
 * worker thread) - strategies use it to archive results as they
 * land.  Tests substitute synthetic pricers; production uses
 * enginePricer().
 */
using BatchPricer = std::function<std::vector<Objectives>(
    const std::vector<Point> &,
    const std::function<void(std::size_t, const Objectives &)> &)>;

/** A pricer backed by ObjectiveEvaluator::evaluateBatch. */
BatchPricer enginePricer(const SearchSpace &space,
                         ObjectiveEvaluator &objectives);

/** Strategy knobs (defaults match `m3dtool search`). */
struct StrategyOptions
{
    std::uint64_t seed = 7;

    /** Points to price, excluding the reference design. */
    std::size_t budget = 64;

    /** Annealing: initial temperature (score units). */
    double anneal_t0 = 0.1;

    /** Annealing: geometric cooling factor per step. */
    double anneal_cooling = 0.95;

    /**
     * Evolve: population size per generation (also the surrogate's
     * initial training sample).
     */
    std::size_t population = 16;

    /** Surrogate: candidate points generated per generation. */
    std::size_t surrogate_pool = 256;

    /**
     * Surrogate: top-ranked fraction of each generation's pool that
     * pays for a real evaluation (0 < fraction <= 1).
     */
    double surrogate_fraction = 0.125;

    /**
     * Surrogate: ridge regularization of the polynomial fit, scaled
     * by the training-set size.
     */
    double surrogate_ridge = 1e-3;
};

/** Outcome of one strategy run. */
struct SearchResult
{
    std::string strategy;
    std::size_t evaluated = 0; ///< priced points incl. the reference

    /**
     * Candidate points the strategy proposed (generated offspring,
     * surrogate pools, neighbor scans, samples) - always >=
     * evaluated - 1.  The surrogate's leverage is exactly the gap:
     * it prices only the model-ranked top fraction of `generated`.
     */
    std::size_t generated = 0;

    /** Surrogate model refits (0 for every other strategy). */
    std::size_t model_fits = 0;

    std::vector<ParetoEntry> frontier; ///< canonical order
    ParetoEntry best;                  ///< best scalarized point
    double best_score = 0.0;
    Objectives reference; ///< the scalarization baseline
};

/** The scalarized score of `obj` against `ref`; see file comment. */
double scalarScore(const Objectives &obj, const Objectives &ref);

/**
 * Metropolis acceptance: 1 if the move does not lose score, else
 * exp(delta / temperature).  The temperature is clamped to a floor
 * before the division so a geometrically cooled schedule that has
 * underflowed to denormal/zero never feeds a non-finite exponent
 * through exp() - the result is always a finite probability in
 * [0, 1].  Exposed for the unit tests.
 */
double annealAcceptProbability(double delta, double temperature);

/**
 * Strategy names accepted by runSearch, in documentation order
 * (grid, random, climb, anneal, evolve, surrogate) - the single
 * registry every front end validates against.
 */
const std::vector<std::string> &strategyNames();

/**
 * Run one strategy over `space`.
 *
 * @param strategy one of strategyNames().
 * @param reference the scalarization baseline point (must be valid);
 *        coreBaselinePoint() in the core space.
 */
SearchResult runSearch(const SearchSpace &space,
                       const std::string &strategy,
                       const StrategyOptions &opts,
                       const BatchPricer &pricer,
                       const Point &reference);

} // namespace search
} // namespace m3d

#endif // M3D_SEARCH_STRATEGY_HH_
