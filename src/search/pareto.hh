/**
 * @file
 * Thread-safe Pareto archive with deterministic tie-breaking.
 *
 * The archive keeps every non-dominated (point, objectives) pair seen
 * so far, at most one entry per distinct objective vector (ties on
 * all three objectives keep the lexicographically smallest point).
 * Both rules are insertion-order independent: for any fixed set of
 * inserted pairs the final contents are the same regardless of the
 * order - or the thread - the insertions arrive in.  That is what
 * lets ObjectiveEvaluator's batch hook feed the archive concurrently
 * from pool workers while `m3dtool search --jobs 1` and `--jobs 8`
 * stay byte-identical.
 *
 * frontier() returns a canonical ordering (frequency descending, then
 * energy/instruction, peak temperature, point ascending) for tables,
 * JSON, and goldens.
 */

#ifndef M3D_SEARCH_PARETO_HH_
#define M3D_SEARCH_PARETO_HH_

#include <mutex>
#include <vector>

#include "search/objectives.hh"
#include "search/search_space.hh"

namespace m3d {
namespace search {

/** One archived design point. */
struct ParetoEntry
{
    Point point;
    Objectives obj;
};

/** Lexicographic point order (the canonical tie-break). */
bool pointLess(const Point &a, const Point &b);

/** See the file comment. */
class ParetoArchive
{
  public:
    /**
     * Offer one pair; returns true iff it is now archived (not
     * dominated by, or an objective-tie with a smaller point than,
     * an existing entry).  Entries the newcomer dominates are
     * removed.  Pairs with any non-finite objective (NaN/inf) are
     * rejected outright - NaN compares false against everything, so
     * it would otherwise sail past dominance into the frontier.
     * Safe to call from multiple threads.
     */
    bool insert(const Point &p, const Objectives &obj);

    /** Number of archived entries. */
    std::size_t size() const;

    /** Canonically ordered snapshot; see the file comment. */
    std::vector<ParetoEntry> frontier() const;

    /**
     * True iff `obj` is not dominated by any archived entry - the
     * golden bench's "is this paper design still on the frontier?"
     * query.
     */
    bool nonDominated(const Objectives &obj) const;

  private:
    mutable std::mutex mutex_;
    std::vector<ParetoEntry> entries_;
};

} // namespace search
} // namespace m3d

#endif // M3D_SEARCH_PARETO_HH_
