/**
 * @file
 * NSGA-II-style evolutionary strategy ("evolve").
 *
 * Classic generational loop over the mixed-radix space: seed a random
 * population, then repeat {non-dominated sort + crowding distance,
 * binary-tournament parent selection, per-knob uniform crossover,
 * per-knob mutation, environmental selection over parents+offspring}
 * until the evaluation budget runs out.  Offspring are deduped
 * against every flat index priced so far, so the strategy never pays
 * twice for one point and terminates early on tiny spaces.
 *
 * Determinism: the loop is strictly sequential over batch prices, all
 * randomness comes from the caller's Rng in a fixed draw order, and
 * every comparator breaks ties on the lexicographic point order -
 * so a fixed seed gives a byte-identical frontier at any `--jobs`.
 */

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_set>

#include "search/strategy_impl.hh"

namespace m3d {
namespace search {
namespace {

struct Individual
{
    Point pt;
    Objectives obj;
    std::size_t rank = 0;  ///< non-domination front (0 = best)
    double crowding = 0.0; ///< crowding distance within the front
};

/**
 * Fast non-dominated sort: assigns `rank` to every individual and
 * returns the fronts as index lists, best front first.  O(n^2)
 * dominance checks - fine for the population sizes in play.
 */
std::vector<std::vector<std::size_t>>
sortFronts(std::vector<Individual> &pop)
{
    const std::size_t n = pop.size();
    std::vector<std::vector<std::size_t>> dominated(n);
    std::vector<std::size_t> dom_count(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            if (i == j)
                continue;
            if (dominates(pop[i].obj, pop[j].obj))
                dominated[i].push_back(j);
            else if (dominates(pop[j].obj, pop[i].obj))
                ++dom_count[i];
        }
    }
    std::vector<std::vector<std::size_t>> fronts;
    std::vector<std::size_t> cur;
    for (std::size_t i = 0; i < n; ++i) {
        if (dom_count[i] == 0) {
            pop[i].rank = 0;
            cur.push_back(i);
        }
    }
    while (!cur.empty()) {
        fronts.push_back(cur);
        std::vector<std::size_t> next;
        for (std::size_t i : cur) {
            for (std::size_t j : dominated[i]) {
                if (--dom_count[j] == 0) {
                    pop[j].rank = fronts.size();
                    next.push_back(j);
                }
            }
        }
        cur = std::move(next);
    }
    return fronts;
}

/** Crowding distance of one front, written into pop[*].crowding. */
void
assignCrowding(std::vector<Individual> &pop,
               const std::vector<std::size_t> &front)
{
    for (std::size_t i : front)
        pop[i].crowding = 0.0;
    if (front.size() <= 2) {
        for (std::size_t i : front)
            pop[i].crowding = std::numeric_limits<double>::infinity();
        return;
    }
    const auto axis = [](const Objectives &o, int a) {
        return a == 0 ? o.frequency : a == 1 ? o.epi : o.peak_c;
    };
    for (int a = 0; a < 3; ++a) {
        std::vector<std::size_t> order = front;
        std::sort(order.begin(), order.end(),
                  [&](std::size_t x, std::size_t y) {
                      const double vx = axis(pop[x].obj, a);
                      const double vy = axis(pop[y].obj, a);
                      if (vx != vy)
                          return vx < vy;
                      return pointLess(pop[x].pt, pop[y].pt);
                  });
        const double lo = axis(pop[order.front()].obj, a);
        const double hi = axis(pop[order.back()].obj, a);
        pop[order.front()].crowding =
            std::numeric_limits<double>::infinity();
        pop[order.back()].crowding =
            std::numeric_limits<double>::infinity();
        if (hi <= lo)
            continue;
        for (std::size_t k = 1; k + 1 < order.size(); ++k) {
            pop[order[k]].crowding +=
                (axis(pop[order[k + 1]].obj, a) -
                 axis(pop[order[k - 1]].obj, a)) /
                (hi - lo);
        }
    }
}

/** rank asc, crowding desc, lexicographic point - all deterministic. */
bool
better(const Individual &a, const Individual &b)
{
    if (a.rank != b.rank)
        return a.rank < b.rank;
    if (a.crowding != b.crowding)
        return a.crowding > b.crowding;
    return pointLess(a.pt, b.pt);
}

/** Binary tournament over the ranked population. */
const Individual &
tournament(const std::vector<Individual> &pop, Rng &rng)
{
    const std::size_t i = rng.below(pop.size());
    const std::size_t j = rng.below(pop.size());
    return better(pop[i], pop[j]) ? pop[i] : pop[j];
}

/** Append priced points to `pop` (objs may be budget-truncated). */
void
absorb(std::vector<Individual> &pop, const std::vector<Point> &pts,
       const std::vector<Objectives> &objs)
{
    for (std::size_t i = 0; i < objs.size(); ++i)
        pop.push_back({pts[i], objs[i]});
}

} // namespace

void
runEvolveStrategy(StrategyContext &ctx, Rng &rng)
{
    const SearchSpace &space = ctx.space();
    const std::size_t pop_size =
        std::max<std::size_t>(2, ctx.options().population);
    const std::size_t knobs = space.knobCount();
    const double mut_rate = 1.0 / static_cast<double>(knobs);

    std::unordered_set<std::uint64_t> seen;
    std::vector<Individual> pop;
    {
        std::vector<Point> init =
            sampleDistinct(space, rng, pop_size, &seen);
        ctx.noteGenerated(init.size());
        const std::vector<Objectives> objs = ctx.price(init);
        absorb(pop, init, objs);
    }

    while (!ctx.exhausted() && !pop.empty()) {
        for (const std::vector<std::size_t> &front : sortFronts(pop))
            assignCrowding(pop, front);

        // Breed up to one population of fresh (never-priced) valid
        // offspring; the attempt cap bails out on saturated spaces.
        std::vector<Point> batch;
        const std::size_t attempts = pop_size * 50 + 1000;
        for (std::size_t a = 0;
             a < attempts && batch.size() < pop_size; ++a) {
            const Individual &pa = tournament(pop, rng);
            const Individual &pb = tournament(pop, rng);
            Point child(knobs);
            for (std::size_t k = 0; k < knobs; ++k)
                child[k] = rng.chance(0.5) ? pa.pt[k] : pb.pt[k];
            for (std::size_t k = 0; k < knobs; ++k) {
                if (rng.chance(mut_rate))
                    child[k] = static_cast<int>(
                        rng.below(space.knobAt(k).values.size()));
            }
            ctx.noteGenerated(1);
            if (!space.valid(child))
                continue;
            if (!seen.insert(space.indexOf(child)).second)
                continue;
            batch.push_back(std::move(child));
        }
        if (batch.empty())
            break; // space exhausted - nothing fresh to breed

        const std::vector<Objectives> objs = ctx.price(batch);
        if (objs.empty())
            break;
        absorb(pop, batch, objs);

        // Environmental selection: refill from the best fronts, then
        // truncate the boundary front by crowding distance.
        for (const std::vector<std::size_t> &front : sortFronts(pop))
            assignCrowding(pop, front);
        std::sort(pop.begin(), pop.end(), better);
        if (pop.size() > pop_size)
            pop.resize(pop_size);
    }
}

} // namespace search
} // namespace m3d
