#include "search/search_json.hh"

namespace m3d {
namespace search {

report::Json
searchEntryJson(const SearchSpace &space, const ParetoEntry &e)
{
    report::Json o = report::Json::object();
    o.set("index", report::Json::number(static_cast<double>(
                       space.indexOf(e.point))));
    o.set("point", report::Json::string(space.describe(e.point)));
    o.set("frequency_ghz",
          report::Json::number(e.obj.frequency / 1e9));
    o.set("epi_nj", report::Json::number(e.obj.epi * 1e9));
    o.set("peak_c", report::Json::number(e.obj.peak_c));
    o.set("yield", report::Json::number(e.obj.yield));
    return o;
}

report::Json
searchResultJson(const SearchSpace &space, const std::string &strategy,
                 const StrategyOptions &opts,
                 const SearchResult &result,
                 const ObjectiveConfig &objectives)
{
    report::Json doc = report::Json::object();
    doc.set("kind", report::Json::string("m3d-search"));
    doc.set("version", report::Json::number(3));
    doc.set("strategy", report::Json::string(strategy));
    doc.set("seed",
            report::Json::number(static_cast<double>(opts.seed)));
    doc.set("budget",
            report::Json::number(static_cast<double>(opts.budget)));
    doc.set("population",
            report::Json::number(
                static_cast<double>(opts.population)));
    doc.set("surrogate_pool",
            report::Json::number(
                static_cast<double>(opts.surrogate_pool)));
    doc.set("surrogate_fraction",
            report::Json::number(opts.surrogate_fraction));
    doc.set("surrogate_ridge",
            report::Json::number(opts.surrogate_ridge));
    doc.set("yield_dies",
            report::Json::number(
                static_cast<double>(objectives.yield_dies)));
    doc.set("yield_f_ghz",
            report::Json::number(objectives.yield_frequency / 1e9));
    doc.set("yield_seed",
            report::Json::number(
                static_cast<double>(objectives.yield_seed)));
    report::Json sp = report::Json::object();
    sp.set("name", report::Json::string(space.name()));
    sp.set("knobs", report::Json::number(
                        static_cast<double>(space.knobCount())));
    sp.set("cardinality",
           report::Json::number(
               static_cast<double>(space.cardinality())));
    doc.set("space", std::move(sp));
    doc.set("evaluated",
            report::Json::number(
                static_cast<double>(result.evaluated)));
    doc.set("generated",
            report::Json::number(
                static_cast<double>(result.generated)));
    doc.set("model_fits",
            report::Json::number(
                static_cast<double>(result.model_fits)));
    report::Json ref = report::Json::object();
    ref.set("frequency_ghz",
            report::Json::number(result.reference.frequency / 1e9));
    ref.set("epi_nj",
            report::Json::number(result.reference.epi * 1e9));
    ref.set("peak_c", report::Json::number(result.reference.peak_c));
    ref.set("yield", report::Json::number(result.reference.yield));
    doc.set("reference", std::move(ref));
    report::Json best = searchEntryJson(space, result.best);
    best.set("score", report::Json::number(result.best_score));
    doc.set("best", std::move(best));
    report::Json frontier = report::Json::array();
    for (const ParetoEntry &e : result.frontier)
        frontier.push(searchEntryJson(space, e));
    doc.set("frontier", std::move(frontier));
    return doc;
}

} // namespace search
} // namespace m3d
