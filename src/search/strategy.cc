#include "search/strategy.hh"

#include <cmath>
#include <unordered_set>

#include "util/logging.hh"

namespace m3d {
namespace search {

namespace {

/**
 * Shared strategy plumbing: budget accounting, archiving every priced
 * point, and best-scalarized tracking.  Archiving happens inside the
 * pricer's hook (possibly concurrently - the archive is order
 * independent); best tracking happens serially in batch order, so the
 * reported champion is deterministic.
 */
class Context
{
  public:
    Context(const SearchSpace &space, const StrategyOptions &opts,
            const BatchPricer &pricer)
        : space_(space), opts_(opts), pricer_(pricer)
    {
    }

    void priceReference(const Point &ref)
    {
        const std::vector<Objectives> objs = run({ref});
        M3D_ASSERT(objs.size() == 1, "pricer dropped the reference");
        ref_obj_ = objs[0];
        have_ref_ = true;
        ++evaluated_;
        best_ = {ref, ref_obj_};
        best_score_ = score(ref_obj_);
    }

    /**
     * Price up to remaining-budget points from the front of `pts`;
     * returns the objectives of the points actually priced.
     */
    std::vector<Objectives> price(std::vector<Point> pts)
    {
        if (pts.size() > remaining())
            pts.resize(remaining());
        if (pts.empty())
            return {};
        const std::vector<Objectives> objs = run(pts);
        M3D_ASSERT(objs.size() == pts.size(),
                   "pricer returned a short batch");
        evaluated_ += pts.size();
        for (std::size_t i = 0; i < pts.size(); ++i) {
            const double s = score(objs[i]);
            if (s > best_score_ ||
                (s == best_score_ && pointLess(pts[i], best_.point))) {
                best_ = {pts[i], objs[i]};
                best_score_ = s;
            }
        }
        return objs;
    }

    std::size_t remaining() const
    {
        return opts_.budget - budget_spent();
    }
    bool exhausted() const { return remaining() == 0; }

    double score(const Objectives &o) const
    {
        M3D_ASSERT(have_ref_, "score() before priceReference()");
        return scalarScore(o, ref_obj_);
    }

    SearchResult result(const std::string &strategy) const
    {
        SearchResult r;
        r.strategy = strategy;
        r.evaluated = evaluated_;
        r.frontier = archive_.frontier();
        r.best = best_;
        r.best_score = best_score_;
        r.reference = ref_obj_;
        return r;
    }

    const SearchSpace &space() const { return space_; }
    const StrategyOptions &options() const { return opts_; }

  private:
    std::size_t budget_spent() const
    {
        // The reference is free; everything else spends budget.
        return evaluated_ - (have_ref_ ? 1 : 0);
    }

    std::vector<Objectives> run(const std::vector<Point> &pts)
    {
        ParetoArchive *archive = &archive_;
        const std::vector<Point> *points = &pts;
        return pricer_(
            pts, [archive, points](std::size_t i,
                                   const Objectives &obj) {
                archive->insert((*points)[i], obj);
            });
    }

    const SearchSpace &space_;
    const StrategyOptions &opts_;
    const BatchPricer &pricer_;
    ParetoArchive archive_;

    bool have_ref_ = false;
    Objectives ref_obj_;
    std::size_t evaluated_ = 0;
    ParetoEntry best_;
    double best_score_ = 0.0;
};

void
runGrid(Context &ctx)
{
    ctx.price(ctx.space().grid(ctx.options().budget));
}

void
runRandom(Context &ctx, Rng &rng)
{
    // Draw distinct points (dedupe by flat index), then price them as
    // one batch so the engine fans the whole sample at once.
    const std::size_t budget = ctx.options().budget;
    std::vector<Point> pts;
    std::unordered_set<std::uint64_t> used;
    const std::size_t attempts = budget * 50 + 1000;
    for (std::size_t a = 0; a < attempts && pts.size() < budget; ++a) {
        Point p = ctx.space().randomPoint(rng);
        if (used.insert(ctx.space().indexOf(p)).second)
            pts.push_back(std::move(p));
    }
    ctx.price(std::move(pts));
}

void
runClimb(Context &ctx, Rng &rng)
{
    Point cur = ctx.space().randomPoint(rng);
    std::vector<Objectives> objs = ctx.price({cur});
    if (objs.empty())
        return;
    double cur_score = ctx.score(objs[0]);

    while (!ctx.exhausted()) {
        const std::vector<Point> nbrs = ctx.space().neighbors(cur);
        const std::vector<Objectives> nbr_objs = ctx.price(nbrs);
        // Best priced neighbor; the first wins ties, which is
        // deterministic because neighbors() orders by (knob, value).
        std::size_t best_i = nbr_objs.size();
        double best_s = 0.0;
        for (std::size_t i = 0; i < nbr_objs.size(); ++i) {
            const double s = ctx.score(nbr_objs[i]);
            if (best_i == nbr_objs.size() || s > best_s) {
                best_i = i;
                best_s = s;
            }
        }
        if (best_i < nbr_objs.size() && best_s > cur_score) {
            cur = nbrs[best_i];
            cur_score = best_s;
            continue;
        }
        // Local optimum (or truncated batch): random restart.
        if (ctx.exhausted())
            break;
        cur = ctx.space().randomPoint(rng);
        objs = ctx.price({cur});
        if (objs.empty())
            break;
        cur_score = ctx.score(objs[0]);
    }
}

void
runAnneal(Context &ctx, Rng &rng)
{
    Point cur = ctx.space().randomPoint(rng);
    std::vector<Objectives> objs = ctx.price({cur});
    if (objs.empty())
        return;
    double cur_score = ctx.score(objs[0]);

    double temperature = ctx.options().anneal_t0;
    while (!ctx.exhausted()) {
        const Point cand = ctx.space().mutate(cur, rng);
        objs = ctx.price({cand});
        if (objs.empty())
            break;
        const double cand_score = ctx.score(objs[0]);
        // Draw the acceptance uniform unconditionally so the random
        // stream does not depend on whether the move improved.
        const double u = rng.uniform();
        if (u < annealAcceptProbability(cand_score - cur_score,
                                        temperature)) {
            cur = cand;
            cur_score = cand_score;
        }
        temperature *= ctx.options().anneal_cooling;
    }
}

} // namespace

BatchPricer
enginePricer(const SearchSpace &space, ObjectiveEvaluator &objectives)
{
    const SearchSpace *sp = &space;
    ObjectiveEvaluator *obj = &objectives;
    return [sp, obj](
               const std::vector<Point> &pts,
               const std::function<void(std::size_t,
                                        const Objectives &)> &hook) {
        std::vector<CoreDesign> designs;
        designs.reserve(pts.size());
        for (const Point &p : pts)
            designs.push_back(decodeCore(*sp, p, obj->evaluator()));
        return obj->evaluateBatch(designs, hook);
    };
}

double
scalarScore(const Objectives &obj, const Objectives &ref)
{
    M3D_ASSERT(ref.frequency > 0.0 && ref.epi > 0.0 &&
                   ref.peak_c > 0.0,
               "scalarization reference must be positive");
    return obj.frequency / ref.frequency - obj.epi / ref.epi -
           0.5 * obj.peak_c / ref.peak_c;
}

double
annealAcceptProbability(double delta, double temperature)
{
    if (delta >= 0.0)
        return 1.0;
    if (temperature <= 0.0)
        return 0.0;
    return std::exp(delta / temperature);
}

const std::vector<std::string> &
strategyNames()
{
    static const std::vector<std::string> names = {"grid", "random",
                                                   "climb", "anneal"};
    return names;
}

SearchResult
runSearch(const SearchSpace &space, const std::string &strategy,
          const StrategyOptions &opts, const BatchPricer &pricer,
          const Point &reference)
{
    M3D_ASSERT(space.valid(reference),
               "the scalarization reference must be a valid point");
    Context ctx(space, opts, pricer);
    ctx.priceReference(reference);
    Rng rng(opts.seed);
    if (strategy == "grid")
        runGrid(ctx);
    else if (strategy == "random")
        runRandom(ctx, rng);
    else if (strategy == "climb")
        runClimb(ctx, rng);
    else if (strategy == "anneal")
        runAnneal(ctx, rng);
    else
        M3D_FATAL("unknown strategy '", strategy,
                  "' (expected grid, random, climb, or anneal)");
    return ctx.result(strategy);
}

} // namespace search
} // namespace m3d
