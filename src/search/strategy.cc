#include "search/strategy.hh"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "search/strategy_impl.hh"
#include "util/logging.hh"

namespace m3d {
namespace search {

void
runGridStrategy(StrategyContext &ctx, Rng &)
{
    std::vector<Point> pts = ctx.space().grid(ctx.options().budget);
    ctx.noteGenerated(pts.size());
    ctx.price(std::move(pts));
}

void
runRandomStrategy(StrategyContext &ctx, Rng &rng)
{
    // Draw distinct points (dedupe by flat index), then price them as
    // one batch so the engine fans the whole sample at once.
    std::unordered_set<std::uint64_t> used;
    std::vector<Point> pts = sampleDistinct(
        ctx.space(), rng, ctx.options().budget, &used);
    ctx.noteGenerated(pts.size());
    ctx.price(std::move(pts));
}

void
runClimbStrategy(StrategyContext &ctx, Rng &rng)
{
    Point cur = ctx.space().randomPoint(rng);
    ctx.noteGenerated(1);
    std::vector<Objectives> objs = ctx.price({cur});
    if (objs.empty())
        return;
    double cur_score = ctx.score(objs[0]);

    while (!ctx.exhausted()) {
        const std::vector<Point> nbrs = ctx.space().neighbors(cur);
        ctx.noteGenerated(nbrs.size());
        const std::vector<Objectives> nbr_objs = ctx.price(nbrs);
        // Best priced neighbor; the first wins ties, which is
        // deterministic because neighbors() orders by (knob, value).
        std::size_t best_i = nbr_objs.size();
        double best_s = 0.0;
        for (std::size_t i = 0; i < nbr_objs.size(); ++i) {
            const double s = ctx.score(nbr_objs[i]);
            if (best_i == nbr_objs.size() || s > best_s) {
                best_i = i;
                best_s = s;
            }
        }
        if (best_i < nbr_objs.size() && best_s > cur_score) {
            cur = nbrs[best_i];
            cur_score = best_s;
            continue;
        }
        // Local optimum (or truncated batch): random restart.
        if (ctx.exhausted())
            break;
        cur = ctx.space().randomPoint(rng);
        ctx.noteGenerated(1);
        objs = ctx.price({cur});
        if (objs.empty())
            break;
        cur_score = ctx.score(objs[0]);
    }
}

void
runAnnealStrategy(StrategyContext &ctx, Rng &rng)
{
    Point cur = ctx.space().randomPoint(rng);
    ctx.noteGenerated(1);
    std::vector<Objectives> objs = ctx.price({cur});
    if (objs.empty())
        return;
    double cur_score = ctx.score(objs[0]);

    double temperature = ctx.options().anneal_t0;
    while (!ctx.exhausted()) {
        const Point cand = ctx.space().mutate(cur, rng);
        ctx.noteGenerated(1);
        objs = ctx.price({cand});
        if (objs.empty())
            break;
        const double cand_score = ctx.score(objs[0]);
        // Draw the acceptance uniform unconditionally so the random
        // stream does not depend on whether the move improved.
        const double u = rng.uniform();
        if (u < annealAcceptProbability(cand_score - cur_score,
                                        temperature)) {
            cur = cand;
            cur_score = cand_score;
        }
        temperature *= ctx.options().anneal_cooling;
    }
}

std::vector<Point>
sampleDistinct(const SearchSpace &space, Rng &rng, std::size_t want,
               std::unordered_set<std::uint64_t> *used)
{
    std::vector<Point> pts;
    const std::size_t attempts = want * 50 + 1000;
    for (std::size_t a = 0; a < attempts && pts.size() < want; ++a) {
        Point p = space.randomPoint(rng);
        if (used->insert(space.indexOf(p)).second)
            pts.push_back(std::move(p));
    }
    return pts;
}

BatchPricer
enginePricer(const SearchSpace &space, ObjectiveEvaluator &objectives)
{
    const SearchSpace *sp = &space;
    ObjectiveEvaluator *obj = &objectives;
    return [sp, obj](
               const std::vector<Point> &pts,
               const std::function<void(std::size_t,
                                        const Objectives &)> &hook) {
        std::vector<CoreDesign> designs;
        designs.reserve(pts.size());
        for (const Point &p : pts)
            designs.push_back(decodeCore(*sp, p, obj->evaluator()));
        return obj->evaluateBatch(designs, hook);
    };
}

double
scalarScore(const Objectives &obj, const Objectives &ref)
{
    M3D_ASSERT(ref.frequency > 0.0 && ref.epi > 0.0 &&
                   ref.peak_c > 0.0,
               "scalarization reference must be positive");
    // The yield term is a *difference* (yield can legitimately be
    // zero, so a ratio would blow up) and vanishes exactly when both
    // sides carry the neutral yield-off 1.0.
    return obj.frequency / ref.frequency - obj.epi / ref.epi -
           0.5 * obj.peak_c / ref.peak_c +
           0.5 * (obj.yield - ref.yield);
}

double
annealAcceptProbability(double delta, double temperature)
{
    if (delta >= 0.0)
        return 1.0;
    // A geometric schedule underflows to denormal (and eventually
    // zero) after a few thousand steps; dividing by that would feed
    // exp() a non-finite exponent.  Clamp to a floor far below any
    // meaningful score scale: every losing move is then rejected with
    // probability ~1, which is the mathematical limit anyway.
    constexpr double kTemperatureFloor = 1e-12;
    const double t = std::max(temperature, kTemperatureFloor);
    const double p = std::exp(delta / t);
    // exp() of a finite negative exponent is finite, but a NaN delta
    // (a pathological pricer) would propagate - fail closed instead.
    return std::isfinite(p) ? p : 0.0;
}

const std::vector<StrategyDef> &
strategyRegistry()
{
    static const std::vector<StrategyDef> defs = {
        {"grid", &runGridStrategy},
        {"random", &runRandomStrategy},
        {"climb", &runClimbStrategy},
        {"anneal", &runAnnealStrategy},
        {"evolve", &runEvolveStrategy},
        {"surrogate", &runSurrogateStrategy},
    };
    return defs;
}

const std::vector<std::string> &
strategyNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> out;
        for (const StrategyDef &def : strategyRegistry())
            out.push_back(def.name);
        return out;
    }();
    return names;
}

SearchResult
runSearch(const SearchSpace &space, const std::string &strategy,
          const StrategyOptions &opts, const BatchPricer &pricer,
          const Point &reference)
{
    M3D_ASSERT(space.valid(reference),
               "the scalarization reference must be a valid point");
    const StrategyDef *def = nullptr;
    for (const StrategyDef &d : strategyRegistry()) {
        if (strategy == d.name)
            def = &d;
    }
    if (def == nullptr) {
        std::string known;
        for (const std::string &n : strategyNames())
            known += (known.empty() ? "" : ", ") + n;
        M3D_FATAL("unknown strategy '", strategy, "' (expected one "
                  "of: ", known, ")");
    }
    StrategyContext ctx(space, opts, pricer);
    ctx.priceReference(reference);
    Rng rng(opts.seed);
    def->run(ctx, rng);
    return ctx.result(strategy);
}

} // namespace search
} // namespace m3d
