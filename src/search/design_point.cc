#include "search/design_point.hh"

#include "core/design.hh"
#include "core/frequency.hh"
#include "logic3d/stage.hh"
#include "util/logging.hh"

namespace m3d {
namespace search {

namespace {

// ---------------------------------------------------------------------
// Knob vocabularies.  Keep index 0 = the paper default on every knob:
// the all-zeros point then decodes to M3D-Het, and neighbors() of the
// paper point walks exactly one decision away from it.
// ---------------------------------------------------------------------

const char *const kTechKnob = "tech";
const char *const kWidthKnob = "width";
const char *const kDepthKnob = "depth";
const char *const kPolicyKnob = "fpolicy";
const char *const kAsymKnob = "asym";
const char *const kPartPrefix = "part/";

Technology
searchTech(const std::string &value)
{
    if (value == "m3d-het")
        return Technology::m3dHetero();
    if (value == "m3d-iso")
        return Technology::m3dIso();
    if (value == "tsv3d")
        return Technology::tsv3D();
    M3D_FATAL("unknown technology knob value '", value, "'");
}

/** Same area-weighted proxy DesignFactory::stackedCommon uses. */
double
averageAreaReduction(const std::vector<PartitionResult> &results)
{
    double total_2d = 0.0;
    double total_3d = 0.0;
    for (const PartitionResult &r : results) {
        total_2d += r.planar.area;
        total_3d += r.stacked.area;
    }
    return 1.0 - total_3d / total_2d;
}

/** Default symmetric spec for one strategy (no layer tuning). */
PartitionSpec
symmetricSpec(const ArrayConfig &cfg, PartitionKind kind)
{
    switch (kind) {
    case PartitionKind::Bit:
        return PartitionSpec::bit();
    case PartitionKind::Word:
        return PartitionSpec::word();
    case PartitionKind::Port:
        return PartitionSpec::port(cfg.ports() / 2);
    case PartitionKind::None:
        break;
    }
    M3D_FATAL("no symmetric spec for strategy 'best'");
}

PartitionKind
kindOf(const std::string &value)
{
    if (value == "bp")
        return PartitionKind::Bit;
    if (value == "wp")
        return PartitionKind::Word;
    if (value == "pp")
        return PartitionKind::Port;
    M3D_FATAL("unknown partition knob value '", value, "'");
}

/**
 * Price one structure's partition under the asymmetry knob: "tuned"
 * grid-searches the layout knobs like the paper; "sym" pins the
 * forced-symmetric split (bottom_share 0.5, no top-layer upsizing),
 * which is the Section 4.2.2 ablation.
 */
PartitionResult
structureResult(engine::Evaluator &ev, const Technology &tech,
                const ArrayConfig &cfg, const std::string &strategy,
                bool symmetric)
{
    if (!symmetric) {
        if (strategy == "best")
            return ev.bestOverall(tech, cfg);
        return ev.best(tech, cfg, kindOf(strategy));
    }
    if (strategy != "best") {
        const PartitionKind kind = kindOf(strategy);
        return ev.evaluate(tech, cfg, symmetricSpec(cfg, kind));
    }
    bool have = false;
    PartitionResult best{};
    for (PartitionKind kind : PartitionExplorer::legalKinds(cfg)) {
        const PartitionResult r =
            ev.evaluate(tech, cfg, symmetricSpec(cfg, kind));
        if (!have || PartitionExplorer::betterOverall(r, best)) {
            best = r;
            have = true;
        }
    }
    M3D_ASSERT(have, "structure '", cfg.name, "' has no strategies");
    return best;
}

void
applyWidth(CoreDesign &d, const std::string &value)
{
    if (value == "base")
        return;
    if (value == "narrow") {
        d.dispatch_width = 3;
        d.issue_width = 4;
        d.commit_width = 3;
        return;
    }
    if (value == "wide") {
        // The Table 12 M3D-Het-W widths.
        d.dispatch_width = 5;
        d.issue_width = 8;
        d.commit_width = 5;
        return;
    }
    M3D_FATAL("unknown width knob value '", value, "'");
}

void
applyDepth(CoreDesign &d, const std::string &value)
{
    if (value == "base")
        return;
    if (value == "shallow") {
        d.rob_entries = 128;
        d.iq_entries = 56;
        d.lq_entries = 48;
        d.sq_entries = 40;
        return;
    }
    if (value == "deep") {
        d.rob_entries = 256;
        d.iq_entries = 112;
        d.lq_entries = 96;
        d.sq_entries = 72;
        return;
    }
    M3D_FATAL("unknown depth knob value '", value, "'");
}

} // namespace

SearchSpace
coreSpace()
{
    SearchSpace space("core");
    space.knob(kWidthKnob, {"base", "narrow", "wide"});
    space.knob(kDepthKnob, {"base", "shallow", "deep"});
    space.knob(kPolicyKnob, {"cons", "agg"});
    space.knob(kAsymKnob, {"tuned", "sym"});
    for (const ArrayConfig &cfg : CoreStructures::all()) {
        std::vector<std::string> domain = {"best", "bp", "wp"};
        if (cfg.ports() >= 2)
            domain.push_back("pp");
        space.knob(kPartPrefix + cfg.name, std::move(domain));
    }
    // Last knob = least-significant digit of the flat index, so the
    // strided grid() scan skips a rejected planar-2D variant in one
    // step instead of a whole partition-knob block.
    space.knob(kTechKnob, {"m3d-het", "m3d-iso", "tsv3d", "2d"});

    space.setValidator([](const SearchSpace &s, const Point &p) {
        if (s.value(p, kTechKnob) != "2d")
            return true;
        // The planar baseline has no partition, policy, or asymmetry
        // decisions; only its canonical form is a distinct design.
        for (std::size_t i = 0; i < s.knobCount(); ++i) {
            const std::string &knob_name = s.knobAt(i).name;
            if (knob_name == kWidthKnob || knob_name == kDepthKnob ||
                knob_name == kTechKnob)
                continue;
            if (p[i] != 0)
                return false;
        }
        return true;
    });
    return space;
}

Point
coreBaselinePoint(const SearchSpace &space)
{
    Point p(space.knobCount(), 0);
    const std::size_t tech = space.knobIndex(kTechKnob);
    const std::vector<std::string> &domain =
        space.knobAt(tech).values;
    for (std::size_t v = 0; v < domain.size(); ++v) {
        if (domain[v] == "2d")
            p[tech] = static_cast<int>(v);
    }
    M3D_ASSERT(space.value(p, kTechKnob) == "2d",
               "core space lost its 2d baseline");
    return p;
}

CoreDesign
decodeCore(const SearchSpace &space, const Point &p,
           engine::Evaluator &ev)
{
    M3D_ASSERT(space.valid(p), "cannot decode an invalid point");
    const std::string &tech_value = space.value(p, kTechKnob);

    CoreDesign d;
    d.name = "dse-" + std::to_string(space.indexOf(p));
    if (tech_value == "2d") {
        d.tech = Technology::planar2D();
        d.frequency = kBaseFrequency;
        d.execute_gains = LogicStageGains{}; // no 3D gains
    } else {
        const Technology tech = searchTech(tech_value);
        const bool symmetric = space.value(p, kAsymKnob) == "sym";
        std::vector<PartitionResult> results;
        for (const ArrayConfig &cfg : CoreStructures::all()) {
            results.push_back(structureResult(
                ev, tech, cfg, space.value(p, kPartPrefix + cfg.name),
                symmetric));
        }
        d.tech = tech;
        for (const PartitionResult &r : results)
            d.partitions.emplace(r.cfg.name, r);

        // DesignFactory::stackedCommon's rules (Section 6): shorter
        // semi-global paths, 3D clock tree, folded footprint.
        d.load_to_use = 3;
        d.mispredict_penalty = 12;
        d.clock_tree_switch_factor = 0.75;
        d.footprint_factor = 1.0 - averageAreaReduction(results);

        const FrequencyPolicy policy =
            space.value(p, kPolicyKnob) == "agg"
                ? FrequencyPolicy::Aggressive
                : FrequencyPolicy::Conservative;
        if (tech_value == "tsv3d") {
            // TSVs are too coarse to speed the arrays up; the TSV3D
            // core keeps the 2D clock (DesignFactory::tsv3d).
            d.frequency = kBaseFrequency;
        } else {
            d.frequency = deriveFrequency(results, policy).frequency;
        }
        if (tech_value == "m3d-het") {
            d.execute_gains =
                LogicStageModel(tech).aluBypassHetero(4);
            d.complex_decode_extra = 1;
        } else if (tech_value == "m3d-iso") {
            d.execute_gains = LogicStageModel(tech).aluBypass(4);
        }
    }
    applyWidth(d, space.value(p, kWidthKnob));
    applyDepth(d, space.value(p, kDepthKnob));
    return d;
}

SearchSpace
partitionSpace()
{
    SearchSpace space("partition");
    space.knob(kTechKnob,
               {"m3d-iso", "m3d-hetero", "tsv3d-1.3um", "tsv3d-5um"});
    std::vector<std::string> names;
    for (const ArrayConfig &cfg : CoreStructures::all())
        names.push_back(cfg.name);
    space.knob("structure", std::move(names));
    // legalKinds order (Bit, Word, Port), so enumerate() preserves
    // the example's historical row order.
    space.knob("strategy", {"bp", "wp", "pp"});

    space.setValidator([](const SearchSpace &s, const Point &p) {
        if (s.value(p, "strategy") != "pp")
            return true;
        for (const ArrayConfig &cfg : CoreStructures::all()) {
            if (cfg.name == s.value(p, "structure"))
                return cfg.ports() >= 2;
        }
        return false;
    });
    return space;
}

engine::PartitionJob
decodePartitionJob(const SearchSpace &space, const Point &p)
{
    M3D_ASSERT(space.valid(p), "cannot decode an invalid point");
    engine::PartitionJob job;
    const std::string &tech_value = space.value(p, kTechKnob);
    if (tech_value == "m3d-iso")
        job.tech3d = Technology::m3dIso();
    else if (tech_value == "m3d-hetero")
        job.tech3d = Technology::m3dHetero();
    else if (tech_value == "tsv3d-1.3um")
        job.tech3d = Technology::tsv3D();
    else if (tech_value == "tsv3d-5um")
        job.tech3d = Technology::tsv3DResearch();
    else
        M3D_FATAL("unknown technology knob value '", tech_value, "'");

    const std::string &structure = space.value(p, "structure");
    bool found = false;
    for (const ArrayConfig &cfg : CoreStructures::all()) {
        if (cfg.name == structure) {
            job.cfg = cfg;
            found = true;
        }
    }
    M3D_ASSERT(found, "unknown structure '", structure, "'");
    job.kind = kindOf(space.value(p, "strategy"));
    return job;
}

} // namespace search
} // namespace m3d
