/**
 * @file
 * Surrogate-guided strategy ("surrogate").
 *
 * Each generation draws a large pool of fresh candidates, ranks the
 * whole pool with a cheap ridge-regularized quadratic model fitted on
 * every point priced *this run*, and pays for real evaluations only
 * on the top-ranked fraction - the STAGE/HeM3D shape: the model
 * spends microseconds so the engine's milliseconds go to the
 * candidates most likely to matter.  The generated/evaluated gap (and
 * the model refit count) is reported through SearchResult telemetry.
 *
 * The model's features are the per-knob normalized domain indices and
 * their squares (d = 2*knobs + 1 terms including the intercept); the
 * three regression targets are the reference-normalized objectives,
 * so the predicted scalar score is exactly scalarScore() applied to
 * the predictions.  One Gaussian elimination solves all three
 * right-hand sides.
 *
 * Determinism contract: the training set is exactly the points priced
 * during this run, in pricing order.  A warm EvalCache (or a warm
 * daemon) short-circuits the *cost* of an evaluation but returns
 * bit-identical objectives, so cold-vs-warm runs produce
 * byte-identical archives - the cache accelerates, never steers.
 */

#include <algorithm>
#include <array>
#include <cmath>
#include <unordered_set>
#include <utility>

#include "search/strategy_impl.hh"

namespace m3d {
namespace search {
namespace {

/** One training row: feature vector plus the three targets. */
struct Sample
{
    std::vector<double> x;
    double y[3];
};

/** [1, u_0..u_{K-1}, u_0^2..u_{K-1}^2] with u = index/(radix-1). */
std::vector<double>
features(const SearchSpace &space, const Point &p)
{
    const std::size_t knobs = space.knobCount();
    std::vector<double> x;
    x.reserve(2 * knobs + 1);
    x.push_back(1.0);
    for (std::size_t k = 0; k < knobs; ++k) {
        const std::size_t radix = space.knobAt(k).values.size();
        const double u =
            radix > 1 ? static_cast<double>(p[k]) /
                            static_cast<double>(radix - 1)
                      : 0.0;
        x.push_back(u);
    }
    for (std::size_t k = 0; k < knobs; ++k)
        x.push_back(x[1 + k] * x[1 + k]);
    return x;
}

/**
 * Ridge fit: solve (X^T X + ridge*N*I) W = X^T Y for the three
 * targets at once (Gaussian elimination, partial pivoting).  Returns
 * d x 3 weights as three columns.
 */
std::array<std::vector<double>, 3>
fitRidge(const std::vector<Sample> &train, double ridge)
{
    const std::size_t d = train.front().x.size();
    std::vector<std::vector<double>> a(
        d, std::vector<double>(d + 3, 0.0));
    for (const Sample &s : train) {
        for (std::size_t i = 0; i < d; ++i) {
            for (std::size_t j = 0; j < d; ++j)
                a[i][j] += s.x[i] * s.x[j];
            for (int t = 0; t < 3; ++t)
                a[i][d + t] += s.x[i] * s.y[t];
        }
    }
    const double lambda =
        ridge * static_cast<double>(train.size());
    for (std::size_t i = 0; i < d; ++i)
        a[i][i] += lambda;

    for (std::size_t col = 0; col < d; ++col) {
        std::size_t piv = col;
        for (std::size_t r = col + 1; r < d; ++r) {
            if (std::abs(a[r][col]) > std::abs(a[piv][col]))
                piv = r;
        }
        std::swap(a[col], a[piv]);
        // The ridge term keeps the matrix positive definite, so the
        // pivot cannot vanish; guard anyway and skip a dead column.
        if (a[col][col] == 0.0)
            continue;
        for (std::size_t r = 0; r < d; ++r) {
            if (r == col)
                continue;
            const double f = a[r][col] / a[col][col];
            if (f == 0.0)
                continue;
            for (std::size_t j = col; j < d + 3; ++j)
                a[r][j] -= f * a[col][j];
        }
    }
    std::array<std::vector<double>, 3> w;
    for (int t = 0; t < 3; ++t) {
        w[t].assign(d, 0.0);
        for (std::size_t i = 0; i < d; ++i) {
            if (a[i][i] != 0.0)
                w[t][i] = a[i][d + t] / a[i][i];
        }
    }
    return w;
}

double
dot(const std::vector<double> &w, const std::vector<double> &x)
{
    double s = 0.0;
    for (std::size_t i = 0; i < w.size(); ++i)
        s += w[i] * x[i];
    return s;
}

} // namespace

void
runSurrogateStrategy(StrategyContext &ctx, Rng &rng)
{
    const SearchSpace &space = ctx.space();
    const StrategyOptions &opts = ctx.options();
    const std::size_t init_size =
        std::max<std::size_t>(2, opts.population);
    const std::size_t pool_size =
        std::max<std::size_t>(1, opts.surrogate_pool);
    const double fraction =
        std::min(1.0, std::max(1e-6, opts.surrogate_fraction));
    const Objectives &ref = ctx.referenceObjectives();

    std::unordered_set<std::uint64_t> seen;
    std::vector<Sample> train;
    const auto absorb = [&](const std::vector<Point> &pts,
                            const std::vector<Objectives> &objs) {
        for (std::size_t i = 0; i < objs.size(); ++i) {
            Sample s;
            s.x = features(space, pts[i]);
            s.y[0] = objs[i].frequency / ref.frequency;
            s.y[1] = objs[i].epi / ref.epi;
            s.y[2] = objs[i].peak_c / ref.peak_c;
            train.push_back(std::move(s));
        }
    };

    // Bootstrap the model on an unbiased random sample.
    {
        std::vector<Point> init =
            sampleDistinct(space, rng, init_size, &seen);
        ctx.noteGenerated(init.size());
        absorb(init, ctx.price(init));
    }

    while (!ctx.exhausted() && !train.empty()) {
        const std::array<std::vector<double>, 3> w =
            fitRidge(train, opts.surrogate_ridge);
        ctx.noteModelFit();

        std::vector<Point> pool =
            sampleDistinct(space, rng, pool_size, &seen);
        ctx.noteGenerated(pool.size());
        if (pool.empty())
            break; // every point already priced

        // Rank the pool by predicted scalar score (descending) with
        // the canonical point order as the tie-break, then pay for
        // real evaluations on the top fraction only.
        std::vector<std::pair<double, std::size_t>> ranked;
        ranked.reserve(pool.size());
        for (std::size_t i = 0; i < pool.size(); ++i) {
            const std::vector<double> x = features(space, pool[i]);
            const double pred =
                dot(w[0], x) - dot(w[1], x) - 0.5 * dot(w[2], x);
            ranked.emplace_back(pred, i);
        }
        std::sort(ranked.begin(), ranked.end(),
                  [&](const std::pair<double, std::size_t> &a,
                      const std::pair<double, std::size_t> &b) {
                      if (a.first != b.first)
                          return a.first > b.first;
                      return pointLess(pool[a.second],
                                       pool[b.second]);
                  });
        const std::size_t take = std::max<std::size_t>(
            1, static_cast<std::size_t>(std::ceil(
                   static_cast<double>(pool.size()) * fraction)));
        std::vector<Point> selected;
        selected.reserve(std::min(take, pool.size()));
        for (std::size_t k = 0; k < take && k < ranked.size(); ++k)
            selected.push_back(pool[ranked[k].second]);

        const std::vector<Objectives> objs = ctx.price(selected);
        if (objs.empty())
            break;
        absorb(selected, objs);
    }
}

} // namespace search
} // namespace m3d
