#include "search/objectives.hh"

#include <algorithm>

#include "core/frequency.hh"
#include "power/power_model.hh"
#include "thermal/thermal_model.hh"
#include "util/logging.hh"
#include "variation/model.hh"

namespace m3d {
namespace search {

namespace {

/** Domain tag for objective-vector memo keys (see eval_key.hh). */
constexpr std::uint64_t kObjectiveDomain = 0x6f626a65637469ull;

std::vector<WorkloadProfile>
defaultApps()
{
    // Branchy (Gcc), memory-bound (Mcf), and the Figure 8 hot spot
    // (Gamess) - small enough to price thousands of points, diverse
    // enough that EPI and peak temperature are not redundant.
    return {WorkloadLibrary::byName("Gcc"),
            WorkloadLibrary::byName("Mcf"),
            WorkloadLibrary::byName("Gamess")};
}

} // namespace

bool
dominates(const Objectives &a, const Objectives &b)
{
    if (a.frequency < b.frequency || a.epi > b.epi ||
        a.peak_c > b.peak_c || a.yield < b.yield)
        return false;
    return a.frequency > b.frequency || a.epi < b.epi ||
           a.peak_c < b.peak_c || a.yield > b.yield;
}

bool
dominatesBeyond(const Objectives &a, const Objectives &b,
                const Margins &m)
{
    // Yield uses a no-worse-within-margin rule rather than a
    // must-beat rule: a frontier claim is refuted by a challenger
    // that wins the three performance axes without *losing* yield,
    // and the all-1.0 yield of a yield-off run stays neutral.
    return a.frequency > b.frequency * (1.0 + m.frequency_rel) &&
           a.epi < b.epi * (1.0 - m.epi_rel) &&
           a.peak_c < b.peak_c - m.peak_abs_c &&
           a.yield > b.yield - m.yield_abs;
}

ObjectiveEvaluator::ObjectiveEvaluator(engine::Evaluator &ev,
                                       ObjectiveConfig config)
    : ev_(ev), config_(std::move(config))
{
    if (config_.apps.empty())
        config_.apps = defaultApps();
    M3D_ASSERT(config_.thermal_grid > 0,
               "thermal grid must be positive");
    M3D_ASSERT(config_.yield_dies >= 0,
               "yield dies must be non-negative");
    // Warm-seed the memo from the engine cache's persisted objective
    // family (a --cache-file or the daemon's shared snapshot).  Keys
    // bind the full pricing configuration (design, apps, budget,
    // thermal grid), so entries from a differently-configured run
    // simply never match.
    ev_.cache().forEachObjective(
        [this](const engine::EvalKey &key,
               const engine::ObjectiveRecord &r) {
            memo_.emplace(key, Objectives{r.frequency, r.epi,
                                          r.peak_c, r.yield});
            ++stats_.warm_entries;
        });
}

engine::EvalKey
ObjectiveEvaluator::designKey(const CoreDesign &design) const
{
    engine::KeyBuilder kb(kObjectiveDomain);
    engine::hashCoreDesign(kb, design);
    for (const WorkloadProfile &app : config_.apps)
        engine::hashWorkloadProfile(kb, app);
    engine::hashSimBudget(kb, ev_.options().budget);
    kb.add(config_.thermal_grid);
    // Yield knobs join the key only when the axis is on, so yield-off
    // runs keep the exact pre-yield keys and stay interoperable with
    // every existing cache file and daemon snapshot.
    if (config_.yield_dies > 0) {
        kb.add(config_.yield_dies);
        kb.add(config_.yield_frequency);
        kb.add(config_.yield_seed);
    }
    return kb.key();
}

Objectives
ObjectiveEvaluator::compute(const CoreDesign &design,
                            const std::vector<AppRun> &runs) const
{
    M3D_ASSERT(runs.size() == config_.apps.size(),
               "one run per application expected");
    Objectives obj;
    obj.frequency = design.frequency;

    double energy_j = 0.0;
    double instructions = 0.0;
    // Thermal solves run serially inside compute(): evaluateBatch
    // already fans whole designs across the pool, and nesting
    // parallelism would oversubscribe it.
    SolverConfig solver_cfg;
    solver_cfg.threads = 1;
    // Both models depend only on the design, so one instance prices
    // every application's run (solve() is const); the per-app power
    // maps solve together in one multi-field pass (bit-identical to
    // per-app solve() calls, see ThermalModel::solveMany).
    PowerModel pm(design);
    ThermalModel tm(design, config_.thermal_grid, solver_cfg);
    std::vector<std::map<std::string, double>> powers;
    powers.reserve(runs.size());
    for (const AppRun &r : runs) {
        energy_j += r.energyJ();
        instructions += static_cast<double>(r.sim.instructions);
        powers.push_back(pm.blockPower(r.sim.activity, r.seconds));
    }
    for (const ThermalResult &th : tm.solveMany(powers))
        obj.peak_c = std::max(obj.peak_c, th.peak_c);
    M3D_ASSERT(instructions > 0.0, "empty simulation result");
    obj.epi = energy_j / instructions;

    if (config_.yield_dies > 0) {
        // Pure counter-based arithmetic over the variation model: no
        // engine work, bit-identical at any thread count.
        variation::VariationConfig vcfg;
        vcfg.seed = config_.yield_seed;
        vcfg.dies = config_.yield_dies;
        const double target = config_.yield_frequency > 0.0
            ? config_.yield_frequency
            : kBaseFrequency;
        obj.yield = variation::yieldAtFrequency(design, vcfg, target);
    }
    return obj;
}

Objectives
ObjectiveEvaluator::evaluate(const CoreDesign &design)
{
    return evaluateBatch({design}).front();
}

std::vector<Objectives>
ObjectiveEvaluator::evaluateBatch(
    const std::vector<CoreDesign> &designs, const Hook &hook)
{
    std::vector<Objectives> out(designs.size());
    std::vector<std::size_t> missing;
    {
        std::lock_guard<std::mutex> lock(memo_mutex_);
        for (std::size_t i = 0; i < designs.size(); ++i) {
            const auto it = memo_.find(designKey(designs[i]));
            if (it != memo_.end()) {
                out[i] = it->second;
                ++stats_.memo_hits;
            } else {
                missing.push_back(i);
                ++stats_.memo_misses;
            }
        }
    }

    // Memo hits have no work left; report them before the fan-out.
    if (hook) {
        for (std::size_t i = 0; i < designs.size(); ++i) {
            if (std::find(missing.begin(), missing.end(), i) ==
                missing.end())
                hook(i, out[i]);
        }
    }
    if (missing.empty())
        return out;

    // Stage 1: all application runs through the engine's unified
    // batch entry point (memoized, submission-order merged,
    // bit-identical at any thread count).  The design-major request
    // lets submit() regroup the misses app-major onto the batched
    // replay kernel - one trace pass per app for every missing
    // design instead of one per (design, app).
    engine::BatchRunRequest breq;
    breq.runs.reserve(missing.size() * config_.apps.size());
    for (const std::size_t i : missing) {
        for (const WorkloadProfile &app : config_.apps) {
            RunRequest rr;
            rr.kind = RunKind::Single;
            rr.design = designs[i];
            rr.app = app;
            rr.budget = ev_.options().budget;
            rr.path = ev_.options().trace_path;
            breq.runs.push_back(std::move(rr));
        }
    }
    const engine::BatchRunResult bres = ev_.submit(breq);

    // Stage 2: per-design thermal solves fan across the same pool.
    // Each slot is written by exactly one task, so results land in
    // `designs` order regardless of completion order.
    ev_.parallelFor(missing.size(), [&](std::size_t m) {
        const std::size_t i = missing[m];
        const std::size_t base = m * config_.apps.size();
        std::vector<AppRun> slice;
        slice.reserve(config_.apps.size());
        for (std::size_t a = 0; a < config_.apps.size(); ++a)
            slice.push_back(bres.runs[base + a].single);
        out[i] = compute(designs[i], slice);
        if (hook)
            hook(i, out[i]);
    });

    {
        std::lock_guard<std::mutex> lock(memo_mutex_);
        for (const std::size_t i : missing)
            memo_.emplace(designKey(designs[i]), out[i]);
    }
    // Store the fresh vectors back into the engine cache's objective
    // family so savePartitionCache() / the daemon snapshot persists
    // them for the next run's warm start.
    for (const std::size_t i : missing) {
        ev_.cache().storeObjective(
            designKey(designs[i]),
            {out[i].frequency, out[i].epi, out[i].peak_c,
             out[i].yield});
    }
    return out;
}

ObjectiveStats
ObjectiveEvaluator::stats() const
{
    std::lock_guard<std::mutex> lock(memo_mutex_);
    return stats_;
}

} // namespace search
} // namespace m3d
