/**
 * @file
 * Declarative design spaces for the search subsystem.
 *
 * A SearchSpace is an ordered list of named discrete knobs, each with
 * a finite string-valued domain, plus an optional validity predicate
 * over whole points (e.g. "the planar-2D baseline only exists in its
 * canonical form").  A Point assigns one domain index per knob.
 *
 * Points are totally ordered by the mixed-radix flat index (the first
 * knob is the most significant digit), which gives the subsystem a
 * deterministic enumeration order, a deterministic strided grid
 * sample, and a canonical lexicographic tie-break - the properties
 * that make every strategy reproducible at any thread count.
 *
 * The canonical spaces of this repo (the single-core processor space
 * and the per-structure partition grid) live in design_point.hh; this
 * file is the generic machinery.
 */

#ifndef M3D_SEARCH_SEARCH_SPACE_HH_
#define M3D_SEARCH_SEARCH_SPACE_HH_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/rng.hh"

namespace m3d {
namespace search {

/** One named discrete knob. */
struct Knob
{
    std::string name;
    std::vector<std::string> values;
};

/** One design point: a domain index per knob, in knob order. */
using Point = std::vector<int>;

/** A declarative knob space; see the file comment. */
class SearchSpace
{
  public:
    /**
     * Whole-point validity predicate.  Arity and index-range checks
     * run first, so the predicate only sees well-formed points.
     */
    using Validator =
        std::function<bool(const SearchSpace &, const Point &)>;

    explicit SearchSpace(std::string name) : name_(std::move(name)) {}

    const std::string &name() const { return name_; }

    /** Append one knob.  @pre `values` is non-empty. */
    SearchSpace &knob(std::string knob_name,
                      std::vector<std::string> values);

    void setValidator(Validator v) { validator_ = std::move(v); }

    std::size_t knobCount() const { return knobs_.size(); }
    const Knob &knobAt(std::size_t i) const { return knobs_[i]; }

    /** Index of a knob by name; panics if absent. */
    std::size_t knobIndex(const std::string &knob_name) const;

    /** Product of all domain sizes (valid and invalid points). */
    std::uint64_t cardinality() const;

    /** Well-formed (arity + ranges) and accepted by the validator. */
    bool valid(const Point &p) const;

    /** Value string a point assigns to a knob (by name). */
    const std::string &value(const Point &p,
                             const std::string &knob_name) const;

    /** Mixed-radix decode of a flat index; first knob is the MSD. */
    Point pointAt(std::uint64_t index) const;

    /** Inverse of pointAt(). @pre p is well-formed. */
    std::uint64_t indexOf(const Point &p) const;

    /**
     * Every valid point in flat-index order.  @pre the space is small
     * enough to materialize (cardinality <= `limit`, panics
     * otherwise); large spaces use grid()/randomPoint() instead.
     */
    std::vector<Point> enumerate(std::uint64_t limit = 1000000) const;

    /**
     * Deterministic evenly-strided sample of up to `budget` distinct
     * valid points: stride the flat index range, advancing each probe
     * to the next valid unused index.  Returns fewer than `budget`
     * points only when the space holds fewer valid points.
     */
    std::vector<Point> grid(std::size_t budget) const;

    /**
     * Uniform valid point by rejection sampling from `rng` (panics
     * after a generous attempt cap: a space that rejects nearly
     * everything is a declaration bug).
     */
    Point randomPoint(Rng &rng) const;

    /**
     * All valid single-knob mutations of `p`, in (knob, value) order.
     * Never contains `p` itself.
     */
    std::vector<Point> neighbors(const Point &p) const;

    /**
     * One random valid single-knob mutation of `p` (panics after an
     * attempt cap when `p` has no valid neighbor).
     */
    Point mutate(const Point &p, Rng &rng) const;

    /** "tech=m3d-het width=base ..." - for tables and JSON. */
    std::string describe(const Point &p) const;

  private:
    bool wellFormed(const Point &p) const;

    std::string name_;
    std::vector<Knob> knobs_;
    Validator validator_;
};

} // namespace search
} // namespace m3d

#endif // M3D_SEARCH_SEARCH_SPACE_HH_
