/**
 * @file
 * m3dtool - the command-line front end to the library.
 *
 *   m3dtool designs                      list the Table 11 designs
 *   m3dtool workloads                    list the bundled profiles
 *   m3dtool partition <structure|all> [--tech T]
 *                                        best partition vs 2D
 *   m3dtool sweep <tech|all> [--jobs N] [--cache-stats]
 *                                        full partition sweep through
 *                                        the parallel engine
 *   m3dtool simulate <app> [--design D] [--instructions N] [--stats]
 *                                        run one app on one design
 *   m3dtool thermal <app> [--design D]   peak-temperature solve
 *   m3dtool search <strategy> [--seed S] [--budget N] [--jobs N]
 *                  [--json F] [--yield-dies N] [--yield-f GHZ]
 *                                        multi-objective design-space
 *                                        search (src/search)
 *   m3dtool variation <design> [--seed S] [--dies N] [--bins N]
 *                  [--jobs N] [--json F] Monte-Carlo frequency
 *                                        binning and yield@f
 *                                        (src/variation)
 *   m3dtool trace record <app> --out F [--instructions N] [--seed S]
 *                  [--thread T]          pin a captured trace to disk
 *   m3dtool trace info <file> [--app A]  summarize a recorded trace
 *   m3dtool serve [--socket S] [--cache-dir D] [--jobs N] [--detach]
 *                                        run the m3dd evaluation
 *                                        daemon (src/service)
 *   m3dtool client <ping|stats|save|stop> [--socket S]
 *                                        control a running daemon
 *
 * sweep, search, and variation accept `--daemon auto|require|off`
 * (default auto): when a daemon listens on --socket, they route
 * through it and render byte-identical output from the wire results;
 * otherwise they fall back to in-process evaluation.
 *
 * Technologies: m3d-het (default), m3d-iso, tsv3d.
 * Designs: base, tsv3d, m3d-iso, m3d-het-naive, m3d-het, m3d-het-agg.
 * Apps: SPEC2006/SPLASH2/PARSEC names or a profile file path.
 */

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include "arch/stats_dump.hh"
#include "engine/evaluator.hh"
#include "report/json.hh"
#include "search/search_json.hh"
#include "search/strategy.hh"
#include "service/client.hh"
#include "service/server.hh"
#include "util/cli.hh"
#include "util/logging.hh"
#include "variation/variation_json.hh"
#include "power/sim_harness.hh"
#include "thermal/thermal_model.hh"
#include "util/table.hh"
#include "util/units.hh"
#include "workload/profile_io.hh"
#include "workload/trace_buffer.hh"
#include "workload/trace_file.hh"

using namespace m3d;
using namespace m3d::units;

namespace {

int
usage()
{
    std::cerr
        << "usage:\n"
           "  m3dtool designs\n"
           "  m3dtool workloads\n"
           "  m3dtool partition <structure|all> [--tech m3d-het|"
           "m3d-iso|tsv3d]\n"
           "  m3dtool sweep <tech|all> [--jobs N] [--cache-stats]\n"
           "  m3dtool simulate <app> [--design <name>] "
           "[--instructions N] [--stats]\n"
           "  m3dtool thermal <app> [--design <name>]\n"
           "  m3dtool search <grid|random|climb|anneal> [--seed S] "
           "[--budget N] [--jobs N] [--json F] [--yield-dies N]\n"
           "  m3dtool variation <design> [--seed S] [--dies N] "
           "[--bins N] [--jobs N] [--json F]\n"
           "  m3dtool trace record <app> --out <file> "
           "[--instructions N] [--seed S] [--thread T]\n"
           "  m3dtool trace info <file> [--app <name>]\n"
           "  m3dtool serve [--socket S] [--cache-dir D] [--jobs N] "
           "[--detach] [--log F]\n"
           "  m3dtool client <ping|stats|save|stop> [--socket S]\n"
           "(every subcommand accepts --help; sweep/search/variation "
           "accept --daemon auto|require|off)\n";
    return 2;
}

/** Map a subcommand parse status to main()'s contract. */
int
exitCode(cli::ParseStatus status)
{
    return status == cli::ParseStatus::Help ? 0 : 2;
}

Technology
techByName(const std::string &name)
{
    if (name == "m3d-het")
        return Technology::m3dHetero();
    if (name == "m3d-iso")
        return Technology::m3dIso();
    if (name == "tsv3d")
        return Technology::tsv3D();
    M3D_FATAL("unknown technology '", name,
              "' (try m3d-het, m3d-iso, tsv3d)");
}

CoreDesign
designByName(const DesignFactory &factory, const std::string &name)
{
    for (const CoreDesign &d : factory.singleCoreDesigns()) {
        std::string lower = d.name;
        for (char &c : lower)
            c = static_cast<char>(std::tolower(c));
        std::string key = lower;
        for (char &c : key) {
            if (c == ' ')
                c = '-';
        }
        if (key == name || lower == name)
            return d;
    }
    if (name == "m3d-het-naive" || name == "m3d-hetnaive")
        return factory.m3dHetNaive();
    if (name == "m3d-het-agg" || name == "m3d-hetagg")
        return factory.m3dHetAgg();
    M3D_FATAL("unknown design '", name,
              "' (try base, tsv3d, m3d-iso, m3d-het-naive, m3d-het, "
              "m3d-het-agg)");
}

WorkloadProfile
appByName(const std::string &name)
{
    // A path (contains '/' or '.') loads a profile file; otherwise
    // look up the bundled suites.
    if (name.find('/') != std::string::npos ||
        name.find('.') != std::string::npos) {
        return loadProfile(name);
    }
    return WorkloadLibrary::byName(name);
}

/**
 * Render one technology's best-partition table from finished
 * results.  Shared by the in-process path (engine results) and the
 * daemon path (results reconstructed from the wire), so both produce
 * the same bytes for the same results.
 */
void
printPartitionResults(const std::string &tech_name,
                      const std::vector<ArrayConfig> &cfgs,
                      const std::vector<PartitionResult> &results)
{
    Table t("Best partition on " + tech_name);
    t.header({"Structure", "Strategy", "Latency red.", "Energy red.",
              "Footprint red.", "2D latency", "3D latency"});
    for (std::size_t i = 0; i < cfgs.size(); ++i) {
        const PartitionResult &r = results[i];
        t.row({cfgs[i].name, toString(r.spec.kind),
               Table::pct(r.latencyReduction(), 0),
               Table::pct(r.energyReduction(), 0),
               Table::pct(r.areaReduction(), 0),
               Table::num(r.planar.access_latency / ps, 1) + " ps",
               Table::num(r.stacked.access_latency / ps, 1) + " ps"});
    }
    t.print(std::cout);
}

/** Best-partition table for one technology, shared by partition/sweep. */
void
printPartitionTable(engine::Evaluator &ev, const std::string &tech_name,
                    const std::vector<ArrayConfig> &cfgs)
{
    printPartitionResults(tech_name, cfgs,
                          ev.bestForAll(techByName(tech_name), cfgs));
}

/** The m3dd socket every daemon-aware subcommand defaults to. */
const char *const kDefaultSocket = ".m3d_cache/m3dd.sock";

/** Validate a --daemon value; fatal on anything unrecognized. */
void
checkDaemonMode(const std::string &mode)
{
    if (mode != "auto" && mode != "require" && mode != "off")
        M3D_FATAL("unknown --daemon mode '", mode,
                  "' (try auto, require, or off)");
}

/**
 * Decide whether to route through a daemon: probe the socket under
 * `auto` and `require`, fall back under `auto`, and fail loudly
 * under `require` when nothing answers.  Under `auto`, a socket file
 * that exists but refuses the probe is the debris of a daemon that
 * died without cleanup (kill -9): warn, remove it, and continue
 * in-process rather than leaving the corpse to confuse every later
 * probe.
 */
bool
useDaemon(const std::string &mode, const std::string &socket)
{
    if (mode == "off")
        return false;
    if (service::Client::available(socket))
        return true;
    if (mode == "require")
        M3D_FATAL("no m3dd daemon answers on '", socket,
                  "' (--daemon require; start one with `m3dtool "
                  "serve` or use --daemon auto)");
    std::error_code ec;
    if (std::filesystem::exists(socket, ec)) {
        M3D_WARN("socket '", socket,
                 "' exists but no daemon answers (stale socket from "
                 "a killed daemon); removing it and continuing "
                 "in-process");
        std::filesystem::remove(socket, ec);
        if (ec) {
            M3D_WARN("could not remove stale socket '", socket,
                     "': ", ec.message());
        }
    }
    return false;
}

/** One sweep through the daemon; results in `cfgs` order. */
std::vector<PartitionResult>
daemonSweep(const std::string &socket, const std::string &tech_name,
            const std::vector<ArrayConfig> &cfgs)
{
    service::Client client;
    std::string err;
    if (!client.connect(socket, &err))
        M3D_FATAL("daemon sweep failed: ", err);

    report::Json req = report::Json::object();
    req.set("type", report::Json::string("sweep"));
    req.set("tech", report::Json::string(tech_name));
    report::Json structures = report::Json::array();
    for (const ArrayConfig &c : cfgs)
        structures.push(report::Json::string(c.name));
    req.set("structures", std::move(structures));

    report::Json resp;
    if (!client.callChecked(req, &resp, &err))
        M3D_FATAL("daemon sweep failed: ", err);
    const report::Json *results = resp.find("results");
    if (results == nullptr || !results->isArray() ||
        results->elements().size() != cfgs.size())
        M3D_FATAL("daemon sweep failed: malformed response");

    std::vector<PartitionResult> out(cfgs.size());
    for (std::size_t i = 0; i < cfgs.size(); ++i) {
        if (!service::parsePartitionResult(results->elements()[i],
                                           &out[i]))
            M3D_FATAL("daemon sweep failed: malformed result ", i);
    }
    return out;
}

int
cmdDesigns()
{
    DesignFactory factory;
    Table t("Core designs (Table 11)");
    t.header({"Name", "f (GHz)", "Vdd", "Cores", "Ld2Use",
              "MispPenalty"});
    for (const CoreDesign &d : factory.singleCoreDesigns()) {
        t.row({d.name, Table::num(d.frequency / 1e9, 2),
               Table::num(d.vdd, 2), std::to_string(d.num_cores),
               std::to_string(d.load_to_use),
               std::to_string(d.mispredict_penalty)});
    }
    t.separator();
    for (const CoreDesign &d :
         {factory.m3dHetW(), factory.m3dHet2x()}) {
        t.row({d.name, Table::num(d.frequency / 1e9, 2),
               Table::num(d.vdd, 2), std::to_string(d.num_cores),
               std::to_string(d.load_to_use),
               std::to_string(d.mispredict_penalty)});
    }
    t.print(std::cout);
    return 0;
}

int
cmdWorkloads()
{
    Table t("Bundled workload profiles");
    t.header({"Name", "Suite", "WS (KB)", "MPKI", "Parallel"});
    for (const WorkloadProfile &p : WorkloadLibrary::spec2006()) {
        t.row({p.name, "SPEC2006", Table::num(p.working_set_kb, 0),
               Table::num(p.branch_mpki, 1), "-"});
    }
    t.separator();
    for (const WorkloadProfile &p :
         WorkloadLibrary::splash2parsec()) {
        t.row({p.name, "SPLASH2/PARSEC",
               Table::num(p.working_set_kb, 0),
               Table::num(p.branch_mpki, 1),
               Table::pct(p.parallel_frac, 0)});
    }
    t.print(std::cout);
    return 0;
}

int
cmdPartition(const std::vector<std::string> &args)
{
    std::string tech_name = "m3d-het";
    cli::Parser parser("m3dtool partition",
                       "Best partition per structure vs the 2D "
                       "baseline.");
    parser.positional("structure",
                      "RF, IQ, SQ, LQ, RAT, BPT, BTB, DTLB, ITLB, "
                      "IL1, DL1, L2, or all")
        .flag("tech", &tech_name, "m3d-het, m3d-iso, or tsv3d");
    const cli::ParseStatus status = parser.parse(args);
    if (status != cli::ParseStatus::Ok)
        return exitCode(status);
    const std::string which = parser.positionals()[0];

    std::vector<ArrayConfig> cfgs;
    if (which == "all") {
        cfgs = CoreStructures::all();
    } else {
        for (const ArrayConfig &c : CoreStructures::all()) {
            if (c.name == which)
                cfgs.push_back(c);
        }
        if (cfgs.empty())
            M3D_FATAL("unknown structure '", which,
                      "' (try RF, IQ, SQ, LQ, RAT, BPT, BTB, DTLB, "
                      "ITLB, IL1, DL1, L2, or all)");
    }

    engine::Evaluator ev;
    printPartitionTable(ev, tech_name, cfgs);
    return 0;
}

int
cmdSweep(const std::vector<std::string> &args)
{
    int jobs = 0;
    bool cache_stats = false;
    bool no_cache = false;
    std::string cache_file = ".m3d_cache/partition.cache";
    std::string daemon_mode = "auto";
    std::string socket = kDefaultSocket;
    cli::Parser parser("m3dtool sweep",
                       "Full best-partition sweep through the "
                       "parallel evaluation engine.");
    parser.positional("tech", "m3d-het, m3d-iso, tsv3d, or all")
        .flag("jobs", &jobs,
              "worker threads; 0 means all hardware threads")
        .flag("cache-stats", &cache_stats,
              "print memoization-cache statistics after the sweep "
              "(implies in-process evaluation)")
        .flag("cache-file", &cache_file,
              "persistent partition cache location")
        .flag("no-cache", &no_cache,
              "disable memoization (forces full re-evaluation)")
        .flag("daemon", &daemon_mode,
              "auto (use a daemon when one answers), require, or off")
        .flag("socket", &socket, "m3dd socket to probe");
    const cli::ParseStatus status = parser.parse(args);
    if (status != cli::ParseStatus::Ok)
        return exitCode(status);
    const std::string which = parser.positionals()[0];
    checkDaemonMode(daemon_mode);

    std::vector<std::string> tech_names;
    if (which == "all")
        tech_names = {"m3d-het", "m3d-iso", "tsv3d"};
    else
        tech_names = {which};
    for (const std::string &name : tech_names)
        techByName(name); // validate before doing any work

    // --cache-stats reports this process's evaluator, which a remote
    // sweep never touches - force the in-process path for it.
    if (cache_stats && daemon_mode == "require")
        M3D_FATAL("--cache-stats reports in-process evaluation; "
                  "drop it or use --daemon off");
    if (!cache_stats && useDaemon(daemon_mode, socket)) {
        const std::vector<ArrayConfig> cfgs = CoreStructures::all();
        for (const std::string &name : tech_names)
            printPartitionResults(name, cfgs,
                                  daemonSweep(socket, name, cfgs));
        return 0;
    }

    engine::EvalOptions opts;
    opts.threads = jobs;
    opts.cache = !no_cache;
    opts.cache_file = no_cache ? "" : cache_file;

    // Probe the cache path up front: appending preserves an existing
    // cache, and a failure means every result of the sweep would be
    // silently thrown away at save time - warn now and run cold
    // instead.
    if (!opts.cache_file.empty()) {
        const std::filesystem::path parent =
            std::filesystem::path(opts.cache_file).parent_path();
        if (!parent.empty()) {
            std::error_code ec;
            std::filesystem::create_directories(parent, ec);
        }
        std::ofstream probe(opts.cache_file, std::ios::app);
        if (!probe.is_open()) {
            M3D_WARN("cache file '", opts.cache_file,
                     "' is not writable; continuing without a "
                     "persistent cache");
            opts.cache_file.clear();
        }
    }
    engine::Evaluator ev(opts);

    const std::vector<ArrayConfig> cfgs = CoreStructures::all();
    std::vector<std::pair<std::string, engine::CacheStats>>
        batch_stats;
    for (const std::string &name : tech_names) {
        printPartitionTable(ev, name, cfgs);
        // The per-batch delta the engine just produced for this
        // technology (the totals below mix all batches together).
        batch_stats.emplace_back(name,
                                 ev.lastBatchStats().partition);
    }

    if (!opts.cache_file.empty())
        ev.savePartitionCache();

    if (cache_stats) {
        const engine::CacheStats s = ev.cache().partitionStats();
        Table t("Evaluation cache");
        t.header({"Metric", "Value"});
        t.row({"Design points", std::to_string(s.lookups())});
        t.row({"Cache hits", std::to_string(s.hits)});
        t.row({"Cache misses", std::to_string(s.misses)});
        t.row({"Hit rate", Table::pct(s.hitRate(), 1)});
        t.row({"Entries stored",
               std::to_string(ev.cache().partitionEntries())});
        t.row({"Worker threads", std::to_string(ev.threads())});
        t.separator();
        for (const auto &[name, b] : batch_stats) {
            t.row({"Batch " + name,
                   std::to_string(b.hits) + "/" +
                       std::to_string(b.lookups()) + " hits (" +
                       Table::pct(b.hitRate(), 1) + ")"});
        }
        t.print(std::cout);
    }
    return 0;
}

int
cmdSimulate(const std::vector<std::string> &args)
{
    std::string design_name = "m3d-het";
    std::uint64_t instructions = 300000;
    bool stats = false;
    cli::Parser parser("m3dtool simulate",
                       "Run one application on one core design.");
    parser.positional("app", "profile name or profile file path")
        .flag("design", &design_name,
              "base, tsv3d, m3d-iso, m3d-het-naive, m3d-het, or "
              "m3d-het-agg")
        .flag("instructions", &instructions,
              "measured instruction count")
        .flag("stats", &stats, "dump the full statistics block");
    const cli::ParseStatus status = parser.parse(args);
    if (status != cli::ParseStatus::Ok)
        return exitCode(status);

    DesignFactory factory;
    const CoreDesign design =
        designByName(factory, design_name);
    const WorkloadProfile app = appByName(parser.positionals()[0]);

    engine::EvalOptions opts;
    opts.budget.measured = instructions;
    engine::Evaluator ev(opts);
    const AppRun r = ev.run(design, app);

    Table t(app.name + " on " + design.name);
    t.header({"Metric", "Value"});
    t.row({"Frequency", Table::num(design.frequency / 1e9, 2) +
                            " GHz"});
    t.row({"Instructions", std::to_string(r.sim.instructions)});
    t.row({"IPC", Table::num(r.sim.ipc(), 2)});
    t.row({"Runtime", Table::num(r.seconds * 1e6, 1) + " us"});
    t.row({"Average power",
           Table::num(r.energy.avgPower(r.seconds), 2) + " W"});
    t.row({"Energy", Table::num(r.energyJ() * 1e6, 1) + " uJ"});
    t.row({"MPKI", Table::num(
        1000.0 * static_cast<double>(r.sim.activity.mispredicts) /
            static_cast<double>(r.sim.instructions), 2)});
    t.print(std::cout);

    if (stats) {
        std::cout << "\n";
        dumpStats(std::cout, design.name, r.sim);
    }
    return 0;
}

int
cmdThermal(const std::vector<std::string> &args)
{
    std::string design_name = "m3d-het";
    cli::Parser parser("m3dtool thermal",
                       "Peak-temperature solve for one app on one "
                       "design.");
    parser.positional("app", "profile name or profile file path")
        .flag("design", &design_name,
              "base, tsv3d, m3d-iso, m3d-het-naive, m3d-het, or "
              "m3d-het-agg");
    const cli::ParseStatus status = parser.parse(args);
    if (status != cli::ParseStatus::Ok)
        return exitCode(status);

    DesignFactory factory;
    const CoreDesign design =
        designByName(factory, design_name);
    const WorkloadProfile app = appByName(parser.positionals()[0]);

    engine::Evaluator ev;
    const AppRun r = ev.run(design, app);
    PowerModel pm(design);
    const auto blocks = pm.blockPower(r.sim.activity, r.seconds);
    ThermalModel tm(design);
    const ThermalResult th = tm.solve(blocks);

    Table t("Thermal: " + app.name + " on " + design.name);
    t.header({"Block", "Power (W)", "Peak (C)"});
    for (const auto &[name, peak] : th.block_peak_c) {
        t.row({name,
               Table::num(blocks.count(name) ? blocks.at(name) : 0.0,
                          2),
               Table::num(peak, 1)});
    }
    t.print(std::cout);
    std::cout << "Peak: " << Table::num(th.peak_c, 1) << " C in "
              << th.hottest_block << "\n";
    std::cout << "Solver: " << th.solver.iterations
              << " sweeps, residual "
              << report::Json::formatNumber(th.solver.residual)
              << " C, " << Table::num(th.solver.seconds * 1e3, 1)
              << " ms\n";
    return 0;
}

/**
 * Render one finished search from its canonical m3d-search document
 * (search/search_json.hh) - the frontier table, the best-scalarized
 * line, and the optional --json emission.
 *
 * Both search paths funnel through here: the in-process path builds
 * the document from its SearchResult, the daemon path receives it
 * over the wire.  Doubles cross the wire bit-exactly (report::Json's
 * shortest-round-trip formatting), so the two paths print the same
 * bytes for the same (strategy, seed, budget).
 */
void
renderSearchDoc(const search::SearchSpace &space,
                const report::Json &doc,
                const std::string &json_path)
{
    const auto uintOf = [&](const report::Json &o, const char *key) {
        const report::Json *v = o.find(key);
        if (v == nullptr || !v->isNumber())
            M3D_FATAL("malformed m3d-search document: missing '",
                      key, "'");
        return static_cast<std::uint64_t>(v->asNumber());
    };
    const auto numOf = [&](const report::Json &o, const char *key) {
        const report::Json *v = o.find(key);
        if (v == nullptr || !v->isNumber())
            M3D_FATAL("malformed m3d-search document: missing '",
                      key, "'");
        return v->asNumber();
    };
    const report::Json *strategy = doc.find("strategy");
    const report::Json *frontier = doc.find("frontier");
    const report::Json *best = doc.find("best");
    if (strategy == nullptr || !strategy->isString() ||
        frontier == nullptr || !frontier->isArray() ||
        best == nullptr || !best->isObject())
        M3D_FATAL("malformed m3d-search document");

    Table t("Pareto frontier: " + strategy->asString() + ", seed " +
            std::to_string(uintOf(doc, "seed")) + " (" +
            std::to_string(uintOf(doc, "evaluated")) +
            " points priced)");
    // The yield column only appears when the yield axis was on -
    // both render paths read the same document field, so daemon and
    // in-process output stay byte-identical either way.
    const report::Json *yield_dies = doc.find("yield_dies");
    const bool show_yield = yield_dies != nullptr &&
                            yield_dies->isNumber() &&
                            yield_dies->asNumber() > 0.0;
    std::vector<std::string> header = {"Design", "Tech", "Width",
                                       "Depth", "f (GHz)", "EPI (nJ)",
                                       "Peak (C)"};
    if (show_yield)
        header.push_back("Yield");
    t.header(header);
    for (const report::Json &e : frontier->elements()) {
        const std::uint64_t index = uintOf(e, "index");
        const search::Point p =
            space.pointAt(static_cast<std::size_t>(index));
        std::vector<std::string> row = {
            "dse-" + std::to_string(index), space.value(p, "tech"),
            space.value(p, "width"), space.value(p, "depth"),
            Table::num(numOf(e, "frequency_ghz"), 2),
            Table::num(numOf(e, "epi_nj"), 3),
            Table::num(numOf(e, "peak_c"), 1)};
        if (show_yield)
            row.push_back(Table::pct(numOf(e, "yield"), 1));
        t.row(row);
    }
    t.print(std::cout);
    const report::Json *point = best->find("point");
    std::cout << "Best scalarized: dse-" << uintOf(*best, "index")
              << " ("
              << (point != nullptr && point->isString()
                      ? point->asString()
                      : std::string("?"))
              << "), score "
              << report::Json::formatNumber(numOf(*best, "score"))
              << "\n";

    if (!json_path.empty()) {
        std::ofstream out(json_path);
        if (!out.is_open())
            M3D_FATAL("cannot write '", json_path, "'");
        doc.write(out);
        std::cout << "Wrote " << json_path << "\n";
    }
}

int
cmdSearch(const std::vector<std::string> &args)
{
    int jobs = 0;
    std::uint64_t seed = 7;
    std::uint64_t budget = 16;
    std::uint64_t instructions = 60000;
    int thermal_grid = 32;
    std::uint64_t population = 16;
    std::uint64_t surrogate_pool = 256;
    double surrogate_fraction = 0.125;
    double surrogate_ridge = 1e-3;
    int yield_dies = 0;
    double yield_f_ghz = 0.0;
    std::uint64_t yield_seed = 7;
    std::string json_path;
    std::string cache_file;
    std::string daemon_mode = "auto";
    std::string socket = kDefaultSocket;
    cli::Parser parser(
        "m3dtool search",
        "Multi-objective design-space search: frequency up, "
        "energy/instruction and peak temperature down, every point "
        "priced through the evaluation engine.");
    parser.positional("strategy",
                      "grid, random, climb, anneal, evolve, or "
                      "surrogate")
        .flag("seed", &seed, "random seed (fixed seed = fixed result)")
        .flag("budget", &budget,
              "points to price, excluding the 2D reference")
        .flag("jobs", &jobs,
              "worker threads; 0 means all hardware threads "
              "(results do not depend on this)")
        .flag("instructions", &instructions,
              "measured instruction count per application run")
        .flag("thermal-grid", &thermal_grid,
              "thermal solver grid resolution per side")
        .flag("population", &population,
              "evolve/surrogate: population (and surrogate bootstrap "
              "sample) size")
        .flag("surrogate-pool", &surrogate_pool,
              "surrogate: candidates generated per generation")
        .flag("surrogate-fraction", &surrogate_fraction,
              "surrogate: top model-ranked fraction of each pool "
              "that is actually evaluated")
        .flag("surrogate-ridge", &surrogate_ridge,
              "surrogate: ridge regularization of the model fit")
        .flag("yield-dies", &yield_dies,
              "price a fourth yield@f objective over this many "
              "Monte-Carlo dies (0 = off)")
        .flag("yield-f", &yield_f_ghz,
              "yield target clock in GHz (0 = the 2D baseline clock)")
        .flag("yield-seed", &yield_seed,
              "seed of the yield axis's variation population")
        .flag("json", &json_path,
              "write the result as m3d-search JSON to this file")
        .flag("cache-file", &cache_file,
              "persistent partition cache location")
        .flag("daemon", &daemon_mode,
              "auto (use a daemon when one answers), require, or off")
        .flag("socket", &socket, "m3dd socket to probe");
    const cli::ParseStatus status = parser.parse(args);
    if (status != cli::ParseStatus::Ok)
        return exitCode(status);
    const std::string strategy = parser.positionals()[0];
    checkDaemonMode(daemon_mode);
    if (yield_dies < 0 || yield_dies > 65536)
        M3D_FATAL("--yield-dies must be in [0, 65536], got ",
                  yield_dies);
    if (yield_f_ghz < 0.0 || yield_f_ghz > 100.0)
        M3D_FATAL("--yield-f must be in [0, 100] GHz, got ",
                  yield_f_ghz);
    {
        const std::vector<std::string> &names =
            search::strategyNames();
        if (std::find(names.begin(), names.end(), strategy) ==
            names.end()) {
            std::string known;
            for (const std::string &n : names)
                known += (known.empty() ? "" : ", ") + n;
            M3D_FATAL("unknown strategy '", strategy, "' (try ",
                      known, ")");
        }
    }

    if (useDaemon(daemon_mode, socket)) {
        service::Client client;
        std::string err;
        if (!client.connect(socket, &err))
            M3D_FATAL("daemon search failed: ", err);
        report::Json req = report::Json::object();
        req.set("type", report::Json::string("search"));
        req.set("strategy", report::Json::string(strategy));
        req.set("seed", report::Json::number(
                            static_cast<double>(seed)));
        req.set("budget", report::Json::number(
                              static_cast<double>(budget)));
        req.set("instructions",
                report::Json::number(
                    static_cast<double>(instructions)));
        req.set("thermal_grid",
                report::Json::number(
                    static_cast<double>(thermal_grid)));
        req.set("population",
                report::Json::number(
                    static_cast<double>(population)));
        req.set("surrogate_pool",
                report::Json::number(
                    static_cast<double>(surrogate_pool)));
        req.set("surrogate_fraction",
                report::Json::number(surrogate_fraction));
        req.set("surrogate_ridge",
                report::Json::number(surrogate_ridge));
        req.set("yield_dies",
                report::Json::number(
                    static_cast<double>(yield_dies)));
        req.set("yield_f_ghz", report::Json::number(yield_f_ghz));
        req.set("yield_seed",
                report::Json::number(
                    static_cast<double>(yield_seed)));
        report::Json resp;
        if (!client.callChecked(req, &resp, &err))
            M3D_FATAL("daemon search failed: ", err);
        const report::Json *doc = resp.find("result");
        if (doc == nullptr || !doc->isObject())
            M3D_FATAL("daemon search failed: malformed response");
        renderSearchDoc(search::coreSpace(), *doc, json_path);
        return 0;
    }

    engine::EvalOptions opts;
    opts.threads = jobs;
    opts.budget.measured = instructions;
    opts.cache_file = cache_file;
    engine::Evaluator ev(opts);

    const search::SearchSpace space = search::coreSpace();
    search::ObjectiveConfig ocfg;
    ocfg.thermal_grid = thermal_grid;
    ocfg.yield_dies = yield_dies;
    ocfg.yield_frequency = yield_f_ghz * 1e9;
    ocfg.yield_seed = yield_seed;
    search::ObjectiveEvaluator objectives(ev, ocfg);

    search::StrategyOptions sopts;
    sopts.seed = seed;
    sopts.budget = budget;
    sopts.population = population;
    sopts.surrogate_pool = surrogate_pool;
    sopts.surrogate_fraction = surrogate_fraction;
    sopts.surrogate_ridge = surrogate_ridge;
    const search::SearchResult result = search::runSearch(
        space, strategy, sopts,
        search::enginePricer(space, objectives),
        search::coreBaselinePoint(space));

    if (!cache_file.empty())
        ev.savePartitionCache();

    // One document builder (search/search_json.hh) and one renderer
    // serve both this path and the daemon path; see renderSearchDoc.
    renderSearchDoc(space,
                    search::searchResultJson(space, strategy, sopts,
                                             result, ocfg),
                    json_path);
    return 0;
}

/**
 * Render one finished variation run from its canonical m3d-variation
 * document (variation/variation_json.hh).  Both paths funnel through
 * here - the in-process path builds the document from its
 * VariationOutcome, the daemon path receives it over the wire - so
 * the two print the same bytes for the same (design, seed, dies,
 * bins).
 */
void
renderVariationDoc(const report::Json &doc,
                   const std::string &json_path)
{
    const auto numOf = [&](const report::Json &o, const char *key) {
        const report::Json *v = o.find(key);
        if (v == nullptr || !v->isNumber())
            M3D_FATAL("malformed m3d-variation document: missing '",
                      key, "'");
        return v->asNumber();
    };
    const report::Json *design = doc.find("design");
    const report::Json *histogram = doc.find("histogram");
    if (design == nullptr || !design->isString() ||
        histogram == nullptr || !histogram->isArray())
        M3D_FATAL("malformed m3d-variation document");

    Table t("Frequency binning: " + design->asString() + ", seed " +
            std::to_string(
                static_cast<std::uint64_t>(numOf(doc, "seed"))) +
            " (" +
            std::to_string(
                static_cast<std::uint64_t>(numOf(doc, "dies"))) +
            " dies)");
    t.header({"Bin (GHz)", "Ship (GHz)", "Dies", "Yield", "BIPS",
              "EPI (nJ)"});
    for (const report::Json &e : histogram->elements()) {
        const bool empty = numOf(e, "count") == 0.0;
        t.row({Table::num(numOf(e, "lo_ghz"), 3) + " - " +
                   Table::num(numOf(e, "hi_ghz"), 3),
               Table::num(numOf(e, "shipped_ghz"), 3),
               std::to_string(
                   static_cast<std::uint64_t>(numOf(e, "count"))),
               Table::pct(numOf(e, "yield"), 1),
               empty ? "-" : Table::num(numOf(e, "bips"), 3),
               empty ? "-" : Table::num(numOf(e, "epi_nj"), 3)});
    }
    t.print(std::cout);
    std::cout << "Nominal " << Table::num(numOf(doc, "nominal_ghz"), 3)
              << " GHz, mean " << Table::num(numOf(doc, "mean_ghz"), 3)
              << " GHz, sigma "
              << Table::num(numOf(doc, "sigma_mhz"), 1) << " MHz\n";
    std::cout << "Scrap: "
              << static_cast<std::uint64_t>(numOf(doc, "scrap"))
              << " dies (" << Table::pct(numOf(doc, "scrap_share"), 1)
              << "); expected shipped throughput "
              << Table::num(numOf(doc, "expected_bips"), 3)
              << " BIPS\n";

    if (!json_path.empty()) {
        std::ofstream out(json_path);
        if (!out.is_open())
            M3D_FATAL("cannot write '", json_path, "'");
        doc.write(out);
        std::cout << "Wrote " << json_path << "\n";
    }
}

int
cmdVariation(const std::vector<std::string> &args)
{
    int jobs = 0;
    std::uint64_t seed = 7;
    int dies = 256;
    int bins = 8;
    std::uint64_t instructions = 60000;
    std::string json_path;
    std::string cache_file;
    std::string daemon_mode = "auto";
    std::string socket = kDefaultSocket;
    cli::Parser parser(
        "m3dtool variation",
        "Monte-Carlo inter-tier process variation: bin a virtual die "
        "population of one design by derived clock, price every bin "
        "through the engine, and report the yield@f curve.");
    parser.positional("design",
                      "base, tsv3d, m3d-iso, m3d-het-naive, m3d-het, "
                      "or m3d-het-agg")
        .flag("seed", &seed,
              "population seed (fixed seed = fixed population)")
        .flag("dies", &dies, "virtual dies to draw")
        .flag("bins", &bins, "frequency histogram bins")
        .flag("jobs", &jobs,
              "worker threads; 0 means all hardware threads "
              "(results do not depend on this)")
        .flag("instructions", &instructions,
              "measured instruction count per application run")
        .flag("json", &json_path,
              "write the result as m3d-variation JSON to this file")
        .flag("cache-file", &cache_file,
              "persistent partition cache location")
        .flag("daemon", &daemon_mode,
              "auto (use a daemon when one answers), require, or off")
        .flag("socket", &socket, "m3dd socket to probe");
    const cli::ParseStatus status = parser.parse(args);
    if (status != cli::ParseStatus::Ok)
        return exitCode(status);
    const std::string design_name = parser.positionals()[0];
    checkDaemonMode(daemon_mode);
    if (dies < 1 || dies > 65536)
        M3D_FATAL("--dies must be in [1, 65536], got ", dies);
    if (bins < 1 || bins > 1024)
        M3D_FATAL("--bins must be in [1, 1024], got ", bins);

    DesignFactory factory;
    const CoreDesign design = designByName(factory, design_name);

    variation::VariationConfig vcfg;
    vcfg.seed = seed;
    vcfg.dies = dies;
    vcfg.bins = bins;

    if (useDaemon(daemon_mode, socket)) {
        service::Client client;
        std::string err;
        if (!client.connect(socket, &err))
            M3D_FATAL("daemon variation failed: ", err);
        report::Json req = report::Json::object();
        req.set("type", report::Json::string("variation"));
        req.set("design", report::Json::string(design_name));
        req.set("seed", report::Json::number(
                            static_cast<double>(seed)));
        req.set("dies", report::Json::number(
                            static_cast<double>(dies)));
        req.set("bins", report::Json::number(
                            static_cast<double>(bins)));
        req.set("instructions",
                report::Json::number(
                    static_cast<double>(instructions)));
        report::Json resp;
        if (!client.callChecked(req, &resp, &err))
            M3D_FATAL("daemon variation failed: ", err);
        const report::Json *doc = resp.find("result");
        if (doc == nullptr || !doc->isObject())
            M3D_FATAL("daemon variation failed: malformed response");
        renderVariationDoc(*doc, json_path);
        return 0;
    }

    engine::EvalOptions opts;
    opts.threads = jobs;
    opts.budget.measured = instructions;
    opts.cache_file = cache_file;
    engine::Evaluator ev(opts);

    // The search objectives' default application mix: branchy,
    // memory-bound, and hot.
    const std::vector<WorkloadProfile> apps = {
        WorkloadLibrary::byName("Gcc"), WorkloadLibrary::byName("Mcf"),
        WorkloadLibrary::byName("Gamess")};
    const variation::VariationOutcome outcome =
        variation::binPopulation(ev, design, vcfg, apps);

    if (!cache_file.empty())
        ev.savePartitionCache();

    std::vector<std::string> app_names;
    for (const WorkloadProfile &a : apps)
        app_names.push_back(a.name);
    renderVariationDoc(variation::variationResultJson(
                           design_name, vcfg, app_names, outcome),
                       json_path);
    return 0;
}

int
cmdTraceRecord(const std::vector<std::string> &args)
{
    std::string out_path;
    std::uint64_t instructions = 400000;
    std::uint64_t seed = 42;
    std::uint64_t thread = 0;
    cli::Parser parser("m3dtool trace record",
                       "Capture an application's micro-op stream "
                       "into the shared trace registry and pin it to "
                       "a file for later replay.");
    parser.positional("app", "profile name or profile file path")
        .flag("out", &out_path, "output trace file (required)")
        .flag("instructions", &instructions, "micro-ops to record")
        .flag("seed", &seed, "generator seed")
        .flag("thread", &thread,
              "logical thread id (parallel apps shift per-thread "
              "phase)");
    const cli::ParseStatus status = parser.parse(args);
    if (status != cli::ParseStatus::Ok)
        return exitCode(status);
    if (out_path.empty())
        M3D_FATAL("trace record requires --out <file>");

    const WorkloadProfile app = appByName(parser.positionals()[0]);
    const auto buf = TraceRegistry::global().acquire(
        app, seed, static_cast<int>(thread), instructions);
    buf->save(out_path);

    Table t("Recorded " + app.name);
    t.header({"Field", "Value"});
    t.row({"File", out_path});
    t.row({"Micro-ops", std::to_string(buf->size())});
    t.row({"Seed", std::to_string(seed)});
    t.row({"Thread", std::to_string(thread)});
    t.row({"Resolved mispredicts",
           std::to_string(buf->resolvedMispredicts())});
    t.print(std::cout);
    return 0;
}

int
cmdTraceInfo(const std::vector<std::string> &args)
{
    std::string app_name;
    cli::Parser parser("m3dtool trace info",
                       "Summarize a recorded trace file: op mix, "
                       "branch statistics, memory footprint.");
    parser.positional("file", "trace file written by `trace record`")
        .flag("app", &app_name,
              "profile name or file; enables predictor "
              "pre-resolution over the loaded trace");
    const cli::ParseStatus status = parser.parse(args);
    if (status != cli::ParseStatus::Ok)
        return exitCode(status);
    const std::string path = parser.positionals()[0];

    // Load through the SoA buffer and walk it with the same
    // ChunkView range the replay engines use: one pass over the
    // column arrays, no per-op AoS materialization.  The op-mix
    // numbers are pure stream properties, so any profile yields the
    // same table; the profile only matters for the predictor
    // resolution reported under --app.
    const WorkloadProfile app =
        app_name.empty() ? WorkloadProfile() : appByName(app_name);
    const TraceBuffer buf(path, app);
    std::uint64_t loads = 0, stores = 0, branches = 0, taken = 0;
    std::uint64_t calls = 0, returns = 0, fp = 0, complex_ops = 0;
    std::uint64_t min_addr = UINT64_MAX, max_addr = 0;
    for (const TraceBuffer::ChunkView v : buf.range(0, buf.size())) {
        const TraceBuffer::Chunk &ch = *v.chunk;
        for (std::uint32_t o = v.begin; o < v.end; ++o) {
            const auto op = static_cast<OpClass>(ch.op[o]);
            const std::uint8_t flags = ch.flags[o];
            switch (op) {
            case OpClass::Load:
                ++loads;
                break;
            case OpClass::Store:
                ++stores;
                break;
            case OpClass::Branch:
                ++branches;
                taken += (flags & TraceBuffer::kFlagTaken) ? 1 : 0;
                calls += (flags & TraceBuffer::kFlagCall) ? 1 : 0;
                returns += (flags & TraceBuffer::kFlagReturn) ? 1 : 0;
                break;
            case OpClass::FpAdd:
            case OpClass::FpMult:
            case OpClass::FpDiv:
                ++fp;
                break;
            default:
                break;
            }
            complex_ops +=
                (flags & TraceBuffer::kFlagComplex) ? 1 : 0;
            if ((op == OpClass::Load || op == OpClass::Store) &&
                ch.address[o] != 0) {
                min_addr = std::min(min_addr, ch.address[o]);
                max_addr = std::max(max_addr, ch.address[o]);
            }
        }
    }
    const auto n = static_cast<double>(buf.size());

    Table t("Trace " + path);
    t.header({"Field", "Value"});
    t.row({"Micro-ops", std::to_string(buf.size())});
    t.row({"Loads", Table::pct(static_cast<double>(loads) / n, 1)});
    t.row({"Stores", Table::pct(static_cast<double>(stores) / n, 1)});
    t.row({"Branches",
           Table::pct(static_cast<double>(branches) / n, 1)});
    t.row({"Taken",
           branches ? Table::pct(static_cast<double>(taken) /
                                     static_cast<double>(branches),
                                 1)
                    : "-"});
    t.row({"Calls", std::to_string(calls)});
    t.row({"Returns", std::to_string(returns)});
    t.row({"FP ops", Table::pct(static_cast<double>(fp) / n, 1)});
    t.row({"Complex decodes",
           Table::pct(static_cast<double>(complex_ops) / n, 1)});
    if (max_addr != 0) {
        t.row({"Data span",
               Table::num(static_cast<double>(max_addr - min_addr) /
                              1024.0,
                          0) +
                   " KB"});
    }
    if (!app_name.empty()) {
        // The load above already recomputed the fixed-core predictor
        // outcomes (tournament + RAS) over the trace under the named
        // profile - the same derived state the replay engine shares
        // per process.
        t.row({"Resolved mispredicts",
               std::to_string(buf.resolvedMispredicts())});
        t.row({"Resolved MPKI",
               Table::num(1000.0 *
                              static_cast<double>(
                                  buf.resolvedMispredicts()) /
                              n,
                          2)});
    }
    t.print(std::cout);
    return 0;
}

int
cmdTrace(const std::vector<std::string> &args)
{
    if (args.empty()) {
        std::cerr << "usage:\n"
                     "  m3dtool trace record <app> --out <file> "
                     "[--instructions N] [--seed S] [--thread T]\n"
                     "  m3dtool trace info <file> [--app <name>]\n";
        return 2;
    }
    const std::vector<std::string> rest(args.begin() + 1, args.end());
    if (args[0] == "record")
        return cmdTraceRecord(rest);
    if (args[0] == "info")
        return cmdTraceInfo(rest);
    std::cerr << "m3dtool trace: unknown subcommand '" << args[0]
              << "' (try record, info)\n";
    return 2;
}

volatile std::sig_atomic_t g_serve_stop = 0;

void
onServeSignal(int)
{
    g_serve_stop = 1;
}

/** Run one server until a signal or a shutdown request. */
int
runServer(const service::ServerOptions &sopts, bool announce)
{
    service::Server server(sopts);
    std::string err;
    if (!server.start(&err))
        M3D_FATAL("m3dd: ", err);
    if (announce) {
        std::cout << "m3dd: listening on " << sopts.socket_path
                  << " (pid " << ::getpid() << ", "
                  << server.evaluator().threads() << " threads"
                  << (sopts.cache_dir.empty()
                          ? std::string(", no persistence")
                          : ", cache dir '" + sopts.cache_dir + "'")
                  << ")\n"
                  << std::flush;
    }
    std::signal(SIGINT, onServeSignal);
    std::signal(SIGTERM, onServeSignal);
    server.wait(&g_serve_stop);
    server.stop();
    return 0;
}

int
cmdServe(const std::vector<std::string> &args)
{
    std::string socket = kDefaultSocket;
    std::string cache_dir = ".m3d_cache/m3dd";
    std::string log_path;
    int jobs = 0;
    bool detach = false;
    bool no_cache = false;
    double snapshot_every = 0.0;
    cli::Parser parser(
        "m3dtool serve",
        "Run the m3dd evaluation daemon: a warm trace registry and a "
        "sharded, persistent evaluation cache serving concurrent "
        "clients over a Unix-domain socket.");
    parser.flag("socket", &socket, "Unix-domain socket to listen on")
        .flag("cache-dir", &cache_dir,
              "sharded cache snapshot directory (locked: one daemon "
              "per dir)")
        .flag("jobs", &jobs,
              "worker threads; 0 means all hardware threads")
        .flag("detach", &detach,
              "daemonize: fork, report readiness, and return")
        .flag("log", &log_path,
              "detached daemon's log file (default "
              "<cache-dir>/m3dd.log)")
        .flag("no-cache-dir", &no_cache,
              "serve without persistence (no lock, no snapshots)")
        .flag("snapshot-every", &snapshot_every,
              "also snapshot the cache every N seconds (0 = only on "
              "save/stop)");
    const cli::ParseStatus status = parser.parse(args);
    if (status != cli::ParseStatus::Ok)
        return exitCode(status);

    service::ServerOptions sopts;
    sopts.socket_path = socket;
    sopts.cache_dir = no_cache ? "" : cache_dir;
    sopts.threads = jobs;
    sopts.snapshot_every_s = snapshot_every;

    if (!detach)
        return runServer(sopts, /*announce=*/true);

    // Detached mode: fork, let the child own the server, and only
    // report success once the child has actually bound the socket
    // and loaded its cache - so `serve --detach && client ping`
    // cannot race the startup.
    if (log_path.empty())
        log_path = (sopts.cache_dir.empty() ? std::string(".m3d_cache")
                                            : sopts.cache_dir) +
                   "/m3dd.log";
    {
        const std::filesystem::path parent =
            std::filesystem::path(log_path).parent_path();
        if (!parent.empty()) {
            std::error_code ec;
            std::filesystem::create_directories(parent, ec);
        }
    }

    int ready[2];
    if (::pipe(ready) != 0)
        M3D_FATAL("m3dd: pipe() failed: ", std::strerror(errno));
    const pid_t pid = ::fork();
    if (pid < 0)
        M3D_FATAL("m3dd: fork() failed: ", std::strerror(errno));

    if (pid == 0) {
        // Child: new session, stdio onto the log file.  The
        // redirection is not cosmetic - an inherited stdout/stderr
        // pipe would keep the parent's callers (cmake's
        // execute_process, command substitutions) blocked for the
        // daemon's whole lifetime.
        ::close(ready[0]);
        ::setsid();
        const int devnull = ::open("/dev/null", O_RDONLY);
        if (devnull >= 0) {
            ::dup2(devnull, STDIN_FILENO);
            ::close(devnull);
        }
        const int log = ::open(log_path.c_str(),
                               O_CREAT | O_WRONLY | O_APPEND, 0644);
        if (log >= 0) {
            ::dup2(log, STDOUT_FILENO);
            ::dup2(log, STDERR_FILENO);
            ::close(log);
        }

        service::Server server(sopts);
        std::string err;
        const bool ok = server.start(&err);
        const std::string msg = ok ? "ok\n" : "error: " + err + "\n";
        if (::write(ready[1], msg.data(), msg.size()) < 0) {
            // The parent is gone; serve anyway.
        }
        ::close(ready[1]);
        if (!ok) {
            std::cerr << "m3dd: " << err << "\n";
            std::_Exit(1);
        }
        std::cout << "m3dd: listening on " << sopts.socket_path
                  << " (pid " << ::getpid() << ")\n"
                  << std::flush;
        std::signal(SIGINT, onServeSignal);
        std::signal(SIGTERM, onServeSignal);
        server.wait(&g_serve_stop);
        server.stop();
        std::cout.flush();
        std::cerr.flush();
        std::_Exit(0);
    }

    // Parent: relay the child's verdict.
    ::close(ready[1]);
    std::string verdict;
    char buf[256];
    ssize_t n;
    while ((n = ::read(ready[0], buf, sizeof(buf))) > 0)
        verdict.append(buf, static_cast<std::size_t>(n));
    ::close(ready[0]);
    if (verdict.rfind("ok", 0) == 0) {
        std::cout << "m3dd: listening on " << socket << " (pid "
                  << pid << ", log " << log_path << ")\n";
        return 0;
    }
    int wstatus = 0;
    ::waitpid(pid, &wstatus, 0);
    std::cerr << "m3dd: failed to start: "
              << (verdict.empty() ? std::string("child died before "
                                                "reporting readiness")
                                  : verdict);
    return 1;
}

int
cmdClient(const std::vector<std::string> &args)
{
    std::string socket = kDefaultSocket;
    cli::Parser parser("m3dtool client",
                       "Control a running m3dd daemon.");
    parser.positional("action", "ping, stats, save, or stop")
        .flag("socket", &socket, "daemon socket to talk to");
    const cli::ParseStatus status = parser.parse(args);
    if (status != cli::ParseStatus::Ok)
        return exitCode(status);
    const std::string action = parser.positionals()[0];
    if (action != "ping" && action != "stats" && action != "save" &&
        action != "stop")
        M3D_FATAL("unknown client action '", action,
                  "' (try ping, stats, save, stop)");

    service::Client client;
    std::string err;
    if (!client.connect(socket, &err))
        M3D_FATAL("no m3dd daemon answers on '", socket, "': ", err);

    const auto uintMember = [](const report::Json &o,
                               const char *key) -> std::uint64_t {
        const report::Json *v = o.find(key);
        return v != nullptr && v->isNumber()
                   ? static_cast<std::uint64_t>(v->asNumber())
                   : 0;
    };

    // A stop must be synchronous: the daemon acknowledges the
    // shutdown request before it snapshots and releases the cache
    // lock, so "stop && serve" would otherwise race the teardown.
    // Learn the pid first, then wait for the process to be gone.
    pid_t stop_pid = 0;
    if (action == "stop") {
        report::Json ping = report::Json::object();
        ping.set("type", report::Json::string("ping"));
        report::Json pong;
        if (client.callChecked(ping, &pong, &err))
            stop_pid =
                static_cast<pid_t>(uintMember(pong, "pid"));
    }

    report::Json req = report::Json::object();
    req.set("type", report::Json::string(
                        action == "stop" ? "shutdown"
                        : action == "ping" ? "ping"
                                           : action));
    report::Json resp;
    if (!client.callChecked(req, &resp, &err))
        M3D_FATAL("daemon request failed: ", err);

    if (action == "ping") {
        std::cout << "pong from pid " << uintMember(resp, "pid")
                  << " on " << socket << "\n";
        return 0;
    }
    if (action == "save") {
        const report::Json *dir = resp.find("dir");
        std::cout << "Saved " << uintMember(resp, "entries")
                  << " entries to "
                  << (dir != nullptr && dir->isString()
                          ? dir->asString()
                          : std::string("?"))
                  << "\n";
        return 0;
    }
    if (action == "stop") {
        // Wait (bounded) for the daemon process to exit so the
        // caller can immediately restart on the same cache dir.
        bool exited = stop_pid <= 0;
        for (int i = 0; !exited && i < 1000; ++i) {
            if (::kill(stop_pid, 0) != 0 && errno == ESRCH)
                exited = true;
            else
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(10));
        }
        if (!exited)
            M3D_WARN("m3dd pid ", stop_pid,
                     " acknowledged the shutdown but is still "
                     "running; its cache lock may linger briefly");
        std::cout << "m3dd on " << socket << " stopped\n";
        return 0;
    }

    // stats
    const report::Json *server = resp.find("server");
    const report::Json *cache = resp.find("cache");
    if (server == nullptr || cache == nullptr)
        M3D_FATAL("daemon request failed: malformed stats response");
    Table t("m3dd on " + socket + " (pid " +
            std::to_string(uintMember(resp, "pid")) + ", " +
            std::to_string(uintMember(resp, "threads")) +
            " threads)");
    t.header({"Counter", "Value"});
    for (const char *key :
         {"connections", "requests", "errors", "runs_requested",
          "runs_coalesced", "runs_submitted", "run_hook_fires",
          "partitions_requested", "partitions_coalesced",
          "partitions_submitted", "drains", "searches",
          "variations", "snapshots"}) {
        t.row({key, std::to_string(uintMember(*server, key))});
    }
    t.separator();
    for (const char *family : {"partition", "run", "multi"}) {
        const report::Json *f = cache->find(family);
        if (f == nullptr)
            continue;
        t.row({std::string(family) + " cache",
               std::to_string(uintMember(*f, "hits")) + "/" +
                   std::to_string(uintMember(*f, "hits") +
                                  uintMember(*f, "misses")) +
                   " hits, " +
                   std::to_string(uintMember(*f, "entries")) +
                   " entries"});
    }
    t.print(std::cout);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string cmd = argv[1];
    const std::vector<std::string> args(argv + 2, argv + argc);

    if (cmd == "designs")
        return cmdDesigns();
    if (cmd == "workloads")
        return cmdWorkloads();
    if (cmd == "partition")
        return cmdPartition(args);
    if (cmd == "sweep")
        return cmdSweep(args);
    if (cmd == "simulate")
        return cmdSimulate(args);
    if (cmd == "thermal")
        return cmdThermal(args);
    if (cmd == "search")
        return cmdSearch(args);
    if (cmd == "variation")
        return cmdVariation(args);
    if (cmd == "trace")
        return cmdTrace(args);
    if (cmd == "serve")
        return cmdServe(args);
    if (cmd == "client")
        return cmdClient(args);
    return usage();
}
