/**
 * @file
 * m3dtool - the command-line front end to the library.
 *
 *   m3dtool designs                      list the Table 11 designs
 *   m3dtool workloads                    list the bundled profiles
 *   m3dtool partition <structure|all> [--tech T]
 *                                        best partition vs 2D
 *   m3dtool sweep <tech|all> [--jobs N] [--cache-stats]
 *                                        full partition sweep through
 *                                        the parallel engine
 *   m3dtool simulate <app> [--design D] [--instructions N] [--stats]
 *                                        run one app on one design
 *   m3dtool thermal <app> [--design D]   peak-temperature solve
 *   m3dtool search <strategy> [--seed S] [--budget N] [--jobs N]
 *                  [--json F]            multi-objective design-space
 *                                        search (src/search)
 *   m3dtool trace record <app> --out F [--instructions N] [--seed S]
 *                  [--thread T]          pin a captured trace to disk
 *   m3dtool trace info <file> [--app A]  summarize a recorded trace
 *
 * Technologies: m3d-het (default), m3d-iso, tsv3d.
 * Designs: base, tsv3d, m3d-iso, m3d-het-naive, m3d-het, m3d-het-agg.
 * Apps: SPEC2006/SPLASH2/PARSEC names or a profile file path.
 */

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "arch/stats_dump.hh"
#include "engine/evaluator.hh"
#include "report/json.hh"
#include "search/strategy.hh"
#include "util/cli.hh"
#include "util/logging.hh"
#include "power/sim_harness.hh"
#include "thermal/thermal_model.hh"
#include "util/table.hh"
#include "util/units.hh"
#include "workload/profile_io.hh"
#include "workload/trace_buffer.hh"
#include "workload/trace_file.hh"

using namespace m3d;
using namespace m3d::units;

namespace {

int
usage()
{
    std::cerr
        << "usage:\n"
           "  m3dtool designs\n"
           "  m3dtool workloads\n"
           "  m3dtool partition <structure|all> [--tech m3d-het|"
           "m3d-iso|tsv3d]\n"
           "  m3dtool sweep <tech|all> [--jobs N] [--cache-stats]\n"
           "  m3dtool simulate <app> [--design <name>] "
           "[--instructions N] [--stats]\n"
           "  m3dtool thermal <app> [--design <name>]\n"
           "  m3dtool search <grid|random|climb|anneal> [--seed S] "
           "[--budget N] [--jobs N] [--json F]\n"
           "  m3dtool trace record <app> --out <file> "
           "[--instructions N] [--seed S] [--thread T]\n"
           "  m3dtool trace info <file> [--app <name>]\n"
           "(every subcommand accepts --help)\n";
    return 2;
}

/** Map a subcommand parse status to main()'s contract. */
int
exitCode(cli::ParseStatus status)
{
    return status == cli::ParseStatus::Help ? 0 : 2;
}

Technology
techByName(const std::string &name)
{
    if (name == "m3d-het")
        return Technology::m3dHetero();
    if (name == "m3d-iso")
        return Technology::m3dIso();
    if (name == "tsv3d")
        return Technology::tsv3D();
    M3D_FATAL("unknown technology '", name,
              "' (try m3d-het, m3d-iso, tsv3d)");
}

CoreDesign
designByName(const DesignFactory &factory, const std::string &name)
{
    for (const CoreDesign &d : factory.singleCoreDesigns()) {
        std::string lower = d.name;
        for (char &c : lower)
            c = static_cast<char>(std::tolower(c));
        std::string key = lower;
        for (char &c : key) {
            if (c == ' ')
                c = '-';
        }
        if (key == name || lower == name)
            return d;
    }
    if (name == "m3d-het-naive" || name == "m3d-hetnaive")
        return factory.m3dHetNaive();
    if (name == "m3d-het-agg" || name == "m3d-hetagg")
        return factory.m3dHetAgg();
    M3D_FATAL("unknown design '", name,
              "' (try base, tsv3d, m3d-iso, m3d-het-naive, m3d-het, "
              "m3d-het-agg)");
}

WorkloadProfile
appByName(const std::string &name)
{
    // A path (contains '/' or '.') loads a profile file; otherwise
    // look up the bundled suites.
    if (name.find('/') != std::string::npos ||
        name.find('.') != std::string::npos) {
        return loadProfile(name);
    }
    return WorkloadLibrary::byName(name);
}

/** Best-partition table for one technology, shared by partition/sweep. */
void
printPartitionTable(engine::Evaluator &ev, const std::string &tech_name,
                    const std::vector<ArrayConfig> &cfgs)
{
    const std::vector<PartitionResult> results =
        ev.bestForAll(techByName(tech_name), cfgs);

    Table t("Best partition on " + tech_name);
    t.header({"Structure", "Strategy", "Latency red.", "Energy red.",
              "Footprint red.", "2D latency", "3D latency"});
    for (std::size_t i = 0; i < cfgs.size(); ++i) {
        const PartitionResult &r = results[i];
        t.row({cfgs[i].name, toString(r.spec.kind),
               Table::pct(r.latencyReduction(), 0),
               Table::pct(r.energyReduction(), 0),
               Table::pct(r.areaReduction(), 0),
               Table::num(r.planar.access_latency / ps, 1) + " ps",
               Table::num(r.stacked.access_latency / ps, 1) + " ps"});
    }
    t.print(std::cout);
}

int
cmdDesigns()
{
    DesignFactory factory;
    Table t("Core designs (Table 11)");
    t.header({"Name", "f (GHz)", "Vdd", "Cores", "Ld2Use",
              "MispPenalty"});
    for (const CoreDesign &d : factory.singleCoreDesigns()) {
        t.row({d.name, Table::num(d.frequency / 1e9, 2),
               Table::num(d.vdd, 2), std::to_string(d.num_cores),
               std::to_string(d.load_to_use),
               std::to_string(d.mispredict_penalty)});
    }
    t.separator();
    for (const CoreDesign &d :
         {factory.m3dHetW(), factory.m3dHet2x()}) {
        t.row({d.name, Table::num(d.frequency / 1e9, 2),
               Table::num(d.vdd, 2), std::to_string(d.num_cores),
               std::to_string(d.load_to_use),
               std::to_string(d.mispredict_penalty)});
    }
    t.print(std::cout);
    return 0;
}

int
cmdWorkloads()
{
    Table t("Bundled workload profiles");
    t.header({"Name", "Suite", "WS (KB)", "MPKI", "Parallel"});
    for (const WorkloadProfile &p : WorkloadLibrary::spec2006()) {
        t.row({p.name, "SPEC2006", Table::num(p.working_set_kb, 0),
               Table::num(p.branch_mpki, 1), "-"});
    }
    t.separator();
    for (const WorkloadProfile &p :
         WorkloadLibrary::splash2parsec()) {
        t.row({p.name, "SPLASH2/PARSEC",
               Table::num(p.working_set_kb, 0),
               Table::num(p.branch_mpki, 1),
               Table::pct(p.parallel_frac, 0)});
    }
    t.print(std::cout);
    return 0;
}

int
cmdPartition(const std::vector<std::string> &args)
{
    std::string tech_name = "m3d-het";
    cli::Parser parser("m3dtool partition",
                       "Best partition per structure vs the 2D "
                       "baseline.");
    parser.positional("structure",
                      "RF, IQ, SQ, LQ, RAT, BPT, BTB, DTLB, ITLB, "
                      "IL1, DL1, L2, or all")
        .flag("tech", &tech_name, "m3d-het, m3d-iso, or tsv3d");
    const cli::ParseStatus status = parser.parse(args);
    if (status != cli::ParseStatus::Ok)
        return exitCode(status);
    const std::string which = parser.positionals()[0];

    std::vector<ArrayConfig> cfgs;
    if (which == "all") {
        cfgs = CoreStructures::all();
    } else {
        for (const ArrayConfig &c : CoreStructures::all()) {
            if (c.name == which)
                cfgs.push_back(c);
        }
        if (cfgs.empty())
            M3D_FATAL("unknown structure '", which,
                      "' (try RF, IQ, SQ, LQ, RAT, BPT, BTB, DTLB, "
                      "ITLB, IL1, DL1, L2, or all)");
    }

    engine::Evaluator ev;
    printPartitionTable(ev, tech_name, cfgs);
    return 0;
}

int
cmdSweep(const std::vector<std::string> &args)
{
    int jobs = 0;
    bool cache_stats = false;
    bool no_cache = false;
    std::string cache_file = ".m3d_cache/partition.cache";
    cli::Parser parser("m3dtool sweep",
                       "Full best-partition sweep through the "
                       "parallel evaluation engine.");
    parser.positional("tech", "m3d-het, m3d-iso, tsv3d, or all")
        .flag("jobs", &jobs,
              "worker threads; 0 means all hardware threads")
        .flag("cache-stats", &cache_stats,
              "print memoization-cache statistics after the sweep")
        .flag("cache-file", &cache_file,
              "persistent partition cache location")
        .flag("no-cache", &no_cache,
              "disable memoization (forces full re-evaluation)");
    const cli::ParseStatus status = parser.parse(args);
    if (status != cli::ParseStatus::Ok)
        return exitCode(status);
    const std::string which = parser.positionals()[0];

    std::vector<std::string> tech_names;
    if (which == "all")
        tech_names = {"m3d-het", "m3d-iso", "tsv3d"};
    else
        tech_names = {which};
    for (const std::string &name : tech_names)
        techByName(name); // validate before doing any work

    engine::EvalOptions opts;
    opts.threads = jobs;
    opts.cache = !no_cache;
    opts.cache_file = no_cache ? "" : cache_file;

    // Probe the cache path up front: appending preserves an existing
    // cache, and a failure means every result of the sweep would be
    // silently thrown away at save time - warn now and run cold
    // instead.
    if (!opts.cache_file.empty()) {
        const std::filesystem::path parent =
            std::filesystem::path(opts.cache_file).parent_path();
        if (!parent.empty()) {
            std::error_code ec;
            std::filesystem::create_directories(parent, ec);
        }
        std::ofstream probe(opts.cache_file, std::ios::app);
        if (!probe.is_open()) {
            M3D_WARN("cache file '", opts.cache_file,
                     "' is not writable; continuing without a "
                     "persistent cache");
            opts.cache_file.clear();
        }
    }
    engine::Evaluator ev(opts);

    const std::vector<ArrayConfig> cfgs = CoreStructures::all();
    std::vector<std::pair<std::string, engine::CacheStats>>
        batch_stats;
    for (const std::string &name : tech_names) {
        printPartitionTable(ev, name, cfgs);
        // The per-batch delta the engine just produced for this
        // technology (the totals below mix all batches together).
        batch_stats.emplace_back(name,
                                 ev.lastBatchStats().partition);
    }

    if (!opts.cache_file.empty())
        ev.savePartitionCache();

    if (cache_stats) {
        const engine::CacheStats s = ev.cache().partitionStats();
        Table t("Evaluation cache");
        t.header({"Metric", "Value"});
        t.row({"Design points", std::to_string(s.lookups())});
        t.row({"Cache hits", std::to_string(s.hits)});
        t.row({"Cache misses", std::to_string(s.misses)});
        t.row({"Hit rate", Table::pct(s.hitRate(), 1)});
        t.row({"Entries stored",
               std::to_string(ev.cache().partitionEntries())});
        t.row({"Worker threads", std::to_string(ev.threads())});
        t.separator();
        for (const auto &[name, b] : batch_stats) {
            t.row({"Batch " + name,
                   std::to_string(b.hits) + "/" +
                       std::to_string(b.lookups()) + " hits (" +
                       Table::pct(b.hitRate(), 1) + ")"});
        }
        t.print(std::cout);
    }
    return 0;
}

int
cmdSimulate(const std::vector<std::string> &args)
{
    std::string design_name = "m3d-het";
    std::uint64_t instructions = 300000;
    bool stats = false;
    cli::Parser parser("m3dtool simulate",
                       "Run one application on one core design.");
    parser.positional("app", "profile name or profile file path")
        .flag("design", &design_name,
              "base, tsv3d, m3d-iso, m3d-het-naive, m3d-het, or "
              "m3d-het-agg")
        .flag("instructions", &instructions,
              "measured instruction count")
        .flag("stats", &stats, "dump the full statistics block");
    const cli::ParseStatus status = parser.parse(args);
    if (status != cli::ParseStatus::Ok)
        return exitCode(status);

    DesignFactory factory;
    const CoreDesign design =
        designByName(factory, design_name);
    const WorkloadProfile app = appByName(parser.positionals()[0]);

    engine::EvalOptions opts;
    opts.budget.measured = instructions;
    engine::Evaluator ev(opts);
    const AppRun r = ev.run(design, app);

    Table t(app.name + " on " + design.name);
    t.header({"Metric", "Value"});
    t.row({"Frequency", Table::num(design.frequency / 1e9, 2) +
                            " GHz"});
    t.row({"Instructions", std::to_string(r.sim.instructions)});
    t.row({"IPC", Table::num(r.sim.ipc(), 2)});
    t.row({"Runtime", Table::num(r.seconds * 1e6, 1) + " us"});
    t.row({"Average power",
           Table::num(r.energy.avgPower(r.seconds), 2) + " W"});
    t.row({"Energy", Table::num(r.energyJ() * 1e6, 1) + " uJ"});
    t.row({"MPKI", Table::num(
        1000.0 * static_cast<double>(r.sim.activity.mispredicts) /
            static_cast<double>(r.sim.instructions), 2)});
    t.print(std::cout);

    if (stats) {
        std::cout << "\n";
        dumpStats(std::cout, design.name, r.sim);
    }
    return 0;
}

int
cmdThermal(const std::vector<std::string> &args)
{
    std::string design_name = "m3d-het";
    cli::Parser parser("m3dtool thermal",
                       "Peak-temperature solve for one app on one "
                       "design.");
    parser.positional("app", "profile name or profile file path")
        .flag("design", &design_name,
              "base, tsv3d, m3d-iso, m3d-het-naive, m3d-het, or "
              "m3d-het-agg");
    const cli::ParseStatus status = parser.parse(args);
    if (status != cli::ParseStatus::Ok)
        return exitCode(status);

    DesignFactory factory;
    const CoreDesign design =
        designByName(factory, design_name);
    const WorkloadProfile app = appByName(parser.positionals()[0]);

    engine::Evaluator ev;
    const AppRun r = ev.run(design, app);
    PowerModel pm(design);
    const auto blocks = pm.blockPower(r.sim.activity, r.seconds);
    ThermalModel tm(design);
    const ThermalResult th = tm.solve(blocks);

    Table t("Thermal: " + app.name + " on " + design.name);
    t.header({"Block", "Power (W)", "Peak (C)"});
    for (const auto &[name, peak] : th.block_peak_c) {
        t.row({name,
               Table::num(blocks.count(name) ? blocks.at(name) : 0.0,
                          2),
               Table::num(peak, 1)});
    }
    t.print(std::cout);
    std::cout << "Peak: " << Table::num(th.peak_c, 1) << " C in "
              << th.hottest_block << "\n";
    std::cout << "Solver: " << th.solver.iterations
              << " sweeps, residual "
              << report::Json::formatNumber(th.solver.residual)
              << " C, " << Table::num(th.solver.seconds * 1e3, 1)
              << " ms\n";
    return 0;
}

/** One frontier/best entry as a JSON object. */
report::Json
searchEntryJson(const search::SearchSpace &space,
                const search::ParetoEntry &e)
{
    report::Json o = report::Json::object();
    o.set("index", report::Json::number(static_cast<double>(
                       space.indexOf(e.point))));
    o.set("point", report::Json::string(space.describe(e.point)));
    o.set("frequency_ghz",
          report::Json::number(e.obj.frequency / 1e9));
    o.set("epi_nj", report::Json::number(e.obj.epi * 1e9));
    o.set("peak_c", report::Json::number(e.obj.peak_c));
    return o;
}

int
cmdSearch(const std::vector<std::string> &args)
{
    int jobs = 0;
    std::uint64_t seed = 7;
    std::uint64_t budget = 16;
    std::uint64_t instructions = 60000;
    int thermal_grid = 32;
    std::string json_path;
    std::string cache_file;
    cli::Parser parser(
        "m3dtool search",
        "Multi-objective design-space search: frequency up, "
        "energy/instruction and peak temperature down, every point "
        "priced through the evaluation engine.");
    parser.positional("strategy", "grid, random, climb, or anneal")
        .flag("seed", &seed, "random seed (fixed seed = fixed result)")
        .flag("budget", &budget,
              "points to price, excluding the 2D reference")
        .flag("jobs", &jobs,
              "worker threads; 0 means all hardware threads "
              "(results do not depend on this)")
        .flag("instructions", &instructions,
              "measured instruction count per application run")
        .flag("thermal-grid", &thermal_grid,
              "thermal solver grid resolution per side")
        .flag("json", &json_path,
              "write the result as m3d-search JSON to this file")
        .flag("cache-file", &cache_file,
              "persistent partition cache location");
    const cli::ParseStatus status = parser.parse(args);
    if (status != cli::ParseStatus::Ok)
        return exitCode(status);
    const std::string strategy = parser.positionals()[0];
    {
        const std::vector<std::string> &names =
            search::strategyNames();
        if (std::find(names.begin(), names.end(), strategy) ==
            names.end()) {
            M3D_FATAL("unknown strategy '", strategy,
                      "' (try grid, random, climb, or anneal)");
        }
    }

    engine::EvalOptions opts;
    opts.threads = jobs;
    opts.budget.measured = instructions;
    opts.cache_file = cache_file;
    engine::Evaluator ev(opts);

    const search::SearchSpace space = search::coreSpace();
    search::ObjectiveConfig ocfg;
    ocfg.thermal_grid = thermal_grid;
    search::ObjectiveEvaluator objectives(ev, ocfg);

    search::StrategyOptions sopts;
    sopts.seed = seed;
    sopts.budget = budget;
    const search::SearchResult result = search::runSearch(
        space, strategy, sopts,
        search::enginePricer(space, objectives),
        search::coreBaselinePoint(space));

    if (!cache_file.empty())
        ev.savePartitionCache();

    Table t("Pareto frontier: " + strategy + ", seed " +
            std::to_string(seed) + " (" +
            std::to_string(result.evaluated) + " points priced)");
    t.header({"Design", "Tech", "Width", "Depth", "f (GHz)",
              "EPI (nJ)", "Peak (C)"});
    for (const search::ParetoEntry &e : result.frontier) {
        t.row({"dse-" + std::to_string(space.indexOf(e.point)),
               space.value(e.point, "tech"),
               space.value(e.point, "width"),
               space.value(e.point, "depth"),
               Table::num(e.obj.frequency / 1e9, 2),
               Table::num(e.obj.epi * 1e9, 3),
               Table::num(e.obj.peak_c, 1)});
    }
    t.print(std::cout);
    std::cout << "Best scalarized: dse-"
              << space.indexOf(result.best.point) << " ("
              << space.describe(result.best.point) << "), score "
              << report::Json::formatNumber(result.best_score)
              << "\n";

    if (!json_path.empty()) {
        // Deliberately excludes --jobs and any wall-clock times: the
        // emission must be byte-identical at any thread count.
        report::Json doc = report::Json::object();
        doc.set("kind", report::Json::string("m3d-search"));
        doc.set("version", report::Json::number(1));
        doc.set("strategy", report::Json::string(strategy));
        doc.set("seed", report::Json::number(
                            static_cast<double>(seed)));
        doc.set("budget", report::Json::number(
                              static_cast<double>(budget)));
        report::Json sp = report::Json::object();
        sp.set("name", report::Json::string(space.name()));
        sp.set("knobs", report::Json::number(static_cast<double>(
                            space.knobCount())));
        sp.set("cardinality",
               report::Json::number(static_cast<double>(
                   space.cardinality())));
        doc.set("space", std::move(sp));
        doc.set("evaluated", report::Json::number(
                                 static_cast<double>(
                                     result.evaluated)));
        report::Json ref = report::Json::object();
        ref.set("frequency_ghz", report::Json::number(
                                     result.reference.frequency /
                                     1e9));
        ref.set("epi_nj", report::Json::number(
                              result.reference.epi * 1e9));
        ref.set("peak_c",
                report::Json::number(result.reference.peak_c));
        doc.set("reference", std::move(ref));
        report::Json best = searchEntryJson(space, result.best);
        best.set("score", report::Json::number(result.best_score));
        doc.set("best", std::move(best));
        report::Json frontier = report::Json::array();
        for (const search::ParetoEntry &e : result.frontier)
            frontier.push(searchEntryJson(space, e));
        doc.set("frontier", std::move(frontier));

        std::ofstream out(json_path);
        if (!out.is_open())
            M3D_FATAL("cannot write '", json_path, "'");
        doc.write(out);
        std::cout << "Wrote " << json_path << "\n";
    }
    return 0;
}

int
cmdTraceRecord(const std::vector<std::string> &args)
{
    std::string out_path;
    std::uint64_t instructions = 400000;
    std::uint64_t seed = 42;
    std::uint64_t thread = 0;
    cli::Parser parser("m3dtool trace record",
                       "Capture an application's micro-op stream "
                       "into the shared trace registry and pin it to "
                       "a file for later replay.");
    parser.positional("app", "profile name or profile file path")
        .flag("out", &out_path, "output trace file (required)")
        .flag("instructions", &instructions, "micro-ops to record")
        .flag("seed", &seed, "generator seed")
        .flag("thread", &thread,
              "logical thread id (parallel apps shift per-thread "
              "phase)");
    const cli::ParseStatus status = parser.parse(args);
    if (status != cli::ParseStatus::Ok)
        return exitCode(status);
    if (out_path.empty())
        M3D_FATAL("trace record requires --out <file>");

    const WorkloadProfile app = appByName(parser.positionals()[0]);
    const auto buf = TraceRegistry::global().acquire(
        app, seed, static_cast<int>(thread), instructions);
    buf->save(out_path);

    Table t("Recorded " + app.name);
    t.header({"Field", "Value"});
    t.row({"File", out_path});
    t.row({"Micro-ops", std::to_string(buf->size())});
    t.row({"Seed", std::to_string(seed)});
    t.row({"Thread", std::to_string(thread)});
    t.row({"Resolved mispredicts",
           std::to_string(buf->resolvedMispredicts())});
    t.print(std::cout);
    return 0;
}

int
cmdTraceInfo(const std::vector<std::string> &args)
{
    std::string app_name;
    cli::Parser parser("m3dtool trace info",
                       "Summarize a recorded trace file: op mix, "
                       "branch statistics, memory footprint.");
    parser.positional("file", "trace file written by `trace record`")
        .flag("app", &app_name,
              "profile name or file; enables predictor "
              "pre-resolution over the loaded trace");
    const cli::ParseStatus status = parser.parse(args);
    if (status != cli::ParseStatus::Ok)
        return exitCode(status);
    const std::string path = parser.positionals()[0];

    // Load through the SoA buffer and walk it with the same
    // ChunkView range the replay engines use: one pass over the
    // column arrays, no per-op AoS materialization.  The op-mix
    // numbers are pure stream properties, so any profile yields the
    // same table; the profile only matters for the predictor
    // resolution reported under --app.
    const WorkloadProfile app =
        app_name.empty() ? WorkloadProfile() : appByName(app_name);
    const TraceBuffer buf(path, app);
    std::uint64_t loads = 0, stores = 0, branches = 0, taken = 0;
    std::uint64_t calls = 0, returns = 0, fp = 0, complex_ops = 0;
    std::uint64_t min_addr = UINT64_MAX, max_addr = 0;
    for (const TraceBuffer::ChunkView v : buf.range(0, buf.size())) {
        const TraceBuffer::Chunk &ch = *v.chunk;
        for (std::uint32_t o = v.begin; o < v.end; ++o) {
            const auto op = static_cast<OpClass>(ch.op[o]);
            const std::uint8_t flags = ch.flags[o];
            switch (op) {
            case OpClass::Load:
                ++loads;
                break;
            case OpClass::Store:
                ++stores;
                break;
            case OpClass::Branch:
                ++branches;
                taken += (flags & TraceBuffer::kFlagTaken) ? 1 : 0;
                calls += (flags & TraceBuffer::kFlagCall) ? 1 : 0;
                returns += (flags & TraceBuffer::kFlagReturn) ? 1 : 0;
                break;
            case OpClass::FpAdd:
            case OpClass::FpMult:
            case OpClass::FpDiv:
                ++fp;
                break;
            default:
                break;
            }
            complex_ops +=
                (flags & TraceBuffer::kFlagComplex) ? 1 : 0;
            if ((op == OpClass::Load || op == OpClass::Store) &&
                ch.address[o] != 0) {
                min_addr = std::min(min_addr, ch.address[o]);
                max_addr = std::max(max_addr, ch.address[o]);
            }
        }
    }
    const auto n = static_cast<double>(buf.size());

    Table t("Trace " + path);
    t.header({"Field", "Value"});
    t.row({"Micro-ops", std::to_string(buf.size())});
    t.row({"Loads", Table::pct(static_cast<double>(loads) / n, 1)});
    t.row({"Stores", Table::pct(static_cast<double>(stores) / n, 1)});
    t.row({"Branches",
           Table::pct(static_cast<double>(branches) / n, 1)});
    t.row({"Taken",
           branches ? Table::pct(static_cast<double>(taken) /
                                     static_cast<double>(branches),
                                 1)
                    : "-"});
    t.row({"Calls", std::to_string(calls)});
    t.row({"Returns", std::to_string(returns)});
    t.row({"FP ops", Table::pct(static_cast<double>(fp) / n, 1)});
    t.row({"Complex decodes",
           Table::pct(static_cast<double>(complex_ops) / n, 1)});
    if (max_addr != 0) {
        t.row({"Data span",
               Table::num(static_cast<double>(max_addr - min_addr) /
                              1024.0,
                          0) +
                   " KB"});
    }
    if (!app_name.empty()) {
        // The load above already recomputed the fixed-core predictor
        // outcomes (tournament + RAS) over the trace under the named
        // profile - the same derived state the replay engine shares
        // per process.
        t.row({"Resolved mispredicts",
               std::to_string(buf.resolvedMispredicts())});
        t.row({"Resolved MPKI",
               Table::num(1000.0 *
                              static_cast<double>(
                                  buf.resolvedMispredicts()) /
                              n,
                          2)});
    }
    t.print(std::cout);
    return 0;
}

int
cmdTrace(const std::vector<std::string> &args)
{
    if (args.empty()) {
        std::cerr << "usage:\n"
                     "  m3dtool trace record <app> --out <file> "
                     "[--instructions N] [--seed S] [--thread T]\n"
                     "  m3dtool trace info <file> [--app <name>]\n";
        return 2;
    }
    const std::vector<std::string> rest(args.begin() + 1, args.end());
    if (args[0] == "record")
        return cmdTraceRecord(rest);
    if (args[0] == "info")
        return cmdTraceInfo(rest);
    std::cerr << "m3dtool trace: unknown subcommand '" << args[0]
              << "' (try record, info)\n";
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string cmd = argv[1];
    const std::vector<std::string> args(argv + 2, argv + argc);

    if (cmd == "designs")
        return cmdDesigns();
    if (cmd == "workloads")
        return cmdWorkloads();
    if (cmd == "partition")
        return cmdPartition(args);
    if (cmd == "sweep")
        return cmdSweep(args);
    if (cmd == "simulate")
        return cmdSimulate(args);
    if (cmd == "thermal")
        return cmdThermal(args);
    if (cmd == "search")
        return cmdSearch(args);
    if (cmd == "trace")
        return cmdTrace(args);
    return usage();
}
