#!/usr/bin/env bash
# Regenerate every goldens/<bench>.json from the current build.
#
# Each bench runs with its *canonical* arguments - the same ones the
# `ctest -L golden` tests use (bench/CMakeLists.txt).  Blessing keeps
# any hand-tuned tolerances and paper annotations already present in
# the golden, so re-running this after an intentional model change is
# safe and cheap.
#
# Usage: tools/regen_goldens.sh [build-dir]
set -euo pipefail

build=${1:-build}
root=$(cd "$(dirname "$0")/.." && pwd)
build=$(cd "$root" && cd "$build" && pwd)
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

mkdir -p "$root/goldens"

run_level() {
    local name=$1 bench=$2
    shift 2
    # The provenance note skips --cache-file: the cache only changes
    # speed, never the emission, and its path is machine-specific.
    local note="$name" skip=0
    for a in "$@"; do
        if [ "$skip" = 1 ]; then skip=0; continue; fi
        if [ "$a" = "--cache-file" ]; then skip=1; continue; fi
        note="$note $a"
    done
    echo "== $name $*"
    "$build/bench/$bench" "$@" --json "$tmp/$name.json" > /dev/null
    "$build/tools/check_golden" "$tmp/$name.json" \
        "$root/goldens/$name.json" --bless --command "$note"
}

run() {
    local name=$1
    shift
    run_level "$name" "$name" "$@"
}

run table1_via_overhead
run table2_via_electrical
run table3_bit_partition
run table4_word_partition
run table5_port_partition
run table6_best_partition --jobs 8
run table8_hetero_partition
run table11_configs
run logic_stage_gains
run core_area_report
run ablation_clock_pdn
run ablation_layer_count
run ablation_via_diameter
run ablation_asymmetry
run ablation_toplayer_slowdown
run ablation_thermal_dynamics

# Reduced instruction budget keeps the figure goldens fast; the
# emission is independent of --jobs and cache temperature (the
# determinism test pins that), so any cache file works here.
run fig6_speedup_single --jobs 8 --instructions 60000 \
    --cache-file "$tmp/fig6.m3d_cache"
run fig7_energy_single --jobs 8 --instructions 60000 \
    --cache-file "$tmp/fig7.m3d_cache"
run fig8_thermal --jobs 8 --instructions 60000 \
    --cache-file "$tmp/fig8.m3d_cache"
run fig9_speedup_multi --jobs 8 --instructions 60000 \
    --cache-file "$tmp/fig9.m3d_cache"
run fig10_energy_multi --jobs 8 --instructions 60000 \
    --cache-file "$tmp/fig10.m3d_cache"
run pareto_frontier --jobs 8 --instructions 60000 --budget 48 \
    --cache-file "$tmp/pareto.m3d_cache"
run ablation_variation --jobs 8 --instructions 20000 \
    --seed 7 --dies 64 --bins 6 \
    --cache-file "$tmp/variation.m3d_cache"

# The >=10^4-candidate surrogate level (bench/CMakeLists.txt
# pareto_frontier_dse); same binary, its own golden.
run_level pareto_frontier_dse pareto_frontier \
    --strategy surrogate --jobs 8 --seed 7 --instructions 20000 \
    --thermal-grid 16 --budget 1324 --population 64 \
    --surrogate-pool 672 --surrogate-fraction 0.125 \
    --cache-file "$tmp/pareto_dse.m3d_cache"

echo "goldens regenerated under $root/goldens"
