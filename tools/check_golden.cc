/**
 * @file
 * check_golden - compare a bench's metric emission against a
 * checked-in golden reference, or (re)generate the golden.
 *
 *   check_golden <report.json> <golden.json>
 *       Load both files, compare every metric within its tolerance,
 *       print a pass/fail diff report.  Exit 0 on pass, 1 on any
 *       drifted/missing/unexpected metric, 2 on unreadable or
 *       malformed input.
 *
 *   check_golden <report.json> <golden.json> --bless
 *       Rewrite the golden from the emission.  Metrics already in
 *       the golden keep their hand-tuned tolerance and paper
 *       annotation; new ones get --rel-tol.  --command annotates how
 *       the emission was produced (kept from the old golden
 *       otherwise).
 *
 * `ctest -L golden` drives this via cmake/RunGolden.cmake; the
 * goldens/ directory holds one golden per bench.
 */

#include <iostream>
#include <string>

#include "report/golden.hh"
#include "util/cli.hh"

using namespace m3d;

int
main(int argc, char **argv)
{
    bool bless = false;
    bool verbose = false;
    double rel_tol = report::kDefaultRelTol;
    std::string command;
    cli::Parser parser(
        "check_golden",
        "Compare a bench metric emission against a golden "
        "reference (exit 0 pass / 1 fail / 2 bad input).");
    parser.positional("report", "emission JSON written by a bench's "
                                "--json flag")
        .positional("golden", "golden reference JSON")
        .flag("bless", &bless,
              "rewrite the golden from the emission, keeping "
              "existing tolerances and paper annotations")
        .flag("rel-tol", &rel_tol,
              "relative tolerance for metrics new to the golden "
              "(with --bless)")
        .flag("command", &command,
              "provenance note stored in the golden (with --bless)")
        .flag("verbose", &verbose,
              "print every metric row, not just failures");
    const cli::ParseStatus status = parser.parse(argc, argv);
    if (status != cli::ParseStatus::Ok)
        return status == cli::ParseStatus::Help ? 0 : 2;

    const std::string &report_path = parser.positionals()[0];
    const std::string &golden_path = parser.positionals()[1];

    std::string error;
    const auto emission = report::Report::load(report_path, &error);
    if (!emission) {
        std::cerr << "check_golden: " << error << "\n";
        return 2;
    }

    if (bless) {
        // An existing golden donates tolerances and paper values; a
        // missing or malformed one is not an error here (first
        // bless, or recovering from a bad file).
        std::string old_error;
        const auto previous =
            report::Golden::load(golden_path, &old_error);
        report::Golden fresh = report::Golden::bless(
            *emission, previous ? &*previous : nullptr, rel_tol);
        if (!command.empty())
            fresh.setCommand(command);
        if (!fresh.save(golden_path, &error)) {
            std::cerr << "check_golden: " << error << "\n";
            return 2;
        }
        std::cout << "blessed " << golden_path << " ("
                  << fresh.metrics().size() << " metrics)\n";
        return 0;
    }

    const auto golden = report::Golden::load(golden_path, &error);
    if (!golden) {
        std::cerr << "check_golden: " << error << "\n";
        return 2;
    }

    const report::CheckResult result =
        report::check(*emission, *golden);
    report::printCheckReport(std::cout, result, *emission, *golden,
                             verbose);
    return result.passed() ? 0 : 1;
}
