/**
 * @file
 * bench_diff - compare two m3d-bench JSON emissions key by key.
 *
 *   bench_diff <baseline.json> <candidate.json> [--threshold R]
 *
 * Both files are BENCH_*.json documents (kind "m3d-bench", written
 * by the perf_* benches' --json flag).  Every numeric key under
 * "results" present in both files is printed with its baseline
 * value, candidate value, and candidate/baseline ratio; keys present
 * on only one side are listed as added/removed (informational -
 * schema growth is expected as benches version up).
 *
 * With --threshold R (e.g. 1.25), the exit status becomes a
 * regression gate: exit 3 when any *time-like* shared key (name
 * ending in `_ms`, `_ms_per_run`, `_ms_per_app`, or
 * `_cycles_per_op`) has candidate > R x baseline.  Speedup-style
 * keys (bigger is better) and booleans never trip the gate - wall
 * clock is what CI guards.  Exit 0 otherwise, 2 on unreadable or
 * malformed input.
 *
 * Wall time is machine- and load-dependent, so CI runs this
 * report-only (no --threshold) against the committed BENCH_core.json
 * to surface drift in the job log without failing the build; the
 * threshold mode exists for humans A/B-ing one machine.
 */

#include <cmath>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "report/json.hh"
#include "util/cli.hh"

using namespace m3d;

namespace {

bool
loadBench(const std::string &path, report::Json *out,
          std::string *error)
{
    std::ifstream in(path);
    if (!in.is_open()) {
        *error = "cannot open '" + path + "'";
        return false;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    if (!report::Json::parse(ss.str(), out, error)) {
        *error = path + ": " + *error;
        return false;
    }
    const report::Json *kind = out->find("kind");
    if (kind == nullptr || !kind->isString() ||
        kind->asString() != "m3d-bench") {
        *error = path + ": not an m3d-bench emission";
        return false;
    }
    if (out->find("results") == nullptr ||
        !out->find("results")->isObject()) {
        *error = path + ": no \"results\" object";
        return false;
    }
    return true;
}

/** Keys where a larger candidate value is a slowdown. */
bool
timeLike(const std::string &key)
{
    for (const char *suffix :
         {"_ms", "_ms_per_run", "_ms_per_app", "_cycles_per_op"}) {
        const std::string s(suffix);
        if (key.size() >= s.size() &&
            key.compare(key.size() - s.size(), s.size(), s) == 0)
            return true;
    }
    return false;
}

std::string
num(double v)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(3) << v;
    return os.str();
}

} // namespace

int
main(int argc, char **argv)
{
    double threshold = 0.0;
    cli::Parser parser(
        "bench_diff",
        "Compare two m3d-bench JSON emissions key by key "
        "(exit 0 ok / 3 over threshold / 2 bad input).");
    parser.positional("baseline", "baseline BENCH_*.json")
        .positional("candidate", "candidate BENCH_*.json")
        .flag("threshold", &threshold,
              "fail (exit 3) when any time-like key's "
              "candidate/baseline ratio exceeds this; 0 disables "
              "the gate (report-only)");
    const cli::ParseStatus status = parser.parse(argc, argv);
    if (status != cli::ParseStatus::Ok)
        return status == cli::ParseStatus::Help ? 0 : 2;

    std::string error;
    report::Json base, cand;
    if (!loadBench(parser.positionals()[0], &base, &error) ||
        !loadBench(parser.positionals()[1], &cand, &error)) {
        std::cerr << "bench_diff: " << error << "\n";
        return 2;
    }

    const report::Json &br = *base.find("results");
    const report::Json &cr = *cand.find("results");

    const report::Json *bv = base.find("version");
    const report::Json *cv = cand.find("version");
    if (bv != nullptr && cv != nullptr && bv->isNumber() &&
        cv->isNumber() && bv->asNumber() != cv->asNumber()) {
        std::cout << "schema version: " << bv->asNumber() << " -> "
                  << cv->asNumber() << "\n";
    }

    bool over = false;
    std::vector<std::string> added, removed;
    std::cout << std::left << std::setw(36) << "key"
              << std::right << std::setw(12) << "baseline"
              << std::setw(12) << "candidate" << std::setw(9)
              << "ratio" << "\n";
    for (const auto &[key, bval] : br.members()) {
        const report::Json *cval = cr.find(key);
        if (cval == nullptr) {
            removed.push_back(key);
            continue;
        }
        if (bval.isBool() && cval->isBool()) {
            std::cout << std::left << std::setw(36) << key
                      << std::right << std::setw(12)
                      << (bval.asBool() ? "true" : "false")
                      << std::setw(12)
                      << (cval->asBool() ? "true" : "false")
                      << std::setw(9)
                      << (bval.asBool() == cval->asBool() ? "=" : "!")
                      << "\n";
            continue;
        }
        if (!bval.isNumber() || !cval->isNumber())
            continue;
        const double b = bval.asNumber();
        const double c = cval->asNumber();
        const double ratio = b != 0.0 ? c / b
                                      : (c == 0.0 ? 1.0 : HUGE_VAL);
        const bool gated = threshold > 0.0 && timeLike(key) &&
                           ratio > threshold;
        over = over || gated;
        std::cout << std::left << std::setw(36) << key << std::right
                  << std::setw(12) << num(b) << std::setw(12)
                  << num(c) << std::setw(8) << num(ratio)
                  << (gated ? "x REGRESSION" : "x") << "\n";
    }
    for (const auto &[key, cval] : cr.members()) {
        (void)cval;
        if (br.find(key) == nullptr)
            added.push_back(key);
    }
    for (const std::string &k : removed)
        std::cout << "removed key: " << k << "\n";
    for (const std::string &k : added)
        std::cout << "added key:   " << k << "\n";

    if (over) {
        std::cout << "bench_diff: time-like key(s) over "
                  << num(threshold) << "x baseline\n";
        return 3;
    }
    return 0;
}
