# Driver behind every `ctest -L golden` test: run one bench with its
# canonical arguments, emitting metrics as JSON, then compare the
# emission against the checked-in golden with check_golden.
#
# Variables (all -D):
#   BENCH      - bench executable
#   BENCH_ARGS - ;-list of arguments (may be empty)
#   OUT        - where the bench writes its --json emission
#   CHECK      - check_golden executable
#   GOLDEN     - checked-in golden JSON
#
# To re-bless after an intentional model change:
#   build/bench/<name> <canonical args> --json out.json
#   build/tools/check_golden out.json goldens/<name>.json --bless
# (tools/regen_goldens.sh re-blesses the whole suite.)

foreach(var BENCH OUT CHECK GOLDEN)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "RunGolden.cmake: ${var} not set")
    endif()
endforeach()

execute_process(
    COMMAND ${BENCH} ${BENCH_ARGS} --json ${OUT}
    RESULT_VARIABLE bench_rc
    OUTPUT_QUIET)
if(NOT bench_rc EQUAL 0)
    message(FATAL_ERROR "${BENCH} failed with exit code ${bench_rc}")
endif()

execute_process(
    COMMAND ${CHECK} ${OUT} ${GOLDEN}
    RESULT_VARIABLE check_rc)
if(NOT check_rc EQUAL 0)
    message(FATAL_ERROR
        "golden comparison failed (exit ${check_rc}); see the diff "
        "report above.  If the change is intentional, re-bless with: "
        "check_golden ${OUT} ${GOLDEN} --bless")
endif()
