# Trace record/info round-trip driver (see tools/CMakeLists.txt).
#
#   cmake -DTOOL=<m3dtool> -DOUT_DIR=<dir> -P RunTraceRoundTrip.cmake
#
# 1. `trace record` an application to a file.
# 2. `trace info --app` the file: the resolved-mispredict count
#    printed by info (recomputed from the loaded bytes) must equal
#    the count printed at record time (captured live).  That pins the
#    on-disk format: predictor outcomes are derived state, so a
#    lossy save/load would show up as a count mismatch here.

file(MAKE_DIRECTORY ${OUT_DIR})
set(trace_file ${OUT_DIR}/roundtrip.trace)

execute_process(
    COMMAND ${TOOL} trace record Gobmk --out ${trace_file}
            --instructions 60000
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE rec_out
    ERROR_VARIABLE rec_err)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR
        "trace record exited ${rc}:\n${rec_out}${rec_err}")
endif()
if(NOT rec_out MATCHES "Resolved mispredicts *([0-9]+)")
    message(FATAL_ERROR
        "trace record printed no resolved-mispredict count:\n"
        "${rec_out}")
endif()
set(recorded ${CMAKE_MATCH_1})

execute_process(
    COMMAND ${TOOL} trace info ${trace_file} --app Gobmk
    RESULT_VARIABLE rc2
    OUTPUT_VARIABLE info_out
    ERROR_VARIABLE info_err)
if(NOT rc2 EQUAL 0)
    message(FATAL_ERROR
        "trace info exited ${rc2}:\n${info_out}${info_err}")
endif()
if(NOT info_out MATCHES "Micro-ops *60000")
    message(FATAL_ERROR
        "trace info did not report the recorded op count:\n"
        "${info_out}")
endif()
if(NOT info_out MATCHES "Resolved mispredicts *([0-9]+)")
    message(FATAL_ERROR
        "trace info printed no resolved-mispredict count:\n"
        "${info_out}")
endif()
if(NOT CMAKE_MATCH_1 EQUAL recorded)
    message(FATAL_ERROR
        "resolved mispredicts changed across the disk round trip: "
        "recorded ${recorded}, reloaded ${CMAKE_MATCH_1}")
endif()

message(STATUS
    "trace round trip intact (${recorded} resolved mispredicts)")
