# Determinism regression for the search subsystem (the ISSUE's
# acceptance check): every strategy must emit byte-identical
# m3d-search JSON at --jobs 1 and --jobs 8 for a fixed seed, because
# the strategies are sequential algorithms and all parallelism lives
# behind the engine's submission-order merge.
#
# Runs each strategy twice at a small instruction budget and compares
# the emissions byte-for-byte.
#
# Variables (all -D):
#   TOOL    - m3dtool executable
#   OUT_DIR - scratch directory (recreated every run)

foreach(var TOOL OUT_DIR)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "RunSearchDeterminism.cmake: ${var} not set")
    endif()
endforeach()

file(REMOVE_RECURSE ${OUT_DIR})
file(MAKE_DIRECTORY ${OUT_DIR})

function(run_search strategy jobs out)
    execute_process(
        COMMAND ${TOOL} search ${strategy} --seed 7 --budget 6
            --instructions 20000 --thermal-grid 16 --jobs ${jobs}
            --population 4 --surrogate-pool 16
            --surrogate-fraction 0.25 --daemon off
            --json ${out}
        RESULT_VARIABLE rc
        OUTPUT_QUIET)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR
            "m3dtool search ${strategy} --jobs ${jobs} failed with "
            "exit code ${rc}")
    endif()
endfunction()

foreach(strategy grid random climb anneal evolve surrogate)
    run_search(${strategy} 1 ${OUT_DIR}/${strategy}_j1.json)
    run_search(${strategy} 8 ${OUT_DIR}/${strategy}_j8.json)
    execute_process(
        COMMAND ${CMAKE_COMMAND} -E compare_files
            ${OUT_DIR}/${strategy}_j1.json
            ${OUT_DIR}/${strategy}_j8.json
        RESULT_VARIABLE rc)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR
            "m3dtool search ${strategy}: --jobs 1 and --jobs 8 "
            "emissions differ - the search is not thread-count "
            "deterministic")
    endif()
endforeach()

message(STATUS "m3dtool search emissions byte-identical at 1/8 "
               "threads for all strategies")
