# Determinism regression for the variation subsystem: `m3dtool
# variation` must emit byte-identical m3d-variation JSON no matter
# the thread count or the temperature of the persistent partition
# cache, because the population is drawn from a counter-based RNG and
# all parallelism lives behind the engine's submission-order merge.
#
# Three runs at a small population and instruction budget:
#   1. --jobs 1, cold cache file (fresh directory);
#   2. --jobs 8, warm cache file from run 1;
#   3. --jobs 8, no cache file at all.
# All three emissions must compare byte-for-byte equal.
#
# Variables (all -D):
#   TOOL    - m3dtool executable
#   OUT_DIR - scratch directory (recreated every run)

foreach(var TOOL OUT_DIR)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR
            "RunVariationDeterminism.cmake: ${var} not set")
    endif()
endforeach()

file(REMOVE_RECURSE ${OUT_DIR})
file(MAKE_DIRECTORY ${OUT_DIR})

set(cache ${OUT_DIR}/var.m3d_cache)

function(run_variation out)
    execute_process(
        COMMAND ${TOOL} variation m3d-het --seed 7 --dies 32 --bins 6
            --instructions 20000 --daemon off ${ARGN} --json ${out}
        RESULT_VARIABLE rc
        OUTPUT_QUIET)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR
            "m3dtool variation ${ARGN} failed with exit code ${rc}")
    endif()
endfunction()

run_variation(${OUT_DIR}/serial_cold.json
    --jobs 1 --cache-file ${cache})
if(NOT EXISTS ${cache})
    message(FATAL_ERROR
        "cold run did not write the partition cache ${cache}")
endif()
run_variation(${OUT_DIR}/parallel_warm.json
    --jobs 8 --cache-file ${cache})
run_variation(${OUT_DIR}/parallel_nocache.json --jobs 8)

foreach(other parallel_warm parallel_nocache)
    execute_process(
        COMMAND ${CMAKE_COMMAND} -E compare_files
            ${OUT_DIR}/serial_cold.json ${OUT_DIR}/${other}.json
        RESULT_VARIABLE rc)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR
            "emission differs between serial_cold and ${other}: "
            "the variation binning is not deterministic")
    endif()
endforeach()

message(STATUS "m3dtool variation emission byte-identical across "
               "1/8 threads and cold/warm/no cache")
