# Determinism regression: the fig6 bench must emit byte-identical
# JSON no matter the thread count or the temperature of the
# persistent partition cache.
#
# Three runs at a small instruction budget:
#   1. --jobs 1, cold cache file (fresh directory);
#   2. --jobs 8, warm cache file from run 1 (partition sweeps served
#      from disk);
#   3. --jobs 8, no cache file at all.
# All three emissions must compare byte-for-byte equal.
#
# Variables (all -D):
#   BENCH   - fig6_speedup_single executable
#   OUT_DIR - scratch directory (recreated every run)

foreach(var BENCH OUT_DIR)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "RunDeterminism.cmake: ${var} not set")
    endif()
endforeach()

file(REMOVE_RECURSE ${OUT_DIR})
file(MAKE_DIRECTORY ${OUT_DIR})

set(budget 20000)
set(cache ${OUT_DIR}/det.m3d_cache)

function(run_bench out)
    execute_process(
        COMMAND ${BENCH} ${ARGN} --instructions ${budget} --json ${out}
        RESULT_VARIABLE rc
        OUTPUT_QUIET)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR
            "${BENCH} ${ARGN} failed with exit code ${rc}")
    endif()
endfunction()

run_bench(${OUT_DIR}/serial_cold.json --jobs 1 --cache-file ${cache})
if(NOT EXISTS ${cache})
    message(FATAL_ERROR
        "cold run did not write the partition cache ${cache}")
endif()
run_bench(${OUT_DIR}/parallel_warm.json --jobs 8 --cache-file ${cache})
run_bench(${OUT_DIR}/parallel_nocache.json --jobs 8)

foreach(other parallel_warm parallel_nocache)
    execute_process(
        COMMAND ${CMAKE_COMMAND} -E compare_files
            ${OUT_DIR}/serial_cold.json ${OUT_DIR}/${other}.json
        RESULT_VARIABLE rc)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR
            "emission differs between serial_cold and ${other}: "
            "fig6 output is not deterministic")
    endif()
endforeach()

message(STATUS "fig6 emission byte-identical across 1/8 threads and "
               "cold/warm/no cache")
